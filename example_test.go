package arbor_test

import (
	"context"
	"fmt"
	"log"

	"arbor"
)

// ExampleParseTree builds the paper's running example tree and inspects its
// quorum structure.
func ExampleParseTree() {
	t, err := arbor.ParseTree("1-3-5")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replicas:", t.N())
	fmt.Println("physical levels:", t.NumPhysicalLevels())
	fmt.Println("read quorums:", t.ReadQuorumCount())
	fmt.Println("write quorums:", t.WriteQuorumCount())
	// Output:
	// replicas: 8
	// physical levels: 2
	// read quorums: 15
	// write quorums: 2
}

// ExampleAnalyze reproduces the paper's §3.4 worked example.
func ExampleAnalyze() {
	t, err := arbor.ParseTree("1-3-5")
	if err != nil {
		log.Fatal(err)
	}
	a := arbor.Analyze(t)
	fmt.Printf("read: cost %d, load %.4f, availability(0.7) %.2f\n",
		a.ReadCost, a.ReadLoad, a.ReadAvailability(0.7))
	fmt.Printf("write: cost %.0f, load %.1f, availability(0.7) %.2f\n",
		a.WriteCostAvg, a.WriteLoad, a.WriteAvailability(0.7))
	// Output:
	// read: cost 2, load 0.3333, availability(0.7) 0.97
	// write: cost 4, load 0.5, availability(0.7) 0.45
}

// ExampleAlgorithm1 shows the balanced configuration's headline metrics.
func ExampleAlgorithm1() {
	t, err := arbor.Algorithm1(100)
	if err != nil {
		log.Fatal(err)
	}
	a := arbor.Analyze(t)
	fmt.Printf("n=%d: read cost %d, read load %.2f, write load %.2f\n",
		t.N(), a.ReadCost, a.ReadLoad, a.WriteLoad)
	// Output:
	// n=100: read cost 10, read load 0.25, write load 0.10
}

// ExampleNewCluster runs a quorum write and read on a live simulated
// cluster.
func ExampleNewCluster() {
	t, err := arbor.ParseTree("1-3-5")
	if err != nil {
		log.Fatal(err)
	}
	c, err := arbor.NewCluster(t, arbor.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cli.Write(ctx, "config", []byte("v1")); err != nil {
		log.Fatal(err)
	}
	rd, err := cli.Read(ctx, "config")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s (version %d)\n", rd.Value, rd.TS.Version)
	// Output:
	// v1 (version 1)
}

// ExampleAdvise picks a tree for a write-heavy workload.
func ExampleAdvise() {
	adv, err := arbor.Advise(100, 0.9, 0.1, arbor.MinimizeCost)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("levels:", adv.Tree.NumPhysicalLevels())
	fmt.Printf("write cost: %.1f\n", adv.Analysis.WriteCostAvg)
	// Output:
	// levels: 30
	// write cost: 3.3
}
