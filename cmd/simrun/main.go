// Command simrun runs a workload against a simulated replica cluster and
// compares the measured communication costs and per-replica loads against
// the paper's closed-form predictions.
//
// Usage:
//
//	simrun -spec 1-3-5 -ops 2000 -read-fraction 0.8
//	simrun -algorithm1 100 -ops 5000 -crash 3,17
//	simrun -spec 1-4-4-8 -latency 2ms -drop 0.01
//	simrun -scenario scenarios/geo-latency.arb
//
// With -scenario, the .arb file supplies topology, workload phases,
// latency geometry and the failure schedule (overriding those flags);
// expect assertions are a deterministic-harness contract, so simrun
// skips them — arborsim -scenario checks them.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"arbor/internal/cluster"
	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/scenario"
	"arbor/internal/sim"
	"arbor/internal/transport"
	"arbor/internal/tree"
	"arbor/internal/wire"
	"arbor/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simrun", flag.ContinueOnError)
	var (
		spec         = fs.String("spec", "", "tree spec, e.g. 1-3-5")
		algorithm1   = fs.Int("algorithm1", 0, "use the ARBITRARY tree of Algorithm 1 for n replicas")
		ops          = fs.Int("ops", 2000, "operations to run")
		readFraction = fs.Float64("read-fraction", 0.8, "fraction of operations that are reads")
		keys         = fs.Int("keys", 16, "key population")
		zipf         = fs.Float64("zipf", 0, "Zipf skew parameter (>1 enables skewed keys)")
		clients      = fs.Int("clients", 1, "concurrent clients")
		seed         = fs.Int64("seed", 1, "random seed")
		latency      = fs.Duration("latency", 0, "per-message network latency")
		jitter       = fs.Duration("jitter", 0, "latency jitter")
		drop         = fs.Float64("drop", 0, "message drop probability")
		timeout      = fs.Duration("timeout", 250*time.Millisecond, "client failure-detection timeout")
		crash        = fs.String("crash", "", "comma-separated site IDs to crash before the run")
		schedule     = fs.String("schedule", "", `timed failure schedule, e.g. "50ms:crash=1,2;200ms:recoverall"`)
		compare      = fs.Bool("compare", false, "run the spectrum's configurations side by side and compare measured costs to theory")
		metrics      = fs.Bool("metrics", false, "instrument the run and print per-level load and latency quantile tables")
		traceN       = fs.Int("trace", 0, "record operation traces and print the last N after the run")
		codec        = fs.String("codec", "", `wire codec to round-trip every message through ("binary" or "gob"; empty = in-memory delivery without serialization)`)
		scen         = fs.String("scenario", "", "drive the run from a .arb scenario file (overrides topology, workload, latency and schedule flags)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// A scenario lowers onto the same flag values the command already
	// understands, so everything downstream (cluster options, schedule,
	// reporting) is shared; phases and the geo RTT map ride alongside.
	var scenCfg *sim.Config
	if *scen != "" {
		sp, err := scenario.Load(*scen)
		if err != nil {
			return err
		}
		compiled, err := sp.Compile()
		if err != nil {
			return err
		}
		cfg := compiled.Cfg
		scenCfg = &cfg
		*spec = cfg.Spec
		*seed = cfg.Seed
		*ops = cfg.Ops
		*keys = cfg.Keys
		*zipf = cfg.Zipf
		*clients = cfg.Clients
		*timeout = cfg.Timeout
		*latency = cfg.Latency
		*jitter = cfg.Jitter
		if rf, err := cfg.Profile.ReadFraction(); err == nil {
			*readFraction = rf
		}
		if len(sp.Schedule) > 0 {
			*schedule = sp.Schedule.String()
		}
		if len(sp.Expects) > 0 {
			fmt.Printf("scenario %s: %d expect assertion(s) skipped (wall-clock run; use arborsim -scenario to check them)\n",
				*scen, len(sp.Expects))
		}
	}
	if *compare {
		n := *algorithm1
		if n == 0 {
			n = 64
		}
		return runComparison(n, *ops, *readFraction, *seed)
	}

	var (
		t   *tree.Tree
		err error
	)
	switch {
	case *spec != "":
		t, err = tree.ParseSpec(*spec)
	case *algorithm1 > 0:
		t, err = tree.Algorithm1(*algorithm1)
	default:
		return errors.New("one of -spec or -algorithm1 is required")
	}
	if err != nil {
		return err
	}

	opts := []cluster.Option{
		cluster.WithSeed(*seed),
		cluster.WithClientTimeout(*timeout),
	}
	var observer *obs.Observer
	if *metrics || *traceN > 0 {
		traceCap := *traceN
		if traceCap <= 0 {
			traceCap = 1
		}
		observer = obs.NewObserver(traceCap)
		opts = append(opts, cluster.WithObserver(observer))
	}
	if *latency > 0 || *jitter > 0 {
		opts = append(opts, cluster.WithLatency(*latency, *jitter))
	}
	if scenCfg != nil {
		if scenCfg.JitterDist != "" {
			dist, err := transport.ParseJitterDist(scenCfg.JitterDist)
			if err != nil {
				return err
			}
			opts = append(opts, cluster.WithJitterDistribution(dist))
		}
		if len(scenCfg.SiteRTT) > 0 {
			opts = append(opts, cluster.WithSiteRTT(scenCfg.SiteRTT))
		}
	}
	if *drop > 0 {
		opts = append(opts, cluster.WithDropProbability(*drop))
	}
	if *codec != "" {
		wc, err := wire.ByName(*codec)
		if err != nil {
			return err
		}
		opts = append(opts, cluster.WithCodec(wc))
	}
	c, err := cluster.New(t, opts...)
	if err != nil {
		return err
	}
	defer c.Close()

	if *crash != "" {
		for _, part := range strings.Split(*crash, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad -crash entry %q: %w", part, err)
			}
			if err := c.Crash(tree.SiteID(id)); err != nil {
				return err
			}
			fmt.Printf("crashed site %d\n", id)
		}
	}

	fmt.Printf("cluster: %s\n", t)
	a := core.Analyze(t)
	fmt.Printf("theory:  read cost %d, write cost %.2f, read load %.4f, write load %.4f\n\n",
		a.ReadCost, a.WriteCostAvg, a.ReadLoad, a.WriteLoad)

	var schedErr func() error
	if *schedule != "" {
		sched, err := cluster.ParseSchedule(*schedule)
		if err != nil {
			return err
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		_, schedErr = c.RunSchedule(ctx, sched)
		fmt.Printf("running failure schedule with %d events\n", len(sched))
	}

	var total cluster.RunReport
	if scenCfg != nil && len(scenCfg.Phases) > 0 {
		// Phased workloads run their phases back to back, each with its own
		// profile, skew and salted seed — the wall-clock analogue of the
		// deterministic harness's phase-aware stream.
		for i, p := range scenCfg.Phases {
			rf, err := p.Profile.ReadFraction()
			if err != nil {
				return err
			}
			fmt.Printf("phase %d: profile %s, %d ops\n", i, p.Profile, p.Ops)
			mergeReport(&total, runClients(c, *clients, p.Ops, rf, *keys, p.Zipf, *seed+int64(i)))
		}
	} else {
		total = runClients(c, *clients, *ops, *readFraction, *keys, *zipf, *seed)
	}
	if schedErr != nil {
		if err := schedErr(); err != nil && !errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "schedule:", err)
		}
	}

	fmt.Printf("ran %d ops in %v (%.0f ops/s)\n", total.Ops(), total.Elapsed,
		float64(total.Ops())/total.Elapsed.Seconds())
	fmt.Printf("  reads: %d ok (%d not-found), %d failed  [p50 %v, p99 %v]\n",
		total.Reads, total.NotFound, total.ReadFailures,
		total.ReadLatency.P50, total.ReadLatency.P99)
	fmt.Printf("  writes: %d ok, %d failed  [p50 %v, p99 %v]\n",
		total.Writes, total.WriteFailures,
		total.WriteLatency.P50, total.WriteLatency.P99)

	rep := c.LoadReport()
	// Version reads issued by writes are attributed to DiscoveryServes, so
	// the read-load denominator is read operations only.
	readOps := total.Reads + total.ReadFailures
	fmt.Printf("\nempirical loads: read %.4f (theory %.4f), write %.4f (theory %.4f)\n",
		rep.MaxReadLoad(readOps), a.ReadLoad, rep.MaxWriteLoad(total.Writes+total.WriteFailures), a.WriteLoad)

	st := c.NetworkStats()
	fmt.Printf("network: %d sent, %d delivered, %d dropped, %d delayed\n",
		st.Sent, st.Delivered, st.Dropped, st.Delayed)
	if st.WireBytes > 0 {
		fmt.Printf("wire: %d bytes through the %s codec\n", st.WireBytes, *codec)
	}

	fmt.Println("\nper-site participations (read-serves / write-serves / discovery-serves):")
	for _, s := range rep.Sites {
		fmt.Printf("  site %3d: %6d / %6d / %6d\n", s.Site, s.ReadServes, s.WriteServes, s.DiscoveryServes)
	}

	if *metrics {
		printMetricTables(c, observer)
	}
	if *traceN > 0 {
		printTraces(observer, *traceN)
	}
	return nil
}

// printMetricTables prints the observer-backed per-level load table and the
// client latency quantiles gathered by the instrumented run.
func printMetricTables(c *cluster.Cluster, observer *obs.Observer) {
	snap := c.StatsSnapshot()
	perSite := make(map[tree.SiteID]cluster.SiteLoad, len(snap.Load.Sites))
	for _, s := range snap.Load.Sites {
		perSite[s.Site] = s
	}
	fmt.Println("\nper-level load (sites, read-serves, write-serves, discovery-serves):")
	for u := 0; u < snap.Proto.NumPhysicalLevels(); u++ {
		sites := snap.Proto.LevelSites(u)
		var reads, writes, disc uint64
		for _, s := range sites {
			reads += perSite[s].ReadServes
			writes += perSite[s].WriteServes
			disc += perSite[s].DiscoveryServes
		}
		fmt.Printf("  level %d: %3d sites, %8d reads, %8d writes, %8d discovery\n",
			u, len(sites), reads, writes, disc)
	}

	dur := observer.Registry.HistogramVec("arbor_client_op_duration_seconds",
		"End-to-end client operation latency, including level fallbacks and retries.", "op")
	fmt.Println("\nlatency quantiles (histogram estimates):")
	for _, op := range []string{"read", "write"} {
		h := dur.With(op)
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-5s p50 %-10v p90 %-10v p99 %-10v (n=%d)\n",
			op, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Count())
	}
}

// printTraces prints a one-line summary per recorded operation trace.
func printTraces(observer *obs.Observer, n int) {
	traces := observer.Traces.Last(n)
	fmt.Printf("\nlast %d operation traces:\n", len(traces))
	for _, t := range traces {
		fmt.Printf("  #%d %-5s key=%-12q outcome=%-11s contacts=%d elapsed=%v levels=%d\n",
			t.ID, t.Op, t.Key, t.Outcome, t.Contacts, t.End.Sub(t.Start), len(t.Attempts))
	}
}

// runClients spreads the operation budget across the requested clients.
func runClients(c *cluster.Cluster, clients, ops int, readFraction float64, keys int, zipf float64, seed int64) cluster.RunReport {
	ctx := context.Background()
	type result struct {
		rep cluster.RunReport
		err error
	}
	results := make(chan result, clients)
	share := ops / clients
	start := time.Now()
	for i := 0; i < clients; i++ {
		n := share
		if i == clients-1 {
			n = ops - share*(clients-1)
		}
		go func(i, n int) {
			cli, err := c.NewClient()
			if err != nil {
				results <- result{err: err}
				return
			}
			gen, err := workload.NewGenerator(workload.Config{
				ReadFraction: readFraction,
				Keys:         keys,
				ZipfS:        zipf,
				Seed:         seed + int64(i),
			})
			if err != nil {
				results <- result{err: err}
				return
			}
			results <- result{rep: cluster.RunWorkload(ctx, cli, gen, n)}
		}(i, n)
	}
	var total cluster.RunReport
	for i := 0; i < clients; i++ {
		r := <-results
		if r.err != nil {
			fmt.Fprintln(os.Stderr, "client error:", r.err)
			continue
		}
		mergeReport(&total, r.rep)
	}
	total.Elapsed = time.Since(start)
	return total
}

// mergeReport folds one run report into the running total, summing the
// counters and elapsed time and merging the latency sketches.
func mergeReport(total *cluster.RunReport, r cluster.RunReport) {
	total.Reads += r.Reads
	total.Writes += r.Writes
	total.ReadFailures += r.ReadFailures
	total.WriteFailures += r.WriteFailures
	total.NotFound += r.NotFound
	total.ReadLatency = total.ReadLatency.Merge(r.ReadLatency)
	total.WriteLatency = total.WriteLatency.Merge(r.WriteLatency)
	total.Elapsed += r.Elapsed
}
