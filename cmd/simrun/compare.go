package main

import (
	"context"
	"errors"
	"fmt"

	"arbor/internal/client"
	"arbor/internal/cluster"
	"arbor/internal/core"
	"arbor/internal/tree"
)

// runComparison measures per-operation replica contacts for three points of
// the configuration spectrum at the same n and prints them against the
// closed-form predictions — a live, measured rendition of Figure 2.
func runComparison(n, ops int, readFraction float64, seed int64) error {
	if n%2 == 0 {
		n++ // MOSTLY-WRITE needs odd n; use the same n everywhere
	}
	mostlyRead, err := tree.MostlyRead(n)
	if err != nil {
		return err
	}
	balanced, err := balancedTree(n)
	if err != nil {
		return err
	}
	mostlyWrite, err := tree.MostlyWrite(n)
	if err != nil {
		return err
	}

	fmt.Printf("live configuration comparison: n=%d, %d ops, %.0f%% reads\n\n", n, ops, readFraction*100)
	fmt.Printf("%-14s %-22s %12s %10s %13s %11s\n",
		"configuration", "tree", "read cont.", "(theory)", "write cont.", "(theory)")
	for _, cfg := range []struct {
		name string
		t    *tree.Tree
	}{
		{name: "MOSTLY-READ", t: mostlyRead},
		{name: "BALANCED", t: balanced},
		{name: "MOSTLY-WRITE", t: mostlyWrite},
	} {
		if err := measureConfig(cfg.name, cfg.t, ops, readFraction, seed); err != nil {
			return err
		}
	}
	fmt.Println("\nwrite contacts include the version-discovery read quorum (|K_phy| extra).")
	return nil
}

// balancedTree splits n over √n-ish levels (Algorithm 1 when it applies).
func balancedTree(n int) (*tree.Tree, error) {
	if t, err := tree.Algorithm1(n); err == nil {
		return t, nil
	}
	// Small n: split over ~√n levels evenly.
	levels := 1
	for (levels+1)*(levels+1) <= n {
		levels++
	}
	counts := make([]int, levels)
	base, extra := n/levels, n%levels
	for i := range counts {
		counts[i] = base
		if i >= levels-extra {
			counts[i]++
		}
	}
	return tree.PhysicalLevelSizes(counts...)
}

// measureConfig runs the workload on one configuration and prints measured
// vs predicted contacts.
func measureConfig(name string, t *tree.Tree, ops int, readFraction float64, seed int64) error {
	c, err := cluster.New(t, cluster.WithSeed(seed))
	if err != nil {
		return err
	}
	defer c.Close()
	cli, err := c.NewClient()
	if err != nil {
		return err
	}
	ctx := context.Background()

	var readContacts, writeContacts, reads, writes int
	for i := 0; i < ops; i++ {
		key := fmt.Sprintf("k%d", i%8)
		if float64(i%100)/100 < readFraction {
			rd, err := cli.Read(ctx, key)
			if err != nil && !errors.Is(err, client.ErrNotFound) {
				return fmt.Errorf("%s read: %w", name, err)
			}
			readContacts += rd.Contacts
			reads++
			continue
		}
		wr, err := cli.Write(ctx, key, []byte("v"))
		if err != nil {
			return fmt.Errorf("%s write: %w", name, err)
		}
		writeContacts += wr.Contacts
		writes++
	}

	a := core.Analyze(t)
	spec := t.Spec()
	if len(spec) > 22 {
		spec = spec[:19] + "..."
	}
	readAvg, writeAvg := 0.0, 0.0
	if reads > 0 {
		readAvg = float64(readContacts) / float64(reads)
	}
	if writes > 0 {
		writeAvg = float64(writeContacts) / float64(writes)
	}
	fmt.Printf("%-14s %-22s %12.2f %10d %13.2f %11.2f\n",
		name, spec, readAvg, a.ReadCost, writeAvg, float64(a.ReadCost)+a.WriteCostAvg)
	return nil
}
