package main

import "testing"

func TestRunBasic(t *testing.T) {
	if err := run([]string{"-spec", "1-3-5", "-ops", "100", "-seed", "2"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAlgorithm1WithOptions(t *testing.T) {
	args := []string{
		"-algorithm1", "64",
		"-ops", "60",
		"-read-fraction", "0.5",
		"-clients", "2",
		"-zipf", "1.3",
		"-keys", "8",
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithCrashes(t *testing.T) {
	if err := run([]string{"-spec", "1-3-5", "-ops", "40", "-crash", "1,4", "-timeout", "50ms"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithNetworkFaults(t *testing.T) {
	args := []string{
		"-spec", "1-2-3",
		"-ops", "30",
		"-latency", "1ms",
		"-jitter", "1ms",
		"-drop", "0.01",
		"-timeout", "200ms",
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunWithSchedule(t *testing.T) {
	args := []string{
		"-spec", "1-3-5",
		"-ops", "60",
		"-timeout", "40ms",
		"-schedule", "5ms:crash=1;30ms:recoverall",
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-spec", "garbage"},
		{"-spec", "1-3-5", "-crash", "xyz"},
		{"-spec", "1-3-5", "-crash", "99"},
		{"-spec", "1-3-5", "-schedule", "bad"},
		{"-bogus"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestRunCompare(t *testing.T) {
	if err := run([]string{"-compare", "-ops", "60"}); err != nil {
		t.Fatalf("compare: %v", err)
	}
	if err := run([]string{"-compare", "-algorithm1", "66", "-ops", "40"}); err != nil {
		t.Fatalf("compare n=66: %v", err)
	}
}
