// Command arbord runs a replicated key-value service backed by the
// arbitrary tree-structured replica control protocol and exposes it over
// HTTP:
//
//	GET  /get?key=K                 read through a read quorum
//	PUT  /put?key=K (body = value)  write through a write quorum (2PC)
//	GET  /stats                     cluster metrics (JSON)
//	GET  /metrics                   Prometheus text exposition
//	GET  /traces?last=N             recent per-operation traces (JSON)
//	POST /checkpoint                persist all replica stores to -data-dir
//	POST /crash?site=S              fail-stop a replica
//	POST /drain?site=S              gracefully drain a replica (finish in-flight 2PC, then down)
//	POST /recover?site=S            recover a replica (or all with site=all)
//	POST /reconfigure?spec=1-4-4    reshape the tree live
//	GET  /controller?last=N         adaptation controller state + decision journal (JSON)
//	POST /controller?action=enable  enable (or disable) the adaptation controller
//
// Usage:
//
//	arbord -spec 1-3-5 -listen 127.0.0.1:8080 -adapt
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"arbor/internal/client"
	"arbor/internal/cluster"
	"arbor/internal/obs"
	"arbor/internal/tree"
	"arbor/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "arbord:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("arbord", flag.ContinueOnError)
	var (
		spec     = fs.String("spec", "1-3-5", "replica tree spec")
		listen   = fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
		seed     = fs.Int64("seed", 1, "random seed")
		data     = fs.String("data-dir", "", "checkpoint directory (restored at startup when present)")
		walDir   = fs.String("wal-dir", "", "write-ahead-log directory (replayed at startup)")
		traceCap = fs.Int("trace-cap", obs.DefaultTraceCapacity, "operation traces kept in memory for /traces")
		adapt    = fs.Bool("adapt", false, "start with the adaptation controller enabled (toggle later via /controller)")
		codec    = fs.String("codec", "", `wire codec to round-trip every message through ("binary" or "gob"; empty = in-memory delivery without serialization)`)
		inflight = fs.Int("maxinflight", 0, "per-replica admission limit on in-flight gated requests (0 = replica default; excess work sheds with a typed overload reply)")
		budget   = fs.String("retrybudget", "", `serving client's retry budget as "perOp:burst", e.g. "0.1:10" (empty = retries ungated)`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := tree.ParseSpec(*spec)
	if err != nil {
		return err
	}
	var extra []cluster.Option
	if *walDir != "" {
		extra = append(extra, cluster.WithWALDir(*walDir))
	}
	if *codec != "" {
		c, err := wire.ByName(*codec)
		if err != nil {
			return err
		}
		extra = append(extra, cluster.WithCodec(c))
	}
	if *inflight > 0 {
		extra = append(extra, cluster.WithMaxInflight(*inflight))
	}
	var cliOpts []client.Option
	if *budget != "" {
		perOp, burst, err := parseRetryBudget(*budget)
		if err != nil {
			return err
		}
		cliOpts = append(cliOpts, client.WithRetryBudget(perOp, burst))
	}
	srv, err := newServer(t, *seed, *traceCap, cliOpts, extra...)
	if err != nil {
		return err
	}
	if *data != "" {
		srv.dataDir = *data
		if err := srv.cluster.RestoreCheckpoint(*data); err != nil {
			srv.Close()
			return err
		}
	}
	if *adapt {
		srv.ctl.SetEnabled(true)
	}
	defer srv.Close()
	fmt.Printf("arbord: serving %s on http://%s\n", t, *listen)
	return http.ListenAndServe(*listen, srv)
}

// parseRetryBudget reads the -retrybudget "perOp:burst" syntax: tokens
// earned per operation (a small fraction, SRE-style retry cap) and the
// bucket's burst capacity in whole retries.
func parseRetryBudget(s string) (perOp float64, burst int, err error) {
	rate, after, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf(`retrybudget %q: want "perOp:burst", e.g. "0.1:10"`, s)
	}
	perOp, err = strconv.ParseFloat(rate, 64)
	if err != nil || perOp <= 0 {
		return 0, 0, fmt.Errorf("retrybudget %q: per-op rate must be a positive number", s)
	}
	burst, err = strconv.Atoi(after)
	if err != nil || burst <= 0 {
		return 0, 0, fmt.Errorf("retrybudget %q: burst must be a positive integer", s)
	}
	return perOp, burst, nil
}
