package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"arbor/internal/cluster"
	"arbor/internal/obs"
	"arbor/internal/tree"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	tr, err := tree.ParseSpec("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(tr, 1, 64, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func do(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestPutGetRoundTrip(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := do(t, http.MethodPut, ts.URL+"/put?key=greeting", "hello")
	if code != http.StatusOK {
		t.Fatalf("put: %d %s", code, body)
	}
	if !strings.Contains(body, "ok level=") {
		t.Errorf("put body = %q", body)
	}
	code, body = do(t, http.MethodGet, ts.URL+"/get?key=greeting", "")
	if code != http.StatusOK || body != "hello" {
		t.Errorf("get: %d %q", code, body)
	}
}

func TestGetMissingKey(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := do(t, http.MethodGet, ts.URL+"/get?key=nope", ""); code != http.StatusNotFound {
		t.Errorf("missing key: %d", code)
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/get", ""); code != http.StatusBadRequest {
		t.Errorf("missing param: %d", code)
	}
}

func TestPutValidation(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := do(t, http.MethodGet, ts.URL+"/put?key=k", "v"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET on /put: %d", code)
	}
	if code, _ := do(t, http.MethodPut, ts.URL+"/put", "v"); code != http.StatusBadRequest {
		t.Errorf("missing key: %d", code)
	}
}

func TestStats(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, http.MethodPut, ts.URL+"/put?key=k", "v")
	do(t, http.MethodGet, ts.URL+"/get?key=k", "")
	code, body := do(t, http.MethodGet, ts.URL+"/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var st statsResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("stats json: %v\n%s", err, body)
	}
	if st.Tree != "1-3-5" || st.N != 8 || st.Levels != 2 {
		t.Errorf("stats identity: %+v", st)
	}
	if st.Client.Reads != 1 || st.Client.Writes != 1 {
		t.Errorf("client metrics: %+v", st.Client)
	}
	if len(st.Participation) != 8 {
		t.Errorf("participation rows: %d", len(st.Participation))
	}
}

func TestCrashRecoverCycle(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, http.MethodPut, ts.URL+"/put?key=k", "v")

	// Crash all of level 0 (sites 1..3): reads must 503.
	for _, s := range []string{"1", "2", "3"} {
		if code, _ := do(t, http.MethodPost, ts.URL+"/crash?site="+s, ""); code != http.StatusOK {
			t.Fatalf("crash %s: %d", s, code)
		}
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/get?key=k", ""); code != http.StatusServiceUnavailable {
		t.Errorf("get with level down: %d", code)
	}
	if code, _ := do(t, http.MethodPost, ts.URL+"/recover?site=all", ""); code != http.StatusOK {
		t.Error("recover all failed")
	}
	if code, body := do(t, http.MethodGet, ts.URL+"/get?key=k", ""); code != http.StatusOK || body != "v" {
		t.Errorf("get after recovery: %d %q", code, body)
	}

	// Error paths.
	if code, _ := do(t, http.MethodPost, ts.URL+"/crash?site=99", ""); code != http.StatusNotFound {
		t.Error("crash unknown site")
	}
	if code, _ := do(t, http.MethodPost, ts.URL+"/crash?site=x", ""); code != http.StatusBadRequest {
		t.Error("crash bad site")
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/crash?site=1", ""); code != http.StatusMethodNotAllowed {
		t.Error("GET on /crash")
	}
	if code, _ := do(t, http.MethodPost, ts.URL+"/recover?site=x", ""); code != http.StatusBadRequest {
		t.Error("recover bad site")
	}
	if code, _ := do(t, http.MethodPost, ts.URL+"/recover?site=99", ""); code != http.StatusNotFound {
		t.Error("recover unknown site")
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/recover?site=1", ""); code != http.StatusMethodNotAllowed {
		t.Error("GET on /recover")
	}
}

func TestReconfigureEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, http.MethodPut, ts.URL+"/put?key=k", "v")

	code, body := do(t, http.MethodPost, ts.URL+"/reconfigure?spec=1-2-2-4", "")
	if code != http.StatusOK {
		t.Fatalf("reconfigure: %d %s", code, body)
	}
	code, body = do(t, http.MethodGet, ts.URL+"/get?key=k", "")
	if code != http.StatusOK || body != "v" {
		t.Errorf("get after reshape: %d %q", code, body)
	}
	// Stats reflect the new shape.
	_, stats := do(t, http.MethodGet, ts.URL+"/stats", "")
	if !strings.Contains(stats, "1-2-2-4") {
		t.Errorf("stats tree not updated: %s", stats)
	}

	// Error paths.
	if code, _ := do(t, http.MethodPost, ts.URL+"/reconfigure?spec=bad", ""); code != http.StatusBadRequest {
		t.Error("bad spec accepted")
	}
	if code, _ := do(t, http.MethodPost, ts.URL+"/reconfigure?spec=1-3-4", ""); code != http.StatusConflict {
		t.Error("wrong replica count accepted")
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/reconfigure?spec=1-3-5", ""); code != http.StatusMethodNotAllowed {
		t.Error("GET on /reconfigure")
	}
}

// TestControllerEndpoint exercises inspection and toggling of the
// adaptation controller: fresh servers start disabled, enable/disable
// round-trips (journaling each transition), and malformed requests map to
// 4xx.
func TestControllerEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	getController := func(query string) controllerResponse {
		t.Helper()
		code, body := do(t, http.MethodGet, ts.URL+"/controller"+query, "")
		if code != http.StatusOK {
			t.Fatalf("/controller: %d %s", code, body)
		}
		var resp controllerResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("/controller JSON: %v in %s", err, body)
		}
		return resp
	}

	resp := getController("")
	if resp.State.Enabled {
		t.Error("controller starts enabled, want disabled")
	}
	if resp.State.CurrentSpec != "1-3-5" || resp.State.Window == 0 {
		t.Errorf("controller state = %+v", resp.State)
	}
	if len(resp.Journal) != 0 {
		t.Errorf("fresh controller has %d journal entries, want 0", len(resp.Journal))
	}

	code, body := do(t, http.MethodPost, ts.URL+"/controller?action=enable", "")
	if code != http.StatusOK || !strings.Contains(body, "controller enabled") {
		t.Fatalf("enable: %d %q", code, body)
	}
	code, body = do(t, http.MethodPost, ts.URL+"/controller?action=enable", "")
	if code != http.StatusOK || !strings.Contains(body, "already enabled") {
		t.Errorf("re-enable: %d %q", code, body)
	}
	resp = getController("?last=10")
	if !resp.State.Enabled {
		t.Error("controller not enabled after POST")
	}
	if len(resp.Journal) != 1 || resp.Journal[0].Action != "enable" {
		t.Errorf("journal after enable = %+v, want one enable entry", resp.Journal)
	}
	if code, body := do(t, http.MethodPost, ts.URL+"/controller?action=disable", ""); code != http.StatusOK || !strings.Contains(body, "controller disabled") {
		t.Errorf("disable: %d %q", code, body)
	}

	// The controller's metric families are registered on /metrics.
	_, metrics := do(t, http.MethodGet, ts.URL+"/metrics", "")
	for _, want := range []string{"arbor_adapt_enabled", "arbor_adapt_decisions_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Error paths.
	if code, _ := do(t, http.MethodPost, ts.URL+"/controller?action=explode", ""); code != http.StatusBadRequest {
		t.Error("bad action accepted")
	}
	if code, _ := do(t, http.MethodPost, ts.URL+"/controller", ""); code != http.StatusBadRequest {
		t.Error("missing action accepted")
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/controller?last=nope", ""); code != http.StatusBadRequest {
		t.Error("bad last accepted")
	}
	if code, _ := do(t, http.MethodDelete, ts.URL+"/controller", ""); code != http.StatusMethodNotAllowed {
		t.Error("DELETE on /controller")
	}
}

func TestRunFlagErrors(t *testing.T) {
	if err := run([]string{"-spec", "garbage"}); err == nil {
		t.Error("bad spec accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	for _, bad := range []string{"nope", "0.1", ":5", "0.1:", "-1:5", "0.1:0"} {
		if err := run([]string{"-retrybudget", bad}); err == nil {
			t.Errorf("retrybudget %q accepted", bad)
		}
	}
}

// TestDrainEndpoint drains a site over HTTP, checks it reads as down in
// /health while the service keeps answering, and recovers it.
func TestDrainEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	if code, body := do(t, http.MethodPut, ts.URL+"/put?key=k", "v"); code != http.StatusOK {
		t.Fatalf("put: %d %s", code, body)
	}
	if code, body := do(t, http.MethodGet, ts.URL+"/drain?site=2", ""); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /drain: %d %s, want 405", code, body)
	}
	if code, body := do(t, http.MethodPost, ts.URL+"/drain?site=99", ""); code != http.StatusNotFound {
		t.Fatalf("drain of unknown site: %d %s, want 404", code, body)
	}
	code, body := do(t, http.MethodPost, ts.URL+"/drain?site=2", "")
	if code != http.StatusOK || !strings.Contains(body, "drained site 2") {
		t.Fatalf("drain: %d %s", code, body)
	}

	var health struct {
		Down  int `json:"down"`
		Sites []struct {
			Site   int    `json:"site"`
			Health string `json:"health"`
		} `json:"sites"`
	}
	_, hbody := do(t, http.MethodGet, ts.URL+"/health", "")
	if err := json.Unmarshal([]byte(hbody), &health); err != nil {
		t.Fatalf("health decode: %v", err)
	}
	if health.Down != 1 {
		t.Errorf("health.down = %d after drain, want 1", health.Down)
	}
	for _, s := range health.Sites {
		if s.Site == 2 && s.Health != "down" {
			t.Errorf("site 2 health = %q, want down", s.Health)
		}
	}

	// The protocol serves around the drained site, acked data intact.
	if code, body := do(t, http.MethodGet, ts.URL+"/get?key=k", ""); code != http.StatusOK || body != "v" {
		t.Fatalf("get during drain: %d %q", code, body)
	}
	if code, body := do(t, http.MethodPost, ts.URL+"/recover?site=2", ""); code != http.StatusOK {
		t.Fatalf("recover: %d %s", code, body)
	}
	if code, body := do(t, http.MethodGet, ts.URL+"/get?key=k", ""); code != http.StatusOK || body != "v" {
		t.Fatalf("get after recover: %d %q", code, body)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	// No data dir configured: conflict.
	if code, _ := do(t, http.MethodPost, ts.URL+"/checkpoint", ""); code != http.StatusConflict {
		t.Errorf("checkpoint without data dir: %d", code)
	}
	if code, _ := do(t, http.MethodGet, ts.URL+"/checkpoint", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /checkpoint: %d", code)
	}
	srv.dataDir = t.TempDir()
	do(t, http.MethodPut, ts.URL+"/put?key=k", "v")
	if code, body := do(t, http.MethodPost, ts.URL+"/checkpoint", ""); code != http.StatusOK {
		t.Errorf("checkpoint: %d %s", code, body)
	}
	// The snapshots land on disk.
	entries, err := os.ReadDir(srv.dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Errorf("%d snapshots, want 8", len(entries))
	}
}

func TestServerWithWAL(t *testing.T) {
	dir := t.TempDir()
	tr, err := tree.ParseSpec("1-2-3")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := newServer(tr, 1, 64, nil, cluster.WithWALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	do(t, http.MethodPut, ts.URL+"/put?key=k", "durable")
	ts.Close()
	srv.Close()

	// Restarting on the same WAL directory recovers the data.
	srv2, err := newServer(tr, 2, 64, nil, cluster.WithWALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2)
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	code, body := do(t, http.MethodGet, ts2.URL+"/get?key=k", "")
	if code != http.StatusOK || body != "durable" {
		t.Errorf("get after WAL restart: %d %q", code, body)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	do(t, http.MethodPut, ts.URL+"/put?key=m", "v")
	do(t, http.MethodGet, ts.URL+"/get?key=m", "")

	req, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer req.Body.Close()
	if req.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", req.StatusCode)
	}
	if ct := req.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	b, err := io.ReadAll(req.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)

	// Every line must be a comment or a well-formed sample, and no series
	// may appear twice.
	seen := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatal("blank line in /metrics output")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx <= 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		if _, err := strconv.ParseFloat(line[idx+1:], 64); err != nil {
			t.Fatalf("sample line %q: bad value: %v", line, err)
		}
		key := line[:idx]
		if seen[key] {
			t.Fatalf("duplicate series %q", key)
		}
		seen[key] = true
	}

	for _, want := range []string{
		`arbor_replica_serves_total{site="1",type="read"}`,       // per-site serve counters
		`arbor_cluster_level_serves{level="0",kind="read"}`,      // per-level load gauges
		`arbor_client_op_duration_seconds_bucket{op="read",le=`,  // read latency histogram
		`arbor_client_op_duration_seconds_bucket{op="write",le=`, // write latency histogram
		`arbor_cluster_load{op="write",source="empirical"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestTracesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	for i := 0; i < 5; i++ {
		do(t, http.MethodPut, ts.URL+"/put?key=t"+strconv.Itoa(i), "v")
	}

	code, body := do(t, http.MethodGet, ts.URL+"/traces?last=3", "")
	if code != http.StatusOK {
		t.Fatalf("/traces: %d %s", code, body)
	}
	var traces []obs.OpTrace
	if err := json.Unmarshal([]byte(body), &traces); err != nil {
		t.Fatalf("/traces not JSON: %v", err)
	}
	if len(traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(traces))
	}
	for i, tr := range traces {
		if tr.Op != "write" || tr.Outcome != obs.OutcomeOK {
			t.Errorf("trace %d: %+v", i, tr)
		}
		if tr.Key != "t"+strconv.Itoa(2+i) {
			t.Errorf("trace %d: key %q, want t%d (last N, oldest first)", i, tr.Key, 2+i)
		}
		if len(tr.Attempts) == 0 {
			t.Errorf("trace %d has no level attempts", i)
		}
	}

	if code, _ := do(t, http.MethodGet, ts.URL+"/traces?last=nope", ""); code != http.StatusBadRequest {
		t.Errorf("bad last value: code %d, want 400", code)
	}
}

// TestHealthEndpoint walks a site through the full lifecycle — live, down,
// catching up via /recover?sync=true, live again — and checks /health
// reflects each state.
func TestHealthEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)

	getHealth := func() healthResponse {
		t.Helper()
		code, body := do(t, http.MethodGet, ts.URL+"/health", "")
		if code != http.StatusOK {
			t.Fatalf("/health: %d %s", code, body)
		}
		var resp healthResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("/health JSON: %v in %s", err, body)
		}
		return resp
	}

	resp := getHealth()
	if resp.Live != 8 || resp.Down != 0 || resp.CatchingUp != 0 {
		t.Fatalf("fresh cluster health = %+v, want 8 live", resp)
	}
	if len(resp.Sites) != 8 || resp.Sites[0].Site != 1 {
		t.Fatalf("sites = %+v, want 8 entries sorted from site 1", resp.Sites)
	}

	if code, body := do(t, http.MethodPost, ts.URL+"/crash?site=4", ""); code != http.StatusOK {
		t.Fatalf("crash: %d %s", code, body)
	}
	resp = getHealth()
	if resp.Down != 1 {
		t.Fatalf("health after crash = %+v, want 1 down", resp)
	}

	// Make the crashed site miss a write, then rejoin through catch-up.
	if code, body := do(t, http.MethodPut, ts.URL+"/put?key=k", "v"); code != http.StatusOK {
		t.Fatalf("put: %d %s", code, body)
	}
	if code, body := do(t, http.MethodPost, ts.URL+"/recover?site=4&sync=true", ""); code != http.StatusOK {
		t.Fatalf("recover sync: %d %s", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.cluster.AwaitSync(ctx); err != nil {
		t.Fatalf("await sync: %v", err)
	}
	resp = getHealth()
	if resp.Live != 8 {
		t.Fatalf("health after catch-up = %+v, want 8 live again", resp)
	}
	for _, hs := range resp.Sites {
		if hs.Site == 4 && hs.Catchups == 0 {
			t.Errorf("site 4 reports no completed catch-up: %+v", hs)
		}
	}
}
