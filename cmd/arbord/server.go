package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"arbor/internal/adapt"
	"arbor/internal/client"
	"arbor/internal/cluster"
	"arbor/internal/obs"
	"arbor/internal/replica"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

// server hosts the cluster and implements the HTTP API.
type server struct {
	mux *http.ServeMux

	// dataDir, when set, is where /checkpoint persists replica stores.
	dataDir string

	// obs carries the metric registry behind /metrics and the trace
	// recorder behind /traces.
	obs *obs.Observer

	// ctl is the adaptation controller behind /controller. It is always
	// created (so the endpoint and the arbor_adapt_* metrics exist) but
	// starts disabled unless -adapt is given; its evaluation loop runs in
	// stepController until stop is called.
	ctl  *adapt.Controller
	stop context.CancelFunc

	mu      sync.Mutex // serializes administrative actions
	cluster *cluster.Cluster
	cli     *client.Client
}

var _ http.Handler = (*server)(nil)

// newServer builds the cluster and its HTTP routes. traceCap bounds the
// in-memory operation trace ring served by /traces; cliOpts configure the
// serving client (retry budget, op deadline).
func newServer(t *tree.Tree, seed int64, traceCap int, cliOpts []client.Option, extra ...cluster.Option) (*server, error) {
	o := obs.NewObserver(traceCap)
	opts := append([]cluster.Option{cluster.WithSeed(seed), cluster.WithObserver(o)}, extra...)
	c, err := cluster.New(t, opts...)
	if err != nil {
		return nil, err
	}
	cli, err := c.NewClient(cliOpts...)
	if err != nil {
		c.Close()
		return nil, err
	}
	// Wall clock injected: the daemon's cooldown and journal timestamps
	// should read in operator time, unlike the harness's logical clock.
	ctl, err := adapt.New(c, adapt.WithClock(time.Now))
	if err != nil {
		c.Close()
		return nil, err
	}
	s := &server{mux: http.NewServeMux(), obs: o, cluster: c, cli: cli, ctl: ctl}
	ctx, cancel := context.WithCancel(context.Background())
	s.stop = cancel
	go s.stepController(ctx, adapt.DefaultInterval)
	s.mux.HandleFunc("/get", s.handleGet)
	s.mux.HandleFunc("/put", s.handlePut)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/health", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/traces", s.handleTraces)
	s.mux.HandleFunc("/crash", s.handleCrash)
	s.mux.HandleFunc("/drain", s.handleDrain)
	s.mux.HandleFunc("/recover", s.handleRecover)
	s.mux.HandleFunc("/reconfigure", s.handleReconfigure)
	s.mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/controller", s.handleController)
	return s, nil
}

// stepController drives the adaptation loop. Steps take the admin lock so a
// controller-driven migration serializes with /reconfigure, /stats and
// /metrics exactly like an operator-driven one — no scrape ever observes
// the cluster mid-swap, whoever initiated the swap.
func (s *server) stepController(ctx context.Context, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.mu.Lock()
			s.ctl.Step()
			s.mu.Unlock()
		}
	}
}

// ServeHTTP dispatches to the API routes.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the controller loop and shuts the cluster down.
func (s *server) Close() {
	s.stop()
	s.cluster.Close()
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	res, err := s.cli.Read(r.Context(), key)
	switch {
	case errors.Is(err, client.ErrNotFound):
		http.Error(w, "not found", http.StatusNotFound)
		return
	case errors.Is(err, client.ErrReadUnavailable):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-Arbor-Version", res.TS.String())
	w.Header().Set("X-Arbor-Contacts", strconv.Itoa(res.Contacts))
	_, _ = w.Write(res.Value)
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut && r.Method != http.MethodPost {
		http.Error(w, "use PUT", http.StatusMethodNotAllowed)
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	value, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.cli.Write(r.Context(), key, value)
	switch {
	case errors.Is(err, client.ErrWriteUnavailable):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, client.ErrInDoubt):
		w.WriteHeader(http.StatusAccepted) // committed, acks incomplete
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-Arbor-Version", res.TS.String())
	fmt.Fprintf(w, "ok level=%d contacts=%d\n", res.Level, res.Contacts)
}

// statsResponse is the /stats JSON document.
type statsResponse struct {
	Tree          string              `json:"tree"`
	N             int                 `json:"replicas"`
	Levels        int                 `json:"physicalLevels"`
	Client        client.Metrics      `json:"client"`
	Network       networkStats        `json:"network"`
	Participation []participationStat `json:"participation"`
	Load          loadStats           `json:"load"`
}

type networkStats struct {
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	Delayed   uint64 `json:"delayed"`
}

type participationStat struct {
	Site            int    `json:"site"`
	Crashed         bool   `json:"crashed"`
	ReadServes      uint64 `json:"readServes"`
	WriteServes     uint64 `json:"writeServes"`
	DiscoveryServes uint64 `json:"discoveryServes"`
}

// loadStats reports the Eq 3.2 closed-form loads of the current tree next
// to the measured values.
type loadStats struct {
	TheoryRead     float64 `json:"theoryRead"`
	TheoryWrite    float64 `json:"theoryWrite"`
	EmpiricalRead  float64 `json:"empiricalRead"`
	EmpiricalWrite float64 `json:"empiricalWrite"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	// The admin lock pairs with /reconfigure: a scrape never observes the
	// cluster mid-swap, and the snapshot itself pins one (tree, protocol)
	// pair for the whole response.
	s.mu.Lock()
	snap := s.cluster.StatsSnapshot()
	s.mu.Unlock()
	check := snap.TheoryCheck()
	resp := statsResponse{
		Tree:   snap.Tree.Spec(),
		N:      snap.Tree.N(),
		Levels: snap.Proto.NumPhysicalLevels(),
		Client: s.cli.Metrics(),
		Network: networkStats{
			Sent:      snap.Network.Sent,
			Delivered: snap.Network.Delivered,
			Dropped:   snap.Network.Dropped,
			Delayed:   snap.Network.Delayed,
		},
		Load: loadStats{
			TheoryRead:     check.TheoryReadLoad,
			TheoryWrite:    check.TheoryWriteLoad,
			EmpiricalRead:  check.EmpiricalReadLoad,
			EmpiricalWrite: check.EmpiricalWriteLoad,
		},
	}
	for _, sl := range snap.Load.Sites {
		resp.Participation = append(resp.Participation, participationStat{
			Site:            int(sl.Site),
			Crashed:         s.cluster.Replica(sl.Site).Crashed(),
			ReadServes:      sl.ReadServes,
			WriteServes:     sl.WriteServes,
			DiscoveryServes: sl.DiscoveryServes,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// healthSite is one site's entry in the /health JSON document. The breaker
// field is the API client's circuit-breaker verdict on the site; sync fields
// report anti-entropy catch-up progress and survive into the live state, so
// an operator can see what the last recovery cost.
type healthSite struct {
	Site        int    `json:"site"`
	Health      string `json:"health"`
	Breaker     string `json:"breaker,omitempty"`
	SyncActive  bool   `json:"syncActive,omitempty"`
	KeysPulled  uint64 `json:"keysPulled,omitempty"`
	SyncRetries uint64 `json:"syncRetries,omitempty"`
	Catchups    uint64 `json:"catchups,omitempty"`
}

// healthResponse is the /health JSON document.
type healthResponse struct {
	Live       int          `json:"live"`
	CatchingUp int          `json:"catchingUp"`
	Down       int          `json:"down"`
	Sites      []healthSite `json:"sites"`
}

// handleHealth reports each replica's lifecycle state (live, catching-up or
// down), its catch-up progress, and the serving client's breaker state for
// the site.
func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	healths := s.cluster.Healths()
	breakers := s.cli.BreakerStates()
	resp := healthResponse{Sites: make([]healthSite, 0, len(healths))}
	for site, h := range healths {
		hs := healthSite{Site: int(site), Health: h.String()}
		if st, ok := breakers[transport.Addr(site)]; ok {
			hs.Breaker = st.String()
		}
		p := s.cluster.Replica(site).SyncProgress()
		hs.SyncActive = p.Active
		hs.KeysPulled = p.KeysPulled
		hs.SyncRetries = p.Retries
		hs.Catchups = p.Completions
		switch h {
		case replica.HealthDown:
			resp.Down++
		case replica.HealthCatchingUp:
			resp.CatchingUp++
		default:
			resp.Live++
		}
		resp.Sites = append(resp.Sites, hs)
	}
	s.mu.Unlock()
	sort.Slice(resp.Sites, func(i, j int) bool { return resp.Sites[i].Site < resp.Sites[j].Site })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// handleMetrics serves the registry in Prometheus text exposition format.
// Holding the admin lock means collection callbacks (which snapshot the
// cluster) never interleave with a reconfiguration.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.obs.Registry.WritePrometheus(w)
}

// handleTraces returns the most recent operation traces, oldest first.
// ?last=N bounds the count (default 50).
func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 50
	if arg := r.URL.Query().Get("last"); arg != "" {
		v, err := strconv.Atoi(arg)
		if err != nil || v < 0 {
			http.Error(w, "bad last", http.StatusBadRequest)
			return
		}
		n = v
	}
	traces := s.obs.Traces.Last(n)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(traces)
}

func (s *server) handleCrash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	site, err := strconv.Atoi(r.URL.Query().Get("site"))
	if err != nil {
		http.Error(w, "bad site", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cluster.Crash(tree.SiteID(site)); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "crashed site %d\n", site)
}

// handleDrain gracefully takes a replica out of rotation: the site stops
// admitting new work (gated requests shed with a typed overload reply),
// finishes its in-flight 2PC participations, then goes down — zero
// acknowledged writes lost. Bring it back with /recover (plain or
// sync=true for the catch-up path). The drain is bounded: if in-flight
// work does not quiesce in time the site stays in the draining state and
// the request reports a timeout.
func (s *server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	site, err := strconv.Atoi(r.URL.Query().Get("site"))
	if err != nil {
		http.Error(w, "bad site", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
	defer cancel()
	if err := s.cluster.Drain(ctx, tree.SiteID(site)); err != nil {
		code := http.StatusNotFound
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = http.StatusGatewayTimeout
		}
		http.Error(w, err.Error(), code)
		return
	}
	fmt.Fprintf(w, "drained site %d\n", site)
}

func (s *server) handleRecover(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	arg := r.URL.Query().Get("site")
	// sync=true rejoins through the anti-entropy catch-up path: the replica
	// serves 2PC immediately but is excluded from reads until it has pulled
	// every version it missed. Watch /health for the transition to live.
	withSync, _ := strconv.ParseBool(r.URL.Query().Get("sync"))
	s.mu.Lock()
	defer s.mu.Unlock()
	if arg == "all" {
		if withSync {
			s.cluster.RecoverAllWithSync()
			fmt.Fprintln(w, "recovering all via catch-up")
		} else {
			s.cluster.RecoverAll()
			fmt.Fprintln(w, "recovered all")
		}
		return
	}
	site, err := strconv.Atoi(arg)
	if err != nil {
		http.Error(w, "bad site", http.StatusBadRequest)
		return
	}
	if withSync {
		if err := s.cluster.RecoverWithSync(tree.SiteID(site)); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, "recovering site %d via catch-up\n", site)
		return
	}
	if err := s.cluster.Recover(tree.SiteID(site)); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "recovered site %d\n", site)
}

func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dataDir == "" {
		http.Error(w, "no -data-dir configured", http.StatusConflict)
		return
	}
	if err := s.cluster.Checkpoint(s.dataDir); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "checkpointed to %s\n", s.dataDir)
}

func (s *server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	spec := r.URL.Query().Get("spec")
	t, err := tree.ParseSpec(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cluster.Reconfigure(t); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "reconfigured to %s\n", t.Spec())
}

// controllerResponse is the /controller JSON document: the controller's
// knob-and-progress snapshot plus its recent decision journal, oldest first.
type controllerResponse struct {
	State   adapt.State      `json:"state"`
	Journal []adapt.Decision `json:"journal"`
}

// handleController inspects or toggles the adaptation controller. GET
// returns state plus the last ?last=N journal entries (default 50);
// POST ?action=enable|disable flips it, journaling the transition.
func (s *server) handleController(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		n := 50
		if arg := r.URL.Query().Get("last"); arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 0 {
				http.Error(w, "bad last", http.StatusBadRequest)
				return
			}
			n = v
		}
		s.mu.Lock()
		resp := controllerResponse{State: s.ctl.State(), Journal: s.ctl.Journal(n)}
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	case http.MethodPost:
		var on bool
		switch action := r.URL.Query().Get("action"); action {
		case "enable":
			on = true
		case "disable":
			on = false
		default:
			http.Error(w, "action must be enable or disable", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		changed := s.ctl.SetEnabled(on)
		s.mu.Unlock()
		state := "disabled"
		if on {
			state = "enabled"
		}
		if !changed {
			fmt.Fprintf(w, "controller already %s\n", state)
			return
		}
		fmt.Fprintf(w, "controller %s\n", state)
	default:
		http.Error(w, "use GET or POST", http.StatusMethodNotAllowed)
	}
}
