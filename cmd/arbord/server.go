package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"arbor/internal/client"
	"arbor/internal/cluster"
	"arbor/internal/tree"
)

// server hosts the cluster and implements the HTTP API.
type server struct {
	mux *http.ServeMux

	// dataDir, when set, is where /checkpoint persists replica stores.
	dataDir string

	mu      sync.Mutex // serializes administrative actions
	cluster *cluster.Cluster
	cli     *client.Client
}

var _ http.Handler = (*server)(nil)

// newServer builds the cluster and its HTTP routes.
func newServer(t *tree.Tree, seed int64, extra ...cluster.Option) (*server, error) {
	opts := append([]cluster.Option{cluster.WithSeed(seed)}, extra...)
	c, err := cluster.New(t, opts...)
	if err != nil {
		return nil, err
	}
	cli, err := c.NewClient()
	if err != nil {
		c.Close()
		return nil, err
	}
	s := &server{mux: http.NewServeMux(), cluster: c, cli: cli}
	s.mux.HandleFunc("/get", s.handleGet)
	s.mux.HandleFunc("/put", s.handlePut)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/crash", s.handleCrash)
	s.mux.HandleFunc("/recover", s.handleRecover)
	s.mux.HandleFunc("/reconfigure", s.handleReconfigure)
	s.mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	return s, nil
}

// ServeHTTP dispatches to the API routes.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close shuts the cluster down.
func (s *server) Close() {
	s.cluster.Close()
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	res, err := s.cli.Read(r.Context(), key)
	switch {
	case errors.Is(err, client.ErrNotFound):
		http.Error(w, "not found", http.StatusNotFound)
		return
	case errors.Is(err, client.ErrReadUnavailable):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-Arbor-Version", res.TS.String())
	w.Header().Set("X-Arbor-Contacts", strconv.Itoa(res.Contacts))
	_, _ = w.Write(res.Value)
}

func (s *server) handlePut(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPut && r.Method != http.MethodPost {
		http.Error(w, "use PUT", http.StatusMethodNotAllowed)
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	value, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.cli.Write(r.Context(), key, value)
	switch {
	case errors.Is(err, client.ErrWriteUnavailable):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, client.ErrInDoubt):
		w.WriteHeader(http.StatusAccepted) // committed, acks incomplete
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("X-Arbor-Version", res.TS.String())
	fmt.Fprintf(w, "ok level=%d contacts=%d\n", res.Level, res.Contacts)
}

// statsResponse is the /stats JSON document.
type statsResponse struct {
	Tree          string              `json:"tree"`
	N             int                 `json:"replicas"`
	Levels        int                 `json:"physicalLevels"`
	Client        client.Metrics      `json:"client"`
	Network       networkStats        `json:"network"`
	Participation []participationStat `json:"participation"`
}

type networkStats struct {
	Sent      uint64 `json:"sent"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
}

type participationStat struct {
	Site        int    `json:"site"`
	Crashed     bool   `json:"crashed"`
	ReadServes  uint64 `json:"readServes"`
	WriteServes uint64 `json:"writeServes"`
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	t := s.cluster.Tree()
	net := s.cluster.NetworkStats()
	resp := statsResponse{
		Tree:    t.Spec(),
		N:       t.N(),
		Levels:  t.NumPhysicalLevels(),
		Client:  s.cli.Metrics(),
		Network: networkStats{Sent: net.Sent, Delivered: net.Delivered, Dropped: net.Dropped},
	}
	for _, sl := range s.cluster.LoadReport().Sites {
		resp.Participation = append(resp.Participation, participationStat{
			Site:        int(sl.Site),
			Crashed:     s.cluster.Replica(sl.Site).Crashed(),
			ReadServes:  sl.ReadServes,
			WriteServes: sl.WriteServes,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

func (s *server) handleCrash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	site, err := strconv.Atoi(r.URL.Query().Get("site"))
	if err != nil {
		http.Error(w, "bad site", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cluster.Crash(tree.SiteID(site)); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "crashed site %d\n", site)
}

func (s *server) handleRecover(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	arg := r.URL.Query().Get("site")
	s.mu.Lock()
	defer s.mu.Unlock()
	if arg == "all" {
		s.cluster.RecoverAll()
		fmt.Fprintln(w, "recovered all")
		return
	}
	site, err := strconv.Atoi(arg)
	if err != nil {
		http.Error(w, "bad site", http.StatusBadRequest)
		return
	}
	if err := s.cluster.Recover(tree.SiteID(site)); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	fmt.Fprintf(w, "recovered site %d\n", site)
}

func (s *server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dataDir == "" {
		http.Error(w, "no -data-dir configured", http.StatusConflict)
		return
	}
	if err := s.cluster.Checkpoint(s.dataDir); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	fmt.Fprintf(w, "checkpointed to %s\n", s.dataDir)
}

func (s *server) handleReconfigure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	spec := r.URL.Query().Get("spec")
	t, err := tree.ParseSpec(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.cluster.Reconfigure(t); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "reconfigured to %s\n", t.Spec())
}
