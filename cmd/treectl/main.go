// Command treectl inspects arbitrary-protocol replica trees: it builds a
// tree from a spec or a named constructor, renders its structure, and
// prints the protocol's communication costs, availabilities and optimal
// system loads.
//
// Usage:
//
//	treectl -spec 1-3-5 [-p 0.7]
//	treectl -algorithm1 100
//	treectl -mostly-read 20 | -mostly-write 21
//	treectl -advise 100 -read-fraction 0.8 [-objective load|cost|load*cost]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"arbor/internal/config"
	"arbor/internal/core"
	"arbor/internal/quorum"
	"arbor/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "treectl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("treectl", flag.ContinueOnError)
	var (
		spec         = fs.String("spec", "", "tree spec, e.g. 1-3-5 or 1-3-5+4")
		algorithm1   = fs.Int("algorithm1", 0, "build the ARBITRARY tree of Algorithm 1 for n replicas")
		mostlyRead   = fs.Int("mostly-read", 0, "build the MOSTLY-READ tree for n replicas")
		mostlyWrite  = fs.Int("mostly-write", 0, "build the MOSTLY-WRITE tree for n replicas")
		advise       = fs.Int("advise", 0, "recommend a tree for n replicas (needs -read-fraction)")
		readFraction = fs.Float64("read-fraction", 0.5, "fraction of operations that are reads (with -advise)")
		objective    = fs.String("objective", "load", "advisor objective: load, cost or load*cost")
		p            = fs.Float64("p", 0.7, "per-replica availability probability")
		quorums      = fs.Bool("quorums", false, "enumerate the read and write quorums (small trees)")
		dot          = fs.Bool("dot", false, "emit the tree as Graphviz dot instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	t, err := buildTree(*spec, *algorithm1, *mostlyRead, *mostlyWrite, *advise, *readFraction, *objective, *p)
	if err != nil {
		return err
	}

	if *dot {
		fmt.Print(tree.DOT(t))
		return nil
	}
	fmt.Print(tree.Render(t))
	if err := tree.ValidateAssumption31(t); err != nil {
		fmt.Printf("warning: %v\n", err)
	}
	printAnalysis(t, *p)
	if *quorums {
		if err := printQuorums(t); err != nil {
			return err
		}
	}
	return nil
}

// printQuorums enumerates and prints the bi-coterie (site IDs).
func printQuorums(t *tree.Tree) error {
	proto, err := core.New(t)
	if err != nil {
		return err
	}
	bc, err := proto.EnumerateBiCoterie()
	if err != nil {
		return err
	}
	fmt.Printf("\nread quorums (%d):\n", bc.Reads.Len())
	for j := 0; j < bc.Reads.Len(); j++ {
		fmt.Printf("  R%-3d %v\n", j+1, sitesOf(bc.Reads.Quorum(j)))
	}
	fmt.Printf("write quorums (%d):\n", bc.Writes.Len())
	for j := 0; j < bc.Writes.Len(); j++ {
		fmt.Printf("  W%-3d %v\n", j+1, sitesOf(bc.Writes.Quorum(j)))
	}
	return nil
}

// sitesOf converts universe elements back to 1-based site IDs.
func sitesOf(q quorum.Set) []int {
	out := make([]int, len(q))
	for i, e := range q {
		out[i] = e + 1
	}
	return out
}

func buildTree(spec string, algorithm1, mostlyRead, mostlyWrite, advise int, readFraction float64, objective string, p float64) (*tree.Tree, error) {
	switch {
	case spec != "":
		return tree.ParseSpec(spec)
	case algorithm1 > 0:
		return tree.Algorithm1(algorithm1)
	case mostlyRead > 0:
		return tree.MostlyRead(mostlyRead)
	case mostlyWrite > 0:
		return tree.MostlyWrite(mostlyWrite)
	case advise > 0:
		obj, err := parseObjective(objective)
		if err != nil {
			return nil, err
		}
		adv, err := config.Advise(advise, p, readFraction, obj)
		if err != nil {
			return nil, err
		}
		fmt.Printf("advised configuration for n=%d, read fraction %.2f, objective %s (score %.4f)\n",
			advise, readFraction, obj, adv.Score)
		return adv.Tree, nil
	default:
		return nil, errors.New("one of -spec, -algorithm1, -mostly-read, -mostly-write or -advise is required")
	}
}

func parseObjective(s string) (config.Objective, error) {
	switch s {
	case "load":
		return config.MinimizeLoad, nil
	case "cost":
		return config.MinimizeCost, nil
	case "load*cost":
		return config.MinimizeLoadCostProduct, nil
	default:
		return 0, fmt.Errorf("unknown objective %q", s)
	}
}

func printAnalysis(t *tree.Tree, p float64) {
	a := core.Analyze(t)
	fmt.Printf("\nprotocol analysis (p = %.2f):\n", p)
	fmt.Printf("  m(R) = %v read quorums, m(W) = %d write quorums\n", t.ReadQuorumCount(), t.WriteQuorumCount())
	fmt.Printf("  read:  cost %d, load %.4f, availability %.4f, expected load %.4f\n",
		a.ReadCost, a.ReadLoad, a.ReadAvailability(p), a.ExpectedReadLoad(p))
	fmt.Printf("  write: cost min %d avg %.2f max %d, load %.4f, availability %.4f, expected load %.4f\n",
		a.WriteCostMin, a.WriteCostAvg, a.WriteCostMax, a.WriteLoad, a.WriteAvailability(p), a.ExpectedWriteLoad(p))
}
