package main

import "testing"

func TestRunSpec(t *testing.T) {
	if err := run([]string{"-spec", "1-3-5"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunBuilders(t *testing.T) {
	for _, args := range [][]string{
		{"-algorithm1", "100"},
		{"-mostly-read", "10"},
		{"-mostly-write", "11"},
		{"-advise", "64", "-read-fraction", "0.8"},
		{"-advise", "64", "-read-fraction", "0.2", "-objective", "cost"},
		{"-advise", "64", "-objective", "load*cost"},
		{"-spec", "1-5-3"}, // violates Assumption 3.1 → warning, not error
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-spec", "garbage"},
		{"-algorithm1", "10"},
		{"-mostly-write", "10"},
		{"-advise", "64", "-objective", "nope"},
		{"-unknown-flag"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestParseObjective(t *testing.T) {
	for _, s := range []string{"load", "cost", "load*cost"} {
		if _, err := parseObjective(s); err != nil {
			t.Errorf("parseObjective(%q): %v", s, err)
		}
	}
	if _, err := parseObjective("x"); err == nil {
		t.Error("bad objective accepted")
	}
}

func TestRunQuorums(t *testing.T) {
	if err := run([]string{"-spec", "1-3-5", "-quorums"}); err != nil {
		t.Fatalf("run -quorums: %v", err)
	}
	// Enumeration refuses huge systems.
	if err := run([]string{"-algorithm1", "4096", "-quorums"}); err == nil {
		t.Error("huge enumeration accepted")
	}
}

func TestRunDOT(t *testing.T) {
	if err := run([]string{"-spec", "1-3-5+4", "-dot"}); err != nil {
		t.Fatalf("run -dot: %v", err)
	}
}
