package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"arbor/internal/adapt"
	"arbor/internal/sim"
)

func TestRunCampaignClean(t *testing.T) {
	args := []string{
		"-runs", "2", "-ops", "25", "-faults", "3",
		"-seed", "5", "-timeout", "30ms", "-keys", "3",
		"-o", filepath.Join(t.TempDir(), "repro.txt"),
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSelftestCatchesInjectedBug(t *testing.T) {
	args := []string{
		"-selftest", "-runs", "15", "-ops", "25", "-faults", "5",
		"-seed", "1", "-timeout", "30ms", "-keys", "3",
	}
	if err := run(args); err != nil {
		t.Fatalf("selftest: %v", err)
	}
}

func TestRunReplayReproducesViolation(t *testing.T) {
	// Build a failing run directly: one acknowledged write, then a restart
	// that (with the bug armed) discards the journals.
	r := sim.Reproducer{
		Seed:          3,
		Spec:          "1-2",
		Profile:       sim.ProfileMostlyWrite,
		Ops:           4,
		SkipWALReplay: true,
		Schedule:      "4ms:restart",
	}
	path := filepath.Join(t.TempDir(), "repro.txt")
	if err := os.WriteFile(path, []byte(r.Format()), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-repro", path, "-trace"})
	if err == nil || !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("replay err = %v, want invariant violation", err)
	}
}

func TestRunRejectsBadProfile(t *testing.T) {
	if err := run([]string{"-profile", "sideways"}); err == nil {
		t.Fatal("bad profile accepted")
	}
}

func TestRunRejectsBadPhases(t *testing.T) {
	if err := run([]string{"-phases", "mostly-read"}); err == nil {
		t.Fatal("bad phases accepted")
	}
}

// TestRunAdaptiveCampaignClean drives a phased adaptation campaign through
// the CLI: workload flips mid-run, the controller migrates, and all
// invariants hold.
func TestRunAdaptiveCampaignClean(t *testing.T) {
	args := []string{
		"-runs", "2", "-faults", "3", "-seed", "7",
		"-timeout", "30ms", "-keys", "3", "-spec", "1-8",
		"-adapt", "-phases", "mostly-read:30,mostly-write:40",
		"-o", filepath.Join(t.TempDir(), "repro.txt"),
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

// TestCampaignWritesDecisionJournalOnFailure arms the WAL-replay bug with
// the controller live and checks the failing run's decision journal lands
// on disk as JSON next to the reproducer.
func TestCampaignWritesDecisionJournalOnFailure(t *testing.T) {
	dir := t.TempDir()
	cfg := sim.Config{
		Seed:          1,
		Ops:           25,
		Faults:        5,
		Keys:          3,
		Timeout:       30 * time.Millisecond,
		Profile:       sim.ProfileMostlyWrite,
		SkipWALReplay: true,
		Adapt:         true,
	}
	out := filepath.Join(dir, "repro.txt")
	journal := filepath.Join(dir, "journal.json")
	err := campaign(cfg, 15, out, journal, false)
	if err == nil {
		t.Fatal("campaign missed the injected WAL-replay bug")
	}
	data, rerr := os.ReadFile(journal)
	if rerr != nil {
		t.Fatalf("decision journal not written: %v", rerr)
	}
	var decisions []adapt.Decision
	if jerr := json.Unmarshal(data, &decisions); jerr != nil {
		t.Fatalf("decision journal is not valid JSON: %v\n%s", jerr, data)
	}
	if _, rerr := os.ReadFile(out); rerr != nil {
		t.Fatalf("reproducer not written: %v", rerr)
	}
}
