package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arbor/internal/sim"
)

func TestRunCampaignClean(t *testing.T) {
	args := []string{
		"-runs", "2", "-ops", "25", "-faults", "3",
		"-seed", "5", "-timeout", "30ms", "-keys", "3",
		"-o", filepath.Join(t.TempDir(), "repro.txt"),
	}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunSelftestCatchesInjectedBug(t *testing.T) {
	args := []string{
		"-selftest", "-runs", "15", "-ops", "25", "-faults", "5",
		"-seed", "1", "-timeout", "30ms", "-keys", "3",
	}
	if err := run(args); err != nil {
		t.Fatalf("selftest: %v", err)
	}
}

func TestRunReplayReproducesViolation(t *testing.T) {
	// Build a failing run directly: one acknowledged write, then a restart
	// that (with the bug armed) discards the journals.
	r := sim.Reproducer{
		Seed:          3,
		Spec:          "1-2",
		Profile:       sim.ProfileMostlyWrite,
		Ops:           4,
		SkipWALReplay: true,
		Schedule:      "4ms:restart",
	}
	path := filepath.Join(t.TempDir(), "repro.txt")
	if err := os.WriteFile(path, []byte(r.Format()), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-repro", path, "-trace"})
	if err == nil || !strings.Contains(err.Error(), "invariant") {
		t.Fatalf("replay err = %v, want invariant violation", err)
	}
}

func TestRunRejectsBadProfile(t *testing.T) {
	if err := run([]string{"-profile", "sideways"}); err == nil {
		t.Fatal("bad profile accepted")
	}
}
