// Command arborsim runs deterministic chaos campaigns against the
// tree-structured replica control protocol and replays their reproducers.
//
// Campaign mode (the default) executes -runs seeded runs, each a fresh
// cluster driven through a random fault schedule interleaved with client
// traffic, and checks one-copy semantics plus the durability and
// quorum-structure invariants after every run. On the first violation the
// failing run is shrunk to a minimal fault schedule and op list, written to
// -o as a portable reproducer, and the command exits nonzero.
//
// With -adapt the adaptation controller runs live inside every run, so
// migrations interleave with the chaos schedule and the history checker
// judges one-copy semantics across them; -phases shapes the op stream into
// consecutive workload phases (the drift the controller reacts to). On a
// violation the failing run's decision journal is written as JSON next to
// the reproducer.
//
// Replay mode (-repro file) re-executes a reproducer byte-for-byte and
// exits nonzero when the violation still reproduces.
//
// Scenario mode (-scenario file-or-dir) replays .arb scenario files — a
// single file or every *.arb under a directory — through the same
// deterministic harness and judges each run against the file's expect
// assertions. A failing scenario leaves a replayable reproducer (and,
// with adaptation on, the decision journal) under -artifacts, and the
// command exits nonzero after trying the whole corpus.
//
// Self-test mode (-selftest) arms a deliberate durability bug — restarts
// skip write-ahead-journal replay — and fails unless the campaign both
// catches it and shrinks the schedule to at most five events.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"arbor/internal/scenario"
	"arbor/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "arborsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("arborsim", flag.ContinueOnError)
	var (
		runs    = fs.Int("runs", 20, "campaign runs; run i uses seed+i")
		seed    = fs.Int64("seed", 1, "base seed")
		spec    = fs.String("spec", "1-3-5", "replica tree spec")
		profile = fs.String("profile", "balanced", "workload profile: mostly-read|mostly-write|balanced")
		ops     = fs.Int("ops", 60, "client operations per run")
		faults  = fs.Int("faults", 6, "fault events per run")
		clients = fs.Int("clients", 2, "protocol clients per run")
		keys    = fs.Int("keys", 4, "key-population size")
		timeout = fs.Duration("timeout", 40*time.Millisecond, "client failure-detection deadline")
		ae      = fs.Bool("antientropy", false, "recover replicas through anti-entropy catch-up and enforce the durability margin")
		over    = fs.Bool("overload", false, "add a derived overload stretch per run (saturate window + occasional graceful drain)")
		adapt   = fs.Bool("adapt", false, "run the adaptation controller during each run (live migrations under chaos)")
		every   = fs.Int("adapt-every", 0, "op stride between controller steps (default 10)")
		phases  = fs.String("phases", "", `workload phases "profile:ops[,profile:ops...]" (overrides -profile and -ops)`)
		repro   = fs.String("repro", "", "replay this reproducer file instead of running a campaign")
		scen    = fs.String("scenario", "", "replay a .arb scenario file (or every *.arb in a directory) and check its expect assertions")
		artDir  = fs.String("artifacts", ".", "directory for failing scenarios' reproducers and journals (with -scenario)")
		out     = fs.String("o", "arborsim-repro.txt", "write the shrunk reproducer here on campaign failure")
		journal = fs.String("journal", "arborsim-journal.json", "write the failing run's decision journal here on campaign failure (with -adapt)")
		trace   = fs.Bool("trace", false, "print the per-op trace")
		self    = fs.Bool("selftest", false, "inject a WAL-replay bug and verify the campaign catches it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *repro != "" {
		return replay(*repro, *trace)
	}
	if *scen != "" {
		return replayScenarios(*scen, *artDir, *trace)
	}
	cfg := sim.Config{
		Spec:        *spec,
		Seed:        *seed,
		Profile:     sim.Profile(*profile),
		Ops:         *ops,
		Faults:      *faults,
		Clients:     *clients,
		Keys:        *keys,
		Timeout:     *timeout,
		AntiEntropy: *ae,
		Overload:    *over,
		Adapt:       *adapt,
		AdaptEvery:  *every,
	}
	if _, err := cfg.Profile.ReadFraction(); err != nil {
		return err
	}
	if *phases != "" {
		ps, err := sim.ParsePhases(*phases)
		if err != nil {
			return err
		}
		cfg.Phases = ps
	}
	if *self {
		return selftest(cfg, *runs)
	}
	return campaign(cfg, *runs, *out, *journal, *trace)
}

func campaign(cfg sim.Config, runs int, out, journal string, trace bool) error {
	rep, err := sim.Campaign(cfg, runs)
	if err != nil {
		return err
	}
	mode := "instant recovery"
	if cfg.AntiEntropy {
		mode = "anti-entropy recovery"
	}
	fmt.Printf("campaign: %d runs, %d ops, %d faults injected (spec %s, profile %s, seed %d, %s)\n",
		rep.Runs, rep.OpsExecuted, rep.FaultsInjected, rep.Cfg.Spec, rep.Cfg.Profile, rep.Cfg.Seed, mode)
	if !cfg.AntiEntropy {
		fmt.Printf("campaign: %d durability-margin gap(s) across %d run(s)\n", rep.MarginGaps, rep.GappedRuns)
	}
	if cfg.Adapt {
		fmt.Printf("campaign: %d controller-driven reconfiguration(s)\n", rep.Reconfigurations)
	}
	if cfg.Overload {
		fmt.Printf("campaign: %d replica shed(s), %d op(s) failed overloaded\n", rep.Sheds, rep.Overloaded)
	}
	if rep.Failure == nil {
		fmt.Println("campaign: all invariants held")
		return nil
	}
	f := rep.Failure
	for _, v := range f.Violations {
		fmt.Println("violation:", v.Error())
	}
	if trace {
		printTrace(f.Input)
	}
	if err := os.WriteFile(out, []byte(f.Repro.Format()), 0o644); err != nil {
		return fmt.Errorf("write reproducer: %w", err)
	}
	// With the controller live, the failing run's decision journal is part
	// of the evidence: persist it next to the reproducer so CI can archive
	// both and a human can see which migrations surrounded the violation.
	if cfg.Adapt {
		data, err := json.MarshalIndent(f.Decisions, "", "  ")
		if err != nil {
			return fmt.Errorf("encode decision journal: %w", err)
		}
		if err := os.WriteFile(journal, data, 0o644); err != nil {
			return fmt.Errorf("write decision journal: %w", err)
		}
		fmt.Printf("campaign: decision journal (%d entries) written to %s\n", len(f.Decisions), journal)
	}
	return fmt.Errorf("run %d (seed %d) violated %d invariant(s); shrunk reproducer written to %s (replay: arborsim -repro %s)",
		f.Run, f.Seed, len(f.Violations), out, out)
}

// replayScenarios replays one scenario file or a whole corpus directory.
// Every file runs even after a failure, so one broken scenario doesn't
// hide another, and the error totals them up at the end.
func replayScenarios(path, artifacts string, trace bool) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	files := []string{path}
	if info.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "*.arb"))
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return fmt.Errorf("no *.arb scenarios under %s", path)
		}
		sort.Strings(files)
	}
	failed := 0
	for _, f := range files {
		if err := replayScenario(f, artifacts, trace); err != nil {
			fmt.Fprintln(os.Stderr, "scenario:", err)
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenario(s) failed", failed, len(files))
	}
	fmt.Printf("scenarios: all %d passed\n", len(files))
	return nil
}

// replayScenario compiles and executes one .arb file and judges the run
// against its expect assertions. A scenario without any expect lines
// still fails on invariant violations — silence is not a pass.
func replayScenario(path, artifacts string, trace bool) error {
	spec, err := scenario.Load(path)
	if err != nil {
		return err
	}
	c, err := spec.Compile()
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	res, err := sim.Execute(c.Input)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	name := spec.Name
	if name == "" {
		name = strings.TrimSuffix(filepath.Base(path), ".arb")
	}
	if trace {
		for _, line := range res.Trace {
			fmt.Println(line)
		}
	}
	fmt.Printf("scenario %s: %d ops, %d faults applied, %d unavailable, %d margin gap(s), %d reconfiguration(s), final spec %s\n",
		name, res.OpsRun, res.FaultsApplied, res.Failures, len(res.MarginGaps), res.Reconfigurations, res.FinalSpec)
	fails := spec.Check(res)
	if len(spec.Expects) == 0 && res.Failed() {
		fails = append(fails, fmt.Sprintf("no expects declared and %d invariant violation(s) (first: %v)",
			len(res.Violations), res.Violations[0]))
	}
	if len(fails) == 0 {
		fmt.Printf("scenario %s: all %d expectation(s) held\n", name, len(spec.Expects))
		return nil
	}
	for _, f := range fails {
		fmt.Printf("scenario %s: FAIL %s\n", name, f)
	}
	reproPath := filepath.Join(artifacts, name+".repro.txt")
	if err := os.WriteFile(reproPath, []byte(c.Input.Reproducer().Format()), 0o644); err != nil {
		return fmt.Errorf("%s: write reproducer: %w", path, err)
	}
	if c.Cfg.Adapt {
		data, err := json.MarshalIndent(res.AdaptDecisions, "", "  ")
		if err != nil {
			return fmt.Errorf("%s: encode decision journal: %w", path, err)
		}
		journalPath := filepath.Join(artifacts, name+".journal.json")
		if err := os.WriteFile(journalPath, data, 0o644); err != nil {
			return fmt.Errorf("%s: write decision journal: %w", path, err)
		}
	}
	return fmt.Errorf("%s: %d expectation(s) failed; reproducer written to %s", path, len(fails), reproPath)
}

func replay(path string, trace bool) error {
	text, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	r, err := sim.ParseReproducer(string(text))
	if err != nil {
		return err
	}
	in, err := r.Input()
	if err != nil {
		return err
	}
	res, err := sim.Execute(in)
	if err != nil {
		return err
	}
	if trace {
		for _, line := range res.Trace {
			fmt.Println(line)
		}
	}
	fmt.Printf("replay: %d ops, %d faults applied\n", res.OpsRun, res.FaultsApplied)
	if in.Cfg.Adapt {
		fmt.Printf("replay: %d controller-driven reconfiguration(s)\n", res.Reconfigurations)
	}
	if !res.Failed() {
		fmt.Println("replay: no violation reproduced")
		return nil
	}
	for _, v := range res.Violations {
		fmt.Println("violation:", v.Error())
	}
	return fmt.Errorf("reproducer violates %d invariant(s)", len(res.Violations))
}

// selftest proves the harness end to end: with WAL replay skipped on
// restart, a campaign must find a lost acknowledged write and shrink the
// fault schedule to at most five events.
func selftest(cfg sim.Config, runs int) error {
	cfg.SkipWALReplay = true
	rep, err := sim.Campaign(cfg, runs)
	if err != nil {
		return err
	}
	if rep.Failure == nil {
		return fmt.Errorf("selftest: campaign of %d runs missed the injected WAL-replay bug", rep.Runs)
	}
	f := rep.Failure
	if n := len(f.Input.Events); n > 5 {
		return fmt.Errorf("selftest: shrunk schedule still has %d events (want ≤ 5): %q", n, f.Repro.Schedule)
	}
	fmt.Printf("selftest: bug found at run %d (seed %d) and shrunk to %d op(s), schedule %q\n",
		f.Run, f.Seed, len(f.Input.Ops), f.Repro.Schedule)
	return nil
}

func printTrace(in sim.Input) {
	res, err := sim.Execute(in)
	if err != nil {
		fmt.Println("trace unavailable:", err)
		return
	}
	for _, line := range res.Trace {
		fmt.Println(line)
	}
}
