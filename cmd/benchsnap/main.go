// Command benchsnap converts `go test -bench` output on stdin into a JSON
// perf snapshot, the per-PR artifact the roadmap's perf trajectory is built
// from (BENCH_NNN.json at the repo root).
//
// Usage:
//
//	go test -run '^$' -bench Cluster -benchmem . | benchsnap -o BENCH_006.json
//
// The snapshot records, per benchmark: iterations, ns/op (latency), derived
// ops/sec (throughput), and — when -benchmem was on — B/op and allocs/op.
// Lines that are not benchmark results (the goos/goarch preamble, PASS, ok)
// are carried into the environment header or ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	OpsPerSec   float64 `json:"opsPerSec"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// Snapshot is the whole artifact.
type Snapshot struct {
	GeneratedAt string   `json:"generatedAt"`
	GoVersion   string   `json:"goVersion"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	out := fs.String("o", "", "write the JSON snapshot here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results on stdin (run with -bench)")
	}
	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchmarks:  results,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// parse extracts benchmark result lines from `go test -bench` output. A
// result line looks like
//
//	BenchmarkClusterRead-8   1234   987654 ns/op   120 B/op   3 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the name.
func parse(in io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: trimProcs(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				r.NsPerOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				r.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
			default:
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("line %q: bad %s value %q", sc.Text(), unit, val)
			}
		}
		if r.NsPerOp > 0 {
			r.OpsPerSec = 1e9 / r.NsPerOp
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// trimProcs strips the -N GOMAXPROCS suffix go test appends to names.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
