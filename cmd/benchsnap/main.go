// Command benchsnap converts `go test -bench` output on stdin into a JSON
// perf snapshot, the per-PR artifact the roadmap's perf trajectory is built
// from (BENCH_NNN.json at the repo root).
//
// Usage:
//
//	go test -run '^$' -bench Cluster -benchmem . | benchsnap -o BENCH_007.json
//	benchsnap -diff BENCH_006.json BENCH_007.json
//
// The snapshot records, per benchmark: iterations, ns/op (latency), derived
// ops/sec (throughput), and — when -benchmem was on — B/op and allocs/op.
// Lines that are not benchmark results (the goos/goarch preamble, PASS, ok)
// are carried into the environment header or ignored.
//
// -diff compares two snapshots benchmark by benchmark and prints the deltas.
// A throughput drop beyond 25% prints a WARN line; the exit status stays 0
// either way, because snapshots come from different machines and runs — the
// warning is a prompt to look, not a gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	OpsPerSec   float64 `json:"opsPerSec"`
	BytesPerOp  int64   `json:"bytesPerOp,omitempty"`
	AllocsPerOp int64   `json:"allocsPerOp,omitempty"`
}

// Snapshot is the whole artifact.
type Snapshot struct {
	GeneratedAt string   `json:"generatedAt"`
	GoVersion   string   `json:"goVersion"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	out := fs.String("o", "", "write the JSON snapshot here (default stdout)")
	diffMode := fs.Bool("diff", false, "compare two snapshot files: benchsnap -diff old.json new.json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *diffMode {
		if fs.NArg() != 2 {
			return fmt.Errorf("-diff needs exactly two snapshot files, got %d", fs.NArg())
		}
		return diff(fs.Arg(0), fs.Arg(1), stdout)
	}
	results, err := parse(in)
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results on stdin (run with -bench)")
	}
	snap := Snapshot{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Benchmarks:  results,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// regressionThreshold is the throughput drop that earns a WARN in -diff
// output: 25%, generous enough to ride out scheduler noise between runs.
const regressionThreshold = 0.25

// diff loads two snapshots and prints per-benchmark deltas, new vs old.
// Benchmarks present in only one snapshot are listed but not compared.
func diff(oldPath, newPath string, w io.Writer) error {
	oldSnap, err := load(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := load(newPath)
	if err != nil {
		return err
	}
	oldBy := make(map[string]Result, len(oldSnap.Benchmarks))
	for _, r := range oldSnap.Benchmarks {
		oldBy[r.Name] = r
	}
	fmt.Fprintf(w, "%s -> %s\n", oldPath, newPath)
	warned := 0
	for _, nr := range newSnap.Benchmarks {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Fprintf(w, "  %-40s new benchmark\n", nr.Name)
			continue
		}
		delete(oldBy, nr.Name)
		fmt.Fprintf(w, "  %-40s %12.0f -> %-12.0f ns/op (%+.1f%%)",
			nr.Name, or.NsPerOp, nr.NsPerOp, pct(or.NsPerOp, nr.NsPerOp))
		if or.BytesPerOp > 0 || nr.BytesPerOp > 0 {
			fmt.Fprintf(w, "  %d -> %d B/op  %d -> %d allocs/op",
				or.BytesPerOp, nr.BytesPerOp, or.AllocsPerOp, nr.AllocsPerOp)
		}
		fmt.Fprintln(w)
		if or.OpsPerSec > 0 && nr.OpsPerSec < or.OpsPerSec*(1-regressionThreshold) {
			warned++
			fmt.Fprintf(w, "  WARN %s: throughput fell %.1f%% (%.0f -> %.0f ops/sec)\n",
				nr.Name, -pct(or.OpsPerSec, nr.OpsPerSec), or.OpsPerSec, nr.OpsPerSec)
		}
	}
	for _, r := range oldSnap.Benchmarks {
		if _, unmatched := oldBy[r.Name]; unmatched {
			fmt.Fprintf(w, "  %-40s removed\n", r.Name)
		}
	}
	if warned > 0 {
		fmt.Fprintf(w, "%d benchmark(s) regressed beyond %.0f%%\n", warned, regressionThreshold*100)
	}
	return nil
}

// pct is the relative change from old to new, in percent.
func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// load reads one snapshot file.
func load(path string) (Snapshot, error) {
	var snap Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("%s: %w", path, err)
	}
	return snap, nil
}

// parse extracts benchmark result lines from `go test -bench` output. A
// result line looks like
//
//	BenchmarkClusterRead-8   1234   987654 ns/op   120 B/op   3 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped from the name.
func parse(in io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: trimProcs(fields[0]), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				r.NsPerOp, err = strconv.ParseFloat(val, 64)
			case "B/op":
				r.BytesPerOp, err = strconv.ParseInt(val, 10, 64)
			case "allocs/op":
				r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
			default:
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("line %q: bad %s value %q", sc.Text(), unit, val)
			}
		}
		if r.NsPerOp > 0 {
			r.OpsPerSec = 1e9 / r.NsPerOp
		}
		out = append(out, r)
	}
	return out, sc.Err()
}

// trimProcs strips the -N GOMAXPROCS suffix go test appends to names.
func trimProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
