package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: arbor
cpu: Fake CPU @ 2.40GHz
BenchmarkClusterRead-8   	    5000	    234567 ns/op	    1200 B/op	      34 allocs/op
BenchmarkClusterWrite-8  	    1000	   1234567 ns/op	    5600 B/op	     120 allocs/op
BenchmarkClusterByConfiguration/1-16-8         	    2000	    500000 ns/op
PASS
ok  	arbor	12.345s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkClusterRead" || r.Iterations != 5000 || r.NsPerOp != 234567 {
		t.Errorf("first result = %+v", r)
	}
	if r.BytesPerOp != 1200 || r.AllocsPerOp != 34 {
		t.Errorf("memory stats = %+v", r)
	}
	if want := 1e9 / 234567.0; r.OpsPerSec != want {
		t.Errorf("ops/sec = %v, want %v", r.OpsPerSec, want)
	}
	// Sub-benchmark names keep their config part; only -procs is stripped.
	if results[2].Name != "BenchmarkClusterByConfiguration/1-16" {
		t.Errorf("sub-benchmark name = %q", results[2].Name)
	}
	if results[2].BytesPerOp != 0 || results[2].AllocsPerOp != 0 {
		t.Errorf("missing -benchmem should leave memory stats zero: %+v", results[2])
	}
}

func TestRunWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run([]string{"-o", path}, strings.NewReader(sample), os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, data)
	}
	if len(snap.Benchmarks) != 3 || snap.GoVersion == "" || snap.GeneratedAt == "" {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n"), os.Stdout); err == nil {
		t.Fatal("empty input accepted")
	}
}

// writeSnap writes a snapshot file for the diff tests.
func writeSnap(t *testing.T, dir, name string, results []Result) string {
	t.Helper()
	data, err := json.Marshal(Snapshot{Benchmarks: results})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffReportsDeltasAndWarnsOnRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", []Result{
		{Name: "BenchmarkRead", NsPerOp: 1000, OpsPerSec: 1e6, BytesPerOp: 100, AllocsPerOp: 10},
		{Name: "BenchmarkWrite", NsPerOp: 2000, OpsPerSec: 5e5},
		{Name: "BenchmarkGone", NsPerOp: 10, OpsPerSec: 1e8},
	})
	newPath := writeSnap(t, dir, "new.json", []Result{
		// Read got 10% slower: inside the threshold, no warning.
		{Name: "BenchmarkRead", NsPerOp: 1100, OpsPerSec: 1e9 / 1100, BytesPerOp: 90, AllocsPerOp: 8},
		// Write halved its throughput: warned.
		{Name: "BenchmarkWrite", NsPerOp: 4000, OpsPerSec: 2.5e5},
		{Name: "BenchmarkNew", NsPerOp: 50, OpsPerSec: 2e7},
	})

	var out strings.Builder
	if err := run([]string{"-diff", oldPath, newPath}, nil, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"BenchmarkRead", "100 -> 90 B/op", "10 -> 8 allocs/op",
		"WARN BenchmarkWrite: throughput fell 50.0%",
		"BenchmarkNew", "new benchmark",
		"BenchmarkGone", "removed",
		"1 benchmark(s) regressed beyond 25%",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("diff output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "WARN BenchmarkRead") {
		t.Errorf("10%% slowdown should not warn:\n%s", got)
	}
}

func TestDiffExitsZeroOnRegression(t *testing.T) {
	// A regression warns but must not fail the run: CI uses the diff as a
	// smoke signal, not a gate.
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", []Result{{Name: "B", NsPerOp: 100, OpsPerSec: 1e7}})
	newPath := writeSnap(t, dir, "new.json", []Result{{Name: "B", NsPerOp: 1000, OpsPerSec: 1e6}})
	if err := run([]string{"-diff", oldPath, newPath}, nil, &strings.Builder{}); err != nil {
		t.Fatalf("diff with regression returned error: %v", err)
	}
}

func TestDiffArgErrors(t *testing.T) {
	if err := run([]string{"-diff", "only-one.json"}, nil, os.Stdout); err == nil {
		t.Error("one argument accepted")
	}
	if err := run([]string{"-diff", "nope.json", "also-nope.json"}, nil, os.Stdout); err == nil {
		t.Error("missing files accepted")
	}
}
