package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: arbor
cpu: Fake CPU @ 2.40GHz
BenchmarkClusterRead-8   	    5000	    234567 ns/op	    1200 B/op	      34 allocs/op
BenchmarkClusterWrite-8  	    1000	   1234567 ns/op	    5600 B/op	     120 allocs/op
BenchmarkClusterByConfiguration/1-16-8         	    2000	    500000 ns/op
PASS
ok  	arbor	12.345s
`

func TestParse(t *testing.T) {
	results, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkClusterRead" || r.Iterations != 5000 || r.NsPerOp != 234567 {
		t.Errorf("first result = %+v", r)
	}
	if r.BytesPerOp != 1200 || r.AllocsPerOp != 34 {
		t.Errorf("memory stats = %+v", r)
	}
	if want := 1e9 / 234567.0; r.OpsPerSec != want {
		t.Errorf("ops/sec = %v, want %v", r.OpsPerSec, want)
	}
	// Sub-benchmark names keep their config part; only -procs is stripped.
	if results[2].Name != "BenchmarkClusterByConfiguration/1-16" {
		t.Errorf("sub-benchmark name = %q", results[2].Name)
	}
	if results[2].BytesPerOp != 0 || results[2].AllocsPerOp != 0 {
		t.Errorf("missing -benchmem should leave memory stats zero: %+v", results[2])
	}
}

func TestRunWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run([]string{"-o", path}, strings.NewReader(sample), os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, data)
	}
	if len(snap.Benchmarks) != 3 || snap.GoVersion == "" || snap.GeneratedAt == "" {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	if err := run(nil, strings.NewReader("PASS\n"), os.Stdout); err == nil {
		t.Fatal("empty input accepted")
	}
}
