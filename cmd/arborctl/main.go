// Command arborctl is the HTTP client for an arbord daemon: get/put keys,
// dump stats, inject failures, checkpoint, and reshape the tree from the
// command line.
//
// Usage:
//
//	arborctl [-addr http://127.0.0.1:8080] get KEY
//	arborctl put KEY VALUE
//	arborctl stats
//	arborctl crash SITE | drain SITE | recover SITE|all
//	arborctl reconfigure SPEC
//	arborctl checkpoint
//	arborctl controller [enable|disable]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "arborctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("arborctl", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "arbord base URL")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return errors.New("need a command: get, put, stats, crash, drain, recover, reconfigure, checkpoint, controller")
	}
	base := strings.TrimRight(*addr, "/")

	switch cmd := rest[0]; cmd {
	case "get":
		if len(rest) != 2 {
			return errors.New("usage: get KEY")
		}
		return request(out, http.MethodGet, base+"/get?key="+url.QueryEscape(rest[1]), "")
	case "put":
		if len(rest) != 3 {
			return errors.New("usage: put KEY VALUE")
		}
		return request(out, http.MethodPut, base+"/put?key="+url.QueryEscape(rest[1]), rest[2])
	case "stats":
		return request(out, http.MethodGet, base+"/stats", "")
	case "crash":
		if len(rest) != 2 {
			return errors.New("usage: crash SITE")
		}
		return request(out, http.MethodPost, base+"/crash?site="+url.QueryEscape(rest[1]), "")
	case "drain":
		// Graceful: the site finishes in-flight 2PC before going down.
		if len(rest) != 2 {
			return errors.New("usage: drain SITE")
		}
		return request(out, http.MethodPost, base+"/drain?site="+url.QueryEscape(rest[1]), "")
	case "recover":
		if len(rest) != 2 {
			return errors.New("usage: recover SITE|all")
		}
		return request(out, http.MethodPost, base+"/recover?site="+url.QueryEscape(rest[1]), "")
	case "reconfigure":
		if len(rest) != 2 {
			return errors.New("usage: reconfigure SPEC")
		}
		return request(out, http.MethodPost, base+"/reconfigure?spec="+url.QueryEscape(rest[1]), "")
	case "checkpoint":
		return request(out, http.MethodPost, base+"/checkpoint", "")
	case "controller":
		// Bare "controller" inspects; "enable"/"disable" toggles.
		switch {
		case len(rest) == 1:
			return request(out, http.MethodGet, base+"/controller", "")
		case len(rest) == 2 && (rest[1] == "enable" || rest[1] == "disable"):
			return request(out, http.MethodPost, base+"/controller?action="+rest[1], "")
		default:
			return errors.New("usage: controller [enable|disable]")
		}
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// request performs one HTTP call, streams the body to out, and maps non-2xx
// statuses to errors.
func request(out io.Writer, method, target, body string) error {
	req, err := http.NewRequest(method, target, strings.NewReader(body))
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	_, err = out.Write(data)
	if err == nil && len(data) > 0 && data[len(data)-1] != '\n' {
		fmt.Fprintln(out)
	}
	return err
}
