package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fakeDaemon mimics arbord's routes closely enough to test arborctl's URL
// construction and error mapping.
func fakeDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	store := map[string]string{}
	mux := http.NewServeMux()
	mux.HandleFunc("/get", func(w http.ResponseWriter, r *http.Request) {
		v, ok := store[r.URL.Query().Get("key")]
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		fmt.Fprint(w, v)
	})
	mux.HandleFunc("/put", func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, r.ContentLength)
		_, _ = r.Body.Read(body)
		store[r.URL.Query().Get("key")] = string(body)
		fmt.Fprintln(w, "ok level=0 contacts=2")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, `{"tree":"1-3-5"}`)
	})
	mux.HandleFunc("/controller", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet {
			fmt.Fprintln(w, `{"state":{"enabled":false},"journal":[]}`)
			return
		}
		fmt.Fprintf(w, "controller %sd\n", r.URL.Query().Get("action"))
	})
	for _, route := range []string{"/crash", "/drain", "/recover", "/reconfigure", "/checkpoint"} {
		route := route
		mux.HandleFunc(route, func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "use POST", http.StatusMethodNotAllowed)
				return
			}
			fmt.Fprintf(w, "done %s %s\n", route, r.URL.RawQuery)
		})
	}
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func ctl(t *testing.T, addr string, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(append([]string{"-addr", addr}, args...), &sb)
	return sb.String(), err
}

func TestPutGetStats(t *testing.T) {
	ts := fakeDaemon(t)
	if out, err := ctl(t, ts.URL, "put", "greeting", "hello"); err != nil || !strings.Contains(out, "ok level=") {
		t.Fatalf("put: %q %v", out, err)
	}
	out, err := ctl(t, ts.URL, "get", "greeting")
	if err != nil || strings.TrimSpace(out) != "hello" {
		t.Fatalf("get: %q %v", out, err)
	}
	out, err = ctl(t, ts.URL, "stats")
	if err != nil || !strings.Contains(out, "1-3-5") {
		t.Fatalf("stats: %q %v", out, err)
	}
}

func TestAdminCommands(t *testing.T) {
	ts := fakeDaemon(t)
	for _, args := range [][]string{
		{"crash", "3"},
		{"drain", "2"},
		{"recover", "all"},
		{"reconfigure", "1-4-4"},
		{"checkpoint"},
	} {
		out, err := ctl(t, ts.URL, args...)
		if err != nil || !strings.Contains(out, "done") {
			t.Errorf("%v: %q %v", args, out, err)
		}
	}
}

func TestControllerCommand(t *testing.T) {
	ts := fakeDaemon(t)
	if out, err := ctl(t, ts.URL, "controller"); err != nil || !strings.Contains(out, `"enabled":false`) {
		t.Errorf("controller inspect: %q %v", out, err)
	}
	if out, err := ctl(t, ts.URL, "controller", "enable"); err != nil || !strings.Contains(out, "controller enabled") {
		t.Errorf("controller enable: %q %v", out, err)
	}
	if out, err := ctl(t, ts.URL, "controller", "disable"); err != nil || !strings.Contains(out, "controller disabled") {
		t.Errorf("controller disable: %q %v", out, err)
	}
	if _, err := ctl(t, ts.URL, "controller", "sideways"); err == nil {
		t.Error("bad controller action accepted")
	}
	if _, err := ctl(t, ts.URL, "controller", "enable", "now"); err == nil {
		t.Error("extra controller args accepted")
	}
}

func TestErrorMapping(t *testing.T) {
	ts := fakeDaemon(t)
	if _, err := ctl(t, ts.URL, "get", "missing"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing key error = %v", err)
	}
}

func TestUsageErrors(t *testing.T) {
	ts := fakeDaemon(t)
	for _, args := range [][]string{
		{},
		{"get"},
		{"put", "k"},
		{"crash"},
		{"drain"},
		{"recover"},
		{"reconfigure"},
		{"explode"},
	} {
		if _, err := ctl(t, ts.URL, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	if err := run([]string{"-bogus"}, &strings.Builder{}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestUnreachableDaemon(t *testing.T) {
	if _, err := ctl(t, "http://127.0.0.1:1", "stats"); err == nil {
		t.Error("unreachable daemon produced no error")
	}
}
