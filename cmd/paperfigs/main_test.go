package main

import "testing"

func TestRunSingleExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "example34", "limits", "lowerbound"} {
		if err := run([]string{"-exp", exp}); err != nil {
			t.Errorf("run(-exp %s): %v", exp, err)
		}
	}
}

func TestRunFigures(t *testing.T) {
	for _, exp := range []string{"fig2", "fig3", "fig4"} {
		if err := run([]string{"-exp", exp, "-maxn", "100"}); err != nil {
			t.Errorf("run(-exp %s): %v", exp, err)
		}
		if err := run([]string{"-exp", exp, "-maxn", "50", "-csv"}); err != nil {
			t.Errorf("run(-exp %s -csv): %v", exp, err)
		}
	}
}

func TestRunValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo heavy")
	}
	if err := run([]string{"-exp", "validate"}); err != nil {
		t.Errorf("run(-exp validate): %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunPlotAndExtras(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "fig2", "-maxn", "60", "-plot"},
		{"-exp", "fig3", "-maxn", "60", "-plot"},
		{"-exp", "fig4", "-maxn", "60", "-plot"},
		{"-exp", "ablation"},
		{"-exp", "context"},
		{"-exp", "availability"},
	} {
		if err := run(args); err != nil {
			t.Errorf("run(%v): %v", args, err)
		}
	}
}

func TestRunCorrelated(t *testing.T) {
	if err := run([]string{"-exp", "correlated"}); err != nil {
		t.Fatalf("correlated: %v", err)
	}
}
