// Command paperfigs regenerates every table and figure of the paper's
// evaluation: Table 1, the §3.4 worked example, Figures 2–4, the §3.3
// asymptotic availabilities, and the new lower-bound comparison.
//
// Usage:
//
//	paperfigs                  # everything
//	paperfigs -exp fig3        # one experiment
//	paperfigs -maxn 500 -p 0.8 # sweep and availability parameters
//	paperfigs -csv             # machine-readable series output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"arbor/internal/analysis"
	"arbor/internal/core"
	"arbor/internal/figures"
	"arbor/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "paperfigs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("paperfigs", flag.ContinueOnError)
	var (
		exp  = fs.String("exp", "all", "experiment: table1, example34, fig2, fig3, fig4, limits, lowerbound, validate, ablation, context, availability, correlated or all")
		maxN = fs.Int("maxn", 300, "largest system size in the figure sweeps")
		p    = fs.Float64("p", figures.DefaultP, "per-replica availability for expected loads")
		csv  = fs.Bool("csv", false, "emit figure series as CSV instead of text tables")
		plot = fs.Bool("plot", false, "append an ASCII chart to each figure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	wants := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if wants("table1") {
		fmt.Println(figures.RenderTable1())
		ran = true
	}
	if wants("example34") {
		fmt.Println(figures.RenderExample34())
		ran = true
	}
	if wants("fig2") {
		s := figures.Figure2(*maxN)
		emitSeries("Figure 2 — communication costs of read and write operations",
			"read_cost", "write_cost", s, *csv)
		if *plot {
			fmt.Println(figures.Plot("Figure 2 (read costs)", s, figures.PlotRead, 64, 18))
			fmt.Println(figures.Plot("Figure 2 (write costs)", s, figures.PlotWrite, 64, 18))
		}
		ran = true
	}
	if wants("fig3") {
		s := figures.Figure3(*maxN, *p)
		emitSeries(fmt.Sprintf("Figure 3 — (expected) system loads of read operations (p=%.2f)", *p),
			"load", "expected_load", s, *csv)
		if *plot {
			fmt.Println(figures.Plot("Figure 3 (read loads)", s, figures.PlotRead, 64, 18))
		}
		ran = true
	}
	if wants("fig4") {
		s := figures.Figure4(*maxN, *p)
		emitSeries(fmt.Sprintf("Figure 4 — (expected) system loads of write operations (p=%.2f)", *p),
			"load", "expected_load", s, *csv)
		if *plot {
			fmt.Println(figures.Plot("Figure 4 (write loads)", s, figures.PlotWrite, 64, 18))
		}
		ran = true
	}
	if wants("limits") {
		fmt.Println(figures.RenderLimits())
		ran = true
	}
	if wants("lowerbound") {
		fmt.Println(figures.RenderLowerBound())
		ran = true
	}
	if wants("validate") {
		if err := emitValidation(*p); err != nil {
			return err
		}
		ran = true
	}
	if wants("correlated") {
		if err := emitCorrelated(); err != nil {
			return err
		}
		ran = true
	}
	if wants("availability") {
		out, err := figures.RenderAvailabilityCurve(100)
		if err != nil {
			return err
		}
		fmt.Println(out)
		ran = true
	}
	if wants("context") {
		out, err := figures.RenderContext(*maxN/3, *p)
		if err != nil {
			return err
		}
		fmt.Println(out)
		ran = true
	}
	if wants("ablation") {
		out, err := figures.RenderAblation(64, *p)
		if err != nil {
			return err
		}
		fmt.Println(out)
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *exp)
	}
	return nil
}

// emitCorrelated contrasts the paper's independent-failure availabilities
// with whole-level (zone-outage) correlated failures on the n=100
// Algorithm 1 tree.
func emitCorrelated() error {
	t, err := tree.Algorithm1(100)
	if err != nil {
		return err
	}
	a := core.Analyze(t)
	fmt.Println("correlated failures — independent replicas vs whole-level outages (n=100)")
	fmt.Printf("%5s %14s %14s %14s %14s\n", "p", "RD indep", "RD zone", "WR indep", "WR zone")
	for _, p := range []float64{0.8, 0.9, 0.95, 0.99} {
		cr, cw, err := analysis.CorrelatedAvailability(t, p)
		if err != nil {
			return err
		}
		fmt.Printf("%5.2f %14.4f %14.4f %14.4f %14.4f\n",
			p, a.ReadAvailability(p), cr, a.WriteAvailability(p), cw)
	}
	fmt.Println("\nzone-correlated outages invert the trade-off: reads decay with the level")
	fmt.Println("count while writes (any one surviving zone suffices) become near-perfect.")
	fmt.Println()
	return nil
}

// emitValidation cross-checks the closed forms against Monte Carlo
// estimates on representative trees (experiments V-AV and V-LD of
// DESIGN.md).
func emitValidation(p float64) error {
	fmt.Printf("validation — closed forms vs Monte Carlo (p=%.2f, 100k trials)\n", p)
	fmt.Printf("%-22s %10s %10s %10s %10s %10s %10s %10s %10s\n",
		"tree", "RDav form", "RDav MC", "WRav form", "WRav MC",
		"L_RD form", "L_RD MC", "L_WR form", "L_WR MC")
	specs := []string{"1-3-5", "1-4-4-8", "1-2-2-2-2"}
	for _, spec := range specs {
		t, err := tree.ParseSpec(spec)
		if err != nil {
			return err
		}
		if err := printValidation(t, p); err != nil {
			return err
		}
	}
	big, err := tree.Algorithm1(400)
	if err != nil {
		return err
	}
	return printValidation(big, p)
}

func printValidation(t *tree.Tree, p float64) error {
	v, err := analysis.Validate(t, p, 100000, 1)
	if err != nil {
		return err
	}
	name := t.Spec()
	if len(name) > 22 {
		name = fmt.Sprintf("Algorithm1(n=%d)", t.N())
	}
	fmt.Printf("%-22s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f\n",
		name, v.ReadFormula, v.ReadEstimate, v.WriteFormula, v.WriteEstimate,
		v.ReadLoadFormula, v.ReadLoadSample, v.WriteLoad, v.WriteLoadSample)
	return nil
}

func emitSeries(title, readCol, writeCol string, series []figures.Series, csv bool) {
	if !csv {
		fmt.Println(figures.RenderSeries(title, readCol, writeCol, series))
		return
	}
	fmt.Printf("# %s\n", title)
	fmt.Printf("configuration,n,%s,%s\n", readCol, writeCol)
	for _, s := range series {
		for _, pt := range s.Points {
			fmt.Printf("%s,%d,%g,%g\n", strings.ToLower(s.Name), pt.N, pt.Read, pt.Write)
		}
	}
	fmt.Println()
}
