// Command arborvet runs the repository's custom static analyzers over the
// module: protocol invariants (quorum shapes, deterministic packages) and
// concurrency/engineering rules (goroutine leaks, lock scopes, error
// wrapping, observability coverage) that go vet cannot know about. It
// complements vet, not replaces it.
//
// Usage:
//
//	arborvet [-only a,b] [-list] [packages]
//
// Package patterns are module-relative: ./... (default) analyzes every
// package, ./internal/... a subtree, ./internal/client one package.
// Diagnostics print as path:line:col: message [analyzer]; the exit status
// is 1 when any diagnostic is reported, 2 on usage or load errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"arbor/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		sel, ok := lint.ByName(strings.Split(*only, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "arborvet: unknown analyzer in -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "arborvet: %v\n", err)
		os.Exit(2)
	}

	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "arborvet: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := filterPackages(pkgs, modPath, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arborvet: %v\n", err)
		os.Exit(2)
	}

	diags := lint.RunAnalyzers(selected, analyzers)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arborvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModule walks up from the working directory to the nearest go.mod and
// returns the module root and module path.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, err := os.Stat(gomod); err == nil {
			mp, err := modulePath(gomod)
			if err != nil {
				return "", "", err
			}
			return dir, mp, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}

// filterPackages selects loaded packages by module-relative patterns.
func filterPackages(pkgs []*lint.Package, modPath string, patterns []string) ([]*lint.Package, error) {
	match := func(pkg *lint.Package) (bool, error) {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, modPath), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(strings.TrimPrefix(pat, "./"), "/")
			switch {
			case pat == "...":
				return true, nil
			case strings.HasSuffix(pat, "/..."):
				prefix := strings.TrimSuffix(pat, "/...")
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					return true, nil
				}
			case pat == "" || pat == ".":
				if rel == "" {
					return true, nil
				}
			default:
				if rel == filepath.ToSlash(filepath.Clean(pat)) {
					return true, nil
				}
			}
		}
		return false, nil
	}
	var out []*lint.Package
	for _, p := range pkgs {
		ok, err := match(p)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}
