// Command arborvet runs the repository's custom static analyzers over the
// module: protocol invariants (quorum shapes, deterministic packages) and
// concurrency/engineering rules (goroutine leaks, lock scopes, error
// wrapping, observability coverage) that go vet cannot know about. It
// complements vet, not replaces it.
//
// Usage:
//
//	arborvet [-only a,b] [-list] [-json] [-baseline file] [-github] [-budget d] [packages]
//
// Package patterns are module-relative: ./... (default) analyzes every
// package, ./internal/... a subtree, ./internal/client one package.
// Diagnostics print as path:line:col: message [analyzer]; -json prints a
// machine-readable array instead (the format -baseline consumes). A
// baseline file suppresses previously accepted findings, matched by
// (file, analyzer, message) with per-tuple counts so line drift does not
// resurrect them; regenerate it with `arborvet -json > baseline`.
// -github additionally emits ::error workflow annotations for CI. -budget
// fails the run when analysis wall time exceeds the duration, keeping
// `make lint` honest about its latency.
//
// The exit status is 1 when any non-baselined diagnostic is reported or
// the budget is blown, 2 on usage or load errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"arbor/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list registered analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	baselinePath := flag.String("baseline", "", "JSON findings file (from -json) whose entries are suppressed")
	github := flag.Bool("github", false, "also emit GitHub Actions ::error annotations")
	budget := flag.Duration("budget", 0, "fail if load+analysis exceeds this wall time (0 = no budget)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		sel, ok := lint.ByName(strings.Split(*only, ","))
		if !ok {
			fmt.Fprintf(os.Stderr, "arborvet: unknown analyzer in -only=%s\n", *only)
			os.Exit(2)
		}
		analyzers = sel
	}

	root, modPath, err := findModule()
	if err != nil {
		fmt.Fprintf(os.Stderr, "arborvet: %v\n", err)
		os.Exit(2)
	}

	start := time.Now()
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "arborvet: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	selected, err := filterPackages(pkgs, modPath, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arborvet: %v\n", err)
		os.Exit(2)
	}

	diags := lint.RunAnalyzers(selected, analyzers)
	elapsed := time.Since(start)

	// Relativize paths before baseline matching and output, so baseline
	// files are portable across checkouts.
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].Pos.Filename = filepath.ToSlash(rel)
		}
	}

	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "arborvet: %v\n", err)
			os.Exit(2)
		}
		diags = filterBaseline(diags, base)
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "arborvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *github {
		for _, d := range diags {
			fmt.Println(githubAnnotation(d))
		}
	}

	failed := false
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "arborvet: %d finding(s)\n", len(diags))
		failed = true
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(os.Stderr, "arborvet: analysis took %s, over the %s budget; profile the loader or split the run\n",
			elapsed.Round(time.Millisecond), *budget)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable finding shape shared by -json output
// and -baseline input.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSON emits findings as an indented JSON array (an empty run prints
// [], so downstream tooling always gets valid JSON).
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// baselineKey identifies a finding for baseline matching. Line and column
// are deliberately excluded: edits above a finding move it without
// changing what it is, and a baseline that rots on every unrelated edit
// gets deleted rather than maintained.
func baselineKey(file, analyzer, message string) string {
	return file + "\x00" + analyzer + "\x00" + message
}

// loadBaseline reads a -json findings file into per-key allowances.
func loadBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var entries []jsonDiag
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	base := make(map[string]int)
	for _, e := range entries {
		base[baselineKey(e.File, e.Analyzer, e.Message)]++
	}
	return base, nil
}

// filterBaseline drops findings covered by the baseline, consuming one
// allowance per match so a finding that multiplies still surfaces.
func filterBaseline(diags []lint.Diagnostic, base map[string]int) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range diags {
		key := baselineKey(d.Pos.Filename, d.Analyzer, d.Message)
		if base[key] > 0 {
			base[key]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// githubAnnotation renders a finding as a GitHub Actions workflow command,
// which the runner turns into an inline PR annotation. Message text is
// escaped per the workflow-command rules.
func githubAnnotation(d lint.Diagnostic) string {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace
	prop := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C").Replace
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=%s::%s",
		prop(d.Pos.Filename), d.Pos.Line, d.Pos.Column, prop(d.Analyzer), esc(d.Message))
}

// findModule walks up from the working directory to the nearest go.mod and
// returns the module root and module path.
func findModule() (root, modPath string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if _, err := os.Stat(gomod); err == nil {
			mp, err := modulePath(gomod)
			if err != nil {
				return "", "", err
			}
			return dir, mp, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	f, err := os.Open(gomod)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("%s: no module declaration", gomod)
}

// filterPackages selects loaded packages by module-relative patterns.
func filterPackages(pkgs []*lint.Package, modPath string, patterns []string) ([]*lint.Package, error) {
	match := func(pkg *lint.Package) (bool, error) {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, modPath), "/")
		for _, pat := range patterns {
			pat = strings.TrimPrefix(strings.TrimPrefix(pat, "./"), "/")
			switch {
			case pat == "...":
				return true, nil
			case strings.HasSuffix(pat, "/..."):
				prefix := strings.TrimSuffix(pat, "/...")
				if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
					return true, nil
				}
			case pat == "" || pat == ".":
				if rel == "" {
					return true, nil
				}
			default:
				if rel == filepath.ToSlash(filepath.Clean(pat)) {
					return true, nil
				}
			}
		}
		return false, nil
	}
	var out []*lint.Package
	for _, p := range pkgs {
		ok, err := match(p)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	return out, nil
}
