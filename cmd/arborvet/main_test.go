package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"arbor/internal/lint"
)

func diag(file string, line int, analyzer, msg string) lint.Diagnostic {
	return lint.Diagnostic{
		Pos:      token.Position{Filename: file, Line: line, Column: 3},
		Analyzer: analyzer,
		Message:  msg,
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	diags := []lint.Diagnostic{
		diag("internal/a/a.go", 10, "goleak", "goroutine loops forever"),
		diag("internal/b/b.go", 20, "poolsafe", "use of bp after it was returned to the pool"),
	}
	var sb strings.Builder
	if err := writeJSON(&sb, diags); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	var got []jsonDiag
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(got) != 2 || got[0].Analyzer != "goleak" || got[1].File != "internal/b/b.go" || got[1].Line != 20 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestWriteJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := writeJSON(&sb, nil); err != nil {
		t.Fatalf("writeJSON: %v", err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("empty run must print [], got %q", sb.String())
	}
}

func TestBaselineFilter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	base := []jsonDiag{
		// Line 99 on purpose: baselines match on (file, analyzer, message)
		// so drift does not resurrect accepted findings.
		{File: "internal/a/a.go", Line: 99, Analyzer: "goleak", Message: "known leak"},
		{File: "internal/a/a.go", Line: 100, Analyzer: "goleak", Message: "known leak"},
	}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadBaseline(path)
	if err != nil {
		t.Fatalf("loadBaseline: %v", err)
	}

	diags := []lint.Diagnostic{
		diag("internal/a/a.go", 12, "goleak", "known leak"),
		diag("internal/a/a.go", 40, "goleak", "known leak"),
		diag("internal/a/a.go", 77, "goleak", "known leak"), // third copy exceeds the 2 allowances
		diag("internal/a/a.go", 12, "poolsafe", "known leak"),
		diag("internal/c/c.go", 12, "goleak", "known leak"),
	}
	got := filterBaseline(diags, loaded)
	if len(got) != 3 {
		t.Fatalf("filterBaseline kept %d findings, want 3: %v", len(got), got)
	}
	if got[0].Pos.Line != 77 || got[1].Analyzer != "poolsafe" || got[2].Pos.Filename != "internal/c/c.go" {
		t.Fatalf("wrong findings survived: %v", got)
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline file must error, not silently pass everything")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil {
		t.Error("malformed baseline must error")
	}
}

func TestGithubAnnotation(t *testing.T) {
	d := diag("internal/a/a.go", 7, "wireclosed", "tag mismatch: 50% drift\nsecond line")
	got := githubAnnotation(d)
	want := "::error file=internal/a/a.go,line=7,col=3,title=wireclosed::tag mismatch: 50%25 drift%0Asecond line"
	if got != want {
		t.Errorf("githubAnnotation:\n got %q\nwant %q", got, want)
	}
}

func TestFilterPackages(t *testing.T) {
	pkgs := []*lint.Package{
		{Path: "arbor/internal/lint"},
		{Path: "arbor/internal/wire"},
		{Path: "arbor/cmd/arborvet"},
	}
	sel, err := filterPackages(pkgs, "arbor", []string{"./internal/..."})
	if err != nil || len(sel) != 2 {
		t.Fatalf("filterPackages(./internal/...) = %v pkgs, err %v; want 2", len(sel), err)
	}
	sel, err = filterPackages(pkgs, "arbor", []string{"./..."})
	if err != nil || len(sel) != 3 {
		t.Fatalf("filterPackages(./...) = %v pkgs, err %v; want 3", len(sel), err)
	}
	if _, err := filterPackages(pkgs, "arbor", []string{"./nosuch"}); err == nil {
		t.Fatal("filterPackages must reject patterns matching nothing")
	}
}
