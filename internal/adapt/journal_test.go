package adapt

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestJournalRingEvictsOldest(t *testing.T) {
	j := newJournal(3)
	for i := 0; i < 5; i++ {
		j.append(Decision{Reason: fmt.Sprintf("r%d", i)})
	}
	got := j.last(0)
	if len(got) != 3 {
		t.Fatalf("retained %d entries, want 3", len(got))
	}
	for i, d := range got {
		wantSeq := uint64(i + 3) // 3, 4, 5 survive
		if d.Seq != wantSeq {
			t.Errorf("entry %d seq = %d, want %d", i, d.Seq, wantSeq)
		}
		if want := fmt.Sprintf("r%d", i+2); d.Reason != want {
			t.Errorf("entry %d reason = %q, want %q", i, d.Reason, want)
		}
	}
}

func TestJournalLastN(t *testing.T) {
	j := newJournal(10)
	for i := 0; i < 4; i++ {
		j.append(Decision{})
	}
	if got := j.last(2); len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("last(2) = %+v", got)
	}
	if got := j.last(99); len(got) != 4 {
		t.Fatalf("last(99) returned %d entries", len(got))
	}
	if got := newJournal(5).last(0); len(got) != 0 {
		t.Fatalf("empty journal returned %d entries", len(got))
	}
}

func TestJournalMinimumCapacity(t *testing.T) {
	j := newJournal(0)
	j.append(Decision{Reason: "a"})
	j.append(Decision{Reason: "b"})
	got := j.last(0)
	if len(got) != 1 || got[0].Reason != "b" {
		t.Fatalf("capacity-clamped journal = %+v", got)
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{
		Seq:         7,
		Action:      ActionMigrate,
		Reason:      "drifted",
		CurrentSpec: "1-16",
		AdvisedSpec: "1-4-4-4-4",
		Outcome:     "ok",
	}
	s := d.String()
	for _, want := range []string{"#7", "migrate", "drifted", "1-16 -> 1-4-4-4-4", "[ok]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	hold := Decision{Seq: 8, Action: ActionHold, Reason: "warming up", CurrentSpec: "1-16"}
	if s := hold.String(); strings.Contains(s, "->") || strings.Contains(s, "[") {
		t.Errorf("hold String() = %q leaked advice/outcome markers", s)
	}
}

func TestDecisionJSONRoundTrip(t *testing.T) {
	d := Decision{
		Seq:            3,
		Action:         ActionMigrate,
		Reason:         "drifted",
		Window:         WindowStats{Samples: 5, Reads: 10, Writes: 90, ReadFraction: 0.1},
		CurrentSpec:    "1-16",
		AdvisedSpec:    "1-8-8",
		CurrentScore:   1,
		AdvisedScore:   0.5,
		TheoryReadGap:  0.01,
		TheoryWriteGap: -0.02,
		Outcome:        "ok",
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Decision
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != d {
		t.Fatalf("round trip changed the decision:\n  %+v\n  %+v", d, back)
	}
	// Holds omit advice fields entirely.
	hb, err := json.Marshal(Decision{Seq: 1, Action: ActionHold, Reason: "warming up"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(hb), "advisedSpec") || strings.Contains(string(hb), "outcome") {
		t.Errorf("hold JSON leaked empty fields: %s", hb)
	}
}
