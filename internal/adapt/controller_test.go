package adapt

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"arbor/internal/client"
	"arbor/internal/cluster"
	"arbor/internal/config"
	"arbor/internal/obs"
	"arbor/internal/tree"
)

func newCluster(t *testing.T, spec string, opts ...cluster.Option) *cluster.Cluster {
	t.Helper()
	tr, err := tree.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]cluster.Option{cluster.WithSeed(1)}, opts...)
	c, err := cluster.New(tr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func newClient(t *testing.T, c *cluster.Cluster) *client.Client {
	t.Helper()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	return cli
}

func newController(t *testing.T, c *cluster.Cluster, opts ...Option) *Controller {
	t.Helper()
	ctl, err := New(c, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return ctl
}

// doReads/doWrites drive one tick's worth of workload.
func doReads(t *testing.T, cli *client.Client, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := cli.Read(ctx, "k"); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

func doWrites(t *testing.T, cli *client.Client, n int) {
	t.Helper()
	ctx := context.Background()
	for i := 0; i < n; i++ {
		if _, err := cli.Write(ctx, fmt.Sprintf("k%d", i%4), []byte("v")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

// TestControllerFlipMigratesAndBack is the acceptance scenario: a
// read-heavy → write-heavy flip migrates the MOSTLY-READ tree towards
// MOSTLY-WRITE, the reverse flip migrates it back, and every
// reconfiguration is explained by a journal entry.
func TestControllerFlipMigratesAndBack(t *testing.T) {
	c := newCluster(t, "1-16", cluster.WithObserver(obs.NewObserver(0)))
	cli := newClient(t, c)
	ctl := newController(t, c,
		WithWindow(3),
		WithCooldown(0),
		WithMinLevelDelta(2),
		WithEnabled(true),
	)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Read-heavy phase: the single-level tree already fits; only holds.
	for tick := 0; tick < 6; tick++ {
		doReads(t, cli, 25)
		ctl.Step()
	}
	if got := ctl.Reconfigurations(); got != 0 {
		t.Fatalf("controller reconfigured %d time(s) on a well-fitted workload", got)
	}

	// Write-heavy flip: drift accumulates, then a migration fires.
	for tick := 0; tick < 30 && ctl.Reconfigurations() == 0; tick++ {
		doWrites(t, cli, 25)
		ctl.Step()
	}
	if got := ctl.Reconfigurations(); got != 1 {
		t.Fatalf("write-heavy flip produced %d reconfigurations, want 1", got)
	}
	if got := c.Tree().NumPhysicalLevels(); got < 3 {
		t.Fatalf("tree has %d levels after write-heavy flip, want ≥ 3 (%s)", got, c.Tree().Spec())
	}

	// Reverse flip: probation must pass, drift re-accumulates, and the
	// controller migrates back to the read-optimized single level.
	for tick := 0; tick < 40 && ctl.Reconfigurations() == 1; tick++ {
		doReads(t, cli, 25)
		ctl.Step()
	}
	if got := ctl.Reconfigurations(); got != 2 {
		t.Fatalf("reverse flip produced %d total reconfigurations, want 2", got)
	}
	if got := c.Tree().NumPhysicalLevels(); got != 1 {
		t.Fatalf("tree has %d levels after reverse flip, want 1 (%s)", got, c.Tree().Spec())
	}
	if got := ctl.Reverts(); got != 0 {
		t.Fatalf("degradation guard reverted %d time(s)", got)
	}

	// Data written before any migration survives both of them.
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		t.Fatalf("read after migrations: %v", err)
	}
	if string(rd.Value) != "v" {
		t.Fatalf("value corrupted across migrations: %q", rd.Value)
	}

	// Every reconfiguration is explained by a journal entry.
	var migrations []Decision
	for _, d := range ctl.Journal(0) {
		if d.Action == ActionMigrate && d.Outcome == "ok" {
			migrations = append(migrations, d)
		}
	}
	if len(migrations) != 2 {
		t.Fatalf("journal explains %d migrations, want 2", len(migrations))
	}
	first, second := migrations[0], migrations[1]
	if first.CurrentSpec != "1-16" || first.AdvisedLevels < 3 {
		t.Errorf("first migration %s -> %s, want 1-16 -> ≥3 levels", first.CurrentSpec, first.AdvisedSpec)
	}
	if second.AdvisedSpec != "1-16" {
		t.Errorf("second migration %s -> %s, want back to 1-16", second.CurrentSpec, second.AdvisedSpec)
	}
	for _, d := range migrations {
		if d.Window.Ops() == 0 || d.Reason == "" || d.AdvisedScore >= d.CurrentScore {
			t.Errorf("migration #%d lacks evidence: %+v", d.Seq, d)
		}
	}

	// The controller's metric families are live on the cluster's registry.
	var buf bytes.Buffer
	if err := c.Observer().Reg().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"arbor_adapt_decisions_total",
		"arbor_adapt_reconfigurations_total",
		"arbor_adapt_window_read_fraction",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}

// TestControllerHoldsOnZeroOpWindow regression-guards the AutoTuner's
// zero-op edge case: an idle cluster never triggers a migration, and the
// holds say why.
func TestControllerHoldsOnZeroOpWindow(t *testing.T) {
	c := newCluster(t, "1-16")
	newClient(t, c)
	ctl := newController(t, c, WithWindow(2), WithEnabled(true))

	for i := 0; i < 6; i++ {
		d, ok := ctl.Step()
		if !ok {
			t.Fatal("enabled controller skipped evaluation")
		}
		if d.Action != ActionHold {
			t.Fatalf("step %d acted (%s) on zero ops", i, d.Action)
		}
	}
	if got := ctl.Reconfigurations(); got != 0 {
		t.Fatalf("controller reconfigured %d time(s) with zero operations", got)
	}
	j := ctl.Journal(0)
	last := j[len(j)-1]
	if !strings.Contains(last.Reason, "low signal") {
		t.Errorf("idle hold reason = %q, want low-signal", last.Reason)
	}
	if j[0].Window.Samples >= 2 && !strings.Contains(j[0].Reason, "warming up") {
		t.Errorf("first hold reason = %q", j[0].Reason)
	}
}

// TestControllerMinDeltaSuppression regression-guards the AutoTuner's
// min-delta edge case: advice within the level-delta threshold never
// registers as drift.
func TestControllerMinDeltaSuppression(t *testing.T) {
	// Read-heavy on "1-8-8": the advisor wants the single-level tree, one
	// level away — below the threshold of 2, so the controller holds.
	c := newCluster(t, "1-8-8")
	cli := newClient(t, c)
	ctl := newController(t, c, WithWindow(2), WithCooldown(0), WithMinLevelDelta(2), WithEnabled(true))
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 6; tick++ {
		doReads(t, cli, 25)
		ctl.Step()
	}
	if got := ctl.Reconfigurations(); got != 0 {
		t.Fatalf("controller reconfigured %d time(s) inside the min level delta", got)
	}
	j := ctl.Journal(1)
	if len(j) != 1 || !strings.Contains(j[0].Reason, "shape fits") {
		t.Fatalf("suppressed hold reason = %+v, want shape-fits", j)
	}
	if j[0].AdvisedSpec != "1-16" {
		t.Errorf("advised spec = %q, want 1-16", j[0].AdvisedSpec)
	}

	// Dropping the threshold to 1 turns the same evidence into a migration.
	ctl2 := newController(t, c, WithWindow(2), WithCooldown(0), WithMinLevelDelta(1), WithEnabled(true))
	for tick := 0; tick < 10 && ctl2.Reconfigurations() == 0; tick++ {
		doReads(t, cli, 25)
		ctl2.Step()
	}
	if got := ctl2.Reconfigurations(); got != 1 {
		t.Fatalf("min delta 1 produced %d reconfigurations, want 1", got)
	}
	if got := c.Tree().Spec(); got != "1-16" {
		t.Fatalf("tree = %s after migration, want 1-16", got)
	}
}

// TestControllerDisabledObservesSilently: a disabled controller samples
// but journals nothing, and enable/disable transitions are journaled.
func TestControllerDisabledObservesSilently(t *testing.T) {
	c := newCluster(t, "1-16")
	cli := newClient(t, c)
	ctl := newController(t, c, WithWindow(2))
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		doWrites(t, cli, 25)
		if _, ok := ctl.Step(); ok {
			t.Fatal("disabled controller evaluated")
		}
	}
	if got := len(ctl.Journal(0)); got != 0 {
		t.Fatalf("disabled controller journaled %d decisions", got)
	}

	if !ctl.SetEnabled(true) {
		t.Fatal("SetEnabled(true) reported no change")
	}
	if ctl.SetEnabled(true) {
		t.Fatal("repeated SetEnabled(true) reported a change")
	}
	ctl.SetEnabled(false)
	j := ctl.Journal(0)
	if len(j) != 2 || j[0].Action != ActionEnable || j[1].Action != ActionDisable {
		t.Fatalf("transition journal = %+v", j)
	}
}

// TestControllerCooldown: after a migration, renewed drift inside the
// cooldown holds with a cooldown reason.
func TestControllerCooldown(t *testing.T) {
	c := newCluster(t, "1-16")
	cli := newClient(t, c)
	ctl := newController(t, c,
		WithWindow(2),
		WithInterval(time.Second),
		WithCooldown(time.Hour),
		WithMinLevelDelta(1),
		WithEnabled(true),
	)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 20 && ctl.Reconfigurations() == 0; tick++ {
		doWrites(t, cli, 25)
		ctl.Step()
	}
	if ctl.Reconfigurations() != 1 {
		t.Fatalf("no initial migration (%d)", ctl.Reconfigurations())
	}
	// Flip to reads: the advised tree changes again, but the hour-long
	// cooldown (measured on the logical clock) blocks the second migration.
	sawCooldown := false
	for tick := 0; tick < 12; tick++ {
		doReads(t, cli, 25)
		d, _ := ctl.Step()
		if strings.Contains(d.Reason, "cooldown") {
			sawCooldown = true
		}
	}
	if !sawCooldown {
		t.Error("renewed drift inside the cooldown never journaled a cooldown hold")
	}
	if got := ctl.Reconfigurations(); got != 1 {
		t.Errorf("cooldown did not block the second migration (%d total)", got)
	}
}

// TestControllerRevertOnDegradation drives the abort-on-degradation guard
// directly: a probation window whose measured load is far worse than the
// pre-migration score reverts to the remembered tree.
func TestControllerRevertOnDegradation(t *testing.T) {
	c := newCluster(t, "1-16")
	cli := newClient(t, c)
	ctl := newController(t, c, WithWindow(2), WithCooldown(0), WithEnabled(true))
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Pretend a migration from "1-8-8" just happened and looked great
	// before (preScore near zero): any real measured load now counts as
	// degradation once the post-migration window fills.
	prev, err := tree.ParseSpec("1-8-8")
	if err != nil {
		t.Fatal(err)
	}
	ctl.mu.Lock()
	ctl.probation = 2
	ctl.preScore = 0.001
	ctl.preFrac = 0
	ctl.prevTree = prev
	ctl.hasActed = true
	ctl.samples = nil
	ctl.mu.Unlock()

	doWrites(t, cli, 25)
	d, _ := ctl.Step()
	if d.Action != ActionHold || !strings.Contains(d.Reason, "probation") {
		t.Fatalf("first probation tick = %+v", d)
	}
	doWrites(t, cli, 25)
	d, _ = ctl.Step()
	if d.Action != ActionRevert {
		t.Fatalf("degraded probation ended with %s (%s), want revert", d.Action, d.Reason)
	}
	if d.Outcome != "ok" {
		t.Fatalf("revert outcome = %q", d.Outcome)
	}
	if got := c.Tree().Spec(); got != "1-8-8" {
		t.Fatalf("tree = %s after revert, want 1-8-8", got)
	}
	if ctl.Reverts() != 1 {
		t.Fatalf("Reverts() = %d, want 1", ctl.Reverts())
	}
}

// TestControllerProbationPasses: a healthy post-migration window clears
// probation without a revert.
func TestControllerProbationPasses(t *testing.T) {
	c := newCluster(t, "1-16")
	cli := newClient(t, c)
	ctl := newController(t, c, WithWindow(2), WithCooldown(0), WithEnabled(true))
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	prev, err := tree.ParseSpec("1-8-8")
	if err != nil {
		t.Fatal(err)
	}
	ctl.mu.Lock()
	ctl.probation = 1
	ctl.preScore = 10 // the old shape was terrible; anything passes
	ctl.preFrac = 1
	ctl.prevTree = prev
	ctl.hasActed = true
	ctl.samples = nil
	ctl.mu.Unlock()

	doReads(t, cli, 25)
	d, _ := ctl.Step()
	if d.Action != ActionHold || !strings.Contains(d.Reason, "probation passed") {
		t.Fatalf("healthy probation = %+v, want probation-passed hold", d)
	}
	if ctl.Reverts() != 0 {
		t.Fatalf("healthy probation reverted (%d)", ctl.Reverts())
	}
}

// TestControllerStateSnapshot sanity-checks the /controller JSON source.
func TestControllerStateSnapshot(t *testing.T) {
	c := newCluster(t, "1-3-5")
	ctl := newController(t, c, WithWindow(4), WithAvailability(0.8), WithObjective(config.MinimizeCost))
	st := ctl.State()
	if st.Enabled {
		t.Error("controller starts enabled")
	}
	if st.Window != 4 || st.Availability != 0.8 || st.Objective != "cost" {
		t.Errorf("state = %+v", st)
	}
	if st.CurrentSpec != "1-3-5" {
		t.Errorf("current spec = %q", st.CurrentSpec)
	}
	if st.MinWindowOps != DefaultMinWindowOps || st.MinLevelDelta != DefaultMinLevelDelta {
		t.Errorf("defaults not applied: %+v", st)
	}
}

// TestControllerOptionValidation: nonsense knobs fail construction.
func TestControllerOptionValidation(t *testing.T) {
	c := newCluster(t, "1-3-5")
	for name, opts := range map[string][]Option{
		"zero interval":    {WithInterval(0)},
		"zero window":      {WithWindow(0)},
		"zero level delta": {WithMinLevelDelta(0)},
		"bad availability": {WithAvailability(1.5)},
		"bad objective":    {WithObjective(0)},
		"bad tolerance":    {WithDegradeTolerance(-1)},
	} {
		if _, err := New(c, opts...); err == nil {
			t.Errorf("%s: New accepted invalid option", name)
		}
	}
}

// TestControllerRunLoop exercises the production ticker path.
func TestControllerRunLoop(t *testing.T) {
	c := newCluster(t, "1-16")
	cli := newClient(t, c)
	ctl := newController(t, c,
		WithInterval(5*time.Millisecond),
		WithWindow(2),
		WithClock(time.Now),
		WithEnabled(true),
	)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { ctl.Run(ctx); close(done) }()
	ctxOps := context.Background()
	deadline := time.Now().Add(3 * time.Second)
	for len(ctl.Journal(1)) == 0 && time.Now().Before(deadline) {
		if _, err := cli.Write(ctxOps, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	<-done
	if len(ctl.Journal(1)) == 0 {
		t.Fatal("Run loop journaled nothing")
	}
}
