package adapt

import (
	"fmt"
	"time"
)

// Action is what the controller did at one evaluation.
type Action string

// Controller actions.
const (
	// ActionHold is a deliberate no-op: the evidence did not warrant a
	// migration (or a guard vetoed one). The Reason says which.
	ActionHold Action = "hold"
	// ActionMigrate is a live reconfiguration towards the advised tree.
	ActionMigrate Action = "migrate"
	// ActionRevert is the abort-on-degradation guard undoing the previous
	// migration because the measured load got worse, not better.
	ActionRevert Action = "revert"
	// ActionEnable and ActionDisable record operator toggles, so a quiet
	// journal stretch is attributable to the controller being off.
	ActionEnable  Action = "enable"
	ActionDisable Action = "disable"
)

// WindowStats is the evidence window behind one decision: the operation
// deltas accumulated over the observation window that was current when the
// decision was made.
type WindowStats struct {
	// Samples is how many controller ticks the window spans.
	Samples int `json:"samples"`
	// Reads and Writes are the operations observed across the window.
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	// ReadFraction is Reads / (Reads + Writes), 0 when the window is empty.
	ReadFraction float64 `json:"readFraction"`
	// MaxReadLoad and MaxWriteLoad are the windowed empirical system loads:
	// the largest per-site participation delta divided by the window's
	// operation count, the live counterpart of the paper's Eq 3.2 loads.
	MaxReadLoad  float64 `json:"maxReadLoad"`
	MaxWriteLoad float64 `json:"maxWriteLoad"`
}

// Ops is the window's total operation count.
func (w WindowStats) Ops() uint64 { return w.Reads + w.Writes }

// Decision is one journal entry: the full evidence snapshot behind one
// act-or-hold verdict, so "why did the tree change shape at 14:02" is
// answerable from data.
type Decision struct {
	// Seq numbers decisions monotonically from 1.
	Seq uint64 `json:"seq"`
	// At is the controller clock reading at decision time (logical unless a
	// wall clock was injected).
	At time.Time `json:"at"`
	// Action and Reason say what happened and why.
	Action Action `json:"action"`
	Reason string `json:"reason"`
	// Window is the evidence the decision was computed from.
	Window WindowStats `json:"window"`
	// CurrentSpec/CurrentLevels describe the tree at decision time;
	// AdvisedSpec/AdvisedLevels the advisor's recommendation (empty when no
	// advice was computed, e.g. a low-signal hold).
	CurrentSpec   string `json:"currentSpec"`
	CurrentLevels int    `json:"currentLevels"`
	AdvisedSpec   string `json:"advisedSpec,omitempty"`
	AdvisedLevels int    `json:"advisedLevels,omitempty"`
	// CurrentScore and AdvisedScore are the advisor objective evaluated for
	// the current and advised trees under the window's read fraction; their
	// gap is the predicted gain of migrating.
	CurrentScore float64 `json:"currentScore,omitempty"`
	AdvisedScore float64 `json:"advisedScore,omitempty"`
	// TheoryReadGap and TheoryWriteGap are the live Eq 3.2
	// theory-vs-empirical deviations (empirical minus closed form) at
	// decision time, from cluster.TheoryCheck.
	TheoryReadGap  float64 `json:"theoryReadGap"`
	TheoryWriteGap float64 `json:"theoryWriteGap"`
	// Outcome reports how acting went: "ok", or the migration error. Holds
	// leave it empty.
	Outcome string `json:"outcome,omitempty"`
}

// String renders the decision as one journal line.
func (d Decision) String() string {
	s := fmt.Sprintf("#%d %s %s", d.Seq, d.Action, d.Reason)
	if d.AdvisedSpec != "" && d.AdvisedSpec != d.CurrentSpec {
		s += fmt.Sprintf(" (%s -> %s)", d.CurrentSpec, d.AdvisedSpec)
	}
	if d.Outcome != "" {
		s += " [" + d.Outcome + "]"
	}
	return s
}

// journal is a bounded ring of decisions: appends past the capacity evict
// the oldest entry, so the controller's memory stays O(cap) over unbounded
// uptime while the recent past — the part operators ask about — survives.
type journal struct {
	cap     int
	entries []Decision
	start   int // index of the oldest entry
	n       int
	seq     uint64
}

func newJournal(capacity int) *journal {
	if capacity < 1 {
		capacity = 1
	}
	return &journal{cap: capacity, entries: make([]Decision, capacity)}
}

// append stamps the decision with the next sequence number and stores it.
func (j *journal) append(d Decision) Decision {
	j.seq++
	d.Seq = j.seq
	if j.n < j.cap {
		j.entries[(j.start+j.n)%j.cap] = d
		j.n++
	} else {
		j.entries[j.start] = d
		j.start = (j.start + 1) % j.cap
	}
	return d
}

// last returns up to n most recent decisions, oldest first. n <= 0 means
// all retained entries.
func (j *journal) last(n int) []Decision {
	if n <= 0 || n > j.n {
		n = j.n
	}
	out := make([]Decision, 0, n)
	for i := j.n - n; i < j.n; i++ {
		out = append(out, j.entries[(j.start+i)%j.cap])
	}
	return out
}
