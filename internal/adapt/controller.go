// Package adapt closes the loop between the observability layer and the
// paper's reconfiguration capability: a controller continuously samples the
// measured read/write mix, the per-site participation deltas and the live
// Eq 3.2 theory-vs-empirical gap, and when the workload has drifted past a
// hysteresis threshold for a full observation window it asks the
// configuration advisor for a better tree and drives a live Reconfigure
// migration — with a cooldown between migrations and an abort-on-degradation
// guard that reverts a migration whose measured load got worse.
//
// Every evaluation, whether it acts or holds, appends a Decision carrying
// the full evidence snapshot to a bounded journal, so "why did the tree
// change shape at 14:02" is answered from data rather than guesswork. The
// package is deterministic by construction: it never reads the wall clock
// or global randomness (a clock is injected; the default advances logically
// by one interval per Step), so the chaos-simulation harness can replay
// controller decisions bit-for-bit.
package adapt

import (
	"context"
	"fmt"
	"sync"
	"time"

	"arbor/internal/cluster"
	"arbor/internal/config"
	"arbor/internal/core"
	"arbor/internal/tree"
)

// Defaults for the controller knobs.
const (
	DefaultInterval      = time.Second
	DefaultWindow        = 5
	DefaultMinWindowOps  = 20
	DefaultMinLevelDelta = 2
	DefaultCooldown      = 30 * time.Second
	DefaultAvailability  = 0.9
	DefaultJournalCap    = 256
	// DefaultDegradeTolerance is how much worse (fractionally) the windowed
	// weighted empirical load may get after a migration before the guard
	// reverts it; windowed maxima are noisy, so the bar is generous.
	DefaultDegradeTolerance = 0.5
)

// Option configures a Controller.
type Option interface {
	apply(*Controller)
}

type optionFunc func(*Controller)

func (f optionFunc) apply(c *Controller) { f(c) }

// WithInterval sets the Run loop's evaluation period and the logical
// clock's per-step advance (default 1s).
func WithInterval(d time.Duration) Option {
	return optionFunc(func(c *Controller) { c.interval = d })
}

// WithWindow sets the observation window length in samples: both how many
// ticks of evidence a decision aggregates and how many consecutive drifted
// ticks the hysteresis demands before acting (default 5).
func WithWindow(n int) Option {
	return optionFunc(func(c *Controller) { c.window = n })
}

// WithMinWindowOps sets the minimum operations a window must contain to
// count as signal; quieter windows always hold (default 20).
func WithMinWindowOps(n uint64) Option {
	return optionFunc(func(c *Controller) { c.minWindowOps = n })
}

// WithMinLevelDelta sets how many physical levels the advised tree must
// differ by before drift registers at all (default 2, damping oscillation).
func WithMinLevelDelta(d int) Option {
	return optionFunc(func(c *Controller) { c.minLevelDelta = d })
}

// WithCooldown sets the minimum controller-clock time between migrations
// (default 30s).
func WithCooldown(d time.Duration) Option {
	return optionFunc(func(c *Controller) { c.cooldown = d })
}

// WithAvailability sets the per-replica availability assumption handed to
// the advisor (default 0.9).
func WithAvailability(p float64) Option {
	return optionFunc(func(c *Controller) { c.p = p })
}

// WithObjective sets the advisor objective (default config.MinimizeLoad).
func WithObjective(obj config.Objective) Option {
	return optionFunc(func(c *Controller) { c.obj = obj })
}

// WithJournalCap bounds the decision journal (default 256 entries).
func WithJournalCap(n int) Option {
	return optionFunc(func(c *Controller) { c.journalCap = n })
}

// WithDegradeTolerance sets the abort-on-degradation guard's threshold: a
// migration is reverted when the post-migration windowed load exceeds the
// pre-migration one by more than this fraction (default 0.5).
func WithDegradeTolerance(f float64) Option {
	return optionFunc(func(c *Controller) { c.degradeTol = f })
}

// WithClock injects the controller's notion of time, used for journal
// timestamps and the cooldown. Without it the clock is logical: it starts
// at the epoch and advances by one interval per Step, which is equivalent
// to wall time when Run drives the steps and exactly reproducible when a
// harness does.
func WithClock(fn func() time.Time) Option {
	return optionFunc(func(c *Controller) { c.clock = fn })
}

// WithEnabled sets the initial enabled state (default disabled: the
// controller observes and journals nothing until an operator turns it on).
func WithEnabled(on bool) Option {
	return optionFunc(func(c *Controller) { c.enabled = on })
}

// sample is one tick's worth of deltas against the previous tick.
type sample struct {
	reads, writes uint64
	// siteReads/siteWrites are per-site participation deltas, positionally
	// aligned with the sorted site list (LoadReport order).
	siteReads, siteWrites []uint64
}

// Controller is the adaptation loop. All methods are safe for concurrent
// use; Step is the deterministic core, Run the production driver.
type Controller struct {
	c *cluster.Cluster

	interval      time.Duration
	window        int
	minWindowOps  uint64
	minLevelDelta int
	cooldown      time.Duration
	p             float64
	obj           config.Objective
	journalCap    int
	degradeTol    float64
	clock         func() time.Time

	mu      sync.Mutex
	enabled bool
	now     time.Time // logical clock (when no clock is injected)

	prevOps  cluster.OpTotals
	prevLoad []cluster.SiteLoad
	samples  []sample // most recent window of per-tick deltas

	driftStreak int
	lastAction  time.Time
	hasActed    bool

	// probation is the post-migration watch: >0 means a migration is being
	// judged; when it reaches 0 the guard compares loads and may revert.
	probation int
	preScore  float64 // weighted windowed load before the migration
	preFrac   float64 // read fraction the migration was judged under
	prevTree  *tree.Tree

	reconfigs uint64
	reverts   uint64
	j         *journal

	metrics *metrics
}

// New builds a controller bound to the cluster. When the cluster carries an
// observer, the controller registers its arbor_adapt_* metric families on
// the observer's registry. Start the production loop with Run, or drive
// Step directly from a deterministic harness.
func New(c *cluster.Cluster, opts ...Option) (*Controller, error) {
	ctl := &Controller{
		c:             c,
		interval:      DefaultInterval,
		window:        DefaultWindow,
		minWindowOps:  DefaultMinWindowOps,
		minLevelDelta: DefaultMinLevelDelta,
		cooldown:      DefaultCooldown,
		p:             DefaultAvailability,
		obj:           config.MinimizeLoad,
		journalCap:    DefaultJournalCap,
		degradeTol:    DefaultDegradeTolerance,
		now:           time.Unix(0, 0).UTC(),
	}
	for _, opt := range opts {
		opt.apply(ctl)
	}
	if ctl.interval <= 0 {
		return nil, fmt.Errorf("adapt: interval %v must be positive", ctl.interval)
	}
	if ctl.window < 1 {
		return nil, fmt.Errorf("adapt: window %d must be at least 1", ctl.window)
	}
	if ctl.minLevelDelta < 1 {
		return nil, fmt.Errorf("adapt: min level delta %d must be at least 1", ctl.minLevelDelta)
	}
	if ctl.p <= 0 || ctl.p > 1 {
		return nil, fmt.Errorf("adapt: availability %v outside (0,1]", ctl.p)
	}
	switch ctl.obj {
	case config.MinimizeLoad, config.MinimizeCost, config.MinimizeLoadCostProduct:
	default:
		return nil, fmt.Errorf("adapt: unknown objective %v", ctl.obj)
	}
	if ctl.degradeTol < 0 {
		return nil, fmt.Errorf("adapt: degrade tolerance %v must be non-negative", ctl.degradeTol)
	}
	ctl.j = newJournal(ctl.journalCap)
	ctl.registerMetrics(c.Observer().Reg())
	return ctl, nil
}

// Run evaluates the controller every interval until the context is
// cancelled. It never returns an error: migration failures are journaled
// evidence, not loop-fatal conditions.
func (a *Controller) Run(ctx context.Context) {
	ticker := time.NewTicker(a.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			a.Step()
		}
	}
}

// Enabled reports whether the controller is allowed to act.
func (a *Controller) Enabled() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.enabled
}

// SetEnabled toggles the controller and journals the transition. It reports
// whether the state changed.
func (a *Controller) SetEnabled(on bool) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.enabled == on {
		return false
	}
	a.enabled = on
	action, reason := ActionEnable, "controller enabled"
	if !on {
		action, reason = ActionDisable, "controller disabled"
	}
	a.record(Decision{
		At:          a.readClock(),
		Action:      action,
		Reason:      reason,
		CurrentSpec: a.c.Tree().Spec(),
	})
	if on {
		a.metrics.enabled.Set(1)
	} else {
		a.metrics.enabled.Set(0)
	}
	return true
}

// Reconfigurations returns how many migrations the controller has driven
// (reverts included).
func (a *Controller) Reconfigurations() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reconfigs + a.reverts
}

// Reverts returns how many migrations the degradation guard undid.
func (a *Controller) Reverts() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.reverts
}

// Journal returns up to n recent decisions, oldest first (n <= 0: all
// retained entries).
func (a *Controller) Journal(n int) []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.j.last(n)
}

// readClock returns the controller's current time without advancing it.
func (a *Controller) readClock() time.Time {
	if a.clock != nil {
		return a.clock()
	}
	return a.now
}

// record journals a decision and feeds the decision counters.
func (a *Controller) record(d Decision) Decision {
	d = a.j.append(d)
	a.metrics.decision(d.Action)
	return d
}

// Step advances the clock one interval, takes a sample, and evaluates. The
// returned bool is false when the controller is disabled — it still
// sampled (keeping the window warm for the moment it is enabled) but made
// no decision and journaled nothing.
func (a *Controller) Step() (Decision, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.clock == nil {
		a.now = a.now.Add(a.interval)
	}
	snap := a.c.StatsSnapshot()
	a.push(snap)
	if !a.enabled {
		return Decision{}, false
	}
	d := a.evaluate(snap)
	a.metrics.observe(a, d)
	return d, true
}

// push appends the tick's deltas to the observation window.
func (a *Controller) push(snap cluster.StatsView) {
	s := sample{
		reads:  uint64(snap.Ops.ReadOps()) - uint64(a.prevOps.ReadOps()),
		writes: uint64(snap.Ops.WriteOps()) - uint64(a.prevOps.WriteOps()),
	}
	sites := snap.Load.Sites // sorted by site ID, fixed membership
	s.siteReads = make([]uint64, len(sites))
	s.siteWrites = make([]uint64, len(sites))
	aligned := len(a.prevLoad) == len(sites)
	for i, sl := range sites {
		var prevR, prevW uint64
		if aligned && a.prevLoad[i].Site == sl.Site {
			prevR, prevW = a.prevLoad[i].ReadServes, a.prevLoad[i].WriteServes
		}
		s.siteReads[i] = sl.ReadServes - prevR
		s.siteWrites[i] = sl.WriteServes - prevW
	}
	a.prevOps = snap.Ops
	a.prevLoad = sites
	a.samples = append(a.samples, s)
	if len(a.samples) > a.window {
		a.samples = a.samples[len(a.samples)-a.window:]
	}
}

// windowStats aggregates the current observation window.
func (a *Controller) windowStats() WindowStats {
	w := WindowStats{Samples: len(a.samples)}
	var maxR, maxW uint64
	var perSiteR, perSiteW []uint64
	for _, s := range a.samples {
		w.Reads += s.reads
		w.Writes += s.writes
		if perSiteR == nil {
			perSiteR = make([]uint64, len(s.siteReads))
			perSiteW = make([]uint64, len(s.siteWrites))
		}
		if len(s.siteReads) == len(perSiteR) {
			for i := range s.siteReads {
				perSiteR[i] += s.siteReads[i]
				perSiteW[i] += s.siteWrites[i]
			}
		}
	}
	for i := range perSiteR {
		if perSiteR[i] > maxR {
			maxR = perSiteR[i]
		}
		if perSiteW[i] > maxW {
			maxW = perSiteW[i]
		}
	}
	if w.Reads > 0 {
		w.MaxReadLoad = float64(maxR) / float64(w.Reads)
	}
	if w.Writes > 0 {
		w.MaxWriteLoad = float64(maxW) / float64(w.Writes)
	}
	if total := w.Reads + w.Writes; total > 0 {
		w.ReadFraction = float64(w.Reads) / float64(total)
	}
	return w
}

// weightedLoad folds a window's empirical maxima into one score: the
// read-fraction-weighted mix of the two Eq 3.2 empirical loads.
func weightedLoad(w WindowStats, readFraction float64) float64 {
	return readFraction*w.MaxReadLoad + (1-readFraction)*w.MaxWriteLoad
}

// evaluate is the decision procedure: one call, one journaled Decision.
// The caller holds the lock.
func (a *Controller) evaluate(snap cluster.StatsView) Decision {
	w := a.windowStats()
	check := snap.TheoryCheck()
	d := Decision{
		At:             a.readClock(),
		Action:         ActionHold,
		Window:         w,
		CurrentSpec:    snap.Tree.Spec(),
		CurrentLevels:  snap.Proto.NumPhysicalLevels(),
		TheoryReadGap:  check.ReadDeviation(),
		TheoryWriteGap: check.WriteDeviation(),
	}

	// Post-migration probation: judge the previous migration before
	// considering a new one.
	if a.probation > 0 {
		a.probation--
		if a.probation > 0 {
			d.Reason = fmt.Sprintf("probation: %d tick(s) until the last migration is judged", a.probation)
			return a.record(d)
		}
		return a.judgeMigration(d, w)
	}

	if w.Samples < a.window {
		d.Reason = fmt.Sprintf("warming up: %d/%d samples", w.Samples, a.window)
		a.driftStreak = 0
		return a.record(d)
	}
	if w.Ops() < a.minWindowOps {
		d.Reason = fmt.Sprintf("low signal: %d op(s) in window, need %d", w.Ops(), a.minWindowOps)
		a.driftStreak = 0
		return a.record(d)
	}

	adv, err := config.Advise(snap.Tree.N(), a.p, w.ReadFraction, a.obj)
	if err != nil {
		d.Outcome = err.Error()
		d.Reason = "advisor failed"
		a.driftStreak = 0
		return a.record(d)
	}
	d.AdvisedSpec = adv.Tree.Spec()
	d.AdvisedLevels = adv.Tree.NumPhysicalLevels()
	d.AdvisedScore = adv.Score
	if cur, err := config.Score(core.Analyze(snap.Tree), a.p, w.ReadFraction, a.obj); err == nil {
		d.CurrentScore = cur
	}

	delta := d.CurrentLevels - d.AdvisedLevels
	if delta < 0 {
		delta = -delta
	}
	if delta < a.minLevelDelta {
		a.driftStreak = 0
		d.Reason = fmt.Sprintf("shape fits: advised tree within %d level(s) of current", delta)
		return a.record(d)
	}

	a.driftStreak++
	if a.driftStreak < a.window {
		d.Reason = fmt.Sprintf("hysteresis: drifted %d/%d tick(s)", a.driftStreak, a.window)
		return a.record(d)
	}
	if a.hasActed {
		if since := d.At.Sub(a.lastAction); since < a.cooldown {
			d.Reason = fmt.Sprintf("cooldown: %v since last migration, need %v", since, a.cooldown)
			return a.record(d)
		}
	}

	// Act: migrate to the advised tree.
	d.Action = ActionMigrate
	d.Reason = fmt.Sprintf("workload drifted for a full window (read fraction %.2f): score %.4f -> %.4f",
		w.ReadFraction, d.CurrentScore, d.AdvisedScore)
	prev := snap.Tree
	if err := a.c.Reconfigure(adv.Tree); err != nil {
		// Transient conditions (a crashed replica) veto migration; keep the
		// drift streak so the controller retries as soon as they clear.
		d.Outcome = err.Error()
		a.driftStreak--
		return a.record(d)
	}
	d.Outcome = "ok"
	a.reconfigs++
	a.hasActed = true
	a.lastAction = d.At
	a.driftStreak = 0
	a.prevTree = prev
	a.preScore = weightedLoad(w, w.ReadFraction)
	a.preFrac = w.ReadFraction
	a.probation = a.window
	a.samples = nil // judge the migration on post-migration evidence only
	return a.record(d)
}

// judgeMigration ends probation: compare the post-migration window against
// the pre-migration score and revert when the measured load degraded past
// the tolerance. The caller holds the lock.
func (a *Controller) judgeMigration(d Decision, w WindowStats) Decision {
	post := weightedLoad(w, a.preFrac)
	if w.Ops() < a.minWindowOps || a.preScore <= 0 || post <= a.preScore*(1+a.degradeTol) {
		d.Reason = fmt.Sprintf("probation passed: windowed load %.4f vs %.4f before migration", post, a.preScore)
		a.prevTree = nil
		return a.record(d)
	}
	d.Action = ActionRevert
	d.Reason = fmt.Sprintf("degradation: windowed load %.4f exceeds pre-migration %.4f by more than %.0f%%",
		post, a.preScore, a.degradeTol*100)
	d.AdvisedSpec = a.prevTree.Spec()
	d.AdvisedLevels = a.prevTree.NumPhysicalLevels()
	if err := a.c.Reconfigure(a.prevTree); err != nil {
		d.Outcome = err.Error()
		a.probation = 1 // re-judge next tick, when the revert may be possible
		return a.record(d)
	}
	d.Outcome = "ok"
	a.reverts++
	a.hasActed = true
	a.lastAction = d.At
	a.driftStreak = 0
	a.prevTree = nil
	a.samples = nil
	return a.record(d)
}

// State is a point-in-time summary of the controller for inspection
// surfaces (/controller on arbord, arborctl controller).
type State struct {
	Enabled          bool          `json:"enabled"`
	Interval         time.Duration `json:"intervalNs"`
	Window           int           `json:"window"`
	MinWindowOps     uint64        `json:"minWindowOps"`
	MinLevelDelta    int           `json:"minLevelDelta"`
	Cooldown         time.Duration `json:"cooldownNs"`
	Availability     float64       `json:"availability"`
	Objective        string        `json:"objective"`
	CurrentSpec      string        `json:"currentSpec"`
	DriftStreak      int           `json:"driftStreak"`
	Probation        int           `json:"probation"`
	Reconfigurations uint64        `json:"reconfigurations"`
	Reverts          uint64        `json:"reverts"`
	JournalSeq       uint64        `json:"journalSeq"`
	WindowStats      WindowStats   `json:"windowStats"`
}

// State snapshots the controller.
func (a *Controller) State() State {
	a.mu.Lock()
	defer a.mu.Unlock()
	return State{
		Enabled:          a.enabled,
		Interval:         a.interval,
		Window:           a.window,
		MinWindowOps:     a.minWindowOps,
		MinLevelDelta:    a.minLevelDelta,
		Cooldown:         a.cooldown,
		Availability:     a.p,
		Objective:        a.obj.String(),
		CurrentSpec:      a.c.Tree().Spec(),
		DriftStreak:      a.driftStreak,
		Probation:        a.probation,
		Reconfigurations: a.reconfigs + a.reverts,
		Reverts:          a.reverts,
		JournalSeq:       a.j.seq,
		WindowStats:      a.windowStats(),
	}
}
