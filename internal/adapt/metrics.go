package adapt

import "arbor/internal/obs"

// metrics holds the controller's arbor_adapt_* instrument handles. Every
// instrument is nil-receiver safe (the obs registry no-ops on nil), so a
// cluster built without an observer costs nothing here.
type metrics struct {
	enabled      *obs.Gauge
	decisions    *obs.CounterVec
	reconfigs    *obs.Counter
	reverts      *obs.Counter
	readFraction *obs.Gauge
	driftStreak  *obs.Gauge
	levelDelta   *obs.Gauge
	journalSeq   *obs.Gauge
}

// registerMetrics installs the controller's metric families on the
// registry (a nil registry yields no-op instruments).
func (a *Controller) registerMetrics(reg *obs.Registry) {
	a.metrics = &metrics{
		enabled: reg.Gauge("arbor_adapt_enabled",
			"Whether the adaptation controller is allowed to act (1) or only observe (0)."),
		decisions: reg.CounterVec("arbor_adapt_decisions_total",
			"Adaptation decisions journaled, by action (hold, migrate, revert, enable, disable).",
			"action"),
		reconfigs: reg.Counter("arbor_adapt_reconfigurations_total",
			"Live reconfigurations the controller drove towards an advised tree."),
		reverts: reg.Counter("arbor_adapt_reverts_total",
			"Migrations undone by the abort-on-degradation guard."),
		readFraction: reg.Gauge("arbor_adapt_window_read_fraction",
			"Read fraction of the controller's current observation window."),
		driftStreak: reg.Gauge("arbor_adapt_drift_streak",
			"Consecutive evaluation ticks the workload has drifted past the hysteresis threshold."),
		levelDelta: reg.Gauge("arbor_adapt_level_delta",
			"Physical-level distance between the current tree and the last advised one."),
		journalSeq: reg.Gauge("arbor_adapt_journal_seq",
			"Sequence number of the newest decision journal entry."),
	}
}

// decision counts one journaled decision by action.
func (m *metrics) decision(action Action) {
	if m == nil {
		return
	}
	m.decisions.With(string(action)).Inc()
}

// observe refreshes the gauges after an evaluation. The caller holds the
// controller lock.
func (m *metrics) observe(a *Controller, d Decision) {
	if m == nil {
		return
	}
	if a.enabled {
		m.enabled.Set(1)
	} else {
		m.enabled.Set(0)
	}
	m.readFraction.Set(d.Window.ReadFraction)
	m.driftStreak.Set(float64(a.driftStreak))
	if d.AdvisedLevels > 0 {
		delta := d.CurrentLevels - d.AdvisedLevels
		if delta < 0 {
			delta = -delta
		}
		m.levelDelta.Set(float64(delta))
	}
	m.journalSeq.Set(float64(d.Seq))
	m.reconfigs.Add(a.reconfigs - m.reconfigs.Value())
	m.reverts.Add(a.reverts - m.reverts.Value())
}
