package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// wireScope matches the wire package, the one place allowed to know the
// encoding.
var wireScope = segSuffix(`internal/wire`)

// WireClosed enforces that the protocol's message set stays closed and the
// encoding stays in one place. Inside internal/wire it cross-checks the
// registry the binary codec is built around: every tag constant must have a
// unique value, a message type, a case in the encode type switch, a case in
// the decode tag switch, and a golden vector in testdata/golden_*.txt (the
// byte-level compatibility contract — a message that can be encoded but has
// no pinned vector can change layout silently). Outside internal/wire any
// encoding/gob import is a finding: the gob fallback lives behind the Codec
// interface, and a second serialization path is exactly how version skew
// slipped into the pre-codec WAL.
var WireClosed = &Analyzer{
	Name: "wireclosed",
	Doc:  "the wire message set is closed: tags, switches and golden vectors in lockstep; gob stays in internal/wire",
	Run:  runWireClosed,
}

func runWireClosed(pass *Pass) {
	if pathMatches(pass.Pkg.Path, wireScope) {
		checkWireRegistry(pass)
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "encoding/gob" {
				pass.Reportf(imp.Pos(), "encoding/gob outside internal/wire opens a second serialization path; route through wire.Codec instead")
			}
		}
	}
}

// wireTag is one tagXxx constant from the wire package's registry.
type wireTag struct {
	name  string
	value uint64
	pos   ast.Node
}

// checkWireRegistry cross-checks tag constants against the encode and
// decode switches and the golden vector corpus.
func checkWireRegistry(pass *Pass) {
	tags := collectWireTags(pass)
	if len(tags) == 0 {
		return
	}

	// Unique values: two tags sharing a byte make decode ambiguous.
	byValue := make(map[uint64]string)
	for _, t := range tags {
		if prev, dup := byValue[t.value]; dup {
			pass.Reportf(t.pos.Pos(), "duplicate tag value %d: %s collides with %s", t.value, t.name, prev)
			continue
		}
		byValue[t.value] = t.name
	}

	encodeCases := collectTypeSwitchCases(pass)
	decodeCases := collectTagSwitchCases(pass)
	golden := collectGoldenNames(pass)

	scope := pass.Pkg.Types.Scope()
	for _, t := range tags {
		msg := strings.TrimPrefix(t.name, "tag")
		obj := scope.Lookup(msg)
		if _, ok := obj.(*types.TypeName); !ok {
			pass.Reportf(t.pos.Pos(), "tag %s has no message type %s; the tag set and the type set must move together", t.name, msg)
			continue
		}
		if !encodeCases[msg] {
			pass.Reportf(t.pos.Pos(), "message %s has no encode case; every message must appear in the encode type switch", msg)
		}
		if !decodeCases[t.name] {
			pass.Reportf(t.pos.Pos(), "tag %s has no decode case; every tag must appear in the decode switch", t.name)
		}
		if golden != nil && !goldenCovers(golden, snakeCase(msg)) {
			pass.Reportf(t.pos.Pos(), "message %s has no golden vector in testdata/golden_*.txt; pin its byte layout", msg)
		}
	}
}

// collectWireTags gathers package-level byte constants named tagXxx.
func collectWireTags(pass *Pass) []wireTag {
	var tags []wireTag
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "tag") || len(name.Name) <= len("tag") {
						continue
					}
					c, ok := pass.Pkg.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					b, ok := c.Type().Underlying().(*types.Basic)
					if !ok || (b.Kind() != types.Uint8 && b.Kind() != types.UntypedInt) {
						continue
					}
					v, ok := constant.Uint64Val(c.Val())
					if !ok {
						continue
					}
					tags = append(tags, wireTag{name: name.Name, value: v, pos: name})
				}
			}
		}
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i].pos.Pos() < tags[j].pos.Pos() })
	return tags
}

// collectTypeSwitchCases unions the package-local type names appearing as
// cases of any type switch — the encode side of the registry.
func collectTypeSwitchCases(pass *Pass) map[string]bool {
	cases := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSwitchStmt)
			if !ok {
				return true
			}
			for _, stmt := range ts.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if id, ok := ast.Unparen(e).(*ast.Ident); ok {
						cases[id.Name] = true
					}
				}
			}
			return true
		})
	}
	return cases
}

// collectTagSwitchCases unions the tagXxx identifiers appearing as cases of
// any value switch — the decode side of the registry.
func collectTagSwitchCases(pass *Pass) map[string]bool {
	cases := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			for _, stmt := range sw.Body.List {
				cc, ok := stmt.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if id, ok := ast.Unparen(e).(*ast.Ident); ok && strings.HasPrefix(id.Name, "tag") {
						cases[id.Name] = true
					}
				}
			}
			return true
		})
	}
	return cases
}

// collectGoldenNames reads the first field of every line of every
// testdata/golden_*.txt vector file. nil means the package has no golden
// corpus at all (the check is skipped; the wire package's own tests enforce
// its presence).
func collectGoldenNames(pass *Pass) map[string]bool {
	files, _ := filepath.Glob(filepath.Join(pass.Pkg.Dir, "testdata", "golden_*.txt"))
	if len(files) == 0 {
		return nil
	}
	names := make(map[string]bool)
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if name, _, ok := strings.Cut(line, " "); ok {
				names[name] = true
			}
		}
	}
	return names
}

// goldenCovers reports whether a vector named snake, or a variant
// snake_<qualifier>, exists in the corpus.
func goldenCovers(golden map[string]bool, snake string) bool {
	if golden[snake] {
		return true
	}
	for name := range golden {
		if strings.HasPrefix(name, snake+"_") {
			return true
		}
	}
	return false
}

// snakeCase lowers a CamelCase message name to the golden corpus's naming:
// ReadResp → read_resp.
func snakeCase(name string) string {
	var b strings.Builder
	for i, r := range name {
		if r >= 'A' && r <= 'Z' {
			if i > 0 {
				b.WriteByte('_')
			}
			r += 'a' - 'A'
		}
		b.WriteRune(r)
	}
	return b.String()
}
