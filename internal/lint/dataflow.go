package lint

import (
	"go/ast"
	"go/token"
)

// This file is the dataflow half of the flow-sensitive framework: a small
// forward analysis over a CFG. Facts are string-keyed (the analyzers key
// them by variable object pointer identity rendered through factKey, or by
// a lock expression's dotted form) and carry the position that generated
// them, so reports can point at the origin.
//
// Two merge disciplines cover the analyzers' needs:
//
//   - union ("may"): a fact holds at a join if it held on any incoming
//     path. poolsafe's "v may have been Put" and lockscope's "lock may be
//     held" are may-facts — one bad path is a bug.
//   - intersection ("must") is expressed as the dual of union: track the
//     complement ("v has not been reset") as a may-fact and test for its
//     presence. All analyzers here use union; the duality note is the
//     design contract (DESIGN.md §4h).
//
// The fixpoint is a standard worklist over blocks: recompute a block's
// out-facts from the merged in-facts of its predecessors, requeue
// successors when the out set grows. Fact sets only grow (union merge, and
// kills remove facts within a block but a kill on one path cannot shrink
// the join), so termination is bounded by blocks × facts.

// Facts is a set of dataflow facts, keyed by analyzer-chosen strings; the
// value is the position that generated the fact.
type Facts map[string]token.Pos

// clone copies a fact set.
func (f Facts) clone() Facts {
	out := make(Facts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// equal reports whether two fact sets hold the same keys.
func (f Facts) equal(o Facts) bool {
	if len(f) != len(o) {
		return false
	}
	for k := range f {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// mergeInto unions o into f, keeping the earliest generating position for
// ties (stable reports).
func (f Facts) mergeInto(o Facts) {
	for k, v := range o {
		if cur, ok := f[k]; !ok || v < cur {
			f[k] = v
		}
	}
}

// Transfer mutates the fact set in place for one node of a block, in
// evaluation order. It is the analyzer's gen/kill function.
type Transfer func(n ast.Node, facts Facts)

// ForwardFlow runs a forward may-analysis (union merge at joins) over the
// CFG to a fixpoint and returns each block's entry fact set. entry seeds
// the CFG entry block (nil means no initial facts).
func ForwardFlow(c *CFG, entry Facts, transfer Transfer) map[*Block]Facts {
	in := make(map[*Block]Facts, len(c.Blocks))
	in[c.Entry] = entry.clone()

	apply := func(b *Block, facts Facts) Facts {
		out := facts.clone()
		for _, n := range b.Nodes {
			transfer(n, out)
		}
		return out
	}

	work := []*Block{c.Entry}
	queued := map[*Block]bool{c.Entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := apply(b, in[b])
		for _, s := range b.Succs {
			cur, ok := in[s]
			if !ok {
				in[s] = out.clone()
			} else {
				before := len(cur)
				cur.mergeInto(out)
				if len(cur) == before {
					continue
				}
			}
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return in
}

// WalkFlow re-runs the transfer function node-by-node over every reachable
// block with the fixpoint entry facts, invoking visit before each node with
// the facts holding just prior to it, plus the block and the node's index
// in it (so analyzers can tell a select clause's comm node — index 0 of a
// "select.case" block — from ordinary statements). Analyzers report from
// visit.
func WalkFlow(c *CFG, entryFacts map[*Block]Facts, transfer Transfer, visit func(b *Block, i int, n ast.Node, facts Facts)) {
	for _, b := range c.Blocks {
		facts, ok := entryFacts[b]
		if !ok {
			continue // unreachable
		}
		cur := facts.clone()
		for i, n := range b.Nodes {
			visit(b, i, n, cur)
			transfer(n, cur)
		}
	}
}

// funcBodies yields every function body in the package — declarations and
// literals — so flow analyzers can treat each as an independent CFG. The
// callback receives the enclosing FuncDecl for declarations (nil for
// literals).
func funcBodies(pkg *Package, fn func(decl *ast.FuncDecl, body *ast.BlockStmt)) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n, n.Body)
				}
			case *ast.FuncLit:
				fn(nil, n.Body)
			}
			return true
		})
	}
}
