package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path as the loader sees it: the module
	// path plus the directory's module-relative path in module mode, or
	// the root-relative directory in fixture mode. Analyzers scope
	// themselves by matching suffixes of this path (e.g. internal/core),
	// which works identically for the real module and for fixtures.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages from source. Module-internal
// imports resolve recursively through the loader itself; everything else
// (the standard library) goes through go/importer's source importer, so no
// export data, build cache or x/tools dependency is needed.
type Loader struct {
	// Fset is shared by every parsed file, ours and the standard
	// library's, so positions stay comparable.
	Fset *token.FileSet
	// Root is the directory tree the loader serves packages from: the
	// module root, or a testdata fixture root.
	Root string
	// ModulePath is the module's import path prefix ("arbor"). Empty in
	// fixture mode, where import paths are plain root-relative
	// directories.
	ModulePath string

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

// NewLoader creates a loader over the tree rooted at root. modulePath is
// the module's import-path prefix, or "" for testdata fixture trees whose
// import paths are root-relative directories.
func NewLoader(root, modulePath string) *Loader {
	// The source importer honors go/build's context. Cgo-tainted variants
	// of stdlib packages (net, os/user) would need a C toolchain to
	// type-check; the pure-Go variants are equivalent for analysis.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		Root:       root,
		ModulePath: modulePath,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// LoadAll walks the root tree and loads every directory containing
// non-test Go files, skipping testdata, vendor and hidden directories.
// Packages are returned sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs := make(map[string]bool)
	err := filepath.WalkDir(l.Root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(p, ".go") && !strings.HasSuffix(p, "_test.go") {
			dirs[filepath.Dir(p)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var paths []string
	for dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		if ip, ok := l.importPath(rel); ok {
			paths = append(paths, ip)
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// importPath maps a root-relative directory to its import path. The
// fixture root itself has no import path.
func (l *Loader) importPath(rel string) (string, bool) {
	rel = filepath.ToSlash(rel)
	if rel == "." {
		if l.ModulePath == "" {
			return "", false
		}
		return l.ModulePath, true
	}
	if l.ModulePath == "" {
		return rel, true
	}
	return l.ModulePath + "/" + rel, true
}

// dirFor resolves an import path to a directory under Root, or reports
// that the path is external (standard library).
func (l *Loader) dirFor(path string) (string, bool) {
	if l.ModulePath != "" {
		if path == l.ModulePath {
			return l.Root, true
		}
		if strings.HasPrefix(path, l.ModulePath+"/") {
			return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/"))), true
		}
		return "", false
	}
	dir := filepath.Join(l.Root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir, true
	}
	return "", false
}

// Load parses and type-checks the package at the given import path,
// memoizing the result.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve %q under %s", path, l.Root)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, 0, len(typeErrs))
		for _, e := range typeErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n\t%s", path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths load through the
// loader, everything else through the standard library source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirFor(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}
