package lint

import (
	"go/ast"
	"go/types"
)

// Scopes: quorum construction is canonical only inside internal/core and
// internal/quorum; level-site accessors live on internal/core's Protocol
// and internal/tree's Tree.
var (
	quorumShapeExempt = segSuffix(`internal/(core|quorum)`)
	levelSitePkgs     = segSuffix(`internal/(core|tree)`)
)

// QuorumShape reports ad-hoc quorum assembly outside the canonical
// constructors. The paper's bi-coterie guarantees (§3.1–3.2) hold only for
// the two shapes internal/core builds: a read quorum takes one physical
// node from every physical level, a write quorum all nodes of one level.
// Code that loops over levels unioning LevelSites results — or hand-picking
// one site per level into an accumulator — is constructing a quorum whose
// intersection property nobody checks; one wrong bound and two writes can
// commit on disjoint site sets. Consuming LevelSites inside the loop
// (summing loads, printing, health checks) is fine; only cross-level
// accumulation into a quorum-shaped slice or map is flagged.
var QuorumShape = &Analyzer{
	Name: "quorumshape",
	Doc:  "quorums must come from the canonical constructors in internal/core",
	Run:  runQuorumShape,
}

func runQuorumShape(pass *Pass) {
	if pathMatches(pass.Pkg.Path, quorumShapeExempt) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch loop := n.(type) {
			case *ast.ForStmt:
				checkLoopQuorumAssembly(pass, loop, loop.Body)
			case *ast.RangeStmt:
				checkLoopQuorumAssembly(pass, loop, loop.Body)
			}
			return true
		})
	}
}

// isLevelSitesCall reports whether the call is (*core.Protocol).LevelSites,
// (*tree.Tree).LevelSites or a fixture equivalent.
func isLevelSitesCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Name() != "LevelSites" {
		return false
	}
	return pathMatches(pkgPathOf(fn), levelSitePkgs)
}

// checkLoopQuorumAssembly analyzes one loop body: it finds LevelSites
// calls made inside the loop, tracks the locals their results (and range
// elements) flow into, and reports any accumulation of those values into a
// slice or map declared outside the loop.
func checkLoopQuorumAssembly(pass *Pass, loop ast.Node, body *ast.BlockStmt) {
	info := pass.Pkg.Info

	// derived holds objects carrying level-site values born inside this
	// loop iteration: vars assigned from LevelSites calls and range
	// element vars over them.
	derived := make(map[types.Object]bool)

	// If this is `for _, s := range p.LevelSites(u)`, the element variable
	// is derived.
	if rng, ok := loop.(*ast.RangeStmt); ok {
		if call, ok := ast.Unparen(rng.X).(*ast.CallExpr); ok && isLevelSitesCall(pass, call) {
			if id, ok := rng.Value.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					derived[obj] = true
				}
			}
		}
	}

	// Pass 1: collect locals assigned from LevelSites calls inside the
	// body, and range-element vars over derived slices.
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isLevelSitesCall(pass, call) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if obj := types.Object(info.Defs[id]); obj != nil {
						derived[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						derived[obj] = true
					}
				}
			}
		case *ast.RangeStmt:
			isDerived := false
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isLevelSitesCall(pass, call) {
				isDerived = true
			} else if id := rootIdent(n.X); id != nil && derived[info.Uses[id]] {
				isDerived = true
			}
			if isDerived {
				if id, ok := n.Value.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						derived[obj] = true
					}
				}
			}
		}
		return true
	})

	// unwrapConv strips type conversions: transport.Addr(s) carries
	// whatever s carries.
	var unwrapConv func(e ast.Expr) ast.Expr
	unwrapConv = func(e ast.Expr) ast.Expr {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				return unwrapConv(call.Args[0])
			}
		}
		return e
	}
	carriesDerived := func(e ast.Expr) bool {
		e = unwrapConv(e)
		if call, ok := e.(*ast.CallExpr); ok {
			return isLevelSitesCall(pass, call)
		}
		if id := rootIdent(e); id != nil {
			return derived[info.Uses[id]]
		}
		return false
	}
	outerObj := func(e ast.Expr) types.Object {
		id := rootIdent(e)
		if id == nil {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil || (obj.Pos() >= loop.Pos() && obj.Pos() < loop.End()) {
			return nil
		}
		return obj
	}

	// Pass 2: find cross-level accumulation into outer-declared
	// slices/maps.
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
			return true
		}
		// acc = append(acc, <derived>...)
		if call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" &&
				info.Uses[id] == types.Universe.Lookup("append") && len(call.Args) > 0 {
				if acc := outerObj(call.Args[0]); acc != nil {
					for _, arg := range call.Args[1:] {
						if carriesDerived(arg) {
							pass.Reportf(asg.Pos(),
								"ad-hoc cross-level quorum assembly into %s; use the canonical constructors (core.Protocol PickReadQuorum/WriteQuorum)", acc.Name())
							return true
						}
					}
				}
			}
		}
		// acc[i] = <derived> with acc declared outside the loop.
		if idx, ok := ast.Unparen(asg.Lhs[0]).(*ast.IndexExpr); ok {
			if acc := outerObj(idx.X); acc != nil && carriesDerived(asg.Rhs[0]) {
				pass.Reportf(asg.Pos(),
					"ad-hoc per-level quorum assembly into %s; use the canonical constructors (core.Protocol PickReadQuorum/WriteQuorum)", acc.Name())
			}
		}
		return true
	})
}
