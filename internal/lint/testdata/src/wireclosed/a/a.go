// Package a smuggles a second serialization path in through encoding/gob.
package a

import (
	"bytes"
	"encoding/gob" // want `encoding/gob outside internal/wire opens a second serialization path`
)

// RoundTrip gob-encodes a value outside the wire package.
func RoundTrip(v int) int {
	var b bytes.Buffer
	if err := gob.NewEncoder(&b).Encode(v); err != nil {
		return 0
	}
	var out int
	if err := gob.NewDecoder(&b).Decode(&out); err != nil {
		return 0
	}
	return out
}
