// Package wire is a fixture miniature of the real wire package: a closed
// message set with tag constants, encode/decode switches and golden
// vectors, with deliberate holes for the analyzer to find.
package wire

type PingReq struct{ ReqID uint64 }

type PingResp struct{ ReqID uint64 }

// OrphanReq has a tag but no encode case, no decode case and no golden
// vector — the three ways a message drifts out of the closed set.
type OrphanReq struct{ ReqID uint64 }

const (
	tagPingReq byte = iota + 1
	tagPingResp  // want `message PingResp has no golden vector`
	tagOrphanReq // want `message OrphanReq has no encode case` `tag tagOrphanReq has no decode case` `message OrphanReq has no golden vector`
	tagGhostReq  // want `tag tagGhostReq has no message type GhostReq`
)

const tagDup byte = 2 // want `duplicate tag value 2: tagDup collides with tagPingResp` `tag tagDup has no message type Dup`

// Encode appends one message's encoding.
func Encode(dst []byte, payload any) []byte {
	switch m := payload.(type) {
	case PingReq:
		dst = append(dst, tagPingReq)
		dst = append(dst, byte(m.ReqID))
	case PingResp:
		dst = append(dst, tagPingResp)
		dst = append(dst, byte(m.ReqID))
	}
	return dst
}

// Decode parses one encoded message.
func Decode(data []byte) any {
	if len(data) < 2 {
		return nil
	}
	switch data[0] {
	case tagPingReq:
		return PingReq{ReqID: uint64(data[1])}
	case tagPingResp:
		return PingResp{ReqID: uint64(data[1])}
	}
	return nil
}
