package wire

// encoding/gob is allowed here: internal/wire is the one package that may
// hold a serialization path.
import "encoding/gob"

func init() {
	gob.Register(PingReq{})
	gob.Register(PingResp{})
}
