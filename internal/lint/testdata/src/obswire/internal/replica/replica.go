// Package replica exercises the obswire analyzer over replica-initiated
// traffic: the anti-entropy syncer makes replicas originate wire calls of
// their own, so their exported sync/health entry points carry the same
// instrumentation obligation as client operations.
package replica

import (
	"internal/obs"
	"internal/transport"
)

// Replica serves protocol requests and drives anti-entropy catch-up.
type Replica struct {
	ep     transport.Conn
	pulled *obs.Counter
	sheds  *obs.Counter
}

// StartSync drives a catch-up pass; instrumented transitively via syncPage.
func (r *Replica) StartSync(peer transport.Addr) error {
	return r.syncPage(peer)
}

// syncPage is unexported: not an entry point, but it taints callers with
// wire traffic and satisfies them with its counter.
func (r *Replica) syncPage(peer transport.Addr) error {
	r.pulled.Inc()
	return r.ep.Send(peer, "digest")
}

// Probe sends a health probe with no instrumentation on its path.
func (r *Replica) Probe(peer transport.Addr) error { // want `exported entry point Probe sends replica traffic but records no metrics or trace`
	return r.ep.Send(peer, "ping")
}

// Health reads local state only; nothing to instrument.
func (r *Replica) Health() int { return 0 }

// Shed answers an over-admission-limit request with a typed overload
// reply; the shed counter satisfies the instrumentation obligation.
func (r *Replica) Shed(peer transport.Addr) error {
	r.sheds.Inc()
	return r.ep.Send(peer, "overloaded")
}

// Drain hands off in-flight state to a peer before going down, with no
// instrumentation on its path.
func (r *Replica) Drain(peer transport.Addr) error { // want `exported entry point Drain sends replica traffic but records no metrics or trace`
	return r.ep.Send(peer, "handoff")
}
