// Package client exercises the obswire analyzer: exported entry points
// that send replica traffic must (transitively) record observability.
package client

import (
	"internal/obs"
	"internal/rpc"
	"internal/transport"
)

// Client executes operations against replicas.
type Client struct {
	caller *rpc.Caller
	reads  *obs.Counter
}

// Read is instrumented directly.
func (c *Client) Read(to transport.Addr) error {
	c.reads.Inc()
	return c.caller.Call(to, "read")
}

// Ping sends traffic with no instrumentation anywhere on its path.
func (c *Client) Ping(to transport.Addr) error { // want `exported entry point Ping sends replica traffic but records no metrics or trace`
	return c.probe(to)
}

// probe is unexported: not an entry point itself, but it taints callers
// with wire traffic.
func (c *Client) probe(to transport.Addr) error {
	return c.caller.Call(to, "ping")
}

// Write is instrumented transitively through writeLocked.
func (c *Client) Write(to transport.Addr) error {
	return c.writeLocked(to)
}

func (c *Client) writeLocked(to transport.Addr) error {
	c.reads.Inc()
	return c.caller.Call(to, "write")
}

// Metrics never touches the wire; no instrumentation needed.
func (c *Client) Metrics() int { return 0 }
