// Package adapt exercises the obswire analyzer over controller-initiated
// traffic: an adaptation action that touches the wire must leave metrics or
// journal evidence behind, or the tree changes shape with nothing on
// /metrics to explain it.
package adapt

import (
	"internal/obs"
	"internal/transport"
)

// Controller drives live reconfigurations.
type Controller struct {
	ep        transport.Conn
	decisions *obs.Counter
}

// Migrate pushes the new shape to a replica; instrumented via journal.
func (c *Controller) Migrate(peer transport.Addr, spec string) error {
	c.journal()
	return c.ep.Send(peer, spec)
}

// journal is unexported: it satisfies callers with the decision counter.
func (c *Controller) journal() {
	c.decisions.Inc()
}

// Probe measures a replica with no instrumentation on its path.
func (c *Controller) Probe(peer transport.Addr) error { // want `exported entry point Probe sends replica traffic but records no metrics or trace`
	return c.ep.Send(peer, "load?")
}

// State reads local state only; nothing to instrument.
func (c *Controller) State() string { return "enabled" }
