// Package obs is a stand-in for the real observability package; the
// obswire analyzer recognizes it by its import-path suffix.
package obs

// Counter is a minimal metric handle.
type Counter struct{ n uint64 }

// Inc bumps the counter.
func (c *Counter) Inc() {
	if c != nil {
		c.n++
	}
}
