// Package rpc exercises the obswire analyzer inside its own scope: it is
// both a dependency of the client fixture and a test subject.
package rpc

import (
	"internal/obs"
	"internal/transport"
)

// Caller issues calls over a transport connection.
type Caller struct {
	ep    transport.Conn
	calls *obs.Counter
}

// Call is instrumented: wire traffic plus a counter.
func (c *Caller) Call(to transport.Addr, payload any) error {
	c.calls.Inc()
	return c.ep.Send(to, payload)
}

// Send touches the wire with no instrumentation at all.
func (c *Caller) Send(to transport.Addr, payload any) error { // want `exported entry point Send sends replica traffic but records no metrics or trace`
	return c.ep.Send(to, payload)
}

// Timeout never touches the wire; nothing to instrument.
func (c *Caller) Timeout() int { return 0 }
