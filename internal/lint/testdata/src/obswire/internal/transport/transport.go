// Package transport is a stand-in for the real message transport.
package transport

// Addr identifies a replica site.
type Addr int

// Conn is a message endpoint.
type Conn interface {
	Send(to Addr, payload any) error
}
