// Package transport is a stand-in for the real message transport — and,
// since the scope extension, a test subject in its own right: its exported
// send paths carry the same instrumentation obligation as the layers above.
package transport

import "internal/obs"

// Addr identifies a replica site.
type Addr int

// Conn is a message endpoint.
type Conn interface {
	Send(to Addr, payload any) error
}

// Endpoint fans messages out over a connection.
type Endpoint struct {
	c     Conn
	sends *obs.Counter
}

// Broadcast touches the wire with no instrumentation.
func (e *Endpoint) Broadcast(peers []Addr, payload any) error { // want `exported entry point Broadcast sends replica traffic but records no metrics or trace`
	for _, p := range peers {
		if err := e.c.Send(p, payload); err != nil {
			return err
		}
	}
	return nil
}

// BroadcastCounted is the instrumented variant.
func (e *Endpoint) BroadcastCounted(peers []Addr, payload any) error {
	for _, p := range peers {
		e.sends.Inc()
		if err := e.c.Send(p, payload); err != nil {
			return err
		}
	}
	return nil
}
