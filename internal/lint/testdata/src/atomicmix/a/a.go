// Package a exercises the atomicmix analyzer.
package a

import "sync/atomic"

type counter struct {
	hits   uint64
	misses uint64
	name   string
}

func (c *counter) inc() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) goodAtomicRead() uint64 {
	return atomic.LoadUint64(&c.hits)
}

func (c *counter) goodCompareAndSwap() bool {
	return atomic.CompareAndSwapUint64(&c.hits, 0, 1)
}

func (c *counter) badRead() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic`
}

func (c *counter) badWrite() {
	c.hits = 0 // want `field hits is accessed with sync/atomic`
}

// misses is only ever accessed plainly, name is not numeric state at all;
// neither mixes disciplines.
func (c *counter) goodPlainOnly() string {
	c.misses++
	return c.name
}
