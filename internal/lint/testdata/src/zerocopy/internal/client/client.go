// Package client is a fixture miniature of the real client package:
// ReadResult.Value is in the analyzer's cross-package registry, and
// Snapshot.Keys is discovered through its read-only doc marker.
package client

type ReadResult struct {
	// Value aliases the replica's internal buffer and must be treated as
	// read-only; coalesced waiters share one backing array.
	Value []byte
}

type Snapshot struct {
	// Keys is shared with the engine's cache; read-only.
	Keys []string
}

func badIndexWrite(r ReadResult) {
	r.Value[0] = 0 // want `write into read-only field Value`
}

func badAppend(r ReadResult) []byte {
	return append(r.Value, 1) // want `append to read-only field Value`
}

func badCopyInto(r ReadResult, src []byte) {
	copy(r.Value, src) // want `copy into read-only field Value`
}

func badAliasWrite(s Snapshot) {
	ks := s.Keys
	ks[0] = "" // want `write into read-only field Keys`
}

func badSliceAppend(r ReadResult) []byte {
	return append(r.Value[:2], 9) // want `append to read-only field Value`
}

func goodCopyOut(r ReadResult) []byte {
	out := make([]byte, len(r.Value))
	copy(out, r.Value)
	return out
}

func goodRead(r ReadResult) byte {
	if len(r.Value) == 0 {
		return 0
	}
	return r.Value[0]
}

func goodCloneThenMutate(r ReadResult) []byte {
	out := append([]byte(nil), r.Value...)
	out[0] = 1
	return out
}
