// Package b mutates a read-only field across the package boundary, where
// only the registry (not the doc marker) can identify it.
package b

import client "internal/client"

func badCrossPackage(r client.ReadResult) {
	r.Value[1] = 2 // want `write into read-only field Value`
}

func goodCrossPackage(r client.ReadResult) []byte {
	out := make([]byte, len(r.Value))
	copy(out, r.Value)
	return out
}
