// Package a exercises the poolsafe analyzer.
package a

import "sync"

var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

var chPool = sync.Pool{New: func() any { return make(chan int, 1) }}

type server struct {
	scratch *[]byte
}

func sink([]byte) {}

// badUseAfterPut reads through the pointer after the pool owns it again.
func badUseAfterPut() []byte {
	bp := bufPool.Get().(*[]byte)
	buf := append((*bp)[:0], 1, 2, 3)
	*bp = buf
	bufPool.Put(bp)
	return *bp // want `use of bp after it was returned to the pool`
}

// badDoublePut returns the same value twice; the second Put races the next
// Get of the first.
func badDoublePut() {
	bp := bufPool.Get().(*[]byte)
	*bp = (*bp)[:0]
	bufPool.Put(bp)
	bufPool.Put(bp) // want `use of bp after it was returned to the pool`
}

// badNoReset grows the buffer but never writes it back before Put.
func badNoReset(vs []byte) {
	bp := bufPool.Get().(*[]byte)
	buf := append((*bp)[:0], vs...)
	sink(buf)
	bufPool.Put(bp) // want `bp returned to the pool without writing the slice back`
}

// badResetOnOnePath writes back on one branch only; the other path pools a
// stale header.
func badResetOnOnePath(grow bool) {
	bp := bufPool.Get().(*[]byte)
	buf := *bp
	if grow {
		buf = append(buf, 1)
	} else {
		*bp = buf
	}
	bufPool.Put(bp) // want `bp returned to the pool without writing the slice back`
}

// badFieldStore parks a pooled buffer in a field that outlives the call.
func (s *server) badFieldStore() {
	bp := bufPool.Get().(*[]byte)
	s.scratch = bp // want `pooled bp stored in a field that outlives the call`
}

// goodSendStyle is the transport idiom: get, grow, write back, put.
func goodSendStyle(vs []byte) {
	bp := bufPool.Get().(*[]byte)
	buf := append((*bp)[:0], vs...)
	sink(buf)
	*bp = buf
	bufPool.Put(bp)
}

// goodChanPool pools channels; non-pointer values need no write-back.
func goodChanPool() int {
	ch := chPool.Get().(chan int)
	ch <- 1
	v := <-ch
	chPool.Put(ch)
	return v
}

// goodEarlyReturn puts on the error path and keeps using the buffer on the
// success path — the paths never join.
func goodEarlyReturn(closed bool) *[]byte {
	bp := bufPool.Get().(*[]byte)
	if closed {
		*bp = (*bp)[:0]
		bufPool.Put(bp)
		return nil
	}
	return bp
}

// goodLoopReget is the read-loop idiom: each iteration gets a fresh
// buffer, so the back edge's put fact dies at the next Get.
func goodLoopReget(frames [][]byte) {
	for _, f := range frames {
		bp := bufPool.Get().(*[]byte)
		buf := append((*bp)[:0], f...)
		sink(buf)
		*bp = buf
		bufPool.Put(bp)
	}
}
