// Package core is exempt from quorumshape: this is where the canonical
// constructors live, so cross-level assembly here is the point.
package core

import "internal/tree"

// PickReadQuorum takes one site from every physical level — the canonical
// read-quorum shape. No diagnostics expected in this package.
func PickReadQuorum(t *tree.Tree) []tree.SiteID {
	q := make([]tree.SiteID, t.NumPhysicalLevels())
	for u := 0; u < t.NumPhysicalLevels(); u++ {
		q[u] = t.LevelSites(u)[0]
	}
	return q
}
