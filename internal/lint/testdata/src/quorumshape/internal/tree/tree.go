// Package tree is a stand-in for the real logical-tree package; the
// quorumshape analyzer recognizes LevelSites by this import-path suffix.
package tree

// SiteID identifies a physical site.
type SiteID int

// Tree is a minimal stand-in for the replica tree.
type Tree struct {
	levels [][]SiteID
}

// NumPhysicalLevels reports the number of physical levels.
func (t *Tree) NumPhysicalLevels() int { return len(t.levels) }

// LevelSites returns the sites of one physical level.
func (t *Tree) LevelSites(u int) []SiteID { return t.levels[u] }
