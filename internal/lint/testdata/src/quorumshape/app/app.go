// Package app exercises the quorumshape analyzer: cross-level
// accumulation of LevelSites results outside internal/{core,quorum}.
package app

import (
	"sort"

	"internal/tree"
)

// Addr mimics a transport address, to exercise conversion unwrapping.
type Addr int

// badUnion builds a full-tree site union — a hand-rolled quorum shape.
func badUnion(t *tree.Tree) []tree.SiteID {
	var q []tree.SiteID
	for u := 0; u < t.NumPhysicalLevels(); u++ {
		q = append(q, t.LevelSites(u)...) // want `ad-hoc cross-level quorum assembly into q`
	}
	return q
}

// badOnePerLevel hand-picks one site per level into an outer slice: the
// shape of a read quorum, built without the canonical constructor.
func badOnePerLevel(t *tree.Tree) []tree.SiteID {
	q := make([]tree.SiteID, t.NumPhysicalLevels())
	for u := 0; u < t.NumPhysicalLevels(); u++ {
		sites := t.LevelSites(u)
		q[u] = sites[0] // want `ad-hoc per-level quorum assembly into q`
	}
	return q
}

// badRangeElem accumulates range elements of a LevelSites result across
// levels, through a type conversion.
func badRangeElem(t *tree.Tree) []Addr {
	var q []Addr
	for u := 0; u < t.NumPhysicalLevels(); u++ {
		for _, s := range t.LevelSites(u) {
			q = append(q, Addr(s)) // want `ad-hoc cross-level quorum assembly into q`
		}
	}
	return q
}

// goodConsume only consumes sites inside the loop; nothing accumulates.
func goodConsume(t *tree.Tree, load map[tree.SiteID]int) int {
	total := 0
	for u := 0; u < t.NumPhysicalLevels(); u++ {
		for _, s := range t.LevelSites(u) {
			total += load[s]
		}
	}
	return total
}

// goodPerLevelCounts stores a scalar derived per level, not the sites.
func goodPerLevelCounts(t *tree.Tree) []int {
	counts := make([]int, t.NumPhysicalLevels())
	for u := 0; u < t.NumPhysicalLevels(); u++ {
		counts[u] = len(t.LevelSites(u))
	}
	return counts
}

// goodLocalScratch accumulates into a slice local to the loop body.
func goodLocalScratch(t *tree.Tree) int {
	max := 0
	for u := 0; u < t.NumPhysicalLevels(); u++ {
		var level []tree.SiteID
		level = append(level, t.LevelSites(u)...)
		sort.Slice(level, func(i, j int) bool { return level[i] < level[j] })
		if len(level) > max {
			max = len(level)
		}
	}
	return max
}

// suppressed shows a //lint:ignore escape hatch for deliberate unions.
func suppressed(t *tree.Tree) []tree.SiteID {
	var all []tree.SiteID
	for u := 0; u < t.NumPhysicalLevels(); u++ {
		//lint:ignore quorumshape debugging helper dumps every site, not a quorum
		all = append(all, t.LevelSites(u)...)
	}
	return all
}
