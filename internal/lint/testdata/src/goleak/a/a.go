// Package a exercises the goleak analyzer.
package a

import (
	"context"
	"time"
)

type worker struct {
	stop chan struct{}
	in   chan int
}

func badForever(ch chan int) {
	go func() { // want `goroutine loops forever with no cancellation path`
		for {
			v := <-ch
			_ = v
		}
	}()
}

func badTicker() {
	go func() { // want `goroutine loops forever with no cancellation path`
		t := time.NewTicker(time.Second)
		for {
			select {
			case <-t.C:
			}
		}
	}()
}

func goodCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func goodStopChan(stop chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// run is a dispatcher-style loop with a stop channel; launching it as a
// named method is fine.
func (w *worker) run() {
	for {
		select {
		case <-w.stop:
			return
		case v := <-w.in:
			_ = v
		}
	}
}

func (w *worker) start() {
	go w.run()
}

// spin has no stop signal at all; launching it leaks.
func (w *worker) spin() {
	for {
		v := <-w.in
		_ = v
	}
}

func (w *worker) startSpin() {
	go w.spin() // want `goroutine loops forever with no cancellation path`
}

// badGotoLoop spells the infinite loop with goto — invisible to the old
// for-statement pattern match, plain on the CFG.
func badGotoLoop(ch chan int) {
	go func() { // want `goroutine loops forever with no cancellation path`
	again:
		v := <-ch
		_ = v
		goto again
	}()
}

// goodLabeledBreak escapes the outer loop via a labeled break, so the exit
// is reachable even though the inner loop alone never terminates.
func goodLabeledBreak(ch chan int) {
	go func() {
	outer:
		for {
			for {
				v := <-ch
				if v == 0 {
					break outer
				}
			}
		}
	}()
}

// badInnerBreakOnly breaks the inner loop but the outer one still spins
// forever — the old check saw a break statement and gave it a pass.
func badInnerBreakOnly(ch chan int) {
	go func() { // want `goroutine loops forever with no cancellation path`
		for {
			for {
				v := <-ch
				if v == 0 {
					break
				}
			}
		}
	}()
}

// goodReadLoop mirrors the transport's connection read loop: no cancel
// channel, but every iteration can return on a read error, so the exit
// stays reachable on the CFG.
func goodReadLoop(read func() ([]byte, error), deliver func([]byte)) {
	go func() {
		for {
			frame, err := read()
			if err != nil {
				return
			}
			deliver(frame)
		}
	}()
}

func goodBoundedLoop(items []int, f func(int)) {
	go func() {
		for _, it := range items {
			f(it)
		}
	}()
}

func badUnbufferedSend() chan int {
	ch := make(chan int)
	go func() {
		ch <- compute() // want `blocking send on unbuffered channel ch`
	}()
	return ch
}

func goodBufferedSend(n int) chan int {
	ch := make(chan int, n)
	go func() {
		ch <- compute()
	}()
	return ch
}

func goodSelectSend(ctx context.Context) chan int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-ctx.Done():
		}
	}()
	return ch
}

func compute() int { return 42 }
