// Package a exercises the goleak analyzer.
package a

import (
	"context"
	"time"
)

type worker struct {
	stop chan struct{}
	in   chan int
}

func badForever(ch chan int) {
	go func() { // want `goroutine loops forever with no cancellation path`
		for {
			v := <-ch
			_ = v
		}
	}()
}

func badTicker() {
	go func() { // want `goroutine loops forever with no cancellation path`
		t := time.NewTicker(time.Second)
		for {
			select {
			case <-t.C:
			}
		}
	}()
}

func goodCtx(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

func goodStopChan(stop chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// run is a dispatcher-style loop with a stop channel; launching it as a
// named method is fine.
func (w *worker) run() {
	for {
		select {
		case <-w.stop:
			return
		case v := <-w.in:
			_ = v
		}
	}
}

func (w *worker) start() {
	go w.run()
}

// spin has no stop signal at all; launching it leaks.
func (w *worker) spin() {
	for {
		v := <-w.in
		_ = v
	}
}

func (w *worker) startSpin() {
	go w.spin() // want `goroutine loops forever with no cancellation path`
}

func goodBoundedLoop(items []int, f func(int)) {
	go func() {
		for _, it := range items {
			f(it)
		}
	}()
}

func badUnbufferedSend() chan int {
	ch := make(chan int)
	go func() {
		ch <- compute() // want `blocking send on unbuffered channel ch`
	}()
	return ch
}

func goodBufferedSend(n int) chan int {
	ch := make(chan int, n)
	go func() {
		ch <- compute()
	}()
	return ch
}

func goodSelectSend(ctx context.Context) chan int {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-ctx.Done():
		}
	}()
	return ch
}

func compute() int { return 42 }
