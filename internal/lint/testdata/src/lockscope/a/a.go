// Package a exercises the lockscope analyzer.
package a

import (
	"sync"
	"time"
)

type state struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	cond *sync.Cond
	wg   sync.WaitGroup
	ch   chan int
	n    int
}

func (s *state) badSend(v int) {
	s.mu.Lock()
	s.ch <- v // want `s.mu held across channel send`
	s.mu.Unlock()
}

func (s *state) badRecvUnderDefer() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `s.mu held across channel receive`
}

func (s *state) badSleep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `s.mu held across time.Sleep`
}

func (s *state) badSelect() {
	s.rw.RLock()
	select { // want `s.rw held across blocking select`
	case v := <-s.ch:
		s.n = v
	}
	s.rw.RUnlock()
}

func (s *state) badWait() {
	s.mu.Lock()
	s.wg.Wait() // want `s.mu held across WaitGroup.Wait`
	s.mu.Unlock()
}

func (s *state) goodReleaseFirst(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- v
}

func (s *state) goodNonBlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.n = v
	default:
	}
}

// goodCondWait releases the lock while parked; sync.Cond is exempt.
func (s *state) goodCondWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.n == 0 {
		s.cond.Wait()
	}
}

// goodBranchScoped: the lock taken inside the branch does not leak out.
func (s *state) goodBranchScoped(cold bool, v int) {
	if cold {
		s.mu.Lock()
		s.n++
		s.mu.Unlock()
	}
	s.ch <- v
}

// badNested: blocking inside a branch entered with the lock held.
func (s *state) badNested(flush bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if flush {
		s.ch <- s.n // want `s.mu held across channel send`
	}
}

// goodFuncLit: the literal runs elsewhere; the send is not under this lock.
func (s *state) goodFuncLit() func(int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func(v int) {
		s.ch <- v
	}
}

// badJoin: the lock is taken on only one branch, but a may-analysis must
// carry it through the join — one bad path is a bug. The old linear scan
// missed this shape.
func (s *state) badJoin(cold bool, v int) {
	if cold {
		s.mu.Lock()
		s.n++
	}
	s.ch <- v // want `s.mu held across channel send`
	if cold {
		s.mu.Unlock()
	}
}

// badLoopCarried: the lock acquired in iteration i is still held when the
// back edge re-enters the loop body and blocks on the send.
func (s *state) badLoopCarried(vs []int) {
	for _, v := range vs {
		s.ch <- v // want `s.mu held across channel send`
		s.mu.Lock()
		s.n += v
		s.mu.Unlock()
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// goodLoopScoped: lock and unlock pair up inside each iteration, so the
// back edge carries no held fact into the next send.
func (s *state) goodLoopScoped(vs []int) {
	for _, v := range vs {
		s.mu.Lock()
		s.n += v
		s.mu.Unlock()
		s.ch <- v
	}
}
