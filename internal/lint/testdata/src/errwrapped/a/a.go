// Package a exercises the errwrapped analyzer.
package a

import (
	"errors"
	"fmt"
)

// Sentinel errors of this package.
var (
	ErrTimeout = errors.New("timed out")
	ErrInDoubt = errors.New("in doubt")
)

// notSentinel is package-level but not named like a sentinel.
var notSentinel = errors.New("whatever")

func bad(site int) error {
	return fmt.Errorf("site %d: %v", site, ErrTimeout) // want `sentinel ErrTimeout formatted with %v`
}

func badString() error {
	return fmt.Errorf("write failed: %s", ErrInDoubt) // want `sentinel ErrInDoubt formatted with %s`
}

func badIndexed(site int) error {
	return fmt.Errorf("%[2]v at %[1]d", site, ErrTimeout) // want `sentinel ErrTimeout formatted with %v`
}

func good(site int) error {
	return fmt.Errorf("site %d: %w", site, ErrTimeout)
}

func goodDouble(err error) error {
	return fmt.Errorf("%w: inner: %w", ErrInDoubt, err)
}

func goodNonSentinel() error {
	return fmt.Errorf("wrapped loosely: %v", notSentinel)
}

func goodDynamic(format string) error {
	return fmt.Errorf(format, ErrTimeout) // dynamic format: not checked
}

func suppressed(site int) error {
	//lint:ignore errwrapped this message intentionally flattens the sentinel for the wire
	return fmt.Errorf("site %d: %v", site, ErrTimeout)
}
