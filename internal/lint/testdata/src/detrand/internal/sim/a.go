// Package sim stands in for the chaos-simulation harness, which entered
// the deterministic scope when reproducer replay started depending on
// bit-for-bit reruns: histories must use a logical clock and every random
// draw a seeded source.
package sim

import (
	"math/rand"
	"time"
)

func badHistoryClock() time.Time {
	return time.Now() // want `time.Now in deterministic package`
}

func badFaultPick(sites []int) int {
	return sites[rand.Intn(len(sites))] // want `global rand.Intn in deterministic package`
}

func goodSeededFaultPick(seed int64, sites []int) int {
	rng := rand.New(rand.NewSource(seed))
	return sites[rng.Intn(len(sites))]
}

func goodLogicalClock(tick int) time.Time {
	return time.Unix(0, 0).Add(time.Duration(tick) * time.Microsecond)
}
