// Package core stands in for a deterministic package: the detrand
// analyzer is scoped to import paths ending in internal/core (and tree,
// quorum, analysis, lp, sim).
package core

import (
	"math/rand"
	"sort"
	"time"
)

func badClock() time.Time {
	return time.Now() // want `time.Now in deterministic package`
}

func badGlobalRand(n int) int {
	return rand.Intn(n) // want `global rand.Intn in deterministic package`
}

func goodSeededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func badMapOrder(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order leaks into keys`
		keys = append(keys, k)
	}
	return keys
}

func goodMapOrderSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodMapScalar(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodLocalAccumulator(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}
