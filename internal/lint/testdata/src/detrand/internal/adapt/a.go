// Package adapt stands in for the adaptation controller, which entered the
// deterministic scope with its decision journal: the chaos harness replays
// controller decisions bit-for-bit, so time must come from the injected
// clock and every random draw from a seeded source.
package adapt

import (
	"math/rand"
	"time"
)

type controller struct {
	clock func() time.Time
}

func (c *controller) badDecisionStamp() time.Time {
	return time.Now() // want `time.Now in deterministic package`
}

func (c *controller) goodDecisionStamp() time.Time {
	return c.clock()
}

func badJitter(cooldown time.Duration) time.Duration {
	return cooldown + time.Duration(rand.Intn(1000)) // want `global rand.Intn in deterministic package`
}

func goodJitter(seed int64, cooldown time.Duration) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	return cooldown + time.Duration(rng.Intn(1000))
}
