// Package wire stands in for the codec layer, which entered the
// deterministic scope with the binary codec: encode→decode→encode is a
// byte-level fixpoint only if encoding never consults a clock.
package wire

import "time"

type record struct {
	key     string
	stamped int64
}

func badStampOnEncode(key string) record {
	return record{key: key, stamped: time.Now().UnixNano()} // want `time.Now in deterministic package`
}

func goodCallerSuppliedStamp(key string, now time.Time) record {
	return record{key: key, stamped: now.UnixNano()}
}
