// Package transport stands in for the in-memory network, whose fault
// injection must replay chaos schedules from its seeded source.
package transport

import "math/rand"

type faults struct {
	rng  *rand.Rand
	rate float64
}

func newFaults(seed int64, rate float64) *faults {
	return &faults{rng: rand.New(rand.NewSource(seed)), rate: rate}
}

func (f *faults) badDrop() bool {
	return rand.Float64() < f.rate // want `global rand.Float64 in deterministic package`
}

func (f *faults) goodDrop() bool {
	return f.rng.Float64() < f.rate
}
