// Package scenario stands in for the .arb scenario compiler, which is in
// the deterministic scope because a spec must lower onto the same
// sim.Input every time: golden trace hashes and the nightly corpus
// replay both assume compile-time determinism.
package scenario

import (
	"math/rand"
	"time"
)

func badDefaultSeed() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package`
}

func badRampJitter(steps int) int {
	return rand.Intn(steps) // want `global rand.Intn in deterministic package`
}

func goodDeclaredSeed(seed int64, steps int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(steps)
}
