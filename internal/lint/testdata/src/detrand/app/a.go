// Package app is outside the deterministic scope: wall clocks and global
// randomness are fine here, so nothing below is flagged.
package app

import (
	"math/rand"
	"time"
)

func clockIsFine() time.Time {
	return time.Now()
}

func globalRandIsFine(n int) int {
	return rand.Intn(n)
}
