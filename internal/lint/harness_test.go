package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: each analyzer has a
// fixture tree under testdata/src/<name>/ whose files carry
//
//	// want `regexp`
//
// comments on the lines where a diagnostic is expected. Running the
// analyzer must produce exactly the expected set: every want matched by a
// diagnostic on its line, no diagnostic without a want.

// wantPattern is one expectation: a regexp the diagnostic message on this
// line must match.
type wantPattern struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantArgRe matches one backtick- or double-quoted pattern at the start of
// a want comment's remainder.
var wantArgRe = regexp.MustCompile("^(`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// parseWants extracts want expectations from one file's comments.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*wantPattern {
	t.Helper()
	var wants []*wantPattern
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			rest = strings.TrimSpace(rest)
			for rest != "" {
				m := wantArgRe.FindString(rest)
				if m == "" {
					t.Fatalf("%s:%d: malformed want comment near %q", pos.Filename, pos.Line, rest)
				}
				pat := m[1 : len(m)-1]
				if m[0] == '"' {
					pat = strings.ReplaceAll(pat, `\"`, `"`)
					pat = strings.ReplaceAll(pat, `\\`, `\`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
				}
				wants = append(wants, &wantPattern{file: pos.Filename, line: pos.Line, re: re})
				rest = strings.TrimSpace(rest[len(m):])
			}
		}
	}
	return wants
}

// runFixture loads the analyzer's fixture tree, runs the analyzer, and
// checks the diagnostics against the want expectations. It returns the
// number of expectations so callers can assert the fixture actually
// triggers the analyzer.
func runFixture(t *testing.T, a *Analyzer) int {
	t.Helper()
	root := filepath.Join("testdata", "src", a.Name)
	if _, err := os.Stat(root); err != nil {
		t.Fatalf("analyzer %s has no fixture: %v", a.Name, err)
	}
	pkgs, err := NewLoader(root, "").LoadAll()
	if err != nil {
		t.Fatalf("loading fixture %s: %v", root, err)
	}
	var wants []*wantPattern
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			wants = append(wants, parseWants(t, pkg.Fset, f)...)
		}
	}

	diags := RunAnalyzers(pkgs, []*Analyzer{a})
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	return len(wants)
}

// TestAnalyzers runs every registered analyzer over its fixture tree. Each
// fixture must both trigger the analyzer (at least one want) and pass it
// (no unexpected diagnostics), so a regression in either direction fails.
func TestAnalyzers(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			if n := runFixture(t, a); n == 0 {
				t.Errorf("fixture for %s has no // want expectations; it cannot prove the analyzer fires", a.Name)
			}
		})
	}
}

// TestEveryAnalyzerHasFixture is the registry meta-test: registering an
// analyzer without a fixture directory is itself a failure.
func TestEveryAnalyzerHasFixture(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		dir := filepath.Join("testdata", "src", a.Name)
		st, err := os.Stat(dir)
		if err != nil || !st.IsDir() {
			t.Errorf("analyzer %s has no fixture directory %s", a.Name, dir)
		}
	}
}

func TestByName(t *testing.T) {
	got, ok := ByName([]string{"goleak", "detrand"})
	if !ok || len(got) != 2 || got[0] != GoLeak || got[1] != DetRand {
		t.Fatalf("ByName(goleak,detrand) = %v, %v", got, ok)
	}
	if _, ok := ByName([]string{"nosuch"}); ok {
		t.Fatal("ByName(nosuch) succeeded")
	}
}

func TestVerbForArgs(t *testing.T) {
	cases := []struct {
		format string
		want   map[int]byte
	}{
		{"no verbs", map[int]byte{}},
		{"%d %s", map[int]byte{0: 'd', 1: 's'}},
		{"100%% done: %v", map[int]byte{0: 'v'}},
		{"%+v %#x % d", map[int]byte{0: 'v', 1: 'x', 2: 'd'}},
		{"%8.3f", map[int]byte{0: 'f'}},
		{"%*d", map[int]byte{0: '*', 1: 'd'}},
		{"%.*f", map[int]byte{0: '*', 1: 'f'}},
		{"%[2]s %[1]s", map[int]byte{0: 's', 1: 's'}},
		{"%w: %v", map[int]byte{0: 'w', 1: 'v'}},
		{"trailing %", map[int]byte{}},
	}
	for _, tc := range cases {
		got := verbForArgs(tc.format)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("verbForArgs(%q) = %v, want %v", tc.format, got, tc.want)
		}
	}
}
