package lint

import (
	"go/ast"
	"go/token"
)

// LockScope reports mutexes held across blocking operations. A mutex
// guarding hot-path state (the scoreboard's EWMAs, the caller's pending
// map, the coalescing flight table) must bound its critical section by CPU
// work only: a channel send/receive, select, time.Sleep or WaitGroup.Wait
// under the lock stalls every other operation on the client — and with the
// reply dispatcher also needing the lock, can deadlock the process.
// sync.Cond.Wait is exempt (it releases the lock while parked).
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "mutexes must not be held across blocking operations",
	Run:  runLockScope,
}

// Lock/unlock method sets, identified by their fully qualified names so
// embedding and aliasing cannot fool the check.
var (
	lockMethods = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	unlockMethods = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
	blockingCalls = map[string]string{
		"time.Sleep":             "time.Sleep",
		"(*sync.WaitGroup).Wait": "WaitGroup.Wait",
	}
)

func runLockScope(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					scanLockScope(pass, n.Body.List, map[string]token.Pos{})
				}
			case *ast.FuncLit:
				scanLockScope(pass, n.Body.List, map[string]token.Pos{})
			}
			return true
		})
	}
}

// scanLockScope walks one statement list linearly, tracking which mutexes
// are held (keyed by the receiver expression's dotted form, e.g. "c.mu")
// and reporting blocking operations encountered while any lock is held.
// Nested blocks are scanned with a copy of the held set: a lock taken in a
// branch never escapes it, which under-approximates but never corrupts the
// tracking. Function literals are separate control paths and are skipped.
func scanLockScope(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, kind := lockCallKey(pass, call); key != "" {
					if kind == lockKindLock {
						held[key] = call.Pos()
					} else {
						delete(held, key)
					}
					continue
				}
			}
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the lock held to function end —
			// which is exactly the window we keep checking.
			continue
		}
		if len(held) > 0 {
			reportBlockingIn(pass, stmt, held)
		}
		// Descend into nested blocks with a copied held set.
		for _, body := range nestedBlocks(stmt) {
			scanLockScope(pass, body.List, copyHeld(held))
		}
	}
}

type lockKind int

const (
	lockKindNone lockKind = iota
	lockKindLock
	lockKindUnlock
)

// lockCallKey identifies mu.Lock()/mu.Unlock() calls, returning the
// receiver's dotted form and whether it locks or unlocks.
func lockCallKey(pass *Pass, call *ast.CallExpr) (string, lockKind) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil {
		return "", lockKindNone
	}
	name := fn.FullName()
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockKindNone
	}
	switch {
	case lockMethods[name]:
		return exprString(sel.X), lockKindLock
	case unlockMethods[name]:
		return exprString(sel.X), lockKindUnlock
	}
	return "", lockKindNone
}

// reportBlockingIn reports blocking operations in the statement's own
// expressions (not nested blocks or function literals) while locks are
// held.
func reportBlockingIn(pass *Pass, stmt ast.Stmt, held map[string]token.Pos) {
	lockNames := func() string {
		out := ""
		for k := range held {
			if out == "" || k < out {
				out = k
			}
		}
		return out
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.BlockStmt:
			return // nested blocks handled by scanLockScope recursion
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				pass.Reportf(n.Pos(), "%s held across blocking select; release the lock first", lockNames())
			}
			return
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "%s held across channel send; release the lock first", lockNames())
			children(n, walk)
			return
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "%s held across channel receive; release the lock first", lockNames())
			}
			children(n, walk)
			return
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Pkg.Info, n); fn != nil {
				if what, ok := blockingCalls[fn.FullName()]; ok {
					pass.Reportf(n.Pos(), "%s held across %s; release the lock first", lockNames(), what)
				}
			}
			children(n, walk)
			return
		}
		children(n, walk)
	}
	walk(stmt)
}

// nestedBlocks returns the statement's directly nested blocks (if/for/
// switch/select bodies), so the scanner can descend with scoped held sets.
func nestedBlocks(stmt ast.Stmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s)
	case *ast.IfStmt:
		out = append(out, s.Body)
		if e, ok := s.Else.(*ast.BlockStmt); ok {
			out = append(out, e)
		} else if e, ok := s.Else.(*ast.IfStmt); ok {
			out = append(out, nestedBlocks(e)...)
		}
	case *ast.ForStmt:
		out = append(out, s.Body)
	case *ast.RangeStmt:
		out = append(out, s.Body)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				out = append(out, &ast.BlockStmt{List: cc.Body})
			}
		}
	case *ast.LabeledStmt:
		out = append(out, nestedBlocks(s.Stmt)...)
	}
	return out
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
