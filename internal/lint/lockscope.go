package lint

import (
	"go/ast"
	"go/token"
)

// LockScope reports mutexes held across blocking operations. A mutex
// guarding hot-path state (the scoreboard's EWMAs, the caller's pending
// map, the coalescing flight table) must bound its critical section by CPU
// work only: a channel send/receive, select, time.Sleep or WaitGroup.Wait
// under the lock stalls every other operation on the client — and with the
// reply dispatcher also needing the lock, can deadlock the process.
// sync.Cond.Wait is exempt (it releases the lock while parked).
//
// Since the CFG rewrite the check is path-sensitive: "held" is a forward
// may-fact over the function's control-flow graph (gen at Lock, kill at
// Unlock, union at joins), so a lock taken in one branch is tracked through
// the join, across loop back edges, and through gotos — shapes the old
// linear scan under-approximated. defer mu.Unlock() keeps the lock held to
// function end, which is exactly the window the check cares about.
var LockScope = &Analyzer{
	Name: "lockscope",
	Doc:  "mutexes must not be held across blocking operations",
	Run:  runLockScope,
}

// Lock/unlock method sets, identified by their fully qualified names so
// embedding and aliasing cannot fool the check.
var (
	lockMethods = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	unlockMethods = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
	blockingCalls = map[string]string{
		"time.Sleep":             "time.Sleep",
		"(*sync.WaitGroup).Wait": "WaitGroup.Wait",
	}
)

const heldPrefix = "held:"

func runLockScope(pass *Pass) {
	funcBodies(pass.Pkg, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
		cfg := BuildCFG(body, pass)
		transfer := lockTransfer(pass)
		entry := ForwardFlow(cfg, nil, transfer)
		WalkFlow(cfg, entry, transfer, func(b *Block, i int, n ast.Node, facts Facts) {
			if len(facts) == 0 {
				return
			}
			// A select clause's comm operation has an alternative — the
			// select head already reported the blocking point (or had a
			// default); don't re-report each arm.
			if b.Kind == "select.case" && i == 0 {
				return
			}
			reportBlockingIn(pass, n, facts)
		})
	})
}

// lockTransfer builds the gen/kill function: mu.Lock() generates a held
// fact keyed by the receiver's dotted form, mu.Unlock() kills it. A
// deferred unlock deliberately does not kill — the lock stays held to
// function end.
func lockTransfer(pass *Pass) Transfer {
	return func(n ast.Node, facts Facts) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		key, kind := lockCallKey(pass, call)
		if key == "" {
			return
		}
		switch kind {
		case lockKindLock:
			facts[heldPrefix+key] = call.Pos()
		case lockKindUnlock:
			delete(facts, heldPrefix+key)
		}
	}
}

type lockKind int

const (
	lockKindNone lockKind = iota
	lockKindLock
	lockKindUnlock
)

// lockCallKey identifies mu.Lock()/mu.Unlock() calls, returning the
// receiver's dotted form and whether it locks or unlocks.
func lockCallKey(pass *Pass, call *ast.CallExpr) (string, lockKind) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil {
		return "", lockKindNone
	}
	name := fn.FullName()
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", lockKindNone
	}
	switch {
	case lockMethods[name]:
		return exprString(sel.X), lockKindLock
	case unlockMethods[name]:
		return exprString(sel.X), lockKindUnlock
	}
	return "", lockKindNone
}

// heldNames renders the held set for a diagnostic: the lexically smallest
// lock key, deterministically.
func heldNames(facts Facts) string {
	out := ""
	for k := range facts {
		name := k[len(heldPrefix):]
		if out == "" || name < out {
			out = name
		}
	}
	return out
}

// reportBlockingIn scans one CFG node for blocking operations performed
// while locks are held. Function literals are separate control paths and
// are skipped; a blocking select appears as the builder's synthetic
// empty-body marker, so clause bodies (their own blocks) are not re-walked.
func reportBlockingIn(pass *Pass, node ast.Node, held Facts) {
	if sel, ok := node.(*ast.SelectStmt); ok {
		if len(sel.Body.List) == 0 { // builder's blocking-select marker
			pass.Reportf(sel.Pos(), "%s held across blocking select; release the lock first", heldNames(held))
		}
		return
	}
	inspectSkippingFuncLits(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "%s held across channel send; release the lock first", heldNames(held))
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "%s held across channel receive; release the lock first", heldNames(held))
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Pkg.Info, n); fn != nil {
				if what, ok := blockingCalls[fn.FullName()]; ok {
					pass.Reportf(n.Pos(), "%s held across %s; release the lock first", heldNames(held), what)
				}
			}
		}
		return true
	})
}
