package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// doneChanName matches channel identifiers conventionally used as
// cancellation signals.
var doneChanName = regexp.MustCompile(`(?i)(done|stop|quit|exit|close)`)

// GoLeak reports goroutines with no way to terminate. Two shapes are
// flagged:
//
//   - a goroutine whose body has no path to the function exit at all — on
//     its control-flow graph the exit block is unreachable and no reachable
//     block receives from ctx.Done() or a done/stop-named channel — which
//     outlives every caller (the dispatcher and replica event loops all
//     select on a stop channel for exactly this reason);
//   - a goroutine performing a bare blocking send, outside any select, on a
//     channel created unbuffered in the surrounding function: if the
//     receiver gives up (the hedging engine's loser-probe pattern), the
//     sender parks forever. Buffering the channel to the fan-out width, or
//     selecting on ctx.Done(), fixes it.
//
// The first check rides the CFG: before the rewrite it pattern-matched
// infinite `for` statements, which missed loops spelled with goto or
// labeled continue and misjudged breaks that only escape an inner loop.
// Reachability on the graph answers the real question — does any execution
// of this goroutine ever end?
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines need a cancellation path or a drain",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	decls := funcDeclsByObj(pass.Pkg)
	makes := indexChanMakes(pass)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				checkGoroutineExit(pass, g, fun.Body)
				checkUnbufferedSend(pass, fun.Body, makes)
			default:
				// go c.dispatch() — chase same-package declarations.
				if fn := calleeFunc(pass.Pkg.Info, g.Call); fn != nil {
					if fd, ok := decls[fn]; ok && fd.Body != nil {
						checkGoroutineExit(pass, g, fd.Body)
					}
				}
			}
			return true
		})
	}
}

// checkGoroutineExit reports goroutine bodies whose CFG never reaches the
// function exit. A receive from a cancellation signal (ctx.Done(), a
// done/stop-named channel) anywhere reachable counts as an exit even
// without a return: the conventional shutdown idioms drain or return right
// after, and the old loop-based check grandfathered them for the same
// reason. Terminating calls (os.Exit, runtime.Goexit, panic) produce exit
// edges during CFG construction.
func checkGoroutineExit(pass *Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	cfg := BuildCFG(body, pass)
	reach := cfg.Reachable()
	if reach[cfg.Exit] {
		return
	}
	for b := range reach {
		for _, n := range b.Nodes {
			found := false
			inspectSkippingFuncLits(n, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW && isCancelSignal(pass, u.X) {
					found = true
				}
				return !found
			})
			if found {
				return
			}
		}
	}
	pass.Reportf(g.Pos(), "goroutine loops forever with no cancellation path: add a ctx.Done()/stop-channel case or a terminating return")
}

// isCancelSignal reports whether a channel expression looks like a
// cancellation signal: ctx.Done() for a context.Context, or a channel whose
// identifier is named done/stop/quit/exit/close.
func isCancelSignal(pass *Pass, ch ast.Expr) bool {
	ch = ast.Unparen(ch)
	if call, ok := ch.(*ast.CallExpr); ok {
		if fn := calleeFunc(pass.Pkg.Info, call); fn != nil && fn.Name() == "Done" && pkgPathOf(fn) == "context" {
			return true
		}
		ch = call.Fun
	}
	switch x := ch.(type) {
	case *ast.SelectorExpr:
		return doneChanName.MatchString(x.Sel.Name)
	default:
		if id := rootIdent(ch); id != nil {
			return doneChanName.MatchString(id.Name)
		}
	}
	return false
}

// checkUnbufferedSend reports bare sends, outside any select, on channels
// made without a buffer.
func checkUnbufferedSend(pass *Pass, body *ast.BlockStmt, makes map[types.Object]int) {
	info := pass.Pkg.Info
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // different goroutine/control path
		case *ast.SelectStmt:
			return // a send inside select has alternatives
		case *ast.SendStmt:
			id := rootIdent(n.Chan)
			if id == nil {
				return
			}
			obj := info.Uses[id]
			if obj == nil {
				return
			}
			if cap, ok := makes[obj]; ok && cap == 0 {
				pass.Reportf(n.Pos(), "blocking send on unbuffered channel %s in goroutine can leak if the receiver gives up; buffer the channel or select on a cancellation signal", id.Name)
			}
			return
		}
		children(n, walk)
	}
	walk(body)
}

// children invokes fn on each immediate child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		fn(m)
		return false
	})
}

// indexChanMakes scans the package for `v := make(chan T[, n])`
// initializations, recording each channel variable's literal buffer
// arity (0 = unbuffered) so send sites can see capacities.
func indexChanMakes(pass *Pass) map[types.Object]int {
	makes := make(map[types.Object]int)
	info := pass.Pkg.Info
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || info.Uses[id] != types.Universe.Lookup("make") {
			return
		}
		tv, ok := info.Types[call.Args[0]]
		if !ok {
			return
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return
		}
		lid, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		obj := types.Object(info.Defs[lid])
		if obj == nil {
			obj = info.Uses[lid]
		}
		if obj != nil {
			makes[obj] = len(call.Args) - 1
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Rhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Values {
						record(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}
	return makes
}
