package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// zeroCopyRegistry names struct fields whose values are shared across an
// API boundary and documented read-only. Doc markers cover the defining
// package (the analyzer sees its comments); the registry covers callers in
// other packages, where comments of the defining package are out of reach.
// ReadResult.Value is the canonical entry: the coalescing engine hands
// every waiter the same backing array, so one waiter appending to it
// corrupts the others' reads.
var zeroCopyRegistry = []struct {
	pkg   *regexp.Regexp
	typ   string
	field string
}{
	{segSuffix(`internal/client`), "ReadResult", "Value"},
}

// zeroCopyMarker matches field doc comments that declare the shared,
// do-not-mutate contract.
var zeroCopyMarker = regexp.MustCompile(`(?i)read[- ]only`)

// ZeroCopy reports mutations of values documented as shared and read-only.
// Zero-copy hand-offs (the engine's coalesced read results, pooled frame
// buffers surfaced through decode) trade an allocation for a contract the
// compiler cannot check: the receiver must not write. Flagged shapes:
// indexed writes into the field, append with the field as base (growth in
// place clobbers the shared array when capacity allows), copy with the
// field as destination — directly or through a local alias assigned from
// the field in the same function.
var ZeroCopy = &Analyzer{
	Name: "zerocopy",
	Doc:  "values documented read-only (shared backing arrays) must not be mutated or appended to",
	Run:  runZeroCopy,
}

func runZeroCopy(pass *Pass) {
	marked := collectMarkedFields(pass)
	isReadOnly := func(sel *ast.SelectorExpr) (string, bool) {
		s, ok := pass.Pkg.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return "", false
		}
		obj := s.Obj()
		if marked[obj] {
			return obj.Name(), true
		}
		recv := s.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return "", false
		}
		tn := named.Obj()
		for _, e := range zeroCopyRegistry {
			if tn.Name() == e.typ && obj.Name() == e.field && pathMatches(pkgPathOf(tn), e.pkg) {
				return obj.Name(), true
			}
		}
		return "", false
	}
	funcBodies(pass.Pkg, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
		checkZeroCopyBody(pass, body, isReadOnly)
	})
}

// collectMarkedFields finds struct fields whose doc or line comment carries
// the read-only marker.
func collectMarkedFields(pass *Pass) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				text := ""
				if field.Doc != nil {
					text += field.Doc.Text()
				}
				if field.Comment != nil {
					text += field.Comment.Text()
				}
				if !zeroCopyMarker.MatchString(text) {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Pkg.Info.Defs[name]; obj != nil {
						marked[obj] = true
					}
				}
			}
			return true
		})
	}
	return marked
}

// checkZeroCopyBody scans one function body. Alias tracking is
// flow-insensitive and single-level by design: `v := r.Value` marks v for
// the rest of the body, which matches how the hand-off idiom is actually
// written (bind once, use below).
func checkZeroCopyBody(pass *Pass, body *ast.BlockStmt, isReadOnly func(*ast.SelectorExpr) (string, bool)) {
	info := pass.Pkg.Info

	// Pass 1: locals assigned directly from a read-only field.
	aliases := make(map[types.Object]string)
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i := range asg.Lhs {
			sel, ok := ast.Unparen(asg.Rhs[i]).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			field, ro := isReadOnly(sel)
			if !ro {
				continue
			}
			if obj := assignedObj(info, asg.Lhs[i]); obj != nil {
				aliases[obj] = field
			}
		}
		return true
	})

	// readOnlyBase resolves an expression to the read-only field it roots
	// in: the field selector itself, a slice of it, or a marked alias.
	readOnlyBase := func(e ast.Expr) (string, bool) {
		e = ast.Unparen(e)
		if sl, ok := e.(*ast.SliceExpr); ok {
			e = ast.Unparen(sl.X)
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			return isReadOnly(sel)
		}
		if id, ok := e.(*ast.Ident); ok {
			if field, ok := aliases[info.Uses[id]]; ok {
				return field, true
			}
		}
		return "", false
	}

	// Pass 2: mutations.
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				if field, ro := readOnlyBase(ix.X); ro {
					pass.Reportf(lhs.Pos(), "write into read-only field %s mutates a shared backing array; copy before mutating", field)
				}
			}
		case *ast.IncDecStmt:
			if ix, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok {
				if field, ro := readOnlyBase(ix.X); ro {
					pass.Reportf(n.Pos(), "write into read-only field %s mutates a shared backing array; copy before mutating", field)
				}
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || len(n.Args) == 0 || info.Uses[id] != types.Universe.Lookup(id.Name) {
				return true
			}
			switch id.Name {
			case "append":
				if field, ro := readOnlyBase(n.Args[0]); ro {
					pass.Reportf(n.Pos(), "append to read-only field %s may grow in place and clobber the shared backing array; copy first", field)
				}
			case "copy":
				if field, ro := readOnlyBase(n.Args[0]); ro {
					pass.Reportf(n.Pos(), "copy into read-only field %s overwrites shared bytes; copy out of it instead", field)
				}
			}
		}
		return true
	})
}
