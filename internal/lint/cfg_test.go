package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFuncBody parses `src` as the body of a single function declaration
// and returns its CFG (built without type information).
func parseFuncBody(t *testing.T, src string) *CFG {
	t.Helper()
	file := "package p\n" + src
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return BuildCFG(fd.Body, nil)
		}
	}
	t.Fatalf("no function in %q", src)
	return nil
}

// TestCFGStructure pins down block/edge structure for the tricky function
// shapes the flow-sensitive analyzers must see correctly: defer in loops,
// selects used as loop exits, labeled continue/break, goto, panic and
// fallthrough.
func TestCFGStructure(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// edges is the exact sorted edge list "from->to", when asserted.
		edges []string
		// exitReachable asserts whether the virtual exit block is
		// reachable from entry.
		exitReachable bool
		// defers asserts the number of recorded defer statements.
		defers int
	}{
		{
			name:          "straight line",
			src:           `func f() { a(); b() }`,
			edges:         []string{"0->1"},
			exitReachable: true,
		},
		{
			name:          "if without else",
			src:           `func f(x int) { if x > 0 { a() }; b() }`,
			edges:         []string{"0->2", "0->3", "2->3", "3->1"},
			exitReachable: true,
		},
		{
			name:          "if else both return",
			src:           `func f(x int) int { if x > 0 { return 1 } else { return 2 } }`,
			edges:         []string{"0->2", "0->3", "2->1", "3->1", "4->1"},
			exitReachable: true,
		},
		{
			name:          "three clause for",
			src:           `func f() { for i := 0; i < 3; i++ { a() }; b() }`,
			edges:         []string{"0->2", "2->3", "2->4", "3->5", "4->1", "5->2"},
			exitReachable: true,
		},
		{
			name:          "range loop",
			src:           `func f(xs []int) { for _, x := range xs { use(x) } }`,
			edges:         []string{"0->2", "2->3", "2->4", "3->2", "4->1"},
			exitReachable: true,
		},
		{
			name:          "infinite for no exit",
			src:           `func f(in chan int) { for { v := <-in; _ = v } }`,
			exitReachable: false,
		},
		{
			name: "infinite for with select return",
			src: `func f(stop chan struct{}, in chan int) {
				for {
					select {
					case <-stop:
						return
					case v := <-in:
						_ = v
					}
				}
			}`,
			exitReachable: true,
		},
		{
			name: "select without cancellation never exits",
			src: `func f(in chan int) {
				for {
					select {
					case v := <-in:
						_ = v
					}
				}
			}`,
			exitReachable: false,
		},
		{
			name: "labeled break from nested loops",
			src: `func f(xs [][]int) {
			outer:
				for _, row := range xs {
					for _, v := range row {
						if v == 0 {
							break outer
						}
					}
				}
				done()
			}`,
			exitReachable: true,
		},
		{
			name: "labeled continue targets outer loop",
			src: `func f(xs [][]int) int {
				n := 0
			outer:
				for _, row := range xs {
					for _, v := range row {
						if v == 0 {
							continue outer
						}
						n += v
					}
				}
				return n
			}`,
			exitReachable: true,
		},
		{
			name: "goto backward",
			src: `func f(x int) {
			retry:
				if x > 0 {
					x--
					goto retry
				}
			}`,
			edges:         []string{"0->2", "2->3", "2->4", "3->2", "4->1"},
			exitReachable: true,
		},
		{
			name: "switch with fallthrough and default",
			src: `func f(x int) {
				switch x {
				case 1:
					a()
					fallthrough
				case 2:
					b()
				default:
					c()
				}
				d()
			}`,
			edges:         []string{"0->3", "0->4", "0->5", "2->1", "3->4", "4->2", "5->2"},
			exitReachable: true,
		},
		{
			name: "switch without default can skip all cases",
			src: `func f(x int) {
				switch x {
				case 1:
					a()
				}
				b()
			}`,
			edges:         []string{"0->2", "0->3", "2->1", "3->2"},
			exitReachable: true,
		},
		{
			name:          "panic terminates the block",
			src:           `func f(x int) int { if x < 0 { panic("neg") }; return x }`,
			edges:         []string{"0->2", "0->3", "2->1", "3->1"},
			exitReachable: true,
		},
		{
			name: "defer in loop recorded and run at exit",
			src: `func f(files []closer) {
				for _, f := range files {
					defer f.Close()
				}
			}`,
			exitReachable: true,
			defers:        1,
		},
		{
			name: "panic recover shape",
			src: `func f() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = wrap(r)
					}
				}()
				mayPanic()
				return nil
			}`,
			exitReachable: true,
			defers:        1,
		},
		{
			name: "type switch",
			src: `func f(v any) int {
				switch x := v.(type) {
				case int:
					return x
				case string:
					return len(x)
				}
				return 0
			}`,
			exitReachable: true,
		},
		{
			name: "select with default is non-blocking",
			src: `func f(ch chan int) {
				select {
				case v := <-ch:
					_ = v
				default:
				}
				done()
			}`,
			exitReachable: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := parseFuncBody(t, tc.src)
			if c.Entry == nil || c.Exit == nil || c.Blocks[0] != c.Entry {
				t.Fatalf("malformed CFG: %s", c)
			}
			if tc.edges != nil {
				got := c.sortedBlockEdges()
				if strings.Join(got, " ") != strings.Join(tc.edges, " ") {
					t.Errorf("edges = %v, want %v\ncfg: %s", got, tc.edges, c)
				}
			}
			reach := c.Reachable()
			if got := reach[c.Exit]; got != tc.exitReachable {
				t.Errorf("exit reachable = %v, want %v\ncfg: %s", got, tc.exitReachable, c)
			}
			if len(c.Defers) != tc.defers {
				t.Errorf("defers = %d, want %d", len(c.Defers), tc.defers)
			}
			if tc.defers > 0 {
				// Deferred calls must ride on the exit block so "runs at
				// every exit" analyses see them.
				n := 0
				for _, node := range c.Exit.Nodes {
					if _, ok := node.(*ast.CallExpr); ok {
						n++
					}
				}
				if n != tc.defers {
					t.Errorf("exit block carries %d deferred calls, want %d", n, tc.defers)
				}
			}
		})
	}
}

// TestCFGSelectMarker asserts blocking selects leave a synthetic marker in
// the head block (for lockscope) while non-blocking ones do not.
func TestCFGSelectMarker(t *testing.T) {
	count := func(c *CFG) int {
		n := 0
		for _, b := range c.Blocks {
			for _, node := range b.Nodes {
				if sel, ok := node.(*ast.SelectStmt); ok && len(sel.Body.List) == 0 {
					n++
				}
			}
		}
		return n
	}
	blocking := parseFuncBody(t, `func f(ch chan int) { select { case v := <-ch: _ = v } }`)
	if got := count(blocking); got != 1 {
		t.Errorf("blocking select markers = %d, want 1", got)
	}
	nonBlocking := parseFuncBody(t, `func f(ch chan int) { select { case v := <-ch: _ = v; default: } }`)
	if got := count(nonBlocking); got != 0 {
		t.Errorf("non-blocking select markers = %d, want 0", got)
	}
}

// TestForwardFlow exercises the dataflow fixpoint on a diamond: a fact
// generated in one branch must survive the join (union merge), and a fact
// killed in both branches must not.
func TestForwardFlow(t *testing.T) {
	c := parseFuncBody(t, `func f(x int) {
		gen()
		if x > 0 {
			kill()
		} else {
			kill()
		}
		after()
	}`)
	transfer := func(n ast.Node, facts Facts) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		switch id.Name {
		case "gen":
			facts["f"] = n.Pos()
		case "kill":
			delete(facts, "f")
		}
	}
	in := ForwardFlow(c, nil, transfer)

	var sawAfter bool
	WalkFlow(c, in, transfer, func(_ *Block, _ int, n ast.Node, facts Facts) {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return
		}
		if call, ok := es.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
				sawAfter = true
				if _, held := facts["f"]; held {
					t.Errorf("fact killed on both branches still present at join")
				}
			}
		}
	})
	if !sawAfter {
		t.Fatal("walk never reached after()")
	}

	// One-sided kill: the fact must survive the join (may-analysis).
	c2 := parseFuncBody(t, `func f(x int) {
		gen()
		if x > 0 {
			kill()
		}
		after()
	}`)
	in2 := ForwardFlow(c2, nil, transfer)
	WalkFlow(c2, in2, transfer, func(_ *Block, _ int, n ast.Node, facts Facts) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "after" {
					if _, held := facts["f"]; !held {
						t.Errorf("fact killed on one branch lost at join; union merge must keep it")
					}
				}
			}
		}
	})

	// Loop fixpoint: a fact generated inside a loop body reaches the loop
	// head on the back edge.
	c3 := parseFuncBody(t, `func f(xs []int) {
		for range xs {
			probe()
			gen()
		}
	}`)
	in3 := ForwardFlow(c3, nil, transfer)
	probed := false
	WalkFlow(c3, in3, transfer, func(_ *Block, _ int, n ast.Node, facts Facts) {
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "probe" {
					probed = true
					if _, held := facts["f"]; !held {
						t.Errorf("fact from previous iteration missing at loop head (back edge not propagated)")
					}
				}
			}
		}
	})
	if !probed {
		t.Fatal("walk never reached probe()")
	}
}
