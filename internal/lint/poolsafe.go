package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// PoolSafe checks the lifecycle of sync.Pool values on the function's
// control-flow graph. The pools on the hot path (the transport's frame
// buffers, the WAL's append buffer, the caller's reply channels) make
// steady-state operation allocation-free, and every one of their bugs is a
// path property:
//
//   - a value used after Put on any path is a data race with the next Get
//     (the pool may have handed it to another goroutine already);
//   - a *[]byte pooled buffer must be written back (*bp = buf) before Put
//     on every path — append may have grown the slice, and dropping the
//     write-back silently discards the grown capacity and re-pools the
//     stale header;
//   - a pooled value stored into a struct field outlives the call while
//     the pool believes it owns the value again.
//
// Facts are forward may-facts: one bad path through a branch or a loop
// back edge is a bug even if the common path is clean.
var PoolSafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "sync.Pool values: no use after Put, write *bp back before Put, no stores that outlive the call",
	Run:  runPoolSafe,
}

const (
	pooledPrefix  = "pooled:"  // v came from a Pool.Get on some path
	putPrefix     = "put:"     // v was returned via Pool.Put on some path
	unresetPrefix = "unreset:" // *[]byte pointee not written back since Get
)

func runPoolSafe(pass *Pass) {
	funcBodies(pass.Pkg, func(_ *ast.FuncDecl, body *ast.BlockStmt) {
		cfg := BuildCFG(body, pass)
		transfer := poolTransfer(pass)
		entry := ForwardFlow(cfg, nil, transfer)
		WalkFlow(cfg, entry, transfer, func(_ *Block, _ int, n ast.Node, facts Facts) {
			if len(facts) == 0 {
				return
			}
			checkPoolNode(pass, n, facts)
		})
	})
}

// poolObjKey keys facts by the variable's defining position — unique per
// object within a package.
func poolObjKey(obj types.Object) string {
	return fmt.Sprintf("%d", obj.Pos())
}

// poolTransfer is the gen/kill function: Get binds the variable (and marks
// slice-pointer pointees unreset), Put retires it, a write through *v or a
// rebinding assignment clears the respective facts.
func poolTransfer(pass *Pass) Transfer {
	info := pass.Pkg.Info
	return func(n ast.Node, facts Facts) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return
			}
			for i := range n.Lhs {
				poolTransferAssign(info, n.Lhs[i], n.Rhs[i], facts)
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return
			}
			if obj := poolPutArg(info, call); obj != nil {
				key := poolObjKey(obj)
				delete(facts, pooledPrefix+key)
				delete(facts, unresetPrefix+key)
				facts[putPrefix+key] = call.Pos()
			}
		}
	}
}

func poolTransferAssign(info *types.Info, lhs, rhs ast.Expr, facts Facts) {
	// v := pool.Get().(*T) — bind; a fresh Get clears any stale put fact
	// (loop back edges re-enter with last iteration's facts).
	if isPoolGet(info, rhs) {
		if obj := assignedObj(info, lhs); obj != nil {
			key := poolObjKey(obj)
			facts[pooledPrefix+key] = lhs.Pos()
			delete(facts, putPrefix+key)
			delete(facts, unresetPrefix+key)
			if isSlicePointer(obj.Type()) {
				facts[unresetPrefix+key] = lhs.Pos()
			}
		}
		return
	}
	// *v = buf — the write-back that re-arms the pooled buffer.
	if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
		if id := rootIdent(star.X); id != nil {
			if obj := info.Uses[id]; obj != nil {
				delete(facts, unresetPrefix+poolObjKey(obj))
			}
		}
		return
	}
	// v = something-else — rebinding drops every fact about v.
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil {
			key := poolObjKey(obj)
			delete(facts, pooledPrefix+key)
			delete(facts, putPrefix+key)
			delete(facts, unresetPrefix+key)
		}
	}
}

// checkPoolNode reports pool misuse visible at this node given the facts
// holding just before it.
func checkPoolNode(pass *Pass, n ast.Node, facts Facts) {
	info := pass.Pkg.Info

	// Put with the pointee never written back on some incoming path.
	if es, ok := n.(*ast.ExprStmt); ok {
		if call, ok := es.X.(*ast.CallExpr); ok {
			if obj := poolPutArg(info, call); obj != nil {
				if _, unreset := facts[unresetPrefix+poolObjKey(obj)]; unreset {
					pass.Reportf(call.Pos(), "%s returned to the pool without writing the slice back; assign *%s = buf before Put or the grown buffer is lost", obj.Name(), obj.Name())
				}
			}
		}
	}

	// Store of a live pooled value into a struct field.
	if asg, ok := n.(*ast.AssignStmt); ok && len(asg.Lhs) == len(asg.Rhs) {
		for i := range asg.Lhs {
			sel, ok := ast.Unparen(asg.Lhs[i]).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if s, ok := info.Selections[sel]; !ok || s.Kind() != types.FieldVal {
				continue
			}
			id := rootIdent(asg.Rhs[i])
			if id == nil {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			if _, pooled := facts[pooledPrefix+poolObjKey(obj)]; pooled {
				pass.Reportf(asg.Pos(), "pooled %s stored in a field that outlives the call; the pool will hand the same value to another caller", obj.Name())
			}
		}
	}

	// Any mention of a variable already returned to the pool.
	inspectSkippingFuncLits(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if _, put := facts[putPrefix+poolObjKey(obj)]; put {
			pass.Reportf(id.Pos(), "use of %s after it was returned to the pool; the pool may already have handed it to another goroutine", id.Name)
		}
		return true
	})
}

// isPoolGet reports whether an expression is pool.Get() or a type
// assertion over it.
func isPoolGet(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return fn != nil && fn.FullName() == "(*sync.Pool).Get"
}

// poolPutArg returns the object passed to pool.Put(v), or nil if the call
// is not a Put of a plain variable.
func poolPutArg(info *types.Info, call *ast.CallExpr) types.Object {
	fn := calleeFunc(info, call)
	if fn == nil || fn.FullName() != "(*sync.Pool).Put" || len(call.Args) != 1 {
		return nil
	}
	id := rootIdent(call.Args[0])
	if id == nil {
		return nil
	}
	return info.Uses[id]
}

// assignedObj resolves the object an assignment's left-hand identifier
// binds (covering both := definitions and = uses).
func assignedObj(info *types.Info, lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isSlicePointer reports whether t is a pointer to a slice — the pooled
// buffer shape that needs an explicit write-back before Put.
func isSlicePointer(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	_, isSlice := p.Elem().Underlying().(*types.Slice)
	return isSlice
}
