package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// calleeFunc resolves the function or method a call statically dispatches
// to. It returns nil for calls through function values, built-ins and type
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified package call: pkg.Fn.
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pkgPathOf returns the import path of the package an object belongs to,
// or "" for universe-scope objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// pathMatches reports whether an import path's suffix matches the pattern,
// anchored at a path-segment boundary: pattern "internal/core" matches
// "arbor/internal/core" and "internal/core" but not "x/myinternal/core".
// This keeps analyzer scoping identical between the real module and
// testdata fixture trees.
func pathMatches(path string, re *regexp.Regexp) bool {
	return re.MatchString(path)
}

// segSuffix compiles a pattern matching import paths whose suffix is one
// of the given alternatives, at a segment boundary.
func segSuffix(alternatives string) *regexp.Regexp {
	return regexp.MustCompile(`(^|/)(` + alternatives + `)$`)
}

// rootIdent digs through index, slice, star and paren expressions to the
// base identifier of an expression, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprString renders a short dotted form of an expression (for diagnostic
// messages and as a lock identity key): "c.mu", "s.flightMu".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprString(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
		return x.Sel.Name
	case *ast.ParenExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.CallExpr:
		if s := exprString(x.Fun); s != "" {
			return s + "()"
		}
	case *ast.IndexExpr:
		if s := exprString(x.X); s != "" {
			return s + "[...]"
		}
	}
	return ""
}

// implementsError reports whether t (or *t) satisfies the error interface.
func implementsError(t types.Type) bool {
	errType, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType)
}

// isSentinelError reports whether the object is a package-level error
// variable named like a sentinel (ErrFoo).
func isSentinelError(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return false
	}
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	if !strings.HasPrefix(v.Name(), "Err") || len(v.Name()) < 4 {
		return false
	}
	r := v.Name()[3]
	if r < 'A' || r > 'Z' {
		return false
	}
	return implementsError(v.Type())
}

// funcDeclsByObj indexes a package's function declarations by their type
// objects, so analyzers can chase same-package calls to bodies.
func funcDeclsByObj(pkg *Package) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}

// inspectSkippingFuncLits walks the subtree rooted at n, calling fn for
// every node but not descending into function literals (which run on a
// different control path, usually a different goroutine).
func inspectSkippingFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n {
			return false
		}
		return fn(node)
	})
}
