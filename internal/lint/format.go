package lint

// verbForArgs parses a Printf-style format string and maps each consumed
// variadic argument index (0-based, counting from the first argument after
// the format string) to the verb character that formats it. Width and
// precision stars consume arguments and map to '*'. Explicit argument
// indexes (%[1]d) are honored. A trailing malformed verb is ignored.
func verbForArgs(format string) map[int]byte {
	out := make(map[int]byte)
	arg := 0
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			i++
			continue
		}
		// Flags.
		for i < len(format) && (format[i] == '+' || format[i] == '-' || format[i] == '#' ||
			format[i] == ' ' || format[i] == '0') {
			i++
		}
		// Explicit argument index: [n].
		if i < len(format) && format[i] == '[' {
			j := i + 1
			n := 0
			for j < len(format) && format[j] >= '0' && format[j] <= '9' {
				n = n*10 + int(format[j]-'0')
				j++
			}
			if j < len(format) && format[j] == ']' && n > 0 {
				arg = n - 1
				i = j + 1
			}
		}
		// Width.
		if i < len(format) && format[i] == '*' {
			out[arg] = '*'
			arg++
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
		}
		// Precision.
		if i < len(format) && format[i] == '.' {
			i++
			if i < len(format) && format[i] == '*' {
				out[arg] = '*'
				arg++
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					i++
				}
			}
		}
		if i < len(format) {
			out[arg] = format[i]
			arg++
			i++
		}
	}
	return out
}
