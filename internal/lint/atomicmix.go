package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// AtomicMix reports struct fields accessed both through the sync/atomic
// function API and through plain loads or stores. Mixing the two is a data
// race the race detector only catches when both sides happen to run under
// it: atomic.AddUint64(&c.hits, 1) on one goroutine and `c.hits` on
// another has no ordering at all. The repository's own counters use the
// method-based atomic.Uint64 types, which make plain access impossible —
// this check guards the function-based API that code acquires when ported
// in or written against older idioms.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "a field accessed via sync/atomic must never be accessed plainly elsewhere",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: fields whose address is taken as an argument to a
	// sync/atomic function. The selector nodes inside those calls are
	// exempt from the plain-access scan.
	atomicFields := make(map[types.Object]token.Pos)
	exempt := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || pkgPathOf(fn) != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				obj := s.Obj()
				if _, seen := atomicFields[obj]; !seen {
					atomicFields[obj] = sel.Pos()
				}
				exempt[sel] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: every other selection of those fields is a plain access.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			first, ok := atomicFields[s.Obj()]
			if !ok {
				return true
			}
			p := pass.Pkg.Fset.Position(first)
			pass.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic at %s:%d; a plain access here is a data race — use the atomic API for every access",
				s.Obj().Name(), filepath.Base(p.Filename), p.Line)
			return true
		})
	}
}
