package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseOne builds a minimal Package (no type info) for directive tests.
func parseOne(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Path: "p", Fset: fset, Files: []*ast.File{f}}
}

func TestIgnoreDirective(t *testing.T) {
	pkg := parseOne(t, `package p

//lint:ignore goleak worker drains on close
var a int

var b int //lint:ignore detrand,goleak seeded for the figure

var c int
`)
	ign := collectIgnores(pkg)
	if len(ign.malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", ign.malformed)
	}
	diag := func(line int, analyzer string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "p.go", Line: line}, Analyzer: analyzer}
	}
	// Line 3 holds the first directive; it covers lines 3 and 4.
	if !ign.suppresses(diag(4, "goleak")) {
		t.Error("directive above the line did not suppress")
	}
	if ign.suppresses(diag(4, "detrand")) {
		t.Error("directive suppressed an analyzer it does not name")
	}
	if ign.suppresses(diag(5, "goleak")) {
		t.Error("directive leaked past the line below it")
	}
	// Line 6 holds the end-of-line directive with two analyzers.
	if !ign.suppresses(diag(6, "detrand")) || !ign.suppresses(diag(6, "goleak")) {
		t.Error("end-of-line multi-analyzer directive did not suppress its own line")
	}
	if ign.suppresses(diag(8, "detrand")) {
		t.Error("suppression applied to an uncovered line")
	}
}

func TestIgnoreDirectiveMalformed(t *testing.T) {
	pkg := parseOne(t, `package p

//lint:ignore goleak
var a int

//lint:ignore
var b int
`)
	ign := collectIgnores(pkg)
	if len(ign.malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %v", len(ign.malformed), ign.malformed)
	}
	for _, d := range ign.malformed {
		if d.Analyzer != "directive" {
			t.Errorf("malformed directive attributed to %q, want \"directive\"", d.Analyzer)
		}
	}
	// A reason-less directive must not suppress anything.
	if ign.suppresses(Diagnostic{Pos: token.Position{Filename: "p.go", Line: 4}, Analyzer: "goleak"}) {
		t.Error("malformed directive still suppressed")
	}
}
