package lint

import (
	"go/ast"
	"go/types"
)

// Analyzer scopes, expressed as import-path suffixes so they hold for both
// the real module ("arbor/internal/client") and fixtures
// ("internal/client" under testdata).
var (
	obsWireScope = segSuffix(`internal/(client|rpc|replica|adapt|transport)`)
	wirePkgs     = segSuffix(`internal/(rpc|transport)`)
	obsPkg       = segSuffix(`internal/obs`)
)

// ObsWire reports exported entry points in the client, rpc and replica
// packages that send replica traffic but record no observability. PR 1
// established the discipline: every operation that touches the wire feeds a
// metric or an operation trace, so production incidents can be read off
// /metrics and /traces instead of reconstructed from logs. A new exported
// call path that dodges instrumentation silently un-observes part of the
// workload. The replica package entered the scope with the anti-entropy
// syncer: catch-up is replica-initiated wire traffic, so StartSync-style
// entry points carry the same obligation as client operations. The
// adaptation controller entered it with live migrations: a controller
// action that drove replica traffic without journaling or metrics would be
// exactly the unexplained reconfiguration the decision journal exists to
// rule out. The transport package entered with the pipelined TCP endpoint:
// its exported send paths are the last hop every operation shares, so an
// uninstrumented one blinds every metric above it.
//
// "Sends traffic" means (transitively, through same-package calls) invoking
// Call or Send on the rpc or transport packages; "records observability"
// means (transitively) referencing anything from internal/obs.
var ObsWire = &Analyzer{
	Name: "obswire",
	Doc:  "exported client/rpc/replica/adapt/transport entry points that touch the wire must be instrumented",
	Run:  runObsWire,
}

func runObsWire(pass *Pass) {
	if !pathMatches(pass.Pkg.Path, obsWireScope) {
		return
	}
	info := pass.Pkg.Info

	type facts struct {
		wire, obs bool
		calls     map[*types.Func]bool
	}
	all := make(map[*types.Func]*facts)
	decls := funcDeclsByObj(pass.Pkg)

	for fn, fd := range decls {
		f := &facts{calls: make(map[*types.Func]bool)}
		all[fn] = f
		if fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && pathMatches(pkgPathOf(obj), obsPkg) {
					f.obs = true
				}
			case *ast.SelectorExpr:
				if sel, ok := info.Selections[n]; ok && pathMatches(pkgPathOf(sel.Obj()), obsPkg) {
					f.obs = true
				}
			case *ast.CallExpr:
				callee := calleeFunc(info, n)
				if callee == nil {
					return true
				}
				cp := pkgPathOf(callee)
				if (callee.Name() == "Call" || callee.Name() == "Send") && pathMatches(cp, wirePkgs) {
					f.wire = true
				}
				if callee.Pkg() == pass.Pkg.Types {
					f.calls[callee] = true
				}
			}
			return true
		})
	}

	// Propagate wire and obs facts through the same-package call graph to
	// a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, f := range all {
			for callee := range f.calls {
				cf, ok := all[callee]
				if !ok {
					continue
				}
				if cf.wire && !f.wire {
					f.wire = true
					changed = true
				}
				if cf.obs && !f.obs {
					f.obs = true
					changed = true
				}
			}
		}
	}

	for fn, fd := range decls {
		if !fn.Exported() || !receiverExported(fn) {
			continue
		}
		f := all[fn]
		if f.wire && !f.obs {
			pass.Reportf(fd.Name.Pos(),
				"exported entry point %s sends replica traffic but records no metrics or trace; wire it into the obs instruments", fn.Name())
		}
	}
}

// receiverExported reports whether the function is package-level API: a
// plain function, or a method on an exported receiver type.
func receiverExported(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return true
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Exported()
}
