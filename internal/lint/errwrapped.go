package lint

import (
	"go/ast"
	"go/constant"
)

// ErrWrapped reports package sentinel errors (ErrTimeout, ErrInDoubt, …)
// passed to fmt.Errorf under a verb other than %w. Formatting a sentinel
// with %v or %s bakes its text into the message but severs the wrap chain,
// so errors.Is(err, ErrTimeout) silently stops matching — exactly the
// check the client's failure handling and the hedging engine rely on.
var ErrWrapped = &Analyzer{
	Name: "errwrapped",
	Doc:  "sentinel errors must be wrapped with %w so errors.Is keeps working",
	Run:  runErrWrapped,
}

func runErrWrapped(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic format string: nothing to check
			}
			verbs := verbForArgs(constant.StringVal(tv.Value))
			for i, arg := range call.Args[1:] {
				id := rootIdent(arg)
				if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
					id = sel.Sel
				}
				if id == nil || !isSentinelError(info.Uses[id]) {
					continue
				}
				verb, ok := verbs[i]
				if !ok || verb == 'w' {
					continue
				}
				pass.Reportf(arg.Pos(),
					"sentinel %s formatted with %%%c; use %%w so errors.Is(err, %s) still matches",
					id.Name, verb, id.Name)
			}
			return true
		})
	}
}
