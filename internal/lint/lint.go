// Package lint is a from-scratch static-analysis framework for the arbor
// repository, built on the Go standard library only (go/parser, go/types,
// go/importer — no x/tools). It exists because the protocol's correctness
// rests on invariants the compiler cannot see: read quorums must take one
// physical node from every physical level and write quorums all nodes of
// one level (the paper's bi-coterie, §3.1), the deterministic packages must
// stay seed-reproducible so paper figures regenerate bit-for-bit, and the
// hedging engine must never leak a loser goroutine.
//
// The framework has four parts: a package loader that walks the module
// and type-checks every package from source (load.go), a diagnostic engine
// with //lint:ignore suppression (this file, directive.go), a
// flow-sensitive layer — a per-function control-flow graph builder
// (cfg.go) and a forward dataflow framework over it (dataflow.go) — and
// the project-specific analyzers (quorumshape.go, goleak.go,
// errwrapped.go, detrand.go, lockscope.go, obswire.go, wireclosed.go,
// poolsafe.go, zerocopy.go, atomicmix.go). cmd/arborvet is the CLI
// driver; `make lint` and CI run it over the whole tree.
//
// Analyzers are tested against fixture packages under testdata/src/<name>
// with `// want "regexp"` expectations, mirroring x/tools' analysistest.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a single type-checked
// package and reports findings through the pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, located in file coordinates.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic the way compilers do, so editors can jump
// to it: path:line:col: message [analyzer].
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// RunAnalyzers runs every analyzer over every package, applies
// //lint:ignore suppressions, and returns the surviving diagnostics sorted
// by position. Malformed directives are themselves reported (analyzer
// "directive"), so a suppression can never silently rot.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ign := collectIgnores(pkg)
		diags = append(diags, ign.malformed...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report: func(d Diagnostic) {
					if !ign.suppresses(d) {
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// Nested constructs can make one analyzer visit the same node twice
	// (e.g. quorumshape analyzing both an outer and an inner loop); collapse
	// identical findings.
	dedup := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		dedup = append(dedup, d)
	}
	return dedup
}
