package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// detRandScope names the packages that must stay seed-reproducible: the
// protocol math, figure inputs, the chaos-simulation harness, and the
// adaptation controller. Their outputs regenerate the paper's tables and
// figures — and, for sim, replay failure reproducers — so two runs with the
// same seed must agree bit-for-bit. The adaptation controller entered the
// scope with its decision journal: the harness replays controller decisions
// bit-for-bit, so the controller must draw time only from its injected
// clock and never from global randomness. wire and transport entered with
// the binary codec era: encode→decode→encode is a byte-level fixpoint only
// if encoding never consults a clock, and the in-memory network's fault
// injection replays chaos schedules from its seeded source. scenario
// entered with the .arb corpus: compiling a scenario must lower onto the
// same sim.Input every time, or the golden trace hashes and nightly
// replays drift.
var detRandScope = segSuffix(`internal/(core|tree|quorum|analysis|lp|sim|adapt|wire|transport|scenario)`)

// DetRand reports nondeterminism inside the deterministic packages:
// wall-clock reads (time.Now), the global math/rand source (package-level
// rand.Intn etc., whose sequence depends on other callers — seeded
// *rand.Rand values are fine), and map iteration whose order leaks into an
// accumulated slice without a later sort.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "deterministic packages must not consult wall clocks, global randomness or map order",
	Run:  runDetRand,
}

func runDetRand(pass *Pass) {
	if !pathMatches(pass.Pkg.Path, detRandScope) {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetRandCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapOrderLeaks(pass, n.Body)
				}
			case *ast.FuncLit:
				checkMapOrderLeaks(pass, n.Body)
			}
			return true
		})
	}
}

func checkDetRandCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil {
		return
	}
	switch pkgPathOf(fn) {
	case "time":
		if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "time.Now in deterministic package %s breaks seed reproducibility; thread a clock or timestamp in", pass.Pkg.Types.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewPCG, …) build seeded local
		// generators — the deterministic idiom, not a global-source draw.
		if strings.HasPrefix(fn.Name(), "New") {
			return
		}
		if fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "global rand.%s in deterministic package %s shares the process-wide source; use a seeded *rand.Rand", fn.Name(), pass.Pkg.Types.Name())
		}
	}
}

// checkMapOrderLeaks flags `for … range m { acc = append(acc, …) }` where m
// is a map and acc is declared outside the loop, unless acc is later passed
// to a sort/slices call in the same function — the standard
// collect-then-sort idiom is deterministic, a bare collect is not.
// Function literals are analyzed separately, so nested ones are skipped.
func checkMapOrderLeaks(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	type leak struct {
		rng *ast.RangeStmt
		acc types.Object
	}
	var leaks []leak
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		inspectSkippingFuncLits(rng.Body, func(m ast.Node) bool {
			asg, ok := m.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				return true
			}
			call, ok := asg.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" || info.Uses[id] != types.Universe.Lookup("append") {
				return true
			}
			lhs := rootIdent(asg.Lhs[0])
			if lhs == nil {
				return true
			}
			obj := info.Uses[lhs]
			if obj == nil || (obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()) {
				return true // accumulator lives inside the loop
			}
			leaks = append(leaks, leak{rng: rng, acc: obj})
			return true
		})
		return true
	})
	for _, lk := range leaks {
		if sortedAfter(pass, body, lk.acc, lk.rng.End()) {
			continue
		}
		pass.Reportf(lk.rng.For, "map iteration order leaks into %s; sort it (sort/slices) before use or iterate sorted keys", lk.acc.Name())
	}
}

// sortedAfter reports whether obj is passed to a sort or slices function
// after pos within the function body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	info := pass.Pkg.Info
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if p := pkgPathOf(fn); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
