package lint

import (
	"go/ast"
	"strings"
)

// A //lint:ignore directive suppresses diagnostics. The syntax is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// and it applies to findings on the directive's own line and on the line
// immediately below it (so it can ride at the end of the offending line or
// sit on its own line above). The reason is mandatory: a suppression
// without a recorded justification is reported as a finding itself.
const ignorePrefix = "//lint:ignore"

// ignoreSet is the per-package suppression table.
type ignoreSet struct {
	// byLine maps file name and line to the analyzer names suppressed
	// there.
	byLine map[string]map[int]map[string]bool
	// malformed collects directives missing an analyzer list or a reason.
	malformed []Diagnostic
}

// collectIgnores scans a package's comments for ignore directives.
func collectIgnores(pkg *Package) *ignoreSet {
	ign := &ignoreSet{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ign.add(pkg, c)
			}
		}
	}
	return ign
}

func (ign *ignoreSet) add(pkg *Package, c *ast.Comment) {
	if !strings.HasPrefix(c.Text, ignorePrefix) {
		return
	}
	pos := pkg.Fset.Position(c.Pos())
	rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
	names, reason, _ := strings.Cut(rest, " ")
	if names == "" || strings.TrimSpace(reason) == "" {
		ign.malformed = append(ign.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: "directive",
			Message:  "malformed //lint:ignore: need \"//lint:ignore <analyzer>[,...] <reason>\"",
		})
		return
	}
	lines := ign.byLine[pos.Filename]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		ign.byLine[pos.Filename] = lines
	}
	for _, target := range []int{pos.Line, pos.Line + 1} {
		set := lines[target]
		if set == nil {
			set = make(map[string]bool)
			lines[target] = set
		}
		for _, n := range strings.Split(names, ",") {
			set[strings.TrimSpace(n)] = true
		}
	}
}

// suppresses reports whether the diagnostic is covered by a directive.
func (ign *ignoreSet) suppresses(d Diagnostic) bool {
	lines, ok := ign.byLine[d.Pos.Filename]
	if !ok {
		return false
	}
	set := lines[d.Pos.Line]
	return set[d.Analyzer] || set["all"]
}
