package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the control-flow half of the lint framework: a per-function
// CFG builder the flow-sensitive analyzers (poolsafe, zerocopy, lockscope,
// goleak) share. It is deliberately small — blocks hold the statements and
// expressions of straight-line runs in evaluation order, edges follow Go's
// control constructs — and stdlib-only, like the rest of the framework.
//
// Supported control flow: if/else chains, for (all three clauses), range,
// switch and type switch (with fallthrough), select, labeled statements
// with labeled break/continue, goto, defer and return. Calls to panic,
// os.Exit, runtime.Goexit and log.Fatal* terminate their block; any other
// call is assumed to fall through.
//
// Function literals are boundaries: a FuncLit appearing inside a body is
// recorded as an opaque expression node of the enclosing block, and its own
// body gets its own CFG when the analyzer asks for one. Deferred calls do
// not run where they appear; the builder records them in order on the CFG
// and appends them to the Exit block's node list, which matches how the
// analyzers reason about them ("runs at every function exit").

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks in creation order; Blocks[0] is the entry block.
	Blocks []*Block
	// Entry is the function's entry block.
	Entry *Block
	// Exit is the single virtual exit block every return/fallthrough path
	// reaches. Deferred call expressions are appended to its node list in
	// reverse declaration order (LIFO, the execution order).
	Exit *Block
	// Defers lists the deferred calls in declaration order.
	Defers []*ast.DeferStmt
}

// Block is one basic block: a straight-line run of AST nodes with a single
// entry and (up to the successor fan-out) a single exit.
type Block struct {
	// Index is the block's position in CFG.Blocks.
	Index int
	// Kind names what created the block ("entry", "exit", "if.then",
	// "for.body", "select.case", …) so tests can assert structure.
	Kind string
	// Nodes holds the block's statements and controlling expressions
	// (an if condition, a switch tag, a range operand) in evaluation
	// order.
	Nodes []ast.Node
	// Succs and Preds are the block's edges.
	Succs []*Block
	Preds []*Block
}

// addSucc links b -> s once.
func (b *Block) addSucc(s *Block) {
	for _, x := range b.Succs {
		if x == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// String renders the graph compactly for tests and debugging:
//
//	b0(entry) -> b1; b1(for.cond) -> b2 b3; …
func (c *CFG) String() string {
	var sb strings.Builder
	for i, b := range c.Blocks {
		if i > 0 {
			sb.WriteString("; ")
		}
		fmt.Fprintf(&sb, "b%d(%s) ->", b.Index, b.Kind)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
	}
	return sb.String()
}

// Reachable returns the set of blocks reachable from the entry block.
func (c *CFG) Reachable() map[*Block]bool {
	seen := make(map[*Block]bool)
	var visit func(*Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(c.Entry)
	return seen
}

// cfgBuilder carries the state of one build.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminating
	// statement (return, goto, panic) until a new block starts.
	cur *Block
	// breakTargets / continueTargets map labels to jump targets; the empty
	// label is the innermost enclosing loop/switch/select.
	breakTargets    map[string]*Block
	continueTargets map[string]*Block
	// labels maps label names to the blocks goto jumps to; forward gotos
	// record fixups.
	labels     map[string]*Block
	gotoFixups map[string][]*Block
	// pendingLabel threads a loop/switch/select label from LabeledStmt to
	// the construct builder so labeled break/continue resolve.
	pendingLabel string
	// isTerminatingCall reports calls that never return (panic, os.Exit,
	// runtime.Goexit), ending their block toward exit.
	isTerminatingCall func(*ast.CallExpr) bool
}

// BuildCFG constructs the CFG of one function body. pass may be nil (for
// tests over bare syntax); when given, calls to panic, os.Exit and
// runtime.Goexit terminate their block.
func BuildCFG(body *ast.BlockStmt, pass *Pass) *CFG {
	var terminating func(*ast.CallExpr) bool
	if pass != nil {
		info := pass.Pkg.Info
		terminating = func(call *ast.CallExpr) bool {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if bi, ok := info.Uses[id].(*types.Builtin); ok && bi.Name() == "panic" {
					return true
				}
			}
			if fn := calleeFunc(info, call); fn != nil {
				switch fn.FullName() {
				case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
					return true
				}
			}
			return false
		}
	} else {
		terminating = func(call *ast.CallExpr) bool {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			return ok && id.Name == "panic"
		}
	}

	b := &cfgBuilder{
		cfg:               &CFG{},
		breakTargets:      make(map[string]*Block),
		continueTargets:   make(map[string]*Block),
		labels:            make(map[string]*Block),
		gotoFixups:        make(map[string][]*Block),
		isTerminatingCall: terminating,
	}
	entry := b.newBlock("entry")
	b.cfg.Entry = entry
	b.cur = entry
	exit := b.newBlock("exit")
	b.cfg.Exit = exit
	b.stmtList(body.List)
	if b.cur != nil {
		b.cur.addSucc(exit)
	}
	// Unresolved forward gotos (label declared after use but never built —
	// malformed code) fall to exit so the graph stays connected.
	for _, srcs := range b.gotoFixups {
		for _, s := range srcs {
			s.addSucc(exit)
		}
	}
	// Deferred calls run at function exit, last-in first-out.
	for i := len(b.cfg.Defers) - 1; i >= 0; i-- {
		exit.Nodes = append(exit.Nodes, b.cfg.Defers[i].Call)
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock finishes the current block (falling through to next) and makes
// next current.
func (b *cfgBuilder) startBlock(next *Block) {
	if b.cur != nil {
		b.cur.addSucc(next)
	}
	b.cur = next
}

// emit appends a node to the current block, creating an unreachable
// continuation block if control already terminated.
func (b *cfgBuilder) emit(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// stmt translates one statement into blocks and edges.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Cond)
		cond := b.cur
		then := b.newBlock("if.then")
		var after *Block
		cond.addSucc(then)
		b.cur = then
		b.stmtList(s.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		hasElse := s.Else != nil
		if hasElse {
			els := b.newBlock("if.else")
			cond.addSucc(els)
			b.cur = els
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		after = b.newBlock("if.after")
		if thenEnd != nil {
			thenEnd.addSucc(after)
		}
		if hasElse {
			if elseEnd != nil {
				elseEnd.addSucc(after)
			}
		} else {
			cond.addSucc(after)
		}
		b.cur = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock("for.head")
		b.startBlock(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		head.addSucc(body)
		if s.Cond != nil {
			head.addSucc(after)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			post.addSucc(head)
		}
		b.withLoop(after, post, func() {
			b.cur = body
			b.stmtList(s.Body.List)
			if b.cur != nil {
				b.cur.addSucc(post)
			}
		})
		// An infinite for with no break never reaches after; keep the
		// block (it may still be a break target) — unreferenced it just
		// stays predecessor-free.
		b.cur = after

	case *ast.RangeStmt:
		b.emit(s.X)
		head := b.newBlock("range.head")
		b.startBlock(head)
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		head.addSucc(body)
		head.addSucc(after)
		b.withLoop(after, head, func() {
			b.cur = body
			b.stmtList(s.Body.List)
			if b.cur != nil {
				b.cur.addSucc(head)
			}
		})
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.emit(s.Tag)
		}
		b.buildSwitch(s.Body, "switch")

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.emit(s.Assign)
		b.buildSwitch(s.Body, "typeswitch")

	case *ast.SelectStmt:
		b.buildSelect(s)

	case *ast.LabeledStmt:
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			b.stmt(inner)
			b.pendingLabel = ""
		default:
			// A labeled plain statement: a goto target.
			target := b.newBlock("label." + s.Label.Name)
			b.startBlock(target)
			b.labels[s.Label.Name] = target
			for _, src := range b.gotoFixups[s.Label.Name] {
				src.addSucc(target)
			}
			delete(b.gotoFixups, s.Label.Name)
			b.stmt(s.Stmt)
		}

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t, ok := b.breakTargets[label]; ok && b.cur != nil {
				b.cur.addSucc(t)
			}
			b.cur = nil
		case token.CONTINUE:
			if t, ok := b.continueTargets[label]; ok && b.cur != nil {
				b.cur.addSucc(t)
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				if t, ok := b.labels[label]; ok {
					b.cur.addSucc(t)
				} else {
					b.gotoFixups[label] = append(b.gotoFixups[label], b.cur)
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by buildSwitch via fallthroughNext; emit marks it.
			b.emit(s)
		}

	case *ast.ReturnStmt:
		b.emit(s)
		if b.cur != nil {
			b.cur.addSucc(b.cfg.Exit)
		}
		b.cur = nil

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		// Argument expressions evaluate here; record the whole stmt so
		// analyzers see the defer site in flow order too.
		b.emit(s)

	case *ast.ExprStmt:
		b.emit(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.isTerminatingCall(call) {
			if b.cur != nil {
				b.cur.addSucc(b.cfg.Exit)
			}
			b.cur = nil
		}

	case *ast.GoStmt:
		// The call's function and argument expressions evaluate here; the
		// body runs on another goroutine and is analyzed separately.
		b.emit(s)

	default:
		// Assignments, declarations, sends, inc/dec, empty statements:
		// straight-line nodes.
		b.emit(s)
	}
}

// buildSwitch translates a (type) switch: every case clause branches from
// the head, fallthrough chains to the next clause, break (and clause end)
// goes to the after block.
func (b *cfgBuilder) buildSwitch(body *ast.BlockStmt, kind string) {
	head := b.cur
	if head == nil {
		head = b.newBlock(kind + ".head")
		b.cur = head
	}
	after := b.newBlock(kind + ".after")
	label := b.takeLabel()
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock(kind + ".case")
	}
	hasDefault := false
	for i, cc := range clauses {
		head.addSucc(blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		head.addSucc(after)
	}
	b.withBreak(label, after, func() {
		for i, cc := range clauses {
			b.cur = blocks[i]
			for _, e := range cc.List {
				blocks[i].Nodes = append(blocks[i].Nodes, e)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				// fallthrough must be the final statement; detect it.
				if n := len(cc.Body); n > 0 {
					if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(blocks) {
						b.cur.addSucc(blocks[i+1])
						b.cur = nil
						continue
					}
				}
				b.cur.addSucc(after)
				b.cur = nil
			}
		}
	})
	b.cur = after
}

// buildSelect translates a select: each comm clause branches from the head;
// the comm operation (send or receive) is the clause block's first node. A
// select with no default blocks until some case fires; the head block gets
// a synthetic empty-body SelectStmt marker at the select's position so flow
// analyzers (lockscope) can see the blocking point without re-walking the
// clause bodies, which live in their own blocks.
func (b *cfgBuilder) buildSelect(s *ast.SelectStmt) {
	head := b.cur
	if head == nil {
		head = b.newBlock("select.head")
		b.cur = head
	}
	blocking := true
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			blocking = false
		}
	}
	if blocking {
		head.Nodes = append(head.Nodes, &ast.SelectStmt{Select: s.Select, Body: &ast.BlockStmt{}})
	}
	after := b.newBlock("select.after")
	label := b.takeLabel()
	b.withBreak(label, after, func() {
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock("select.case")
			head.addSucc(blk)
			b.cur = blk
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.cur.addSucc(after)
				b.cur = nil
			}
		}
	})
	b.cur = after
}

// withLoop runs body with break/continue targets registered for the loop,
// under the pending label if any.
func (b *cfgBuilder) withLoop(brk, cont *Block, body func()) {
	label := b.takeLabel()
	savedB, hadB := b.breakTargets[""]
	savedC, hadC := b.continueTargets[""]
	b.breakTargets[""] = brk
	b.continueTargets[""] = cont
	if label != "" {
		b.breakTargets[label] = brk
		b.continueTargets[label] = cont
	}
	body()
	if hadB {
		b.breakTargets[""] = savedB
	} else {
		delete(b.breakTargets, "")
	}
	if hadC {
		b.continueTargets[""] = savedC
	} else {
		delete(b.continueTargets, "")
	}
	if label != "" {
		delete(b.breakTargets, label)
		delete(b.continueTargets, label)
	}
}

// withBreak runs body with a break target (switch/select) registered.
func (b *cfgBuilder) withBreak(label string, brk *Block, body func()) {
	saved, had := b.breakTargets[""]
	b.breakTargets[""] = brk
	if label != "" {
		b.breakTargets[label] = brk
	}
	body()
	if had {
		b.breakTargets[""] = saved
	} else {
		delete(b.breakTargets, "")
	}
	if label != "" {
		delete(b.breakTargets, label)
	}
}

// takeLabel consumes the pending construct label.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// sortedBlockEdges returns "i->j" edge strings sorted, for tests.
func (c *CFG) sortedBlockEdges() []string {
	var out []string
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			out = append(out, fmt.Sprintf("%d->%d", b.Index, s.Index))
		}
	}
	sort.Strings(out)
	return out
}
