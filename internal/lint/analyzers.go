package lint

// All returns every registered analyzer, in stable order. Each one guards
// an invariant of the protocol or an engineering rule of this repository;
// DESIGN.md's "Invariants as analyzers" section documents the mapping.
func All() []*Analyzer {
	return []*Analyzer{
		QuorumShape,
		GoLeak,
		ErrWrapped,
		DetRand,
		LockScope,
		ObsWire,
		WireClosed,
		PoolSafe,
		ZeroCopy,
		AtomicMix,
	}
}

// ByName resolves a comma-separated selection against the registry.
func ByName(names []string) ([]*Analyzer, bool) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, false
		}
		out = append(out, a)
	}
	return out, true
}
