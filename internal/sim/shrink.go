package sim

import "arbor/internal/cluster"

// Shrink minimizes a failing input with delta debugging: first over the
// fault events, then over the workload ops, then the events once more
// (removing ops often unlocks further event removals). Ops keep their
// original Index, so event ticks and generated write values stay aligned
// however much of the stream is cut away. The result still fails — every
// candidate is re-executed — and is returned unchanged if the input does
// not fail to begin with.
func Shrink(in Input) Input {
	fails := func(c Input) bool {
		res, err := Execute(c)
		return err == nil && res.Failed()
	}
	if !fails(in) {
		return in
	}
	shrinkEvents := func(in Input) Input {
		in.Events = shrinkSlice(in.Events, func(evs []cluster.Event) bool {
			c := in
			c.Events = evs
			return fails(c)
		})
		return in
	}
	in = shrinkEvents(in)
	in.Ops = shrinkSlice(in.Ops, func(ops []OpSpec) bool {
		c := in
		c.Ops = ops
		return fails(c)
	})
	return shrinkEvents(in)
}

// shrinkSlice is ddmin: it partitions items into n chunks and tries
// dropping one chunk at a time, re-running the oracle on each candidate;
// on success it restarts with the smaller slice, otherwise it doubles the
// granularity until chunks are single elements. The returned slice still
// satisfies fails (assuming the input did).
func shrinkSlice[T any](items []T, fails func([]T) bool) []T {
	n := 2
	for len(items) > 1 && n <= len(items) {
		chunk := (len(items) + n - 1) / n
		reduced := false
		for start := 0; start < len(items); start += chunk {
			cand := make([]T, 0, len(items))
			cand = append(cand, items[:start]...)
			if start+chunk < len(items) {
				cand = append(cand, items[start+chunk:]...)
			}
			if fails(cand) {
				items = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(items) {
				break
			}
			n *= 2
			if n > len(items) {
				n = len(items)
			}
		}
	}
	if len(items) == 1 && fails(nil) {
		return nil
	}
	return items
}
