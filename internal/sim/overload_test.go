package sim

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"arbor/internal/cluster"
)

// overloadInput builds a calm run (no generated faults) with the whole
// first physical level saturated for a mid-run window: every read loses its
// level-0 candidate and every write loses version discovery, so operations
// in the window fail with the typed overload error and the replicas rack up
// sheds. The window closes before the run ends and the harness disarms
// overload faults before final judgment, so the checker must stay green.
func overloadInput(t *testing.T, seed int64) Input {
	t.Helper()
	cfg := testConfig(seed)
	cfg.Faults = -1
	in, err := BuildInput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := cluster.ParseSchedule("5ms:saturate=1,2,3;20ms:unsaturate=1,2,3")
	if err != nil {
		t.Fatal(err)
	}
	in.Events = append(in.Events, sched...)
	sort.SliceStable(in.Events, func(i, j int) bool { return in.Events[i].At < in.Events[j].At })
	return in
}

// TestBuildInputOverloadEvents pins the Config.Overload generator: the
// derived stretch always closes its saturate window with a matching
// unsaturate, pairs any drain with a later recovery, and — because it
// draws from the tail of the fault rng — never reshuffles the base
// schedule the same seed generates with overload off.
func TestBuildInputOverloadEvents(t *testing.T) {
	base := testConfig(3)
	over := base
	over.Overload = true

	plain, err := BuildInput(base)
	if err != nil {
		t.Fatal(err)
	}
	in, err := BuildInput(over)
	if err != nil {
		t.Fatal(err)
	}

	var sat, unsat, drain, recovered int
	overOnly := in.Events[:0:0]
	for _, ev := range in.Events {
		if len(ev.Saturate) > 0 {
			sat++
			overOnly = append(overOnly, ev)
		}
		if len(ev.Unsaturate) > 0 {
			unsat++
			overOnly = append(overOnly, ev)
		}
		if len(ev.Drain) > 0 {
			drain++
			overOnly = append(overOnly, ev)
		}
	}
	if sat != 1 || unsat != 1 {
		t.Fatalf("overload stretch = %d saturate / %d unsaturate windows, want exactly 1/1", sat, unsat)
	}
	if !reflect.DeepEqual(overOnly[0].Saturate, overOnly[1].Unsaturate) || overOnly[0].At >= overOnly[1].At {
		t.Errorf("saturate window %v@%v not closed by matching unsaturate %v@%v",
			overOnly[0].Saturate, overOnly[0].At, overOnly[1].Unsaturate, overOnly[1].At)
	}
	if drain > 0 {
		for _, ev := range in.Events {
			if len(ev.Recover) > 0 || len(ev.RecoverSync) > 0 {
				recovered++
			}
		}
		if recovered == 0 {
			t.Error("drain generated without any recovery event")
		}
	}
	// saturate + unsaturate + (drain + its recovery) ride on top of the
	// untouched base schedule.
	if got, want := len(in.Events), len(plain.Events)+2+2*drain; got != want {
		t.Errorf("overload run has %d events, want %d (base %d + overload stretch)", got, want, len(plain.Events))
	}
}

func TestSimOverloadShedsCleanly(t *testing.T) {
	res, err := Execute(overloadInput(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Sheds == 0 {
		t.Error("saturated window produced no sheds")
	}
	if res.Overloaded == 0 {
		t.Error("no operation was classified as overloaded despite a fully-shedding level")
	}
	if res.Overloaded > res.Failures {
		t.Errorf("Overloaded = %d exceeds Failures = %d (it must be a subset)", res.Overloaded, res.Failures)
	}
	if len(res.Violations) > 0 {
		t.Errorf("overload sheds are clean failures but the checker found %d violations (first: %v)",
			len(res.Violations), res.Violations[0])
	}
	if !strings.Contains(strings.Join(res.Trace, "\n"), "-> overloaded") {
		t.Error("trace never recorded an overloaded outcome")
	}
	t.Logf("%d ops: %d replica sheds, %d ops overloaded, %d failed total, %d violations",
		res.OpsRun, res.Sheds, res.Overloaded, res.Failures, len(res.Violations))
}

func TestSimOverloadDeterministic(t *testing.T) {
	in := overloadInput(t, 5)
	r1, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Trace, r2.Trace) {
		t.Errorf("overload traces differ between identical runs:\nrun1:\n%s\nrun2:\n%s",
			strings.Join(r1.Trace, "\n"), strings.Join(r2.Trace, "\n"))
	}
	if r1.Sheds != r2.Sheds || r1.Overloaded != r2.Overloaded {
		t.Errorf("overload accounting differs: (%d, %d) vs (%d, %d)",
			r1.Sheds, r1.Overloaded, r2.Sheds, r2.Overloaded)
	}
}
