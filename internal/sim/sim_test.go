package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"arbor/internal/tree"
)

// testConfig keeps runs small enough for the tier-1 suite while still
// exercising faults. The 30ms timeout leaves headroom over in-memory
// delivery so loaded CI machines don't produce spurious unavailability.
func testConfig(seed int64) Config {
	return Config{
		Seed:    seed,
		Ops:     30,
		Faults:  4,
		Keys:    3,
		Clients: 2,
		Timeout: 30 * time.Millisecond,
		LockTTL: 500 * time.Millisecond,
	}
}

func TestProfileReadFraction(t *testing.T) {
	cases := []struct {
		p    Profile
		want float64
		ok   bool
	}{
		{"", 0.5, true},
		{ProfileBalanced, 0.5, true},
		{ProfileMostlyRead, 0.9, true},
		{ProfileMostlyWrite, 0.1, true},
		{Profile("bogus"), 0, false},
	}
	for _, c := range cases {
		got, err := c.p.ReadFraction()
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ReadFraction(%q) = %v, %v; want %v, ok=%v", c.p, got, err, c.want, c.ok)
		}
	}
}

func TestBuildInputDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Ops: 50, Faults: 8}
	a, err := BuildInput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildInput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("BuildInput is not deterministic for a fixed config")
	}
	if len(a.Ops) != 50 || len(a.Events) != 8 {
		t.Errorf("got %d ops, %d events; want 50, 8", len(a.Ops), len(a.Events))
	}
}

// TestSimDeterministic is the harness's core promise: executing the same
// input twice yields the identical op-by-op trace and verdict.
func TestSimDeterministic(t *testing.T) {
	in, err := BuildInput(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Trace, r2.Trace) {
		t.Errorf("traces differ between identical runs:\nrun1:\n%s\nrun2:\n%s",
			strings.Join(r1.Trace, "\n"), strings.Join(r2.Trace, "\n"))
	}
	if !reflect.DeepEqual(r1.Violations, r2.Violations) {
		t.Errorf("verdicts differ: %v vs %v", r1.Violations, r2.Violations)
	}
}

// TestSimSmoke runs a short bounded campaign on the real protocol and
// expects every invariant to hold.
func TestSimSmoke(t *testing.T) {
	rep, err := Campaign(testConfig(1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("campaign found a violation (run %d, seed %d):\n%v\nreproducer:\n%s",
			rep.Failure.Run, rep.Failure.Seed, rep.Failure.Violations, rep.Failure.Repro.Format())
	}
	if rep.Runs != 2 || rep.OpsExecuted == 0 {
		t.Errorf("report = %+v, want 2 runs with ops executed", rep)
	}
}

// TestSimFindsInjectedWALBug arms the deliberate durability bug (restarts
// discard the journals) and requires the campaign to catch it, shrink the
// schedule to a handful of events, and reproduce it from the textual
// reproducer.
func TestSimFindsInjectedWALBug(t *testing.T) {
	cfg := testConfig(1)
	cfg.SkipWALReplay = true
	cfg.Faults = 5
	rep, err := Campaign(cfg, 15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure == nil {
		t.Fatal("campaign missed the injected WAL-replay bug")
	}
	if n := len(rep.Failure.Input.Events); n > 5 {
		t.Errorf("shrunk schedule has %d events, want ≤ 5: %q", n, rep.Failure.Repro.Schedule)
	}
	restarts := 0
	for _, ev := range rep.Failure.Input.Events {
		if ev.Restart {
			restarts++
		}
	}
	if restarts == 0 {
		t.Errorf("shrunk schedule %q kept no restart event, but the bug needs one", rep.Failure.Repro.Schedule)
	}

	parsed, err := ParseReproducer(rep.Failure.Repro.Format())
	if err != nil {
		t.Fatalf("parse reproducer: %v\n%s", err, rep.Failure.Repro.Format())
	}
	in, err := parsed.Input()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Errorf("replayed reproducer shows no violation:\n%s", rep.Failure.Repro.Format())
	}
}

func TestReproducerRoundTrip(t *testing.T) {
	in, err := BuildInput(testConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	in.Ops = in.Ops[5:20] // pretend the shrinker cut the stream down
	r := in.Reproducer()
	parsed, err := ParseReproducer(r.Format())
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, r.Format())
	}
	if !reflect.DeepEqual(r, parsed) {
		t.Errorf("reproducer round-trip mismatch:\n%+v\n%+v", r, parsed)
	}
	in2, err := parsed.Input()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Ops, in2.Ops) {
		t.Errorf("ops differ after round trip:\n%+v\n%+v", in.Ops, in2.Ops)
	}
	if !reflect.DeepEqual(in.Events, in2.Events) {
		t.Errorf("events differ after round trip:\n%+v\n%+v", in.Events, in2.Events)
	}
}

// TestReproducerCarriesLatencyAndZipf: the scenario-lowered fields —
// plain-workload skew and the full network geometry — survive the
// textual round trip, so a geo scenario's failure replays with its
// delays intact.
func TestReproducerCarriesLatencyAndZipf(t *testing.T) {
	cfg := testConfig(3)
	cfg.Zipf = 1.4
	cfg.Latency = time.Millisecond
	cfg.Jitter = 500 * time.Microsecond
	cfg.JitterDist = "pareto"
	cfg.SiteRTT = map[tree.SiteID]time.Duration{1: 2 * time.Millisecond, 5: 8 * time.Millisecond}
	in, err := BuildInput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := in.Reproducer()
	text := r.Format()
	for _, want := range []string{"zipf 1.4", "latency 1ms 500µs pareto", "sitertt 1=2ms,5=8ms"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted reproducer missing %q:\n%s", want, text)
		}
	}
	parsed, err := ParseReproducer(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if !reflect.DeepEqual(r, parsed) {
		t.Errorf("reproducer round-trip mismatch:\n%+v\n%+v", r, parsed)
	}
	in2, err := parsed.Input()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Ops, in2.Ops) {
		t.Error("zipf-skewed op stream differs after round trip")
	}
	if in2.Cfg.JitterDist != "pareto" || !reflect.DeepEqual(in2.Cfg.SiteRTT, cfg.SiteRTT) {
		t.Errorf("network geometry lost: %+v", in2.Cfg)
	}
}

func TestParseReproducerRejectsGarbage(t *testing.T) {
	for _, text := range []string{
		"",                      // missing spec
		"spec 1-3\nwobble 3",    // unknown directive
		"spec 1-3\nbug eat-ram", // unknown bug
		"spec 1-3\nseed zz",     // bad integer
	} {
		if _, err := ParseReproducer(text); err == nil {
			t.Errorf("ParseReproducer(%q) accepted garbage", text)
		}
	}
}

func TestShrinkSliceMinimizes(t *testing.T) {
	items := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	calls := 0
	fails := func(s []int) bool {
		calls++
		has3, has7 := false, false
		for _, v := range s {
			has3 = has3 || v == 3
			has7 = has7 || v == 7
		}
		return has3 && has7
	}
	got := shrinkSlice(items, fails)
	if !reflect.DeepEqual(got, []int{3, 7}) {
		t.Errorf("shrinkSlice = %v, want [3 7] (%d oracle calls)", got, calls)
	}
	if got := shrinkSlice([]int{5}, func(s []int) bool { return true }); got != nil {
		t.Errorf("shrinkSlice single removable item = %v, want nil", got)
	}
	if got := shrinkSlice([]int{5}, func(s []int) bool { return len(s) == 1 }); len(got) != 1 {
		t.Errorf("shrinkSlice single required item = %v, want [5]", got)
	}
}
