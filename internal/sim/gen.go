package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"arbor/internal/cluster"
	"arbor/internal/tree"
	"arbor/internal/workload"
)

// faultSeedSalt decorrelates the fault stream from the workload stream so
// the two generators don't mirror each other at small seeds.
const faultSeedSalt = 0x5deece66d

// BuildInput derives the run's concrete op stream and fault schedule from
// the configuration. The same Config always yields the same Input.
func BuildInput(cfg Config) (Input, error) {
	cfg = cfg.withDefaults()
	ops, err := buildOps(cfg)
	if err != nil {
		return Input{}, err
	}
	events, err := buildEvents(cfg)
	if err != nil {
		return Input{}, err
	}
	events = append(events, phaseMarkers(cfg)...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return Input{Cfg: cfg, Ops: ops, Events: events}, nil
}

// phaseMarkers derives the workload= marker events from the phase list:
// one at each phase's first tick. The markers carry no cluster action —
// the op stream itself is generated phase-aware — but they make the shift
// visible in traces and keep the schedule self-describing. The op stream
// deliberately does NOT depend on these events: the shrinker may drop
// markers while minimizing a failure without changing the workload.
func phaseMarkers(cfg Config) []cluster.Event {
	var out []cluster.Event
	tick := 0
	for _, p := range cfg.Phases {
		profile := p.Profile
		if profile == "" {
			profile = ProfileBalanced
		}
		out = append(out, cluster.Event{
			At:       time.Duration(tick) * time.Millisecond,
			Workload: string(profile),
		})
		tick += p.Ops
	}
	return out
}

// opSource is the common face of the plain and phased generators.
type opSource interface {
	Next() workload.Op
}

// buildOps generates the full operation stream. Write values encode the
// seed and op index, so they are reconstructible from a Reproducer's
// keep-list without shipping payloads. With Phases set, the stream is
// phase-aware: each phase draws from its own profile, with a per-phase
// salted seed so consecutive phases don't mirror each other's key picks.
func buildOps(cfg Config) ([]OpSpec, error) {
	var gen opSource
	if len(cfg.Phases) > 0 {
		phases := make([]workload.Phase, len(cfg.Phases))
		for i, p := range cfg.Phases {
			rf, err := p.Profile.ReadFraction()
			if err != nil {
				return nil, err
			}
			phases[i] = workload.Phase{
				Config: workload.Config{
					ReadFraction: rf,
					Keys:         cfg.Keys,
					ZipfS:        p.Zipf,
					Seed:         cfg.Seed + int64(i),
				},
				Ops: p.Ops,
			}
		}
		pg, err := workload.NewPhasedGenerator(phases)
		if err != nil {
			return nil, fmt.Errorf("sim: workload: %w", err)
		}
		gen = pg
	} else {
		rf, err := cfg.Profile.ReadFraction()
		if err != nil {
			return nil, err
		}
		g, err := workload.NewGenerator(workload.Config{
			ReadFraction: rf,
			Keys:         cfg.Keys,
			ZipfS:        cfg.Zipf,
			Seed:         cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: workload: %w", err)
		}
		gen = g
	}
	ops := make([]OpSpec, cfg.Ops)
	for i := range ops {
		op := gen.Next()
		ops[i] = OpSpec{Index: i, Read: op.IsRead, Key: op.Key}
		if !op.IsRead {
			ops[i].Value = fmt.Sprintf("s%d.%d", cfg.Seed, i)
		}
	}
	return ops, nil
}

// buildEvents generates the fault schedule: cfg.Faults events at ticks in
// [0, cfg.Ops], each drawn from a weighted mix of crash, recover,
// recover-all, partition, heal and whole-cluster restart. Quick recoveries
// outweigh crashes slightly less than half the time, so runs spend real
// stretches degraded without starving the workload entirely. With
// AntiEntropy on, recoveries go through the catch-up path instead of being
// instant — the same ticks and the same sites, so the two modes differ only
// in how a replica rejoins.
func buildEvents(cfg Config) ([]cluster.Event, error) {
	tr, err := tree.ParseSpec(cfg.Spec)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	sites := tr.Sites()
	rng := rand.New(rand.NewSource(cfg.Seed ^ faultSeedSalt))
	var events []cluster.Event
	for i := 0; i < cfg.Faults; i++ {
		ev := cluster.Event{At: time.Duration(rng.Intn(cfg.Ops+1)) * time.Millisecond}
		switch k := rng.Intn(100); {
		case k < 35:
			ev.Crash = []tree.SiteID{sites[rng.Intn(len(sites))]}
		case k < 55:
			target := []tree.SiteID{sites[rng.Intn(len(sites))]}
			if cfg.AntiEntropy {
				ev.RecoverSync = target
			} else {
				ev.Recover = target
			}
		case k < 65:
			if cfg.AntiEntropy {
				ev.RecoverAllSync = true
			} else {
				ev.RecoverAll = true
			}
		case k < 75 && len(sites) > 1:
			// Isolate a random non-empty strict subset from the clients and
			// the remaining sites.
			m := 1 + rng.Intn(len(sites)-1)
			perm := rng.Perm(len(sites))
			iso := make([]tree.SiteID, m)
			for j := range iso {
				iso[j] = sites[perm[j]]
			}
			sort.Slice(iso, func(a, b int) bool { return iso[a] < iso[b] })
			ev.Partition = [][]tree.SiteID{iso}
		case k < 85:
			ev.Heal = true
		default:
			ev.Restart = true
		}
		events = append(events, ev)
	}
	if cfg.Overload {
		events = append(events, buildOverloadEvents(cfg, sites, rng)...)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}

// buildOverloadEvents derives the Config.Overload stretch: one bounded
// saturate window over a random site subset, and on half the runs a
// graceful drain with a later recovery. It draws from the tail of the
// fault rng, so turning overload on never reshuffles the base schedule.
func buildOverloadEvents(cfg Config, sites []tree.SiteID, rng *rand.Rand) []cluster.Event {
	start := rng.Intn(cfg.Ops/2 + 1)
	end := start + 1 + rng.Intn(cfg.Ops-start)
	perm := rng.Perm(len(sites))
	n := 1 + rng.Intn((len(sites)+1)/2)
	sat := make([]tree.SiteID, n)
	for i := range sat {
		sat[i] = sites[perm[i]]
	}
	sort.Slice(sat, func(a, b int) bool { return sat[a] < sat[b] })
	events := []cluster.Event{
		{At: time.Duration(start) * time.Millisecond, Saturate: sat},
		{At: time.Duration(end) * time.Millisecond, Unsaturate: sat},
	}
	if rng.Intn(2) == 0 {
		site := []tree.SiteID{sites[rng.Intn(len(sites))]}
		at := rng.Intn(cfg.Ops + 1)
		ev := cluster.Event{At: time.Duration(at) * time.Millisecond, Drain: site}
		rec := cluster.Event{At: time.Duration(at+1+rng.Intn(cfg.Ops-at+1)) * time.Millisecond}
		if cfg.AntiEntropy {
			rec.RecoverSync = site
		} else {
			rec.Recover = site
		}
		events = append(events, ev, rec)
	}
	return events
}
