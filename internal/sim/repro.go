package sim

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"arbor/internal/cluster"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

// Reproducer is a self-contained textual description of one (usually
// shrunken) failing run: the generator parameters, the indices of the
// workload ops that were kept, and the fault schedule in cluster.Schedule
// syntax. Format and ParseReproducer round-trip it; Input rebuilds the
// exact run, so `arborsim -repro file` replays a failure byte-for-byte.
type Reproducer struct {
	Seed          int64
	Spec          string
	Profile       Profile
	Zipf          float64
	Ops           int
	Clients       int
	Keys          int
	Timeout       time.Duration
	LockTTL       time.Duration
	SkipWALReplay bool
	AntiEntropy   bool
	// Latency/Jitter/JitterDist and SiteRTT reproduce the run's network
	// geometry (scenario-lowered runs carry one).
	Latency    time.Duration
	Jitter     time.Duration
	JitterDist string
	SiteRTT    map[tree.SiteID]time.Duration
	// Phases is the phased-workload description; when set it is the source
	// of truth for op generation (the workload= events in Schedule are only
	// trace markers and may have been dropped by shrinking).
	Phases []PhaseSpec
	// Adapt re-enables the adaptation controller on replay, stepped every
	// AdaptEvery ops.
	Adapt      bool
	AdaptEvery int
	// Keep lists the retained op indices, ascending; nil keeps all Ops.
	Keep []int
	// Schedule is the fault schedule, one millisecond per logical tick.
	Schedule string
}

// Reproducer packages the input for replay.
func (in Input) Reproducer() Reproducer {
	cfg := in.Cfg.withDefaults()
	r := Reproducer{
		Seed:          cfg.Seed,
		Spec:          cfg.Spec,
		Profile:       cfg.Profile,
		Zipf:          cfg.Zipf,
		Ops:           cfg.Ops,
		Clients:       cfg.Clients,
		Keys:          cfg.Keys,
		Timeout:       cfg.Timeout,
		LockTTL:       cfg.LockTTL,
		SkipWALReplay: cfg.SkipWALReplay,
		AntiEntropy:   cfg.AntiEntropy,
		Latency:       cfg.Latency,
		Jitter:        cfg.Jitter,
		JitterDist:    cfg.JitterDist,
		SiteRTT:       cfg.SiteRTT,
		Phases:        cfg.Phases,
		Adapt:         cfg.Adapt,
		Schedule:      cluster.Schedule(in.Events).String(),
	}
	if cfg.Adapt {
		r.AdaptEvery = cfg.AdaptEvery
	}
	if len(in.Ops) != cfg.Ops {
		r.Keep = make([]int, len(in.Ops))
		for i, op := range in.Ops {
			r.Keep[i] = op.Index
		}
		sort.Ints(r.Keep)
	}
	return r
}

// Input regenerates the run the reproducer describes: the op stream is
// rebuilt from the seed and masked by the keep-list, the schedule parsed
// back into events.
func (r Reproducer) Input() (Input, error) {
	cfg := Config{
		Seed:          r.Seed,
		Spec:          r.Spec,
		Profile:       r.Profile,
		Zipf:          r.Zipf,
		Ops:           r.Ops,
		Clients:       r.Clients,
		Keys:          r.Keys,
		Timeout:       r.Timeout,
		LockTTL:       r.LockTTL,
		SkipWALReplay: r.SkipWALReplay,
		AntiEntropy:   r.AntiEntropy,
		Latency:       r.Latency,
		Jitter:        r.Jitter,
		JitterDist:    r.JitterDist,
		SiteRTT:       r.SiteRTT,
		Phases:        r.Phases,
		Adapt:         r.Adapt,
		AdaptEvery:    r.AdaptEvery,
	}.withDefaults()
	ops, err := buildOps(cfg)
	if err != nil {
		return Input{}, err
	}
	if r.Keep != nil {
		keep := make(map[int]bool, len(r.Keep))
		for _, i := range r.Keep {
			keep[i] = true
		}
		kept := ops[:0]
		for _, op := range ops {
			if keep[op.Index] {
				kept = append(kept, op)
			}
		}
		ops = kept
	}
	events, err := cluster.ParseSchedule(r.Schedule)
	if err != nil {
		return Input{}, fmt.Errorf("sim: reproducer: %w", err)
	}
	return Input{Cfg: cfg, Ops: ops, Events: events}, nil
}

// Format renders the reproducer in the line-oriented syntax ParseReproducer
// reads.
func (r Reproducer) Format() string {
	var b strings.Builder
	b.WriteString("# arborsim reproducer\n")
	fmt.Fprintf(&b, "seed %d\n", r.Seed)
	fmt.Fprintf(&b, "spec %s\n", r.Spec)
	fmt.Fprintf(&b, "profile %s\n", r.Profile)
	fmt.Fprintf(&b, "ops %d\n", r.Ops)
	fmt.Fprintf(&b, "clients %d\n", r.Clients)
	fmt.Fprintf(&b, "keys %d\n", r.Keys)
	fmt.Fprintf(&b, "timeout %s\n", r.Timeout)
	fmt.Fprintf(&b, "lockttl %s\n", r.LockTTL)
	if r.Zipf > 1 {
		fmt.Fprintf(&b, "zipf %s\n", strconv.FormatFloat(r.Zipf, 'g', -1, 64))
	}
	if r.SkipWALReplay {
		b.WriteString("bug skip-wal-replay\n")
	}
	if r.AntiEntropy {
		b.WriteString("antientropy\n")
	}
	if r.Latency > 0 || r.Jitter > 0 || r.JitterDist != "" {
		dist := r.JitterDist
		if dist == "" {
			dist = "uniform"
		}
		fmt.Fprintf(&b, "latency %s %s %s\n", r.Latency, r.Jitter, dist)
	}
	if len(r.SiteRTT) > 0 {
		sites := make([]int, 0, len(r.SiteRTT))
		for s := range r.SiteRTT {
			sites = append(sites, int(s))
		}
		sort.Ints(sites)
		b.WriteString("sitertt ")
		for i, s := range sites {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d=%s", s, r.SiteRTT[tree.SiteID(s)])
		}
		b.WriteByte('\n')
	}
	if len(r.Phases) > 0 {
		fmt.Fprintf(&b, "phases %s\n", FormatPhases(r.Phases))
	}
	if r.Adapt {
		fmt.Fprintf(&b, "adapt %d\n", r.AdaptEvery)
	}
	if r.Keep != nil {
		b.WriteString("keep ")
		if len(r.Keep) == 0 {
			b.WriteString("-")
		}
		for i, k := range r.Keep {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(k))
		}
		b.WriteByte('\n')
	}
	if r.Schedule != "" {
		fmt.Fprintf(&b, "schedule %s\n", r.Schedule)
	}
	return b.String()
}

// ParseReproducer reads the Format syntax: one "key value" pair per line,
// blank lines and #-comments ignored.
func ParseReproducer(text string) (Reproducer, error) {
	var r Reproducer
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, _ := strings.Cut(line, " ")
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			r.Seed, err = strconv.ParseInt(val, 10, 64)
		case "spec":
			r.Spec = val
		case "profile":
			r.Profile = Profile(val)
		case "ops":
			r.Ops, err = strconv.Atoi(val)
		case "clients":
			r.Clients, err = strconv.Atoi(val)
		case "keys":
			r.Keys, err = strconv.Atoi(val)
		case "timeout":
			r.Timeout, err = time.ParseDuration(val)
		case "lockttl":
			r.LockTTL, err = time.ParseDuration(val)
		case "zipf":
			r.Zipf, err = strconv.ParseFloat(val, 64)
		case "latency":
			f := strings.Fields(val)
			if len(f) != 3 {
				return Reproducer{}, fmt.Errorf("sim: reproducer: latency %q needs <base> <jitter> <dist>", val)
			}
			if r.Latency, err = time.ParseDuration(f[0]); err != nil {
				break
			}
			if r.Jitter, err = time.ParseDuration(f[1]); err != nil {
				break
			}
			if _, err = transport.ParseJitterDist(f[2]); err != nil {
				break
			}
			r.JitterDist = f[2]
		case "sitertt":
			r.SiteRTT = make(map[tree.SiteID]time.Duration)
			for _, pair := range strings.Split(val, ",") {
				siteStr, durStr, ok := strings.Cut(strings.TrimSpace(pair), "=")
				if !ok {
					return Reproducer{}, fmt.Errorf("sim: reproducer: sitertt entry %q needs <site>=<rtt>", pair)
				}
				var site int
				if site, err = strconv.Atoi(siteStr); err != nil {
					break
				}
				var d time.Duration
				if d, err = time.ParseDuration(durStr); err != nil {
					break
				}
				r.SiteRTT[tree.SiteID(site)] = d
			}
		case "bug":
			if val != "skip-wal-replay" {
				return Reproducer{}, fmt.Errorf("sim: reproducer: unknown bug %q", val)
			}
			r.SkipWALReplay = true
		case "antientropy":
			r.AntiEntropy = true
		case "phases":
			r.Phases, err = ParsePhases(val)
		case "adapt":
			r.Adapt = true
			if val != "" {
				r.AdaptEvery, err = strconv.Atoi(val)
			}
		case "keep":
			r.Keep = []int{}
			if val == "-" {
				break
			}
			for _, f := range strings.Split(val, ",") {
				f = strings.TrimSpace(f)
				if f == "" {
					continue
				}
				var k int
				if k, err = strconv.Atoi(f); err != nil {
					break
				}
				r.Keep = append(r.Keep, k)
			}
		case "schedule":
			r.Schedule = val
		default:
			return Reproducer{}, fmt.Errorf("sim: reproducer: unknown directive %q", key)
		}
		if err != nil {
			return Reproducer{}, fmt.Errorf("sim: reproducer: %s %q: %w", key, val, err)
		}
	}
	if err := sc.Err(); err != nil {
		return Reproducer{}, fmt.Errorf("sim: reproducer: %w", err)
	}
	if r.Spec == "" {
		return Reproducer{}, fmt.Errorf("sim: reproducer: missing spec")
	}
	return r, nil
}
