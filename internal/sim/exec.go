package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"arbor/internal/adapt"
	"arbor/internal/client"
	"arbor/internal/cluster"
	"arbor/internal/core"
	"arbor/internal/history"
	"arbor/internal/replica"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

// world owns the cluster under test and rebuilds it across Restart events.
// Write-ahead journals live under root; a restart rebuilds the cluster on
// the same directory so replay restores every committed write — unless the
// injected SkipWALReplay bug is armed, in which case each restart moves to
// a fresh directory, simulating journals that were never replayed.
type world struct {
	cfg     Config
	root    string
	gen     int
	cluster *cluster.Cluster
	clients []*client.Client
}

func (w *world) walDir() string {
	return filepath.Join(w.root, fmt.Sprintf("wal-%d", w.gen))
}

func (w *world) build() error {
	tr, err := tree.ParseSpec(w.cfg.Spec)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	opts := []cluster.Option{
		cluster.WithSeed(w.cfg.Seed),
		cluster.WithClientTimeout(w.cfg.Timeout),
		cluster.WithLockTTL(w.cfg.LockTTL),
		cluster.WithWALDir(w.walDir()),
	}
	if w.cfg.Latency > 0 || w.cfg.Jitter > 0 {
		opts = append(opts, cluster.WithLatency(w.cfg.Latency, w.cfg.Jitter))
	}
	if w.cfg.JitterDist != "" {
		dist, err := transport.ParseJitterDist(w.cfg.JitterDist)
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		opts = append(opts, cluster.WithJitterDistribution(dist))
	}
	if len(w.cfg.SiteRTT) > 0 {
		// Geo model: the map is read-only after build, so the derived link
		// fn is safe for concurrent use.
		opts = append(opts, cluster.WithSiteRTT(w.cfg.SiteRTT))
	}
	c, err := cluster.New(tr, opts...)
	if err != nil {
		return err
	}
	w.cluster = c
	w.clients = w.clients[:0]
	for i := 0; i < w.cfg.Clients; i++ {
		// Circuit breakers are off under simulation: their cooldowns are
		// wall-clock, so whether a call fast-fails would depend on host
		// scheduling speed and break trace determinism. Hedged backup
		// probes are off for the same reason: whether the hedge fires (and
		// which site ends up serving) depends on host timing, which would
		// leak into the per-site participation counters the adaptation
		// controller journals.
		cli, err := c.NewClient(client.WithBreaker(false), client.WithHedging(false))
		if err != nil {
			return err
		}
		w.clients = append(w.clients, cli)
	}
	return nil
}

// newController builds the run's adaptation controller on the current
// cluster incarnation. The knobs are tightened for simulation scale: a
// short window and cooldown (both on the controller's logical clock) so
// phased runs of tens of operations actually cross the hysteresis
// threshold. No wall clock is involved anywhere, so controller decisions
// are a pure function of the op stream and fault schedule.
func (w *world) newController() (*adapt.Controller, error) {
	return adapt.New(w.cluster,
		adapt.WithInterval(time.Second),
		adapt.WithWindow(3),
		adapt.WithCooldown(5*time.Second),
		adapt.WithEnabled(true),
	)
}

// awaitSync blocks until every replica's catch-up has settled, converting a
// blown bound into a catch-up-bound violation rather than an error.
func (w *world) awaitSync(res *Result, what string) {
	ctx, cancel := context.WithTimeout(context.Background(), w.cfg.SyncBound)
	defer cancel()
	if err := w.cluster.AwaitSync(ctx); err != nil {
		res.Violations = append(res.Violations, Violation{
			Rule:   "catch-up-bound",
			Detail: fmt.Sprintf("%s: catch-up did not converge within %s", what, w.cfg.SyncBound),
		})
	}
}

// restart power-cycles the whole system: the cluster (and with it every
// replica's volatile state and any network partition) is torn down and
// rebuilt from the write-ahead journals.
func (w *world) restart() error {
	w.cluster.Close()
	if w.cfg.SkipWALReplay {
		w.gen++ // fresh directory: journals silently lost
	}
	return w.build()
}

// Execute runs one fully-determined input and checks every invariant.
// Operations run sequentially; fault events fire between operations, when
// no request is in flight, which is what makes the client-visible trace a
// pure function of the Input.
func Execute(in Input) (*Result, error) {
	cfg := in.Cfg.withDefaults()
	root, err := os.MkdirTemp("", "arborsim-*")
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	defer os.RemoveAll(root)
	w := &world{cfg: cfg, root: root}
	if err := w.build(); err != nil {
		return nil, err
	}
	defer func() { w.cluster.Close() }()

	res := &Result{}
	res.Violations = append(res.Violations, structuralViolations(w.cluster.Protocol())...)

	// With adaptation on, the controller lives alongside the cluster and is
	// stepped between operations on its logical clock. A Restart tears the
	// controller down with the cluster; its journal is folded into the
	// result before the next incarnation's controller takes over.
	var ctl *adapt.Controller
	collectAdapt := func() {
		if ctl == nil {
			return
		}
		res.AdaptDecisions = append(res.AdaptDecisions, ctl.Journal(0)...)
		res.Reconfigurations += int(ctl.Reconfigurations())
	}
	// Replica shed counters die with each cluster incarnation, so they are
	// folded into the result before every Restart teardown and at the end.
	collectSheds := func() {
		for _, site := range w.cluster.Tree().Sites() {
			res.Sheds += w.cluster.Replica(site).Stats().Sheds
		}
	}
	if cfg.Adapt {
		if ctl, err = w.newController(); err != nil {
			return nil, err
		}
	}

	events := append([]cluster.Event(nil), in.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	ei := 0
	applyUpTo := func(tick int) error {
		for ei < len(events) && tickOf(events[ei]) <= tick {
			ev := events[ei]
			ei++
			res.Trace = append(res.Trace, "     ! "+ev.String())
			if ev.Restart {
				collectAdapt()
				collectSheds()
				if err := w.restart(); err != nil {
					return err
				}
				if cfg.Adapt {
					var cerr error
					if ctl, cerr = w.newController(); cerr != nil {
						return cerr
					}
				}
			} else if ev.Workload != "" {
				// Phase markers are trace-only: the op stream is generated
				// phase-aware, so applying the marker does nothing.
			} else if err := w.cluster.ApplyEvent(ev); err != nil {
				return err
			}
			if len(ev.RecoverSync) > 0 || ev.RecoverAllSync {
				// Catch-up runs to completion before the next operation, so
				// the op-by-op trace stays a pure function of the Input (a
				// read racing a catching-up replica would otherwise depend
				// on host timing).
				w.awaitSync(res, ev.String())
			}
			res.FaultsApplied++
		}
		return nil
	}

	// The history carries a logical clock: op i occupies the half-open
	// interval [2i, 2i+1] microseconds past the epoch. Sequential execution
	// makes every pair strictly ordered, exactly what really happened.
	base := time.Unix(0, 0)
	rec := history.NewRecorder()
	ctx := context.Background()
	// stepAdapt advances the controller once every AdaptEvery completed
	// operations. Migrations and reverts land in the trace (holds would
	// drown it), and every successful reconfiguration re-checks the
	// quorum-structure invariants on the new tree.
	stepAdapt := func() {
		if ctl == nil || res.OpsRun%cfg.AdaptEvery != 0 {
			return
		}
		d, ok := ctl.Step()
		if !ok {
			return
		}
		if d.Action == adapt.ActionMigrate || d.Action == adapt.ActionRevert {
			res.Trace = append(res.Trace, "     @ "+d.String())
			if d.Outcome == "ok" {
				res.Violations = append(res.Violations, structuralViolations(w.cluster.Protocol())...)
			}
		}
	}
	for _, op := range in.Ops {
		if err := applyUpTo(op.Index); err != nil {
			return nil, err
		}
		ci := op.Index % len(w.clients)
		cli := w.clients[ci]
		start := base.Add(time.Duration(2*op.Index) * time.Microsecond)
		end := start.Add(time.Microsecond)
		res.OpsRun++
		if op.Read {
			res.Reads++
			rd, err := cli.Read(ctx, op.Key)
			switch {
			case err == nil:
				rec.Record(history.Op{
					Kind: history.Read, Key: op.Key, Value: string(rd.Value),
					TS: rd.TS, Found: true, Start: start, End: end, Client: ci,
				})
				res.Trace = append(res.Trace, fmt.Sprintf("%4d r %s -> %s=%q", op.Index, op.Key, rd.TS, rd.Value))
			case errors.Is(err, client.ErrNotFound):
				rec.Record(history.Op{
					Kind: history.Read, Key: op.Key,
					Start: start, End: end, Client: ci,
				})
				res.Trace = append(res.Trace, fmt.Sprintf("%4d r %s -> notfound", op.Index, op.Key))
			case errors.Is(err, client.ErrOverloaded):
				// A shed is a clean typed refusal: the op failed without
				// touching any replica state, so it carries no history
				// obligation — like unavailable, but distinguishable.
				res.Failures++
				res.Overloaded++
				res.Trace = append(res.Trace, fmt.Sprintf("%4d r %s -> overloaded", op.Index, op.Key))
			default:
				res.Failures++
				res.Trace = append(res.Trace, fmt.Sprintf("%4d r %s -> unavailable", op.Index, op.Key))
			}
			stepAdapt()
			continue
		}
		res.Writes++
		wr, err := cli.Write(ctx, op.Key, []byte(op.Value))
		switch {
		case err == nil:
			rec.Record(history.Op{
				Kind: history.Write, Key: op.Key, Value: op.Value,
				TS: wr.TS, Found: true, Start: start, End: end, Client: ci,
			})
			res.Trace = append(res.Trace, fmt.Sprintf("%4d w %s=%q -> %s", op.Index, op.Key, op.Value, wr.TS))
		case errors.Is(err, client.ErrInDoubt):
			rec.Record(history.Op{
				Kind: history.Write, Key: op.Key, Value: op.Value,
				TS: wr.TS, Found: true, Start: start, End: end, Client: ci,
				InDoubt: true,
			})
			res.Trace = append(res.Trace, fmt.Sprintf("%4d w %s=%q -> indoubt %s", op.Index, op.Key, op.Value, wr.TS))
		case errors.Is(err, client.ErrOverloaded):
			// The write never prepared anywhere it wasn't aborted: a shed is
			// a clean failure, never in doubt.
			res.Failures++
			res.Overloaded++
			res.Trace = append(res.Trace, fmt.Sprintf("%4d w %s=%q -> overloaded", op.Index, op.Key, op.Value))
		default:
			res.Failures++
			res.Trace = append(res.Trace, fmt.Sprintf("%4d w %s=%q -> unavailable", op.Index, op.Key, op.Value))
		}
		stepAdapt()
	}
	if err := applyUpTo(math.MaxInt); err != nil {
		return nil, err
	}
	collectAdapt()
	collectSheds()

	// Full recovery, then judge the run. With anti-entropy, recovery is a
	// final converging sync pass and the per-level durability margin is an
	// invariant; without it, recovery is instant and the gaps it leaves
	// are only reported. Overload faults are disarmed first: the final
	// durability reads judge the protocol, not a dangling saturate or
	// slowsite the schedule never cleared. (Drained sites are HealthDown
	// and come back through the normal recovery below.)
	for _, site := range w.cluster.Tree().Sites() {
		_ = w.cluster.Saturate(site, false)
		_ = w.cluster.SlowSite(site, 0)
	}
	w.cluster.Heal()
	if cfg.AntiEntropy {
		w.cluster.SyncAll()
		w.awaitSync(res, "final recovery")
	} else {
		w.cluster.RecoverAll()
	}
	res.FinalSpec = w.cluster.Tree().Spec()
	ops := rec.Ops()
	for _, v := range history.Check(ops) {
		res.Violations = append(res.Violations, Violation{Rule: v.Rule, Detail: v.Detail})
	}
	res.Violations = append(res.Violations, durabilityViolations(ctx, w, ops)...)
	gaps := marginGaps(w, ops)
	if cfg.AntiEntropy {
		for _, g := range gaps {
			res.Violations = append(res.Violations, Violation{Rule: "durability-margin", Detail: g})
		}
	} else {
		res.MarginGaps = gaps
	}
	return res, nil
}

// structuralViolations checks the quorum-intersection argument the protocol
// rests on: every physical level is non-empty (a write quorum is all of one
// level and a read quorum takes one site from each, so any read quorum
// intersects any write quorum), and the levels partition the sites.
func structuralViolations(p *core.Protocol) []Violation {
	var out []Violation
	seen := make(map[tree.SiteID]int)
	for u := 0; u < p.NumPhysicalLevels(); u++ {
		sites := p.LevelSites(u)
		if len(sites) == 0 {
			out = append(out, Violation{
				Rule:   "quorum-intersection",
				Detail: fmt.Sprintf("physical level %d has no sites; read quorums cannot intersect writes at it", u),
			})
		}
		for _, s := range sites {
			if prev, ok := seen[s]; ok {
				out = append(out, Violation{
					Rule:   "level-partition",
					Detail: fmt.Sprintf("site %d appears at physical levels %d and %d; levels must partition the sites", s, prev, u),
				})
			}
			seen[s] = u
		}
	}
	return out
}

// acked is the newest plainly-acknowledged write observed for one key.
type acked struct {
	ts  replica.Timestamp
	val string
}

// newestAcked extracts, per key, the newest write the history plainly
// acknowledged. In-doubt writes are exempt everywhere — the protocol never
// promised them.
func newestAcked(ops []history.Op) (best map[string]acked, keys []string) {
	best = make(map[string]acked)
	for _, op := range ops {
		if op.Kind != history.Write || op.InDoubt {
			continue
		}
		if cur, ok := best[op.Key]; !ok || op.TS.After(cur.ts) {
			best[op.Key] = acked{ts: op.TS, val: op.Value}
		}
	}
	keys = make([]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return best, keys
}

// marginGaps inspects every replica's store directly and reports each
// (key, physical level) pair where no member of the level holds a version
// at least as new as the newest acknowledged write. A gap is not a protocol
// violation by itself — reads still intersect some level that has the
// version — but each gapped level is one the system could not afford to
// lose, i.e. a thinner durability margin.
func marginGaps(w *world, ops []history.Op) []string {
	best, keys := newestAcked(ops)
	proto := w.cluster.Protocol()
	var out []string
	for _, key := range keys {
		want := best[key]
		for u := 0; u < proto.NumPhysicalLevels(); u++ {
			holds := false
			for _, site := range proto.LevelSites(u) {
				ts, found := w.cluster.Replica(site).Store().Version(key)
				if found && !want.ts.After(ts) {
					holds = true
					break
				}
			}
			if !holds {
				out = append(out, fmt.Sprintf("key %q: level %d misses acknowledged write %s", key, u, want.ts))
			}
		}
	}
	return out
}

// durabilityViolations re-reads, after every site has recovered and the
// network healed, each key some write was plainly acknowledged on: the read
// must succeed and observe a timestamp at least as new as the newest
// acknowledged write.
func durabilityViolations(ctx context.Context, w *world, ops []history.Op) []Violation {
	best, keys := newestAcked(ops)
	var out []Violation
	cli := w.clients[0]
	for _, key := range keys {
		want := best[key]
		rd, err := cli.Read(ctx, key)
		switch {
		case err != nil:
			out = append(out, Violation{
				Rule:   "durability",
				Detail: fmt.Sprintf("key %q: post-recovery read failed (%v); acknowledged write %s=%q is lost", key, err, want.ts, want.val),
			})
		case want.ts.After(rd.TS):
			out = append(out, Violation{
				Rule:   "durability",
				Detail: fmt.Sprintf("key %q: post-recovery read observed %s, older than acknowledged write %s=%q", key, rd.TS, want.ts, want.val),
			})
		case rd.TS == want.ts && string(rd.Value) != want.val:
			out = append(out, Violation{
				Rule:   "durability",
				Detail: fmt.Sprintf("key %q: post-recovery read %s=%q, but the acknowledged write installed %q", key, rd.TS, rd.Value, want.val),
			})
		}
	}
	return out
}
