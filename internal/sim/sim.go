// Package sim is a deterministic chaos-simulation harness for the
// tree-structured replica control protocol. A campaign derives, from a
// single seed, a stream of client operations interleaved with fault events
// (crashes, recoveries, partitions, whole-cluster restarts) and executes
// them against a real cluster — actual replicas, transport and protocol
// clients — recording every client-visible outcome. After each run the
// harness checks the recorded history against one-copy semantics
// (history.Check) and two protocol invariants: no acknowledged write may be
// lost once every site has recovered, and the physical levels must
// partition the sites so every read quorum intersects every write quorum.
//
// Determinism is by construction rather than by instrumentation: operations
// execute sequentially, faults fire only on the boundaries between
// operations (at logical ticks equal to operation indices), and the
// recorded history uses a logical clock, so a given Input replays the same
// op-by-op trace every time. When a run fails, a delta-debugging shrinker
// (Shrink) minimizes first the fault schedule and then the workload, and
// the result round-trips through a textual Reproducer that cmd/arborsim
// can replay.
package sim

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"arbor/internal/adapt"
	"arbor/internal/cluster"
	"arbor/internal/tree"
)

// Profile names a workload mix.
type Profile string

// Workload profiles.
const (
	// ProfileBalanced issues reads and writes with equal probability.
	ProfileBalanced Profile = "balanced"
	// ProfileMostlyRead issues 90% reads.
	ProfileMostlyRead Profile = "mostly-read"
	// ProfileMostlyWrite issues 10% reads.
	ProfileMostlyWrite Profile = "mostly-write"
)

// ReadFraction maps the profile to the generator's read probability. The
// empty profile means balanced. Beyond the three named mixes, a numeric
// profile "r<fraction>" (e.g. "r0.7") names an arbitrary read fraction —
// the form scenario ramps lower their interpolated steps into.
func (p Profile) ReadFraction() (float64, error) {
	switch p {
	case "", ProfileBalanced:
		return 0.5, nil
	case ProfileMostlyRead:
		return 0.9, nil
	case ProfileMostlyWrite:
		return 0.1, nil
	}
	if rest, ok := strings.CutPrefix(string(p), "r"); ok {
		f, err := strconv.ParseFloat(rest, 64)
		if err == nil && f >= 0 && f <= 1 {
			return f, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown profile %q (want mostly-read, mostly-write, balanced or r<fraction>)", string(p))
}

// NumericProfile renders a read fraction as the canonical numeric profile.
func NumericProfile(readFraction float64) Profile {
	return Profile("r" + strconv.FormatFloat(readFraction, 'g', -1, 64))
}

// Config parameterizes one simulated run. Everything a run does derives
// deterministically from these fields.
type Config struct {
	// Spec is the replica tree, e.g. "1-3-5" (default).
	Spec string
	// Seed drives the workload and fault generators and the cluster's
	// internal randomness.
	Seed int64
	// Profile shapes the read/write mix (default balanced).
	Profile Profile
	// Zipf, when > 1, skews the plain workload's key popularity with a
	// Zipf distribution of that parameter (hot keys). Phased runs carry
	// the skew per phase instead.
	Zipf float64
	// Ops is the number of client operations per run (default 60).
	Ops int
	// Faults is the number of fault events injected per run (default 6;
	// negative injects none, for fault-free adaptation runs).
	Faults int
	// Clients is the number of protocol clients ops rotate over (default 2).
	Clients int
	// Keys is the key-population size (default 4).
	Keys int
	// Timeout is the clients' failure-detection deadline (default 40ms).
	// Smaller is faster but risks spurious timeouts on loaded machines.
	Timeout time.Duration
	// LockTTL is the replicas' prepared-lock expiry (default 1s).
	LockTTL time.Duration
	// SkipWALReplay injects a durability bug for self-tests: every Restart
	// event discards the write-ahead journals instead of replaying them,
	// which a campaign must detect as a lost acknowledged write.
	SkipWALReplay bool
	// AntiEntropy switches recovery to the catch-up path: generated recover
	// events become recover-with-sync (the replica rejoins through the
	// catching-up state and pulls missed versions before serving reads),
	// and the end-of-run durability margin — every level holding the newest
	// acknowledged version of every key — is enforced as an invariant.
	// Without it, recovery is instant and margin gaps are only reported.
	AntiEntropy bool
	// SyncBound caps how long any single catch-up may take before the run
	// records a catch-up-bound violation (default 5s).
	SyncBound time.Duration
	// Phases splits the op stream into consecutive workload phases — e.g. a
	// read-heavy stretch flipping to write-heavy mid-run, the scenario the
	// adaptation controller exists for. When set, Ops is derived as the
	// phase total (overriding any explicit value), Profile is ignored, and
	// BuildInput adds a workload= marker event at each phase boundary so
	// the shift is visible in traces and rendered schedules.
	Phases []PhaseSpec
	// Overload adds a derived overload stretch to the generated fault
	// schedule: a saturate window over a random subset of sites (closed by
	// a matching unsaturate) and, some runs, a graceful drain with a later
	// recovery. Sheds are clean typed refusals, so campaigns with overload
	// on still demand zero history violations — the axis checks that load
	// shedding composes with crashes, partitions and migrations.
	Overload bool
	// Adapt runs the adaptation controller during the run: it is stepped
	// deterministically every AdaptEvery operations on a logical clock, so
	// live reconfigurations interleave with the chaos schedule and the
	// history checker judges one-copy semantics across migrations.
	Adapt bool
	// AdaptEvery is the op stride between controller steps (default 10).
	AdaptEvery int
	// Latency and Jitter add per-message delivery delay in the simulated
	// network; JitterDist names the random component's distribution
	// (uniform, exponential or pareto — transport.ParseJitterDist). The
	// draws come from the cluster's seeded RNG, but delivery itself is
	// wall-clock timers: keep delays well below Timeout or operations
	// will time out, and expect trace determinism only while the margin
	// between delay and Timeout is generous.
	Latency    time.Duration
	Jitter     time.Duration
	JitterDist string
	// SiteRTT adds per-site geographic delay: a message to or from site s
	// pays SiteRTT[s]/2 each way (clients and unlisted sites pay none).
	// Scenario latency matrices lower onto it.
	SiteRTT map[tree.SiteID]time.Duration
}

// PhaseSpec is one workload phase: a profile, how many operations it
// lasts, and an optional hot-key skew.
type PhaseSpec struct {
	Profile Profile
	Ops     int
	// Zipf, when > 1, skews the phase's key popularity with a Zipf
	// distribution of that parameter — the flash-crowd ingredient.
	Zipf float64
}

// ParsePhases parses the compact phase syntax
// "profile:ops[:zipf<s>][,profile:ops[:zipf<s>]...]", e.g.
// "mostly-read:30,mostly-write:30" or "balanced:20:zipf1.4".
func ParsePhases(s string) ([]PhaseSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []PhaseSpec
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("sim: phase %q needs profile:ops[:zipf<s>]", part)
		}
		p := Profile(strings.TrimSpace(fields[0]))
		if _, err := p.ReadFraction(); err != nil {
			return nil, err
		}
		ops, err := strconv.Atoi(strings.TrimSpace(fields[1]))
		if err != nil || ops <= 0 {
			return nil, fmt.Errorf("sim: phase %q needs a positive op count", part)
		}
		ps := PhaseSpec{Profile: p, Ops: ops}
		if len(fields) == 3 {
			zs, ok := strings.CutPrefix(strings.TrimSpace(fields[2]), "zipf")
			if !ok {
				return nil, fmt.Errorf("sim: phase %q: third field must be zipf<s>", part)
			}
			z, err := strconv.ParseFloat(zs, 64)
			if err != nil || z <= 1 {
				return nil, fmt.Errorf("sim: phase %q: zipf skew must be a number > 1", part)
			}
			ps.Zipf = z
		}
		out = append(out, ps)
	}
	return out, nil
}

// FormatPhases renders phases in the syntax ParsePhases accepts.
func FormatPhases(ps []PhaseSpec) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		profile := p.Profile
		if profile == "" {
			profile = ProfileBalanced
		}
		parts[i] = fmt.Sprintf("%s:%d", profile, p.Ops)
		if p.Zipf > 1 {
			parts[i] += ":zipf" + strconv.FormatFloat(p.Zipf, 'g', -1, 64)
		}
	}
	return strings.Join(parts, ",")
}

func (c Config) withDefaults() Config {
	if c.Spec == "" {
		c.Spec = "1-3-5"
	}
	if c.Profile == "" {
		c.Profile = ProfileBalanced
	}
	if c.Ops == 0 {
		c.Ops = 60
	}
	if c.Faults == 0 {
		c.Faults = 6
	}
	if c.Clients == 0 {
		c.Clients = 2
	}
	if c.Keys == 0 {
		c.Keys = 4
	}
	if c.Timeout == 0 {
		c.Timeout = 40 * time.Millisecond
	}
	if c.LockTTL == 0 {
		c.LockTTL = time.Second
	}
	if c.SyncBound == 0 {
		c.SyncBound = 5 * time.Second
	}
	if len(c.Phases) > 0 {
		total := 0
		for _, p := range c.Phases {
			total += p.Ops
		}
		c.Ops = total
	}
	if c.AdaptEvery == 0 {
		c.AdaptEvery = 10
	}
	return c
}

// OpSpec is one pre-generated client operation. Index is the op's position
// in the full generated stream; it survives shrinking, so fault ticks and
// generated values stay aligned when ops are removed around it.
type OpSpec struct {
	Index int
	Read  bool
	Key   string
	// Value is the payload a write installs (unused for reads).
	Value string
}

// Input is a fully-determined run: the configuration plus the concrete op
// stream and fault events derived from it (or shrunk from a failure).
// Events use cluster.Event with At encoding the logical tick: an event at
// tick t fires after op t-1 completes and before op t starts, with one
// millisecond per tick, so the schedule serializes through
// cluster.Schedule's textual syntax.
type Input struct {
	Cfg    Config
	Ops    []OpSpec
	Events []cluster.Event
}

// tickOf decodes an event's logical tick from its offset.
func tickOf(ev cluster.Event) int { return int(ev.At / time.Millisecond) }

// Violation is one invariant failure found by a run. Rule is either one of
// history.Check's rules or a harness invariant: "durability" (an
// acknowledged write unreadable or stale after full recovery),
// "quorum-intersection" (a physical level with no sites),
// "level-partition" (a site on two physical levels), "catch-up-bound" (a
// recover-with-sync did not converge within Config.SyncBound) or
// "durability-margin" (with anti-entropy on, a physical level that does not
// hold the newest acknowledged version of some key after convergence).
type Violation struct {
	Rule   string
	Detail string
}

// Error renders the violation.
func (v Violation) Error() string { return fmt.Sprintf("sim: %s: %s", v.Rule, v.Detail) }

// Result is the outcome of executing one Input.
type Result struct {
	// Trace is the deterministic op-by-op log: one line per operation and
	// per applied fault event. Two executions of the same Input produce
	// identical traces.
	Trace []string
	// Violations lists every invariant failure; empty means the run passed.
	Violations []Violation
	// MarginGaps lists, for runs WITHOUT anti-entropy, the (key, level)
	// pairs where a physical level ended the run missing the newest
	// acknowledged version. Instant recovery makes such gaps expected (the
	// protocol stays correct — reads still intersect a level that has the
	// version — but the durability margin is thinner); with anti-entropy on
	// the same gaps are hard durability-margin violations instead.
	MarginGaps []string
	// AdaptDecisions is the adaptation controller's decision journal,
	// accumulated across cluster incarnations (a Restart rebuilds the
	// controller, but its decisions are kept). Nil without Config.Adapt.
	AdaptDecisions []adapt.Decision
	// Reconfigurations counts the controller-driven migrations that
	// succeeded during the run (reverts included).
	Reconfigurations int
	// FinalSpec is the replica tree's spec at the end of the run — the
	// starting spec unless the adaptation controller migrated. Scenario
	// `expect final-spec` assertions check it.
	FinalSpec string
	// Counters.
	OpsRun        int
	Reads         int
	Writes        int
	Failures      int // ops that returned unavailable (no history obligation)
	FaultsApplied int
	// Sheds counts the requests replicas answered with a typed overload
	// reply (admission-gate load shedding), accumulated across cluster
	// incarnations. Zero unless the schedule armed an overload fault
	// (saturate/drain) or genuinely exceeded a replica's admission limits.
	Sheds uint64
	// Overloaded counts the operations (a subset of Failures) that failed
	// with every candidate shedding — a clean, typed refusal, never an
	// in-doubt outcome, so it carries no history obligation.
	Overloaded int
}

// Failed reports whether the run violated any invariant.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }
