package sim

import "arbor/internal/adapt"

// Failure describes the first failing run of a campaign, after shrinking.
type Failure struct {
	// Run is the failing run's index within the campaign.
	Run int
	// Seed is the failing run's derived seed (campaign seed + run index).
	Seed int64
	// Violations are the invariant failures the shrunken input still
	// reproduces.
	Violations []Violation
	// Input is the shrunken run; Repro is its portable form.
	Input Input
	Repro Reproducer
	// Decisions is the adaptation controller's journal from the shrunken
	// failing run (nil without Config.Adapt) — the evidence trail for "what
	// was the controller doing when the invariant broke".
	Decisions []adapt.Decision
}

// Report summarizes a campaign.
type Report struct {
	Cfg            Config
	Runs           int
	OpsExecuted    int
	FaultsInjected int
	// MarginGaps totals the durability-margin gaps reported across all runs
	// (always zero with anti-entropy on — there the same gaps would be
	// violations and stop the campaign).
	MarginGaps int
	// GappedRuns counts the runs that ended with at least one margin gap.
	GappedRuns int
	// Reconfigurations totals the controller-driven migrations across all
	// runs (zero without Config.Adapt).
	Reconfigurations int
	// Sheds and Overloaded total the replica-side typed refusals and the
	// operations that failed overloaded across all runs (zero unless the
	// schedules armed overload faults — see Config.Overload).
	Sheds      uint64
	Overloaded int
	// Failure is nil when every run satisfied every invariant.
	Failure *Failure
}

// Campaign executes up to the given number of runs, deriving run i's seed
// as cfg.Seed+i, and stops at the first invariant violation. The failing
// input is shrunk to a minimal reproducer before returning; the runs
// executed so far stay counted in the report either way.
func Campaign(cfg Config, runs int) (*Report, error) {
	cfg = cfg.withDefaults()
	rep := &Report{Cfg: cfg}
	for run := 0; run < runs; run++ {
		rcfg := cfg
		rcfg.Seed = cfg.Seed + int64(run)
		in, err := BuildInput(rcfg)
		if err != nil {
			return nil, err
		}
		res, err := Execute(in)
		if err != nil {
			return nil, err
		}
		rep.Runs++
		rep.OpsExecuted += res.OpsRun
		rep.FaultsInjected += res.FaultsApplied
		rep.MarginGaps += len(res.MarginGaps)
		if len(res.MarginGaps) > 0 {
			rep.GappedRuns++
		}
		rep.Reconfigurations += res.Reconfigurations
		rep.Sheds += res.Sheds
		rep.Overloaded += res.Overloaded
		if res.Failed() {
			shrunk := Shrink(in)
			sres, err := Execute(shrunk)
			if err != nil {
				return nil, err
			}
			rep.Failure = &Failure{
				Run:        run,
				Seed:       rcfg.Seed,
				Violations: sres.Violations,
				Input:      shrunk,
				Repro:      shrunk.Reproducer(),
				Decisions:  sres.AdaptDecisions,
			}
			return rep, nil
		}
	}
	return rep, nil
}
