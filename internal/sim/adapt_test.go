package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"arbor/internal/adapt"
)

// flipConfig is a fault-free phased run: read-heavy on the read-optimized
// tree, a write-heavy flip, then back. Steps land every 10 ops with a
// 3-sample window, so each phase is long enough for warm-up, hysteresis
// and (after the first migration) probation plus cooldown.
func flipConfig(seed int64) Config {
	return Config{
		Spec:    "1-8",
		Seed:    seed,
		Faults:  -1,
		Keys:    3,
		Clients: 2,
		Timeout: 30 * time.Millisecond,
		LockTTL: 500 * time.Millisecond,
		Phases: []PhaseSpec{
			{Profile: ProfileMostlyRead, Ops: 40},
			{Profile: ProfileMostlyWrite, Ops: 60},
			{Profile: ProfileMostlyRead, Ops: 80},
		},
		Adapt: true,
	}
}

// TestSimAdaptationFollowsWorkloadFlip is the acceptance scenario under
// the harness: the controller migrates the MOSTLY-READ tree towards
// MOSTLY-WRITE when the phase flips, and back when it flips again, with
// zero invariant violations and every reconfiguration journaled.
func TestSimAdaptationFollowsWorkloadFlip(t *testing.T) {
	in, err := BuildInput(flipConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("adaptation run violated invariants: %v", res.Violations)
	}
	if res.Reconfigurations < 2 {
		t.Fatalf("flip produced %d reconfigurations, want ≥ 2 (journal: %v)",
			res.Reconfigurations, res.AdaptDecisions)
	}
	// The journal explains every migration: first away from the single
	// level, last back to it.
	var migrations []adapt.Decision
	for _, d := range res.AdaptDecisions {
		if d.Action == adapt.ActionMigrate && d.Outcome == "ok" {
			migrations = append(migrations, d)
		}
	}
	if len(migrations) != res.Reconfigurations {
		t.Fatalf("%d reconfigurations but %d journaled migrations", res.Reconfigurations, len(migrations))
	}
	if first := migrations[0]; first.CurrentSpec != "1-8" || first.AdvisedLevels < 2 {
		t.Errorf("first migration %s -> %s, want away from 1-8", first.CurrentSpec, first.AdvisedSpec)
	}
	if last := migrations[len(migrations)-1]; last.AdvisedSpec != "1-8" {
		t.Errorf("last migration %s -> %s, want back to 1-8", last.CurrentSpec, last.AdvisedSpec)
	}
	// Migrations (and the phase markers) are visible in the trace.
	trace := strings.Join(res.Trace, "\n")
	if !strings.Contains(trace, "workload=mostly-write") {
		t.Error("trace missing the workload phase marker")
	}
	if !strings.Contains(trace, "@ #") || !strings.Contains(trace, "migrate") {
		t.Error("trace missing the migration decisions")
	}
}

// TestSimAdaptationDeterministic extends the harness's determinism promise
// to controller decisions: identical inputs yield identical journals.
func TestSimAdaptationDeterministic(t *testing.T) {
	cfg := flipConfig(5)
	cfg.Faults = 3 // chaos on, so controller retries are exercised too
	in, err := BuildInput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Trace, r2.Trace) {
		t.Errorf("traces differ between identical adaptation runs:\nrun1:\n%s\nrun2:\n%s",
			strings.Join(r1.Trace, "\n"), strings.Join(r2.Trace, "\n"))
	}
	if !reflect.DeepEqual(r1.AdaptDecisions, r2.AdaptDecisions) {
		t.Error("decision journals differ between identical runs")
	}
	if r1.Reconfigurations != r2.Reconfigurations {
		t.Errorf("reconfiguration counts differ: %d vs %d", r1.Reconfigurations, r2.Reconfigurations)
	}
}

// TestSimAdaptationCampaignHoldsInvariants runs a chaos campaign with the
// controller live: crashes, partitions and restarts interleave with live
// migrations, and one-copy semantics must survive all of it.
func TestSimAdaptationCampaignHoldsInvariants(t *testing.T) {
	cfg := Config{
		Seed:    1,
		Faults:  4,
		Keys:    3,
		Clients: 2,
		Timeout: 30 * time.Millisecond,
		LockTTL: 500 * time.Millisecond,
		Phases: []PhaseSpec{
			{Profile: ProfileMostlyRead, Ops: 30},
			{Profile: ProfileMostlyWrite, Ops: 50},
		},
		Adapt: true,
	}
	rep, err := Campaign(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("adaptation campaign found a violation (run %d, seed %d):\n%v\njournal: %v\nreproducer:\n%s",
			rep.Failure.Run, rep.Failure.Seed, rep.Failure.Violations,
			rep.Failure.Decisions, rep.Failure.Repro.Format())
	}
	if rep.Runs != 3 || rep.OpsExecuted == 0 {
		t.Errorf("report = %+v, want 3 full runs", rep)
	}
}

// TestReproducerCarriesPhasesAndAdapt: the phased-adaptive configuration
// round-trips through the textual reproducer and regenerates the same run.
func TestReproducerCarriesPhasesAndAdapt(t *testing.T) {
	in, err := BuildInput(flipConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	r := in.Reproducer()
	if !r.Adapt || len(r.Phases) != 3 {
		t.Fatalf("reproducer dropped adaptation state: %+v", r)
	}
	text := r.Format()
	for _, want := range []string{"phases mostly-read:40,mostly-write:60,mostly-read:80", "adapt 10"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted reproducer missing %q:\n%s", want, text)
		}
	}
	back, err := ParseReproducer(text)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, r) {
		t.Fatalf("reproducer round trip changed:\n first: %+v\nsecond: %+v", r, back)
	}
	again, err := back.Input()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Ops, in.Ops) {
		t.Error("regenerated op stream differs from the original")
	}
	if !again.Cfg.Adapt || again.Cfg.AdaptEvery != 10 {
		t.Errorf("regenerated config lost adaptation: %+v", again.Cfg)
	}
}

// TestParsePhases covers the phase syntax.
func TestParsePhases(t *testing.T) {
	ps, err := ParsePhases("mostly-read:30, mostly-write:50")
	if err != nil {
		t.Fatal(err)
	}
	want := []PhaseSpec{{Profile: ProfileMostlyRead, Ops: 30}, {Profile: ProfileMostlyWrite, Ops: 50}}
	if !reflect.DeepEqual(ps, want) {
		t.Errorf("ParsePhases = %+v, want %+v", ps, want)
	}
	if got := FormatPhases(ps); got != "mostly-read:30,mostly-write:50" {
		t.Errorf("FormatPhases = %q", got)
	}
	if ps, err := ParsePhases(""); err != nil || ps != nil {
		t.Errorf("empty phases = %v, %v", ps, err)
	}
	// Per-phase zipf skew and numeric profiles round-trip too.
	ps, err = ParsePhases("balanced:20:zipf1.4,r0.7:10")
	if err != nil {
		t.Fatal(err)
	}
	want = []PhaseSpec{{Profile: ProfileBalanced, Ops: 20, Zipf: 1.4}, {Profile: "r0.7", Ops: 10}}
	if !reflect.DeepEqual(ps, want) {
		t.Errorf("ParsePhases with zipf = %+v, want %+v", ps, want)
	}
	if got := FormatPhases(ps); got != "balanced:20:zipf1.4,r0.7:10" {
		t.Errorf("FormatPhases with zipf = %q", got)
	}
	for _, bad := range []string{"mostly-read", "bogus:10", "mostly-read:0", "mostly-read:x",
		"balanced:10:zipf0.5", "balanced:10:1.4", "balanced:10:zipfx", "r1.5:10", "rx:10"} {
		if _, err := ParsePhases(bad); err == nil {
			t.Errorf("ParsePhases(%q) accepted garbage", bad)
		}
	}
}

// TestPhasedOpsShiftMix: the generated stream actually changes mix at the
// phase boundary.
func TestPhasedOpsShiftMix(t *testing.T) {
	cfg := Config{
		Seed: 2,
		Phases: []PhaseSpec{
			{Profile: ProfileMostlyRead, Ops: 100},
			{Profile: ProfileMostlyWrite, Ops: 100},
		},
	}
	in, err := BuildInput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Ops) != 200 {
		t.Fatalf("phased input has %d ops, want 200", len(in.Ops))
	}
	readsIn := func(ops []OpSpec) int {
		n := 0
		for _, op := range ops {
			if op.Read {
				n++
			}
		}
		return n
	}
	if r := readsIn(in.Ops[:100]); r < 70 {
		t.Errorf("read-heavy phase produced %d/100 reads", r)
	}
	if r := readsIn(in.Ops[100:]); r > 30 {
		t.Errorf("write-heavy phase produced %d/100 reads", r)
	}
	// Exactly one marker per phase rides along in the schedule.
	markers := 0
	for _, ev := range in.Events {
		if ev.Workload != "" {
			markers++
		}
	}
	if markers != 2 {
		t.Errorf("input carries %d workload markers, want 2", markers)
	}
}
