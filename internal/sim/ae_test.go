package sim

import (
	"reflect"
	"strings"
	"testing"
)

// aeConfig is testConfig with the anti-entropy recovery path armed.
func aeConfig(seed int64) Config {
	cfg := testConfig(seed)
	cfg.AntiEntropy = true
	return cfg
}

// TestSimAntiEntropyDeterministic: catch-up runs to completion at event
// boundaries, so arming anti-entropy must not cost the harness its core
// promise — identical traces and verdicts across identical runs.
func TestSimAntiEntropyDeterministic(t *testing.T) {
	in, err := BuildInput(aeConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Trace, r2.Trace) {
		t.Errorf("traces differ between identical anti-entropy runs:\nrun1:\n%s\nrun2:\n%s",
			strings.Join(r1.Trace, "\n"), strings.Join(r2.Trace, "\n"))
	}
	if !reflect.DeepEqual(r1.Violations, r2.Violations) {
		t.Errorf("verdicts differ: %v vs %v", r1.Violations, r2.Violations)
	}
	if len(r1.MarginGaps) != 0 {
		t.Errorf("anti-entropy run filled MarginGaps (%v); gaps must be violations there", r1.MarginGaps)
	}
}

// TestSimAntiEntropyCampaignHoldsMargin is the tentpole invariant: with
// anti-entropy on, after the final converging sync pass every physical level
// holds the newest acknowledged version of every key — the campaign must see
// zero durability-margin violations.
func TestSimAntiEntropyCampaignHoldsMargin(t *testing.T) {
	rep, err := Campaign(aeConfig(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("anti-entropy campaign found a violation (run %d, seed %d):\n%v\nreproducer:\n%s",
			rep.Failure.Run, rep.Failure.Seed, rep.Failure.Violations, rep.Failure.Repro.Format())
	}
	if rep.MarginGaps != 0 || rep.GappedRuns != 0 {
		t.Errorf("anti-entropy campaign reported %d gaps over %d runs; convergence should leave none",
			rep.MarginGaps, rep.GappedRuns)
	}
}

// TestSimInstantRecoveryLeavesGaps: the same seeds without anti-entropy end
// with thinner margins — a write lands on all sites of ONE level, so once
// faults steer writes around, some level misses the newest version and
// nothing ever back-fills it. The gaps are reported, not violations: the
// protocol stays correct, which is exactly what makes them worth measuring.
func TestSimInstantRecoveryLeavesGaps(t *testing.T) {
	rep, err := Campaign(testConfig(1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failure != nil {
		t.Fatalf("instant-recovery campaign found a violation: %v", rep.Failure.Violations)
	}
	if rep.MarginGaps == 0 {
		t.Error("instant-recovery campaign reported zero margin gaps; single-level writes should leave some level behind")
	}
}

// TestAntiEntropySchedulesAlign: the two modes must inject the same fault
// ticks against the same sites and differ only in the recovery verb, so an
// experiment comparing them is apples-to-apples.
func TestAntiEntropySchedulesAlign(t *testing.T) {
	off, err := BuildInput(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	on, err := BuildInput(aeConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(off.Ops, on.Ops) {
		t.Fatal("op streams differ between modes")
	}
	if len(off.Events) != len(on.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(off.Events), len(on.Events))
	}
	for i := range off.Events {
		a, b := off.Events[i], on.Events[i]
		// Fold the sync verbs back onto the instant ones: after that the
		// events must be identical.
		b.Recover, b.RecoverSync = b.RecoverSync, nil
		b.RecoverAll, b.RecoverAllSync = b.RecoverAll || b.RecoverAllSync, false
		if !reflect.DeepEqual(a, b) {
			t.Errorf("event %d differs beyond the recovery verb:\n%s\n%s", i, a.String(), on.Events[i].String())
		}
	}
}

// TestReproducerCarriesAntiEntropy: the antientropy directive survives the
// textual round trip, so a shrunken anti-entropy failure replays in the same
// mode it was found in.
func TestReproducerCarriesAntiEntropy(t *testing.T) {
	in, err := BuildInput(aeConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	r := in.Reproducer()
	text := r.Format()
	if !strings.Contains(text, "antientropy\n") {
		t.Fatalf("reproducer text missing antientropy directive:\n%s", text)
	}
	parsed, err := ParseReproducer(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if !parsed.AntiEntropy {
		t.Error("parsed reproducer lost AntiEntropy")
	}
	if !reflect.DeepEqual(r, parsed) {
		t.Errorf("reproducer round-trip mismatch:\n%+v\n%+v", r, parsed)
	}
	in2, err := parsed.Input()
	if err != nil {
		t.Fatal(err)
	}
	if !in2.Cfg.AntiEntropy {
		t.Error("rebuilt input lost AntiEntropy")
	}
	if !reflect.DeepEqual(in.Events, in2.Events) {
		t.Errorf("events differ after round trip:\n%+v\n%+v", in.Events, in2.Events)
	}
}
