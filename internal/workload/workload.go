// Package workload generates deterministic operation streams — read/write
// mixes over configurable key populations — for driving simulated clusters.
package workload

import (
	"fmt"
	"math/rand"
	"strconv"
)

// Op is one generated operation.
type Op struct {
	IsRead bool
	Key    string
}

// Source produces an operation stream; Generator and PhasedGenerator
// implement it.
type Source interface {
	Next() Op
}

// Config shapes a generator.
type Config struct {
	// ReadFraction ∈ [0,1] is the probability an operation is a read.
	ReadFraction float64
	// Keys is the key-population size (default 16).
	Keys int
	// ZipfS, when > 1, skews key popularity with a Zipf distribution of
	// parameter s; 0 (or ≤1) means uniform keys.
	ZipfS float64
	// Seed fixes the stream.
	Seed int64
}

// Generator produces a deterministic operation stream.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *rand.Zipf
}

// NewGenerator validates the configuration and builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		return nil, fmt.Errorf("workload: read fraction %v outside [0,1]", cfg.ReadFraction)
	}
	if cfg.Keys == 0 {
		cfg.Keys = 16
	}
	if cfg.Keys < 1 {
		return nil, fmt.Errorf("workload: key population %d must be positive", cfg.Keys)
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.ZipfS > 1 {
		g.zipf = rand.NewZipf(g.rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	return g, nil
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	var key int
	if g.zipf != nil {
		key = int(g.zipf.Uint64())
	} else {
		key = g.rng.Intn(g.cfg.Keys)
	}
	return Op{
		IsRead: g.rng.Float64() < g.cfg.ReadFraction,
		Key:    "key-" + strconv.Itoa(key),
	}
}
