package workload

import (
	"math"
	"testing"
)

func TestGeneratorReadFraction(t *testing.T) {
	g, err := NewGenerator(Config{ReadFraction: 0.7, Keys: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const ops = 20000
	reads := 0
	for i := 0; i < ops; i++ {
		if g.Next().IsRead {
			reads++
		}
	}
	if got := float64(reads) / ops; math.Abs(got-0.7) > 0.02 {
		t.Errorf("read fraction %v, want ≈0.7", got)
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1, _ := NewGenerator(Config{ReadFraction: 0.5, Keys: 4, Seed: 7})
	g2, _ := NewGenerator(Config{ReadFraction: 0.5, Keys: 4, Seed: 7})
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("streams diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestGeneratorKeyRange(t *testing.T) {
	g, _ := NewGenerator(Config{ReadFraction: 0, Keys: 3, Seed: 2})
	seen := make(map[string]bool)
	for i := 0; i < 300; i++ {
		seen[g.Next().Key] = true
	}
	if len(seen) != 3 {
		t.Errorf("saw keys %v, want 3 distinct", seen)
	}
	for k := range seen {
		if k != "key-0" && k != "key-1" && k != "key-2" {
			t.Errorf("unexpected key %q", k)
		}
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	g, err := NewGenerator(Config{ReadFraction: 1, Keys: 100, ZipfS: 1.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const ops = 10000
	for i := 0; i < ops; i++ {
		counts[g.Next().Key]++
	}
	// Under Zipf, key-0 dominates heavily.
	if counts["key-0"] < ops/3 {
		t.Errorf("key-0 drew %d of %d ops, want a dominant share", counts["key-0"], ops)
	}
}

func TestGeneratorDefaults(t *testing.T) {
	g, err := NewGenerator(Config{ReadFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if g.cfg.Keys != 16 {
		t.Errorf("default key population = %d, want 16", g.cfg.Keys)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(Config{ReadFraction: -0.1}); err == nil {
		t.Error("negative read fraction accepted")
	}
	if _, err := NewGenerator(Config{ReadFraction: 1.1}); err == nil {
		t.Error("read fraction > 1 accepted")
	}
	if _, err := NewGenerator(Config{ReadFraction: 0.5, Keys: -3}); err == nil {
		t.Error("negative key population accepted")
	}
}

func TestSourceInterfaceSatisfied(t *testing.T) {
	var _ Source = (*Generator)(nil)
	var _ Source = (*PhasedGenerator)(nil)
}
