package workload

import (
	"math"
	"testing"
)

func TestPhasedGeneratorShiftsMix(t *testing.T) {
	g, err := NewPhasedGenerator([]Phase{
		{Config: Config{ReadFraction: 1, Keys: 2, Seed: 1}, Ops: 500},
		{Config: Config{ReadFraction: 0, Keys: 2, Seed: 2}, Ops: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalOps() != 1000 {
		t.Errorf("TotalOps = %d", g.TotalOps())
	}
	reads1 := 0
	for i := 0; i < 500; i++ {
		if g.Phase() != 0 {
			t.Fatalf("op %d in phase %d, want 0", i, g.Phase())
		}
		if g.Next().IsRead {
			reads1++
		}
	}
	reads2 := 0
	for i := 0; i < 500; i++ {
		if g.Next().IsRead {
			reads2++
		}
	}
	if g.Phase() != 1 {
		t.Errorf("final phase = %d", g.Phase())
	}
	if reads1 != 500 || reads2 != 0 {
		t.Errorf("phase mixes: %d/500 then %d/500 reads", reads1, reads2)
	}
}

func TestPhasedGeneratorTailContinues(t *testing.T) {
	g, err := NewPhasedGenerator([]Phase{
		{Config: Config{ReadFraction: 0.5, Keys: 4, Seed: 3}, Ops: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const extra = 10000
	for i := 0; i < 10+extra; i++ {
		if g.Next().IsRead {
			reads++
		}
	}
	if frac := float64(reads) / (10 + extra); math.Abs(frac-0.5) > 0.03 {
		t.Errorf("tail read fraction %v, want ≈0.5", frac)
	}
}

func TestPhasedGeneratorValidation(t *testing.T) {
	if _, err := NewPhasedGenerator(nil); err == nil {
		t.Error("empty phases accepted")
	}
	if _, err := NewPhasedGenerator([]Phase{{Config: Config{ReadFraction: 0.5}, Ops: 0}}); err == nil {
		t.Error("zero-op phase accepted")
	}
	if _, err := NewPhasedGenerator([]Phase{{Config: Config{ReadFraction: 2}, Ops: 5}}); err == nil {
		t.Error("invalid phase config accepted")
	}
}
