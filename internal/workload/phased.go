package workload

import "fmt"

// Phase is one segment of a phased workload: a generator configuration and
// how many operations it lasts.
type Phase struct {
	Config Config
	Ops    int
}

// PhasedGenerator plays a sequence of workload phases — e.g. a read-heavy
// day shifting into a write-heavy batch window, the scenario that motivates
// the paper's reconfigurable protocol. After the last phase it keeps
// producing from the final phase's distribution.
type PhasedGenerator struct {
	phases []Phase
	gens   []*Generator
	idx    int
	left   int
}

// NewPhasedGenerator validates every phase and builds the generator.
func NewPhasedGenerator(phases []Phase) (*PhasedGenerator, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: no phases")
	}
	g := &PhasedGenerator{phases: phases}
	for i, ph := range phases {
		if ph.Ops <= 0 {
			return nil, fmt.Errorf("workload: phase %d has non-positive op count %d", i, ph.Ops)
		}
		gen, err := NewGenerator(ph.Config)
		if err != nil {
			return nil, fmt.Errorf("workload: phase %d: %w", i, err)
		}
		g.gens = append(g.gens, gen)
	}
	g.left = phases[0].Ops
	return g, nil
}

// Next produces the next operation, advancing through phases.
func (g *PhasedGenerator) Next() Op {
	if g.left == 0 && g.idx < len(g.phases)-1 {
		g.idx++
		g.left = g.phases[g.idx].Ops
	}
	if g.left > 0 {
		g.left--
	}
	return g.gens[g.idx].Next()
}

// Phase returns the index of the phase the next operation will come from.
func (g *PhasedGenerator) Phase() int { return g.idx }

// TotalOps returns the sum of all phases' op counts.
func (g *PhasedGenerator) TotalOps() int {
	total := 0
	for _, ph := range g.phases {
		total += ph.Ops
	}
	return total
}
