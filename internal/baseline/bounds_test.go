package baseline

import (
	"math"
	"testing"

	"arbor/internal/quorum"
)

// TestNaorWoolLoadBounds verifies the fundamental load lower bound of Naor
// & Wool on every enumerable intersecting system in this package: for a
// quorum system with smallest quorum size c over n elements,
//
//	L(S) ≥ max(1/c, c/n)
//
// and therefore L(S) ≥ 1/√n. The optimal loads are computed exactly by LP.
func TestNaorWoolLoadBounds(t *testing.T) {
	systems := []struct {
		name string
		make func() (*quorum.System, error)
	}{
		{name: "majority5", make: func() (*quorum.System, error) {
			m, err := NewMajority(5)
			if err != nil {
				return nil, err
			}
			return m.ReadQuorums()
		}},
		{name: "majority7", make: func() (*quorum.System, error) {
			m, err := NewMajority(7)
			if err != nil {
				return nil, err
			}
			return m.ReadQuorums()
		}},
		{name: "fpp7", make: func() (*quorum.System, error) {
			f, err := NewFPP(2)
			if err != nil {
				return nil, err
			}
			return f.ReadQuorums()
		}},
		{name: "fpp13", make: func() (*quorum.System, error) {
			f, err := NewFPP(3)
			if err != nil {
				return nil, err
			}
			return f.ReadQuorums()
		}},
		{name: "treequorum7", make: func() (*quorum.System, error) {
			tq, err := NewTreeQuorum(2)
			if err != nil {
				return nil, err
			}
			return tq.ReadQuorums()
		}},
		{name: "treequorum15", make: func() (*quorum.System, error) {
			tq, err := NewTreeQuorum(3)
			if err != nil {
				return nil, err
			}
			return tq.ReadQuorums()
		}},
		{name: "hqc9", make: func() (*quorum.System, error) {
			c, err := NewHQC(2)
			if err != nil {
				return nil, err
			}
			return c.ReadQuorums()
		}},
		{name: "gridWrites9", make: func() (*quorum.System, error) {
			g, err := NewSquareGrid(9)
			if err != nil {
				return nil, err
			}
			return g.WriteQuorums()
		}},
		{name: "voting5", make: func() (*quorum.System, error) {
			v, err := NewUniformVoting(5, 3, 3)
			if err != nil {
				return nil, err
			}
			return v.WriteQuorums()
		}},
		{name: "weightedVoting", make: func() (*quorum.System, error) {
			v, err := NewVoting([]int{3, 1, 1, 1}, 4, 4)
			if err != nil {
				return nil, err
			}
			return v.WriteQuorums()
		}},
	}
	for _, tt := range systems {
		t.Run(tt.name, func(t *testing.T) {
			sys, err := tt.make()
			if err != nil {
				t.Fatal(err)
			}
			if !sys.IsIntersecting() {
				t.Fatal("bound applies to intersecting systems only")
			}
			load, _, err := quorum.OptimalLoad(sys)
			if err != nil {
				t.Fatal(err)
			}
			c := float64(sys.MinQuorumSize())
			n := float64(sys.N())
			bound := math.Max(1/c, c/n)
			if load < bound-1e-7 {
				t.Errorf("optimal load %v below Naor–Wool bound %v (c=%v n=%v)", load, bound, c, n)
			}
			if load < 1/math.Sqrt(n)-1e-7 {
				t.Errorf("optimal load %v below the universal 1/√n bound", load)
			}
		})
	}
}
