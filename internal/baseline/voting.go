package baseline

import (
	"fmt"
	"sort"

	"arbor/internal/quorum"
)

// Voting is weighted voting (Gifford 1979; vote assignment per
// Garcia-Molina & Barbara, the paper's reference [6]): replica i carries
// Weights[i] votes, a read gathers at least R votes and a write at least W
// votes, with R+W > V and 2W > V (V = total votes) so that read/write and
// write/write quorums intersect.
type Voting struct {
	weights []int
	total   int
	readQ   int
	writeQ  int
}

var (
	_ Analyzer   = (*Voting)(nil)
	_ Enumerator = (*Voting)(nil)
)

// NewVoting validates the vote assignment and thresholds.
func NewVoting(weights []int, readQ, writeQ int) (*Voting, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("baseline: voting needs at least one replica")
	}
	total := 0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("baseline: negative vote weight at replica %d", i)
		}
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("baseline: all vote weights are zero")
	}
	if readQ < 1 || writeQ < 1 || readQ > total || writeQ > total {
		return nil, fmt.Errorf("baseline: thresholds r=%d w=%d outside [1,%d]", readQ, writeQ, total)
	}
	if readQ+writeQ <= total {
		return nil, fmt.Errorf("baseline: r+w = %d must exceed total votes %d (read/write intersection)", readQ+writeQ, total)
	}
	if 2*writeQ <= total {
		return nil, fmt.Errorf("baseline: 2w = %d must exceed total votes %d (write/write intersection)", 2*writeQ, total)
	}
	ws := make([]int, len(weights))
	copy(ws, weights)
	return &Voting{weights: ws, total: total, readQ: readQ, writeQ: writeQ}, nil
}

// NewUniformVoting assigns one vote per replica: r-of-n reads, w-of-n
// writes. NewUniformVoting(n, (n+1)/2, (n+1)/2) is majority consensus;
// NewUniformVoting(n, 1, n) is ROWA.
func NewUniformVoting(n, readQ, writeQ int) (*Voting, error) {
	weights := make([]int, n)
	for i := range weights {
		weights[i] = 1
	}
	return NewVoting(weights, readQ, writeQ)
}

// Name returns "VOTING".
func (v *Voting) Name() string { return "VOTING" }

// N returns the number of replicas.
func (v *Voting) N() int { return len(v.weights) }

// TotalVotes returns V.
func (v *Voting) TotalVotes() int { return v.total }

// minReplicas returns the fewest replicas whose votes reach the threshold
// (greedy over descending weights) — the protocol's best-case cost.
func (v *Voting) minReplicas(threshold int) int {
	ws := make([]int, len(v.weights))
	copy(ws, v.weights)
	sort.Sort(sort.Reverse(sort.IntSlice(ws)))
	sum, count := 0, 0
	for _, w := range ws {
		if sum >= threshold {
			break
		}
		sum += w
		count++
	}
	return count
}

// ReadCost is the minimum number of replicas reaching the read threshold.
func (v *Voting) ReadCost() float64 { return float64(v.minReplicas(v.readQ)) }

// WriteCost is the minimum number of replicas reaching the write threshold.
func (v *Voting) WriteCost() float64 { return float64(v.minReplicas(v.writeQ)) }

// ReadLoad is the optimal load. For uniform weights it is r/n; for general
// weights it is computed from the enumerated system (small n only) and
// returns NaN when enumeration is infeasible.
func (v *Voting) ReadLoad() float64 { return v.load(v.readQ) }

// WriteLoad is the optimal load (see ReadLoad).
func (v *Voting) WriteLoad() float64 { return v.load(v.writeQ) }

func (v *Voting) load(threshold int) float64 {
	if v.uniform() {
		return float64(threshold) / float64(len(v.weights))
	}
	sys, err := v.enumerate(threshold)
	if err != nil {
		return -1
	}
	l, _, err := quorum.OptimalLoad(sys)
	if err != nil {
		return -1
	}
	return l
}

func (v *Voting) uniform() bool {
	for _, w := range v.weights {
		if w != 1 {
			return false
		}
	}
	return true
}

// availability returns the probability the votes of alive replicas reach
// the threshold, via exact dynamic programming over the vote distribution
// (O(n·V), any weights).
func (v *Voting) availability(threshold int, p float64) float64 {
	dist := make([]float64, v.total+1)
	dist[0] = 1
	reached := 0
	for _, w := range v.weights {
		next := make([]float64, v.total+1)
		for votes := 0; votes <= reached; votes++ {
			if dist[votes] == 0 {
				continue
			}
			next[votes] += dist[votes] * (1 - p)
			next[votes+w] += dist[votes] * p
		}
		reached += w
		dist = next
	}
	sum := 0.0
	for votes := threshold; votes <= v.total; votes++ {
		sum += dist[votes]
	}
	return sum
}

// ReadAvailability is P(alive votes ≥ r).
func (v *Voting) ReadAvailability(p float64) float64 { return v.availability(v.readQ, p) }

// WriteAvailability is P(alive votes ≥ w).
func (v *Voting) WriteAvailability(p float64) float64 { return v.availability(v.writeQ, p) }

// enumerate lists all minimal vote quorums for a threshold (small n only).
func (v *Voting) enumerate(threshold int) (*quorum.System, error) {
	n := len(v.weights)
	if n > 18 {
		return nil, fmt.Errorf("baseline: voting enumeration for n=%d too large", n)
	}
	var sets []quorum.Set
	for mask := 1; mask < 1<<n; mask++ {
		votes := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				votes += v.weights[i]
			}
		}
		if votes < threshold {
			continue
		}
		// Minimality: removing any member must fall below the threshold.
		minimal := true
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 && votes-v.weights[i] >= threshold {
				minimal = false
				break
			}
		}
		if !minimal {
			continue
		}
		var q []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				q = append(q, i)
			}
		}
		sets = append(sets, quorum.NewSet(q...))
	}
	return quorum.NewSystem(n, sets)
}

// ReadQuorums enumerates the minimal read quorums (small n only).
func (v *Voting) ReadQuorums() (*quorum.System, error) { return v.enumerate(v.readQ) }

// WriteQuorums enumerates the minimal write quorums (small n only).
func (v *Voting) WriteQuorums() (*quorum.System, error) { return v.enumerate(v.writeQ) }
