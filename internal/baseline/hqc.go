package baseline

import (
	"fmt"
	"math"

	"arbor/internal/quorum"
)

// HQC is Kumar's Hierarchical Quorum Consensus over a complete ternary
// hierarchy of height h: only the 3^h leaves are replicas, and a quorum
// recursively assembles quorums from 2 of the 3 subtrees at every level.
// Quorums therefore have size 2^h = n^0.63 and the optimal load is n^−0.37
// (Naor & Wool §6.4).
type HQC struct {
	h int
	n int
}

var (
	_ Analyzer   = HQC{}
	_ Enumerator = HQC{}
)

// NewHQC creates the analysis for a ternary hierarchy of height h
// (n = 3^h replicas).
func NewHQC(h int) (HQC, error) {
	if h < 1 || h > 16 {
		return HQC{}, fmt.Errorf("baseline: HQC height %d out of range [1,16]", h)
	}
	n := 1
	for i := 0; i < h; i++ {
		n *= 3
	}
	return HQC{h: h, n: n}, nil
}

// NewHQCForSize creates the analysis for the smallest ternary hierarchy with
// at least n leaves.
func NewHQCForSize(n int) (HQC, error) {
	for h := 1; h <= 16; h++ {
		c, _ := NewHQC(h)
		if c.n >= n {
			return c, nil
		}
	}
	return HQC{}, fmt.Errorf("baseline: n=%d too large", n)
}

// Name returns "HQC".
func (c HQC) Name() string { return "HQC" }

// N returns 3^h.
func (c HQC) N() int { return c.n }

// Height returns h.
func (c HQC) Height() int { return c.h }

// ReadCost is 2^h = n^0.63 (log₃2 ≈ 0.63).
func (c HQC) ReadCost() float64 { return math.Pow(2, float64(c.h)) }

// WriteCost equals ReadCost: HQC is symmetric with quorums of 2 at each
// level.
func (c HQC) WriteCost() float64 { return c.ReadCost() }

// ReadLoad is (2/3)^h = n^−0.37, the optimal load.
func (c HQC) ReadLoad() float64 { return math.Pow(2.0/3, float64(c.h)) }

// WriteLoad equals ReadLoad.
func (c HQC) WriteLoad() float64 { return c.ReadLoad() }

// availability follows the 2-of-3 recursion A(0)=p, A(l) = 3A²−2A³.
func (c HQC) availability(p float64) float64 {
	a := p
	for l := 1; l <= c.h; l++ {
		a = 3*a*a - 2*a*a*a
	}
	return a
}

// ReadAvailability is the 2-of-3 recursive availability.
func (c HQC) ReadAvailability(p float64) float64 { return c.availability(p) }

// WriteAvailability equals ReadAvailability.
func (c HQC) WriteAvailability(p float64) float64 { return c.availability(p) }

// enumerate builds all quorums recursively. m(h) = 3·m(h−1)², so only h ≤ 2
// stays below the enumeration cap.
func (c HQC) enumerate() (*quorum.System, error) {
	if c.h > 2 {
		return nil, fmt.Errorf("baseline: HQC enumeration for h=%d too large", c.h)
	}
	// Leaves of the subtree rooted at depth d covering [lo, lo+3^(h−d)).
	var gen func(lo, size int) []quorum.Set
	gen = func(lo, size int) []quorum.Set {
		if size == 1 {
			return []quorum.Set{quorum.NewSet(lo)}
		}
		third := size / 3
		subs := [][]quorum.Set{
			gen(lo, third),
			gen(lo+third, third),
			gen(lo+2*third, third),
		}
		var out []quorum.Set
		pairs := [][2]int{{0, 1}, {0, 2}, {1, 2}}
		for _, pr := range pairs {
			for _, qa := range subs[pr[0]] {
				for _, qb := range subs[pr[1]] {
					out = append(out, quorum.NewSet(append(append([]int{}, qa...), qb...)...))
				}
			}
		}
		return out
	}
	return quorum.NewSystem(c.n, gen(0, c.n))
}

// ReadQuorums enumerates all quorums (h ≤ 2).
func (c HQC) ReadQuorums() (*quorum.System, error) { return c.enumerate() }

// WriteQuorums enumerates all quorums (h ≤ 2).
func (c HQC) WriteQuorums() (*quorum.System, error) { return c.enumerate() }
