package baseline

import (
	"math"
	"testing"

	"arbor/internal/quorum"
)

const tol = 1e-7

// checkLoadsAgainstLP verifies a protocol's closed-form loads against the
// exact LP optimum of its enumerated quorum systems.
func checkLoadsAgainstLP(t *testing.T, a Analyzer, e Enumerator) {
	t.Helper()
	reads, err := e.ReadQuorums()
	if err != nil {
		t.Fatalf("%s: ReadQuorums: %v", a.Name(), err)
	}
	got, _, err := quorum.OptimalLoad(reads)
	if err != nil {
		t.Fatalf("%s: read LP: %v", a.Name(), err)
	}
	if math.Abs(got-a.ReadLoad()) > tol {
		t.Errorf("%s: read load LP %v vs closed form %v", a.Name(), got, a.ReadLoad())
	}
	writes, err := e.WriteQuorums()
	if err != nil {
		t.Fatalf("%s: WriteQuorums: %v", a.Name(), err)
	}
	got, _, err = quorum.OptimalLoad(writes)
	if err != nil {
		t.Fatalf("%s: write LP: %v", a.Name(), err)
	}
	if math.Abs(got-a.WriteLoad()) > tol {
		t.Errorf("%s: write load LP %v vs closed form %v", a.Name(), got, a.WriteLoad())
	}
}

// checkAvailabilityAgainstExact verifies closed-form availabilities against
// exhaustive enumeration at several p.
func checkAvailabilityAgainstExact(t *testing.T, a Analyzer, e Enumerator) {
	t.Helper()
	reads, err := e.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	writes, err := e.WriteQuorums()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.55, 0.7, 0.85, 0.95} {
		exact, err := quorum.ExactAvailability(reads, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-a.ReadAvailability(p)) > 1e-9 {
			t.Errorf("%s p=%v: read availability %v vs exact %v", a.Name(), p, a.ReadAvailability(p), exact)
		}
		exact, err = quorum.ExactAvailability(writes, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-a.WriteAvailability(p)) > 1e-9 {
			t.Errorf("%s p=%v: write availability %v vs exact %v", a.Name(), p, a.WriteAvailability(p), exact)
		}
	}
}

func TestROWA(t *testing.T) {
	r, err := NewROWA(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "ROWA" || r.N() != 6 {
		t.Error("identity mismatch")
	}
	if r.ReadCost() != 1 || r.WriteCost() != 6 {
		t.Errorf("costs = %v/%v, want 1/6", r.ReadCost(), r.WriteCost())
	}
	if math.Abs(r.ReadLoad()-1.0/6) > tol || r.WriteLoad() != 1 {
		t.Errorf("loads = %v/%v", r.ReadLoad(), r.WriteLoad())
	}
	checkLoadsAgainstLP(t, r, r)
	checkAvailabilityAgainstExact(t, r, r)
	if _, err := NewROWA(0); err == nil {
		t.Error("NewROWA(0) accepted")
	}
}

func TestMajority(t *testing.T) {
	m, err := NewMajority(5)
	if err != nil {
		t.Fatal(err)
	}
	if m.ReadCost() != 3 || m.WriteCost() != 3 {
		t.Errorf("costs = %v/%v, want 3/3", m.ReadCost(), m.WriteCost())
	}
	if math.Abs(m.ReadLoad()-0.6) > tol {
		t.Errorf("load = %v, want 0.6", m.ReadLoad())
	}
	if m.ReadLoad() < 0.5 {
		t.Error("majority load must be ≥ 0.5")
	}
	checkLoadsAgainstLP(t, m, m)
	checkAvailabilityAgainstExact(t, m, m)
	sys, err := m.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 10 { // C(5,3)
		t.Errorf("majority-of-5 has %d quorums, want 10", sys.Len())
	}
	if !sys.IsCoterie() {
		t.Error("majority system should be a coterie")
	}
	for _, n := range []int{0, 2, 4} {
		if _, err := NewMajority(n); err == nil {
			t.Errorf("NewMajority(%d) accepted", n)
		}
	}
	big, err := NewMajority(21)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.ReadQuorums(); err == nil {
		t.Error("majority enumeration for n=21 should refuse")
	}
}

func TestGrid(t *testing.T) {
	g, err := NewSquareGrid(9)
	if err != nil {
		t.Fatal(err)
	}
	if g.ReadCost() != 3 {
		t.Errorf("read cost = %v, want 3", g.ReadCost())
	}
	if g.WriteCost() != 5 {
		t.Errorf("write cost = %v, want 5 (rows+cols−1)", g.WriteCost())
	}
	if math.Abs(g.ReadLoad()-1.0/3) > tol {
		t.Errorf("read load = %v, want 1/3", g.ReadLoad())
	}
	if math.Abs(g.WriteLoad()-5.0/9) > tol {
		t.Errorf("write load = %v, want 5/9", g.WriteLoad())
	}
	checkLoadsAgainstLP(t, g, g)
	checkAvailabilityAgainstExact(t, g, g)

	reads, err := g.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	if reads.Len() != 27 {
		t.Errorf("3x3 grid has %d read quorums, want 27", reads.Len())
	}
	writes, err := g.WriteQuorums()
	if err != nil {
		t.Fatal(err)
	}
	if writes.Len() != 27 {
		t.Errorf("3x3 grid has %d write quorums, want 27", writes.Len())
	}
	if err := (quorum.BiCoterie{Reads: reads, Writes: writes}).Validate(); err != nil {
		t.Errorf("grid bicoterie: %v", err)
	}
	// Writes must also intersect each other (write-write conflicts).
	if !writes.IsIntersecting() {
		t.Error("grid write quorums must pairwise intersect")
	}

	if _, err := NewSquareGrid(10); err == nil {
		t.Error("NewSquareGrid(10) accepted")
	}
	if _, err := NewGrid(0, 3); err == nil {
		t.Error("NewGrid(0,3) accepted")
	}
	huge, err := NewGrid(20, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := huge.ReadQuorums(); err == nil {
		t.Error("20x20 read enumeration should refuse")
	}
	if _, err := huge.WriteQuorums(); err == nil {
		t.Error("20x20 write enumeration should refuse")
	}
}

func TestGridRectangular(t *testing.T) {
	g, err := NewGrid(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 || g.ReadCost() != 4 || g.WriteCost() != 5 {
		t.Errorf("2x4 grid: n=%d read=%v write=%v", g.N(), g.ReadCost(), g.WriteCost())
	}
	checkLoadsAgainstLP(t, g, g)
	checkAvailabilityAgainstExact(t, g, g)
}

func TestFPPFano(t *testing.T) {
	f, err := NewFPP(2)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 7 || f.Order() != 2 {
		t.Fatalf("Fano plane: n=%d q=%d", f.N(), f.Order())
	}
	sys, err := f.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 7 {
		t.Errorf("Fano plane has %d lines, want 7", sys.Len())
	}
	for j := 0; j < sys.Len(); j++ {
		if len(sys.Quorum(j)) != 3 {
			t.Errorf("line %d has %d points, want 3", j, len(sys.Quorum(j)))
		}
	}
	// Projective plane: any two lines meet in exactly one point, every
	// point lies on q+1 = 3 lines.
	for i := 0; i < sys.Len(); i++ {
		for j := i + 1; j < sys.Len(); j++ {
			common := 0
			for _, e := range sys.Quorum(i) {
				if sys.Quorum(j).Contains(e) {
					common++
				}
			}
			if common != 1 {
				t.Errorf("lines %d,%d share %d points, want exactly 1", i, j, common)
			}
		}
	}
	counts := make([]int, f.N())
	for j := 0; j < sys.Len(); j++ {
		for _, e := range sys.Quorum(j) {
			counts[e]++
		}
	}
	for pt, c := range counts {
		if c != 3 {
			t.Errorf("point %d on %d lines, want 3", pt, c)
		}
	}
	if math.Abs(f.ReadLoad()-3.0/7) > tol {
		t.Errorf("load = %v, want 3/7", f.ReadLoad())
	}
	checkLoadsAgainstLP(t, f, f)
	// availability() is exact for n=7; spot check against direct
	// enumeration to guard the plumbing.
	exact, err := quorum.ExactAvailability(sys, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.ReadAvailability(0.8)-exact) > 1e-9 {
		t.Errorf("availability = %v, want %v", f.ReadAvailability(0.8), exact)
	}
	if f.WriteAvailability(0.8) != f.ReadAvailability(0.8) {
		t.Error("FPP is symmetric")
	}
}

func TestFPPOrder3(t *testing.T) {
	f, err := NewFPP(3)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 13 {
		t.Fatalf("PG(2,3): n=%d, want 13", f.N())
	}
	sys, err := f.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 13 {
		t.Errorf("PG(2,3) has %d lines, want 13", sys.Len())
	}
	if !sys.IsIntersecting() {
		t.Error("lines must pairwise intersect")
	}
	checkLoadsAgainstLP(t, f, f)
}

func TestFPPErrors(t *testing.T) {
	for _, q := range []int{0, 1, 4, 6, 9} {
		if _, err := NewFPP(q); err == nil {
			t.Errorf("NewFPP(%d) accepted (not a prime ≥ 2)", q)
		}
	}
	f, err := NewFPPForSize(50)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() < 50 {
		t.Errorf("NewFPPForSize(50) produced n=%d", f.N())
	}
}

func TestTreeQuorumH2(t *testing.T) {
	tq, err := NewTreeQuorum(2)
	if err != nil {
		t.Fatal(err)
	}
	if tq.N() != 7 || tq.Height() != 2 {
		t.Fatalf("h=2: n=%d", tq.N())
	}
	sys, err := tq.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	// m(0)=1, m(1)=2·1+1=3, m(2)=2·3+9=15 minimal quorums.
	if sys.Len() != 15 {
		t.Errorf("h=2 tree quorum count = %d, want 15", sys.Len())
	}
	if !sys.IsIntersecting() {
		t.Error("tree quorums must pairwise intersect")
	}
	// Load 2/(h+2) = 1/2, proven optimal by Naor & Wool.
	if math.Abs(tq.ReadLoad()-0.5) > tol {
		t.Errorf("load = %v, want 0.5", tq.ReadLoad())
	}
	checkLoadsAgainstLP(t, tq, tq)
	// The availability recursion must match exhaustive enumeration of the
	// real quorum sets.
	for _, p := range []float64{0.55, 0.7, 0.9} {
		exact, err := quorum.ExactAvailability(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tq.ReadAvailability(p)-exact) > 1e-9 {
			t.Errorf("p=%v: recursion %v vs exact %v", p, tq.ReadAvailability(p), exact)
		}
	}
	// Paper's §4.1 cost expression at h=2: 2²·3²/(2·4) − 1 = 3.5.
	if math.Abs(tq.ReadCost()-3.5) > tol {
		t.Errorf("cost = %v, want 3.5", tq.ReadCost())
	}
	if tq.WriteCost() != tq.ReadCost() || tq.WriteLoad() != tq.ReadLoad() {
		t.Error("BINARY is symmetric")
	}
}

func TestTreeQuorumH3LoadOptimal(t *testing.T) {
	tq, err := NewTreeQuorum(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tq.ReadLoad()-0.4) > tol {
		t.Errorf("h=3 load = %v, want 2/5", tq.ReadLoad())
	}
	checkLoadsAgainstLP(t, tq, tq)
}

func TestTreeQuorumBounds(t *testing.T) {
	if _, err := NewTreeQuorum(0); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := NewTreeQuorum(26); err == nil {
		t.Error("h=26 accepted")
	}
	big, err := NewTreeQuorum(5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.ReadQuorums(); err == nil {
		t.Error("h=5 enumeration should refuse")
	}
	tq, err := NewTreeQuorumForSize(20)
	if err != nil {
		t.Fatal(err)
	}
	if tq.N() < 20 {
		t.Errorf("ForSize(20) produced n=%d", tq.N())
	}
	if _, err := NewTreeQuorumForSize(1 << 30); err == nil {
		t.Error("huge ForSize accepted")
	}
}

func TestHQCH1IsMajorityOf3(t *testing.T) {
	c, err := NewHQC(1)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 3 {
		t.Fatalf("h=1: n=%d", c.N())
	}
	sys, err := c.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 3 || !sys.IsCoterie() {
		t.Errorf("HQC(1) should be the majority-of-3 coterie, got %d quorums", sys.Len())
	}
	if math.Abs(c.ReadLoad()-2.0/3) > tol {
		t.Errorf("load = %v, want 2/3", c.ReadLoad())
	}
	checkLoadsAgainstLP(t, c, c)
	checkAvailabilityAgainstExact(t, c, c)
}

func TestHQCH2(t *testing.T) {
	c, err := NewHQC(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 9 {
		t.Fatalf("h=2: n=%d", c.N())
	}
	sys, err := c.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 27 { // 3·m(1)² = 3·9
		t.Errorf("HQC(2) has %d quorums, want 27", sys.Len())
	}
	if !sys.IsIntersecting() {
		t.Error("HQC quorums must pairwise intersect")
	}
	if math.Abs(c.ReadLoad()-4.0/9) > tol {
		t.Errorf("load = %v, want 4/9", c.ReadLoad())
	}
	if math.Abs(c.ReadCost()-4) > tol {
		t.Errorf("cost = %v, want 4 (=2^h)", c.ReadCost())
	}
	checkLoadsAgainstLP(t, c, c)
	checkAvailabilityAgainstExact(t, c, c)
	// n^0.63 / n^−0.37 closed forms.
	n := float64(c.N())
	if math.Abs(c.ReadCost()-math.Pow(n, math.Log(2)/math.Log(3))) > 1e-9 {
		t.Errorf("cost %v should equal n^log3(2) = %v", c.ReadCost(), math.Pow(n, math.Log(2)/math.Log(3)))
	}
	if math.Abs(c.ReadLoad()-math.Pow(n, math.Log(2.0/3)/math.Log(3))) > 1e-9 {
		t.Errorf("load %v should equal n^(log3(2)−1)", c.ReadLoad())
	}
}

func TestHQCBounds(t *testing.T) {
	if _, err := NewHQC(0); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := NewHQC(17); err == nil {
		t.Error("h=17 accepted")
	}
	c, err := NewHQC(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadQuorums(); err == nil {
		t.Error("h=3 enumeration should refuse")
	}
	forSize, err := NewHQCForSize(30)
	if err != nil {
		t.Fatal(err)
	}
	if forSize.N() < 30 {
		t.Errorf("ForSize(30) produced n=%d", forSize.N())
	}
}

func TestBinomial(t *testing.T) {
	tests := []struct {
		n, k int
		want float64
	}{
		{5, 0, 1},
		{5, 5, 1},
		{5, 2, 10},
		{5, 3, 10},
		{10, 5, 252},
		{5, 6, 0},
		{5, -1, 0},
	}
	for _, tt := range tests {
		if got := binomial(tt.n, tt.k); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("C(%d,%d) = %v, want %v", tt.n, tt.k, got, tt.want)
		}
	}
	// Tail sums to 1 from 0.
	if got := binomialTail(8, 0, 0.3); math.Abs(got-1) > 1e-12 {
		t.Errorf("full tail = %v, want 1", got)
	}
}

func TestIsPrime(t *testing.T) {
	primes := map[int]bool{2: true, 3: true, 5: true, 7: true, 11: true, 13: true}
	for v := -2; v <= 14; v++ {
		if got := isPrime(v); got != primes[v] {
			t.Errorf("isPrime(%d) = %v", v, got)
		}
	}
}
