package baseline

import (
	"fmt"
	"math"

	"arbor/internal/quorum"
)

// FPP is Maekawa's √n protocol: replicas are the points of a finite
// projective plane of prime order q (n = q²+q+1) and quorums are its lines,
// each of size q+1, any two of which intersect in exactly one point.
type FPP struct {
	q     int
	n     int
	lines []quorum.Set
}

var (
	_ Analyzer   = (*FPP)(nil)
	_ Enumerator = (*FPP)(nil)
)

// NewFPP builds the projective plane PG(2,q) for a prime order q.
//
// Points are indexed 0..n−1 as: the q² affine points (x,y), then the q
// slope points [m], then the point at infinity. Lines are the q² affine
// lines y = mx+b (plus their slope point), the q vertical lines x = a (plus
// infinity), and the line at infinity.
func NewFPP(q int) (*FPP, error) {
	if q < 2 || !isPrime(q) {
		return nil, fmt.Errorf("baseline: FPP needs a prime order ≥ 2, got %d", q)
	}
	n := q*q + q + 1
	affine := func(x, y int) int { return x*q + y }
	slope := func(m int) int { return q*q + m }
	infinity := n - 1

	var lines []quorum.Set
	// y = m·x + b through slope point [m].
	for m := 0; m < q; m++ {
		for b := 0; b < q; b++ {
			pts := make([]int, 0, q+1)
			for x := 0; x < q; x++ {
				pts = append(pts, affine(x, (m*x+b)%q))
			}
			pts = append(pts, slope(m))
			lines = append(lines, quorum.NewSet(pts...))
		}
	}
	// Vertical lines x = a through the point at infinity.
	for a := 0; a < q; a++ {
		pts := make([]int, 0, q+1)
		for y := 0; y < q; y++ {
			pts = append(pts, affine(a, y))
		}
		pts = append(pts, infinity)
		lines = append(lines, quorum.NewSet(pts...))
	}
	// The line at infinity: all slope points plus infinity.
	pts := make([]int, 0, q+1)
	for m := 0; m < q; m++ {
		pts = append(pts, slope(m))
	}
	pts = append(pts, infinity)
	lines = append(lines, quorum.NewSet(pts...))

	return &FPP{q: q, n: n, lines: lines}, nil
}

// NewFPPForSize builds the smallest projective plane with at least n points
// (prime orders only).
func NewFPPForSize(n int) (*FPP, error) {
	for q := 2; q < 1000; q++ {
		if !isPrime(q) {
			continue
		}
		if q*q+q+1 >= n {
			return NewFPP(q)
		}
	}
	return nil, fmt.Errorf("baseline: no prime-order plane covers n=%d", n)
}

// Name returns "FPP".
func (f *FPP) Name() string { return "FPP" }

// N returns q²+q+1.
func (f *FPP) N() int { return f.n }

// Order returns the plane order q.
func (f *FPP) Order() int { return f.q }

// ReadCost is q+1 ≈ √n.
func (f *FPP) ReadCost() float64 { return float64(f.q + 1) }

// WriteCost is q+1 ≈ √n (FPP uses one symmetric quorum set).
func (f *FPP) WriteCost() float64 { return float64(f.q + 1) }

// ReadLoad is (q+1)/n ≈ 1/√n — the optimal load of Naor & Wool.
func (f *FPP) ReadLoad() float64 { return float64(f.q+1) / float64(f.n) }

// WriteLoad equals ReadLoad.
func (f *FPP) WriteLoad() float64 { return f.ReadLoad() }

// availability computes the probability some line is fully alive: exactly
// for n ≤ 24, else by Monte Carlo with a fixed seed.
func (f *FPP) availability(p float64) float64 {
	sys, err := quorum.NewSystem(f.n, f.lines)
	if err != nil {
		return math.NaN()
	}
	if f.n <= 24 {
		a, err := quorum.ExactAvailability(sys, p)
		if err == nil {
			return a
		}
	}
	return quorum.MonteCarloAvailability(sys, p, 100000, 1)
}

// ReadAvailability is the some-line-alive probability.
func (f *FPP) ReadAvailability(p float64) float64 { return f.availability(p) }

// WriteAvailability is the some-line-alive probability.
func (f *FPP) WriteAvailability(p float64) float64 { return f.availability(p) }

// ReadQuorums returns the plane's lines.
func (f *FPP) ReadQuorums() (*quorum.System, error) {
	return quorum.NewSystem(f.n, f.lines)
}

// WriteQuorums returns the plane's lines.
func (f *FPP) WriteQuorums() (*quorum.System, error) {
	return quorum.NewSystem(f.n, f.lines)
}

func isPrime(v int) bool {
	if v < 2 {
		return false
	}
	for d := 2; d*d <= v; d++ {
		if v%d == 0 {
			return false
		}
	}
	return true
}
