package baseline

import (
	"fmt"
	"math"

	"arbor/internal/quorum"
)

// TreeQuorum is the binary Tree Quorum protocol of Agrawal & El Abbadi
// (ACM TOCS 1991) — the paper's "BINARY" configuration. Replicas form a
// complete binary tree of height h (n = 2^(h+1)−1); a quorum is a root-leaf
// path, with any inaccessible node replaced by paths through both of its
// children.
type TreeQuorum struct {
	h int
	n int
}

var (
	_ Analyzer   = TreeQuorum{}
	_ Enumerator = TreeQuorum{}
)

// NewTreeQuorum creates the analysis for a complete binary tree of height h.
func NewTreeQuorum(h int) (TreeQuorum, error) {
	if h < 1 || h > 25 {
		return TreeQuorum{}, fmt.Errorf("baseline: tree quorum height %d out of range [1,25]", h)
	}
	return TreeQuorum{h: h, n: 1<<(h+1) - 1}, nil
}

// NewTreeQuorumForSize creates the analysis for the smallest complete binary
// tree holding at least n replicas.
func NewTreeQuorumForSize(n int) (TreeQuorum, error) {
	for h := 1; h <= 25; h++ {
		if 1<<(h+1)-1 >= n {
			return NewTreeQuorum(h)
		}
	}
	return TreeQuorum{}, fmt.Errorf("baseline: n=%d too large", n)
}

// Name returns "BINARY".
func (t TreeQuorum) Name() string { return "BINARY" }

// N returns 2^(h+1)−1.
func (t TreeQuorum) N() int { return t.n }

// Height returns h.
func (t TreeQuorum) Height() int { return t.h }

// ReadCost evaluates the paper's §4.1 expected-cost expression for the
// BINARY configuration, derived with f = 2/(2+h) (the fraction of quorums
// that include the root under the optimal-load strategy):
//
//	2^h·(1+h)^h / (h·(2+h)^(h−1)) − 2/h
func (t TreeQuorum) ReadCost() float64 {
	h := float64(t.h)
	return math.Pow(2, h)*math.Pow(1+h, h)/(h*math.Pow(2+h, h-1)) - 2/h
}

// WriteCost equals ReadCost: the protocol uses one symmetric quorum set.
func (t TreeQuorum) WriteCost() float64 { return t.ReadCost() }

// ReadLoad is 2/(h+2) = 2/(log₂(n+1)+1), the optimal load proven by Naor &
// Wool (§6.3) and used in the paper's Figures 3–4.
func (t TreeQuorum) ReadLoad() float64 { return 2 / (float64(t.h) + 2) }

// WriteLoad equals ReadLoad.
func (t TreeQuorum) WriteLoad() float64 { return t.ReadLoad() }

// availability follows the classic recursion: a height-h tree can form a
// quorum if its root is up and one child subtree can (or the root is down
// and both child subtrees can).
func (t TreeQuorum) availability(p float64) float64 {
	a := p // height 0: single node
	for l := 1; l <= t.h; l++ {
		a = p*(1-(1-a)*(1-a)) + (1-p)*a*a
	}
	return a
}

// ReadAvailability is the recursive quorum-formation probability.
func (t TreeQuorum) ReadAvailability(p float64) float64 { return t.availability(p) }

// WriteAvailability equals ReadAvailability.
func (t TreeQuorum) WriteAvailability(p float64) float64 { return t.availability(p) }

// enumerate generates every minimal tree quorum. Counts explode quickly;
// callers should keep h ≤ 3.
func (t TreeQuorum) enumerate() (*quorum.System, error) {
	if t.h > 3 {
		return nil, fmt.Errorf("baseline: tree quorum enumeration for h=%d too large", t.h)
	}
	// Nodes indexed heap-style: root 0, children of i at 2i+1, 2i+2;
	// node i is a leaf when 2i+1 ≥ n.
	var gen func(i int) []quorum.Set
	gen = func(i int) []quorum.Set {
		if 2*i+1 >= t.n {
			return []quorum.Set{quorum.NewSet(i)}
		}
		left, right := gen(2*i+1), gen(2*i+2)
		var out []quorum.Set
		for _, q := range left {
			out = append(out, quorum.NewSet(append([]int{i}, q...)...))
		}
		for _, q := range right {
			out = append(out, quorum.NewSet(append([]int{i}, q...)...))
		}
		for _, ql := range left {
			for _, qr := range right {
				out = append(out, quorum.NewSet(append(append([]int{}, ql...), qr...)...))
			}
		}
		return out
	}
	return quorum.NewSystem(t.n, gen(0))
}

// ReadQuorums enumerates all minimal quorums (h ≤ 3).
func (t TreeQuorum) ReadQuorums() (*quorum.System, error) { return t.enumerate() }

// WriteQuorums enumerates all minimal quorums (h ≤ 3).
func (t TreeQuorum) WriteQuorums() (*quorum.System, error) { return t.enumerate() }
