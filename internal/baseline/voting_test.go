package baseline

import (
	"math"
	"testing"

	"arbor/internal/quorum"
)

func TestVotingValidation(t *testing.T) {
	tests := []struct {
		name    string
		weights []int
		r, w    int
		wantErr bool
	}{
		{name: "majority", weights: []int{1, 1, 1}, r: 2, w: 2},
		{name: "rowa", weights: []int{1, 1, 1}, r: 1, w: 3},
		{name: "weighted", weights: []int{3, 1, 1}, r: 3, w: 3},
		{name: "empty", weights: nil, r: 1, w: 1, wantErr: true},
		{name: "negative", weights: []int{1, -1}, r: 1, w: 1, wantErr: true},
		{name: "all zero", weights: []int{0, 0}, r: 1, w: 1, wantErr: true},
		{name: "r+w too small", weights: []int{1, 1, 1}, r: 1, w: 2, wantErr: true},
		{name: "2w too small", weights: []int{1, 1, 1, 1}, r: 4, w: 2, wantErr: true},
		{name: "threshold high", weights: []int{1, 1}, r: 3, w: 2, wantErr: true},
		{name: "threshold low", weights: []int{1, 1, 1}, r: 0, w: 3, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewVoting(tt.weights, tt.r, tt.w)
			if (err != nil) != tt.wantErr {
				t.Errorf("NewVoting = %v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestUniformVotingMatchesMajority(t *testing.T) {
	const n = 5
	v, err := NewUniformVoting(n, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMajority(n)
	if err != nil {
		t.Fatal(err)
	}
	if v.ReadCost() != m.ReadCost() || v.WriteCost() != m.WriteCost() {
		t.Errorf("costs: voting %v/%v vs majority %v/%v", v.ReadCost(), v.WriteCost(), m.ReadCost(), m.WriteCost())
	}
	if math.Abs(v.ReadLoad()-m.ReadLoad()) > 1e-12 {
		t.Errorf("loads: %v vs %v", v.ReadLoad(), m.ReadLoad())
	}
	for _, p := range []float64{0.6, 0.8, 0.95} {
		if math.Abs(v.ReadAvailability(p)-m.ReadAvailability(p)) > 1e-12 {
			t.Errorf("p=%v: availability %v vs %v", p, v.ReadAvailability(p), m.ReadAvailability(p))
		}
	}
	// Same quorum sets.
	vq, err := v.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	mq, err := m.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	if vq.Len() != mq.Len() {
		t.Errorf("quorum counts %d vs %d", vq.Len(), mq.Len())
	}
}

func TestUniformVotingMatchesROWA(t *testing.T) {
	const n = 6
	v, err := NewUniformVoting(n, 1, n)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewROWA(n)
	if err != nil {
		t.Fatal(err)
	}
	if v.ReadCost() != 1 || v.WriteCost() != float64(n) {
		t.Errorf("costs %v/%v", v.ReadCost(), v.WriteCost())
	}
	for _, p := range []float64{0.55, 0.9} {
		if math.Abs(v.ReadAvailability(p)-r.ReadAvailability(p)) > 1e-12 {
			t.Errorf("read availability %v vs %v", v.ReadAvailability(p), r.ReadAvailability(p))
		}
		if math.Abs(v.WriteAvailability(p)-r.WriteAvailability(p)) > 1e-12 {
			t.Errorf("write availability %v vs %v", v.WriteAvailability(p), r.WriteAvailability(p))
		}
	}
}

func TestVotingLoadsMatchLP(t *testing.T) {
	v, err := NewUniformVoting(5, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkLoadsAgainstLP(t, v, v)
	checkAvailabilityAgainstExact(t, v, v)
}

func TestWeightedVotingKingReplica(t *testing.T) {
	// One replica with 3 votes among {3,1,1,1}: total 6, r=w=4. The heavy
	// replica plus any light one forms a quorum.
	v, err := NewVoting([]int{3, 1, 1, 1}, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.TotalVotes() != 6 || v.N() != 4 {
		t.Fatalf("identity: %d votes, %d replicas", v.TotalVotes(), v.N())
	}
	if v.ReadCost() != 2 {
		t.Errorf("read cost = %v, want 2 (king + one)", v.ReadCost())
	}
	sys, err := v.ReadQuorums()
	if err != nil {
		t.Fatal(err)
	}
	if !sys.IsCoterie() {
		t.Error("minimal vote quorums should form a coterie")
	}
	// Every minimal quorum must include the king or all three light
	// replicas... with threshold 4 and weights {3,1,1,1}: {king, light}
	// (3 of them) or {1,1,1} = 3 votes < 4 → impossible. So 3 quorums.
	if sys.Len() != 3 {
		t.Errorf("quorum count = %d, want 3", sys.Len())
	}
	// Availability via DP matches exhaustive enumeration.
	for _, p := range []float64{0.6, 0.85} {
		exact, err := quorum.ExactAvailability(sys, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v.ReadAvailability(p)-exact) > 1e-12 {
			t.Errorf("p=%v: DP %v vs exact %v", p, v.ReadAvailability(p), exact)
		}
	}
	// LP load on the weighted system.
	got, _, err := quorum.OptimalLoad(sys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.ReadLoad()-got) > 1e-9 {
		t.Errorf("weighted load %v vs LP %v", v.ReadLoad(), got)
	}
}

func TestVotingEnumerationTooLarge(t *testing.T) {
	v, err := NewUniformVoting(21, 11, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.ReadQuorums(); err == nil {
		t.Error("n=21 enumeration should refuse")
	}
	if v.ReadLoad() < 0 {
		t.Error("uniform load should not need enumeration")
	}
}

func TestVotingName(t *testing.T) {
	v, err := NewUniformVoting(3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Name() != "VOTING" {
		t.Error("name")
	}
}
