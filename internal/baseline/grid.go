package baseline

import (
	"fmt"
	"math"

	"arbor/internal/quorum"
)

// Grid is the grid protocol of Cheung, Ammar and Ahamad: n = rows×cols
// replicas arranged in a grid. A read quorum takes one replica from every
// column; a write quorum takes one full column plus one replica from every
// other column.
type Grid struct {
	rows, cols int
}

var (
	_ Analyzer   = Grid{}
	_ Enumerator = Grid{}
)

// NewGrid creates a rows×cols grid analysis.
func NewGrid(rows, cols int) (Grid, error) {
	if rows < 1 || cols < 1 {
		return Grid{}, fmt.Errorf("baseline: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	return Grid{rows: rows, cols: cols}, nil
}

// NewSquareGrid creates a √n×√n grid; n must be a perfect square.
func NewSquareGrid(n int) (Grid, error) {
	s := int(math.Round(math.Sqrt(float64(n))))
	if s*s != n {
		return Grid{}, fmt.Errorf("baseline: square grid needs a perfect square, got %d", n)
	}
	return NewGrid(s, s)
}

// Name returns "GRID".
func (g Grid) Name() string { return "GRID" }

// N returns rows×cols.
func (g Grid) N() int { return g.rows * g.cols }

// element returns the universe index of cell (r,c).
func (g Grid) element(r, c int) int { return r*g.cols + c }

// ReadCost is cols: one replica per column.
func (g Grid) ReadCost() float64 { return float64(g.cols) }

// WriteCost is rows + cols − 1: a full column plus one cover replica per
// other column.
func (g Grid) WriteCost() float64 { return float64(g.rows + g.cols - 1) }

// ReadLoad is 1/rows: under the uniform per-column choice each replica
// serves a 1/rows fraction of reads.
func (g Grid) ReadLoad() float64 { return 1 / float64(g.rows) }

// WriteLoad is 1/cols + (cols−1)/(cols·rows): the chance a replica's column
// is the full column plus the chance it represents its column in the cover.
func (g Grid) WriteLoad() float64 {
	c, r := float64(g.cols), float64(g.rows)
	return 1/c + (c-1)/(c*r)
}

// columnStateProbs returns the per-column probabilities (full, partial,
// dead): all replicas up, some-but-not-all up, none up.
func (g Grid) columnStateProbs(p float64) (full, partial, dead float64) {
	full = math.Pow(p, float64(g.rows))
	dead = math.Pow(1-p, float64(g.rows))
	partial = 1 - full - dead
	return full, partial, dead
}

// ReadAvailability is (1−(1−p)^rows)^cols: every column needs a live
// replica.
func (g Grid) ReadAvailability(p float64) float64 {
	full, partial, _ := g.columnStateProbs(p)
	return math.Pow(full+partial, float64(g.cols))
}

// WriteAvailability is (full+partial)^cols − partial^cols: no dead column,
// and at least one column fully alive.
func (g Grid) WriteAvailability(p float64) float64 {
	full, partial, _ := g.columnStateProbs(p)
	c := float64(g.cols)
	return math.Pow(full+partial, c) - math.Pow(partial, c)
}

// ReadQuorums enumerates all rows^cols column transversals (small grids
// only).
func (g Grid) ReadQuorums() (*quorum.System, error) {
	if math.Pow(float64(g.rows), float64(g.cols)) > 1<<16 {
		return nil, fmt.Errorf("baseline: grid read enumeration for %dx%d too large", g.rows, g.cols)
	}
	var sets []quorum.Set
	pick := make([]int, g.cols)
	for {
		q := make([]int, g.cols)
		for c := 0; c < g.cols; c++ {
			q[c] = g.element(pick[c], c)
		}
		sets = append(sets, quorum.NewSet(q...))
		c := g.cols - 1
		for c >= 0 {
			pick[c]++
			if pick[c] < g.rows {
				break
			}
			pick[c] = 0
			c--
		}
		if c < 0 {
			break
		}
	}
	return quorum.NewSystem(g.N(), sets)
}

// WriteQuorums enumerates full-column + cover quorums (small grids only).
func (g Grid) WriteQuorums() (*quorum.System, error) {
	count := float64(g.cols) * math.Pow(float64(g.rows), float64(g.cols-1))
	if count > 1<<16 {
		return nil, fmt.Errorf("baseline: grid write enumeration for %dx%d too large", g.rows, g.cols)
	}
	var sets []quorum.Set
	for fullCol := 0; fullCol < g.cols; fullCol++ {
		pick := make([]int, g.cols) // pick[fullCol] ignored
		for {
			var q []int
			for r := 0; r < g.rows; r++ {
				q = append(q, g.element(r, fullCol))
			}
			for c := 0; c < g.cols; c++ {
				if c != fullCol {
					q = append(q, g.element(pick[c], c))
				}
			}
			sets = append(sets, quorum.NewSet(q...))
			c := g.cols - 1
			for c >= 0 {
				if c == fullCol {
					c--
					continue
				}
				pick[c]++
				if pick[c] < g.rows {
					break
				}
				pick[c] = 0
				c--
			}
			if c < 0 {
				break
			}
		}
	}
	return quorum.NewSystem(g.N(), sets)
}
