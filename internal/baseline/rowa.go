package baseline

import (
	"fmt"
	"math"

	"arbor/internal/quorum"
)

// ROWA is the ReadOneWriteAll protocol [Bernstein & Goodman]: reads contact
// any single replica, writes contact all n.
type ROWA struct {
	n int
}

var (
	_ Analyzer   = ROWA{}
	_ Enumerator = ROWA{}
)

// NewROWA creates a ROWA analysis over n replicas.
func NewROWA(n int) (ROWA, error) {
	if n < 1 {
		return ROWA{}, fmt.Errorf("baseline: ROWA needs n ≥ 1, got %d", n)
	}
	return ROWA{n: n}, nil
}

// Name returns "ROWA".
func (r ROWA) Name() string { return "ROWA" }

// N returns the number of replicas.
func (r ROWA) N() int { return r.n }

// ReadCost is 1: any single replica serves a read.
func (r ROWA) ReadCost() float64 { return 1 }

// WriteCost is n: every replica participates in a write.
func (r ROWA) WriteCost() float64 { return float64(r.n) }

// ReadLoad is 1/n under the uniform strategy over singletons.
func (r ROWA) ReadLoad() float64 { return 1 / float64(r.n) }

// WriteLoad is 1: every replica is in the unique write quorum.
func (r ROWA) WriteLoad() float64 { return 1 }

// ReadAvailability is 1−(1−p)^n.
func (r ROWA) ReadAvailability(p float64) float64 {
	return 1 - math.Pow(1-p, float64(r.n))
}

// WriteAvailability is p^n: a single crash blocks writes.
func (r ROWA) WriteAvailability(p float64) float64 {
	return math.Pow(p, float64(r.n))
}

// ReadQuorums returns the n singleton quorums.
func (r ROWA) ReadQuorums() (*quorum.System, error) {
	qs := make([]quorum.Set, r.n)
	for i := range qs {
		qs[i] = quorum.NewSet(i)
	}
	return quorum.NewSystem(r.n, qs)
}

// WriteQuorums returns the single quorum of all replicas.
func (r ROWA) WriteQuorums() (*quorum.System, error) {
	all := make([]int, r.n)
	for i := range all {
		all[i] = i
	}
	return quorum.NewSystem(r.n, []quorum.Set{quorum.NewSet(all...)})
}
