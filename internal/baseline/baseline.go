// Package baseline implements the replica control protocols the paper
// compares against: ReadOneWriteAll, Majority Quorum, the Grid protocol, the
// √n finite-projective-plane protocol (Maekawa), the binary Tree Quorum
// protocol of Agrawal & El Abbadi ("BINARY" in the paper's figures), and
// Kumar's Hierarchical Quorum Consensus ("HQC").
//
// Every protocol exposes the same analysis quantities the paper plots —
// communication costs, optimal system loads, and availabilities under
// independent replica failures — plus, for small instances, explicit quorum
// enumeration so the closed forms can be cross-checked with the exact LP of
// package quorum.
package baseline

import (
	"math"

	"arbor/internal/quorum"
)

// Analyzer is the analysis surface shared by all protocols in this package.
// Costs are expected replica contacts per operation; loads are optimal
// system loads in the sense of Naor & Wool; availabilities assume each
// replica is independently up with probability p.
type Analyzer interface {
	Name() string
	N() int
	ReadCost() float64
	WriteCost() float64
	ReadLoad() float64
	WriteLoad() float64
	ReadAvailability(p float64) float64
	WriteAvailability(p float64) float64
}

// Enumerator is implemented by protocols that can materialize their quorum
// systems (practical only for small n).
type Enumerator interface {
	ReadQuorums() (*quorum.System, error)
	WriteQuorums() (*quorum.System, error)
}

// binomialTail returns Σ_{k=from}^{n} C(n,k) p^k (1−p)^{n−k}.
func binomialTail(n, from int, p float64) float64 {
	total := 0.0
	for k := from; k <= n; k++ {
		total += binomial(n, k) * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
	}
	return total
}

// binomial returns C(n, k) as a float64.
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}
