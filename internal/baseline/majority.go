package baseline

import (
	"fmt"

	"arbor/internal/quorum"
)

// Majority is Thomas's majority consensus protocol: both reads and writes
// gather ⌈(n+1)/2⌉ replicas (n odd in the paper's analysis).
type Majority struct {
	n int
}

var (
	_ Analyzer   = Majority{}
	_ Enumerator = Majority{}
)

// NewMajority creates a majority-quorum analysis over an odd number of
// replicas.
func NewMajority(n int) (Majority, error) {
	if n < 1 || n%2 == 0 {
		return Majority{}, fmt.Errorf("baseline: Majority needs odd n ≥ 1, got %d", n)
	}
	return Majority{n: n}, nil
}

// Name returns "MAJORITY".
func (m Majority) Name() string { return "MAJORITY" }

// N returns the number of replicas.
func (m Majority) N() int { return m.n }

// quorumSize returns (n+1)/2.
func (m Majority) quorumSize() int { return (m.n + 1) / 2 }

// ReadCost is (n+1)/2.
func (m Majority) ReadCost() float64 { return float64(m.quorumSize()) }

// WriteCost is (n+1)/2.
func (m Majority) WriteCost() float64 { return float64(m.quorumSize()) }

// ReadLoad is (n+1)/(2n) ≥ 1/2: the optimal load of the majority system.
func (m Majority) ReadLoad() float64 { return float64(m.quorumSize()) / float64(m.n) }

// WriteLoad equals ReadLoad; majority uses one symmetric quorum set.
func (m Majority) WriteLoad() float64 { return m.ReadLoad() }

// availability is the probability that at least (n+1)/2 replicas are up.
func (m Majority) availability(p float64) float64 {
	return binomialTail(m.n, m.quorumSize(), p)
}

// ReadAvailability is the majority-alive probability.
func (m Majority) ReadAvailability(p float64) float64 { return m.availability(p) }

// WriteAvailability is the majority-alive probability.
func (m Majority) WriteAvailability(p float64) float64 { return m.availability(p) }

// enumerate returns all subsets of size (n+1)/2. Only feasible for small n.
func (m Majority) enumerate() (*quorum.System, error) {
	if m.n > 20 {
		return nil, fmt.Errorf("baseline: majority enumeration for n=%d too large", m.n)
	}
	q := m.quorumSize()
	var sets []quorum.Set
	elems := make([]int, 0, q)
	var rec func(start int)
	rec = func(start int) {
		if len(elems) == q {
			sets = append(sets, quorum.NewSet(elems...))
			return
		}
		for e := start; e < m.n; e++ {
			elems = append(elems, e)
			rec(e + 1)
			elems = elems[:len(elems)-1]
		}
	}
	rec(0)
	return quorum.NewSystem(m.n, sets)
}

// ReadQuorums enumerates all majorities (small n only).
func (m Majority) ReadQuorums() (*quorum.System, error) { return m.enumerate() }

// WriteQuorums enumerates all majorities (small n only).
func (m Majority) WriteQuorums() (*quorum.System, error) { return m.enumerate() }
