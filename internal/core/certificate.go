package core

// This file mechanizes the appendix of the paper: the optimal-load proofs
// for read and write operations produce explicit Proposition 2.1 lower-bound
// certificates, which tests verify against the enumerated quorum systems.

// ReadLoadCertificate returns the Proposition 2.1 certificate y from §6.1.2
// proving L_RD ≥ 1/d: assign y_i = 1/d to every replica of a physical level
// holding exactly d = min_k m_phy(k) replicas, and 0 elsewhere. Every read
// quorum contains exactly one replica of that level, so y(R_j) = 1/d for all
// j, while y(U) = 1.
//
// Entries are indexed by universe element (site ID − 1).
func (p *Protocol) ReadLoadCertificate() []float64 {
	d := p.t.D()
	y := make([]float64, p.t.N())
	for _, sites := range p.levelSites {
		if len(sites) != d {
			continue
		}
		for _, s := range sites {
			y[int(s)-1] = 1 / float64(d)
		}
		return y
	}
	return y // unreachable: some level always attains the minimum
}

// WriteLoadCertificate returns the Proposition 2.1 certificate y from §6.2.2
// proving L_WR ≥ 1/(1+h−|K_log|): pick one replica from every physical level
// and assign it y_i = 1/|K_phy|. Every write quorum (one whole physical
// level) contains exactly one picked replica, so y(W_j) = 1/|K_phy| for all
// j, while y(U) = 1.
//
// Entries are indexed by universe element (site ID − 1).
func (p *Protocol) WriteLoadCertificate() []float64 {
	kphy := float64(len(p.levelSites))
	y := make([]float64, p.t.N())
	for _, sites := range p.levelSites {
		y[int(sites[0])-1] = 1 / kphy
	}
	return y
}
