package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"arbor/internal/quorum"
	"arbor/internal/tree"
)

// randomSmallTree builds a random tree small enough to enumerate (m(R) and
// 2^n bounded).
func randomSmallTree(r *rand.Rand) *tree.Tree {
	for {
		levels := 1 + r.Intn(4)
		cfg := tree.Config{Levels: []tree.LevelSpec{{Logical: 1}}}
		if r.Intn(4) == 0 {
			cfg.Levels[0] = tree.LevelSpec{Physical: 1}
		}
		n := cfg.Levels[0].Physical
		for i := 0; i < levels; i++ {
			ls := tree.LevelSpec{Physical: r.Intn(5), Logical: r.Intn(2)}
			if ls.Total() == 0 {
				ls.Physical = 1
			}
			n += ls.Physical
			cfg.Levels = append(cfg.Levels, ls)
		}
		if n == 0 || n > 14 {
			continue
		}
		t, err := tree.Build(cfg)
		if err != nil {
			continue
		}
		return t
	}
}

// TestQuickBiCoterieIntersection mechanizes the induction proof of §3.2.3:
// for random trees, every read quorum intersects every write quorum.
func TestQuickBiCoterieIntersection(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomSmallTree(r)
		p, err := New(tr)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		bc, err := p.EnumerateBiCoterie()
		if err != nil {
			t.Logf("seed %d (%s): %v", seed, tr.Spec(), err)
			return false
		}
		if err := bc.Validate(); err != nil {
			t.Logf("seed %d (%s): %v", seed, tr.Spec(), err)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickLoadsOptimal checks, for random small trees, that the closed-form
// loads are optimal: the uniform strategy achieves them (upper bound) and
// the appendix certificates prove them (lower bound), so the LP optimum
// must coincide.
func TestQuickLoadsOptimal(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomSmallTree(r)
		p, err := New(tr)
		if err != nil {
			return false
		}
		a := Analyze(tr)
		bc, err := p.EnumerateBiCoterie()
		if err != nil {
			return false
		}

		up, err := quorum.InducedLoad(bc.Reads, quorum.Uniform(bc.Reads.Len()))
		if err != nil || math.Abs(up-a.ReadLoad) > 1e-9 {
			t.Logf("seed %d (%s): uniform read load %v vs %v (%v)", seed, tr.Spec(), up, a.ReadLoad, err)
			return false
		}
		if err := quorum.VerifyLowerBoundCertificate(bc.Reads, p.ReadLoadCertificate(), a.ReadLoad); err != nil {
			t.Logf("seed %d (%s): read certificate: %v", seed, tr.Spec(), err)
			return false
		}

		uw, err := quorum.InducedLoad(bc.Writes, quorum.Uniform(bc.Writes.Len()))
		if err != nil || math.Abs(uw-a.WriteLoad) > 1e-9 {
			t.Logf("seed %d (%s): uniform write load %v vs %v (%v)", seed, tr.Spec(), uw, a.WriteLoad, err)
			return false
		}
		if err := quorum.VerifyLowerBoundCertificate(bc.Writes, p.WriteLoadCertificate(), a.WriteLoad); err != nil {
			t.Logf("seed %d (%s): write certificate: %v", seed, tr.Spec(), err)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickAvailabilityFormulas cross-checks the closed-form availabilities
// against exhaustive enumeration on random small trees and random p.
func TestQuickAvailabilityFormulas(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomSmallTree(r)
		p := 0.5 + r.Float64()*0.5
		proto, err := New(tr)
		if err != nil {
			return false
		}
		a := Analyze(tr)
		bc, err := proto.EnumerateBiCoterie()
		if err != nil {
			return false
		}
		exactR, err := quorum.ExactAvailability(bc.Reads, p)
		if err != nil {
			return false
		}
		if math.Abs(exactR-a.ReadAvailability(p)) > 1e-9 {
			t.Logf("seed %d (%s) p=%v: read %v vs %v", seed, tr.Spec(), p, a.ReadAvailability(p), exactR)
			return false
		}
		exactW, err := quorum.ExactAvailability(bc.Writes, p)
		if err != nil {
			return false
		}
		if math.Abs(exactW-a.WriteAvailability(p)) > 1e-9 {
			t.Logf("seed %d (%s) p=%v: write %v vs %v", seed, tr.Spec(), p, a.WriteAvailability(p), exactW)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickWriteQuorumsPartitionUniverse: every replica belongs to exactly
// one write quorum (used by the appendix's §6.2 proof).
func TestQuickWriteQuorumsPartitionUniverse(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := randomSmallTree(r)
		proto, err := New(tr)
		if err != nil {
			return false
		}
		bc, err := proto.EnumerateBiCoterie()
		if err != nil {
			return false
		}
		count := make([]int, tr.N())
		for _, w := range bc.Writes.Quorums() {
			for _, e := range w {
				count[e]++
			}
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
