// Package core implements the arbitrary tree-structured replica control
// protocol of Bahsoun, Basmadjian and Guerraoui (ICDCS 2008).
//
// Given a tree of logical and physical nodes (package tree), the protocol
// forms a bi-coterie:
//
//   - a read quorum takes any single physical node from every physical
//     level of the tree (§3.2.1);
//   - a write quorum takes all physical nodes of any single physical level
//     (§3.2.2).
//
// This package constructs those quorums, samples them under the paper's
// uniform strategies, computes the closed-form communication costs,
// availabilities and optimal system loads, and produces the Proposition 2.1
// optimality certificates from the paper's appendix.
package core

import (
	"fmt"
	"math/rand"

	"arbor/internal/quorum"
	"arbor/internal/tree"
)

// Protocol binds the arbitrary protocol to a concrete replica tree.
type Protocol struct {
	t          *tree.Tree
	levelSites [][]tree.SiteID // physical sites per physical level
}

// New creates a Protocol over the given tree. The tree must contain at
// least one physical node.
func New(t *tree.Tree) (*Protocol, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil tree")
	}
	if t.N() == 0 {
		return nil, fmt.Errorf("core: tree %s has no replicas", t.Spec())
	}
	p := &Protocol{t: t}
	for _, k := range t.PhysicalLevels() {
		p.levelSites = append(p.levelSites, t.LevelSites(k))
	}
	return p, nil
}

// Tree returns the underlying replica tree.
func (p *Protocol) Tree() *tree.Tree { return p.t }

// NumPhysicalLevels returns |K_phy|, which is also m(W).
func (p *Protocol) NumPhysicalLevels() int { return len(p.levelSites) }

// LevelSites returns the physical sites of the u-th physical level
// (0 ≤ u < NumPhysicalLevels). The returned slice must not be mutated.
func (p *Protocol) LevelSites(u int) []tree.SiteID { return p.levelSites[u] }

// PickReadQuorum samples a read quorum under the paper's uniform strategy
// w_read: one uniformly chosen physical node from every physical level.
// Because levels are chosen independently, the induced distribution over the
// m(R) product quorums is uniform.
func (p *Protocol) PickReadQuorum(r *rand.Rand) []tree.SiteID {
	q := make([]tree.SiteID, len(p.levelSites))
	for u, sites := range p.levelSites {
		q[u] = sites[r.Intn(len(sites))]
	}
	return q
}

// PickWriteQuorum samples a write quorum under the paper's uniform strategy
// w_write: all physical nodes of a uniformly chosen physical level. It
// returns the level index u and the sites.
func (p *Protocol) PickWriteQuorum(r *rand.Rand) (int, []tree.SiteID) {
	u := r.Intn(len(p.levelSites))
	return u, p.levelSites[u]
}

// WriteQuorum returns the write quorum of physical level u.
func (p *Protocol) WriteQuorum(u int) []tree.SiteID { return p.levelSites[u] }

// maxEnumerate bounds the number of read quorums EnumerateBiCoterie will
// materialize.
const maxEnumerate = 1 << 16

// EnumerateBiCoterie materializes the full read and write quorum systems
// over universe elements 0..n−1 (element i ↔ site i+1). It fails if
// m(R) exceeds 65536 quorums; use the closed-form analysis for larger trees.
func (p *Protocol) EnumerateBiCoterie() (quorum.BiCoterie, error) {
	mr := p.t.ReadQuorumCount()
	if !mr.IsInt64() || mr.Int64() > maxEnumerate {
		return quorum.BiCoterie{}, fmt.Errorf("core: m(R)=%v too large to enumerate (max %d)", mr, maxEnumerate)
	}

	var reads []quorum.Set
	idx := make([]int, len(p.levelSites))
	for {
		q := make([]int, len(p.levelSites))
		for u, sites := range p.levelSites {
			q[u] = int(sites[idx[u]]) - 1
		}
		reads = append(reads, quorum.NewSet(q...))
		// Advance the mixed-radix counter.
		u := len(idx) - 1
		for u >= 0 {
			idx[u]++
			if idx[u] < len(p.levelSites[u]) {
				break
			}
			idx[u] = 0
			u--
		}
		if u < 0 {
			break
		}
	}

	writes := make([]quorum.Set, 0, len(p.levelSites))
	for _, sites := range p.levelSites {
		q := make([]int, len(sites))
		for i, s := range sites {
			q[i] = int(s) - 1
		}
		writes = append(writes, quorum.NewSet(q...))
	}

	rs, err := quorum.NewSystem(p.t.N(), reads)
	if err != nil {
		return quorum.BiCoterie{}, fmt.Errorf("core: read system: %w", err)
	}
	ws, err := quorum.NewSystem(p.t.N(), writes)
	if err != nil {
		return quorum.BiCoterie{}, fmt.Errorf("core: write system: %w", err)
	}
	return quorum.BiCoterie{Reads: rs, Writes: ws}, nil
}
