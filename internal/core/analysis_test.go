package core

import (
	"math"
	"testing"

	"arbor/internal/tree"
)

func figure1(t *testing.T) *tree.Tree {
	t.Helper()
	return tree.Figure1()
}

// TestWorkedExample34 pins the complete worked example of §3.4 of the paper
// (tree "1-3-5", p = 0.7).
func TestWorkedExample34(t *testing.T) {
	a := Analyze(figure1(t))
	const p = 0.7

	if a.ReadCost != 2 {
		t.Errorf("RD_cost = %d, want 2", a.ReadCost)
	}
	if math.Abs(a.ReadLoad-1.0/3) > 1e-12 {
		t.Errorf("L_RD = %v, want 1/3", a.ReadLoad)
	}
	if got := a.ReadAvailability(p); math.Abs(got-0.97) > 0.005 {
		t.Errorf("RD_availability(0.7) = %v, want ≈0.97", got)
	}

	if a.WriteCostMin != 3 || a.WriteCostMax != 5 {
		t.Errorf("write cost min/max = %d/%d, want 3/5", a.WriteCostMin, a.WriteCostMax)
	}
	if math.Abs(a.WriteCostAvg-4) > 1e-12 {
		t.Errorf("WR_cost = %v, want 4", a.WriteCostAvg)
	}
	if math.Abs(a.WriteLoad-0.5) > 1e-12 {
		t.Errorf("L_WR = %v, want 1/2", a.WriteLoad)
	}
	if got := a.WriteAvailability(p); math.Abs(got-0.45) > 0.005 {
		t.Errorf("WR_availability(0.7) = %v, want ≈0.45", got)
	}

	if got := a.ExpectedReadLoad(p); math.Abs(got-0.35) > 0.005 {
		t.Errorf("𝔼L_RD = %v, want ≈0.35", got)
	}
	if got := a.ExpectedWriteLoad(p); math.Abs(got-0.775) > 0.005 {
		t.Errorf("𝔼L_WR = %v, want ≈0.775", got)
	}
}

// Exact closed forms for the worked example, independent of rounding in the
// paper's text.
func TestWorkedExample34Exact(t *testing.T) {
	a := Analyze(figure1(t))
	const p = 0.7
	wantRD := (1 - math.Pow(0.3, 3)) * (1 - math.Pow(0.3, 5))
	if got := a.ReadAvailability(p); math.Abs(got-wantRD) > 1e-12 {
		t.Errorf("RD_availability = %v, want %v", got, wantRD)
	}
	wantWRFail := (1 - math.Pow(0.7, 3)) * (1 - math.Pow(0.7, 5))
	if got := a.WriteFailure(p); math.Abs(got-wantWRFail) > 1e-12 {
		t.Errorf("WR_fail = %v, want %v", got, wantWRFail)
	}
	if got := a.WriteAvailability(p) + a.WriteFailure(p); math.Abs(got-1) > 1e-12 {
		t.Errorf("availability + failure = %v, want 1", got)
	}
}

func TestAnalyzeMostlyReadBehavesLikeROWA(t *testing.T) {
	tr, err := tree.MostlyRead(20)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr)
	if a.ReadCost != 1 {
		t.Errorf("read cost = %d, want 1", a.ReadCost)
	}
	if math.Abs(a.ReadLoad-1.0/20) > 1e-12 {
		t.Errorf("read load = %v, want 1/20", a.ReadLoad)
	}
	if a.WriteCostMin != 20 || a.WriteCostMax != 20 || a.WriteCostAvg != 20 {
		t.Errorf("write cost = %d/%d/%v, want all 20", a.WriteCostMin, a.WriteCostMax, a.WriteCostAvg)
	}
	if a.WriteLoad != 1 {
		t.Errorf("write load = %v, want 1", a.WriteLoad)
	}
	const p = 0.9
	if got, want := a.ReadAvailability(p), 1-math.Pow(0.1, 20); math.Abs(got-want) > 1e-12 {
		t.Errorf("read availability = %v, want %v", got, want)
	}
	if got, want := a.WriteAvailability(p), math.Pow(0.9, 20); math.Abs(got-want) > 1e-12 {
		t.Errorf("write availability = %v, want %v", got, want)
	}
}

func TestAnalyzeMostlyWrite(t *testing.T) {
	const n = 21
	tr, err := tree.MostlyWrite(n)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr)
	kphy := (n - 1) / 2
	if a.ReadCost != kphy {
		t.Errorf("read cost = %d, want %d", a.ReadCost, kphy)
	}
	if math.Abs(a.ReadLoad-0.5) > 1e-12 {
		t.Errorf("read load = %v, want 1/2", a.ReadLoad)
	}
	if a.WriteCostMin != 2 {
		t.Errorf("min write cost = %d, want 2", a.WriteCostMin)
	}
	if got, want := a.WriteLoad, 2.0/float64(n-1); math.Abs(got-want) > 1e-12 {
		t.Errorf("write load = %v, want %v", got, want)
	}
}

func TestAnalyzeUnmodifiedBinary(t *testing.T) {
	// "UNMODIFIED": the protocol applied to a complete binary tree where
	// every node is physical. Read load 1 (the root is in every read
	// quorum), write load 1/log2(n+1), read cost log2(n+1).
	const h = 4
	tr, err := tree.CompleteBinary(h)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(tr)
	n := float64(tr.N())
	logn := math.Log2(n + 1)
	if got := a.ReadCost; got != h+1 {
		t.Errorf("read cost = %d, want %d", got, h+1)
	}
	if a.ReadLoad != 1 {
		t.Errorf("read load = %v, want 1", a.ReadLoad)
	}
	if got, want := a.WriteLoad, 1/logn; math.Abs(got-want) > 1e-12 {
		t.Errorf("write load = %v, want %v", got, want)
	}
	if got, want := a.WriteCostAvg, n/logn; math.Abs(got-want) > 1e-9 {
		t.Errorf("write cost = %v, want %v", got, want)
	}
	// §3.3: these write operations are always at least p-available, the
	// reads at most p-available.
	for _, p := range []float64{0.55, 0.7, 0.9, 0.99} {
		if wa := a.WriteAvailability(p); wa < p {
			t.Errorf("p=%v: write availability %v < p", p, wa)
		}
		if ra := a.ReadAvailability(p); ra > p {
			t.Errorf("p=%v: read availability %v > p", p, ra)
		}
	}
}

func TestAnalyzeAlgorithm1(t *testing.T) {
	// §3.3: Algorithm 1 yields write load 1/√n, read load 1/4, read cost
	// √n, average write cost √n.
	for _, n := range []int{64, 100, 144, 400} {
		tr, err := tree.Algorithm1(n)
		if err != nil {
			t.Fatal(err)
		}
		a := Analyze(tr)
		s := math.Round(math.Sqrt(float64(n)))
		if got := float64(a.ReadCost); got != s {
			t.Errorf("n=%d: read cost %v, want √n=%v", n, got, s)
		}
		if math.Abs(a.ReadLoad-0.25) > 1e-12 {
			t.Errorf("n=%d: read load %v, want 1/4", n, a.ReadLoad)
		}
		if got, want := a.WriteLoad, 1/s; math.Abs(got-want) > 1e-12 {
			t.Errorf("n=%d: write load %v, want 1/√n=%v", n, got, want)
		}
		if got, want := a.WriteCostAvg, float64(n)/s; math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d: write cost %v, want %v", n, got, want)
		}
	}
}

// TestAlgorithm1AvailabilityLimits checks §3.3's asymptotics: as n grows the
// availabilities of Algorithm 1 trees approach 1−(1−p⁴)⁷ (writes) and
// (1−(1−p)⁴)⁷ (reads), and both are ≈1 for p > 0.8.
func TestAlgorithm1AvailabilityLimits(t *testing.T) {
	for _, p := range []float64{0.65, 0.7, 0.8, 0.9} {
		limW, limR := LimitWriteAvailability(p), LimitReadAvailability(p)
		prevGapW, prevGapR := math.Inf(1), math.Inf(1)
		for _, n := range []int{100, 1600, 25600} {
			tr, err := tree.Algorithm1(n)
			if err != nil {
				t.Fatal(err)
			}
			a := Analyze(tr)
			gapW := math.Abs(a.WriteAvailability(p) - limW)
			gapR := math.Abs(a.ReadAvailability(p) - limR)
			if gapW > prevGapW+1e-6 {
				t.Errorf("p=%v n=%d: write availability gap grew to %v", p, n, gapW)
			}
			if gapR > prevGapR+1e-6 {
				t.Errorf("p=%v n=%d: read availability gap grew to %v", p, n, gapR)
			}
			prevGapW, prevGapR = gapW, gapR
		}
		if prevGapW > 0.01 {
			t.Errorf("p=%v: write availability gap %v to limit %v too large", p, prevGapW, limW)
		}
		if prevGapR > 0.01 {
			t.Errorf("p=%v: read availability gap %v to limit %v too large", p, prevGapR, limR)
		}
	}
	// Both limits exceed 0.99 once p > 0.8.
	for _, p := range []float64{0.85, 0.9, 0.95} {
		if LimitWriteAvailability(p) < 0.99 {
			t.Errorf("p=%v: limit write availability %v < 0.99", p, LimitWriteAvailability(p))
		}
		if LimitReadAvailability(p) < 0.99 {
			t.Errorf("p=%v: limit read availability %v < 0.99", p, LimitReadAvailability(p))
		}
	}
}

func TestExpectedLoadStability(t *testing.T) {
	// §3.2.3: the higher the availability, the closer the expected load is
	// to the optimal load ("stable" systems).
	a := Analyze(figure1(t))
	dLow := a.ExpectedReadLoad(0.6) - a.ReadLoad
	dHigh := a.ExpectedReadLoad(0.99) - a.ReadLoad
	if dHigh >= dLow {
		t.Errorf("expected read load gap should shrink with p: %v vs %v", dHigh, dLow)
	}
	wLow := a.ExpectedWriteLoad(0.6) - a.WriteLoad
	wHigh := a.ExpectedWriteLoad(0.99) - a.WriteLoad
	if wHigh >= wLow {
		t.Errorf("expected write load gap should shrink with p: %v vs %v", wHigh, wLow)
	}
}
