package core

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"arbor/internal/quorum"
	"arbor/internal/tree"
)

func newProtocol(t *testing.T, spec string) *Protocol {
	t.Helper()
	tr, err := tree.ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	p, err := New(tr)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) succeeded")
	}
	tr := tree.Figure1()
	p, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tree() != tr {
		t.Error("Tree() does not return the bound tree")
	}
	if p.NumPhysicalLevels() != 2 {
		t.Errorf("NumPhysicalLevels = %d, want 2", p.NumPhysicalLevels())
	}
}

func TestEnumerateBiCoterieFigure1(t *testing.T) {
	p := newProtocol(t, "1-3-5+4")
	bc, err := p.EnumerateBiCoterie()
	if err != nil {
		t.Fatal(err)
	}
	if got := bc.Reads.Len(); got != 15 {
		t.Errorf("m(R) = %d, want 15", got)
	}
	if got := bc.Writes.Len(); got != 2 {
		t.Errorf("m(W) = %d, want 2", got)
	}
	if err := bc.Validate(); err != nil {
		t.Errorf("bicoterie property violated: %v", err)
	}
	// Every read quorum has exactly one site per physical level.
	for _, q := range bc.Reads.Quorums() {
		if len(q) != 2 {
			t.Errorf("read quorum %v has size %d, want 2", q, len(q))
		}
	}
	// The write quorums are the two levels exactly.
	if got := bc.Writes.Quorum(0); len(got) != 3 {
		t.Errorf("level-1 write quorum = %v, want 3 sites", got)
	}
	if got := bc.Writes.Quorum(1); len(got) != 5 {
		t.Errorf("level-2 write quorum = %v, want 5 sites", got)
	}
}

func TestEnumerateTooLarge(t *testing.T) {
	tr, err := tree.Algorithm1(4096) // m(R) = 4^7 * huge » 2^16
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EnumerateBiCoterie(); err == nil {
		t.Error("enumeration of a huge system should fail")
	}
}

// TestOptimalLoadsMatchLP verifies the appendix results mechanically: the
// closed-form loads 1/d and 1/|K_phy| equal the exact LP optimum of the
// enumerated quorum systems.
func TestOptimalLoadsMatchLP(t *testing.T) {
	specs := []string{
		"1-3-5",
		"1-2-4",
		"1-2-2-2",
		"1*-2-3",
		"1-8",
		"1-3-3-4",
		"1-2-3+1-4+2",
	}
	for _, spec := range specs {
		t.Run(spec, func(t *testing.T) {
			p := newProtocol(t, spec)
			a := Analyze(p.Tree())
			bc, err := p.EnumerateBiCoterie()
			if err != nil {
				t.Fatal(err)
			}
			readLP, _, err := quorum.OptimalLoad(bc.Reads)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(readLP-a.ReadLoad) > 1e-6 {
				t.Errorf("read load: LP %v vs closed form %v", readLP, a.ReadLoad)
			}
			writeLP, _, err := quorum.OptimalLoad(bc.Writes)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(writeLP-a.WriteLoad) > 1e-6 {
				t.Errorf("write load: LP %v vs closed form %v", writeLP, a.WriteLoad)
			}
		})
	}
}

// TestUniformStrategyAchievesOptimalLoad re-proves the appendix upper
// bounds: the paper's uniform strategies induce exactly the optimal loads.
func TestUniformStrategyAchievesOptimalLoad(t *testing.T) {
	p := newProtocol(t, "1-3-5+4")
	a := Analyze(p.Tree())
	bc, err := p.EnumerateBiCoterie()
	if err != nil {
		t.Fatal(err)
	}
	readLoad, err := quorum.InducedLoad(bc.Reads, quorum.Uniform(bc.Reads.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(readLoad-a.ReadLoad) > 1e-12 {
		t.Errorf("uniform read strategy induces %v, want %v", readLoad, a.ReadLoad)
	}
	writeLoad, err := quorum.InducedLoad(bc.Writes, quorum.Uniform(bc.Writes.Len()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(writeLoad-a.WriteLoad) > 1e-12 {
		t.Errorf("uniform write strategy induces %v, want %v", writeLoad, a.WriteLoad)
	}
}

// TestCertificates validates the Proposition 2.1 lower-bound certificates
// produced from the appendix proofs.
func TestCertificates(t *testing.T) {
	for _, spec := range []string{"1-3-5", "1-2-2-2", "1*-2-3", "1-8", "1-2-3+1-4+2"} {
		t.Run(spec, func(t *testing.T) {
			p := newProtocol(t, spec)
			a := Analyze(p.Tree())
			bc, err := p.EnumerateBiCoterie()
			if err != nil {
				t.Fatal(err)
			}
			if err := quorum.VerifyLowerBoundCertificate(bc.Reads, p.ReadLoadCertificate(), a.ReadLoad); err != nil {
				t.Errorf("read certificate invalid: %v", err)
			}
			if err := quorum.VerifyLowerBoundCertificate(bc.Writes, p.WriteLoadCertificate(), a.WriteLoad); err != nil {
				t.Errorf("write certificate invalid: %v", err)
			}
		})
	}
}

// TestAvailabilityFormulasMatchExactEnumeration checks the closed-form
// availabilities against exhaustive world-state enumeration of the real
// quorum systems.
func TestAvailabilityFormulasMatchExactEnumeration(t *testing.T) {
	for _, spec := range []string{"1-3-5", "1-2-4", "1-2-2-2", "1-8", "1*-2-3"} {
		for _, p := range []float64{0.55, 0.7, 0.9} {
			proto := newProtocol(t, spec)
			a := Analyze(proto.Tree())
			bc, err := proto.EnumerateBiCoterie()
			if err != nil {
				t.Fatal(err)
			}
			exactR, err := quorum.ExactAvailability(bc.Reads, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(exactR-a.ReadAvailability(p)) > 1e-9 {
				t.Errorf("%s p=%v: read availability formula %v vs exact %v",
					spec, p, a.ReadAvailability(p), exactR)
			}
			exactW, err := quorum.ExactAvailability(bc.Writes, p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(exactW-a.WriteAvailability(p)) > 1e-9 {
				t.Errorf("%s p=%v: write availability formula %v vs exact %v",
					spec, p, a.WriteAvailability(p), exactW)
			}
		}
	}
}

func TestPickReadQuorumUniform(t *testing.T) {
	p := newProtocol(t, "1-3-5+4")
	r := rand.New(rand.NewSource(7))
	counts := make(map[tree.SiteID]int)
	const trials = 30000
	for i := 0; i < trials; i++ {
		q := p.PickReadQuorum(r)
		if len(q) != 2 {
			t.Fatalf("read quorum size %d, want 2", len(q))
		}
		for _, s := range q {
			counts[s]++
		}
	}
	// Level 1 sites (1..3) should each appear ~trials/3; level 2 sites
	// (4..8) ~trials/5.
	for s := tree.SiteID(1); s <= 3; s++ {
		got := float64(counts[s]) / trials
		if math.Abs(got-1.0/3) > 0.02 {
			t.Errorf("site %d frequency %v, want ≈1/3", s, got)
		}
	}
	for s := tree.SiteID(4); s <= 8; s++ {
		got := float64(counts[s]) / trials
		if math.Abs(got-0.2) > 0.02 {
			t.Errorf("site %d frequency %v, want ≈1/5", s, got)
		}
	}
}

func TestPickWriteQuorumUniform(t *testing.T) {
	p := newProtocol(t, "1-3-5+4")
	r := rand.New(rand.NewSource(11))
	levelCount := make([]int, 2)
	const trials = 20000
	for i := 0; i < trials; i++ {
		u, sites := p.PickWriteQuorum(r)
		levelCount[u]++
		wantSize := 3
		if u == 1 {
			wantSize = 5
		}
		if len(sites) != wantSize {
			t.Fatalf("level %d quorum size %d, want %d", u, len(sites), wantSize)
		}
	}
	for u, c := range levelCount {
		got := float64(c) / trials
		if math.Abs(got-0.5) > 0.02 {
			t.Errorf("level %d picked with frequency %v, want ≈1/2", u, got)
		}
	}
}

func TestWriteQuorumAccessor(t *testing.T) {
	p := newProtocol(t, "1-3-5")
	if got := p.WriteQuorum(0); len(got) != 3 {
		t.Errorf("WriteQuorum(0) = %v", got)
	}
	if got := p.LevelSites(1); len(got) != 5 {
		t.Errorf("LevelSites(1) = %v", got)
	}
}

func TestEnumerateCountMatchesFact321(t *testing.T) {
	// Fact 3.2.1: m(R) = ∏ m_phy(k) for several shapes, via enumeration.
	for _, spec := range []string{"1-3-5", "1-2-2-2", "1-2-3+1-4+2", "1*-2-3"} {
		p := newProtocol(t, spec)
		bc, err := p.EnumerateBiCoterie()
		if err != nil {
			t.Fatal(err)
		}
		want := p.Tree().ReadQuorumCount()
		if got := big.NewInt(int64(bc.Reads.Len())); got.Cmp(want) != 0 {
			t.Errorf("%s: enumerated %v read quorums, fact says %v", spec, got, want)
		}
		if got := bc.Writes.Len(); got != p.Tree().WriteQuorumCount() {
			t.Errorf("%s: enumerated %d write quorums, fact says %d", spec, got, p.Tree().WriteQuorumCount())
		}
	}
}
