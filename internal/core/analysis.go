package core

import (
	"math"

	"arbor/internal/tree"
)

// Analysis carries the closed-form metrics of the arbitrary protocol on one
// tree (§3.2 of the paper). Availabilities depend on the per-replica
// availability probability p and are exposed as methods.
type Analysis struct {
	tree *tree.Tree

	// ReadCost is RD_cost = 1 + h − |K_log| = |K_phy|: a read contacts one
	// replica per physical level.
	ReadCost int
	// ReadLoad is the optimal system load of read operations, L_RD = 1/d.
	ReadLoad float64
	// WriteCostMin is d, the size of the smallest write quorum.
	WriteCostMin int
	// WriteCostMax is e, the size of the largest write quorum.
	WriteCostMax int
	// WriteCostAvg is WR_cost = n / (1 + h − |K_log|), the average write
	// cost under the uniform strategy.
	WriteCostAvg float64
	// WriteLoad is the optimal system load of write operations,
	// L_WR = 1 / (1 + h − |K_log|).
	WriteLoad float64

	physCounts []int // m_phy(k) for k ∈ K_phy
}

// Analyze computes the protocol's closed-form metrics for a tree.
func Analyze(t *tree.Tree) Analysis {
	a := Analysis{tree: t}
	for _, k := range t.PhysicalLevels() {
		a.physCounts = append(a.physCounts, t.PhysCount(k))
	}
	kphy := len(a.physCounts)
	a.ReadCost = kphy
	a.ReadLoad = 1 / float64(t.D())
	a.WriteCostMin = t.D()
	a.WriteCostMax = t.E()
	a.WriteCostAvg = float64(t.N()) / float64(kphy)
	a.WriteLoad = 1 / float64(kphy)
	return a
}

// Tree returns the analyzed tree.
func (a Analysis) Tree() *tree.Tree { return a.tree }

// ReadAvailability returns RD_availability(p) = ∏_{k∈K_phy} (1−(1−p)^m_phy(k)):
// a read succeeds iff every physical level has at least one live replica.
func (a Analysis) ReadAvailability(p float64) float64 {
	avail := 1.0
	for _, m := range a.physCounts {
		avail *= 1 - math.Pow(1-p, float64(m))
	}
	return avail
}

// WriteFailure returns WR_fail(p) = ∏_{k∈K_phy} (1−p^m_phy(k)): a write
// fails iff every physical level has at least one dead replica.
func (a Analysis) WriteFailure(p float64) float64 {
	fail := 1.0
	for _, m := range a.physCounts {
		fail *= 1 - math.Pow(p, float64(m))
	}
	return fail
}

// WriteAvailability returns WR_availability(p) = 1 − WR_fail(p).
func (a Analysis) WriteAvailability(p float64) float64 {
	return 1 - a.WriteFailure(p)
}

// ExpectedReadLoad returns 𝔼L_RD = RD_availability(p)·(L_RD − 1) + 1
// (Equation 3.2): with probability RD_availability the read imposes its
// optimal load; otherwise the system degrades towards load 1.
func (a Analysis) ExpectedReadLoad(p float64) float64 {
	return a.ReadAvailability(p)*(a.ReadLoad-1) + 1
}

// ExpectedWriteLoad returns 𝔼L_WR = WR_availability(p)·L_WR + WR_fail(p)·1
// (Equation 3.2).
func (a Analysis) ExpectedWriteLoad(p float64) float64 {
	return a.WriteAvailability(p)*a.WriteLoad + a.WriteFailure(p)
}

// LimitWriteAvailability returns lim_{n→∞} WR_availability(p) = 1 − (1−p⁴)⁷
// for trees built by Algorithm 1 (§3.3).
func LimitWriteAvailability(p float64) float64 {
	return 1 - math.Pow(1-math.Pow(p, 4), 7)
}

// LimitReadAvailability returns lim_{n→∞} RD_availability(p) = (1−(1−p)⁴)⁷
// for trees built by Algorithm 1 (§3.3).
func LimitReadAvailability(p float64) float64 {
	return math.Pow(1-math.Pow(1-p, 4), 7)
}
