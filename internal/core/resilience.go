package core

import "arbor/internal/tree"

// ReadResilience returns the largest f such that EVERY set of f replica
// crashes still leaves some read quorum intact. A read needs one live
// replica per physical level, so the worst-case adversary concentrates
// crashes on the smallest level: resilience is d − 1.
func ReadResilience(t *tree.Tree) int {
	return t.D() - 1
}

// WriteResilience returns the largest f such that every set of f crashes
// leaves some write quorum intact. A write needs one fully live level, so
// the worst-case adversary spreads one crash per level: resilience is
// |K_phy| − 1.
func WriteResilience(t *tree.Tree) int {
	return t.NumPhysicalLevels() - 1
}

// MinReadHittingSet returns the size of the smallest crash set that
// disables every read quorum (= ReadResilience + 1): the whole smallest
// physical level.
func MinReadHittingSet(t *tree.Tree) int { return t.D() }

// MinWriteHittingSet returns the size of the smallest crash set that
// disables every write quorum (= WriteResilience + 1): one replica per
// physical level.
func MinWriteHittingSet(t *tree.Tree) int { return t.NumPhysicalLevels() }
