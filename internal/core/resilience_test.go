package core

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"

	"arbor/internal/quorum"
	"arbor/internal/tree"
)

func TestResilienceClosedForms(t *testing.T) {
	tests := []struct {
		spec      string
		wantRead  int
		wantWrite int
	}{
		{spec: "1-3-5", wantRead: 2, wantWrite: 1},
		{spec: "1-8", wantRead: 7, wantWrite: 0},
		{spec: "1-2-2-2", wantRead: 1, wantWrite: 2},
		{spec: "1-4-4-8", wantRead: 3, wantWrite: 2},
	}
	for _, tt := range tests {
		tr, err := tree.ParseSpec(tt.spec)
		if err != nil {
			t.Fatal(err)
		}
		if got := ReadResilience(tr); got != tt.wantRead {
			t.Errorf("%s: read resilience %d, want %d", tt.spec, got, tt.wantRead)
		}
		if got := WriteResilience(tr); got != tt.wantWrite {
			t.Errorf("%s: write resilience %d, want %d", tt.spec, got, tt.wantWrite)
		}
	}
}

// minHittingSet finds, by exhaustive search, the size of the smallest
// element set intersecting every quorum (the minimum crash set disabling
// the operation).
func minHittingSet(sys *quorum.System) int {
	n := sys.N()
	masks := make([]uint64, sys.Len())
	for j := 0; j < sys.Len(); j++ {
		var m uint64
		for _, e := range sys.Quorum(j) {
			m |= 1 << uint(e)
		}
		masks[j] = m
	}
	best := n
	for s := uint64(1); s < 1<<uint(n); s++ {
		size := bits.OnesCount64(s)
		if size >= best {
			continue
		}
		hitsAll := true
		for _, m := range masks {
			if s&m == 0 {
				hitsAll = false
				break
			}
		}
		if hitsAll {
			best = size
		}
	}
	return best
}

// TestQuickResilienceMatchesBruteForce verifies the closed forms against
// exhaustive minimum-hitting-set search on random small trees.
func TestQuickResilienceMatchesBruteForce(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		counts := make([]int, 1+r.Intn(3))
		total := 0
		for i := range counts {
			counts[i] = 1 + r.Intn(4)
			total += counts[i]
		}
		if total > 12 {
			return true // keep enumeration cheap
		}
		tr, err := tree.PhysicalLevelSizes(counts...)
		if err != nil {
			return false
		}
		proto, err := New(tr)
		if err != nil {
			return false
		}
		bc, err := proto.EnumerateBiCoterie()
		if err != nil {
			return false
		}
		if got, want := minHittingSet(bc.Reads), MinReadHittingSet(tr); got != want {
			t.Logf("seed %d (%s): read hitting set %d, formula %d", seed, tr.Spec(), got, want)
			return false
		}
		if got, want := minHittingSet(bc.Writes), MinWriteHittingSet(tr); got != want {
			t.Logf("seed %d (%s): write hitting set %d, formula %d", seed, tr.Spec(), got, want)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestResilienceObservedOnCluster ties the closed form to behaviour: d−1
// crashes anywhere never block reads (checked for every (d−1)-subset of the
// smallest level plus scattered patterns in the cluster tests); here we
// verify the boundary cases structurally via the quorum systems.
func TestResilienceBoundary(t *testing.T) {
	tr := tree.Figure1() // d=3, |K_phy|=2
	proto, err := New(tr)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := proto.EnumerateBiCoterie()
	if err != nil {
		t.Fatal(err)
	}
	// Crashing all of the smallest level (3 replicas) kills every read
	// quorum; crashing any 2 does not.
	if got := minHittingSet(bc.Reads); got != 3 {
		t.Errorf("read hitting set = %d, want 3", got)
	}
	// One crash per level (2 replicas) kills every write quorum.
	if got := minHittingSet(bc.Writes); got != 2 {
		t.Errorf("write hitting set = %d, want 2", got)
	}
}
