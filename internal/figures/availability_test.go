package figures

import (
	"strings"
	"testing"
)

func TestAvailabilityCurveMonotoneInP(t *testing.T) {
	ps := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
	rows, err := AvailabilityCurve(100, ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Read < rows[i-1].Read || rows[i].Write < rows[i-1].Write {
			t.Errorf("availabilities not monotone at p=%v", rows[i].P)
		}
	}
	// §3.3: near-certain availability once p > 0.8.
	last := rows[len(rows)-1]
	if last.Read < 0.999 || last.Write < 0.999 {
		t.Errorf("availabilities at p=0.99 too low: %+v", last)
	}
	// Finite-n values track the limits.
	for _, r := range rows {
		if r.P < 0.6 {
			continue
		}
		if diff := r.Write - r.WriteLimit; diff < -0.05 || diff > 0.05 {
			t.Errorf("p=%v: finite write availability %v far from limit %v", r.P, r.Write, r.WriteLimit)
		}
	}
}

func TestAvailabilityCurveErrors(t *testing.T) {
	if _, err := AvailabilityCurve(10, []float64{0.5}); err == nil {
		t.Error("n=10 accepted (Algorithm 1 needs n > 64)")
	}
	if _, err := RenderAvailabilityCurve(10); err == nil {
		t.Error("render for n=10 accepted")
	}
}

func TestRenderAvailabilityCurve(t *testing.T) {
	out, err := RenderAvailabilityCurve(100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RD_avail") || !strings.Contains(out, "0.99") {
		t.Errorf("render:\n%s", out)
	}
}
