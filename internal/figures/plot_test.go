package figures

import (
	"strings"
	"testing"
)

func TestPlotContainsAllSeries(t *testing.T) {
	out := Plot("Figure 4 (write loads)", Figure4(300, DefaultP), PlotRead, 60, 16)
	for _, mark := range []string{"B=BINARY", "U=UNMODIFIED", "A=ARBITRARY", "H=HQC", "R=MOSTLY-READ", "W=MOSTLY-WRITE"} {
		if !strings.Contains(out, mark) {
			t.Errorf("legend missing %q:\n%s", mark, out)
		}
	}
	if !strings.Contains(out, "log scale") {
		t.Error("axis label missing")
	}
	// Markers actually appear in the grid body.
	body := out[strings.Index(out, "\n"):]
	for _, m := range []string{"B", "A", "H"} {
		if !strings.Contains(body, m) {
			t.Errorf("marker %s not plotted", m)
		}
	}
}

func TestPlotWriteField(t *testing.T) {
	out := Plot("Figure 2 (write costs)", Figure2(300), PlotWrite, 50, 12)
	if !strings.Contains(out, "Figure 2") {
		t.Error("title missing")
	}
}

func TestPlotEmptySeries(t *testing.T) {
	out := Plot("empty", nil, PlotRead, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot = %q", out)
	}
}

func TestPlotTinyDimensionsClamped(t *testing.T) {
	out := Plot("tiny", Figure2(100), PlotRead, 1, 1)
	if len(strings.Split(out, "\n")) < 8 {
		t.Error("dimensions not clamped to minimum")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	series := []Series{{Name: "X", Points: []Point{{N: 10, Read: 1}, {N: 20, Read: 1}}}}
	out := Plot("const", series, PlotRead, 30, 8)
	if !strings.Contains(out, "X") {
		t.Errorf("constant series not plotted:\n%s", out)
	}
}
