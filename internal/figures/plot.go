package figures

import (
	"fmt"
	"math"
	"strings"
)

// PlotField selects which value of each Point a plot displays.
type PlotField int

// Plot fields.
const (
	// PlotRead plots Point.Read (cost or optimal load).
	PlotRead PlotField = iota + 1
	// PlotWrite plots Point.Write (cost or expected load).
	PlotWrite
)

// Plot renders the series as an ASCII scatter chart: x is n on a log scale,
// y is the selected field (linear), one marker letter per configuration.
// It is a terminal stand-in for the paper's Figures 2–4.
func Plot(title string, series []Series, field PlotField, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}

	type sample struct {
		n     int
		value float64
		mark  byte
	}
	var samples []sample
	var legend []string
	minN, maxN := math.Inf(1), math.Inf(-1)
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		mark := s.Name[0]
		if s.Name == "MOSTLY-READ" {
			mark = 'R'
		}
		if s.Name == "MOSTLY-WRITE" {
			mark = 'W'
		}
		legend = append(legend, fmt.Sprintf("%c=%s", mark, s.Name))
		for _, pt := range s.Points {
			v := pt.Read
			if field == PlotWrite {
				v = pt.Write
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			samples = append(samples, sample{n: pt.N, value: v, mark: mark})
			minN = math.Min(minN, float64(pt.N))
			maxN = math.Max(maxN, float64(pt.N))
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	if len(samples) == 0 {
		return title + "\n(no data)\n"
	}
	if maxV == minV {
		maxV = minV + 1
	}
	if maxN == minN {
		maxN = minN + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	logMin, logMax := math.Log(minN), math.Log(maxN)
	for _, sm := range samples {
		x := int(math.Round((math.Log(float64(sm.n)) - logMin) / (logMax - logMin) * float64(width-1)))
		y := int(math.Round((sm.value - minV) / (maxV - minV) * float64(height-1)))
		row := height - 1 - y
		if grid[row][x] != ' ' && grid[row][x] != sm.mark {
			grid[row][x] = '*' // collision of two configurations
		} else {
			grid[row][x] = sm.mark
		}
	}

	var b strings.Builder
	b.WriteString(title + "\n")
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%7.3f ", maxV)
		case height - 1:
			label = fmt.Sprintf("%7.3f ", minV)
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	b.WriteString(strings.Repeat(" ", 8) + "+" + strings.Repeat("-", width) + "\n")
	b.WriteString(fmt.Sprintf("%9s%-*d%*d (n, log scale)\n", "", width/2, int(minN), width/2, int(maxN)))
	b.WriteString(strings.Repeat(" ", 9) + strings.Join(legend, "  ") + "\n")
	return b.String()
}
