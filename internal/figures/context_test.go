package figures

import (
	"math"
	"strings"
	"testing"
)

// TestContextIntroClaims pins the introduction's statements about the
// classic protocols at n ≈ 100.
func TestContextIntroClaims(t *testing.T) {
	rows, err := Context(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]ContextRow)
	for _, r := range rows {
		byName[r.Name] = r
	}

	// ROWA: read cost 1, load 1/n; write cost n, load 1.
	rowa := byName["ROWA"]
	if rowa.ReadCost != 1 || rowa.WriteCost != float64(rowa.N) {
		t.Errorf("ROWA costs: %+v", rowa)
	}
	if math.Abs(rowa.ReadLoad-1/float64(rowa.N)) > 1e-12 || rowa.WriteLoad != 1 {
		t.Errorf("ROWA loads: %+v", rowa)
	}

	// Majority: both costs (n+1)/2, load ≥ 0.5.
	maj := byName["MAJORITY"]
	if maj.ReadCost != float64((maj.N+1)/2) || maj.ReadLoad < 0.5 {
		t.Errorf("MAJORITY: %+v", maj)
	}

	// Grid and FPP: load ≈ 1/√n (the optimal scaling), cost ≈ √n.
	grid := byName["GRID"]
	sqrtN := math.Sqrt(float64(grid.N))
	if grid.ReadCost < sqrtN-1 || grid.ReadCost > sqrtN+1 {
		t.Errorf("GRID read cost %v, want ≈√n=%v", grid.ReadCost, sqrtN)
	}
	if grid.ReadLoad > 2/sqrtN {
		t.Errorf("GRID read load %v not O(1/√n)", grid.ReadLoad)
	}
	fpp := byName["FPP"]
	if fpp.ReadLoad > 2/math.Sqrt(float64(fpp.N)) {
		t.Errorf("FPP load %v not O(1/√n)", fpp.ReadLoad)
	}

	// The intro's headline: tree protocols have O(log n) quorums but much
	// higher load than √n systems; the paper's ARBITRARY gets write load
	// 1/√n with √n cost.
	arb := byName["ARBITRARY"]
	if math.Abs(arb.WriteLoad-1/math.Sqrt(float64(arb.N))) > 1e-12 {
		t.Errorf("ARBITRARY write load %v, want 1/√n", arb.WriteLoad)
	}
	bin := byName["BINARY"]
	if bin.ReadLoad <= fpp.ReadLoad {
		t.Errorf("BINARY load %v should exceed FPP's %v (trees trade load for quorum size)", bin.ReadLoad, fpp.ReadLoad)
	}
}

func TestRenderContext(t *testing.T) {
	out, err := RenderContext(64, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ROWA", "MAJORITY", "VOTING", "GRID", "FPP", "BINARY", "HQC", "ARBITRARY"} {
		if !strings.Contains(out, name) {
			t.Errorf("context table missing %s:\n%s", name, out)
		}
	}
}

func TestContextSmallN(t *testing.T) {
	// Even a small n picks feasible natural sizes for every protocol.
	rows, err := Context(7, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Errorf("%d rows", len(rows))
	}
}
