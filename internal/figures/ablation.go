package figures

import (
	"fmt"
	"strings"

	"arbor/internal/core"
	"arbor/internal/tree"
)

// AblationRow captures the protocol's metrics for one choice of the number
// of physical levels at a fixed n — the protocol's single design lever.
type AblationRow struct {
	Levels            int
	Spec              string
	ReadCost          int
	WriteCost         float64
	ReadLoad          float64
	WriteLoad         float64
	ReadAvailability  float64
	WriteAvailability float64
}

// Ablation sweeps the number of physical levels for n replicas (splitting
// them as evenly as possible under Assumption 3.1) and reports every
// metric, exposing the read/write trade-off the tree shape controls. The
// availability columns use probability p.
func Ablation(n int, p float64) ([]AblationRow, error) {
	if n < 2 {
		return nil, fmt.Errorf("figures: ablation needs n ≥ 2, got %d", n)
	}
	var rows []AblationRow
	for levels := 1; levels <= n/2; levels *= 2 {
		t, err := evenTree(n, levels)
		if err != nil {
			continue
		}
		a := core.Analyze(t)
		rows = append(rows, AblationRow{
			Levels:            t.NumPhysicalLevels(),
			Spec:              t.Spec(),
			ReadCost:          a.ReadCost,
			WriteCost:         a.WriteCostAvg,
			ReadLoad:          a.ReadLoad,
			WriteLoad:         a.WriteLoad,
			ReadAvailability:  a.ReadAvailability(p),
			WriteAvailability: a.WriteAvailability(p),
		})
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("figures: no feasible level splits for n=%d", n)
	}
	return rows, nil
}

// evenTree splits n replicas over `levels` physical levels in
// non-decreasing sizes.
func evenTree(n, levels int) (*tree.Tree, error) {
	if levels > 1 && n/levels < 2 {
		return nil, fmt.Errorf("figures: cannot split %d replicas over %d levels", n, levels)
	}
	base, extra := n/levels, n%levels
	counts := make([]int, levels)
	for i := range counts {
		counts[i] = base
		if i >= levels-extra {
			counts[i]++
		}
	}
	t, err := tree.PhysicalLevelSizes(counts...)
	if err != nil {
		return nil, err
	}
	if err := tree.ValidateAssumption31(t); err != nil {
		return nil, err
	}
	return t, nil
}

// RenderAblation renders the level-count ablation as a text table.
func RenderAblation(n int, p float64) (string, error) {
	rows, err := Ablation(n, p)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ablation — number of physical levels at n=%d (p=%.2f)\n", n, p)
	fmt.Fprintf(&b, "%7s %10s %11s %10s %11s %10s %11s\n",
		"levels", "read_cost", "write_cost", "read_load", "write_load", "RD_avail", "WR_avail")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d %10d %11.2f %10.4f %11.4f %10.4f %11.4f\n",
			r.Levels, r.ReadCost, r.WriteCost, r.ReadLoad, r.WriteLoad,
			r.ReadAvailability, r.WriteAvailability)
	}
	return b.String(), nil
}
