package figures

import (
	"fmt"
	"strings"

	"arbor/internal/core"
	"arbor/internal/tree"
)

// AvailabilityRow samples the ARBITRARY configuration's availabilities at
// one replica-availability probability p, for a finite n and in the n→∞
// limit (§3.3 of the paper).
type AvailabilityRow struct {
	P          float64
	Read       float64
	Write      float64
	ReadLimit  float64
	WriteLimit float64
}

// AvailabilityCurve evaluates RD/WR availability of the Algorithm 1 tree
// with n replicas over a p sweep, alongside the asymptotic limits.
func AvailabilityCurve(n int, ps []float64) ([]AvailabilityRow, error) {
	t, err := tree.Algorithm1(n)
	if err != nil {
		return nil, err
	}
	a := core.Analyze(t)
	rows := make([]AvailabilityRow, 0, len(ps))
	for _, p := range ps {
		rows = append(rows, AvailabilityRow{
			P:          p,
			Read:       a.ReadAvailability(p),
			Write:      a.WriteAvailability(p),
			ReadLimit:  core.LimitReadAvailability(p),
			WriteLimit: core.LimitWriteAvailability(p),
		})
	}
	return rows, nil
}

// RenderAvailabilityCurve renders the §3.3 availability curves as text.
func RenderAvailabilityCurve(n int) (string, error) {
	ps := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95, 0.99}
	rows, err := AvailabilityCurve(n, ps)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "§3.3 — ARBITRARY availabilities vs p (n=%d, with n→∞ limits)\n", n)
	fmt.Fprintf(&b, "%5s %10s %10s %12s %12s\n", "p", "RD_avail", "WR_avail", "RD limit", "WR limit")
	for _, r := range rows {
		fmt.Fprintf(&b, "%5.2f %10.4f %10.4f %12.4f %12.4f\n",
			r.P, r.Read, r.Write, r.ReadLimit, r.WriteLimit)
	}
	return b.String(), nil
}
