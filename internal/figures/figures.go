// Package figures regenerates every table and figure of the paper's
// evaluation as data rows and rendered text tables:
//
//	Table 1    — node counts of the Figure 1 example tree
//	§3.4       — the worked example's metrics
//	Figure 2   — read/write communication costs of the six configurations
//	Figure 3   — (expected) system loads of read operations
//	Figure 4   — (expected) system loads of write operations
//	§3.3       — asymptotic availabilities of the ARBITRARY configuration
//	§3.3/§4.2  — the new lower bound: UNMODIFIED write load vs BINARY
package figures

import (
	"fmt"
	"math"
	"strings"

	"arbor/internal/config"
	"arbor/internal/core"
	"arbor/internal/tree"
)

// DefaultP is the per-replica availability probability used for expected
// loads in Figures 3 and 4 (the paper's example sections use p = 0.7).
const DefaultP = 0.7

// Table1Row is one level of the Figure 1 tree as listed in Table 1.
type Table1Row struct {
	Level    int
	Total    int
	Physical int
	Logical  int
}

// Table1 returns the node counts per level of the Figure 1 tree.
func Table1() []Table1Row {
	t := tree.Figure1()
	rows := make([]Table1Row, 0, t.Height()+1)
	for k := 0; k <= t.Height(); k++ {
		rows = append(rows, Table1Row{
			Level:    k,
			Total:    t.LevelCount(k),
			Physical: t.PhysCount(k),
			Logical:  t.LogCount(k),
		})
	}
	return rows
}

// RenderTable1 renders Table 1 as text.
func RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1 — node counts of the Figure 1 tree (spec 1-3-5+4)\n")
	b.WriteString("level  m_k  m_phy_k  m_log_k\n")
	for _, r := range Table1() {
		fmt.Fprintf(&b, "%5d  %3d  %7d  %7d\n", r.Level, r.Total, r.Physical, r.Logical)
	}
	return b.String()
}

// Example34Result is the full worked example of §3.4 (tree 1-3-5, p=0.7).
type Example34Result struct {
	N                 int
	MR                int64
	MW                int
	ReadCost          int
	ReadAvailability  float64
	ReadLoad          float64
	WriteCost         float64
	WriteAvailability float64
	WriteLoad         float64
	ExpectedReadLoad  float64
	ExpectedWriteLoad float64
}

// Example34 computes the §3.4 worked example.
func Example34() Example34Result {
	t := tree.Figure1()
	a := core.Analyze(t)
	const p = DefaultP
	return Example34Result{
		N:                 t.N(),
		MR:                t.ReadQuorumCount().Int64(),
		MW:                t.WriteQuorumCount(),
		ReadCost:          a.ReadCost,
		ReadAvailability:  a.ReadAvailability(p),
		ReadLoad:          a.ReadLoad,
		WriteCost:         a.WriteCostAvg,
		WriteAvailability: a.WriteAvailability(p),
		WriteLoad:         a.WriteLoad,
		ExpectedReadLoad:  a.ExpectedReadLoad(p),
		ExpectedWriteLoad: a.ExpectedWriteLoad(p),
	}
}

// RenderExample34 renders the worked example alongside the values printed
// in the paper.
func RenderExample34() string {
	r := Example34()
	var b strings.Builder
	b.WriteString("§3.4 worked example — tree 1-3-5, p = 0.7 (paper values in brackets)\n")
	fmt.Fprintf(&b, "n = %d, m(R) = %d [15], m(W) = %d [2]\n", r.N, r.MR, r.MW)
	fmt.Fprintf(&b, "RD_cost = %d [2]   RD_avail = %.4f [0.97]   L_RD = %.4f [1/3]\n",
		r.ReadCost, r.ReadAvailability, r.ReadLoad)
	fmt.Fprintf(&b, "WR_cost = %.1f [4]   WR_avail = %.4f [0.45]   L_WR = %.4f [1/2]\n",
		r.WriteCost, r.WriteAvailability, r.WriteLoad)
	fmt.Fprintf(&b, "E[L_RD] = %.4f [0.35]   E[L_WR] = %.4f [0.775]\n",
		r.ExpectedReadLoad, r.ExpectedWriteLoad)
	return b.String()
}

// Point is one (n, read, write) sample of a series.
type Point struct {
	N     int
	Read  float64
	Write float64
}

// Series is one configuration's samples over n.
type Series struct {
	Name   string
	Points []Point
}

// sampleSizes returns up to max sizes from the kind's natural sizes,
// thinned roughly logarithmically so text plots stay readable.
func sampleSizes(kind config.Kind, maxN, max int) []int {
	sizes := config.NaturalSizes(kind, maxN)
	if len(sizes) <= max {
		return sizes
	}
	out := make([]int, 0, max)
	step := float64(len(sizes)-1) / float64(max-1)
	seen := -1
	for i := 0; i < max; i++ {
		idx := int(math.Round(float64(i) * step))
		if idx == seen {
			continue
		}
		seen = idx
		out = append(out, sizes[idx])
	}
	return out
}

// Figure2 computes the read/write communication costs of all six
// configurations for n up to maxN (Figure 2 of the paper).
func Figure2(maxN int) []Series {
	return sweep(maxN, func(c config.Configuration) Point {
		return Point{N: c.N(), Read: c.ReadCost(), Write: c.WriteCost()}
	})
}

// Figure3 computes the optimal and expected system loads of read
// operations (Figure 3). Read is the optimal load, Write carries the
// expected load at availability p.
func Figure3(maxN int, p float64) []Series {
	return sweep(maxN, func(c config.Configuration) Point {
		expected := c.ReadAvailability(p)*(c.ReadLoad()-1) + 1
		return Point{N: c.N(), Read: c.ReadLoad(), Write: expected}
	})
}

// Figure4 computes the optimal and expected system loads of write
// operations (Figure 4). Read is the optimal load, Write carries the
// expected load at availability p.
func Figure4(maxN int, p float64) []Series {
	return sweep(maxN, func(c config.Configuration) Point {
		expected := c.WriteAvailability(p)*c.WriteLoad() + (1 - c.WriteAvailability(p))
		return Point{N: c.N(), Read: c.WriteLoad(), Write: expected}
	})
}

// sweep evaluates fn for every configuration kind over sampled sizes.
func sweep(maxN int, fn func(config.Configuration) Point) []Series {
	var out []Series
	for _, kind := range config.Kinds() {
		s := Series{Name: kind.String()}
		lastN := -1
		for _, n := range sampleSizes(kind, maxN, 12) {
			cfg, err := config.New(kind, n)
			if err != nil {
				continue
			}
			if cfg.N() == lastN {
				continue
			}
			lastN = cfg.N()
			s.Points = append(s.Points, fn(cfg))
		}
		out = append(out, s)
	}
	return out
}

// RenderSeries renders a figure's series as an aligned text table with the
// given column titles.
func RenderSeries(title, readCol, writeCol string, series []Series) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	fmt.Fprintf(&b, "%-13s %6s %12s %12s\n", "configuration", "n", readCol, writeCol)
	for _, s := range series {
		for _, pt := range s.Points {
			fmt.Fprintf(&b, "%-13s %6d %12.4f %12.4f\n", s.Name, pt.N, pt.Read, pt.Write)
		}
	}
	return b.String()
}

// LimitRow is one availability-limit sample (§3.3).
type LimitRow struct {
	P          float64
	WriteLimit float64 // lim WR_availability = 1−(1−p⁴)⁷
	ReadLimit  float64 // lim RD_availability = (1−(1−p)⁴)⁷
}

// Limits evaluates the asymptotic ARBITRARY availabilities over a p sweep.
func Limits(ps []float64) []LimitRow {
	rows := make([]LimitRow, 0, len(ps))
	for _, p := range ps {
		rows = append(rows, LimitRow{
			P:          p,
			WriteLimit: core.LimitWriteAvailability(p),
			ReadLimit:  core.LimitReadAvailability(p),
		})
	}
	return rows
}

// RenderLimits renders the §3.3 limit table.
func RenderLimits() string {
	var b strings.Builder
	b.WriteString("§3.3 — asymptotic availabilities of ARBITRARY (n→∞)\n")
	fmt.Fprintf(&b, "%5s %18s %18s\n", "p", "lim WR_avail", "lim RD_avail")
	for _, r := range Limits([]float64{0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}) {
		fmt.Fprintf(&b, "%5.2f %18.6f %18.6f\n", r.P, r.WriteLimit, r.ReadLimit)
	}
	return b.String()
}

// LowerBoundRow compares, at one binary-tree size, the write load of the
// paper's protocol applied to the unmodified binary tree against the
// previously best known optimal load of the tree-quorum protocol.
type LowerBoundRow struct {
	N               int
	BinaryLoad      float64 // 2/(log₂(n+1)+1), Naor & Wool
	UnmodifiedWrite float64 // 1/log₂(n+1), this paper's write load
}

// LowerBound evaluates the paper's new-lower-bound claim for binary trees
// of height 1..maxH.
func LowerBound(maxH int) []LowerBoundRow {
	rows := make([]LowerBoundRow, 0, maxH)
	for h := 1; h <= maxH; h++ {
		n := 1<<(h+1) - 1
		logn := math.Log2(float64(n + 1))
		rows = append(rows, LowerBoundRow{
			N:               n,
			BinaryLoad:      2 / (logn + 1),
			UnmodifiedWrite: 1 / logn,
		})
	}
	return rows
}

// RenderLowerBound renders the lower-bound comparison.
func RenderLowerBound() string {
	var b strings.Builder
	b.WriteString("§3.3 — write load of the protocol on an unmodified binary tree\n")
	b.WriteString("vs. the tree-quorum optimal load (the paper's new lower bound)\n")
	fmt.Fprintf(&b, "%8s %20s %22s\n", "n", "BINARY 2/(log+1)", "UNMODIFIED 1/log")
	for _, r := range LowerBound(10) {
		fmt.Fprintf(&b, "%8d %20.4f %22.4f\n", r.N, r.BinaryLoad, r.UnmodifiedWrite)
	}
	return b.String()
}
