package figures

import (
	"fmt"
	"strings"

	"arbor/internal/baseline"
	"arbor/internal/config"
)

// ContextRow is one protocol's summary in the introduction's landscape of
// replica control protocols (§1 of the paper).
type ContextRow struct {
	Name              string
	N                 int
	ReadCost          float64
	WriteCost         float64
	ReadLoad          float64
	WriteLoad         float64
	ReadAvailability  float64
	WriteAvailability float64
}

// Context compares the unstructured protocols of the paper's introduction
// (ROWA, Majority, weighted Voting, Grid, FPP) with the structured ones
// (BINARY, HQC) and the paper's ARBITRARY, each at its natural size nearest
// the requested n. The availability columns use probability p.
func Context(n int, p float64) ([]ContextRow, error) {
	var rows []ContextRow
	add := func(a baseline.Analyzer) {
		rows = append(rows, ContextRow{
			Name:              a.Name(),
			N:                 a.N(),
			ReadCost:          a.ReadCost(),
			WriteCost:         a.WriteCost(),
			ReadLoad:          a.ReadLoad(),
			WriteLoad:         a.WriteLoad(),
			ReadAvailability:  a.ReadAvailability(p),
			WriteAvailability: a.WriteAvailability(p),
		})
	}

	odd := n
	if odd%2 == 0 {
		odd++
	}
	rowa, err := baseline.NewROWA(n)
	if err != nil {
		return nil, err
	}
	add(rowa)
	maj, err := baseline.NewMajority(odd)
	if err != nil {
		return nil, err
	}
	add(maj)
	voting, err := baseline.NewUniformVoting(odd, (odd+1)/2, (odd+1)/2) // r = w = majority
	if err != nil {
		return nil, err
	}
	add(voting)
	square := 1
	for (square+1)*(square+1) <= n {
		square++
	}
	grid, err := baseline.NewGrid(square, square)
	if err != nil {
		return nil, err
	}
	add(grid)
	fpp, err := baseline.NewFPPForSize(n)
	if err != nil {
		return nil, err
	}
	add(fpp)
	for _, kind := range []config.Kind{config.Binary, config.HQC, config.Arbitrary} {
		target := n
		if kind == config.Arbitrary && target < 64 {
			target = 64 // Algorithm 1 needs n > 64 (paper §3.3)
		}
		cfg, err := config.New(kind, target)
		if err != nil {
			return nil, err
		}
		add(cfg)
	}
	return rows, nil
}

// RenderContext renders the protocol landscape as a text table.
func RenderContext(n int, p float64) (string, error) {
	rows, err := Context(n, p)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "protocol landscape near n=%d (p=%.2f) — §1 of the paper\n", n, p)
	fmt.Fprintf(&b, "%-10s %5s %10s %11s %10s %11s %9s %9s\n",
		"protocol", "n", "read_cost", "write_cost", "read_load", "write_load", "RD_avail", "WR_avail")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %5d %10.2f %11.2f %10.4f %11.4f %9.4f %9.4f\n",
			r.Name, r.N, r.ReadCost, r.WriteCost, r.ReadLoad, r.WriteLoad,
			r.ReadAvailability, r.WriteAvailability)
	}
	return b.String(), nil
}
