package figures

import (
	"math"
	"strings"
	"testing"
)

func TestAblationTradeoffMonotonicity(t *testing.T) {
	rows, err := Ablation(64, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("only %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		prev, cur := rows[i-1], rows[i]
		// More levels: read cost up, write cost down, write load down.
		if cur.ReadCost <= prev.ReadCost {
			t.Errorf("read cost not increasing: %d then %d", prev.ReadCost, cur.ReadCost)
		}
		if cur.WriteCost >= prev.WriteCost {
			t.Errorf("write cost not decreasing: %v then %v", prev.WriteCost, cur.WriteCost)
		}
		if cur.WriteLoad >= prev.WriteLoad {
			t.Errorf("write load not decreasing: %v then %v", prev.WriteLoad, cur.WriteLoad)
		}
		// More levels: write availability up, read availability down.
		if cur.WriteAvailability <= prev.WriteAvailability {
			t.Errorf("write availability not increasing: %v then %v", prev.WriteAvailability, cur.WriteAvailability)
		}
		// Read availability is non-increasing (it saturates at 1.0 in
		// float64 for the widest levels).
		if cur.ReadAvailability > prev.ReadAvailability+1e-15 {
			t.Errorf("read availability increased: %v then %v", prev.ReadAvailability, cur.ReadAvailability)
		}
	}
	// Extremes: 1 level behaves like ROWA; n/2 levels like MOSTLY-WRITE.
	first, last := rows[0], rows[len(rows)-1]
	if first.Levels != 1 || first.ReadCost != 1 || math.Abs(first.ReadLoad-1.0/64) > 1e-12 {
		t.Errorf("single-level row = %+v", first)
	}
	if last.Levels != 32 || last.WriteCost != 2 {
		t.Errorf("max-level row = %+v", last)
	}
}

func TestAblationLoadIdentities(t *testing.T) {
	rows, err := Ablation(100, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if math.Abs(r.WriteLoad-1/float64(r.Levels)) > 1e-12 {
			t.Errorf("levels=%d: write load %v != 1/levels", r.Levels, r.WriteLoad)
		}
		if r.ReadCost != r.Levels {
			t.Errorf("levels=%d: read cost %d != levels", r.Levels, r.ReadCost)
		}
	}
}

func TestAblationErrors(t *testing.T) {
	if _, err := Ablation(1, 0.9); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestRenderAblation(t *testing.T) {
	out, err := RenderAblation(64, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ablation") || !strings.Contains(out, "write_load") {
		t.Errorf("render:\n%s", out)
	}
	if _, err := RenderAblation(0, 0.8); err == nil {
		t.Error("n=0 accepted")
	}
}
