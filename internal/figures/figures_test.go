package figures

import (
	"math"
	"strings"
	"testing"

	"arbor/internal/config"
)

// pointNear returns the series' point whose n is closest to want.
func pointNear(t *testing.T, series []Series, name string, want int) Point {
	t.Helper()
	for _, s := range series {
		if s.Name != name {
			continue
		}
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", name)
		}
		best := s.Points[0]
		for _, pt := range s.Points[1:] {
			if abs(pt.N-want) < abs(best.N-want) {
				best = pt
			}
		}
		return best
	}
	t.Fatalf("series %s not found", name)
	return Point{}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := []Table1Row{
		{Level: 0, Total: 1, Physical: 0, Logical: 1},
		{Level: 1, Total: 3, Physical: 3, Logical: 0},
		{Level: 2, Total: 9, Physical: 5, Logical: 4},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %+v", rows)
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
	out := RenderTable1()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "m_phy_k") {
		t.Errorf("rendered table missing headers:\n%s", out)
	}
}

func TestExample34MatchesPaper(t *testing.T) {
	r := Example34()
	close := func(got, want, tol float64, what string) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %v, want ≈%v", what, got, want)
		}
	}
	if r.N != 8 || r.MR != 15 || r.MW != 2 || r.ReadCost != 2 {
		t.Errorf("identity values: %+v", r)
	}
	close(r.ReadAvailability, 0.97, 0.005, "RD_avail")
	close(r.ReadLoad, 1.0/3, 1e-12, "L_RD")
	close(r.WriteCost, 4, 1e-12, "WR_cost")
	close(r.WriteAvailability, 0.45, 0.005, "WR_avail")
	close(r.WriteLoad, 0.5, 1e-12, "L_WR")
	close(r.ExpectedReadLoad, 0.35, 0.005, "E[L_RD]")
	close(r.ExpectedWriteLoad, 0.775, 0.005, "E[L_WR]")
	if out := RenderExample34(); !strings.Contains(out, "worked example") {
		t.Error("render missing title")
	}
}

// TestFigure2Shape encodes §4.1's qualitative claims about communication
// costs at n ≈ 250.
func TestFigure2Shape(t *testing.T) {
	series := Figure2(300)
	const n = 255

	mostlyRead := pointNear(t, series, "MOSTLY-READ", n)
	if mostlyRead.Read != 1 {
		t.Errorf("MOSTLY-READ read cost = %v, want 1 (lowest possible)", mostlyRead.Read)
	}
	if mostlyRead.Write != float64(mostlyRead.N) {
		t.Errorf("MOSTLY-READ write cost = %v, want n", mostlyRead.Write)
	}

	mostlyWrite := pointNear(t, series, "MOSTLY-WRITE", n)
	if mostlyWrite.Write > 2.1 {
		t.Errorf("MOSTLY-WRITE write cost = %v, want ≈2 (lowest)", mostlyWrite.Write)
	}
	if want := float64(mostlyWrite.N-1) / 2; math.Abs(mostlyWrite.Read-want) > 1e-9 {
		t.Errorf("MOSTLY-WRITE read cost = %v, want (n−1)/2 = %v", mostlyWrite.Read, want)
	}

	binary := pointNear(t, series, "BINARY", n)
	unmod := pointNear(t, series, "UNMODIFIED", n)
	arb := pointNear(t, series, "ARBITRARY", n)
	hqc := pointNear(t, series, "HQC", n)

	// BINARY has the highest cost of the four general configurations.
	for _, other := range []Point{unmod, arb, hqc} {
		if binary.Read <= other.Read || binary.Write <= other.Write {
			t.Errorf("BINARY cost %v/%v not the highest vs %v/%v", binary.Read, binary.Write, other.Read, other.Write)
		}
	}
	// ARBITRARY has the lowest write cost of the four.
	for _, other := range []Point{binary, unmod, hqc} {
		if arb.Write >= other.Write {
			t.Errorf("ARBITRARY write cost %v not lowest vs %v", arb.Write, other.Write)
		}
	}
	// UNMODIFIED has the lowest read cost of the four (log₂(n+1)).
	for _, other := range []Point{binary, arb, hqc} {
		if unmod.Read >= other.Read {
			t.Errorf("UNMODIFIED read cost %v not lowest vs %v", unmod.Read, other.Read)
		}
	}
}

// TestFigure3Shape encodes §4.2.1's claims about read loads.
func TestFigure3Shape(t *testing.T) {
	series := Figure3(300, DefaultP)
	const n = 255

	unmod := pointNear(t, series, "UNMODIFIED", n)
	if unmod.Read != 1 || unmod.Write != 1 {
		t.Errorf("UNMODIFIED read load = %v/%v, want 1/1 (worst)", unmod.Read, unmod.Write)
	}
	mostlyRead := pointNear(t, series, "MOSTLY-READ", n)
	if want := 1 / float64(mostlyRead.N); math.Abs(mostlyRead.Read-want) > 1e-12 {
		t.Errorf("MOSTLY-READ read load = %v, want 1/n", mostlyRead.Read)
	}
	mostlyWrite := pointNear(t, series, "MOSTLY-WRITE", n)
	if mostlyWrite.Read != 0.5 {
		t.Errorf("MOSTLY-WRITE read load = %v, want 1/2", mostlyWrite.Read)
	}

	binary := pointNear(t, series, "BINARY", n)
	arb := pointNear(t, series, "ARBITRARY", n)
	hqc := pointNear(t, series, "HQC", n)
	// HQC has the least read load of the four (n > 15).
	for _, other := range []Point{binary, unmod, arb} {
		if hqc.Read >= other.Read {
			t.Errorf("HQC read load %v not least vs %v", hqc.Read, other.Read)
		}
	}
	// ARBITRARY pins at 1/4; BINARY is similar (2/(log+1)).
	if arb.Read != 0.25 {
		t.Errorf("ARBITRARY read load = %v, want 0.25", arb.Read)
	}
	if math.Abs(binary.Read-arb.Read) > 0.1 {
		t.Errorf("BINARY %v and ARBITRARY %v read loads should be similar", binary.Read, arb.Read)
	}
	// Expected loads sit above (or at) the optimal loads.
	for _, s := range series {
		for _, pt := range s.Points {
			if pt.Write < pt.Read-1e-9 {
				t.Errorf("%s n=%d: expected load %v below optimal %v", s.Name, pt.N, pt.Write, pt.Read)
			}
		}
	}
}

// TestFigure4Shape encodes §4.2.2's claims about write loads.
func TestFigure4Shape(t *testing.T) {
	series := Figure4(300, DefaultP)
	const n = 255

	mostlyRead := pointNear(t, series, "MOSTLY-READ", n)
	if mostlyRead.Read != 1 {
		t.Errorf("MOSTLY-READ write load = %v, want 1 (worst)", mostlyRead.Read)
	}
	mostlyWrite := pointNear(t, series, "MOSTLY-WRITE", n)
	if want := 2 / float64(mostlyWrite.N-1); math.Abs(mostlyWrite.Read-want) > 1e-12 {
		t.Errorf("MOSTLY-WRITE write load = %v, want 2/(n−1)", mostlyWrite.Read)
	}

	binary := pointNear(t, series, "BINARY", n)
	unmod := pointNear(t, series, "UNMODIFIED", n)
	arb := pointNear(t, series, "ARBITRARY", n)
	hqc := pointNear(t, series, "HQC", n)

	// BINARY has the highest write load of the four.
	for _, other := range []Point{unmod, arb, hqc} {
		if binary.Read <= other.Read {
			t.Errorf("BINARY write load %v not highest vs %v", binary.Read, other.Read)
		}
	}
	// ARBITRARY has the least write load of the four (1/√n).
	for _, other := range []Point{binary, unmod, hqc} {
		if arb.Read >= other.Read {
			t.Errorf("ARBITRARY write load %v not least vs %v", arb.Read, other.Read)
		}
	}
	// UNMODIFIED is second lowest.
	if !(arb.Read < unmod.Read && unmod.Read < hqc.Read && unmod.Read < binary.Read) {
		t.Errorf("UNMODIFIED write load %v not second-lowest (arb %v, hqc %v, binary %v)",
			unmod.Read, arb.Read, hqc.Read, binary.Read)
	}
	// MOSTLY-WRITE is the overall minimum.
	for _, other := range []Point{binary, unmod, arb, hqc, mostlyRead} {
		if mostlyWrite.Read >= other.Read {
			t.Errorf("MOSTLY-WRITE write load %v not overall least vs %v", mostlyWrite.Read, other.Read)
		}
	}
}

// TestArbitraryExpectedLoadConvergesAtHighP pins §4.2.2's closing remark:
// the expected loads of ARBITRARY approach its computed optimal loads once
// p exceeds 0.8.
func TestArbitraryExpectedLoadConvergesAtHighP(t *testing.T) {
	lowP := Figure4(300, 0.7)
	highP := Figure4(300, 0.95)
	low := pointNear(t, lowP, "ARBITRARY", 255)
	high := pointNear(t, highP, "ARBITRARY", 255)
	gapLow := low.Write - low.Read
	gapHigh := high.Write - high.Read
	if gapHigh >= gapLow {
		t.Errorf("expected-load gap did not shrink with p: %v then %v", gapLow, gapHigh)
	}
	if gapHigh > 0.02 {
		t.Errorf("expected-load gap at p=0.95 is %v, want near zero", gapHigh)
	}
}

func TestLimits(t *testing.T) {
	rows := Limits([]float64{0.7, 0.85})
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Closed forms.
	p := 0.7
	wantW := 1 - math.Pow(1-math.Pow(p, 4), 7)
	wantR := math.Pow(1-math.Pow(1-p, 4), 7)
	if math.Abs(rows[0].WriteLimit-wantW) > 1e-12 || math.Abs(rows[0].ReadLimit-wantR) > 1e-12 {
		t.Errorf("limits at 0.7 = %+v", rows[0])
	}
	// §3.3: both ≈ 1 once p > 0.8.
	if rows[1].WriteLimit < 0.99 || rows[1].ReadLimit < 0.99 {
		t.Errorf("limits at 0.85 = %+v, want ≈1", rows[1])
	}
	if out := RenderLimits(); !strings.Contains(out, "lim WR_avail") {
		t.Error("render missing header")
	}
}

func TestLowerBound(t *testing.T) {
	rows := LowerBound(10)
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.UnmodifiedWrite >= r.BinaryLoad {
			t.Errorf("n=%d: UNMODIFIED write load %v not below BINARY %v", r.N, r.UnmodifiedWrite, r.BinaryLoad)
		}
	}
	if out := RenderLowerBound(); !strings.Contains(out, "lower bound") {
		t.Error("render missing title")
	}
}

func TestRenderSeries(t *testing.T) {
	series := Figure2(100)
	out := RenderSeries("Figure 2", "read", "write", series)
	for _, name := range []string{"BINARY", "UNMODIFIED", "ARBITRARY", "HQC", "MOSTLY-READ", "MOSTLY-WRITE"} {
		if !strings.Contains(out, name) {
			t.Errorf("render missing series %s", name)
		}
	}
}

func TestSampleSizesThinning(t *testing.T) {
	sizes := sampleSizes(config.MostlyRead, 500, 12)
	if len(sizes) > 12 {
		t.Errorf("sampled %d sizes, want ≤ 12", len(sizes))
	}
	if sizes[0] != 1 || sizes[len(sizes)-1] != 500 {
		t.Errorf("sampling should keep endpoints: %v", sizes)
	}
}
