package history

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"arbor/internal/replica"
)

func ts(v uint64, site int) replica.Timestamp {
	return replica.Timestamp{Version: v, Site: site}
}

// at builds times on a shared scale so precedence is explicit.
func at(ms int) time.Time {
	return time.Unix(0, int64(ms)*int64(time.Millisecond))
}

func TestCheckConsistentHistory(t *testing.T) {
	ops := []Op{
		{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(10)},
		{Kind: Read, Key: "k", Value: "v1", TS: ts(1, -1), Found: true, Start: at(20), End: at(30)},
		{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(40), End: at(50)},
		{Kind: Read, Key: "k", Value: "v2", TS: ts(2, -1), Found: true, Start: at(60), End: at(70)},
	}
	if v := Check(ops); len(v) != 0 {
		t.Errorf("violations on consistent history: %v", v)
	}
}

func TestCheckConcurrentReadsMayDiverge(t *testing.T) {
	// Overlapping operations carry no real-time obligation: a read
	// concurrent with a write may see either state.
	ops := []Op{
		{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(10)},
		{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(20), End: at(40)},
		{Kind: Read, Key: "k", Value: "v1", TS: ts(1, -1), Found: true, Start: at(25), End: at(35)},
	}
	if v := Check(ops); len(v) != 0 {
		t.Errorf("violations on concurrent history: %v", v)
	}
}

func TestCheckStaleReadDetected(t *testing.T) {
	ops := []Op{
		{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(10)},
		{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(20), End: at(30)},
		// Starts after v2's write ended but observes v1: stale.
		{Kind: Read, Key: "k", Value: "v1", TS: ts(1, -1), Found: true, Start: at(40), End: at(50)},
	}
	v := Check(ops)
	if len(v) == 0 {
		t.Fatal("stale read not detected")
	}
	if v[0].Rule != "read-your-writes" {
		t.Errorf("rule = %s", v[0].Rule)
	}
	if !strings.Contains(v[0].Error(), "read-your-writes") {
		t.Errorf("Error() = %q", v[0].Error())
	}
}

func TestCheckNotFoundAfterWriteDetected(t *testing.T) {
	ops := []Op{
		{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(10)},
		{Kind: Read, Key: "k", Found: false, Start: at(20), End: at(30)},
	}
	if v := Check(ops); len(v) == 0 {
		t.Error("lost write (read found nothing) not detected")
	}
}

func TestCheckMonotonicReadsViolation(t *testing.T) {
	ops := []Op{
		{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(5)},
		{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(6), End: at(9)},
		{Kind: Read, Key: "k", Value: "v2", TS: ts(2, -1), Found: true, Start: at(10), End: at(20)},
		// Later read goes back in time.
		{Kind: Read, Key: "k", Value: "v1", TS: ts(1, -1), Found: true, Start: at(30), End: at(40)},
	}
	found := false
	for _, v := range Check(ops) {
		if v.Rule == "monotonic-reads" {
			found = true
		}
	}
	if !found {
		t.Error("monotonic-reads violation not detected")
	}
}

func TestCheckValueIntegrity(t *testing.T) {
	ops := []Op{
		{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(10)},
		// Read returns a value under v1's timestamp that was never written.
		{Kind: Read, Key: "k", Value: "phantom", TS: ts(1, -1), Found: true, Start: at(20), End: at(30)},
		// Read observes a timestamp with no write at all.
		{Kind: Read, Key: "k", Value: "x", TS: ts(9, -1), Found: true, Start: at(40), End: at(50)},
	}
	v := Check(ops)
	integrity := 0
	for _, violation := range v {
		if violation.Rule == "value-integrity" {
			integrity++
		}
	}
	if integrity != 2 {
		t.Errorf("expected 2 value-integrity violations, got %v", v)
	}
}

func TestCheckUniqueWrites(t *testing.T) {
	ops := []Op{
		{Kind: Write, Key: "k", Value: "a", TS: ts(1, -1), Start: at(0), End: at(10)},
		{Kind: Write, Key: "k", Value: "b", TS: ts(1, -1), Start: at(0), End: at(10)},
	}
	v := Check(ops)
	if len(v) == 0 || v[0].Rule != "unique-writes" {
		t.Errorf("duplicate-timestamp writes not detected: %v", v)
	}
}

func TestCheckKeysAreIndependent(t *testing.T) {
	ops := []Op{
		{Kind: Write, Key: "a", Value: "v5", TS: ts(5, -1), Start: at(0), End: at(10)},
		// Key b legitimately has a smaller timestamp later in time.
		{Kind: Write, Key: "b", Value: "v1", TS: ts(1, -1), Start: at(20), End: at(30)},
		{Kind: Read, Key: "b", Value: "v1", TS: ts(1, -1), Found: true, Start: at(40), End: at(50)},
	}
	if v := Check(ops); len(v) != 0 {
		t.Errorf("cross-key false positives: %v", v)
	}
}

// TestCheckIntervalSemanticsCorpus pins the interval-aware semantics on a
// corpus of hand-built histories: overlapping operations may serialize
// either way, strictly-ordered anomalies are violations, in-doubt writes
// impose no visibility obligations, and a value can never be observed
// before any write of it began.
func TestCheckIntervalSemanticsCorpus(t *testing.T) {
	cases := []struct {
		name string
		ops  []Op
		// wantRules is the exact multiset of violated rules, empty for a
		// consistent history.
		wantRules []string
	}{
		{
			name: "concurrent read may return the old value",
			ops: []Op{
				{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(10)},
				{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(20), End: at(40)},
				{Kind: Read, Key: "k", Value: "v1", TS: ts(1, -1), Found: true, Start: at(25), End: at(35)},
			},
		},
		{
			name: "concurrent read may return the new value",
			ops: []Op{
				{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(10)},
				{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(20), End: at(40)},
				{Kind: Read, Key: "k", Value: "v2", TS: ts(2, -1), Found: true, Start: at(25), End: at(35)},
			},
		},
		{
			name: "read not-found concurrent with the first write is legal",
			ops: []Op{
				{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(10), End: at(30)},
				{Kind: Read, Key: "k", Found: false, Start: at(15), End: at(25)},
			},
		},
		{
			name: "stale read strictly after a completed write is a violation",
			ops: []Op{
				{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(10)},
				{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(20), End: at(30)},
				{Kind: Read, Key: "k", Value: "v1", TS: ts(1, -1), Found: true, Start: at(40), End: at(50)},
			},
			wantRules: []string{"read-your-writes"},
		},
		{
			name: "read observing a write that had not started is a violation",
			ops: []Op{
				{Kind: Read, Key: "k", Value: "v1", TS: ts(1, -1), Found: true, Start: at(0), End: at(10)},
				{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(20), End: at(30)},
			},
			wantRules: []string{"future-read"},
		},
		{
			name: "in-doubt write imposes no obligation on later reads",
			ops: []Op{
				{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(0), End: at(10)},
				{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(20), End: at(30), InDoubt: true},
				// The in-doubt commit never became visible: reading v1 is legal.
				{Kind: Read, Key: "k", Value: "v1", TS: ts(1, -1), Found: true, Start: at(40), End: at(50)},
			},
		},
		{
			name: "in-doubt write may still satisfy a later read",
			ops: []Op{
				{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(0), End: at(10), InDoubt: true},
				{Kind: Read, Key: "k", Value: "v2", TS: ts(2, -1), Found: true, Start: at(20), End: at(30)},
			},
		},
		{
			name: "lost in-doubt write's version may be reissued",
			ops: []Op{
				{Kind: Write, Key: "k", Value: "lost", TS: ts(1, -1), Start: at(0), End: at(10), InDoubt: true},
				{Kind: Write, Key: "k", Value: "kept", TS: ts(1, -1), Start: at(20), End: at(30)},
				{Kind: Read, Key: "k", Value: "kept", TS: ts(1, -1), Found: true, Start: at(40), End: at(50)},
			},
		},
		{
			name: "completed writes must still not collide",
			ops: []Op{
				{Kind: Write, Key: "k", Value: "a", TS: ts(1, -1), Start: at(0), End: at(10)},
				{Kind: Write, Key: "k", Value: "b", TS: ts(1, -1), Start: at(20), End: at(30)},
			},
			wantRules: []string{"unique-writes", "monotonic-writes"},
		},
		{
			name: "completed write after an in-doubt one needs no newer timestamp",
			ops: []Op{
				{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(0), End: at(10), InDoubt: true},
				{Kind: Write, Key: "k", Value: "v2b", TS: ts(2, -2), Start: at(20), End: at(30)},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Check(tc.ops)
			var rules []string
			for _, v := range got {
				rules = append(rules, v.Rule)
			}
			if len(rules) != len(tc.wantRules) {
				t.Fatalf("violations = %v, want rules %v", got, tc.wantRules)
			}
			want := append([]string(nil), tc.wantRules...)
			sort.Strings(rules)
			sort.Strings(want)
			for i := range rules {
				if rules[i] != want[i] {
					t.Fatalf("violations = %v, want rules %v", got, tc.wantRules)
				}
			}
		})
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rec.Record(Op{Kind: Read, Key: "k", Client: i})
			}
		}(i)
	}
	wg.Wait()
	if rec.Len() != 800 {
		t.Errorf("recorded %d ops, want 800", rec.Len())
	}
	ops := rec.Ops()
	ops[0].Key = "mutated"
	if rec.Ops()[0].Key == "mutated" {
		t.Error("Ops returned aliased storage")
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("kind names")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name")
	}
}

func TestCheckMonotonicWritesViolation(t *testing.T) {
	ops := []Op{
		{Kind: Write, Key: "k", Value: "v2", TS: ts(2, -1), Start: at(0), End: at(10)},
		// A later write with an older timestamp: forbidden.
		{Kind: Write, Key: "k", Value: "v1", TS: ts(1, -1), Start: at(20), End: at(30)},
	}
	found := false
	for _, v := range Check(ops) {
		if v.Rule == "monotonic-writes" {
			found = true
		}
	}
	if !found {
		t.Error("monotonic-writes violation not detected")
	}
}

func TestCheckMonotonicWritesTieBreak(t *testing.T) {
	// Equal versions from different sites: the later write must win the
	// tie-break (lower site), else it is shadowed.
	ops := []Op{
		{Kind: Write, Key: "k", Value: "a", TS: ts(1, -1), Start: at(0), End: at(10)},
		{Kind: Write, Key: "k", Value: "b", TS: ts(1, -2), Start: at(20), End: at(30)},
	}
	if v := Check(ops); len(v) != 0 {
		t.Errorf("tie-break-winning sequential write flagged: %v", v)
	}
}
