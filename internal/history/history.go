// Package history records concurrent operation histories and checks them
// against the one-copy (atomic register) semantics the paper's protocol
// promises: reads return timestamped values some write actually installed,
// never older than any write that completed before the read began, and
// never moving backwards in real time.
//
// The checker reasons about operation *intervals*: operation a precedes b
// only when a.End is strictly before b.Start. Overlapping operations are
// concurrent and may legally serialize either way — a read overlapping a
// write may return the old or the new value — so only strictly-ordered
// anomalies are violations. Writes reported in doubt (Op.InDoubt) are
// special: the commit decision was taken but may not have reached any
// replica, so they create no visibility obligations for later operations,
// yet may legitimately satisfy a later read that does observe them.
package history

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"arbor/internal/replica"
)

// Kind distinguishes reads from writes.
type Kind int

// Operation kinds.
const (
	Read Kind = iota + 1
	Write
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one completed operation. Failed operations (quorum unavailable)
// are not recorded — the checker reasons about successful ones only.
type Op struct {
	Kind  Kind
	Key   string
	Value string
	// TS is the timestamp the operation installed (write) or observed
	// (read). A read of a never-written key has Found=false and a zero TS.
	TS    replica.Timestamp
	Found bool
	Start time.Time
	End   time.Time
	// Client identifies the issuing client (diagnostics only).
	Client int
	// InDoubt marks a write that returned ErrInDoubt: the protocol decided
	// commit but not every quorum member acknowledged it. Such a write may
	// be visible to later reads or lost entirely, so the checker exempts it
	// from the obligations a completed write imposes.
	InDoubt bool
}

// Recorder collects operations from concurrent clients.
type Recorder struct {
	mu  sync.Mutex
	ops []Op
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Record appends one completed operation.
func (r *Recorder) Record(op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// Ops returns a copy of the recorded operations.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Violation describes one failed consistency rule.
type Violation struct {
	Rule   string
	Detail string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("history: %s: %s", v.Rule, v.Detail)
}

// Check verifies the recorded history against one-copy semantics and
// returns every violation found. An empty result means the history is
// consistent. Real-time rules compare only strictly-ordered pairs
// (a.End before b.Start); concurrent (overlapping) operations may
// serialize either way and are never flagged. The rules, per key:
//
//  1. value-integrity — every found read returns a (timestamp, value)
//     pair some write installed;
//  2. unique-writes — no two completed writes share a timestamp with
//     different values (an in-doubt write may collide with a reissue of
//     its version number);
//  3. read-your-writes (real time) — a read starting after a completed
//     write ended returns a timestamp at least as new;
//  4. monotonic-reads (real time) — a read starting after another read
//     ended never observes an older timestamp;
//  5. monotonic-writes (real time) — a write starting after another
//     completed write ended carries a strictly newer timestamp;
//  6. future-read — a read never observes a timestamp whose only
//     installing writes started after the read ended (a value cannot be
//     seen before any write of it began).
//
// In-doubt writes are exempt as predecessors in rules 3 and 5 — their
// value may never have reached a readable quorum — but still satisfy
// rule 1 and anchor rule 6 for reads that do observe them.
func Check(ops []Op) []Violation {
	var violations []Violation
	byKey := make(map[string][]Op)
	for _, op := range ops {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		violations = append(violations, checkKey(key, byKey[key])...)
	}
	return violations
}

func checkKey(key string, ops []Op) []Violation {
	var violations []Violation

	// Index every write by timestamp. Colliding timestamps are a violation
	// only between completed writes with different values: an in-doubt
	// write's version number may be legitimately reissued when its commit
	// never became visible.
	writes := make(map[replica.Timestamp][]Op)
	for _, op := range ops {
		if op.Kind != Write {
			continue
		}
		for _, prev := range writes[op.TS] {
			if !prev.InDoubt && !op.InDoubt && prev.Value != op.Value {
				violations = append(violations, Violation{
					Rule:   "unique-writes",
					Detail: fmt.Sprintf("key %q: timestamp %v installed both %q and %q", key, op.TS, prev.Value, op.Value),
				})
			}
		}
		writes[op.TS] = append(writes[op.TS], op)
	}

	for _, op := range ops {
		if op.Kind != Read || !op.Found {
			continue
		}
		cands := writes[op.TS]
		if len(cands) == 0 {
			violations = append(violations, Violation{
				Rule:   "value-integrity",
				Detail: fmt.Sprintf("key %q: read observed %v=%q, which no recorded write installed", key, op.TS, op.Value),
			})
			continue
		}
		matched, future := false, true
		for _, w := range cands {
			if w.Value == op.Value {
				matched = true
			}
			if !w.Start.After(op.End) {
				future = false
			}
		}
		if !matched {
			violations = append(violations, Violation{
				Rule:   "value-integrity",
				Detail: fmt.Sprintf("key %q: read at %v returned %q, write installed %q", key, op.TS, op.Value, cands[0].Value),
			})
			continue
		}
		if future {
			violations = append(violations, Violation{
				Rule: "future-read",
				Detail: fmt.Sprintf("key %q: read ending at %v observed %v, but every write of that timestamp started later",
					key, op.End.UnixNano(), op.TS),
			})
		}
	}

	// Real-time rules: compare every pair where a strictly precedes b.
	// In-doubt writes impose no obligations as predecessor — their commit
	// may never have reached a readable quorum.
	for i := range ops {
		for j := range ops {
			a, b := ops[i], ops[j]
			if !a.End.Before(b.Start) {
				continue
			}
			if a.Kind == Write && b.Kind == Read && !a.InDoubt {
				if !b.Found || a.TS.After(b.TS) {
					violations = append(violations, Violation{
						Rule: "read-your-writes",
						Detail: fmt.Sprintf("key %q: write %v completed before read began, read observed %v (found=%v)",
							key, a.TS, b.TS, b.Found),
					})
				}
			}
			if a.Kind == Write && b.Kind == Write && !a.InDoubt {
				if !b.TS.After(a.TS) {
					violations = append(violations, Violation{
						Rule: "monotonic-writes",
						Detail: fmt.Sprintf("key %q: write %v completed before write %v started but does not precede it",
							key, a.TS, b.TS),
					})
				}
			}
			if a.Kind == Read && b.Kind == Read && a.Found {
				if !b.Found || a.TS.After(b.TS) {
					violations = append(violations, Violation{
						Rule: "monotonic-reads",
						Detail: fmt.Sprintf("key %q: read observing %v completed before read observing %v (found=%v)",
							key, a.TS, b.TS, b.Found),
					})
				}
			}
		}
	}
	return violations
}
