// Package history records concurrent operation histories and checks them
// against the one-copy (atomic register) semantics the paper's protocol
// promises: reads return timestamped values some write actually installed,
// never older than any write that completed before the read began, and
// never moving backwards in real time.
package history

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"arbor/internal/replica"
)

// Kind distinguishes reads from writes.
type Kind int

// Operation kinds.
const (
	Read Kind = iota + 1
	Write
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one completed operation. Failed operations (quorum unavailable)
// are not recorded — the checker reasons about successful ones only.
type Op struct {
	Kind  Kind
	Key   string
	Value string
	// TS is the timestamp the operation installed (write) or observed
	// (read). A read of a never-written key has Found=false and a zero TS.
	TS    replica.Timestamp
	Found bool
	Start time.Time
	End   time.Time
	// Client identifies the issuing client (diagnostics only).
	Client int
}

// Recorder collects operations from concurrent clients.
type Recorder struct {
	mu  sync.Mutex
	ops []Op
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Record appends one completed operation.
func (r *Recorder) Record(op Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// Ops returns a copy of the recorded operations.
func (r *Recorder) Ops() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Len returns the number of recorded operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Violation describes one failed consistency rule.
type Violation struct {
	Rule   string
	Detail string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("history: %s: %s", v.Rule, v.Detail)
}

// Check verifies the recorded history against one-copy semantics and
// returns every violation found. An empty result means the history is
// consistent. The rules, per key:
//
//  1. value-integrity — every found read returns a (timestamp, value)
//     pair some write installed;
//  2. unique-writes — no two writes share a timestamp;
//  3. read-your-writes (real time) — a read starting after a write ended
//     returns a timestamp at least as new;
//  4. monotonic-reads (real time) — a read starting after another read
//     ended never observes an older timestamp;
//  5. monotonic-writes (real time) — a write starting after another write
//     ended carries a strictly newer timestamp;
//  6. no-future-reads — a read never observes a timestamp no write has
//     installed (subsumed by rule 1 for found reads).
func Check(ops []Op) []Violation {
	var violations []Violation
	byKey := make(map[string][]Op)
	for _, op := range ops {
		byKey[op.Key] = append(byKey[op.Key], op)
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, key := range keys {
		violations = append(violations, checkKey(key, byKey[key])...)
	}
	return violations
}

func checkKey(key string, ops []Op) []Violation {
	var violations []Violation

	writes := make(map[replica.Timestamp]string)
	for _, op := range ops {
		if op.Kind != Write {
			continue
		}
		if prev, ok := writes[op.TS]; ok && prev != op.Value {
			violations = append(violations, Violation{
				Rule:   "unique-writes",
				Detail: fmt.Sprintf("key %q: timestamp %v installed both %q and %q", key, op.TS, prev, op.Value),
			})
		}
		writes[op.TS] = op.Value
	}

	for _, op := range ops {
		if op.Kind != Read || !op.Found {
			continue
		}
		want, ok := writes[op.TS]
		if !ok {
			violations = append(violations, Violation{
				Rule:   "value-integrity",
				Detail: fmt.Sprintf("key %q: read observed %v=%q, which no recorded write installed", key, op.TS, op.Value),
			})
			continue
		}
		if want != op.Value {
			violations = append(violations, Violation{
				Rule:   "value-integrity",
				Detail: fmt.Sprintf("key %q: read at %v returned %q, write installed %q", key, op.TS, op.Value, want),
			})
		}
	}

	// Real-time rules: compare every pair where a strictly precedes b.
	for i := range ops {
		for j := range ops {
			a, b := ops[i], ops[j]
			if !a.End.Before(b.Start) {
				continue
			}
			if a.Kind == Write && b.Kind == Read {
				if !b.Found || a.TS.After(b.TS) {
					violations = append(violations, Violation{
						Rule: "read-your-writes",
						Detail: fmt.Sprintf("key %q: write %v completed before read began, read observed %v (found=%v)",
							key, a.TS, b.TS, b.Found),
					})
				}
			}
			if a.Kind == Write && b.Kind == Write {
				if !b.TS.After(a.TS) {
					violations = append(violations, Violation{
						Rule: "monotonic-writes",
						Detail: fmt.Sprintf("key %q: write %v completed before write %v started but does not precede it",
							key, a.TS, b.TS),
					})
				}
			}
			if a.Kind == Read && b.Kind == Read && a.Found {
				if !b.Found || a.TS.After(b.TS) {
					violations = append(violations, Violation{
						Rule: "monotonic-reads",
						Detail: fmt.Sprintf("key %q: read observing %v completed before read observing %v (found=%v)",
							key, a.TS, b.TS, b.Found),
					})
				}
			}
		}
	}
	return violations
}
