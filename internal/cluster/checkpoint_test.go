package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"arbor/internal/tree"
)

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	// Populate and checkpoint a cluster.
	c1 := newCluster(t, "1-3-5")
	cli1 := newClient(t, c1)
	for i := 0; i < 5; i++ {
		if _, err := cli1.Write(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	c1.Close()

	// A cold-started cluster on the same tree restores the data.
	tr, err := tree.ParseSpec("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(tr, WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.RestoreCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	cli2, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rd, err := cli2.Read(ctx, fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("read k%d after restore: %v", i, err)
		}
		if want := fmt.Sprintf("v%d", i); string(rd.Value) != want {
			t.Errorf("k%d = %q, want %q", i, rd.Value, want)
		}
	}
	// Writes continue with monotonically increasing versions.
	wr, err := cli2.Write(ctx, "k0", []byte("newer"))
	if err != nil {
		t.Fatal(err)
	}
	if wr.TS.Version < 2 {
		t.Errorf("post-restore version %d should continue from the checkpoint", wr.TS.Version)
	}
}

func TestRestoreCheckpointSkipsMissingFiles(t *testing.T) {
	dir := t.TempDir()
	c := newCluster(t, "1-2-3")
	if err := c.RestoreCheckpoint(dir); err != nil {
		t.Errorf("restore from empty dir: %v", err)
	}
}

func TestRestoreCheckpointRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "site-1.snap"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, "1-2-3")
	if err := c.RestoreCheckpoint(dir); err == nil {
		t.Error("garbage snapshot accepted")
	}
}

func TestCheckpointCreatesDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "checkpoints")
	c := newCluster(t, "1-2-3")
	cli := newClient(t, c)
	if _, err := cli.Write(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 { // one snapshot per replica (tree 1-2-3 has n=5)
		t.Errorf("%d snapshots, want 5", len(entries))
	}
}

func TestWALDirSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	c1 := newCluster(t, "1-3-5", WithWALDir(dir))
	cli1 := newClient(t, c1)
	for i := 0; i < 4; i++ {
		if _, err := cli1.Write(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c1.Close()

	// A brand new cluster on the same WAL directory recovers everything.
	tr, err := tree.ParseSpec("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(tr, WithSeed(3), WithWALDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	cli2, err := c2.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		rd, err := cli2.Read(ctx, fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("read k%d after restart: %v", i, err)
		}
		if want := fmt.Sprintf("v%d", i); string(rd.Value) != want {
			t.Errorf("k%d = %q, want %q", i, rd.Value, want)
		}
	}
	// And keeps journaling new writes.
	if _, err := cli2.Write(ctx, "k0", []byte("after-restart")); err != nil {
		t.Fatal(err)
	}
}

func TestWALDirCreationFailure(t *testing.T) {
	tr, err := tree.ParseSpec("1-2-3")
	if err != nil {
		t.Fatal(err)
	}
	// A file where the directory should be makes MkdirAll fail.
	blocker := filepath.Join(t.TempDir(), "blocker")
	if err := os.WriteFile(blocker, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(tr, WithWALDir(filepath.Join(blocker, "wal"))); err == nil {
		t.Error("cluster with unusable WAL dir started")
	}
}
