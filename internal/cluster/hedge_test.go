package cluster

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"arbor/internal/client"
	"arbor/internal/tree"
)

// TestHedgedProbesNoGoroutineLeak drives a warm hedging client against a
// cluster with one crashed site per level — every read launches and then
// cancels loser probes — and checks the goroutine count returns to baseline
// after Close. A leaked prober (or a reply-channel write after return)
// would hold the count up.
func TestHedgedProbesNoGoroutineLeak(t *testing.T) {
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	tr, err := tree.ParseSpec("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(tr, WithSeed(1), WithClientTimeout(150*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient(client.WithHedgeDelay(2 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ { // warm every level's latency estimate
		if _, err := cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	proto := c.Protocol()
	for u := 0; u < proto.NumPhysicalLevels(); u++ {
		if err := c.Crash(proto.LevelSites(u)[0]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if _, err := cli.Read(ctx, "k"); err != nil {
			t.Fatalf("read %d during outage: %v", i, err)
		}
	}
	c.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: baseline %d, after close %d", baseline, runtime.NumGoroutine())
}

// TestEngineDeterministicUnderSeed runs the same workload against two
// identically seeded clusters with hedging enabled and requires identical
// write-level and read-contact sequences: the engine's rng-driven choices
// (level rotation, shuffles, exploration draws) must stay reproducible.
// The hedge delay is set high so the comparison covers the engine's
// decision stream, not wall-clock race outcomes.
func TestEngineDeterministicUnderSeed(t *testing.T) {
	run := func() []string {
		tr, err := tree.ParseSpec("1-2-2")
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(tr, WithSeed(9), WithClientTimeout(200*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		cli, err := c.NewClient(client.WithHedgeDelay(50 * time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		var log []string
		for i := 0; i < 20; i++ {
			wr, err := cli.Write(ctx, fmt.Sprintf("k%d", i%3), []byte("v"))
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, fmt.Sprintf("w:%d", wr.Level))
		}
		for i := 0; i < 30; i++ {
			rd, err := cli.Read(ctx, fmt.Sprintf("k%d", i%3))
			if err != nil {
				t.Fatal(err)
			}
			log = append(log, fmt.Sprintf("r:%d:%s", rd.Contacts, rd.Value))
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("logs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverges: %q vs %q\nfirst:  %v\nsecond: %v", i, a[i], b[i], a, b)
		}
	}
}
