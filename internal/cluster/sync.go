package cluster

import (
	"context"
	"fmt"
	"time"

	"arbor/internal/replica"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

// syncPlanFor builds the anti-entropy catch-up plan for site: one peer list
// per physical level the site does not belong to, in level order. Every
// write the site missed while down landed on a level that prepared without
// it — necessarily one of these — and a committed write is on all members
// of its landing level, so any member is a valid source. The site's own
// levels are skipped: a write there either reached the site before it
// crashed or the level's 2PC could not complete and fell through to
// another level.
func (c *Cluster) syncPlanFor(site tree.SiteID) replica.SyncPlan {
	proto := c.Protocol()
	plan := replica.SyncPlan{
		Config: replica.SyncConfig{
			CallTimeout: c.opts.clientTimeout,
			RetryBase:   c.opts.clientTimeout / 4,
			Seed:        c.opts.seed + int64(site),
		},
	}
	for u := 0; u < proto.NumPhysicalLevels(); u++ {
		sites := proto.LevelSites(u)
		member := false
		for _, s := range sites {
			if s == site {
				member = true
				break
			}
		}
		if member {
			continue
		}
		peers := make([]transport.Addr, len(sites))
		for i, s := range sites {
			peers[i] = transport.Addr(s)
		}
		plan.Peers = append(plan.Peers, peers)
	}
	return plan
}

// RecoverWithSync brings a crashed site back through the catching-up state:
// the replica serves 2PC immediately but refuses reads until an anti-entropy
// pass against one live member of every other physical level has pulled
// every newer version it missed. Recovery of a site that is not down only
// (re)starts a sync pass.
func (c *Cluster) RecoverWithSync(site tree.SiteID) error {
	r, ok := c.replicas[site]
	if !ok {
		return fmt.Errorf("cluster: unknown site %d", site)
	}
	plan := c.syncPlanFor(site)
	if r.Health() == replica.HealthDown {
		r.RecoverCatchingUp(plan)
	} else {
		r.StartSync(plan)
	}
	return nil
}

// RecoverAllWithSync recovers every crashed replica through the
// catching-up state (see RecoverWithSync).
func (c *Cluster) RecoverAllWithSync() {
	for site, r := range c.replicas {
		if r.Health() == replica.HealthDown {
			r.RecoverCatchingUp(c.syncPlanFor(site))
		}
	}
}

// SyncAll starts an anti-entropy pass on every replica: crashed replicas
// recover through the catching-up state, live ones sync in place (closing
// gaps left by partitions or dropped repair traffic). Use AwaitSync to wait
// for convergence.
func (c *Cluster) SyncAll() {
	for site, r := range c.replicas {
		if r.Health() == replica.HealthDown {
			r.RecoverCatchingUp(c.syncPlanFor(site))
		} else {
			r.StartSync(c.syncPlanFor(site))
		}
	}
}

// AwaitSync blocks until no replica is catching up or running a sync pass,
// or the context expires. It polls: sync passes are replica-internal
// goroutines and completion is observable only through their progress.
func (c *Cluster) AwaitSync(ctx context.Context) error {
	for {
		settled := true
		for _, r := range c.replicas {
			p := r.SyncProgress()
			if p.Health == replica.HealthCatchingUp || p.Active {
				settled = false
				break
			}
		}
		if settled {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("cluster: await sync: %w", ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Health reports the site's replica health.
func (c *Cluster) Health(site tree.SiteID) (replica.Health, error) {
	r, ok := c.replicas[site]
	if !ok {
		return 0, fmt.Errorf("cluster: unknown site %d", site)
	}
	return r.Health(), nil
}

// Healths snapshots every replica's health.
func (c *Cluster) Healths() map[tree.SiteID]replica.Health {
	out := make(map[tree.SiteID]replica.Health, len(c.replicas))
	for site, r := range c.replicas {
		out[site] = r.Health()
	}
	return out
}
