package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"arbor/internal/client"
	"arbor/internal/core"
	"arbor/internal/tree"
)

// TestEmpiricalReadLoadMatchesTheory drives reads through the cluster and
// checks that the busiest replica's share approaches the optimal read load
// L_RD = 1/d (= 1/3 for the 1-3-5 tree).
func TestEmpiricalReadLoadMatchesTheory(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	preRep := c.LoadReport() // discount the write's version discovery

	const ops = 1200
	for i := 0; i < ops; i++ {
		if _, err := cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.LoadReport()
	for i := range rep.Sites {
		rep.Sites[i].ReadServes -= preRep.Sites[i].ReadServes
	}
	got := rep.MaxReadLoad(ops)
	want := core.Analyze(c.Tree()).ReadLoad // 1/3
	if math.Abs(got-want) > 0.05 {
		t.Errorf("empirical read load %v, theory %v", got, want)
	}
}

// TestEmpiricalWriteLoadMatchesTheory drives writes and checks the busiest
// replica's prepare share approaches L_WR = 1/|K_phy| (= 1/2 for 1-3-5).
func TestEmpiricalWriteLoadMatchesTheory(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()

	const ops = 600
	for i := 0; i < ops; i++ {
		if _, err := cli.Write(ctx, fmt.Sprintf("k%d", i%7), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.LoadReport()
	got := rep.MaxWriteLoad(ops)
	want := core.Analyze(c.Tree()).WriteLoad // 1/2
	if math.Abs(got-want) > 0.06 {
		t.Errorf("empirical write load %v, theory %v", got, want)
	}
}

// TestEmpiricalAvailabilityMatchesTheory samples random crash patterns at
// replica availability p and compares the fraction of successful reads and
// writes against RD/WR availability formulas.
func TestEmpiricalAvailabilityMatchesTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("availability sampling is slow")
	}
	const (
		spec   = "1-2-3"
		p      = 0.8
		trials = 120
	)
	c := newCluster(t, spec, WithClientTimeout(60*time.Millisecond))
	cli := newClient(t, c)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	sites := c.Tree().Sites()
	readOK, writeOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		for _, s := range sites {
			if rng.Float64() >= p {
				if err := c.Crash(s); err != nil {
					t.Fatal(err)
				}
			}
		}
		if _, err := cli.Read(ctx, "k"); err == nil {
			readOK++
		} else if !errors.Is(err, client.ErrReadUnavailable) {
			t.Fatalf("unexpected read error: %v", err)
		}
		if _, err := cli.Write(ctx, "k", []byte("v")); err == nil {
			writeOK++
		} else if !errors.Is(err, client.ErrWriteUnavailable) {
			t.Fatalf("unexpected write error: %v", err)
		}
		c.RecoverAll()
	}

	a := core.Analyze(c.Tree())
	gotRead := float64(readOK) / trials
	gotWrite := float64(writeOK) / trials
	// Write availability on the live cluster is conditioned on version
	// discovery (a read quorum), so the observed rate tracks
	// RD_avail·WR_avail-ish; allow generous sampling tolerance.
	if math.Abs(gotRead-a.ReadAvailability(p)) > 0.13 {
		t.Errorf("empirical read availability %v vs formula %v", gotRead, a.ReadAvailability(p))
	}
	wantWrite := a.ReadAvailability(p) * a.WriteAvailability(p)
	if math.Abs(gotWrite-wantWrite) > 0.15 {
		t.Errorf("empirical write availability %v vs ≈%v", gotWrite, wantWrite)
	}
}

// TestReadCostMatchesTheory: with no failures, a read touches exactly
// |K_phy| replicas and a write touches |K_phy| (version) + level size.
func TestOperationCostsMatchTheory(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "seed", []byte("v")); err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(c.Tree())

	rd, err := cli.Read(ctx, "seed")
	if err != nil {
		t.Fatal(err)
	}
	if rd.Contacts != a.ReadCost {
		t.Errorf("read contacts = %d, want RD_cost = %d", rd.Contacts, a.ReadCost)
	}

	// Average write contact count over many writes ≈ |K_phy| (version
	// discovery) + WR_cost (average level size).
	const ops = 400
	total := 0
	for i := 0; i < ops; i++ {
		wr, err := cli.Write(ctx, "seed", []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		total += wr.Contacts
	}
	got := float64(total) / ops
	want := float64(a.ReadCost) + a.WriteCostAvg
	if math.Abs(got-want) > 0.25 {
		t.Errorf("average write contacts %v, want ≈ %v", got, want)
	}
}

// TestLoadReportHelpers covers the report arithmetic.
func TestLoadReportHelpers(t *testing.T) {
	rep := LoadReport{Sites: []SiteLoad{
		{Site: 1, ReadServes: 10, WriteServes: 4},
		{Site: 2, ReadServes: 30, WriteServes: 2},
	}}
	if got := rep.MaxReadLoad(100); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("MaxReadLoad = %v", got)
	}
	if got := rep.MaxWriteLoad(10); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("MaxWriteLoad = %v", got)
	}
	if rep.MaxReadLoad(0) != 0 || rep.MaxWriteLoad(-1) != 0 {
		t.Error("zero-op loads should be 0")
	}
}

// TestLoadReportOrdering: sites are reported in ascending ID order.
func TestLoadReportOrdering(t *testing.T) {
	tr, err := tree.ParseSpec("1-2-2")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(tr, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rep := c.LoadReport()
	if len(rep.Sites) != 4 {
		t.Fatalf("got %d sites", len(rep.Sites))
	}
	for i, s := range rep.Sites {
		if s.Site != tree.SiteID(i+1) {
			t.Errorf("Sites[%d] = %d", i, s.Site)
		}
	}
}
