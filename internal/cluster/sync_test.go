package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"

	"arbor/internal/replica"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

// awaitSync waits for every replica to settle (no catching-up, no active
// sync pass) with a test-sized deadline.
func awaitSync(t *testing.T, c *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.AwaitSync(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverWithSyncCatchesUp: a site that slept through a series of
// writes comes back through the catching-up state and ends live with every
// missed version installed.
func TestRecoverWithSyncCatchesUp(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()

	if _, err := cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	// Site 1 is physical level 0's only member, so every write now lands
	// on another level — exactly the writes catch-up must recover.
	var lastTS replica.Timestamp
	for i := 2; i <= 6; i++ {
		wr, err := cli.Write(ctx, "k", []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		lastTS = wr.TS
	}
	if _, err := cli.Write(ctx, "other", []byte("x")); err != nil {
		t.Fatal(err)
	}

	if err := c.RecoverWithSync(1); err != nil {
		t.Fatal(err)
	}
	awaitSync(t, c)

	if h, _ := c.Health(1); h != replica.HealthLive {
		t.Fatalf("health after sync = %v, want live", h)
	}
	_, ts, found := c.Replica(1).Store().Get("k")
	if !found || ts != lastTS {
		t.Errorf("site 1 has k at %v (found=%v), want %v", ts, found, lastTS)
	}
	if _, _, found := c.Replica(1).Store().Get("other"); !found {
		t.Error("site 1 missing key written while it was down")
	}
	rd, err := cli.Read(ctx, "k")
	if err != nil || string(rd.Value) != "v6" {
		t.Errorf("read after sync = %q, %v; want v6", rd.Value, err)
	}
}

// TestInstantRecoveryLeavesGap guards the premise of the anti-entropy
// experiment: legacy instant recovery brings the site back live without the
// versions it slept through.
func TestInstantRecoveryLeavesGap(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()

	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	wr, err := cli.Write(ctx, "k", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(1); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.Health(1); h != replica.HealthLive {
		t.Fatalf("health after instant recovery = %v, want live", h)
	}
	if _, ts, found := c.Replica(1).Store().Get("k"); found && ts == wr.TS {
		t.Error("instant recovery unexpectedly produced the missed write")
	}
}

// TestReadsSucceedWhileCatchingUp: a catching-up replica refuses reads, but
// the quorum engine routes around it, so client reads stay available for
// the whole catch-up window.
func TestReadsSucceedWhileCatchingUp(t *testing.T) {
	c := newCluster(t, "1-2-4")
	cli := newClient(t, c)
	ctx := context.Background()

	if _, err := cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	r := c.Replica(2)
	r.Crash()
	if _, err := cli.Write(ctx, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Pin the replica in the catching-up state: its sync plan points at an
	// address nothing is registered on, so the pass retries forever and the
	// replica keeps refusing reads. Level 0's other member must carry the
	// read quorum the whole time.
	stuck := replica.SyncPlan{
		Peers:  [][]transport.Addr{{transport.Addr(9999)}},
		Config: replica.SyncConfig{CallTimeout: 20 * time.Millisecond},
	}
	r.RecoverCatchingUp(stuck)
	if h := r.Health(); h != replica.HealthCatchingUp {
		t.Fatalf("health = %v, want catching-up", h)
	}
	for i := 0; i < 5; i++ {
		rd, err := cli.Read(ctx, "k")
		if err != nil {
			t.Fatalf("read %d during catch-up: %v", i, err)
		}
		if string(rd.Value) != "v2" {
			t.Fatalf("read %d = %q, want v2", i, rd.Value)
		}
	}
	if h := r.Health(); h != replica.HealthCatchingUp {
		t.Fatalf("health drifted to %v mid-test", h)
	}
	// Point it at the real peers (Crash aborts the stuck pass, cursors
	// survive) and let it finish.
	r.Crash()
	r.RecoverCatchingUp(c.syncPlanFor(2))
	awaitSync(t, c)
	if h, _ := c.Health(2); h != replica.HealthLive {
		t.Fatalf("health = %v, want live after sync", h)
	}
}

// TestSyncAllClosesPartitionGaps: SyncAll also repairs live replicas that
// missed commits (e.g. behind a healed partition), restoring the full
// durability margin without any crash involved.
func TestSyncAllClosesPartitionGaps(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()

	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	wr, err := cli.Write(ctx, "k", []byte("v1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Recover(1); err != nil { // instant: live but stale
		t.Fatal(err)
	}
	c.SyncAll()
	awaitSync(t, c)
	for _, site := range []tree.SiteID{1} {
		if _, ts, found := c.Replica(site).Store().Get("k"); !found || ts != wr.TS {
			t.Errorf("site %d has k at %v (found=%v), want %v", site, ts, found, wr.TS)
		}
	}
}

// TestScheduleRecoverSyncVerbs drives the sync verbs through the schedule
// machinery end to end.
func TestScheduleRecoverSyncVerbs(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()

	sched, err := ParseSchedule("0ms:crash=1;0ms:recoversync=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for _, ev := range sched {
		if err := c.ApplyEvent(ev); err != nil {
			t.Fatal(err)
		}
	}
	awaitSync(t, c)
	if h, _ := c.Health(1); h != replica.HealthLive {
		t.Fatalf("health = %v, want live", h)
	}
}
