package cluster

import (
	"context"
	"testing"
	"time"

	"arbor/internal/tree"
)

func TestParseSchedule(t *testing.T) {
	sched, err := ParseSchedule("50ms:crash=1,2;10ms:recoverall;200ms:partition=1,2/3;300ms:heal;150ms:recover=4")
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 5 {
		t.Fatalf("%d events", len(sched))
	}
	// Sorted by offset.
	for i := 1; i < len(sched); i++ {
		if sched[i].At < sched[i-1].At {
			t.Fatalf("events not sorted: %v", sched)
		}
	}
	if sched[0].At != 10*time.Millisecond || !sched[0].RecoverAll {
		t.Errorf("first event = %+v", sched[0])
	}
	if len(sched[1].Crash) != 2 || sched[1].Crash[0] != 1 {
		t.Errorf("crash event = %+v", sched[1])
	}
	if len(sched[2].Recover) != 1 || sched[2].Recover[0] != 4 {
		t.Errorf("recover event = %+v", sched[2])
	}
	if len(sched[3].Partition) != 2 {
		t.Errorf("partition event = %+v", sched[3])
	}
	if !sched[4].Heal {
		t.Errorf("heal event = %+v", sched[4])
	}
}

func TestScheduleStringRoundTrip(t *testing.T) {
	const in = "10ms:recoverall;50ms:crash=1,2;150ms:recover=4;200ms:partition=1,2/3;300ms:heal;400ms:restart"
	sched, err := ParseSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := sched.String(); got != in {
		t.Errorf("Schedule.String() = %q, want %q", got, in)
	}
	again, err := ParseSchedule(sched.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(sched) {
		t.Fatalf("round trip changed event count: %d vs %d", len(again), len(sched))
	}
	if !again[5].Restart {
		t.Errorf("restart event lost in round trip: %+v", again[5])
	}
}

func TestApplyEventRestart(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.ApplyEvent(Event{Crash: []tree.SiteID{2}}); err != nil {
		t.Fatal(err)
	}
	if !c.Replica(tree.SiteID(2)).Crashed() {
		t.Fatal("ApplyEvent crash did not take effect")
	}
	if err := c.ApplyEvent(Event{Restart: true}); err != nil {
		t.Fatal(err)
	}
	if c.Replica(tree.SiteID(2)).Crashed() {
		t.Error("restart left site 2 crashed")
	}
	rd, err := cli.Read(ctx, "k")
	if err != nil || string(rd.Value) != "v" {
		t.Errorf("read after restart = %q, %v; want v", rd.Value, err)
	}
}

// TestScheduleOverloadVerbs covers the overload-fault grammar: saturate,
// unsaturate, slowsite (with per-site durations) and drain parse into the
// right fields and render back to the same string.
func TestScheduleOverloadVerbs(t *testing.T) {
	const in = "10ms:saturate=1,2;20ms:slowsite=3:50ms,4:1ms;30ms:unsaturate=1;40ms:slowsite=3:0s;50ms:drain=2"
	sched, err := ParseSchedule(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 5 {
		t.Fatalf("%d events", len(sched))
	}
	if len(sched[0].Saturate) != 2 || sched[0].Saturate[0] != 1 || sched[0].Saturate[1] != 2 {
		t.Errorf("saturate event = %+v", sched[0])
	}
	want := []SiteSlowdown{{Site: 3, By: 50 * time.Millisecond}, {Site: 4, By: time.Millisecond}}
	if len(sched[1].SlowSite) != 2 || sched[1].SlowSite[0] != want[0] || sched[1].SlowSite[1] != want[1] {
		t.Errorf("slowsite event = %+v", sched[1])
	}
	if len(sched[2].Unsaturate) != 1 || sched[2].Unsaturate[0] != 1 {
		t.Errorf("unsaturate event = %+v", sched[2])
	}
	if len(sched[3].SlowSite) != 1 || sched[3].SlowSite[0].By != 0 {
		t.Errorf("slowsite clear event = %+v", sched[3])
	}
	if len(sched[4].Drain) != 1 || sched[4].Drain[0] != 2 {
		t.Errorf("drain event = %+v", sched[4])
	}
	if got := sched.String(); got != in {
		t.Errorf("Schedule.String() = %q, want %q", got, in)
	}
}

// TestApplyEventOverload drives the overload verbs against a live cluster:
// saturating a site makes it shed, unsaturating restores service, and a
// drain takes it out of rotation without losing acknowledged writes.
func TestApplyEventOverload(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := c.ApplyEvent(Event{Saturate: []tree.SiteID{2}}); err != nil {
		t.Fatal(err)
	}
	if !c.Replica(tree.SiteID(2)).Saturated() {
		t.Fatal("saturate event did not arm the overload fault")
	}
	// The protocol reads around the shedding site.
	if rd, err := cli.Read(ctx, "k"); err != nil || string(rd.Value) != "v" {
		t.Errorf("read under saturation = %q, %v; want v", rd.Value, err)
	}
	if err := c.ApplyEvent(Event{Unsaturate: []tree.SiteID{2}}); err != nil {
		t.Fatal(err)
	}
	if c.Replica(tree.SiteID(2)).Saturated() {
		t.Error("unsaturate event did not disarm the overload fault")
	}
	if err := c.ApplyEvent(Event{Drain: []tree.SiteID{3}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Replica(tree.SiteID(3)).Health(); got.String() != "down" {
		t.Errorf("drained site health = %v, want down", got)
	}
	if rd, err := cli.Read(ctx, "k"); err != nil || string(rd.Value) != "v" {
		t.Errorf("read after drain = %q, %v; want v", rd.Value, err)
	}
}

func TestParseScheduleEmpty(t *testing.T) {
	sched, err := ParseSchedule("  ")
	if err != nil || sched != nil {
		t.Errorf("empty schedule = %v, %v", sched, err)
	}
}

func TestParseScheduleErrors(t *testing.T) {
	for _, s := range []string{
		"nonsense",
		"10ms:explode",
		"xx:crash=1",
		"10ms:crash=abc",
		"10ms:crash=",
		"10ms:partition=1/x",
		"10ms:saturate=",
		"10ms:slowsite=3",
		"10ms:slowsite=3:xx",
		"10ms:slowsite=3:-5ms",
		"10ms:drain=abc",
	} {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", s)
		}
	}
}

func TestRunScheduleAppliesEvents(t *testing.T) {
	c := newCluster(t, "1-3-5")
	sched, err := ParseSchedule("10ms:crash=1;40ms:recoverall")
	if err != nil {
		t.Fatal(err)
	}
	done, errf := c.RunSchedule(context.Background(), sched)

	// After the first event fires, site 1 is down.
	time.Sleep(25 * time.Millisecond)
	if !c.Replica(tree.SiteID(1)).Crashed() {
		t.Error("site 1 not crashed after first event")
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("schedule never completed")
	}
	if err := errf(); err != nil {
		t.Fatalf("schedule error: %v", err)
	}
	if c.Replica(tree.SiteID(1)).Crashed() {
		t.Error("site 1 still crashed after recoverall")
	}
}

func TestRunScheduleHonorsContext(t *testing.T) {
	c := newCluster(t, "1-3-5")
	sched := Schedule{{At: 10 * time.Second, RecoverAll: true}}
	ctx, cancel := context.WithCancel(context.Background())
	done, errf := c.RunSchedule(ctx, sched)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("cancelled schedule did not stop")
	}
	if errf() == nil {
		t.Error("cancelled schedule reported no error")
	}
}

func TestRunScheduleBadEvent(t *testing.T) {
	c := newCluster(t, "1-3-5")
	sched := Schedule{{At: 0, Crash: []tree.SiteID{99}}}
	done, errf := c.RunSchedule(context.Background(), sched)
	<-done
	if errf() == nil {
		t.Error("crash of unknown site reported no error")
	}
}

// TestMultiActionEventRoundTrip pins the fix for Event.String silently
// dropping secondary actions: an event carrying several actions renders
// all of them ('+'-joined, in apply order) and parses back identically.
func TestMultiActionEventRoundTrip(t *testing.T) {
	ev := Event{
		At:        10 * time.Millisecond,
		Crash:     []tree.SiteID{1, 2},
		Heal:      true,
		Workload:  "calm",
		Partition: [][]tree.SiteID{{3, 4}, {5}},
	}
	const want = "10ms:crash=1,2+partition=3,4/5+heal+workload=calm"
	if got := ev.String(); got != want {
		t.Fatalf("Event.String() = %q, want %q", got, want)
	}
	sched, err := ParseSchedule(ev.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", ev.String(), err)
	}
	if len(sched) != 1 {
		t.Fatalf("multi-action event parsed into %d events", len(sched))
	}
	got := sched[0]
	if len(got.Crash) != 2 || got.Crash[0] != 1 || got.Crash[1] != 2 ||
		!got.Heal || got.Workload != "calm" || len(got.Partition) != 2 {
		t.Errorf("round trip lost actions: %+v", got)
	}
	if got.String() != want {
		t.Errorf("second render = %q, want %q", got.String(), want)
	}
}

// TestMultiActionEveryAction renders an event with every action armed and
// checks nothing is dropped on the way back.
func TestMultiActionEveryAction(t *testing.T) {
	ev := Event{
		At:             time.Second,
		Crash:          []tree.SiteID{1},
		Recover:        []tree.SiteID{2},
		RecoverSync:    []tree.SiteID{3},
		RecoverAll:     true,
		RecoverAllSync: true,
		Partition:      [][]tree.SiteID{{4}},
		Heal:           true,
		Restart:        true,
		Saturate:       []tree.SiteID{5},
		Unsaturate:     []tree.SiteID{6},
		SlowSite:       []SiteSlowdown{{Site: 7, By: 50 * time.Millisecond}},
		Drain:          []tree.SiteID{8},
		Workload:       "storm",
	}
	sched, err := ParseSchedule(ev.String())
	if err != nil {
		t.Fatalf("reparse of %q: %v", ev.String(), err)
	}
	if len(sched) != 1 {
		t.Fatalf("parsed into %d events", len(sched))
	}
	if sched[0].String() != ev.String() {
		t.Errorf("round trip changed rendering: %q vs %q", sched[0].String(), ev.String())
	}
}

func TestParseScheduleRejectsDuplicateAction(t *testing.T) {
	for _, s := range []string{
		"10ms:crash=1+crash=2",
		"10ms:heal+heal",
		"10ms:workload=a+workload=b",
	} {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want duplicate-action error", s)
		}
	}
}

func TestParseScheduleRejectsEmptyActionSegment(t *testing.T) {
	for _, s := range []string{"10ms:+heal", "10ms:heal+", "10ms:crash=1++heal"} {
		if _, err := ParseSchedule(s); err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", s)
		}
	}
}
