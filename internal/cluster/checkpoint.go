package cluster

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"arbor/internal/replica"
)

// snapshotName returns the checkpoint filename for a site.
func snapshotName(site int) string {
	return fmt.Sprintf("site-%d.snap", site)
}

// Checkpoint writes every replica's stable storage to dir (one snapshot of
// length-prefixed binary records per site), creating the directory if
// needed. Each snapshot is written to a temporary file and renamed into
// place, so a crash mid-checkpoint leaves the previous snapshot intact
// instead of a truncated one. The snapshots are crash-consistent per
// replica; a cluster restored from them behaves like one whose replicas all
// recovered from stable storage.
func (c *Cluster) Checkpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: checkpoint: %w", err)
	}
	for site, r := range c.replicas {
		path := filepath.Join(dir, snapshotName(int(site)))
		if err := writeSnapshot(path, r.Store()); err != nil {
			return fmt.Errorf("cluster: checkpoint site %d: %w", site, err)
		}
	}
	return nil
}

// writeSnapshot snapshots the store into path atomically (temp file +
// rename).
func writeSnapshot(path string, st *replica.Store) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := st.Snapshot(f); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// RestoreCheckpoint merges per-site snapshots from dir into the replicas.
// Missing snapshot files are skipped (a fresh site joins empty); newer
// in-memory data is never regressed because snapshot entries apply through
// the timestamp-ordered store.
func (c *Cluster) RestoreCheckpoint(dir string) error {
	for site, r := range c.replicas {
		path := filepath.Join(dir, snapshotName(int(site)))
		f, err := os.Open(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("cluster: restore site %d: %w", site, err)
		}
		err = r.Store().Restore(f)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("cluster: restore site %d: %w", site, err)
		}
	}
	return nil
}
