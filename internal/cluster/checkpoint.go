package cluster

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// snapshotName returns the checkpoint filename for a site.
func snapshotName(site int) string {
	return fmt.Sprintf("site-%d.snap", site)
}

// Checkpoint writes every replica's stable storage to dir (one gob snapshot
// per site), creating the directory if needed. The snapshots are
// crash-consistent per replica; a cluster restored from them behaves like
// one whose replicas all recovered from stable storage.
func (c *Cluster) Checkpoint(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cluster: checkpoint: %w", err)
	}
	for site, r := range c.replicas {
		path := filepath.Join(dir, snapshotName(int(site)))
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("cluster: checkpoint site %d: %w", site, err)
		}
		if err := r.Store().Snapshot(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("cluster: checkpoint site %d: %w", site, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("cluster: checkpoint site %d: %w", site, err)
		}
	}
	return nil
}

// RestoreCheckpoint merges per-site snapshots from dir into the replicas.
// Missing snapshot files are skipped (a fresh site joins empty); newer
// in-memory data is never regressed because snapshot entries apply through
// the timestamp-ordered store.
func (c *Cluster) RestoreCheckpoint(dir string) error {
	for site, r := range c.replicas {
		path := filepath.Join(dir, snapshotName(int(site)))
		f, err := os.Open(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return fmt.Errorf("cluster: restore site %d: %w", site, err)
		}
		err = r.Store().Restore(f)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("cluster: restore site %d: %w", site, err)
		}
	}
	return nil
}
