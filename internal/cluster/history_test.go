package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"arbor/internal/client"
	"arbor/internal/history"
	"arbor/internal/tree"
)

// runHistoryWorkload drives concurrent clients and records every completed
// operation for the one-copy checker.
func runHistoryWorkload(t *testing.T, c *Cluster, clients, opsPerClient int, keys []string, chaos func(i int)) *history.Recorder {
	t.Helper()
	rec := history.NewRecorder()
	ctx := context.Background()
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		cli := newClient(t, c)
		wg.Add(1)
		go func(ci int, cli *client.Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci) + 100))
			for i := 0; i < opsPerClient; i++ {
				if chaos != nil {
					chaos(i)
				}
				key := keys[rng.Intn(len(keys))]
				start := time.Now()
				if rng.Intn(2) == 0 {
					rd, err := cli.Read(ctx, key)
					end := time.Now()
					if err != nil && !errors.Is(err, client.ErrNotFound) {
						continue // unavailable: no history obligation
					}
					rec.Record(history.Op{
						Kind: history.Read, Key: key, Value: string(rd.Value),
						TS: rd.TS, Found: rd.Found, Start: start, End: end, Client: ci,
					})
					continue
				}
				val := fmt.Sprintf("c%d-%d", ci, i)
				wr, err := cli.Write(ctx, key, []byte(val))
				end := time.Now()
				if err != nil && !errors.Is(err, client.ErrInDoubt) {
					continue
				}
				rec.Record(history.Op{
					Kind: history.Write, Key: key, Value: val,
					TS: wr.TS, Found: true, Start: start, End: end, Client: ci,
					InDoubt: err != nil,
				})
			}
		}(ci, cli)
	}
	wg.Wait()
	return rec
}

// TestConcurrentHistoryIsOneCopy checks the full stack's one-copy semantics
// under concurrent clients on a healthy cluster.
func TestConcurrentHistoryIsOneCopy(t *testing.T) {
	c := newCluster(t, "1-3-5", WithLockTTL(150*time.Millisecond))
	keys := []string{"a", "b", "c"}
	rec := runHistoryWorkload(t, c, 4, 40, keys, nil)
	if rec.Len() == 0 {
		t.Fatal("no operations recorded")
	}
	for _, v := range history.Check(rec.Ops()) {
		t.Error(v)
	}
}

// TestConcurrentHistoryUnderCrashes injects crash/recover chaos and checks
// that every operation that did complete still respects one-copy semantics.
func TestConcurrentHistoryUnderCrashes(t *testing.T) {
	c := newCluster(t, "1-3-5", WithLockTTL(150*time.Millisecond))
	keys := []string{"a", "b"}

	var chaosMu sync.Mutex
	chaosRng := rand.New(rand.NewSource(9))
	chaos := func(i int) {
		chaosMu.Lock()
		defer chaosMu.Unlock()
		// Occasionally crash one replica per level member set, keeping
		// read quorums available (never crash a whole level).
		if chaosRng.Intn(10) == 0 {
			c.RecoverAll()
			// Sites 1-3 form level 0, sites 4-8 level 1 in the 1-3-5 tree;
			// crashing a single site keeps both levels readable.
			_ = c.Crash(tree.SiteID(1 + chaosRng.Intn(8)))
		}
	}
	rec := runHistoryWorkload(t, c, 3, 30, keys, chaos)
	c.RecoverAll()
	if rec.Len() == 0 {
		t.Fatal("no operations recorded")
	}
	for _, v := range history.Check(rec.Ops()) {
		t.Error(v)
	}
}
