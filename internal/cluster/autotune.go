package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"arbor/internal/client"
	"arbor/internal/config"
)

// AutoTuner watches the observed read/write mix across the cluster's
// clients and reshapes the tree when the advisor recommends a materially
// different configuration — the paper's "shifting from one configuration
// into another by just modifying the structure of the tree", driven by
// live measurements instead of an operator.
type AutoTuner struct {
	c        *Cluster
	interval time.Duration
	p        float64
	obj      config.Objective
	minDelta int // minimum |Δ physical levels| to act on

	mu          sync.Mutex
	lastReads   uint64
	lastWrites  uint64
	reconfigs   int
	lastAdvised string

	stop chan struct{}
	done chan struct{}
}

// TunerOption configures an AutoTuner.
type TunerOption interface {
	apply(*AutoTuner)
}

type tunerIntervalOption time.Duration

func (o tunerIntervalOption) apply(t *AutoTuner) { t.interval = time.Duration(o) }

// WithTuneInterval sets how often the tuner re-evaluates the workload
// (default 1s).
func WithTuneInterval(d time.Duration) TunerOption { return tunerIntervalOption(d) }

type tunerAvailabilityOption float64

func (o tunerAvailabilityOption) apply(t *AutoTuner) { t.p = float64(o) }

// WithTuneAvailability sets the per-replica availability assumption used by
// the advisor (default 0.9).
func WithTuneAvailability(p float64) TunerOption { return tunerAvailabilityOption(p) }

type tunerObjectiveOption config.Objective

func (o tunerObjectiveOption) apply(t *AutoTuner) { t.obj = config.Objective(o) }

// WithTuneObjective sets the advisor objective (default MinimizeLoad).
func WithTuneObjective(obj config.Objective) TunerOption { return tunerObjectiveOption(obj) }

type tunerMinDeltaOption int

func (o tunerMinDeltaOption) apply(t *AutoTuner) { t.minDelta = int(o) }

// WithTuneMinLevelDelta sets how many physical levels the advised tree must
// differ by before the tuner reconfigures (default 2, damping oscillation).
func WithTuneMinLevelDelta(d int) TunerOption { return tunerMinDeltaOption(d) }

// NewAutoTuner creates a tuner bound to the cluster. Start it with Run.
func (c *Cluster) NewAutoTuner(opts ...TunerOption) *AutoTuner {
	t := &AutoTuner{
		c:        c,
		interval: time.Second,
		p:        0.9,
		obj:      config.MinimizeLoad,
		minDelta: 2,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, opt := range opts {
		opt.apply(t)
	}
	return t
}

// Reconfigurations returns how many times the tuner reshaped the cluster.
func (t *AutoTuner) Reconfigurations() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reconfigs
}

// LastAdvised returns the most recently advised tree spec (diagnostics).
func (t *AutoTuner) LastAdvised() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastAdvised
}

// Run evaluates the workload on every tick until the context is cancelled
// or Stop is called. It returns the first reconfiguration error, if any.
func (t *AutoTuner) Run(ctx context.Context) error {
	defer close(t.done)
	ticker := time.NewTicker(t.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-t.stop:
			return nil
		case <-ticker.C:
			if err := t.evaluate(); err != nil {
				return err
			}
		}
	}
}

// Stop terminates Run and waits for it to exit.
func (t *AutoTuner) Stop() {
	select {
	case <-t.stop:
	default:
		close(t.stop)
	}
	<-t.done
}

// evaluate observes the operation mix since the previous tick and
// reconfigures when the advisor's recommendation differs enough.
func (t *AutoTuner) evaluate() error {
	reads, writes := t.totals()
	t.mu.Lock()
	dr := reads - t.lastReads
	dw := writes - t.lastWrites
	t.lastReads, t.lastWrites = reads, writes
	t.mu.Unlock()

	total := dr + dw
	if total < 20 {
		return nil // not enough signal this window
	}
	readFraction := float64(dr) / float64(total)

	adv, err := config.Advise(t.c.Tree().N(), t.p, readFraction, t.obj)
	if err != nil {
		return fmt.Errorf("cluster: autotune advise: %w", err)
	}
	t.mu.Lock()
	t.lastAdvised = adv.Tree.Spec()
	t.mu.Unlock()

	cur := t.c.Tree().NumPhysicalLevels()
	next := adv.Tree.NumPhysicalLevels()
	if delta(cur, next) < t.minDelta {
		return nil
	}
	if err := t.c.Reconfigure(adv.Tree); err != nil {
		// Reconfiguration requires all replicas up; failures here are
		// transient conditions, not tuner bugs.
		return nil //nolint:nilerr // deliberate: retry on the next tick
	}
	t.mu.Lock()
	t.reconfigs++
	t.mu.Unlock()
	return nil
}

// totals sums reads and writes across the cluster's clients.
func (t *AutoTuner) totals() (reads, writes uint64) {
	for _, cli := range t.c.Clients() {
		m := cli.Metrics()
		reads += m.Reads + m.ReadFailures
		writes += m.Writes + m.WriteFailures
	}
	return reads, writes
}

func delta(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Clients returns the clients attached to this cluster.
func (c *Cluster) Clients() []*client.Client {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*client.Client, len(c.clients))
	copy(out, c.clients)
	return out
}
