package cluster

import (
	"sort"

	"arbor/internal/tree"
)

// SiteLoad is one replica's share of operation participations.
type SiteLoad struct {
	Site tree.SiteID
	// ReadServes counts the replica's participations in read operations:
	// read requests plus version requests issued by reads. Version
	// requests issued as the discovery step of writes are attributed to
	// DiscoveryServes instead, so ReadServes matches the paper's read
	// load definition under mixed workloads.
	ReadServes uint64
	// WriteServes counts prepare requests the replica answered (its
	// participations in write quorums).
	WriteServes uint64
	// DiscoveryServes counts version requests the replica answered for
	// writes' version-discovery quorums (read-shaped traffic caused by
	// writes, reported separately from read load).
	DiscoveryServes uint64
}

// LoadReport aggregates per-replica participation counters, the empirical
// counterpart of the paper's system load: dividing a site's participations
// by the number of operations yields the fraction of operations that
// touched it, whose maximum over sites is the induced load.
type LoadReport struct {
	Sites []SiteLoad
}

// LoadReport snapshots every replica's participation counters, ordered by
// site ID.
func (c *Cluster) LoadReport() LoadReport {
	rep := LoadReport{Sites: make([]SiteLoad, 0, len(c.replicas))}
	for site, r := range c.replicas {
		st := r.Stats()
		rep.Sites = append(rep.Sites, SiteLoad{
			Site:            site,
			ReadServes:      st.Reads + st.Versions - st.VersionsForWrite,
			WriteServes:     st.Prepares,
			DiscoveryServes: st.VersionsForWrite,
		})
	}
	sort.Slice(rep.Sites, func(i, j int) bool { return rep.Sites[i].Site < rep.Sites[j].Site })
	return rep
}

// MaxReadLoad returns the empirical read load: the largest per-site
// ReadServes divided by the number of read operations issued.
func (r LoadReport) MaxReadLoad(ops int) float64 {
	if ops <= 0 {
		return 0
	}
	var max uint64
	for _, s := range r.Sites {
		if s.ReadServes > max {
			max = s.ReadServes
		}
	}
	return float64(max) / float64(ops)
}

// MaxWriteLoad returns the empirical write load: the largest per-site
// WriteServes divided by the number of write operations issued.
func (r LoadReport) MaxWriteLoad(ops int) float64 {
	if ops <= 0 {
		return 0
	}
	var max uint64
	for _, s := range r.Sites {
		if s.WriteServes > max {
			max = s.WriteServes
		}
	}
	return float64(max) / float64(ops)
}

// MaxDiscoveryLoad returns the largest per-site DiscoveryServes divided by
// the number of write operations issued: the read-shaped load writes add
// on top of their write quorums.
func (r LoadReport) MaxDiscoveryLoad(ops int) float64 {
	if ops <= 0 {
		return 0
	}
	var max uint64
	for _, s := range r.Sites {
		if s.DiscoveryServes > max {
			max = s.DiscoveryServes
		}
	}
	return float64(max) / float64(ops)
}
