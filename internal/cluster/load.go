package cluster

import (
	"sort"

	"arbor/internal/tree"
)

// SiteLoad is one replica's share of operation participations.
type SiteLoad struct {
	Site tree.SiteID
	// ReadServes counts read and version requests the replica answered
	// (its participations in read-shaped quorums).
	ReadServes uint64
	// WriteServes counts prepare requests the replica answered (its
	// participations in write quorums).
	WriteServes uint64
}

// LoadReport aggregates per-replica participation counters, the empirical
// counterpart of the paper's system load: dividing a site's participations
// by the number of operations yields the fraction of operations that
// touched it, whose maximum over sites is the induced load.
type LoadReport struct {
	Sites []SiteLoad
}

// LoadReport snapshots every replica's participation counters, ordered by
// site ID.
func (c *Cluster) LoadReport() LoadReport {
	rep := LoadReport{Sites: make([]SiteLoad, 0, len(c.replicas))}
	for site, r := range c.replicas {
		st := r.Stats()
		rep.Sites = append(rep.Sites, SiteLoad{
			Site:        site,
			ReadServes:  st.Reads + st.Versions,
			WriteServes: st.Prepares,
		})
	}
	sort.Slice(rep.Sites, func(i, j int) bool { return rep.Sites[i].Site < rep.Sites[j].Site })
	return rep
}

// MaxReadLoad returns the empirical read load: the largest per-site
// ReadServes divided by the number of read-shaped operations issued.
func (r LoadReport) MaxReadLoad(ops int) float64 {
	if ops <= 0 {
		return 0
	}
	var max uint64
	for _, s := range r.Sites {
		if s.ReadServes > max {
			max = s.ReadServes
		}
	}
	return float64(max) / float64(ops)
}

// MaxWriteLoad returns the empirical write load: the largest per-site
// WriteServes divided by the number of write operations issued.
func (r LoadReport) MaxWriteLoad(ops int) float64 {
	if ops <= 0 {
		return 0
	}
	var max uint64
	for _, s := range r.Sites {
		if s.WriteServes > max {
			max = s.WriteServes
		}
	}
	return float64(max) / float64(ops)
}
