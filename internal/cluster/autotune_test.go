package cluster

import (
	"context"
	"fmt"
	"testing"
	"time"
)

func TestAutoTunerReshapesUnderWriteHeavyLoad(t *testing.T) {
	// Start in the read-optimized single-level shape with a write-heavy
	// workload: the tuner should stretch the tree into multiple levels.
	c := newCluster(t, "1-16")
	cli := newClient(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	tuner := c.NewAutoTuner(
		WithTuneInterval(40*time.Millisecond),
		WithTuneAvailability(0.9),
		WithTuneMinLevelDelta(2),
	)
	tunerErr := make(chan error, 1)
	go func() { tunerErr <- tuner.Run(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	i := 0
	for tuner.Reconfigurations() == 0 && time.Now().Before(deadline) {
		if _, err := cli.Write(ctx, fmt.Sprintf("k%d", i%4), []byte("v")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		i++
	}
	tuner.Stop()
	if err := <-tunerErr; err != nil {
		t.Fatalf("tuner: %v", err)
	}

	if tuner.Reconfigurations() == 0 {
		t.Fatalf("tuner never reconfigured (advised %q)", tuner.LastAdvised())
	}
	if got := c.Tree().NumPhysicalLevels(); got < 3 {
		t.Errorf("tree has %d levels after write-heavy tuning, want ≥ 3 (%s)", got, c.Tree().Spec())
	}
	// Data written before and during tuning stays readable.
	rd, err := cli.Read(ctx, "k0")
	if err != nil {
		t.Fatalf("read after tuning: %v", err)
	}
	if len(rd.Value) == 0 {
		t.Error("empty value after tuning")
	}
}

func TestAutoTunerStaysPutWhenShapeFits(t *testing.T) {
	// A read-heavy workload on the single-level tree is already optimal;
	// the tuner must not thrash.
	c := newCluster(t, "1-16")
	cli := newClient(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	tuner := c.NewAutoTuner(WithTuneInterval(30 * time.Millisecond))
	done := make(chan error, 1)
	go func() { done <- tuner.Run(ctx) }()

	for i := 0; i < 400; i++ {
		if _, err := cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(80 * time.Millisecond)
	tuner.Stop()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := tuner.Reconfigurations(); got != 0 {
		t.Errorf("tuner reconfigured %d times on a well-fitted workload", got)
	}
	if c.Tree().NumPhysicalLevels() != 1 {
		t.Errorf("tree reshaped to %s", c.Tree().Spec())
	}
}

func TestAutoTunerIgnoresLowSignal(t *testing.T) {
	c := newCluster(t, "1-16")
	cli := newClient(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Fewer than 20 ops per window: no action.
	for i := 0; i < 5; i++ {
		if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	tuner := c.NewAutoTuner(WithTuneInterval(20 * time.Millisecond))
	go func() { _ = tuner.Run(ctx) }()
	time.Sleep(70 * time.Millisecond)
	tuner.Stop()
	if got := tuner.Reconfigurations(); got != 0 {
		t.Errorf("tuner acted on %d ops of signal", got)
	}
}

func TestAutoTunerObjectiveOption(t *testing.T) {
	c := newCluster(t, "1-16")
	tuner := c.NewAutoTuner(WithTuneObjective(0)) // invalid objective
	cli := newClient(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < 30; i++ {
		if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 1)
	go func() { errs <- tuner.Run(ctx) }()
	select {
	case err := <-errs:
		if err == nil {
			t.Error("invalid objective produced no error")
		}
	case <-time.After(3 * time.Second):
		t.Error("tuner with invalid objective did not fail")
	}
}

func TestClustersClientsAccessor(t *testing.T) {
	c := newCluster(t, "1-3-5")
	if len(c.Clients()) != 0 {
		t.Error("fresh cluster has clients")
	}
	newClient(t, c)
	newClient(t, c)
	if len(c.Clients()) != 2 {
		t.Errorf("Clients() = %d, want 2", len(c.Clients()))
	}
}
