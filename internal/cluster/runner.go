package cluster

import (
	"context"
	"errors"
	"math"
	"sort"
	"time"

	"arbor/internal/client"
	"arbor/internal/workload"
)

// RunReport summarizes a workload run.
type RunReport struct {
	Reads         int
	Writes        int
	ReadFailures  int
	WriteFailures int
	NotFound      int
	Elapsed       time.Duration

	// ReadLatency and WriteLatency hold percentiles over successful
	// operations' latencies.
	ReadLatency  LatencySummary
	WriteLatency LatencySummary
}

// LatencySummary holds latency percentiles of one operation type.
type LatencySummary struct {
	P50 time.Duration
	P95 time.Duration
	P99 time.Duration
	Max time.Duration
}

// Merge combines two summaries conservatively, keeping the larger value of
// each percentile. It lets per-client summaries be folded into a run-wide
// worst-case view without retaining raw samples.
func (l LatencySummary) Merge(o LatencySummary) LatencySummary {
	max := func(a, b time.Duration) time.Duration {
		if a > b {
			return a
		}
		return b
	}
	return LatencySummary{
		P50: max(l.P50, o.P50),
		P95: max(l.P95, o.P95),
		P99: max(l.P99, o.P99),
		Max: max(l.Max, o.Max),
	}
}

// summarize computes percentiles from raw samples (nearest-rank).
func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	rank := func(p float64) time.Duration {
		idx := int(math.Ceil(p*float64(len(samples)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return samples[idx]
	}
	return LatencySummary{
		P50: rank(0.50),
		P95: rank(0.95),
		P99: rank(0.99),
		Max: samples[len(samples)-1],
	}
}

// Ops returns the total number of operations attempted.
func (r RunReport) Ops() int {
	return r.Reads + r.Writes + r.ReadFailures + r.WriteFailures
}

// RunWorkload drives ops operations from the source through the client,
// stopping early if the context is cancelled. Reads of never-written keys
// count as successful reads (NotFound tracks them separately).
func RunWorkload(ctx context.Context, cli *client.Client, gen workload.Source, ops int) RunReport {
	var rep RunReport
	var readLat, writeLat []time.Duration
	start := time.Now()
	val := []byte("value")
	for i := 0; i < ops && ctx.Err() == nil; i++ {
		op := gen.Next()
		opStart := time.Now()
		if op.IsRead {
			_, err := cli.Read(ctx, op.Key)
			switch {
			case err == nil:
				rep.Reads++
				readLat = append(readLat, time.Since(opStart))
			case errors.Is(err, client.ErrNotFound):
				rep.Reads++
				rep.NotFound++
				readLat = append(readLat, time.Since(opStart))
			default:
				rep.ReadFailures++
			}
			continue
		}
		if _, err := cli.Write(ctx, op.Key, val); err != nil {
			rep.WriteFailures++
		} else {
			rep.Writes++
			writeLat = append(writeLat, time.Since(opStart))
		}
	}
	rep.Elapsed = time.Since(start)
	rep.ReadLatency = summarize(readLat)
	rep.WriteLatency = summarize(writeLat)
	return rep
}
