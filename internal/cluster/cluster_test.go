package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"arbor/internal/client"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

func newCluster(t *testing.T, spec string, opts ...Option) *Cluster {
	t.Helper()
	tr, err := tree.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithSeed(1), WithClientTimeout(100 * time.Millisecond)}, opts...)
	c, err := New(tr, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func newClient(t *testing.T, c *Cluster) *client.Client {
	t.Helper()
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	return cli
}

func TestWriteThenRead(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()

	wr, err := cli.Write(ctx, "k", []byte("v1"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	if wr.TS.Version != 1 {
		t.Errorf("first write version = %d, want 1", wr.TS.Version)
	}
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(rd.Value) != "v1" || rd.TS != wr.TS {
		t.Errorf("read = %q %v, want v1 %v", rd.Value, rd.TS, wr.TS)
	}
}

func TestReadMissingKey(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	if _, err := cli.Read(context.Background(), "nope"); !errors.Is(err, client.ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

// TestOneCopyEquivalenceSequential: a sequence of writes and reads behaves
// like a single copy — every read returns the latest committed write, even
// though each write touches only one physical level.
func TestOneCopyEquivalenceSequential(t *testing.T) {
	c := newCluster(t, "1-3-5+4")
	cli := newClient(t, c)
	ctx := context.Background()

	for i := 1; i <= 20; i++ {
		want := fmt.Sprintf("v%d", i)
		wr, err := cli.Write(ctx, "k", []byte(want))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if wr.TS.Version != uint64(i) {
			t.Fatalf("write %d got version %d", i, wr.TS.Version)
		}
		rd, err := cli.Read(ctx, "k")
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(rd.Value) != want {
			t.Fatalf("read %d = %q, want %q", i, rd.Value, want)
		}
	}
}

// TestWritesLandOnDifferentLevels: the uniform write strategy spreads
// writes over both physical levels, and reads still always see the latest.
func TestWritesLandOnDifferentLevels(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()
	levels := make(map[int]int)
	for i := 0; i < 40; i++ {
		wr, err := cli.Write(ctx, "k", []byte(fmt.Sprintf("v%d", i)))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		levels[wr.Level]++
	}
	if len(levels) != 2 {
		t.Errorf("writes used levels %v, want both", levels)
	}
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "v39" {
		t.Errorf("final read = %q, want v39", rd.Value)
	}
}

// TestRootCrashDoesNotBlockWrites: unlike the classic tree protocols the
// paper improves upon, crashing nodes of one level only redirects writes to
// other levels.
func TestCrashedLevelRedirectsWrites(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()

	if _, err := cli.Write(ctx, "k", []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Crash one replica of level 0 (sites 1..3): level 0 can no longer
	// form a write quorum, but level 1 can.
	if err := c.Crash(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		wr, err := cli.Write(ctx, "k", []byte(fmt.Sprintf("after%d", i)))
		if err != nil {
			t.Fatalf("write with crashed site: %v", err)
		}
		if wr.Level != 1 {
			t.Errorf("write landed on level %d, want 1 (level 0 has a dead member)", wr.Level)
		}
	}
	// Reads still work: level 0 has two live members.
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "after4" {
		t.Errorf("read = %q", rd.Value)
	}
}

// TestWholeLevelDownBlocksReadsButNotWrites: with level 0 fully crashed,
// reads (which need every level) fail, while writes proceed on level 1.
func TestWholeLevelDownBlocksReadsButNotWrites(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()

	if _, err := cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashLevel(0); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Read(ctx, "k"); !errors.Is(err, client.ErrReadUnavailable) {
		t.Errorf("read err = %v, want ErrReadUnavailable", err)
	}
	// Writes fail too: version discovery needs a read-shaped quorum.
	if _, err := cli.Write(ctx, "k", []byte("v2")); !errors.Is(err, client.ErrWriteUnavailable) {
		t.Errorf("write err = %v, want ErrWriteUnavailable", err)
	}
	// Recovery restores service and stable storage.
	c.RecoverAll()
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "v1" {
		t.Errorf("post-recovery read = %q", rd.Value)
	}
}

// TestEveryLevelPartialCrashBlocksWrites: one dead replica in every
// physical level leaves reads available but no write quorum — the exact
// failure mode of WR_fail(p).
func TestEveryLevelPartialCrashBlocksWrites(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(1); err != nil { // level 0 member
		t.Fatal(err)
	}
	if err := c.Crash(4); err != nil { // level 1 member
		t.Fatal(err)
	}
	if _, err := cli.Read(ctx, "k"); err != nil {
		t.Errorf("read should survive partial crashes: %v", err)
	}
	if _, err := cli.Write(ctx, "k", []byte("v2")); !errors.Is(err, client.ErrWriteUnavailable) {
		t.Errorf("write err = %v, want ErrWriteUnavailable", err)
	}
}

// TestReadAfterWriteAcrossFailures: the freshest value survives arbitrary
// crash/recover cycles because some read-quorum member always holds it.
func TestReadAfterWriteAcrossFailures(t *testing.T) {
	c := newCluster(t, "1-2-4")
	cli := newClient(t, c)
	ctx := context.Background()

	if _, err := cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	wr, err := cli.Write(ctx, "k", []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	// Crash one non-written level replica and read.
	victim := tree.SiteID(1)
	if wr.Level == 0 {
		victim = 3
	}
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "v2" {
		t.Errorf("read = %q, want v2", rd.Value)
	}
}

func TestPartitionBlocksMinorityLevels(t *testing.T) {
	c := newCluster(t, "1-2-4")
	cli := newClient(t, c)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Cut level 0 (sites 1,2) away: they form their own partition group,
	// while the unlisted level-1 sites and all clients share the implicit
	// group. No read quorum can reach level 0 anymore.
	c.Partition([]tree.SiteID{1, 2})
	if _, err := cli.Read(ctx, "k"); !errors.Is(err, client.ErrReadUnavailable) {
		t.Errorf("read across partition = %v, want ErrReadUnavailable", err)
	}
	c.Heal()
	if _, err := cli.Read(ctx, "k"); err != nil {
		t.Errorf("read after heal: %v", err)
	}
}

func TestTwoClientsSeeEachOthersWrites(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli1 := newClient(t, c)
	cli2 := newClient(t, c)
	ctx := context.Background()

	if _, err := cli1.Write(ctx, "k", []byte("from-1")); err != nil {
		t.Fatal(err)
	}
	rd, err := cli2.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "from-1" {
		t.Errorf("client 2 read %q", rd.Value)
	}
	if _, err := cli2.Write(ctx, "k", []byte("from-2")); err != nil {
		t.Fatal(err)
	}
	rd, err = cli1.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "from-2" {
		t.Errorf("client 1 read %q", rd.Value)
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	c := newCluster(t, "1-3-5", WithLockTTL(200*time.Millisecond))
	ctx := context.Background()
	const writers = 4
	clients := make([]*client.Client, writers)
	for i := range clients {
		clients[i] = newClient(t, c)
	}
	done := make(chan error, writers)
	for i, cli := range clients {
		go func(i int, cli *client.Client) {
			var lastErr error
			for j := 0; j < 10; j++ {
				_, err := cli.Write(ctx, "k", []byte(fmt.Sprintf("w%d-%d", i, j)))
				if err != nil && !errors.Is(err, client.ErrWriteUnavailable) {
					lastErr = err
					break
				}
			}
			done <- lastErr
		}(i, cli)
	}
	for i := 0; i < writers; i++ {
		if err := <-done; err != nil {
			t.Errorf("writer error: %v", err)
		}
	}
	// A quorum read succeeds and observes some committed write.
	rd, err := clients[0].Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if rd.TS.Version == 0 {
		t.Error("no write ever succeeded")
	}
}

func TestClusterAccessors(t *testing.T) {
	c := newCluster(t, "1-3-5")
	if c.Tree().N() != 8 {
		t.Errorf("Tree().N() = %d", c.Tree().N())
	}
	if c.Protocol().NumPhysicalLevels() != 2 {
		t.Error("Protocol() mismatch")
	}
	if c.Replica(1) == nil || c.Replica(99) != nil {
		t.Error("Replica accessor mismatch")
	}
	if err := c.Crash(99); err == nil {
		t.Error("Crash(99) accepted")
	}
	if err := c.Recover(99); err == nil {
		t.Error("Recover(99) accepted")
	}
	if err := c.CrashLevel(5); err == nil {
		t.Error("CrashLevel(5) accepted")
	}
	st := c.NetworkStats()
	if st.Sent != 0 {
		t.Errorf("fresh cluster stats = %+v", st)
	}
	c.Close()
	c.Close() // idempotent
}

func TestWithLinkLatencyGeoTopology(t *testing.T) {
	// Level 0 (sites 1..3) is "local" to the client; level 1 (sites 4..8)
	// sits across a slow 30ms link. Reads must touch both levels, so their
	// latency is dominated by the remote level.
	slow := func(from, to transport.Addr) time.Duration {
		if from >= 4 || to >= 4 {
			return 30 * time.Millisecond
		}
		return 0
	}
	c := newCluster(t, "1-3-5", WithLinkLatency(slow))
	cli := newClient(t, c)
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := cli.Read(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if e := time.Since(start); e < 55*time.Millisecond { // request+reply over the slow link
		t.Errorf("geo read took %v, want ≥ ~60ms", e)
	}
}

func TestClustersClientsAccessor(t *testing.T) {
	c := newCluster(t, "1-3-5")
	if len(c.Clients()) != 0 {
		t.Error("fresh cluster has clients")
	}
	newClient(t, c)
	newClient(t, c)
	if len(c.Clients()) != 2 {
		t.Errorf("Clients() = %d, want 2", len(c.Clients()))
	}
}
