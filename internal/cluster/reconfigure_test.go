package cluster

import (
	"context"
	"fmt"
	"testing"

	"arbor/internal/tree"
)

func TestReconfigurePreservesData(t *testing.T) {
	c := newCluster(t, "1-8") // MOSTLY-READ shape: one level of 8
	cli := newClient(t, c)
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := cli.Write(ctx, key, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("write %s: %v", key, err)
		}
	}

	// Reshape into the 1-3-5 two-level tree (same 8 replicas).
	newTree, err := tree.ParseSpec("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reconfigure(newTree); err != nil {
		t.Fatalf("reconfigure: %v", err)
	}
	if c.Tree().Spec() != "1-3-5" {
		t.Errorf("cluster tree = %s", c.Tree().Spec())
	}
	if cli.Protocol().NumPhysicalLevels() != 2 {
		t.Errorf("client still on old protocol (%d levels)", cli.Protocol().NumPhysicalLevels())
	}

	// Every key written before reconfiguration is visible through the new
	// quorum shapes.
	for i := 0; i < 5; i++ {
		rd, err := cli.Read(ctx, fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatalf("read k%d after reconfigure: %v", i, err)
		}
		if want := fmt.Sprintf("v%d", i); string(rd.Value) != want {
			t.Errorf("k%d = %q, want %q", i, rd.Value, want)
		}
	}

	// Writes continue under the new shape and reads see them.
	if _, err := cli.Write(ctx, "k0", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	rd, err := cli.Read(ctx, "k0")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "updated" {
		t.Errorf("post-reconfigure write invisible: %q", rd.Value)
	}
}

func TestReconfigureRoundTripSpectrum(t *testing.T) {
	// Walk a key through three configurations: read-optimized → balanced →
	// write-optimized, verifying the latest value at each step.
	c := newCluster(t, "1-9")
	cli := newClient(t, c)
	ctx := context.Background()

	if _, err := cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	shapes := []string{"1-4-5", "1-2-3-4", "1-2-2-2-3"}
	for i, spec := range shapes {
		nt, err := tree.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Reconfigure(nt); err != nil {
			t.Fatalf("reconfigure to %s: %v", spec, err)
		}
		rd, err := cli.Read(ctx, "k")
		if err != nil {
			t.Fatalf("read under %s: %v", spec, err)
		}
		want := fmt.Sprintf("v%d", i+1)
		if string(rd.Value) != want {
			t.Fatalf("under %s read %q, want %q", spec, rd.Value, want)
		}
		if _, err := cli.Write(ctx, "k", []byte(fmt.Sprintf("v%d", i+2))); err != nil {
			t.Fatalf("write under %s: %v", spec, err)
		}
	}
}

func TestReconfigureValidation(t *testing.T) {
	c := newCluster(t, "1-3-5")
	other, err := tree.ParseSpec("1-3-4") // 7 replicas ≠ 8
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reconfigure(other); err == nil {
		t.Error("replica-count mismatch accepted")
	}

	same, err := tree.ParseSpec("1-2-6")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := c.Reconfigure(same); err == nil {
		t.Error("reconfigure with a crashed replica accepted")
	}
	c.RecoverAll()
	if err := c.Reconfigure(same); err != nil {
		t.Errorf("reconfigure after recovery: %v", err)
	}
}

func TestReconfigureVersionsKeepIncreasing(t *testing.T) {
	// Version numbers must not regress across a reconfiguration, or later
	// writes could be shadowed.
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()
	var last uint64
	for i := 0; i < 3; i++ {
		wr, err := cli.Write(ctx, "k", []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if wr.TS.Version <= last {
			t.Fatalf("version regressed: %d after %d", wr.TS.Version, last)
		}
		last = wr.TS.Version
	}
	nt, err := tree.ParseSpec("1-2-2-4")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Reconfigure(nt); err != nil {
		t.Fatal(err)
	}
	wr, err := cli.Write(ctx, "k", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if wr.TS.Version <= last {
		t.Errorf("post-reconfigure version %d not above %d", wr.TS.Version, last)
	}
}
