package cluster

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"arbor/internal/client"
)

// TestRetryBudgetBoundsRetryStorm pins the retry-storm regression: with one
// leaf replica saturated, every write pinned to the leaf level sheds and
// falls back. An unbudgeted client retries every write's fallback; a
// budgeted one spends its burst and then reports honest unavailability, so
// its total wire traffic is strictly smaller and the denial is visible in
// its metrics. The shed itself surfaces as a typed, matchable error.
func TestRetryBudgetBoundsRetryStorm(t *testing.T) {
	const ops = 20
	run := func(opts ...client.Option) (sent uint64, m client.Metrics, lastErr error) {
		c := newCluster(t, "1-3-5")
		cli, err := c.NewClient(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Saturate(8, true); err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for i := 0; i < ops; i++ {
			// Level 1 contains the saturated site 8, so every write sheds
			// there and needs a fallback to succeed.
			_, err := cli.Write(ctx, fmt.Sprintf("k%d", i), []byte("v"), client.WriteToLevel(1))
			if err != nil {
				lastErr = err
			}
		}
		return c.NetworkStats().Sent, cli.Metrics(), lastErr
	}

	unbudgetedSent, um, uerr := run()
	if uerr != nil {
		t.Fatalf("unbudgeted client failed a write: %v (fallback should rescue every one)", uerr)
	}
	if um.RetriesDenied != 0 {
		t.Fatalf("unbudgeted client denied %d retries", um.RetriesDenied)
	}

	budgetedSent, bm, berr := run(client.WithRetryBudget(0.05, 1))
	if bm.RetriesDenied < 10 {
		t.Errorf("RetriesDenied = %d, want >= 10 (one burst token, 0.05/op earn, %d overloaded writes)",
			bm.RetriesDenied, ops)
	}
	if berr == nil {
		t.Fatal("budgeted client never failed a write despite a dry bucket")
	}
	if !errors.Is(berr, client.ErrWriteUnavailable) || !errors.Is(berr, client.ErrOverloaded) {
		t.Errorf("budget-denied write error = %v, want ErrWriteUnavailable wrapping ErrOverloaded", berr)
	}
	if budgetedSent >= unbudgetedSent {
		t.Errorf("budgeted client sent %d messages, unbudgeted %d: the retry budget did not bound the storm",
			budgetedSent, unbudgetedSent)
	}
	t.Logf("unbudgeted: %d wire messages; budgeted: %d wire messages, %d retry spent / %d denied",
		unbudgetedSent, budgetedSent, bm.RetriesSpent, bm.RetriesDenied)
}

// TestDrainPreservesAckedWrites rolls a graceful drain across every site,
// one at a time, then restarts the whole cluster — and requires every
// acknowledged write to read back exactly. Drain hands off through the
// normal lifecycle (finish in-flight 2PC, go down, recover), so it must
// never cost a byte of acknowledged data.
func TestDrainPreservesAckedWrites(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	ctx := context.Background()

	const keys = 8
	for i := 0; i < keys; i++ {
		if _, err := cli.Write(ctx, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("write k%d: %v", i, err)
		}
	}
	for _, site := range c.Tree().Sites() {
		dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		err := c.Drain(dctx, site)
		cancel()
		if err != nil {
			t.Fatalf("drain site %d: %v", site, err)
		}
		if got := c.Replica(site).Health(); got.String() != "down" {
			t.Fatalf("site %d health after drain = %v, want down", site, got)
		}
		if err := c.Recover(site); err != nil {
			t.Fatalf("recover site %d: %v", site, err)
		}
	}
	if err := c.ApplyEvent(Event{Restart: true}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		rd, err := cli.Read(ctx, fmt.Sprintf("k%d", i))
		if err != nil || string(rd.Value) != fmt.Sprintf("v%d", i) {
			t.Errorf("read k%d after drain cycle = %q, %v; want v%d", i, rd.Value, err, i)
		}
	}
}
