package cluster

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"arbor/internal/client"
	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/tree"
)

func newObservedCluster(t *testing.T, spec string, o *obs.Observer) (*Cluster, *tree.Tree) {
	t.Helper()
	tr, err := tree.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(tr, WithSeed(1), WithClientTimeout(25*time.Millisecond), WithObserver(o))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, tr
}

// TestTraceReadFallbackDuringOutage is the acceptance scenario: a read
// issued while one site of a level is down must still succeed, and its
// trace must show both the timed-out contact at the crashed site and the
// fallback site that served the level.
func TestTraceReadFallbackDuringOutage(t *testing.T) {
	o := obs.NewObserver(64)
	c, _ := newObservedCluster(t, "1-2-2", o)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	crashed := c.Protocol().LevelSites(0)[0]
	if err := c.Crash(crashed); err != nil {
		t.Fatal(err)
	}

	// A warm client learns to avoid the crashed site (and hedges around
	// it), so drive the fallback with cold clients: a cold level probes
	// sequentially in shuffled order, and within a few clients one must
	// try the crashed site first, time out, and fall back.
	for i := 0; i < 24; i++ {
		cold, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cold.Read(ctx, "k"); err != nil {
			t.Fatalf("read %d during outage: %v", i, err)
		}
	}

	var sawFallback bool
	for _, tr := range o.Traces.Last(64) {
		if tr.Op != "read" || tr.Outcome != obs.OutcomeOK {
			continue
		}
		for _, a := range tr.Attempts {
			if len(a.Contacts) < 2 || !a.OK {
				continue
			}
			first, last := a.Contacts[0], a.Contacts[len(a.Contacts)-1]
			if first.Site == int(crashed) && first.TimedOut && last.Site != int(crashed) && last.Err == "" {
				sawFallback = true
			}
		}
	}
	if !sawFallback {
		t.Fatalf("no trace shows a timed-out contact at site %d followed by a fallback responder", crashed)
	}
}

// TestTraceWriteLevelFallback crashes one member of a level so that level
// can never assemble a write quorum: traces of successful writes that tried
// it first must show the failed 2PC attempt and the level that took over.
func TestTraceWriteLevelFallback(t *testing.T) {
	o := obs.NewObserver(64)
	c, _ := newObservedCluster(t, "1-2-2", o)
	ctx := context.Background()

	crashed := c.Protocol().LevelSites(1)[0]
	if err := c.Crash(crashed); err != nil {
		t.Fatal(err)
	}
	// A warm client learns (through version-discovery hedge wins) that the
	// crashed site makes level 1's 2PC hopeless and stops trying it, so
	// drive the fallback with cold clients: each picks its first 2PC level
	// uniformly, and within a few clients one must try level 1, fail the
	// prepare, and fall back.
	for i := 0; i < 24; i++ {
		cold, err := c.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cold.Write(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}

	var sawFallback bool
	for _, tr := range o.Traces.Last(64) {
		if tr.Op != "write" || tr.Outcome != obs.OutcomeOK {
			continue
		}
		var failed2PC, ok2PC bool
		for _, a := range tr.Attempts {
			if a.Phase != "write-2pc" {
				continue
			}
			if !a.OK && a.Level == 1 {
				failed2PC = true
			}
			if a.OK && a.Level != 1 && failed2PC {
				ok2PC = true
			}
		}
		if failed2PC && ok2PC {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("no write trace shows a failed 2PC level attempt followed by success on another level")
	}
}

// TestLoadAttribution runs a write-only workload: version discovery must
// land in DiscoveryServes, leaving ReadServes zero everywhere.
func TestLoadAttribution(t *testing.T) {
	c, _ := newObservedCluster(t, "1-2-3", nil)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := cli.Write(ctx, fmt.Sprintf("k%d", i%4), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.LoadReport()
	var discovery, writes uint64
	for _, s := range rep.Sites {
		if s.ReadServes != 0 {
			t.Errorf("site %d: ReadServes = %d under a write-only workload", s.Site, s.ReadServes)
		}
		discovery += s.DiscoveryServes
		writes += s.WriteServes
	}
	if discovery == 0 {
		t.Error("no DiscoveryServes recorded despite version discovery")
	}
	if writes == 0 {
		t.Error("no WriteServes recorded")
	}
}

// TestTheoryCheck compares the empirical load of a healthy balanced run
// against the Eq 3.2 closed forms.
func TestTheoryCheck(t *testing.T) {
	c, tr := newObservedCluster(t, "1-3-3", nil)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("k%d", i%8)
		if i%3 == 0 {
			if _, err := cli.Write(ctx, key, []byte("v")); err != nil {
				t.Fatal(err)
			}
		} else if _, err := cli.Read(ctx, key); err != nil && !errors.Is(err, client.ErrNotFound) {
			t.Fatal(err)
		}
	}
	check := c.TheoryCheck()
	a := core.Analyze(tr)
	if check.TheoryReadLoad != a.ReadLoad || check.TheoryWriteLoad != a.WriteLoad {
		t.Fatalf("theory fields %+v do not match core.Analyze %+v", check, a)
	}
	// With no failures the measured load may exceed the optimum only
	// through sampling noise, never by a whole extra quorum member.
	if check.EmpiricalReadLoad <= 0 || check.EmpiricalReadLoad > 1 {
		t.Errorf("empirical read load %v out of (0,1]", check.EmpiricalReadLoad)
	}
	if check.EmpiricalWriteLoad < a.WriteLoad || check.EmpiricalWriteLoad > 1 {
		t.Errorf("empirical write load %v outside [%v,1]", check.EmpiricalWriteLoad, a.WriteLoad)
	}
}

// TestClusterMetricsExposition checks that a cluster-attached registry
// exposes the per-site, per-level and latency families after traffic.
func TestClusterMetricsExposition(t *testing.T) {
	o := obs.NewObserver(16)
	c, _ := newObservedCluster(t, "1-2-2", o)
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Read(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := o.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`arbor_replica_serves_total{site="1",type="read"}`,
		"arbor_cluster_level_serves{level=\"0\",kind=\"read\"}",
		"arbor_cluster_load{op=\"read\",source=\"theory\"}",
		"arbor_client_op_duration_seconds_bucket",
		"arbor_rpc_calls_total",
		"arbor_network_messages_sent_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestStatsSnapshotConsistent reconfigures concurrently with snapshots and
// checks every snapshot holds a matching (tree, protocol) pair.
func TestStatsSnapshotConsistent(t *testing.T) {
	// The two shapes have different physical level counts, so a mixed
	// (tree, protocol) pair is detectable.
	c, _ := newObservedCluster(t, "1-2-4", nil)
	specA, _ := tree.ParseSpec("1-2-4")
	specB, _ := tree.ParseSpec("1-2-2-2")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			next := specB
			if i%2 == 1 {
				next = specA
			}
			if err := c.Reconfigure(next); err != nil {
				t.Errorf("reconfigure: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		snap := c.StatsSnapshot()
		if snap.Tree.NumPhysicalLevels() != snap.Proto.NumPhysicalLevels() {
			t.Fatalf("snapshot mixes configurations: tree has %d physical levels, protocol %d",
				snap.Tree.NumPhysicalLevels(), snap.Proto.NumPhysicalLevels())
		}
		// The theory check must always be computable on the pair.
		_ = snap.TheoryCheck()
	}
	<-done
}

// BenchmarkObserverOverhead measures the end-to-end cost a live observer
// adds to cluster reads, against the nil-observer baseline the hot paths
// take when observability is off.
func BenchmarkObserverOverhead(b *testing.B) {
	run := func(b *testing.B, o *obs.Observer) {
		tr, err := tree.ParseSpec("1-2-3")
		if err != nil {
			b.Fatal(err)
		}
		opts := []Option{WithSeed(1)}
		if o != nil {
			opts = append(opts, WithObserver(o))
		}
		c, err := New(tr, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		cli, err := c.NewClient()
		if err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cli.Read(ctx, "k"); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("observer-off", func(b *testing.B) { run(b, nil) })
	b.Run("observer-on", func(b *testing.B) { run(b, obs.NewObserver(512)) })
}
