package cluster

import (
	"fmt"

	"arbor/internal/core"
	"arbor/internal/replica"
	"arbor/internal/tree"
)

// Reconfigure shifts the cluster from its current tree to a new arrangement
// of the same replicas — the paper's headline capability: adapting to a
// changed read/write mix "by just modifying the structure of the tree",
// with no protocol change.
//
// The new tree must have exactly the same number of replicas; site k of the
// old tree becomes site k of the new one, possibly on a different physical
// level. Because read quorums of the new tree need not intersect write
// quorums of the old one, Reconfigure migrates data before switching: for
// every key it locates the most recent committed value across all replicas
// and installs it on every replica of one physical level of the NEW tree,
// so every new read quorum observes it. All replicas must be up and writes
// should be quiesced while reconfiguring (it is an administrative
// operation, like the paper's off-line restructuring).
func (c *Cluster) Reconfigure(newTree *tree.Tree) error {
	if newTree.N() != c.Tree().N() {
		return fmt.Errorf("cluster: reconfigure needs the same replica count (have %d, new tree has %d)",
			c.Tree().N(), newTree.N())
	}
	newProto, err := core.New(newTree)
	if err != nil {
		return fmt.Errorf("cluster: reconfigure: %w", err)
	}
	// Check in site order so the error names the same site every time a
	// given failure state is hit (deterministic harnesses journal it).
	for _, site := range c.Tree().Sites() {
		if c.replicas[site].Crashed() {
			return fmt.Errorf("cluster: reconfigure requires all replicas up; site %d is crashed", site)
		}
	}

	// Choose the smallest physical level of the new tree as the migration
	// target: installing each key's latest value there guarantees every
	// new read quorum (one node per new level) sees it, at minimal copy
	// cost.
	target := newProto.LevelSites(0)
	for u := 1; u < newProto.NumPhysicalLevels(); u++ {
		if sites := newProto.LevelSites(u); len(sites) < len(target) {
			target = sites
		}
	}

	// Latest committed version of every key across the whole system.
	type versioned struct {
		value []byte
		ts    replica.Timestamp
	}
	latest := make(map[string]versioned)
	for _, r := range c.replicas {
		for _, key := range r.Store().Keys() {
			value, ts, ok := r.Store().Get(key)
			if !ok {
				continue
			}
			if cur, seen := latest[key]; !seen || ts.After(cur.ts) {
				latest[key] = versioned{value: value, ts: ts}
			}
		}
	}

	// Install on the target level (idempotent: Apply keeps newer values).
	for key, v := range latest {
		for _, site := range target {
			c.replicas[site].Store().Apply(key, v.value, v.ts)
		}
	}

	// Switch every client to the new configuration.
	c.mu.Lock()
	c.tree = newTree
	c.proto = newProto
	clients := c.clients
	c.mu.Unlock()
	for _, cli := range clients {
		cli.SetProtocol(newProto)
	}
	return nil
}
