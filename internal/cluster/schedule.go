package cluster

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"arbor/internal/tree"
)

// Event is one timed failure-injection action.
type Event struct {
	// At is the offset from schedule start.
	At time.Duration
	// Crash lists sites to fail-stop.
	Crash []tree.SiteID
	// Recover lists sites to bring back.
	Recover []tree.SiteID
	// RecoverAll recovers every replica.
	RecoverAll bool
	// Partition splits the network into the given site groups.
	Partition [][]tree.SiteID
	// Heal removes any partition.
	Heal bool
}

// Schedule is a sequence of failure-injection events.
type Schedule []Event

// ParseSchedule parses a compact schedule syntax: semicolon-separated
// events of the form "<offset>:<action>", where offset is a Go duration and
// action is one of
//
//	crash=<site>[,<site>...]
//	recover=<site>[,<site>...]
//	recoverall
//	partition=<site>,...[/<site>,...]
//	heal
//
// Example: "50ms:crash=1,2;150ms:recoverall;200ms:partition=1,2/3,4;300ms:heal"
func ParseSchedule(s string) (Schedule, error) {
	var sched Schedule
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	for _, part := range strings.Split(s, ";") {
		offsetStr, action, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("cluster: schedule event %q needs <offset>:<action>", part)
		}
		at, err := time.ParseDuration(strings.TrimSpace(offsetStr))
		if err != nil {
			return nil, fmt.Errorf("cluster: schedule offset %q: %w", offsetStr, err)
		}
		ev := Event{At: at}
		verb, args, _ := strings.Cut(strings.TrimSpace(action), "=")
		switch verb {
		case "crash":
			if ev.Crash, err = parseSites(args); err != nil {
				return nil, err
			}
		case "recover":
			if ev.Recover, err = parseSites(args); err != nil {
				return nil, err
			}
		case "recoverall":
			ev.RecoverAll = true
		case "partition":
			for _, group := range strings.Split(args, "/") {
				sites, err := parseSites(group)
				if err != nil {
					return nil, err
				}
				ev.Partition = append(ev.Partition, sites)
			}
		case "heal":
			ev.Heal = true
		default:
			return nil, fmt.Errorf("cluster: unknown schedule action %q", verb)
		}
		sched = append(sched, ev)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

func parseSites(s string) ([]tree.SiteID, error) {
	var out []tree.SiteID
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad site id %q", f)
		}
		out = append(out, tree.SiteID(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty site list %q", s)
	}
	return out, nil
}

// apply executes one event against the cluster.
func (c *Cluster) apply(ev Event) error {
	for _, s := range ev.Crash {
		if err := c.Crash(s); err != nil {
			return err
		}
	}
	for _, s := range ev.Recover {
		if err := c.Recover(s); err != nil {
			return err
		}
	}
	if ev.RecoverAll {
		c.RecoverAll()
	}
	if len(ev.Partition) > 0 {
		c.Partition(ev.Partition...)
	}
	if ev.Heal {
		c.Heal()
	}
	return nil
}

// RunSchedule executes the schedule's events at their offsets, starting
// now. It returns a channel that is closed when the schedule completes (or
// the context is cancelled) and a function to retrieve any error.
func (c *Cluster) RunSchedule(ctx context.Context, sched Schedule) (done <-chan struct{}, errf func() error) {
	ch := make(chan struct{})
	var runErr error
	go func() {
		defer close(ch)
		start := time.Now()
		for _, ev := range sched {
			wait := time.Until(start.Add(ev.At))
			if wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					runErr = ctx.Err()
					return
				}
			}
			if err := c.apply(ev); err != nil {
				runErr = err
				return
			}
		}
	}()
	return ch, func() error { return runErr }
}
