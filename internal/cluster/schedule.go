package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"arbor/internal/tree"
)

// Event is one timed failure-injection action.
type Event struct {
	// At is the offset from schedule start. Harnesses that drive a
	// deterministic event clock (internal/sim) interpret it as a logical
	// tick instead of wall time.
	At time.Duration
	// Crash lists sites to fail-stop.
	Crash []tree.SiteID
	// Recover lists sites to bring back instantly (idealized recovery:
	// immediately live, serving reads with whatever state survived).
	Recover []tree.SiteID
	// RecoverSync lists sites to bring back through the catching-up state:
	// the replica serves 2PC at once but refuses reads until its
	// anti-entropy pass has pulled every version it missed.
	RecoverSync []tree.SiteID
	// RecoverAll recovers every replica instantly.
	RecoverAll bool
	// RecoverAllSync recovers every crashed replica through the
	// catching-up state.
	RecoverAllSync bool
	// Partition splits the network into the given site groups.
	Partition [][]tree.SiteID
	// Heal removes any partition.
	Heal bool
	// Restart power-cycles the whole cluster: every replica fail-stops
	// (losing volatile lock state) and comes back with its stable storage.
	// Harnesses that own the replica processes (internal/sim) instead tear
	// the cluster down and rebuild it from the write-ahead journals.
	Restart bool
	// Saturate arms the deterministic overload fault on the sites: their
	// admission gates shed every gated request (reads, version probes,
	// prepares) with a typed overload reply until unsaturated or recovered.
	// Phase-two commits and aborts are still served.
	Saturate []tree.SiteID
	// Unsaturate disarms the overload fault on the sites.
	Unsaturate []tree.SiteID
	// SlowSite injects extra service delay into every gated request the
	// listed sites serve — a brownout. A zero delay clears the slowdown.
	SlowSite []SiteSlowdown
	// Drain gracefully removes the sites from service: new gated work is
	// shed, in-flight work and prepared transactions resolve, then the
	// replica goes down with its stable storage intact.
	Drain []tree.SiteID
	// Workload marks a workload-phase shift (e.g. "mostly-write"). The
	// cluster itself takes no action — clients generate the operations —
	// but harnesses that own the workload (internal/sim) align their phase
	// boundaries with these markers, and the name makes the shift visible
	// in rendered schedules and traces.
	Workload string
}

// SiteSlowdown is one site's injected service delay.
type SiteSlowdown struct {
	Site tree.SiteID
	By   time.Duration
}

// Schedule is a sequence of failure-injection events.
type Schedule []Event

// String renders the event in the compact syntax ParseSchedule accepts, so
// parse → format → parse is a fixpoint. A multi-action event renders every
// action it carries, joined by '+' in a fixed canonical order (the struct's
// field order), which ParseSchedule reads back into the same event.
func (ev Event) String() string {
	var b strings.Builder
	b.WriteString(ev.At.String())
	b.WriteByte(':')
	first := true
	sep := func() {
		if !first {
			b.WriteByte('+')
		}
		first = false
	}
	if len(ev.Crash) > 0 {
		sep()
		b.WriteString("crash=")
		b.WriteString(formatSites(ev.Crash))
	}
	if len(ev.Recover) > 0 {
		sep()
		b.WriteString("recover=")
		b.WriteString(formatSites(ev.Recover))
	}
	if len(ev.RecoverSync) > 0 {
		sep()
		b.WriteString("recoversync=")
		b.WriteString(formatSites(ev.RecoverSync))
	}
	if ev.RecoverAll {
		sep()
		b.WriteString("recoverall")
	}
	if ev.RecoverAllSync {
		sep()
		b.WriteString("recoverallsync")
	}
	if len(ev.Partition) > 0 {
		sep()
		b.WriteString("partition=")
		for i, g := range ev.Partition {
			if i > 0 {
				b.WriteByte('/')
			}
			b.WriteString(formatSites(g))
		}
	}
	if ev.Heal {
		sep()
		b.WriteString("heal")
	}
	if ev.Restart {
		sep()
		b.WriteString("restart")
	}
	if len(ev.Saturate) > 0 {
		sep()
		b.WriteString("saturate=")
		b.WriteString(formatSites(ev.Saturate))
	}
	if len(ev.Unsaturate) > 0 {
		sep()
		b.WriteString("unsaturate=")
		b.WriteString(formatSites(ev.Unsaturate))
	}
	if len(ev.SlowSite) > 0 {
		sep()
		b.WriteString("slowsite=")
		for i, s := range ev.SlowSite {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(s.Site)))
			b.WriteByte(':')
			b.WriteString(s.By.String())
		}
	}
	if len(ev.Drain) > 0 {
		sep()
		b.WriteString("drain=")
		b.WriteString(formatSites(ev.Drain))
	}
	if ev.Workload != "" {
		sep()
		b.WriteString("workload=")
		b.WriteString(ev.Workload)
	}
	return b.String()
}

// String renders the schedule in the compact syntax ParseSchedule accepts.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, ev := range s {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ";")
}

func formatSites(sites []tree.SiteID) string {
	var b strings.Builder
	for i, s := range sites {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(s)))
	}
	return b.String()
}

// ParseSchedule parses a compact schedule syntax: semicolon-separated
// events of the form "<offset>:<action>[+<action>...]", where offset is a
// Go duration and each action is one of
//
//	crash=<site>[,<site>...]
//	recover=<site>[,<site>...]
//	recoversync=<site>[,<site>...]
//	recoverall
//	recoverallsync
//	partition=<site>,...[/<site>,...]
//	heal
//	restart
//	saturate=<site>[,<site>...]
//	unsaturate=<site>[,<site>...]
//	slowsite=<site>:<dur>[,<site>:<dur>...]
//	drain=<site>[,<site>...]
//	workload=<name>
//
// The sync variants recover through the catching-up state with anti-entropy
// catch-up; the plain ones are instant (idealized) recovery. saturate arms
// the deterministic overload fault (the site sheds all gated work until
// unsaturate or recover), slowsite injects per-request service delay (a
// zero duration clears it) and drain gracefully removes sites from service.
// workload marks a workload-phase shift for harnesses that own the
// operation stream; the cluster takes no action on it.
//
// '+' joins several actions into one event, applied in the order the verbs
// are listed above (the order Cluster.apply uses); each action kind may
// appear at most once per event. Because '+' separates actions, a workload
// phase name may not contain it.
//
// Example: "50ms:crash=1,2;150ms:recoverall;200ms:partition=1,2/3,4;300ms:heal+workload=calm"
func ParseSchedule(s string) (Schedule, error) {
	var sched Schedule
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	for _, part := range strings.Split(s, ";") {
		offsetStr, actions, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("cluster: schedule event %q needs <offset>:<action>", part)
		}
		at, err := time.ParseDuration(strings.TrimSpace(offsetStr))
		if err != nil {
			return nil, fmt.Errorf("cluster: schedule offset %q: %w", offsetStr, err)
		}
		ev := Event{At: at}
		seen := map[string]bool{}
		for _, action := range strings.Split(actions, "+") {
			verb, args, _ := strings.Cut(strings.TrimSpace(action), "=")
			if seen[verb] {
				return nil, fmt.Errorf("cluster: schedule event %q repeats action %q", part, verb)
			}
			seen[verb] = true
			switch verb {
			case "crash":
				if ev.Crash, err = parseSites(args); err != nil {
					return nil, err
				}
			case "recover":
				if ev.Recover, err = parseSites(args); err != nil {
					return nil, err
				}
			case "recoversync":
				if ev.RecoverSync, err = parseSites(args); err != nil {
					return nil, err
				}
			case "recoverall":
				ev.RecoverAll = true
			case "recoverallsync":
				ev.RecoverAllSync = true
			case "partition":
				for _, group := range strings.Split(args, "/") {
					sites, err := parseSites(group)
					if err != nil {
						return nil, err
					}
					ev.Partition = append(ev.Partition, sites)
				}
			case "heal":
				ev.Heal = true
			case "restart":
				ev.Restart = true
			case "saturate":
				if ev.Saturate, err = parseSites(args); err != nil {
					return nil, err
				}
			case "unsaturate":
				if ev.Unsaturate, err = parseSites(args); err != nil {
					return nil, err
				}
			case "slowsite":
				if ev.SlowSite, err = parseSlowdowns(args); err != nil {
					return nil, err
				}
			case "drain":
				if ev.Drain, err = parseSites(args); err != nil {
					return nil, err
				}
			case "workload":
				name := strings.TrimSpace(args)
				if name == "" {
					return nil, fmt.Errorf("cluster: workload event %q needs a phase name", part)
				}
				ev.Workload = name
			default:
				return nil, fmt.Errorf("cluster: unknown schedule action %q", verb)
			}
		}
		sched = append(sched, ev)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

func parseSites(s string) ([]tree.SiteID, error) {
	var out []tree.SiteID
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad site id %q", f)
		}
		out = append(out, tree.SiteID(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty site list %q", s)
	}
	return out, nil
}

// parseSlowdowns parses "site:dur[,site:dur...]" slowsite arguments.
func parseSlowdowns(s string) ([]SiteSlowdown, error) {
	var out []SiteSlowdown
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		siteStr, durStr, ok := strings.Cut(f, ":")
		if !ok {
			return nil, fmt.Errorf("cluster: slowsite entry %q needs <site>:<dur>", f)
		}
		id, err := strconv.Atoi(strings.TrimSpace(siteStr))
		if err != nil {
			return nil, fmt.Errorf("cluster: bad site id %q", siteStr)
		}
		d, err := time.ParseDuration(strings.TrimSpace(durStr))
		if err != nil {
			return nil, fmt.Errorf("cluster: slowsite duration %q: %w", durStr, err)
		}
		if d < 0 {
			return nil, fmt.Errorf("cluster: slowsite duration %q is negative", durStr)
		}
		out = append(out, SiteSlowdown{Site: tree.SiteID(id), By: d})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty slowsite list %q", s)
	}
	return out, nil
}

// ApplyEvent executes one event against the cluster immediately, ignoring
// its offset. It is the hook a deterministic harness (internal/sim) uses to
// fire schedule events on its own logical clock instead of RunSchedule's
// wall-clock timers.
func (c *Cluster) ApplyEvent(ev Event) error { return c.apply(ev) }

// apply executes one event against the cluster.
func (c *Cluster) apply(ev Event) error {
	for _, s := range ev.Crash {
		if err := c.Crash(s); err != nil {
			return err
		}
	}
	for _, s := range ev.Recover {
		if err := c.Recover(s); err != nil {
			return err
		}
	}
	for _, s := range ev.RecoverSync {
		if err := c.RecoverWithSync(s); err != nil {
			return err
		}
	}
	if ev.RecoverAll {
		c.RecoverAll()
	}
	if ev.RecoverAllSync {
		c.RecoverAllWithSync()
	}
	if len(ev.Partition) > 0 {
		c.Partition(ev.Partition...)
	}
	if ev.Heal {
		c.Heal()
	}
	if ev.Restart {
		// Power-cycle: every replica fail-stops (volatile lock state is
		// lost) and immediately recovers with its stable storage.
		for _, r := range c.replicas {
			r.Crash()
		}
		c.RecoverAll()
	}
	for _, s := range ev.Saturate {
		if err := c.Saturate(s, true); err != nil {
			return err
		}
	}
	for _, s := range ev.Unsaturate {
		if err := c.Saturate(s, false); err != nil {
			return err
		}
	}
	for _, s := range ev.SlowSite {
		if err := c.SlowSite(s.Site, s.By); err != nil {
			return err
		}
	}
	for _, s := range ev.Drain {
		// A schedule-driven drain is bounded: the replica stays draining
		// (shedding new work) even if quiescence takes longer than this, and
		// its prepared transactions still resolve via commit, abort or lock
		// expiry.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := c.Drain(ctx, s)
		cancel()
		if err != nil && !errors.Is(err, context.DeadlineExceeded) {
			return err
		}
	}
	return nil
}

// RunSchedule executes the schedule's events at their offsets, starting
// now. It returns a channel that is closed when the schedule completes (or
// the context is cancelled) and a function to retrieve any error.
func (c *Cluster) RunSchedule(ctx context.Context, sched Schedule) (done <-chan struct{}, errf func() error) {
	ch := make(chan struct{})
	var runErr error
	go func() {
		defer close(ch)
		start := time.Now()
		for _, ev := range sched {
			wait := time.Until(start.Add(ev.At))
			if wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					runErr = ctx.Err()
					return
				}
			}
			if err := c.apply(ev); err != nil {
				runErr = err
				return
			}
		}
	}()
	return ch, func() error { return runErr }
}
