package cluster

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"arbor/internal/tree"
)

// Event is one timed failure-injection action.
type Event struct {
	// At is the offset from schedule start. Harnesses that drive a
	// deterministic event clock (internal/sim) interpret it as a logical
	// tick instead of wall time.
	At time.Duration
	// Crash lists sites to fail-stop.
	Crash []tree.SiteID
	// Recover lists sites to bring back instantly (idealized recovery:
	// immediately live, serving reads with whatever state survived).
	Recover []tree.SiteID
	// RecoverSync lists sites to bring back through the catching-up state:
	// the replica serves 2PC at once but refuses reads until its
	// anti-entropy pass has pulled every version it missed.
	RecoverSync []tree.SiteID
	// RecoverAll recovers every replica instantly.
	RecoverAll bool
	// RecoverAllSync recovers every crashed replica through the
	// catching-up state.
	RecoverAllSync bool
	// Partition splits the network into the given site groups.
	Partition [][]tree.SiteID
	// Heal removes any partition.
	Heal bool
	// Restart power-cycles the whole cluster: every replica fail-stops
	// (losing volatile lock state) and comes back with its stable storage.
	// Harnesses that own the replica processes (internal/sim) instead tear
	// the cluster down and rebuild it from the write-ahead journals.
	Restart bool
	// Workload marks a workload-phase shift (e.g. "mostly-write"). The
	// cluster itself takes no action — clients generate the operations —
	// but harnesses that own the workload (internal/sim) align their phase
	// boundaries with these markers, and the name makes the shift visible
	// in rendered schedules and traces.
	Workload string
}

// Schedule is a sequence of failure-injection events.
type Schedule []Event

// String renders the event in the compact syntax ParseSchedule accepts, so
// parse → format → parse is a fixpoint. A multi-action event renders every
// action it carries, joined by '+' in a fixed canonical order (the struct's
// field order), which ParseSchedule reads back into the same event.
func (ev Event) String() string {
	var b strings.Builder
	b.WriteString(ev.At.String())
	b.WriteByte(':')
	first := true
	sep := func() {
		if !first {
			b.WriteByte('+')
		}
		first = false
	}
	if len(ev.Crash) > 0 {
		sep()
		b.WriteString("crash=")
		b.WriteString(formatSites(ev.Crash))
	}
	if len(ev.Recover) > 0 {
		sep()
		b.WriteString("recover=")
		b.WriteString(formatSites(ev.Recover))
	}
	if len(ev.RecoverSync) > 0 {
		sep()
		b.WriteString("recoversync=")
		b.WriteString(formatSites(ev.RecoverSync))
	}
	if ev.RecoverAll {
		sep()
		b.WriteString("recoverall")
	}
	if ev.RecoverAllSync {
		sep()
		b.WriteString("recoverallsync")
	}
	if len(ev.Partition) > 0 {
		sep()
		b.WriteString("partition=")
		for i, g := range ev.Partition {
			if i > 0 {
				b.WriteByte('/')
			}
			b.WriteString(formatSites(g))
		}
	}
	if ev.Heal {
		sep()
		b.WriteString("heal")
	}
	if ev.Restart {
		sep()
		b.WriteString("restart")
	}
	if ev.Workload != "" {
		sep()
		b.WriteString("workload=")
		b.WriteString(ev.Workload)
	}
	return b.String()
}

// String renders the schedule in the compact syntax ParseSchedule accepts.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, ev := range s {
		parts[i] = ev.String()
	}
	return strings.Join(parts, ";")
}

func formatSites(sites []tree.SiteID) string {
	var b strings.Builder
	for i, s := range sites {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(s)))
	}
	return b.String()
}

// ParseSchedule parses a compact schedule syntax: semicolon-separated
// events of the form "<offset>:<action>[+<action>...]", where offset is a
// Go duration and each action is one of
//
//	crash=<site>[,<site>...]
//	recover=<site>[,<site>...]
//	recoversync=<site>[,<site>...]
//	recoverall
//	recoverallsync
//	partition=<site>,...[/<site>,...]
//	heal
//	restart
//	workload=<name>
//
// The sync variants recover through the catching-up state with anti-entropy
// catch-up; the plain ones are instant (idealized) recovery. workload marks
// a workload-phase shift for harnesses that own the operation stream; the
// cluster takes no action on it.
//
// '+' joins several actions into one event, applied in the order the verbs
// are listed above (the order Cluster.apply uses); each action kind may
// appear at most once per event. Because '+' separates actions, a workload
// phase name may not contain it.
//
// Example: "50ms:crash=1,2;150ms:recoverall;200ms:partition=1,2/3,4;300ms:heal+workload=calm"
func ParseSchedule(s string) (Schedule, error) {
	var sched Schedule
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	for _, part := range strings.Split(s, ";") {
		offsetStr, actions, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("cluster: schedule event %q needs <offset>:<action>", part)
		}
		at, err := time.ParseDuration(strings.TrimSpace(offsetStr))
		if err != nil {
			return nil, fmt.Errorf("cluster: schedule offset %q: %w", offsetStr, err)
		}
		ev := Event{At: at}
		seen := map[string]bool{}
		for _, action := range strings.Split(actions, "+") {
			verb, args, _ := strings.Cut(strings.TrimSpace(action), "=")
			if seen[verb] {
				return nil, fmt.Errorf("cluster: schedule event %q repeats action %q", part, verb)
			}
			seen[verb] = true
			switch verb {
			case "crash":
				if ev.Crash, err = parseSites(args); err != nil {
					return nil, err
				}
			case "recover":
				if ev.Recover, err = parseSites(args); err != nil {
					return nil, err
				}
			case "recoversync":
				if ev.RecoverSync, err = parseSites(args); err != nil {
					return nil, err
				}
			case "recoverall":
				ev.RecoverAll = true
			case "recoverallsync":
				ev.RecoverAllSync = true
			case "partition":
				for _, group := range strings.Split(args, "/") {
					sites, err := parseSites(group)
					if err != nil {
						return nil, err
					}
					ev.Partition = append(ev.Partition, sites)
				}
			case "heal":
				ev.Heal = true
			case "restart":
				ev.Restart = true
			case "workload":
				name := strings.TrimSpace(args)
				if name == "" {
					return nil, fmt.Errorf("cluster: workload event %q needs a phase name", part)
				}
				ev.Workload = name
			default:
				return nil, fmt.Errorf("cluster: unknown schedule action %q", verb)
			}
		}
		sched = append(sched, ev)
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].At < sched[j].At })
	return sched, nil
}

func parseSites(s string) ([]tree.SiteID, error) {
	var out []tree.SiteID
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		id, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("cluster: bad site id %q", f)
		}
		out = append(out, tree.SiteID(id))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: empty site list %q", s)
	}
	return out, nil
}

// ApplyEvent executes one event against the cluster immediately, ignoring
// its offset. It is the hook a deterministic harness (internal/sim) uses to
// fire schedule events on its own logical clock instead of RunSchedule's
// wall-clock timers.
func (c *Cluster) ApplyEvent(ev Event) error { return c.apply(ev) }

// apply executes one event against the cluster.
func (c *Cluster) apply(ev Event) error {
	for _, s := range ev.Crash {
		if err := c.Crash(s); err != nil {
			return err
		}
	}
	for _, s := range ev.Recover {
		if err := c.Recover(s); err != nil {
			return err
		}
	}
	for _, s := range ev.RecoverSync {
		if err := c.RecoverWithSync(s); err != nil {
			return err
		}
	}
	if ev.RecoverAll {
		c.RecoverAll()
	}
	if ev.RecoverAllSync {
		c.RecoverAllWithSync()
	}
	if len(ev.Partition) > 0 {
		c.Partition(ev.Partition...)
	}
	if ev.Heal {
		c.Heal()
	}
	if ev.Restart {
		// Power-cycle: every replica fail-stops (volatile lock state is
		// lost) and immediately recovers with its stable storage.
		for _, r := range c.replicas {
			r.Crash()
		}
		c.RecoverAll()
	}
	return nil
}

// RunSchedule executes the schedule's events at their offsets, starting
// now. It returns a channel that is closed when the schedule completes (or
// the context is cancelled) and a function to retrieve any error.
func (c *Cluster) RunSchedule(ctx context.Context, sched Schedule) (done <-chan struct{}, errf func() error) {
	ch := make(chan struct{})
	var runErr error
	go func() {
		defer close(ch)
		start := time.Now()
		for _, ev := range sched {
			wait := time.Until(start.Add(ev.At))
			if wait > 0 {
				timer := time.NewTimer(wait)
				select {
				case <-timer.C:
				case <-ctx.Done():
					timer.Stop()
					runErr = ctx.Err()
					return
				}
			}
			if err := c.apply(ev); err != nil {
				runErr = err
				return
			}
		}
	}()
	return ch, func() error { return runErr }
}
