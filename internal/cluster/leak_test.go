package cluster

import (
	"context"
	"runtime"
	"testing"
	"time"

	"arbor/internal/tree"
)

// TestCloseStopsAllGoroutines guards against goroutine leaks: after a
// cluster with clients and traffic is closed, the goroutine count returns
// to its baseline.
func TestCloseStopsAllGoroutines(t *testing.T) {
	runtime.GC()
	time.Sleep(20 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	tr, err := tree.ParseSpec("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(tr, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	cli, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if _, err := cli.Write(ctx, "k", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: baseline %d, after close %d", baseline, runtime.NumGoroutine())
}
