package cluster

import (
	"context"
	"errors"
	"testing"

	"arbor/internal/client"
	"arbor/internal/replica"
)

// TestInFlightWriteFaultWindows pins the protocol's behaviour when a level
// member fail-stops inside a write's two-phase window. A crash between
// prepare and commit must surface ErrInDoubt — the decision was commit, but
// not every member acknowledged it — and a write whose value reached no
// member may never be reported as a plain success.
func TestInFlightWriteFaultWindows(t *testing.T) {
	cases := []struct {
		name string
		// failAll arms the fail point on every member of the written level;
		// otherwise only the first member is armed.
		failAll bool
		point   replica.FailPoint
		// wantErr is the sentinel the write must match, nil for success.
		wantErr error
		// wantVisible asserts a recovered read returns the written value;
		// wantLost asserts it must not.
		wantVisible bool
		wantLost    bool
	}{
		{
			name:        "one member crashes between prepare and commit",
			point:       replica.FailOnCommit,
			wantErr:     client.ErrInDoubt,
			wantVisible: true, // the surviving members committed
		},
		{
			name:     "every member crashes between prepare and commit",
			failAll:  true,
			point:    replica.FailOnCommit,
			wantErr:  client.ErrInDoubt,
			wantLost: true, // no member applied the write; success would lie
		},
		{
			name:        "one member crashes before voting in prepare",
			point:       replica.FailOnPrepare,
			wantErr:     nil, // the level aborts cleanly and another takes over
			wantVisible: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCluster(t, "1-3-5")
			cli, err := c.NewClient(client.WithCommitRetries(1))
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()

			members := c.Protocol().LevelSites(0)
			armed := members[:1]
			if tc.failAll {
				armed = members
			}
			for _, s := range armed {
				c.Replica(s).SetFailPoint(tc.point)
			}

			wr, err := cli.Write(ctx, "k", []byte("v1"), client.WriteToLevel(0))
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("write error = %v, want errors.Is(err, %v)", err, tc.wantErr)
				}
			} else if err != nil {
				t.Fatalf("write: %v", err)
			}

			c.RecoverAll()
			rd, err := cli.Read(ctx, "k")
			switch {
			case tc.wantVisible:
				if err != nil || string(rd.Value) != "v1" {
					t.Errorf("recovered read = %q, %v; want v1", rd.Value, err)
				}
				if rd.TS != wr.TS {
					t.Errorf("recovered read TS = %v, want the write's %v", rd.TS, wr.TS)
				}
			case tc.wantLost:
				if err == nil && string(rd.Value) == "v1" {
					t.Error("lost write became visible; the in-doubt report was the only correct outcome")
				}
				if err != nil && !errors.Is(err, client.ErrNotFound) {
					t.Errorf("recovered read of lost write = %v, want ErrNotFound", err)
				}
			}
		})
	}
}
