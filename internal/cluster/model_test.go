package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"arbor/internal/client"
	"arbor/internal/tree"
)

// TestQuickSequentialModelEquivalence drives a random sequential operation
// stream (including crashes and recoveries that keep quorums available)
// through a random cluster and compares every read against an in-memory
// model map — the strongest single-threaded one-copy check.
func TestQuickSequentialModelEquivalence(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))

		// Random tree: 2-3 physical levels of 2-4 replicas.
		levels := 2 + rng.Intn(2)
		counts := make([]int, levels)
		prev := 2
		for i := range counts {
			counts[i] = prev + rng.Intn(3)
			prev = counts[i]
		}
		tr, err := tree.PhysicalLevelSizes(counts...)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		c, err := New(tr, WithSeed(seed), WithClientTimeout(25*time.Millisecond))
		if err != nil {
			return false
		}
		defer c.Close()
		cli, err := c.NewClient()
		if err != nil {
			return false
		}

		ctx := context.Background()
		model := make(map[string]string)
		keys := []string{"a", "b", "c"}
		crashed := make(map[tree.SiteID]bool)

		for step := 0; step < 40; step++ {
			switch rng.Intn(10) {
			case 0: // crash one replica, keeping ≥1 up per level
				site := tr.Sites()[rng.Intn(tr.N())]
				level := tr.SiteLevel(site)
				up := 0
				for _, s := range tr.LevelSites(level) {
					if !crashed[s] {
						up++
					}
				}
				if up > 1 {
					crashed[site] = true
					if err := c.Crash(site); err != nil {
						return false
					}
				}
			case 1: // recover everyone
				c.RecoverAll()
				crashed = make(map[tree.SiteID]bool)
			default:
				key := keys[rng.Intn(len(keys))]
				if rng.Intn(2) == 0 {
					val := fmt.Sprintf("s%d", step)
					_, err := cli.Write(ctx, key, []byte(val))
					if err != nil {
						// With one replica down per level, writes may
						// legitimately fail (no full level). The model
						// must not change.
						if errors.Is(err, client.ErrWriteUnavailable) {
							continue
						}
						t.Logf("seed %d step %d: write: %v", seed, step, err)
						return false
					}
					model[key] = val
					continue
				}
				rd, err := cli.Read(ctx, key)
				want, exists := model[key]
				switch {
				case err == nil:
					if !exists || want != string(rd.Value) {
						t.Logf("seed %d step %d: read %q = %q, model %q (exists=%v)",
							seed, step, key, rd.Value, want, exists)
						return false
					}
				case errors.Is(err, client.ErrNotFound):
					if exists {
						t.Logf("seed %d step %d: read %q not found, model has %q", seed, step, key, want)
						return false
					}
				default:
					t.Logf("seed %d step %d: read: %v", seed, step, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
