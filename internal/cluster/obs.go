package cluster

import (
	"strconv"

	"arbor/internal/client"
	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/replica"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

type observerOption struct{ o *obs.Observer }

func (o observerOption) apply(opts *options) { opts.observer = o.o }

// WithObserver attaches an observability hook to the whole cluster: every
// replica, every client created through NewClient, and the cluster itself
// (network counters, per-level load gauges and a live theory-vs-empirical
// load comparison) register their metrics on the observer's registry, and
// client operations record traces into its recorder. A nil observer (the
// default) leaves all hot paths uninstrumented.
func WithObserver(o *obs.Observer) Option { return observerOption{o: o} }

// registerMetrics installs the cluster-scoped metric families: network
// counters read at scrape time, per-level participation gauges recomputed
// from replica stats on every collection (Reset-ing first, so a
// reconfiguration that changes the number of levels never leaves stale
// series), and the Eq 3.2 closed-form loads next to their measured
// counterparts.
func (c *Cluster) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc("arbor_network_messages_sent_total",
		"Messages handed to the simulated network.",
		func() uint64 { return c.net.Stats().Sent })
	reg.CounterFunc("arbor_network_messages_delivered_total",
		"Messages delivered to an endpoint.",
		func() uint64 { return c.net.Stats().Delivered })
	reg.CounterFunc("arbor_network_messages_dropped_total",
		"Messages lost to random drop, partition or congestion.",
		func() uint64 { return c.net.Stats().Dropped })
	reg.CounterFunc("arbor_network_messages_delayed_total",
		"Messages whose delivery was deferred by configured latency.",
		func() uint64 { return c.net.Stats().Delayed })

	levelSize := reg.GaugeVec("arbor_cluster_level_size",
		"Physical nodes on each physical level of the current tree.", "level")
	levelServes := reg.GaugeVec("arbor_cluster_level_serves",
		"Summed replica participations per physical level of the current tree, by kind: read = read-op accesses, write = prepares, discovery = version reads for writes.",
		"level", "kind")
	theory := reg.GaugeVec("arbor_cluster_load",
		"System load per Eq 3.2: source=theory is the closed form for the current tree; source=empirical is max per-site participations divided by issued operations.",
		"op", "source")
	health := reg.GaugeVec("arbor_replica_health",
		"Replica health lifecycle state per site: 0=down, 1=catching-up, 2=live.",
		"site")

	reg.OnCollect(func() {
		for site, h := range c.Healths() {
			health.With(strconv.Itoa(int(site))).Set(healthGaugeValue(h))
		}
		snap := c.StatsSnapshot()
		levelSize.Reset()
		levelServes.Reset()
		perLevel := make(map[tree.SiteID]int, snap.Tree.N())
		for u := 0; u < snap.Proto.NumPhysicalLevels(); u++ {
			sites := snap.Proto.LevelSites(u)
			levelSize.With(strconv.Itoa(u)).Set(float64(len(sites)))
			for _, s := range sites {
				perLevel[s] = u
			}
		}
		reads := make(map[int]uint64)
		writes := make(map[int]uint64)
		disc := make(map[int]uint64)
		for _, s := range snap.Load.Sites {
			u, ok := perLevel[s.Site]
			if !ok {
				continue
			}
			reads[u] += s.ReadServes
			writes[u] += s.WriteServes
			disc[u] += s.DiscoveryServes
		}
		for u := 0; u < snap.Proto.NumPhysicalLevels(); u++ {
			l := strconv.Itoa(u)
			levelServes.With(l, "read").Set(float64(reads[u]))
			levelServes.With(l, "write").Set(float64(writes[u]))
			levelServes.With(l, "discovery").Set(float64(disc[u]))
		}
		check := snap.TheoryCheck()
		theory.With("read", "theory").Set(check.TheoryReadLoad)
		theory.With("write", "theory").Set(check.TheoryWriteLoad)
		theory.With("read", "empirical").Set(check.EmpiricalReadLoad)
		theory.With("write", "empirical").Set(check.EmpiricalWriteLoad)
	})
}

// healthGaugeValue orders the lifecycle states monotonically by "how
// alive": dashboards can alert on any site below 2.
func healthGaugeValue(h replica.Health) float64 {
	switch h {
	case replica.HealthDown:
		return 0
	case replica.HealthCatchingUp:
		return 1
	default:
		return 2
	}
}

// OpTotals aggregates every attached client's operation counters.
type OpTotals struct {
	Reads         uint64
	ReadFailures  uint64
	Writes        uint64
	WriteFailures uint64
	ReadContacts  uint64
	WriteContacts uint64
}

// ReadOps is the number of read operations issued, successful or not —
// the denominator of the empirical read load.
func (t OpTotals) ReadOps() int { return int(t.Reads + t.ReadFailures) }

// WriteOps is the number of write operations issued, successful or not.
func (t OpTotals) WriteOps() int { return int(t.Writes + t.WriteFailures) }

// OpTotals sums the metrics of all clients created through NewClient.
func (c *Cluster) OpTotals() OpTotals {
	c.mu.RLock()
	clients := c.clients
	c.mu.RUnlock()
	var t OpTotals
	for _, cli := range clients {
		m := cli.Metrics()
		t.Reads += m.Reads
		t.ReadFailures += m.ReadFailures
		t.Writes += m.Writes
		t.WriteFailures += m.WriteFailures
		t.ReadContacts += m.ReadContacts
		t.WriteContacts += m.WriteContacts
	}
	return t
}

// StatsView is one consistent observation of the cluster: the tree and
// protocol are the pair that was current at the same instant (taken under
// the configuration lock, so a concurrent Reconfigure can never show the
// new tree with the old protocol or vice versa), alongside the load,
// network and client counters captured right after.
type StatsView struct {
	Tree    *tree.Tree
	Proto   *core.Protocol
	Load    LoadReport
	Network transport.Stats
	Ops     OpTotals
}

// StatsSnapshot captures a consistent StatsView.
func (c *Cluster) StatsSnapshot() StatsView {
	c.mu.RLock()
	snap := StatsView{Tree: c.tree, Proto: c.proto}
	clients := c.clients
	c.mu.RUnlock()
	snap.Load = c.LoadReport()
	snap.Network = c.net.Stats()
	for _, cli := range clients {
		m := cli.Metrics()
		snap.Ops.Reads += m.Reads
		snap.Ops.ReadFailures += m.ReadFailures
		snap.Ops.Writes += m.Writes
		snap.Ops.WriteFailures += m.WriteFailures
		snap.Ops.ReadContacts += m.ReadContacts
		snap.Ops.WriteContacts += m.WriteContacts
	}
	return snap
}

// TheoryCheck compares the measured system load against the paper's Eq 3.2
// closed forms for the snapshot's tree.
type TheoryCheck struct {
	// TheoryReadLoad is L_RD = 1/d for the current tree.
	TheoryReadLoad float64
	// TheoryWriteLoad is L_WR = 1/|K_phy| for the current tree.
	TheoryWriteLoad float64
	// EmpiricalReadLoad is max per-site ReadServes / read operations.
	EmpiricalReadLoad float64
	// EmpiricalWriteLoad is max per-site WriteServes / write operations.
	EmpiricalWriteLoad float64
}

// ReadDeviation is empirical minus theoretical read load (positive when
// the system is more loaded than the optimum; failures and fallbacks push
// it up, short runs make it noisy).
func (t TheoryCheck) ReadDeviation() float64 { return t.EmpiricalReadLoad - t.TheoryReadLoad }

// WriteDeviation is empirical minus theoretical write load.
func (t TheoryCheck) WriteDeviation() float64 { return t.EmpiricalWriteLoad - t.TheoryWriteLoad }

// TheoryCheck evaluates the Eq 3.2 closed forms on the snapshot's tree and
// divides the measured per-site maxima by the operation counts observed in
// the same snapshot.
func (v StatsView) TheoryCheck() TheoryCheck {
	a := core.Analyze(v.Tree)
	return TheoryCheck{
		TheoryReadLoad:     a.ReadLoad,
		TheoryWriteLoad:    a.WriteLoad,
		EmpiricalReadLoad:  v.Load.MaxReadLoad(v.Ops.ReadOps()),
		EmpiricalWriteLoad: v.Load.MaxWriteLoad(v.Ops.WriteOps()),
	}
}

// TheoryCheck captures a consistent snapshot and runs the comparison.
func (c *Cluster) TheoryCheck() TheoryCheck {
	return c.StatsSnapshot().TheoryCheck()
}

// clientObserverOpts returns the extra client options carrying the
// cluster's observer, if any.
func (c *Cluster) clientObserverOpts() []client.Option {
	if c.opts.observer == nil {
		return nil
	}
	return []client.Option{client.WithObserver(c.opts.observer)}
}
