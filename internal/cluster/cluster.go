// Package cluster wires a replica tree, a transport network, replica
// servers and protocol clients into a runnable simulated distributed
// system, with failure injection (crashes, recoveries, partitions) and
// per-replica load accounting.
package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"arbor/internal/client"
	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/replica"
	"arbor/internal/transport"
	"arbor/internal/tree"
	"arbor/internal/wire"
)

// Option configures a Cluster.
type Option interface {
	apply(*options)
}

type options struct {
	seed          int64
	latency       time.Duration
	jitter        time.Duration
	jitterDist    transport.JitterDist
	linkFn        func(from, to transport.Addr) time.Duration
	dropProb      float64
	clientTimeout time.Duration
	lockTTL       time.Duration
	walDir        string
	observer      *obs.Observer
	codec         wire.Codec
	maxInflight   int
}

type seedOption int64

func (o seedOption) apply(opts *options) { opts.seed = int64(o) }

// WithSeed seeds all randomness (network and clients) for reproducible
// runs.
func WithSeed(seed int64) Option { return seedOption(seed) }

type latencyOption struct{ base, jitter time.Duration }

func (o latencyOption) apply(opts *options) { opts.latency, opts.jitter = o.base, o.jitter }

// WithLatency adds per-message delivery delay (base plus uniform jitter).
func WithLatency(base, jitter time.Duration) Option { return latencyOption{base: base, jitter: jitter} }

type jitterDistOption transport.JitterDist

func (o jitterDistOption) apply(opts *options) { opts.jitterDist = transport.JitterDist(o) }

// WithJitterDistribution selects the shape of the random delay component
// configured by WithLatency (default uniform). Draws come from the
// network's seeded RNG, so runs stay reproducible per seed.
func WithJitterDistribution(d transport.JitterDist) Option { return jitterDistOption(d) }

type linkLatencyOption func(from, to transport.Addr) time.Duration

func (o linkLatencyOption) apply(opts *options) { opts.linkFn = o }

// WithLinkLatency adds per-link delay, modeling geographic topologies.
// Replica sites use positive addresses (their site IDs); clients negative
// ones. The function must be safe for concurrent use.
func WithLinkLatency(fn func(from, to transport.Addr) time.Duration) Option {
	return linkLatencyOption(fn)
}

// WithSiteRTT adds per-site geographic delay on top of WithLatency: a
// message to or from site s pays rtt[s]/2 each way, so a link between two
// listed sites costs the mean of their RTT classes. Clients and unlisted
// sites pay nothing. The map must not be mutated after the call.
func WithSiteRTT(rtt map[tree.SiteID]time.Duration) Option {
	return linkLatencyOption(func(from, to transport.Addr) time.Duration {
		return rtt[tree.SiteID(from)]/2 + rtt[tree.SiteID(to)]/2
	})
}

type dropOption float64

func (o dropOption) apply(opts *options) { opts.dropProb = float64(o) }

// WithDropProbability makes the network lose each message independently
// with probability p.
func WithDropProbability(p float64) Option { return dropOption(p) }

type clientTimeoutOption time.Duration

func (o clientTimeoutOption) apply(opts *options) { opts.clientTimeout = time.Duration(o) }

// WithClientTimeout sets the clients' per-request failure-detection
// deadline.
func WithClientTimeout(d time.Duration) Option { return clientTimeoutOption(d) }

type lockTTLOption time.Duration

func (o lockTTLOption) apply(opts *options) { opts.lockTTL = time.Duration(o) }

// WithLockTTL sets the replicas' prepared-transaction lock expiry.
func WithLockTTL(d time.Duration) Option { return lockTTLOption(d) }

type codecOption struct{ c wire.Codec }

func (o codecOption) apply(opts *options) { opts.codec = o.c }

// WithCodec runs the in-memory network in codec fidelity mode: every
// message is encoded and decoded with c in flight, so simulations exercise
// the wire format end to end (and count wire bytes in NetworkStats). Off by
// default — plain in-memory delivery skips serialization entirely.
func WithCodec(c wire.Codec) Option { return codecOption{c: c} }

type maxInflightOption int

func (o maxInflightOption) apply(opts *options) { opts.maxInflight = int(o) }

// WithMaxInflight bounds each replica's concurrently served gated requests
// (reads, version probes and phase-one prepares; phase two is never gated).
// Work beyond the bound waits in a small queue and is shed with a typed
// overload reply once the queue fills — reads before prepares, commits and
// aborts never. Zero or less keeps the replica default.
func WithMaxInflight(n int) Option { return maxInflightOption(n) }

type walDirOption string

func (o walDirOption) apply(opts *options) { opts.walDir = string(o) }

// WithWALDir gives every replica a write-ahead journal under dir
// (site-<id>.wal). Existing journals are replayed at startup, so a cluster
// restarted on the same directory recovers every committed write without an
// explicit checkpoint.
func WithWALDir(dir string) Option { return walDirOption(dir) }

// Cluster is a running simulated replica system. All methods are safe for
// concurrent use; the replica map is immutable after New, and the mutable
// fields (tree, protocol, client list) are guarded by mu.
type Cluster struct {
	net      *transport.Network
	replicas map[tree.SiteID]*replica.Replica
	opts     options

	mu      sync.RWMutex
	tree    *tree.Tree
	proto   *core.Protocol
	clients []*client.Client
	wals    []*replica.WAL
	nextCli int
	closed  bool
}

// New builds and starts a cluster for the given tree: one replica goroutine
// per physical node, all attached to a fresh in-memory network.
func New(t *tree.Tree, opts ...Option) (*Cluster, error) {
	o := options{
		seed:          1,
		clientTimeout: 250 * time.Millisecond,
		lockTTL:       2 * time.Second,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	proto, err := core.New(t)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	netOpts := []transport.Option{transport.WithSeed(o.seed)}
	if o.latency > 0 || o.jitter > 0 {
		netOpts = append(netOpts, transport.WithLatency(o.latency, o.jitter))
	}
	if o.jitterDist != transport.JitterUniform {
		netOpts = append(netOpts, transport.WithJitterDistribution(o.jitterDist))
	}
	if o.dropProb > 0 {
		netOpts = append(netOpts, transport.WithDropProbability(o.dropProb))
	}
	if o.linkFn != nil {
		netOpts = append(netOpts, transport.WithLinkLatency(o.linkFn))
	}
	if o.codec != nil {
		netOpts = append(netOpts, transport.WithWireCodec(o.codec))
	}
	c := &Cluster{
		tree:     t,
		proto:    proto,
		net:      transport.NewNetwork(netOpts...),
		replicas: make(map[tree.SiteID]*replica.Replica, t.N()),
		opts:     o,
	}
	for _, site := range t.Sites() {
		ep, err := c.net.Listen(transport.Addr(site))
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: register site %d: %w", site, err)
		}
		ropts := []replica.Option{replica.WithLockTTL(o.lockTTL)}
		if o.maxInflight > 0 {
			ropts = append(ropts, replica.WithMaxInflight(o.maxInflight))
		}
		if o.observer != nil {
			ropts = append(ropts, replica.WithObserver(o.observer.Reg()))
		}
		r := replica.New(int(site), ep, ropts...)
		if o.walDir != "" {
			w, err := attachWAL(r, o.walDir, int(site))
			if err != nil {
				c.Close()
				return nil, err
			}
			c.wals = append(c.wals, w)
		}
		r.Start()
		c.replicas[site] = r
	}
	if o.observer != nil {
		c.registerMetrics(o.observer.Reg())
	}
	return c, nil
}

// attachWAL replays and attaches the site's write-ahead journal.
func attachWAL(r *replica.Replica, dir string, site int) (*replica.WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: wal dir: %w", err)
	}
	path := filepath.Join(dir, fmt.Sprintf("site-%d.wal", site))
	if _, err := os.Stat(path); err == nil {
		if _, err := replica.ReplayWAL(path, r.Store()); err != nil {
			return nil, fmt.Errorf("cluster: replay wal for site %d: %w", site, err)
		}
	}
	w, err := replica.OpenWAL(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: wal for site %d: %w", site, err)
	}
	r.Store().AttachJournal(w)
	return w, nil
}

// Observer returns the observer the cluster was built with (nil when
// observability is off). Components layered on top of the cluster — the
// adaptation controller — register their own metric families on it.
func (c *Cluster) Observer() *obs.Observer { return c.opts.observer }

// Clients returns the clients attached to this cluster.
func (c *Cluster) Clients() []*client.Client {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*client.Client, len(c.clients))
	copy(out, c.clients)
	return out
}

// Tree returns the cluster's replica tree.
func (c *Cluster) Tree() *tree.Tree {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tree
}

// Protocol returns the protocol instance bound to the tree.
func (c *Cluster) Protocol() *core.Protocol {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.proto
}

// Replica returns the replica running site id, or nil.
func (c *Cluster) Replica(site tree.SiteID) *replica.Replica { return c.replicas[site] }

// NewClient attaches a new protocol client to the cluster. Clients use
// negative transport addresses; their IDs double as the site component of
// write timestamps. The cluster supplies its timeout, seed and observer as
// defaults; opts are applied after them, so a caller can override any of
// it per client (e.g. client.WithHedgeDelay, client.WithReadRepair).
func (c *Cluster) NewClient(opts ...client.Option) (*client.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextCli++
	id := -c.nextCli
	ep, err := c.net.Dial(transport.Addr(id))
	if err != nil {
		return nil, fmt.Errorf("cluster: register client: %w", err)
	}
	copts := []client.Option{
		client.WithTimeout(c.opts.clientTimeout),
		client.WithSeed(c.opts.seed + int64(c.nextCli)),
	}
	copts = append(copts, c.clientObserverOpts()...)
	copts = append(copts, opts...)
	cli := client.New(id, ep, c.proto, copts...)
	c.clients = append(c.clients, cli)
	return cli, nil
}

// Crash fail-stops the given site.
func (c *Cluster) Crash(site tree.SiteID) error {
	r, ok := c.replicas[site]
	if !ok {
		return fmt.Errorf("cluster: unknown site %d", site)
	}
	r.Crash()
	return nil
}

// Recover brings a crashed site back with its stable storage.
func (c *Cluster) Recover(site tree.SiteID) error {
	r, ok := c.replicas[site]
	if !ok {
		return fmt.Errorf("cluster: unknown site %d", site)
	}
	r.Recover()
	return nil
}

// Saturate arms (or, with on=false, disarms) the deterministic overload
// fault on the site: its admission gate sheds every gated request — reads,
// version probes, prepares — with a typed overload reply, while phase-two
// commits and aborts are still served. Recovering the site also disarms it.
func (c *Cluster) Saturate(site tree.SiteID, on bool) error {
	r, ok := c.replicas[site]
	if !ok {
		return fmt.Errorf("cluster: unknown site %d", site)
	}
	r.Saturate(on)
	return nil
}

// SlowSite injects d of extra service time into every gated request the
// site serves (zero clears it) — a brownout rather than a refusal.
func (c *Cluster) SlowSite(site tree.SiteID, d time.Duration) error {
	r, ok := c.replicas[site]
	if !ok {
		return fmt.Errorf("cluster: unknown site %d", site)
	}
	r.SlowBy(d)
	return nil
}

// Drain gracefully removes the site from service: new gated work is shed,
// in-flight work and prepared transactions resolve, then the replica goes
// down (stable storage intact — recovery is the usual path back). It
// returns once the site is quiesced or ctx expires.
func (c *Cluster) Drain(ctx context.Context, site tree.SiteID) error {
	r, ok := c.replicas[site]
	if !ok {
		return fmt.Errorf("cluster: unknown site %d", site)
	}
	return r.Drain(ctx)
}

// CrashLevel fail-stops every replica of the u-th physical level (of the
// current configuration).
func (c *Cluster) CrashLevel(u int) error {
	proto := c.Protocol()
	if u < 0 || u >= proto.NumPhysicalLevels() {
		return fmt.Errorf("cluster: physical level %d out of range", u)
	}
	for _, site := range proto.LevelSites(u) {
		c.replicas[site].Crash()
	}
	return nil
}

// RecoverAll recovers every crashed replica.
func (c *Cluster) RecoverAll() {
	for _, r := range c.replicas {
		r.Recover()
	}
}

// Partition splits the network into the given site groups. Clients not
// listed (all of them, usually) fall into the implicit extra group, so a
// partition with all clients on one side is expressed by grouping replica
// sites only.
func (c *Cluster) Partition(groups ...[]tree.SiteID) {
	addrGroups := make([][]transport.Addr, len(groups))
	for i, g := range groups {
		addrs := make([]transport.Addr, len(g))
		for j, s := range g {
			addrs[j] = transport.Addr(s)
		}
		addrGroups[i] = addrs
	}
	c.net.Partition(addrGroups...)
}

// Heal removes any network partition.
func (c *Cluster) Heal() { c.net.Heal() }

// NetworkStats returns the transport counters.
func (c *Cluster) NetworkStats() transport.Stats { return c.net.Stats() }

// Close stops all clients, replicas and the network. It is idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	clients := c.clients
	c.mu.Unlock()
	for _, cli := range clients {
		cli.Close()
	}
	for _, r := range c.replicas {
		r.Stop()
	}
	c.net.Close()
	for _, w := range c.wals {
		_ = w.Close()
	}
}
