package cluster

import (
	"context"
	"testing"
	"time"

	"arbor/internal/workload"
)

func TestRunWorkloadMixed(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	gen, err := workload.NewGenerator(workload.Config{ReadFraction: 0.5, Keys: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rep := RunWorkload(context.Background(), cli, gen, 200)
	if got := rep.Ops(); got != 200 {
		t.Errorf("Ops = %d, want 200", got)
	}
	if rep.ReadFailures != 0 || rep.WriteFailures != 0 {
		t.Errorf("failures in a healthy cluster: %+v", rep)
	}
	if rep.Reads == 0 || rep.Writes == 0 {
		t.Errorf("unbalanced run: %+v", rep)
	}
	if rep.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRunWorkloadHonorsContext(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	gen, err := workload.NewGenerator(workload.Config{ReadFraction: 1, Keys: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	rep := RunWorkload(ctx, cli, gen, 1_000_000)
	if rep.Ops() >= 1_000_000 {
		t.Error("run did not stop on context cancellation")
	}
}

func TestRunWorkloadCountsNotFoundAsRead(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	gen, err := workload.NewGenerator(workload.Config{ReadFraction: 1, Keys: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep := RunWorkload(context.Background(), cli, gen, 50)
	if rep.Reads != 50 || rep.NotFound != 50 {
		t.Errorf("pure-read run on empty store: %+v", rep)
	}
}

func TestRunWorkloadLatencyPercentiles(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	gen, err := workload.NewGenerator(workload.Config{ReadFraction: 0.5, Keys: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep := RunWorkload(context.Background(), cli, gen, 100)
	for name, l := range map[string]LatencySummary{"read": rep.ReadLatency, "write": rep.WriteLatency} {
		if l.P50 <= 0 || l.P95 < l.P50 || l.P99 < l.P95 || l.Max < l.P99 {
			t.Errorf("%s latency summary not monotone: %+v", name, l)
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := summarize(nil); s.P50 != 0 || s.Max != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := summarize([]time.Duration{time.Millisecond})
	if s.P50 != time.Millisecond || s.P99 != time.Millisecond || s.Max != time.Millisecond {
		t.Errorf("single-sample summary = %+v", s)
	}
}

func TestLatencySummaryMerge(t *testing.T) {
	a := LatencySummary{P50: 1, P95: 5, P99: 7, Max: 10}
	b := LatencySummary{P50: 2, P95: 4, P99: 9, Max: 8}
	m := a.Merge(b)
	want := LatencySummary{P50: 2, P95: 5, P99: 9, Max: 10}
	if m != want {
		t.Errorf("Merge = %+v, want %+v", m, want)
	}
}

func TestRunWorkloadWithPhasedSource(t *testing.T) {
	c := newCluster(t, "1-3-5")
	cli := newClient(t, c)
	gen, err := workload.NewPhasedGenerator([]workload.Phase{
		{Config: workload.Config{ReadFraction: 0, Keys: 2, Seed: 1}, Ops: 30},
		{Config: workload.Config{ReadFraction: 1, Keys: 2, Seed: 2}, Ops: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := RunWorkload(context.Background(), cli, gen, 60)
	if rep.Writes != 30 || rep.Reads != 30 {
		t.Errorf("phased run: %+v", rep)
	}
	if rep.ReadFailures+rep.WriteFailures != 0 {
		t.Errorf("failures: %+v", rep)
	}
}
