package cluster

import "testing"

// FuzzParseSchedule ensures the schedule parser never panics and that every
// accepted schedule is time-sorted with well-formed events.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"50ms:crash=1,2;150ms:recoverall",
		"1s:partition=1,2/3,4;2s:heal",
		"10ms:recover=3",
		"",
		"bad",
		"10ms:crash=",
		"x:heal",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sched, err := ParseSchedule(input)
		if err != nil {
			return
		}
		for i, ev := range sched {
			if i > 0 && ev.At < sched[i-1].At {
				t.Fatalf("schedule %q not sorted", input)
			}
			if !ev.RecoverAll && !ev.Heal && len(ev.Crash) == 0 && len(ev.Recover) == 0 && len(ev.Partition) == 0 {
				t.Fatalf("schedule %q produced an empty event", input)
			}
		}
	})
}
