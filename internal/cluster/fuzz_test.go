package cluster

import (
	"reflect"
	"testing"
)

// FuzzParseSchedule ensures the schedule parser never panics, that every
// accepted schedule is time-sorted with well-formed events, and that the
// parse → format → parse round trip is a fixpoint (the shrinker serializes
// minimized schedules through Schedule.String, so format must stay within
// the parseable grammar and preserve meaning exactly).
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"50ms:crash=1,2;150ms:recoverall",
		"1s:partition=1,2/3,4;2s:heal",
		"10ms:recover=3",
		"10ms:recoversync=3",
		"50ms:crash=1;120ms:recoverallsync",
		"7ms:restart",
		"10ms:crash=1,2+heal+workload=calm",
		"1s:recoverall+restart",
		"10ms:crash=1+crash=2",
		"10ms:heal+",
		"5ms:workload=mostly-write",
		"3ms:workload=read-heavy;9ms:workload=write-heavy",
		"10ms:workload=",
		"10ms:saturate=3;50ms:unsaturate=3",
		"10ms:saturate=1,2+workload=storm",
		"5ms:slowsite=3:50ms",
		"5ms:slowsite=3:50ms,4:1ms;20ms:slowsite=3:0s",
		"100ms:drain=2",
		"10ms:drain=1,2+recover=3",
		"10ms:slowsite=3",
		"10ms:slowsite=3:xx",
		"10ms:saturate=",
		"",
		"bad",
		"10ms:crash=",
		"x:heal",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sched, err := ParseSchedule(input)
		if err != nil {
			return
		}
		for i, ev := range sched {
			if i > 0 && ev.At < sched[i-1].At {
				t.Fatalf("schedule %q not sorted", input)
			}
			if !ev.RecoverAll && !ev.RecoverAllSync && !ev.Heal && !ev.Restart && ev.Workload == "" &&
				len(ev.Crash) == 0 && len(ev.Recover) == 0 && len(ev.RecoverSync) == 0 && len(ev.Partition) == 0 &&
				len(ev.Saturate) == 0 && len(ev.Unsaturate) == 0 && len(ev.SlowSite) == 0 && len(ev.Drain) == 0 {
				t.Fatalf("schedule %q produced an empty event", input)
			}
		}
		formatted := sched.String()
		again, err := ParseSchedule(formatted)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", formatted, input, err)
		}
		if !reflect.DeepEqual(sched, again) {
			t.Fatalf("round trip of %q changed the schedule:\n first: %#v\nsecond: %#v", input, sched, again)
		}
	})
}
