// Package tqclient is a live implementation of the binary Tree Quorum
// protocol of Agrawal & El Abbadi (the paper's "BINARY" comparison
// configuration), running against the same replica servers as the
// arbitrary protocol. A quorum is a root-to-leaf path; any inaccessible
// node is replaced by quorums from both of its children. Reads take the
// maximum timestamp over the quorum; writes run two-phase commit on it.
//
// Replicas are heap-numbered over a complete binary tree: site 1 is the
// root and site i's children are 2i and 2i+1.
package tqclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"arbor/internal/replica"
	"arbor/internal/rpc"
	"arbor/internal/transport"
)

// ErrNoQuorum means no tree quorum could be assembled from responsive
// replicas.
var ErrNoQuorum = errors.New("tqclient: no tree quorum available")

// ErrNotFound means the quorum assembled but the key was never written.
var ErrNotFound = errors.New("tqclient: key not found")

// Option configures a Client.
type Option interface {
	apply(*Client)
}

type timeoutOption time.Duration

func (o timeoutOption) apply(c *Client) { c.timeout = time.Duration(o) }

// WithTimeout sets the per-request failure-detection deadline (default
// 250ms).
func WithTimeout(d time.Duration) Option { return timeoutOption(d) }

type seedOption int64

func (o seedOption) apply(c *Client) { c.rng = rand.New(rand.NewSource(int64(o))) }

// WithSeed fixes the path-selection randomness.
func WithSeed(seed int64) Option { return seedOption(seed) }

// Client executes tree-quorum reads and writes.
type Client struct {
	id      int
	n       int
	height  int
	timeout time.Duration
	caller  *rpc.Caller

	rngMu sync.Mutex
	rng   *rand.Rand

	txID atomic.Uint64
}

// New creates a client for a complete binary tree of the given height
// (n = 2^(height+1) − 1 replicas at sites 1..n).
func New(id int, ep transport.Conn, height int, opts ...Option) (*Client, error) {
	if height < 0 || height > 25 {
		return nil, fmt.Errorf("tqclient: height %d out of range [0,25]", height)
	}
	c := &Client{
		id:      id,
		n:       1<<(height+1) - 1,
		height:  height,
		timeout: 250 * time.Millisecond,
		rng:     rand.New(rand.NewSource(int64(id))),
	}
	for _, opt := range opts {
		opt.apply(c)
	}
	c.caller = rpc.NewCaller(ep, c.timeout)
	return c, nil
}

// N returns the number of replicas.
func (c *Client) N() int { return c.n }

// Close stops the client's dispatcher.
func (c *Client) Close() { c.caller.Close() }

// ReadResult is the outcome of a tree-quorum read.
type ReadResult struct {
	Value []byte
	TS    replica.Timestamp
	Found bool
	// Quorum is the assembled quorum's size; Contacts counts all probes
	// including failed ones.
	Quorum   int
	Contacts int
}

// WriteResult is the outcome of a tree-quorum write.
type WriteResult struct {
	TS       replica.Timestamp
	Quorum   int
	Contacts int
}

// Read assembles a quorum and returns the most recently written value seen
// on it.
func (c *Client) Read(ctx context.Context, key string) (ReadResult, error) {
	var res ReadResult
	q, contacts, err := c.assemble(ctx)
	res.Contacts = contacts
	if err != nil {
		return res, err
	}
	res.Quorum = len(q)
	for _, site := range q {
		resp, err := c.caller.Call(ctx, site, replica.ReadReq{Key: key})
		res.Contacts++
		if err != nil {
			return res, fmt.Errorf("%w: member %d vanished mid-read: %v", ErrNoQuorum, site, err)
		}
		rr, ok := resp.(replica.ReadResp)
		if !ok {
			return res, fmt.Errorf("tqclient: unexpected response %T", resp)
		}
		if rr.Found && (!res.Found || rr.TS.After(res.TS)) {
			res.Found, res.Value, res.TS = true, rr.Value, rr.TS
		}
	}
	if !res.Found {
		return res, ErrNotFound
	}
	return res, nil
}

// Write assembles a quorum, discovers the highest version on it, and
// installs the value on every member with two-phase commit.
func (c *Client) Write(ctx context.Context, key string, value []byte) (WriteResult, error) {
	var res WriteResult
	q, contacts, err := c.assemble(ctx)
	res.Contacts = contacts
	if err != nil {
		return res, err
	}
	res.Quorum = len(q)

	// Version discovery on the quorum (it intersects every past write
	// quorum, so the maximum version is current).
	var max replica.Timestamp
	for _, site := range q {
		resp, err := c.caller.Call(ctx, site, replica.VersionReq{Key: key})
		res.Contacts++
		if err != nil {
			return res, fmt.Errorf("%w: member %d vanished mid-write: %v", ErrNoQuorum, site, err)
		}
		vr, ok := resp.(replica.VersionResp)
		if !ok {
			return res, fmt.Errorf("tqclient: unexpected response %T", resp)
		}
		if vr.Found && vr.TS.After(max) {
			max = vr.TS
		}
	}
	ts := replica.Timestamp{Version: max.Version + 1, Site: c.id}
	txID := c.txID.Add(1)

	// Phase 1.
	for i, site := range q {
		resp, err := c.caller.Call(ctx, site, replica.PrepareReq{TxID: txID, Key: key, TS: ts})
		res.Contacts++
		ok := err == nil
		if ok {
			pr, isPrep := resp.(replica.PrepareResp)
			ok = isPrep && pr.OK
		}
		if !ok {
			for _, done := range q[:i] {
				_, _ = c.caller.Call(ctx, done, replica.AbortReq{TxID: txID, Key: key})
			}
			return res, fmt.Errorf("%w: prepare failed at %d", ErrNoQuorum, site)
		}
	}
	// Phase 2.
	for _, site := range q {
		_, _ = c.caller.Call(ctx, site, replica.CommitReq{TxID: txID, Key: key, Value: value, TS: ts})
	}
	res.TS = ts
	return res, nil
}

// assemble builds a tree quorum: a root-leaf path, substituting quorums
// from both children for any unresponsive node. It returns the quorum's
// member addresses and the number of liveness probes spent.
func (c *Client) assemble(ctx context.Context) ([]transport.Addr, int, error) {
	probes := 0
	var gather func(site int) ([]transport.Addr, error)
	gather = func(site int) ([]transport.Addr, error) {
		alive := false
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		probes++
		if _, err := c.caller.Call(ctx, transport.Addr(site), replica.PingReq{}); err == nil {
			alive = true
		}
		left, right := 2*site, 2*site+1
		isLeaf := left > c.n

		if alive {
			if isLeaf {
				return []transport.Addr{transport.Addr(site)}, nil
			}
			// Try one random child's path, falling back to the other.
			first, second := left, right
			c.rngMu.Lock()
			if c.rng.Intn(2) == 0 {
				first, second = right, left
			}
			c.rngMu.Unlock()
			if sub, err := gather(first); err == nil {
				return append([]transport.Addr{transport.Addr(site)}, sub...), nil
			}
			sub, err := gather(second)
			if err != nil {
				return nil, err
			}
			return append([]transport.Addr{transport.Addr(site)}, sub...), nil
		}
		if isLeaf {
			return nil, fmt.Errorf("%w: leaf %d down", ErrNoQuorum, site)
		}
		// Dead interior node: need quorums from BOTH children.
		ls, err := gather(left)
		if err != nil {
			return nil, err
		}
		rs, err := gather(right)
		if err != nil {
			return nil, err
		}
		return append(ls, rs...), nil
	}
	q, err := gather(1)
	if err != nil {
		return nil, probes, err
	}
	return q, probes, nil
}
