package tqclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"arbor/internal/replica"
	"arbor/internal/transport"
)

// harness wires a complete binary tree of replicas and one tree-quorum
// client over the in-memory transport.
type harness struct {
	net      *transport.Network
	replicas []*replica.Replica // index i holds site i+1
	cli      *Client
}

func newHarness(t *testing.T, height int) *harness {
	t.Helper()
	n := transport.NewNetwork(transport.WithSeed(1))
	h := &harness{net: n}
	count := 1<<(height+1) - 1
	for site := 1; site <= count; site++ {
		ep, err := n.Register(transport.Addr(site))
		if err != nil {
			t.Fatal(err)
		}
		r := replica.New(site, ep)
		r.Start()
		h.replicas = append(h.replicas, r)
	}
	ep, err := n.Register(-1)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := New(-1, ep, height, WithTimeout(60*time.Millisecond), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	h.cli = cli
	t.Cleanup(func() {
		cli.Close()
		for _, r := range h.replicas {
			r.Stop()
		}
		n.Close()
	})
	return h
}

func (h *harness) crash(sites ...int) {
	for _, s := range sites {
		h.replicas[s-1].Crash()
	}
}

func TestNewValidation(t *testing.T) {
	n := transport.NewNetwork()
	defer n.Close()
	ep, err := n.Register(-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(-1, ep, -1); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := New(-1, ep, 26); err == nil {
		t.Error("huge height accepted")
	}
}

func TestHealthyQuorumIsRootLeafPath(t *testing.T) {
	h := newHarness(t, 3) // n = 15
	ctx := context.Background()
	wr, err := h.cli.Write(ctx, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	// With every replica up, the quorum is a path of height+1 = 4 nodes —
	// the protocol's log(n+1) best case.
	if wr.Quorum != 4 {
		t.Errorf("healthy write quorum size %d, want 4", wr.Quorum)
	}
	rd, err := h.cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "v" || rd.Quorum != 4 {
		t.Errorf("read = %q quorum %d", rd.Value, rd.Quorum)
	}
	if h.cli.N() != 15 {
		t.Errorf("N = %d", h.cli.N())
	}
}

func TestSequentialOneCopy(t *testing.T) {
	h := newHarness(t, 2)
	ctx := context.Background()
	for i := 1; i <= 10; i++ {
		want := fmt.Sprintf("v%d", i)
		wr, err := h.cli.Write(ctx, "k", []byte(want))
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if wr.TS.Version != uint64(i) {
			t.Fatalf("write %d version %d", i, wr.TS.Version)
		}
		rd, err := h.cli.Read(ctx, "k")
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(rd.Value) != want {
			t.Fatalf("read %d = %q", i, rd.Value)
		}
	}
}

// TestRootCrashSurvived is the protocol's raison d'être: unlike earlier
// tree protocols, writes survive the root crashing by substituting both
// children's paths.
func TestRootCrashSurvived(t *testing.T) {
	h := newHarness(t, 3)
	ctx := context.Background()
	if _, err := h.cli.Write(ctx, "k", []byte("before")); err != nil {
		t.Fatal(err)
	}
	h.crash(1) // the root
	wr, err := h.cli.Write(ctx, "k", []byte("after"))
	if err != nil {
		t.Fatalf("write with dead root: %v", err)
	}
	// Two root-leaf paths of the height-2 subtrees: 2·3 = 6 members.
	if wr.Quorum != 6 {
		t.Errorf("root-down quorum size %d, want 6", wr.Quorum)
	}
	rd, err := h.cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "after" {
		t.Errorf("read = %q", rd.Value)
	}
}

func TestQuorumIntersectionAcrossFailures(t *testing.T) {
	// Write with the root down (both-children quorum), then recover the
	// root and crash something else: the new path quorum still intersects
	// the old quorum and sees the write.
	h := newHarness(t, 2) // n = 7
	ctx := context.Background()
	h.crash(1)
	if _, err := h.cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	h.replicas[0].Recover()
	h.crash(4, 5) // leaves under site 2
	rd, err := h.cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "v1" {
		t.Errorf("read = %q, want v1", rd.Value)
	}
}

func TestNoQuorumWhenLeafCutDown(t *testing.T) {
	h := newHarness(t, 2)
	ctx := context.Background()
	// Crash the root and all leaves of the left subtree: the left child's
	// subtree cannot produce a path, so no quorum exists.
	h.crash(1, 4, 5)
	if _, err := h.cli.Write(ctx, "k", []byte("v")); !errors.Is(err, ErrNoQuorum) {
		t.Errorf("err = %v, want ErrNoQuorum", err)
	}
}

func TestReadMissingKey(t *testing.T) {
	h := newHarness(t, 2)
	if _, err := h.cli.Read(context.Background(), "none"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

// TestCostGrowsWithFailures: the measured quorum sizes span the protocol's
// log(n+1) … (n+1)/2 range as interior nodes fail.
func TestCostGrowsWithFailures(t *testing.T) {
	h := newHarness(t, 3) // n = 15, path 4, worst case 8
	ctx := context.Background()
	wr, err := h.cli.Write(ctx, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if wr.Quorum != 4 { // log2(n+1) with n = 15
		t.Errorf("best-case quorum %d, want 4", wr.Quorum)
	}
	// Crash every interior node: the quorum degenerates to all 8 leaves.
	h.crash(1, 2, 3, 4, 5, 6, 7)
	wr, err = h.cli.Write(ctx, "k", []byte("v2"))
	if err != nil {
		t.Fatalf("write with all interiors down: %v", err)
	}
	if wr.Quorum != 8 {
		t.Errorf("worst-case quorum %d, want (n+1)/2 = 8", wr.Quorum)
	}
}

// canForm independently computes whether a tree quorum exists for a given
// crash pattern: node i contributes iff it is alive and one child subtree
// can (path), or both child subtrees can (substitution).
func canForm(site, n int, crashed map[int]bool) bool {
	left, right := 2*site, 2*site+1
	isLeaf := left > n
	if !crashed[site] {
		if isLeaf {
			return true
		}
		return canForm(left, n, crashed) || canForm(right, n, crashed)
	}
	if isLeaf {
		return false
	}
	return canForm(left, n, crashed) && canForm(right, n, crashed)
}

// TestQuickAssembleMatchesModel checks, over random crash patterns, that
// live quorum assembly succeeds exactly when the protocol's recursive
// availability predicate says a quorum exists.
func TestQuickAssembleMatchesModel(t *testing.T) {
	h := newHarness(t, 2) // n = 7
	ctx := context.Background()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 24; trial++ {
		crashed := make(map[int]bool)
		for site := 1; site <= 7; site++ {
			if rng.Intn(3) == 0 {
				crashed[site] = true
				h.replicas[site-1].Crash()
			}
		}
		want := canForm(1, 7, crashed)
		_, err := h.cli.Write(ctx, "k", []byte("v"))
		got := err == nil
		if got != want {
			t.Fatalf("trial %d crashed=%v: assembled=%v, model says %v (err=%v)",
				trial, crashed, got, want, err)
		}
		for _, r := range h.replicas {
			r.Recover()
		}
	}
}
