// Package lp implements a small, dense, two-phase simplex solver for linear
// programs in the form
//
//	minimize    cᵀx
//	subject to  A_eq·x  = b_eq
//	            A_ub·x ≤ b_ub
//	            x ≥ 0
//
// It exists to compute exact optimal loads of small quorum systems (Naor &
// Wool's load LP) so the closed-form loads stated in the paper can be
// verified mechanically. It is not a general-purpose production LP solver:
// problems are expected to have at most a few thousand nonzeros.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Problem describes a linear program. All rows of Aeq must have len(C)
// columns, likewise Aub. Beq/Bub give the right-hand sides.
type Problem struct {
	C   []float64
	Aeq [][]float64
	Beq []float64
	Aub [][]float64
	Bub []float64
}

// Solution holds the optimum of a Problem.
type Solution struct {
	X     []float64
	Value float64
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
)

const eps = 1e-9

// Solve finds an optimal solution using two-phase simplex with Bland's rule.
func Solve(p Problem) (Solution, error) {
	n := len(p.C)
	if n == 0 {
		return Solution{}, errors.New("lp: no variables")
	}
	for i, row := range p.Aeq {
		if len(row) != n {
			return Solution{}, fmt.Errorf("lp: Aeq row %d has %d columns, want %d", i, len(row), n)
		}
	}
	for i, row := range p.Aub {
		if len(row) != n {
			return Solution{}, fmt.Errorf("lp: Aub row %d has %d columns, want %d", i, len(row), n)
		}
	}
	if len(p.Aeq) != len(p.Beq) || len(p.Aub) != len(p.Bub) {
		return Solution{}, errors.New("lp: constraint/rhs length mismatch")
	}

	// Standard form: A·x' = b with x' = (x, slacks) and b ≥ 0.
	mEq, mUb := len(p.Aeq), len(p.Aub)
	m := mEq + mUb
	cols := n + mUb // one slack per inequality
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < mEq; i++ {
		a[i] = make([]float64, cols)
		copy(a[i], p.Aeq[i])
		b[i] = p.Beq[i]
	}
	for i := 0; i < mUb; i++ {
		r := make([]float64, cols)
		copy(r, p.Aub[i])
		r[n+i] = 1
		a[mEq+i] = r
		b[mEq+i] = p.Bub[i]
	}
	for i := 0; i < m; i++ {
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
		}
	}

	t := newTableau(a, b, cols)

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, t.cols)
	for j := cols; j < t.cols; j++ {
		phase1[j] = 1
	}
	if err := t.optimize(phase1); err != nil {
		return Solution{}, err
	}
	if t.objective(phase1) > 1e-7 {
		return Solution{}, ErrInfeasible
	}
	if err := t.driveOutArtificials(cols); err != nil {
		return Solution{}, err
	}

	// Phase 2: minimize the real objective over (x, slacks), with
	// artificial columns disabled.
	phase2 := make([]float64, t.cols)
	copy(phase2, p.C)
	t.forbidden = cols
	if err := t.optimize(phase2); err != nil {
		return Solution{}, err
	}

	x := make([]float64, n)
	for i, bi := range t.basis {
		if bi < n {
			x[bi] = t.b[i]
		}
	}
	return Solution{X: x, Value: dot(p.C, x)}, nil
}

// tableau is a simplex tableau over columns [0,cols) of structural+slack
// variables followed by one artificial column per row.
type tableau struct {
	a         [][]float64
	b         []float64
	basis     []int
	cols      int // total columns including artificials
	forbidden int // columns ≥ forbidden may not enter the basis (0 = none)
}

func newTableau(a [][]float64, b []float64, structCols int) *tableau {
	m := len(a)
	cols := structCols + m
	t := &tableau{
		a:     make([][]float64, m),
		b:     make([]float64, m),
		basis: make([]int, m),
		cols:  cols,
	}
	for i := 0; i < m; i++ {
		row := make([]float64, cols)
		copy(row, a[i])
		row[structCols+i] = 1
		t.a[i] = row
		t.b[i] = b[i]
		t.basis[i] = structCols + i
	}
	return t
}

// reducedCosts computes c_j − c_Bᵀ·B⁻¹·A_j for all columns given the
// objective c over all tableau columns.
func (t *tableau) reducedCosts(c []float64) []float64 {
	m := len(t.a)
	// y_i = c[basis[i]] since rows are kept in B⁻¹·A form.
	rc := make([]float64, t.cols)
	for j := 0; j < t.cols; j++ {
		v := c[j]
		for i := 0; i < m; i++ {
			v -= c[t.basis[i]] * t.a[i][j]
		}
		rc[j] = v
	}
	return rc
}

func (t *tableau) objective(c []float64) float64 {
	v := 0.0
	for i, bi := range t.basis {
		v += c[bi] * t.b[i]
	}
	return v
}

// optimize runs simplex iterations (Bland's rule) until no improving column
// remains.
func (t *tableau) optimize(c []float64) error {
	maxIter := 200 * (len(t.a) + t.cols)
	for iter := 0; iter < maxIter; iter++ {
		rc := t.reducedCosts(c)
		enter := -1
		limit := t.cols
		if t.forbidden > 0 {
			limit = t.forbidden
		}
		for j := 0; j < limit; j++ {
			if rc[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil
		}
		leave := -1
		best := math.Inf(1)
		for i := range t.a {
			if t.a[i][enter] > eps {
				ratio := t.b[i] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return ErrUnbounded
		}
		t.pivot(leave, enter)
	}
	return errors.New("lp: iteration limit exceeded")
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	pr := t.a[leave]
	pv := pr[enter]
	for j := range pr {
		pr[j] /= pv
	}
	t.b[leave] /= pv
	for i := range t.a {
		if i == leave {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		row := t.a[i]
		for j := range row {
			row[j] -= f * pr[j]
		}
		t.b[i] -= f * t.b[leave]
	}
	t.basis[leave] = enter
}

// driveOutArtificials pivots any artificial variables remaining in the basis
// at level zero out of it, or drops redundant rows.
func (t *tableau) driveOutArtificials(structCols int) error {
	for i := range t.basis {
		if t.basis[i] < structCols {
			continue
		}
		pivoted := false
		for j := 0; j < structCols; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint: zero the row so it can never bind.
			for j := range t.a[i] {
				t.a[i][j] = 0
			}
			t.a[i][t.basis[i]] = 1
			t.b[i] = 0
		}
	}
	return nil
}

func dot(a, b []float64) float64 {
	v := 0.0
	for i := range a {
		v += a[i] * b[i]
	}
	return v
}
