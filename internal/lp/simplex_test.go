package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveSimpleInequality(t *testing.T) {
	// minimize -x - y  s.t. x + y ≤ 4, x ≤ 2, y ≤ 3 → x=2, y=2 (value -4)
	sol, err := Solve(Problem{
		C:   []float64{-1, -1},
		Aub: [][]float64{{1, 1}, {1, 0}, {0, 1}},
		Bub: []float64{4, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Value, -4, 1e-7) {
		t.Errorf("value = %v, want -4", sol.Value)
	}
}

func TestSolveWithEquality(t *testing.T) {
	// minimize x + 2y s.t. x + y = 1, x,y ≥ 0 → x=1, value 1.
	sol, err := Solve(Problem{
		C:   []float64{1, 2},
		Aeq: [][]float64{{1, 1}},
		Beq: []float64{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Value, 1, 1e-7) || !almostEqual(sol.X[0], 1, 1e-7) {
		t.Errorf("sol = %+v, want x=(1,0) value 1", sol)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex: minimize -x s.t. x ≤ 1, x ≤ 1 (duplicate).
	sol, err := Solve(Problem{
		C:   []float64{-1},
		Aub: [][]float64{{1}, {1}},
		Bub: []float64{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Value, -1, 1e-7) {
		t.Errorf("value = %v, want -1", sol.Value)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x = 1 and x ≤ 0.5 conflict.
	_, err := Solve(Problem{
		C:   []float64{1},
		Aeq: [][]float64{{1}},
		Beq: []float64{1},
		Aub: [][]float64{{1}},
		Bub: []float64{0.5},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// minimize -x with no upper bound.
	_, err := Solve(Problem{
		C:   []float64{-1},
		Aub: [][]float64{{-1}},
		Bub: []float64{0},
	})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// -x ≤ -2 means x ≥ 2; minimize x → 2.
	sol, err := Solve(Problem{
		C:   []float64{1},
		Aub: [][]float64{{-1}},
		Bub: []float64{-2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Value, 2, 1e-7) {
		t.Errorf("value = %v, want 2", sol.Value)
	}
}

func TestSolveRedundantEquality(t *testing.T) {
	// Two identical equality rows: x + y = 1 (twice). minimize y → 0.
	sol, err := Solve(Problem{
		C:   []float64{0, 1},
		Aeq: [][]float64{{1, 1}, {1, 1}},
		Beq: []float64{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sol.Value, 0, 1e-7) {
		t.Errorf("value = %v, want 0", sol.Value)
	}
}

func TestSolveValidationErrors(t *testing.T) {
	if _, err := Solve(Problem{}); err == nil {
		t.Error("empty problem should fail")
	}
	if _, err := Solve(Problem{C: []float64{1}, Aeq: [][]float64{{1, 2}}, Beq: []float64{1}}); err == nil {
		t.Error("ragged Aeq should fail")
	}
	if _, err := Solve(Problem{C: []float64{1}, Aub: [][]float64{{1, 2}}, Bub: []float64{1}}); err == nil {
		t.Error("ragged Aub should fail")
	}
	if _, err := Solve(Problem{C: []float64{1}, Aeq: [][]float64{{1}}, Beq: []float64{1, 2}}); err == nil {
		t.Error("rhs mismatch should fail")
	}
}

// TestQuickLPAgainstBruteForce compares the simplex optimum with a dense
// grid/vertex search on random 2-variable problems.
func TestQuickLPAgainstBruteForce(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		// Random bounded problem: minimize c·x over x≥0, x1,x2 ≤ u, plus
		// two random ≤ constraints with nonnegative coefficients (keeps
		// the region bounded and feasible at the origin).
		c := []float64{r.Float64()*4 - 2, r.Float64()*4 - 2}
		u := 1 + r.Float64()*3
		aub := [][]float64{
			{1, 0},
			{0, 1},
			{r.Float64(), r.Float64()},
			{r.Float64(), r.Float64()},
		}
		bub := []float64{u, u, 0.5 + r.Float64()*2, 0.5 + r.Float64()*2}
		sol, err := Solve(Problem{C: c, Aub: aub, Bub: bub})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Grid search.
		best := math.Inf(1)
		const steps = 200
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x := []float64{u * float64(i) / steps, u * float64(j) / steps}
				ok := true
				for k, row := range aub {
					if row[0]*x[0]+row[1]*x[1] > bub[k]+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					if v := c[0]*x[0] + c[1]*x[1]; v < best {
						best = v
					}
				}
			}
		}
		// The grid can only overestimate the true optimum slightly.
		if sol.Value > best+1e-6 {
			t.Logf("seed %d: simplex %v worse than grid %v", seed, sol.Value, best)
			return false
		}
		if sol.Value < best-0.1 {
			// Sanity: simplex should not be wildly below a fine grid.
			t.Logf("seed %d: simplex %v far below grid %v", seed, sol.Value, best)
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
