package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"arbor/internal/wire"
)

// TCP framing. Every frame is
//
//	[4-byte big-endian length][varint from][varint to][codec bytes]
//
// where the length counts everything after itself. Addresses are signed
// varints (clients are negative). The first frame a dialer writes on a new
// connection is a HELLO instead:
//
//	[4-byte length]["ARBW"][codec version byte][uvarint name length][codec name][varint dialer addr]
//
// which both negotiates the wire format (the acceptor closes the
// connection on a codec name/version mismatch — a format change is a loud
// handshake failure, not a silent mis-decode) and registers the dialer's
// address, so replies ride back over the same connection: clients need no
// listener of their own.
//
// Connections are multiplexed and pipelined: any number of requests can be
// in flight per connection, tagged with rpc-layer request IDs and matched
// out of order by the caller's dispatcher; cancelling one request never
// touches the connection. Each endpoint keeps a small fixed pool of
// connections per peer (round-robin across dialed and accepted ones) so
// head-of-line blocking on one socket's write lock is bounded.
const (
	// tcpMaxFrame bounds one frame's size, so a corrupt length prefix
	// cannot ask for an absurd allocation.
	tcpMaxFrame = 1 << 26
	// defaultConnsPerPeer is the outbound pool size per destination.
	defaultConnsPerPeer = 2
)

// helloMagic opens every HELLO frame.
var helloMagic = [4]byte{'A', 'R', 'B', 'W'}

// frameBufPool recycles encode and decode buffers; framing sits on every
// message, so the hot path must not allocate per frame.
var frameBufPool = sync.Pool{New: func() any { return new([]byte) }}

// TCPOption configures a TCPNetwork.
type TCPOption interface {
	applyTCP(*tcpOptions)
}

type tcpOptions struct {
	codec        wire.Codec
	connsPerPeer int
}

type tcpCodecOption struct{ c wire.Codec }

func (o tcpCodecOption) applyTCP(opts *tcpOptions) { opts.codec = o.c }

// WithTCPCodec selects the wire codec (default: the binary codec). Both
// ends of every connection must agree; the HELLO handshake enforces it.
func WithTCPCodec(c wire.Codec) TCPOption { return tcpCodecOption{c: c} }

type connsPerPeerOption int

func (o connsPerPeerOption) applyTCP(opts *tcpOptions) { opts.connsPerPeer = int(o) }

// WithConnsPerPeer sets how many connections an endpoint dials per
// destination (default 2). Accepted inbound connections are pooled for
// replies regardless.
func WithConnsPerPeer(n int) TCPOption { return connsPerPeerOption(n) }

// TCPNetwork is a real-sockets counterpart to Network: listeners bind
// ephemeral loopback ports, an in-process registry maps logical addresses
// to them, and frames carry codec-encoded protocol messages. It exists to
// demonstrate that the protocol stack is transport-agnostic; the in-memory
// Network remains the default for simulations because it can inject faults
// deterministically.
type TCPNetwork struct {
	opts tcpOptions

	mu        sync.Mutex
	endpoints map[Addr]*TCPEndpoint // every endpoint, for Close and duplicate detection
	listeners map[Addr]*TCPEndpoint // the dialable subset
	closed    bool
}

// NewTCPNetwork creates an empty TCP transport registry.
func NewTCPNetwork(opts ...TCPOption) *TCPNetwork {
	o := tcpOptions{codec: wire.Binary(), connsPerPeer: defaultConnsPerPeer}
	for _, opt := range opts {
		opt.applyTCP(&o)
	}
	if o.connsPerPeer < 1 {
		o.connsPerPeer = 1
	}
	return &TCPNetwork{
		opts:      o,
		endpoints: make(map[Addr]*TCPEndpoint),
		listeners: make(map[Addr]*TCPEndpoint),
	}
}

// Codec returns the codec this network frames messages with.
func (n *TCPNetwork) Codec() wire.Codec { return n.opts.codec }

// TCPEndpoint is one TCP-backed attachment point.
type TCPEndpoint struct {
	addr Addr
	net  *TCPNetwork
	ln   net.Listener // nil for dial-only (client) endpoints
	in   chan Message

	mu     sync.Mutex
	routes map[Addr]*peerRoute
	closed bool
	done   sync.WaitGroup
}

var _ Conn = (*TCPEndpoint)(nil)

// peerRoute is the connection pool toward one peer: connections this
// endpoint dialed plus connections the peer opened to us, used round-robin.
type peerRoute struct {
	dialMu sync.Mutex // serializes dial attempts toward the peer

	// Guarded by the endpoint's mu.
	conns  []*wireConn
	rr     uint
	dialed int // how many of conns were dialed by this endpoint
}

// pickLocked returns the next pool connection round-robin, or nil. Callers
// hold the endpoint's mu.
func (r *peerRoute) pickLocked() *wireConn {
	if len(r.conns) == 0 {
		return nil
	}
	r.rr++
	return r.conns[r.rr%uint(len(r.conns))]
}

// wireConn is one pooled connection. The write lock makes frames atomic;
// reads run in a dedicated goroutine per connection.
type wireConn struct {
	c      net.Conn
	mu     sync.Mutex // guards writes
	dialed bool
}

// Register creates a listener endpoint on an ephemeral loopback port.
func (n *TCPNetwork) Register(addr Addr) (*TCPEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateAddr, addr)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := n.newEndpoint(addr)
	ep.ln = ln
	n.endpoints[addr] = ep
	n.listeners[addr] = ep
	ep.done.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// Listen implements Transport: replicas attach through it.
func (n *TCPNetwork) Listen(addr Addr) (Conn, error) { return n.Register(addr) }

// Dial implements Transport: it attaches a dial-only endpoint at addr. The
// endpoint reaches listeners on demand and receives replies over the
// connections it opens; peers cannot initiate contact with it. Clients
// attach through it.
func (n *TCPNetwork) Dial(addr Addr) (Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateAddr, addr)
	}
	ep := n.newEndpoint(addr)
	n.endpoints[addr] = ep
	return ep, nil
}

func (n *TCPNetwork) newEndpoint(addr Addr) *TCPEndpoint {
	return &TCPEndpoint{
		addr:   addr,
		net:    n,
		in:     make(chan Message, 1024),
		routes: make(map[Addr]*peerRoute),
	}
}

// lookup resolves an address to its listener's TCP address.
func (n *TCPNetwork) lookup(addr Addr) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.listeners[addr]
	if !ok {
		return "", fmt.Errorf("%w: %d", ErrUnknownAddr, addr)
	}
	return ep.ln.Addr().String(), nil
}

// Close shuts down every endpoint.
func (n *TCPNetwork) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*TCPEndpoint, 0, len(n.endpoints))
	//lint:ignore detrand shutdown fan-out: close order is not observable in any seed-reproducible output
	for _, ep := range n.endpoints {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.close()
	}
}

// Addr returns the endpoint's logical address.
func (e *TCPEndpoint) Addr() Addr { return e.addr }

// Recv returns the endpoint's delivery channel.
func (e *TCPEndpoint) Recv() <-chan Message { return e.in }

// Conns reports how many live connections the endpoint currently pools
// across all peers — observability for tests and operators (a pipelined
// workload should hold it at the configured pool size, not one per
// request).
func (e *TCPEndpoint) Conns() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for _, r := range e.routes {
		total += len(r.conns)
	}
	return total
}

// Send encodes the payload with the network's codec and writes one frame
// to a pooled connection. A broken connection is dropped and the frame
// retried once on a fresh pick. Encode buffers are pooled: steady-state
// sends do not allocate in the framing layer.
func (e *TCPEndpoint) Send(to Addr, payload any) error {
	bp := frameBufPool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0)
	buf = binary.AppendVarint(buf, int64(e.addr))
	buf = binary.AppendVarint(buf, int64(to))
	buf, err := e.net.opts.codec.Encode(buf, payload)
	if err == nil && len(buf)-4 > tcpMaxFrame {
		err = fmt.Errorf("transport: frame to %d exceeds %d bytes", to, tcpMaxFrame)
	}
	if err == nil {
		binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
		for attempt := 0; attempt < 2; attempt++ {
			var wc *wireConn
			wc, err = e.pick(to)
			if err != nil {
				break
			}
			wc.mu.Lock()
			_, werr := wc.c.Write(buf)
			wc.mu.Unlock()
			if werr == nil {
				err = nil
				break
			}
			e.dropConn(to, wc)
			err = fmt.Errorf("transport: send to %d: %w", to, werr)
		}
	}
	*bp = buf
	frameBufPool.Put(bp)
	return err
}

// pick returns a pooled connection toward the peer, growing the dialed
// pool up to the configured size when this endpoint is the initiating side
// (a route fed by accepted inbound connections — a replica answering a
// client — reuses those instead of dialing back).
func (e *TCPEndpoint) pick(to Addr) (*wireConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	r := e.routes[to]
	if r == nil {
		r = &peerRoute{}
		e.routes[to] = r
	}
	grow := r.dialed < e.net.opts.connsPerPeer && len(r.conns) == r.dialed
	if wc := r.pickLocked(); wc != nil && !grow {
		e.mu.Unlock()
		return wc, nil
	}
	e.mu.Unlock()
	if grow {
		if err := e.growRoute(to, r); err != nil {
			// A failed dial can still fall back to an inbound connection
			// that appeared meanwhile.
			e.mu.Lock()
			wc := r.pickLocked()
			e.mu.Unlock()
			if wc == nil {
				return nil, err
			}
			return wc, nil
		}
	}
	e.mu.Lock()
	wc := r.pickLocked()
	e.mu.Unlock()
	if wc == nil {
		return nil, fmt.Errorf("transport: no route to %d", to)
	}
	return wc, nil
}

// growRoute dials one more pool connection toward the peer and performs
// the HELLO handshake. Dials to one peer are serialized; concurrent
// senders queue here only while the pool ramps up or recovers.
func (e *TCPEndpoint) growRoute(to Addr, r *peerRoute) error {
	r.dialMu.Lock()
	defer r.dialMu.Unlock()
	e.mu.Lock()
	need := r.dialed < e.net.opts.connsPerPeer && len(r.conns) == r.dialed
	e.mu.Unlock()
	if !need {
		return nil
	}
	target, err := e.net.lookup(to)
	if err != nil {
		return err
	}
	c, err := net.Dial("tcp", target)
	if err != nil {
		return fmt.Errorf("transport: dial %d: %w", to, err)
	}
	if _, err := c.Write(e.hello()); err != nil {
		_ = c.Close()
		return fmt.Errorf("transport: hello to %d: %w", to, err)
	}
	wc := &wireConn{c: c, dialed: true}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		_ = c.Close()
		return ErrClosed
	}
	r.conns = append(r.conns, wc)
	r.dialed++
	e.done.Add(1)
	e.mu.Unlock()
	go e.readLoop(wc, to)
	return nil
}

// hello builds the handshake frame announcing this endpoint's address and
// the codec it will frame messages with.
func (e *TCPEndpoint) hello() []byte {
	codec := e.net.opts.codec
	name := codec.Name()
	body := make([]byte, 0, 4+1+1+len(name)+binary.MaxVarintLen64+4)
	body = append(body, 0, 0, 0, 0)
	body = append(body, helloMagic[:]...)
	body = append(body, codec.Version())
	body = binary.AppendUvarint(body, uint64(len(name)))
	body = append(body, name...)
	body = binary.AppendVarint(body, int64(e.addr))
	binary.BigEndian.PutUint32(body[:4], uint32(len(body)-4))
	return body
}

// parseHello validates a HELLO body against this endpoint's codec and
// returns the dialer's address.
func (e *TCPEndpoint) parseHello(body []byte) (Addr, error) {
	if len(body) < 5 || [4]byte(body[:4]) != helloMagic {
		return 0, errors.New("transport: not a hello frame")
	}
	codec := e.net.opts.codec
	version := body[4]
	rest := body[5:]
	nameLen, k := binary.Uvarint(rest)
	if k <= 0 || nameLen > uint64(len(rest)-k) {
		return 0, errors.New("transport: malformed hello")
	}
	name := string(rest[k : k+int(nameLen)])
	rest = rest[k+int(nameLen):]
	if name != codec.Name() || version != codec.Version() {
		return 0, fmt.Errorf("transport: codec mismatch: peer speaks %s/v%d, this end %s/v%d",
			name, version, codec.Name(), codec.Version())
	}
	peer, k := binary.Varint(rest)
	if k <= 0 || k != len(rest) {
		return 0, errors.New("transport: malformed hello")
	}
	return Addr(peer), nil
}

// dropConn evicts a broken pooled connection and closes it.
func (e *TCPEndpoint) dropConn(peer Addr, wc *wireConn) {
	e.mu.Lock()
	if r := e.routes[peer]; r != nil {
		for i, c := range r.conns {
			if c == wc {
				r.conns = append(r.conns[:i], r.conns[i+1:]...)
				if wc.dialed {
					r.dialed--
				}
				break
			}
		}
	}
	e.mu.Unlock()
	_ = wc.c.Close()
}

// acceptLoop serves inbound connections until the listener closes.
func (e *TCPEndpoint) acceptLoop() {
	defer e.done.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		e.done.Add(1)
		go e.serveConn(c)
	}
}

// serveConn handles one accepted connection: it reads the HELLO, registers
// the connection on the dialer's route (replies reuse it — that is how
// dial-only clients hear back), and then reads frames until the peer goes
// away. A failed handshake closes the connection immediately.
func (e *TCPEndpoint) serveConn(c net.Conn) {
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		e.done.Done()
		_ = c.Close()
		return
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > tcpMaxFrame {
		e.done.Done()
		_ = c.Close()
		return
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c, body); err != nil {
		e.done.Done()
		_ = c.Close()
		return
	}
	peer, err := e.parseHello(body)
	if err != nil {
		e.done.Done()
		_ = c.Close()
		return
	}
	wc := &wireConn{c: c}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.done.Done()
		_ = c.Close()
		return
	}
	r := e.routes[peer]
	if r == nil {
		r = &peerRoute{}
		e.routes[peer] = r
	}
	r.conns = append(r.conns, wc)
	e.mu.Unlock()
	e.readLoop(wc, peer)
}

// readLoop decodes frames from one pooled connection into the inbox until
// the connection dies, then evicts it. Decode buffers are pooled; the
// decoded payload never aliases them.
func (e *TCPEndpoint) readLoop(wc *wireConn, peer Addr) {
	defer e.done.Done()
	defer e.dropConn(peer, wc)
	br := bufio.NewReaderSize(wc.c, 64<<10)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > tcpMaxFrame {
			return
		}
		bp := frameBufPool.Get().(*[]byte)
		buf := *bp
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(br, buf); err != nil {
			*bp = buf
			frameBufPool.Put(bp)
			return
		}
		from, k1 := binary.Varint(buf)
		var to int64
		var k2 int
		if k1 > 0 {
			to, k2 = binary.Varint(buf[k1:])
		}
		var payload any
		var err error
		if k1 <= 0 || k2 <= 0 {
			err = errors.New("transport: malformed frame addresses")
		} else {
			payload, err = e.net.opts.codec.Decode(buf[k1+k2:])
		}
		*bp = buf
		frameBufPool.Put(bp)
		if err != nil {
			// Framing is intact (the length prefix was honored), so a
			// payload that fails to decode is dropped like a lost message
			// rather than killing every other request on the connection.
			continue
		}
		select {
		case e.in <- Message{From: Addr(from), To: Addr(to), Payload: payload}:
		default:
			// Inbox full: drop, like the in-memory transport.
		}
	}
}

// close tears the endpoint down: listener first (stops accepts), then
// every pooled connection; read loops exit on their closed connections.
func (e *TCPEndpoint) close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		e.done.Wait()
		return
	}
	e.closed = true
	var conns []*wireConn
	//lint:ignore detrand shutdown fan-out: close order is not observable in any seed-reproducible output
	for _, r := range e.routes {
		conns = append(conns, r.conns...)
	}
	e.mu.Unlock()
	if e.ln != nil {
		_ = e.ln.Close()
	}
	for _, wc := range conns {
		_ = wc.c.Close()
	}
	e.done.Wait()
}
