package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// wireMessage is the gob frame exchanged between TCP endpoints. Payload
// concrete types must be registered with RegisterWireType before use.
type wireMessage struct {
	From    Addr
	To      Addr
	Payload any
}

// RegisterWireType registers a payload's concrete type for gob transfer
// over the TCP transport. It must be called (by both ends) for every
// payload type before sending; packages defining payloads expose a
// RegisterWireTypes helper.
func RegisterWireType(value any) {
	gob.Register(value)
}

// TCPNetwork is a real-sockets counterpart to Network: every endpoint is a
// TCP listener on the loopback interface, and Send dials (and caches) a
// connection to the destination, framing payloads with encoding/gob. It
// exists to demonstrate that the protocol stack is transport-agnostic; the
// in-memory Network remains the default for simulations because it can
// inject faults deterministically.
type TCPNetwork struct {
	mu        sync.Mutex
	listeners map[Addr]*TCPEndpoint
	closed    bool
}

// NewTCPNetwork creates an empty TCP transport registry.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{listeners: make(map[Addr]*TCPEndpoint)}
}

// TCPEndpoint is one TCP-backed attachment point.
type TCPEndpoint struct {
	addr Addr
	net  *TCPNetwork
	ln   net.Listener
	in   chan Message

	mu      sync.Mutex
	conns   map[Addr]*outConn
	inbound map[net.Conn]struct{}
	done    sync.WaitGroup
}

var _ Conn = (*TCPEndpoint)(nil)

// outConn is a cached outbound connection with its encoder.
type outConn struct {
	c   net.Conn
	enc *gob.Encoder
}

// Register creates an endpoint listening on an ephemeral loopback port.
func (n *TCPNetwork) Register(addr Addr) (*TCPEndpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateAddr, addr)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	ep := &TCPEndpoint{
		addr:    addr,
		net:     n,
		ln:      ln,
		in:      make(chan Message, 1024),
		conns:   make(map[Addr]*outConn),
		inbound: make(map[net.Conn]struct{}),
	}
	n.listeners[addr] = ep
	ep.done.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

// lookup resolves an address to its listener's TCP address.
func (n *TCPNetwork) lookup(addr Addr) (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ep, ok := n.listeners[addr]
	if !ok {
		return "", fmt.Errorf("%w: %d", ErrUnknownAddr, addr)
	}
	return ep.ln.Addr().String(), nil
}

// Close shuts down every endpoint.
func (n *TCPNetwork) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	eps := make([]*TCPEndpoint, 0, len(n.listeners))
	for _, ep := range n.listeners {
		eps = append(eps, ep)
	}
	n.mu.Unlock()
	for _, ep := range eps {
		ep.close()
	}
}

// Addr returns the endpoint's logical address.
func (e *TCPEndpoint) Addr() Addr { return e.addr }

// Recv returns the endpoint's delivery channel.
func (e *TCPEndpoint) Recv() <-chan Message { return e.in }

// Send gob-encodes the payload and writes it to a cached (or fresh)
// connection to the destination. A broken cached connection is dropped and
// redialed once.
func (e *TCPEndpoint) Send(to Addr, payload any) error {
	msg := wireMessage{From: e.addr, To: to, Payload: payload}
	for attempt := 0; attempt < 2; attempt++ {
		oc, fresh, err := e.conn(to)
		if err != nil {
			return err
		}
		e.mu.Lock()
		err = oc.enc.Encode(msg)
		e.mu.Unlock()
		if err == nil {
			return nil
		}
		e.dropConn(to, oc)
		if fresh {
			return fmt.Errorf("transport: send to %d: %w", to, err)
		}
	}
	return fmt.Errorf("transport: send to %d: retries exhausted", to)
}

// conn returns a cached connection to the destination, dialing if needed.
// fresh reports whether the connection was just dialed.
func (e *TCPEndpoint) conn(to Addr) (oc *outConn, fresh bool, err error) {
	e.mu.Lock()
	if oc, ok := e.conns[to]; ok {
		e.mu.Unlock()
		return oc, false, nil
	}
	e.mu.Unlock()

	target, err := e.net.lookup(to)
	if err != nil {
		return nil, false, err
	}
	c, err := net.Dial("tcp", target)
	if err != nil {
		return nil, false, fmt.Errorf("transport: dial %d: %w", to, err)
	}
	oc = &outConn{c: c, enc: gob.NewEncoder(c)}

	e.mu.Lock()
	defer e.mu.Unlock()
	if existing, ok := e.conns[to]; ok {
		_ = c.Close() // lost the race; reuse the winner
		return existing, false, nil
	}
	e.conns[to] = oc
	return oc, true, nil
}

// dropConn evicts a broken cached connection.
func (e *TCPEndpoint) dropConn(to Addr, oc *outConn) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.conns[to]; ok && cur == oc {
		_ = cur.c.Close()
		delete(e.conns, to)
	}
}

// acceptLoop serves inbound connections until the listener closes.
func (e *TCPEndpoint) acceptLoop() {
	defer e.done.Done()
	for {
		c, err := e.ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		e.done.Add(1)
		go e.serve(c)
	}
}

// serve decodes frames from one inbound connection into the inbox.
func (e *TCPEndpoint) serve(c net.Conn) {
	defer e.done.Done()
	defer c.Close()
	e.mu.Lock()
	e.inbound[c] = struct{}{}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.inbound, c)
		e.mu.Unlock()
	}()
	dec := gob.NewDecoder(c)
	for {
		var msg wireMessage
		if err := dec.Decode(&msg); err != nil {
			return
		}
		select {
		case e.in <- Message{From: msg.From, To: msg.To, Payload: msg.Payload}:
		default:
			// Inbox full: drop, like the in-memory transport.
		}
	}
}

// close tears the endpoint down: listener first (stops accepts), then
// outbound connections. Inbound serve goroutines exit on their closed
// connections' read errors.
func (e *TCPEndpoint) close() {
	_ = e.ln.Close()
	e.mu.Lock()
	for to, oc := range e.conns {
		_ = oc.c.Close()
		delete(e.conns, to)
	}
	for c := range e.inbound {
		_ = c.Close()
	}
	e.mu.Unlock()
	e.done.Wait()
}
