package transport

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestSendAndReceive(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "hello"); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Recv():
		if msg.From != 1 || msg.To != 2 || msg.Payload != "hello" {
			t.Errorf("got %+v", msg)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
	st := n.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Dropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDrawJitterDeterministicPerSeed(t *testing.T) {
	for _, dist := range []JitterDist{JitterUniform, JitterExponential, JitterPareto} {
		r1 := rand.New(rand.NewSource(7))
		r2 := rand.New(rand.NewSource(7))
		for i := 0; i < 200; i++ {
			a := drawJitter(r1, dist, 10*time.Millisecond)
			b := drawJitter(r2, dist, 10*time.Millisecond)
			if a != b {
				t.Fatalf("dist %d draw %d: %v != %v with equal seeds", dist, i, a, b)
			}
		}
	}
}

func TestDrawJitterBoundsAndTails(t *testing.T) {
	const jitter = 10 * time.Millisecond
	caps := map[JitterDist]time.Duration{
		JitterUniform:     jitter,
		JitterExponential: 8 * jitter,
		JitterPareto:      16 * jitter,
	}
	for dist, cap := range caps {
		rng := rand.New(rand.NewSource(42))
		var overBase int
		for i := 0; i < 5000; i++ {
			d := drawJitter(rng, dist, jitter)
			if d < 0 || d > cap {
				t.Fatalf("dist %d drew %v outside [0, %v]", dist, d, cap)
			}
			if d > jitter {
				overBase++
			}
		}
		if dist == JitterUniform && overBase != 0 {
			t.Errorf("uniform drew %d samples above the jitter bound", overBase)
		}
		// The shaped distributions must actually produce a tail beyond the
		// uniform bound, else hedging benchmarks measure nothing.
		if dist != JitterUniform && overBase == 0 {
			t.Errorf("dist %d produced no delays above %v in 5000 draws", dist, jitter)
		}
	}
}

func TestJitterDistributionOptionWiring(t *testing.T) {
	n := NewNetwork(WithSeed(3), WithLatency(0, time.Microsecond), WithJitterDistribution(JitterPareto))
	defer n.Close()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
	// Pareto's minimum is jitter/4 > 0, so the delivery must be counted as
	// delayed.
	if st := n.Stats(); st.Delayed != 1 {
		t.Errorf("stats = %+v, want Delayed=1", st)
	}
}

func TestRegisterDuplicate(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	if _, err := n.Register(1); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(1); !errors.Is(err, ErrDuplicateAddr) {
		t.Errorf("err = %v, want ErrDuplicateAddr", err)
	}
}

func TestSendUnknownDestination(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(9, "x"); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("err = %v, want ErrUnknownAddr", err)
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestClosedNetwork(t *testing.T) {
	n := NewNetwork()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(2); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close() // idempotent
	if err := a.Send(2, "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if _, err := n.Register(3); !errors.Is(err, ErrClosed) {
		t.Errorf("register after close: %v", err)
	}
}

func TestLatency(t *testing.T) {
	n := NewNetwork(WithLatency(30*time.Millisecond, 0))
	defer n.Close()
	a, _ := n.Register(1)
	b, _ := n.Register(2)
	start := time.Now()
	if err := a.Send(2, "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
			t.Errorf("delivered after %v, want ≥ ~30ms", elapsed)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
}

func TestLatencyWithJitter(t *testing.T) {
	n := NewNetwork(WithLatency(5*time.Millisecond, 10*time.Millisecond), WithSeed(3))
	defer n.Close()
	a, _ := n.Register(1)
	b, _ := n.Register(2)
	for i := 0; i < 5; i++ {
		if err := a.Send(2, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		select {
		case <-b.Recv():
		case <-time.After(time.Second):
			t.Fatal("message not delivered")
		}
	}
}

func TestDropProbability(t *testing.T) {
	n := NewNetwork(WithDropProbability(1), WithSeed(1))
	defer n.Close()
	a, _ := n.Register(1)
	b, _ := n.Register(2)
	if err := a.Send(2, "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Recv():
		t.Errorf("message %v delivered despite 100%% loss", msg)
	case <-time.After(50 * time.Millisecond):
	}
	if st := n.Stats(); st.Dropped != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Register(1)
	b, _ := n.Register(2)
	c, _ := n.Register(3)

	n.Partition([]Addr{1}, []Addr{2, 3})
	if err := a.Send(2, "blocked"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Error("cross-partition message delivered")
	case <-time.After(30 * time.Millisecond):
	}
	// Same-group traffic flows.
	if err := b.Send(3, "ok"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Recv():
	case <-time.After(time.Second):
		t.Fatal("same-partition message lost")
	}

	n.Heal()
	if err := a.Send(2, "healed"); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Recv():
		if msg.Payload != "healed" {
			t.Errorf("got %v", msg.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("post-heal message lost")
	}
}

func TestUnlistedAddressesFormImplicitGroup(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, _ := n.Register(1)
	b, _ := n.Register(2)
	n.Partition([]Addr{3}) // neither 1 nor 2 listed → both in group 0
	if err := a.Send(2, "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
	case <-time.After(time.Second):
		t.Fatal("implicit-group message lost")
	}
}

func TestBufferOverflowDrops(t *testing.T) {
	n := NewNetwork(WithBufferSize(2))
	defer n.Close()
	a, _ := n.Register(1)
	if _, err := n.Register(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := a.Send(2, i); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.Delivered != 2 || st.Dropped != 3 {
		t.Errorf("stats = %+v, want 2 delivered / 3 dropped", st)
	}
}

func TestEndpointAddr(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	e, _ := n.Register(7)
	if e.Addr() != 7 {
		t.Errorf("Addr = %v", e.Addr())
	}
}

func TestLinkLatencyTopology(t *testing.T) {
	// Sites 1,2 share a zone; site 3 is remote: cross-zone links cost 40ms.
	zone := func(a Addr) int {
		if a <= 2 {
			return 0
		}
		return 1
	}
	n := NewNetwork(WithLinkLatency(func(from, to Addr) time.Duration {
		if zone(from) != zone(to) {
			return 40 * time.Millisecond
		}
		return 0
	}))
	defer n.Close()
	a, _ := n.Register(1)
	b, _ := n.Register(2)
	c, _ := n.Register(3)

	start := time.Now()
	if err := a.Send(2, "local"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		if e := time.Since(start); e > 20*time.Millisecond {
			t.Errorf("intra-zone delivery took %v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("local message lost")
	}

	start = time.Now()
	if err := a.Send(3, "remote"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-c.Recv():
		if e := time.Since(start); e < 35*time.Millisecond {
			t.Errorf("cross-zone delivery took only %v, want ≥ ~40ms", e)
		}
	case <-time.After(time.Second):
		t.Fatal("remote message lost")
	}
}
