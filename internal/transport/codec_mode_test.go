package transport

import (
	"bytes"
	"testing"
	"time"

	"arbor/internal/wire"
)

// TestWireCodecModeRoundTrips: with WithWireCodec armed, the receiver gets
// what the codec would decode from the sender's bytes — not the sender's
// pointer — and the encoded volume shows up in Stats.WireBytes.
func TestWireCodecModeRoundTrips(t *testing.T) {
	n := NewNetwork(WithWireCodec(wire.Binary()))
	defer n.Close()
	a, err := n.Dial(-1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen(2)
	if err != nil {
		t.Fatal(err)
	}

	sent := wire.CommitReq{ReqID: 9, TxID: 4, Key: "k", Value: []byte("payload"), TS: wire.Timestamp{Version: 3, Site: -1}}
	if err := a.Send(2, sent); err != nil {
		t.Fatal(err)
	}

	var got wire.CommitReq
	select {
	case msg := <-b.Recv():
		var ok bool
		got, ok = msg.Payload.(wire.CommitReq)
		if !ok {
			t.Fatalf("payload is %T, want wire.CommitReq", msg.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
	if got.Key != "k" || string(got.Value) != "payload" || got.TS != sent.TS {
		t.Errorf("got %+v, want %+v", got, sent)
	}
	// The delivered value came through Decode, which never aliases: mutating
	// the sender's buffer after Send must not reach the receiver's copy.
	sent.Value[0] = 'X'
	if !bytes.Equal(got.Value, []byte("payload")) {
		t.Error("receiver's value aliases the sender's buffer")
	}

	enc, err := wire.Binary().Encode(nil, wire.CommitReq{ReqID: 9, TxID: 4, Key: "k", Value: []byte("Xayload"), TS: sent.TS})
	if err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st.WireBytes != uint64(len(enc)) {
		t.Errorf("WireBytes = %d, want %d (one encoded CommitReq)", st.WireBytes, len(enc))
	}
}

// TestWireCodecModeRejectsUnencodable: a payload outside the codec's closed
// message set fails at Send — the caller finds out immediately, exactly as a
// real transport would refuse it.
func TestWireCodecModeRejectsUnencodable(t *testing.T) {
	n := NewNetwork(WithWireCodec(wire.Binary()))
	defer n.Close()
	a, err := n.Dial(-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen(2); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(2, "not a wire message"); err == nil {
		t.Fatal("unencodable payload accepted")
	}
	if st := n.Stats(); st.Sent != 0 || st.WireBytes != 0 {
		t.Errorf("stats after refused send = %+v, want zeroes", st)
	}
}

// TestWireCodecModeOffByDefault: without the option, payloads pass by
// reference and no wire volume is counted.
func TestWireCodecModeOffByDefault(t *testing.T) {
	n := NewNetwork()
	defer n.Close()
	a, err := n.Dial(-1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Listen(2)
	if err != nil {
		t.Fatal(err)
	}
	value := []byte("shared")
	if err := a.Send(2, wire.ReadResp{Key: "k", Value: value, Found: true}); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-b.Recv():
		if &msg.Payload.(wire.ReadResp).Value[0] != &value[0] {
			t.Error("payload was copied with no codec armed")
		}
	case <-time.After(time.Second):
		t.Fatal("message not delivered")
	}
	if st := n.Stats(); st.WireBytes != 0 {
		t.Errorf("WireBytes = %d with no codec armed", st.WireBytes)
	}
}
