// Package transport provides the message substrate the simulated replicas
// communicate over: an in-memory network of addressable endpoints with
// configurable latency, jitter, message loss and partitions. The paper's
// system model — sites exchanging messages over bidirectional links that may
// drop, delay or partition — maps directly onto it.
package transport

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"arbor/internal/wire"
)

// Addr addresses an endpoint. Clusters map replica site IDs onto positive
// addresses and clients onto negative ones.
type Addr int

// Message is a delivered payload with its source and destination.
type Message struct {
	From    Addr
	To      Addr
	Payload any
}

// Errors returned by Send and Register.
var (
	ErrClosed        = errors.New("transport: network closed")
	ErrUnknownAddr   = errors.New("transport: unknown destination")
	ErrDuplicateAddr = errors.New("transport: address already registered")
)

// Option configures a Network.
type Option interface {
	apply(*options)
}

type options struct {
	latency    time.Duration
	jitter     time.Duration
	jitterDist JitterDist
	linkFn     func(from, to Addr) time.Duration
	dropProb   float64
	seed       int64
	bufferSize int
	codec      wire.Codec
}

type latencyOption struct{ base, jitter time.Duration }

func (o latencyOption) apply(opts *options) { opts.latency, opts.jitter = o.base, o.jitter }

// WithLatency makes every delivery wait base plus a uniform random jitter.
func WithLatency(base, jitter time.Duration) Option { return latencyOption{base: base, jitter: jitter} }

type linkLatencyOption func(from, to Addr) time.Duration

func (o linkLatencyOption) apply(opts *options) { opts.linkFn = o }

// WithLinkLatency adds a per-link delay on top of the base latency, letting
// tests model geographic topologies (e.g. fast intra-zone links, slow
// cross-zone ones). The function must be safe for concurrent use.
func WithLinkLatency(fn func(from, to Addr) time.Duration) Option { return linkLatencyOption(fn) }

// JitterDist shapes the random component of per-message delay. Every draw
// comes from the network's seeded RNG, so a given seed replays the same
// delay sequence regardless of distribution — the chaos harness depends on
// this to reproduce tail-latency scenarios exactly.
type JitterDist int

// Jitter distributions.
const (
	// JitterUniform draws uniformly from [0, jitter) — the default.
	JitterUniform JitterDist = iota
	// JitterExponential draws from an exponential with mean jitter,
	// truncated at 8× jitter: occasional stragglers, thin tail.
	JitterExponential
	// JitterPareto draws from a Pareto (α=1.3, minimum jitter/4) truncated
	// at 16× jitter: the heavy tail that makes hedging earn its keep.
	JitterPareto
)

// String names the distribution in the form ParseJitterDist reads.
func (d JitterDist) String() string {
	switch d {
	case JitterExponential:
		return "exponential"
	case JitterPareto:
		return "pareto"
	default:
		return "uniform"
	}
}

// ParseJitterDist resolves a distribution by name. It is the inverse of
// JitterDist.String, so configuration front ends (simrun flags, scenario
// files) can round-trip the choice textually.
func ParseJitterDist(name string) (JitterDist, error) {
	switch name {
	case "", "uniform":
		return JitterUniform, nil
	case "exponential":
		return JitterExponential, nil
	case "pareto":
		return JitterPareto, nil
	default:
		return 0, fmt.Errorf("transport: unknown jitter distribution %q (want uniform, exponential or pareto)", name)
	}
}

// drawJitter samples one delay from the distribution. Factored out so the
// distributions are unit-testable; callers hold the RNG's lock.
func drawJitter(rng *rand.Rand, dist JitterDist, jitter time.Duration) time.Duration {
	switch dist {
	case JitterExponential:
		d := time.Duration(rng.ExpFloat64() * float64(jitter))
		if max := 8 * jitter; d > max {
			d = max
		}
		return d
	case JitterPareto:
		// Inverse-CDF sampling: x = xm / U^(1/α).
		const alpha = 1.3
		xm := float64(jitter) / 4
		u := rng.Float64()
		if u == 0 {
			u = 1
		}
		d := time.Duration(xm * math.Pow(u, -1/alpha))
		if max := 16 * jitter; d > max {
			d = max
		}
		return d
	default:
		return time.Duration(rng.Int63n(int64(jitter)))
	}
}

type jitterDistOption JitterDist

func (o jitterDistOption) apply(opts *options) { opts.jitterDist = JitterDist(o) }

// WithJitterDistribution selects the shape of the random delay component
// configured by WithLatency (default JitterUniform). The draws consume the
// network's seeded RNG, so runs stay reproducible per seed.
func WithJitterDistribution(d JitterDist) Option { return jitterDistOption(d) }

type dropOption float64

func (o dropOption) apply(opts *options) { opts.dropProb = float64(o) }

// WithDropProbability drops each message independently with probability p.
func WithDropProbability(p float64) Option { return dropOption(p) }

type seedOption int64

func (o seedOption) apply(opts *options) { opts.seed = int64(o) }

// WithSeed fixes the RNG used for jitter and message loss, making runs
// reproducible.
func WithSeed(seed int64) Option { return seedOption(seed) }

type bufferOption int

func (o bufferOption) apply(opts *options) { opts.bufferSize = int(o) }

// WithBufferSize sets each endpoint's inbox capacity. When an inbox is full
// further messages to it are dropped (and counted), like a congested link.
func WithBufferSize(n int) Option { return bufferOption(n) }

type codecOption struct{ c wire.Codec }

func (o codecOption) apply(opts *options) { opts.codec = o.c }

// WithWireCodec makes every delivery round-trip through the given codec
// (encode, then decode the bytes the receiver would see) instead of
// handing the payload pointer across. It costs the serialization work real
// deployments pay, which is the point: the whole simulation stack — chaos
// schedules included — exercises the codec end to end, and the encoded
// volume shows up in Stats.WireBytes. Off by default; the -codec flags on
// arbord and simrun switch it on.
func WithWireCodec(c wire.Codec) Option { return codecOption{c: c} }

// Stats counts network activity. Dropped counts both random loss and
// partition/congestion drops. Delayed counts messages whose delivery was
// deferred by latency, jitter or per-link delay. WireBytes accumulates the
// encoded size of every message when a codec is armed (WithWireCodec), and
// stays zero otherwise.
type Stats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	Delayed   uint64
	WireBytes uint64
}

// Network is an in-memory message network.
type Network struct {
	mu        sync.Mutex
	opts      options
	rng       *rand.Rand
	endpoints map[Addr]*Endpoint
	groups    map[Addr]int // partition group per address; absent = group 0
	stats     Stats
	closed    bool
	pending   sync.WaitGroup
}

// NewNetwork creates a network. By default delivery is immediate, lossless
// and unpartitioned.
func NewNetwork(opts ...Option) *Network {
	o := options{bufferSize: 1024, seed: 1}
	for _, opt := range opts {
		opt.apply(&o)
	}
	return &Network{
		opts:      o,
		rng:       rand.New(rand.NewSource(o.seed)),
		endpoints: make(map[Addr]*Endpoint),
		groups:    make(map[Addr]int),
	}
}

// Endpoint is one attachment point on the network.
type Endpoint struct {
	addr Addr
	net  *Network
	in   chan Message
}

// Listen implements Transport. On the in-memory network every endpoint is
// reachable by address, so Listen and Dial are both Register.
func (n *Network) Listen(addr Addr) (Conn, error) { return n.Register(addr) }

// Dial implements Transport; see Listen.
func (n *Network) Dial(addr Addr) (Conn, error) { return n.Register(addr) }

// Register attaches a new endpoint at the given address.
func (n *Network) Register(addr Addr) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("%w: %d", ErrDuplicateAddr, addr)
	}
	ep := &Endpoint{addr: addr, net: n, in: make(chan Message, n.opts.bufferSize)}
	n.endpoints[addr] = ep
	return ep, nil
}

// Partition splits the network into the given groups of addresses; messages
// crossing group boundaries are dropped. Addresses not listed form an
// implicit extra group. Heal() removes the partition.
func (n *Network) Partition(groups ...[]Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = make(map[Addr]int)
	for gi, group := range groups {
		for _, a := range group {
			n.groups[a] = gi + 1
		}
	}
}

// Heal removes any partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.groups = make(map[Addr]int)
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close stops the network. In-flight delayed messages are waited for (they
// are dropped if their destination buffer is gone). Further sends fail with
// ErrClosed.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.pending.Wait()
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// Recv returns the endpoint's delivery channel.
func (e *Endpoint) Recv() <-chan Message { return e.in }

// Send transmits a payload to another endpoint, subject to the network's
// loss, latency and partition behaviour. A nil error means the message was
// accepted by the network, not that it will be delivered.
func (e *Endpoint) Send(to Addr, payload any) error {
	n := e.net
	wireBytes := 0
	if c := n.opts.codec; c != nil {
		// Codec fidelity mode: deliver what the receiver would decode, not
		// the sender's pointer. Encode buffers are pooled; Decode copies.
		bp := frameBufPool.Get().(*[]byte)
		buf, err := c.Encode((*bp)[:0], payload)
		if err == nil {
			payload, err = c.Decode(buf)
		}
		wireBytes = len(buf)
		*bp = buf
		frameBufPool.Put(bp)
		if err != nil {
			return fmt.Errorf("transport: codec round-trip to %d: %w", to, err)
		}
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	n.stats.Sent++
	n.stats.WireBytes += uint64(wireBytes)
	dst, ok := n.endpoints[to]
	if !ok {
		n.stats.Dropped++
		n.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownAddr, to)
	}
	if n.groups[e.addr] != n.groups[to] {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil // partitioned: silently lost, like a real link
	}
	if n.opts.dropProb > 0 && n.rng.Float64() < n.opts.dropProb {
		n.stats.Dropped++
		n.mu.Unlock()
		return nil
	}
	delay := n.opts.latency
	if n.opts.jitter > 0 {
		delay += drawJitter(n.rng, n.opts.jitterDist, n.opts.jitter)
	}
	if n.opts.linkFn != nil {
		delay += n.opts.linkFn(e.addr, to)
	}
	msg := Message{From: e.addr, To: to, Payload: payload}
	if delay <= 0 {
		n.deliverLocked(dst, msg)
		n.mu.Unlock()
		return nil
	}
	n.stats.Delayed++
	n.pending.Add(1)
	n.mu.Unlock()
	time.AfterFunc(delay, func() {
		defer n.pending.Done()
		n.mu.Lock()
		defer n.mu.Unlock()
		n.deliverLocked(dst, msg)
	})
	return nil
}

// deliverLocked places the message in the destination buffer or drops it if
// the buffer is full. Callers hold n.mu.
func (n *Network) deliverLocked(dst *Endpoint, msg Message) {
	select {
	case dst.in <- msg:
		n.stats.Delivered++
	default:
		n.stats.Dropped++
	}
}
