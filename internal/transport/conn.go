package transport

// Conn is one attachment point on a message transport — the interface
// replicas and clients speak. The in-memory Endpoint and the TCPEndpoint
// both implement it.
type Conn interface {
	// Addr returns the endpoint's address.
	Addr() Addr
	// Send transmits a payload to another endpoint. A nil error means the
	// message was accepted by the transport, not that it will arrive.
	Send(to Addr, payload any) error
	// Recv returns the endpoint's delivery channel.
	Recv() <-chan Message
}

var _ Conn = (*Endpoint)(nil)
