package transport

// Conn is one attachment point on a message transport — the interface
// replicas and clients speak. The in-memory Endpoint and the TCPEndpoint
// both implement it.
type Conn interface {
	// Addr returns the endpoint's address.
	Addr() Addr
	// Send transmits a payload to another endpoint. A nil error means the
	// message was accepted by the transport, not that it will arrive.
	Send(to Addr, payload any) error
	// Recv returns the endpoint's delivery channel.
	Recv() <-chan Message
}

// Transport constructs connections: the one shape cluster, sim and the
// daemons build endpoints through, whether the substrate is the in-memory
// network or real TCP sockets. Both methods take the LOCAL address the
// endpoint will answer to — the transport model is addressed actors, not
// point-to-point sockets.
type Transport interface {
	// Listen attaches a server endpoint at addr: peers can reach it by
	// address without prior contact. Replicas listen.
	Listen(addr Addr) (Conn, error)
	// Dial attaches a client endpoint at addr: it can reach listeners,
	// and replies flow back over the connections it initiates, but peers
	// cannot open contact with it. Clients dial.
	Dial(addr Addr) (Conn, error)
	// Close shuts the transport and every endpoint down.
	Close()
}

var (
	_ Conn      = (*Endpoint)(nil)
	_ Transport = (*Network)(nil)
	_ Transport = (*TCPNetwork)(nil)
)
