package transport

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"arbor/internal/wire"
)

func countGoroutines() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

// ping builds a distinguishable protocol message; the codec's message set is
// closed, so tests speak real wire types.
func ping(n int) wire.PingReq { return wire.PingReq{ReqID: uint64(n)} }

func newTCPPair(t *testing.T) (*TCPNetwork, *TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	n := NewTCPNetwork()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, a, b
}

func recvOne(t *testing.T, ep *TCPEndpoint) Message {
	t.Helper()
	select {
	case msg := <-ep.Recv():
		return msg
	case <-time.After(2 * time.Second):
		t.Fatal("no message delivered")
		return Message{}
	}
}

func TestTCPSendReceive(t *testing.T) {
	_, a, b := newTCPPair(t)
	if err := a.Send(2, wire.ReadReq{ReqID: 7, Key: "hello"}); err != nil {
		t.Fatal(err)
	}
	msg := recvOne(t, b)
	if msg.From != 1 || msg.To != 2 {
		t.Errorf("envelope = %+v", msg)
	}
	p, ok := msg.Payload.(wire.ReadReq)
	if !ok || p.Key != "hello" || p.ReqID != 7 {
		t.Errorf("payload = %#v", msg.Payload)
	}
}

func TestTCPBidirectional(t *testing.T) {
	_, a, b := newTCPPair(t)
	if err := a.Send(2, ping(1)); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); got.Payload.(wire.PingReq).ReqID != 1 {
		t.Fatal("ping lost")
	}
	if err := b.Send(1, wire.PingResp{ReqID: 1}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, a); got.Payload.(wire.PingResp).ReqID != 1 {
		t.Fatal("pong lost")
	}
}

func TestTCPManyMessagesReuseConnections(t *testing.T) {
	n, a, b := newTCPPair(t)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(2, ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool, count)
	for i := 0; i < count; i++ {
		msg := recvOne(t, b)
		seen[msg.Payload.(wire.PingReq).ReqID] = true
	}
	if len(seen) != count {
		t.Errorf("received %d distinct messages, want %d", len(seen), count)
	}
	// The pool is bounded: many pipelined messages share the configured
	// number of connections instead of opening one per request.
	if conns := a.Conns(); conns > n.opts.connsPerPeer {
		t.Errorf("pooled %d connections, want at most %d", conns, n.opts.connsPerPeer)
	}
}

func TestTCPUnknownDestination(t *testing.T) {
	_, a, _ := newTCPPair(t)
	if err := a.Send(99, ping(0)); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("err = %v, want ErrUnknownAddr", err)
	}
}

func TestTCPDuplicateRegister(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	if _, err := n.Register(5); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(5); !errors.Is(err, ErrDuplicateAddr) {
		t.Errorf("err = %v, want ErrDuplicateAddr", err)
	}
	if _, err := n.Dial(5); !errors.Is(err, ErrDuplicateAddr) {
		t.Errorf("dial err = %v, want ErrDuplicateAddr", err)
	}
}

func TestTCPCloseIsIdempotentAndStopsRegister(t *testing.T) {
	n := NewTCPNetwork()
	if _, err := n.Register(1); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close()
	if _, err := n.Register(2); !errors.Is(err, ErrClosed) {
		t.Errorf("register after close: %v", err)
	}
}

// TestTCPDialOnlyEndpointHearsReplies exercises the client shape: a
// dial-only endpoint (no listener) sends to a listener and receives the
// reply over the connection it opened, routed by the HELLO's address.
func TestTCPDialOnlyEndpointHearsReplies(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	srvConn, err := n.Listen(7)
	if err != nil {
		t.Fatal(err)
	}
	srv := srvConn.(*TCPEndpoint)
	cliConn, err := n.Dial(-3)
	if err != nil {
		t.Fatal(err)
	}
	cli := cliConn.(*TCPEndpoint)

	if err := cli.Send(7, ping(42)); err != nil {
		t.Fatal(err)
	}
	msg := recvOne(t, srv)
	if msg.From != -3 {
		t.Fatalf("server saw sender %d, want -3", msg.From)
	}
	if err := srv.Send(-3, wire.PingResp{ReqID: 42}); err != nil {
		t.Fatal(err)
	}
	reply := recvOne(t, cli)
	if reply.Payload.(wire.PingResp).ReqID != 42 {
		t.Fatalf("reply = %#v", reply.Payload)
	}
	// The reply must have reused the dialer's connection: the server never
	// dials back (the client has no listener), so its pool holds only
	// accepted connections.
	if srv.Conns() < 1 {
		t.Error("server pooled no connection for the reply route")
	}
}

func TestTCPCodecMismatchRefusesConnection(t *testing.T) {
	nBin := NewTCPNetwork()
	defer nBin.Close()
	srv, err := nBin.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	// A second registry speaking gob, sharing the listener table by dialing
	// the binary listener's port directly: simulate by pointing a gob
	// network's lookup at the same endpoint via a cross-registered address.
	nGob := NewTCPNetwork(WithTCPCodec(wire.Gob()))
	defer nGob.Close()
	cli, err := nGob.Dial(-1)
	if err != nil {
		t.Fatal(err)
	}
	// Splice the binary listener into the gob registry so Dial can route.
	nGob.mu.Lock()
	nGob.listeners[1] = srv
	nGob.mu.Unlock()

	cep := cli.(*TCPEndpoint)
	_ = cep.Send(1, ping(1)) // first write may succeed into OS buffers
	// The acceptor must refuse the handshake: nothing is delivered and the
	// mismatch surfaces as a dead connection on retry.
	select {
	case msg := <-srv.Recv():
		t.Fatalf("mismatched codec delivered %#v", msg.Payload)
	case <-time.After(300 * time.Millisecond):
	}
}

func TestTCPSendAfterPeerGone(t *testing.T) {
	n := NewTCPNetwork()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := a.Send(2, ping(0)); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	// Kill b's side; a's pooled connections eventually break. Send may need
	// a few attempts before the OS surfaces the reset, but must not panic
	// or hang.
	b.close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := a.Send(2, ping(1)); err != nil {
			return // surfaced the broken peer
		}
	}
	t.Log("sends kept succeeding into OS buffers; acceptable for a datagram-like API")
}

func TestTCPConcurrentSenders(t *testing.T) {
	_, a, b := newTCPPair(t)
	const (
		workers = 8
		each    = 50
	)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if err := a.Send(2, ping(w*each+i)); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers*each; i++ {
		recvOne(t, b)
	}
}

// TestTCPCloseStopsGoroutines guards against leaked accept/read loops.
func TestTCPCloseStopsGoroutines(t *testing.T) {
	baseline := countGoroutines()
	n := NewTCPNetwork()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send(2, ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		recvOne(t, b)
	}
	n.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if countGoroutines() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: baseline %d, after close %d", baseline, countGoroutines())
}
