package transport

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

func countGoroutines() int {
	runtime.GC()
	return runtime.NumGoroutine()
}

type tcpPayload struct {
	Text string
	Num  int
}

func init() {
	// gob registration is the documented exception to the no-init rule:
	// an encoding type registry.
	RegisterWireType(tcpPayload{})
}

func newTCPPair(t *testing.T) (*TCPNetwork, *TCPEndpoint, *TCPEndpoint) {
	t.Helper()
	n := NewTCPNetwork()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, a, b
}

func recvOne(t *testing.T, ep *TCPEndpoint) Message {
	t.Helper()
	select {
	case msg := <-ep.Recv():
		return msg
	case <-time.After(2 * time.Second):
		t.Fatal("no message delivered")
		return Message{}
	}
}

func TestTCPSendReceive(t *testing.T) {
	_, a, b := newTCPPair(t)
	if err := a.Send(2, tcpPayload{Text: "hello", Num: 7}); err != nil {
		t.Fatal(err)
	}
	msg := recvOne(t, b)
	if msg.From != 1 || msg.To != 2 {
		t.Errorf("envelope = %+v", msg)
	}
	p, ok := msg.Payload.(tcpPayload)
	if !ok || p.Text != "hello" || p.Num != 7 {
		t.Errorf("payload = %#v", msg.Payload)
	}
}

func TestTCPBidirectional(t *testing.T) {
	_, a, b := newTCPPair(t)
	if err := a.Send(2, tcpPayload{Text: "ping"}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, b); got.Payload.(tcpPayload).Text != "ping" {
		t.Fatal("ping lost")
	}
	if err := b.Send(1, tcpPayload{Text: "pong"}); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, a); got.Payload.(tcpPayload).Text != "pong" {
		t.Fatal("pong lost")
	}
}

func TestTCPManyMessagesReuseConnection(t *testing.T) {
	_, a, b := newTCPPair(t)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Send(2, tcpPayload{Num: i}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int]bool, count)
	for i := 0; i < count; i++ {
		msg := recvOne(t, b)
		seen[msg.Payload.(tcpPayload).Num] = true
	}
	if len(seen) != count {
		t.Errorf("received %d distinct messages, want %d", len(seen), count)
	}
	// One cached outbound connection suffices.
	a.mu.Lock()
	conns := len(a.conns)
	a.mu.Unlock()
	if conns != 1 {
		t.Errorf("cached %d connections, want 1", conns)
	}
}

func TestTCPUnknownDestination(t *testing.T) {
	_, a, _ := newTCPPair(t)
	if err := a.Send(99, tcpPayload{}); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("err = %v, want ErrUnknownAddr", err)
	}
}

func TestTCPDuplicateRegister(t *testing.T) {
	n := NewTCPNetwork()
	defer n.Close()
	if _, err := n.Register(5); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Register(5); !errors.Is(err, ErrDuplicateAddr) {
		t.Errorf("err = %v, want ErrDuplicateAddr", err)
	}
}

func TestTCPCloseIsIdempotentAndStopsRegister(t *testing.T) {
	n := NewTCPNetwork()
	if _, err := n.Register(1); err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close()
	if _, err := n.Register(2); !errors.Is(err, ErrClosed) {
		t.Errorf("register after close: %v", err)
	}
}

func TestTCPSendAfterPeerGone(t *testing.T) {
	n := NewTCPNetwork()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := a.Send(2, tcpPayload{Text: "warmup"}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	// Kill b's side; a's cached connection eventually breaks. Send may
	// need a few attempts before the OS surfaces the reset, but must not
	// panic or hang.
	b.close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if err := a.Send(2, tcpPayload{Text: "into the void"}); err != nil {
			return // surfaced the broken peer
		}
	}
	t.Log("sends kept succeeding into OS buffers; acceptable for a datagram-like API")
}

func TestTCPConcurrentSenders(t *testing.T) {
	_, a, b := newTCPPair(t)
	const (
		workers = 8
		each    = 50
	)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if err := a.Send(2, tcpPayload{Num: w*each + i}); err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < workers*each; i++ {
		recvOne(t, b)
	}
}

// TestTCPCloseStopsGoroutines guards against leaked accept/serve loops.
func TestTCPCloseStopsGoroutines(t *testing.T) {
	baseline := countGoroutines()
	n := NewTCPNetwork()
	a, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Register(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send(2, tcpPayload{Num: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		recvOne(t, b)
	}
	n.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if countGoroutines() <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines: baseline %d, after close %d", baseline, countGoroutines())
}
