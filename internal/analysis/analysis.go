// Package analysis provides statistical validation of the protocol's
// closed-form metrics at scales where exact enumeration is impossible:
// Monte Carlo availability estimation directly on replica trees, empirical
// load sampling of the paper's strategies, and comparison summaries.
package analysis

import (
	"fmt"
	"math"
	"math/rand"

	"arbor/internal/core"
	"arbor/internal/tree"
)

// Availability is a Monte Carlo estimate of read and write availability.
type Availability struct {
	Read   float64
	Write  float64
	Trials int
}

// MonteCarloAvailability samples world states in which every replica is
// independently up with probability p and reports how often a read quorum
// (one live replica on every physical level) and a write quorum (some level
// fully live) exist. Unlike exact enumeration it scales to arbitrary n.
func MonteCarloAvailability(t *tree.Tree, p float64, trials int, seed int64) (Availability, error) {
	if trials <= 0 {
		return Availability{}, fmt.Errorf("analysis: trials must be positive, got %d", trials)
	}
	if p < 0 || p > 1 {
		return Availability{}, fmt.Errorf("analysis: p=%v outside [0,1]", p)
	}
	levels := t.PhysicalLevels()
	if len(levels) == 0 {
		return Availability{}, fmt.Errorf("analysis: tree %s has no physical levels", t.Spec())
	}
	counts := make([]int, len(levels))
	for i, k := range levels {
		counts[i] = t.PhysCount(k)
	}

	rng := rand.New(rand.NewSource(seed))
	readOK, writeOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		readable, writable := true, false
		for _, c := range counts {
			alive := 0
			for i := 0; i < c; i++ {
				if rng.Float64() < p {
					alive++
				}
			}
			if alive == 0 {
				readable = false
			}
			if alive == c {
				writable = true
			}
		}
		if readable {
			readOK++
		}
		if writable {
			writeOK++
		}
	}
	return Availability{
		Read:   float64(readOK) / float64(trials),
		Write:  float64(writeOK) / float64(trials),
		Trials: trials,
	}, nil
}

// LoadSample is an empirical estimate of the loads induced by the paper's
// uniform strategies.
type LoadSample struct {
	Read  float64
	Write float64
	Ops   int
}

// SampleLoads simulates ops quorum selections under the paper's uniform
// read and write strategies and returns the busiest replica's share for
// each — an empirical check of L_RD = 1/d and L_WR = 1/|K_phy| without
// running a cluster.
func SampleLoads(t *tree.Tree, ops int, seed int64) (LoadSample, error) {
	if ops <= 0 {
		return LoadSample{}, fmt.Errorf("analysis: ops must be positive, got %d", ops)
	}
	proto, err := core.New(t)
	if err != nil {
		return LoadSample{}, err
	}
	rng := rand.New(rand.NewSource(seed))

	readHits := make(map[tree.SiteID]int, t.N())
	for i := 0; i < ops; i++ {
		for _, s := range proto.PickReadQuorum(rng) {
			readHits[s]++
		}
	}
	writeHits := make(map[tree.SiteID]int, t.N())
	for i := 0; i < ops; i++ {
		_, sites := proto.PickWriteQuorum(rng)
		for _, s := range sites {
			writeHits[s]++
		}
	}
	var sample LoadSample
	sample.Ops = ops
	for _, c := range readHits {
		if l := float64(c) / float64(ops); l > sample.Read {
			sample.Read = l
		}
	}
	for _, c := range writeHits {
		if l := float64(c) / float64(ops); l > sample.Write {
			sample.Write = l
		}
	}
	return sample, nil
}

// Validation compares closed-form metrics against their Monte Carlo
// estimates.
type Validation struct {
	N               int
	P               float64
	ReadFormula     float64
	ReadEstimate    float64
	WriteFormula    float64
	WriteEstimate   float64
	ReadLoadFormula float64
	ReadLoadSample  float64
	WriteLoad       float64
	WriteLoadSample float64
}

// MaxError returns the largest absolute deviation between formulas and
// estimates.
func (v Validation) MaxError() float64 {
	errs := []float64{
		math.Abs(v.ReadFormula - v.ReadEstimate),
		math.Abs(v.WriteFormula - v.WriteEstimate),
		math.Abs(v.ReadLoadFormula - v.ReadLoadSample),
		math.Abs(v.WriteLoad - v.WriteLoadSample),
	}
	max := 0.0
	for _, e := range errs {
		if e > max {
			max = e
		}
	}
	return max
}

// Validate runs both Monte Carlo estimators against the closed forms for
// one tree at one availability probability.
func Validate(t *tree.Tree, p float64, trials int, seed int64) (Validation, error) {
	a := core.Analyze(t)
	av, err := MonteCarloAvailability(t, p, trials, seed)
	if err != nil {
		return Validation{}, err
	}
	ls, err := SampleLoads(t, trials, seed+1)
	if err != nil {
		return Validation{}, err
	}
	return Validation{
		N:               t.N(),
		P:               p,
		ReadFormula:     a.ReadAvailability(p),
		ReadEstimate:    av.Read,
		WriteFormula:    a.WriteAvailability(p),
		WriteEstimate:   av.Write,
		ReadLoadFormula: a.ReadLoad,
		ReadLoadSample:  ls.Read,
		WriteLoad:       a.WriteLoad,
		WriteLoadSample: ls.Write,
	}, nil
}

// newRand builds the package's deterministic sampler.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
