package analysis

import (
	"fmt"
	"math"

	"arbor/internal/tree"
)

// CorrelatedAvailability models level-correlated failures — each physical
// level (a rack or availability zone, in the geo mapping) goes down as a
// unit with probability 1−pLevel, instead of the paper's independent
// per-replica failures. Under whole-level outages:
//
//	RD_availability = pLevel^|K_phy|   (a read needs every level)
//	WR_availability = 1 − (1−pLevel)^|K_phy|   (a write needs one level)
//
// Correlation therefore inverts the paper's availability trade-off: reads,
// nearly perfect under independent failures, degrade exponentially in the
// level count, while writes become highly available.
func CorrelatedAvailability(t *tree.Tree, pLevel float64) (read, write float64, err error) {
	if pLevel < 0 || pLevel > 1 {
		return 0, 0, fmt.Errorf("analysis: pLevel=%v outside [0,1]", pLevel)
	}
	k := float64(t.NumPhysicalLevels())
	if k == 0 {
		return 0, 0, fmt.Errorf("analysis: tree %s has no physical levels", t.Spec())
	}
	return math.Pow(pLevel, k), 1 - math.Pow(1-pLevel, k), nil
}

// MonteCarloCorrelated estimates the same quantities by sampling whole-level
// outages, cross-checking the closed forms.
func MonteCarloCorrelated(t *tree.Tree, pLevel float64, trials int, seed int64) (Availability, error) {
	if trials <= 0 {
		return Availability{}, fmt.Errorf("analysis: trials must be positive, got %d", trials)
	}
	if pLevel < 0 || pLevel > 1 {
		return Availability{}, fmt.Errorf("analysis: pLevel=%v outside [0,1]", pLevel)
	}
	k := t.NumPhysicalLevels()
	if k == 0 {
		return Availability{}, fmt.Errorf("analysis: tree %s has no physical levels", t.Spec())
	}
	rng := newRand(seed)
	readOK, writeOK := 0, 0
	for trial := 0; trial < trials; trial++ {
		allUp, anyUp := true, false
		for lvl := 0; lvl < k; lvl++ {
			if rng.Float64() < pLevel {
				anyUp = true
			} else {
				allUp = false
			}
		}
		if allUp {
			readOK++
		}
		if anyUp {
			writeOK++
		}
	}
	return Availability{
		Read:   float64(readOK) / float64(trials),
		Write:  float64(writeOK) / float64(trials),
		Trials: trials,
	}, nil
}
