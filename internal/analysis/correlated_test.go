package analysis

import (
	"math"
	"testing"

	"arbor/internal/core"
	"arbor/internal/tree"
)

func TestCorrelatedAvailabilityClosedForm(t *testing.T) {
	tr := mustTree(t, "1-3-5") // |K_phy| = 2
	read, write, err := CorrelatedAvailability(tr, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(read-0.81) > 1e-12 {
		t.Errorf("read = %v, want 0.81", read)
	}
	if math.Abs(write-0.99) > 1e-12 {
		t.Errorf("write = %v, want 0.99", write)
	}
}

func TestCorrelatedInvertsTheTradeoff(t *testing.T) {
	// Under independent failures reads are nearly perfect and writes
	// fragile; whole-level outages invert that.
	tr, err := tree.Algorithm1(100) // 10 levels
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(tr)
	const p = 0.9
	indRead, indWrite := a.ReadAvailability(p), a.WriteAvailability(p)
	corRead, corWrite, err := CorrelatedAvailability(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if !(indRead > corRead) {
		t.Errorf("correlated outages should hurt reads: independent %v vs correlated %v", indRead, corRead)
	}
	if !(corWrite > indWrite) {
		t.Errorf("correlated outages should help writes: independent %v vs correlated %v", indWrite, corWrite)
	}
}

func TestMonteCarloCorrelatedMatchesClosedForm(t *testing.T) {
	tr := mustTree(t, "1-2-3-4")
	const p = 0.8
	read, write, err := CorrelatedAvailability(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarloCorrelated(tr, p, 200000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mc.Read-read) > 0.01 {
		t.Errorf("MC read %v vs closed form %v", mc.Read, read)
	}
	if math.Abs(mc.Write-write) > 0.01 {
		t.Errorf("MC write %v vs closed form %v", mc.Write, write)
	}
}

func TestCorrelatedValidation(t *testing.T) {
	tr := mustTree(t, "1-2-3")
	if _, _, err := CorrelatedAvailability(tr, -0.1); err == nil {
		t.Error("negative pLevel accepted")
	}
	if _, _, err := CorrelatedAvailability(tr, 1.1); err == nil {
		t.Error("pLevel > 1 accepted")
	}
	if _, err := MonteCarloCorrelated(tr, 0.5, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := MonteCarloCorrelated(tr, 2, 10, 1); err == nil {
		t.Error("pLevel > 1 accepted by MC")
	}
}
