package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"arbor/internal/core"
	"arbor/internal/tree"
)

func mustTree(t *testing.T, spec string) *tree.Tree {
	t.Helper()
	tr, err := tree.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestMonteCarloMatchesFormulasSmall(t *testing.T) {
	tr := mustTree(t, "1-3-5")
	a := core.Analyze(tr)
	for _, p := range []float64{0.6, 0.7, 0.9} {
		av, err := MonteCarloAvailability(tr, p, 200000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(av.Read-a.ReadAvailability(p)) > 0.01 {
			t.Errorf("p=%v: MC read %v vs formula %v", p, av.Read, a.ReadAvailability(p))
		}
		if math.Abs(av.Write-a.WriteAvailability(p)) > 0.01 {
			t.Errorf("p=%v: MC write %v vs formula %v", p, av.Write, a.WriteAvailability(p))
		}
	}
}

// TestMonteCarloLargeTree validates the availability formulas at a size
// (n=400) where exact 2^n enumeration is impossible.
func TestMonteCarloLargeTree(t *testing.T) {
	tr, err := tree.Algorithm1(400)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Analyze(tr)
	const p = 0.8
	av, err := MonteCarloAvailability(tr, p, 100000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(av.Read-a.ReadAvailability(p)) > 0.01 {
		t.Errorf("MC read %v vs formula %v", av.Read, a.ReadAvailability(p))
	}
	if math.Abs(av.Write-a.WriteAvailability(p)) > 0.01 {
		t.Errorf("MC write %v vs formula %v", av.Write, a.WriteAvailability(p))
	}
}

func TestMonteCarloEdgeProbabilities(t *testing.T) {
	tr := mustTree(t, "1-2-4")
	av, err := MonteCarloAvailability(tr, 1, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if av.Read != 1 || av.Write != 1 {
		t.Errorf("p=1 availability = %+v, want 1/1", av)
	}
	av, err = MonteCarloAvailability(tr, 0, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if av.Read != 0 || av.Write != 0 {
		t.Errorf("p=0 availability = %+v, want 0/0", av)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	tr := mustTree(t, "1-2-4")
	if _, err := MonteCarloAvailability(tr, 0.5, 0, 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := MonteCarloAvailability(tr, -0.5, 10, 1); err == nil {
		t.Error("negative p accepted")
	}
	if _, err := MonteCarloAvailability(tr, 1.5, 10, 1); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestSampleLoadsMatchesFormulas(t *testing.T) {
	tr := mustTree(t, "1-3-5")
	a := core.Analyze(tr)
	ls, err := SampleLoads(tr, 60000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ls.Read-a.ReadLoad) > 0.02 {
		t.Errorf("sampled read load %v vs formula %v", ls.Read, a.ReadLoad)
	}
	if math.Abs(ls.Write-a.WriteLoad) > 0.02 {
		t.Errorf("sampled write load %v vs formula %v", ls.Write, a.WriteLoad)
	}
	if _, err := SampleLoads(tr, 0, 1); err == nil {
		t.Error("zero ops accepted")
	}
}

func TestValidateSummary(t *testing.T) {
	tr := mustTree(t, "1-4-4-8")
	v, err := Validate(tr, 0.8, 60000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v.N != 16 || v.P != 0.8 {
		t.Errorf("identity: %+v", v)
	}
	if v.MaxError() > 0.02 {
		t.Errorf("max deviation %v too large: %+v", v.MaxError(), v)
	}
}

// TestQuickMonteCarloAgreesWithFormulas fuzzes random trees and p.
func TestQuickMonteCarloAgreesWithFormulas(t *testing.T) {
	if testing.Short() {
		t.Skip("sampling-heavy")
	}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		counts := make([]int, 1+r.Intn(4))
		for i := range counts {
			counts[i] = 1 + r.Intn(6)
		}
		tr, err := tree.PhysicalLevelSizes(counts...)
		if err != nil {
			return false
		}
		p := 0.4 + r.Float64()*0.6
		a := core.Analyze(tr)
		av, err := MonteCarloAvailability(tr, p, 40000, seed)
		if err != nil {
			return false
		}
		if math.Abs(av.Read-a.ReadAvailability(p)) > 0.02 {
			t.Logf("seed %d (%s, p=%.3f): read MC %v vs %v", seed, tr.Spec(), p, av.Read, a.ReadAvailability(p))
			return false
		}
		if math.Abs(av.Write-a.WriteAvailability(p)) > 0.02 {
			t.Logf("seed %d (%s, p=%.3f): write MC %v vs %v", seed, tr.Spec(), p, av.Write, a.WriteAvailability(p))
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
