// Package tree models the logical/physical replica trees at the heart of the
// arbitrary tree-structured replica control protocol (Bahsoun, Basmadjian,
// Guerraoui — ICDCS 2008).
//
// A tree arranges the n replicas of a distributed system into levels
// 0..h. Every node is either logical (purely structural) or physical (an
// actual replica, identified by a site ID). A level that contains at least
// one physical node is a physical level; a level whose nodes are all logical
// is a logical level. The protocol's read quorums take one physical node
// from every physical level, and its write quorums take all physical nodes
// of a single physical level.
package tree

import (
	"fmt"
	"strconv"
)

// Kind distinguishes logical from physical tree nodes.
type Kind int

const (
	// Logical nodes are structural only; they do not hold a replica.
	Logical Kind = iota + 1
	// Physical nodes correspond to replicas of the system.
	Physical
)

// String returns "logical" or "physical".
func (k Kind) String() string {
	switch k {
	case Logical:
		return "logical"
	case Physical:
		return "physical"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// SiteID identifies a replica site. Site IDs are assigned densely from 1 in
// level order (top to bottom, left to right), matching the paper's S(i,k)
// orientation. Logical nodes have no SiteID.
type SiteID int

// Node is a single node of a replica tree. The zero value is not useful;
// nodes are created by the builders in this package.
type Node struct {
	kind     Kind
	level    int
	index    int // 1-based position within the level, left to right
	site     SiteID
	parent   *Node
	children []*Node
}

// Kind reports whether the node is logical or physical.
func (n *Node) Kind() Kind { return n.kind }

// Level returns the node's level, with the root at level 0.
func (n *Node) Level() int { return n.level }

// Index returns the node's 1-based position within its level, left to right.
func (n *Node) Index() int { return n.index }

// Site returns the replica site ID for physical nodes, and 0 for logical
// nodes.
func (n *Node) Site() SiteID { return n.site }

// Parent returns the node's parent, or nil for the root.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the node's children in left-to-right order. The returned
// slice is a copy; mutating it does not affect the tree.
func (n *Node) Children() []*Node {
	out := make([]*Node, len(n.children))
	copy(out, n.children)
	return out
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.children) == 0 }

// String renders the node in the paper's S(i,k) notation, annotated with the
// node kind and, for physical nodes, the site ID.
func (n *Node) String() string {
	if n.kind == Physical {
		return fmt.Sprintf("S_phy(%d,%d)#%d", n.index, n.level, n.site)
	}
	return fmt.Sprintf("S_log(%d,%d)", n.index, n.level)
}
