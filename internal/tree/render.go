package tree

import (
	"fmt"
	"strings"
)

// Render draws the tree level by level as indented ASCII text, marking
// physical nodes with their site IDs and logical nodes with "○". It is meant
// for CLI inspection, not machine consumption.
func Render(t *Tree) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.String())
	for k := 0; k <= t.Height(); k++ {
		kind := "logical"
		if t.PhysCount(k) > 0 {
			kind = "physical"
		}
		fmt.Fprintf(&b, "level %d (%s, m=%d, m_phy=%d, m_log=%d): ",
			k, kind, t.LevelCount(k), t.PhysCount(k), t.LogCount(k))
		for i, n := range t.levels[k] {
			if i > 0 {
				b.WriteByte(' ')
			}
			if n.Kind() == Physical {
				fmt.Fprintf(&b, "●%d", n.Site())
			} else {
				b.WriteString("○")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
