package tree

import (
	"fmt"
	"strings"
)

// DOT renders the tree in Graphviz dot format: physical nodes as filled
// boxes labelled with their site IDs, logical nodes as circles, ranked by
// level so the drawing mirrors the paper's Figure 1.
func DOT(t *Tree) string {
	var b strings.Builder
	b.WriteString("digraph arbortree {\n")
	b.WriteString("  rankdir=TB;\n")
	fmt.Fprintf(&b, "  label=%q;\n", t.String())

	name := func(n *Node) string {
		return fmt.Sprintf("n_%d_%d", n.Level(), n.Index())
	}
	for k := 0; k <= t.Height(); k++ {
		var rank []string
		for _, n := range t.Level(k) {
			id := name(n)
			rank = append(rank, id)
			if n.Kind() == Physical {
				fmt.Fprintf(&b, "  %s [shape=box style=filled fillcolor=lightblue label=\"s%d\"];\n", id, n.Site())
			} else {
				fmt.Fprintf(&b, "  %s [shape=circle label=\"\"];\n", id)
			}
		}
		fmt.Fprintf(&b, "  { rank=same; %s }\n", strings.Join(rank, "; "))
	}
	for k := 1; k <= t.Height(); k++ {
		for _, n := range t.Level(k) {
			fmt.Fprintf(&b, "  %s -> %s;\n", name(n.Parent()), name(n))
		}
	}
	b.WriteString("}\n")
	return b.String()
}
