package tree

import (
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// Tree is an immutable logical/physical replica tree.
//
// Levels are numbered 0 (root) to Height(). Site IDs are assigned densely
// from 1 in level order, left to right, to physical nodes only.
type Tree struct {
	root       *Node
	levels     [][]*Node
	phys       [][]*Node // phys[k] = physical nodes of level k, left to right
	physLevels []int     // K_phy in ascending order
	sites      map[SiteID]*Node
	n          int
}

// Config describes a tree level by level, from the root down. It is consumed
// by Build.
type Config struct {
	// Levels holds one spec per level, Levels[0] being the root level.
	Levels []LevelSpec
}

// LevelSpec gives the number of physical and logical nodes of one level.
type LevelSpec struct {
	Physical int
	Logical  int
}

// Total returns the total number of nodes in the level.
func (l LevelSpec) Total() int { return l.Physical + l.Logical }

// maxNodes bounds tree sizes; a replica tree beyond a million nodes is a
// configuration mistake, not a use case.
const maxNodes = 1 << 20

// Build constructs a tree from a level-by-level configuration.
//
// The root level must contain exactly one node. Every level must be
// non-empty, and each non-root level's nodes are attached to the previous
// level's nodes as evenly as possible, preserving left-to-right order with
// physical nodes first within each level.
func Build(cfg Config) (*Tree, error) {
	if len(cfg.Levels) == 0 {
		return nil, errors.New("tree: no levels")
	}
	if cfg.Levels[0].Total() != 1 {
		return nil, fmt.Errorf("tree: root level must have exactly 1 node, got %d", cfg.Levels[0].Total())
	}
	totalNodes := 0
	for k, l := range cfg.Levels {
		if l.Physical < 0 || l.Logical < 0 {
			return nil, fmt.Errorf("tree: level %d has negative node count", k)
		}
		if l.Total() == 0 {
			return nil, fmt.Errorf("tree: level %d is empty", k)
		}
		totalNodes += l.Total()
		if totalNodes > maxNodes {
			return nil, fmt.Errorf("tree: more than %d nodes", maxNodes)
		}
	}

	t := &Tree{
		levels: make([][]*Node, len(cfg.Levels)),
		phys:   make([][]*Node, len(cfg.Levels)),
		sites:  make(map[SiteID]*Node),
	}
	nextSite := SiteID(1)
	anyPhysical := false
	for _, l := range cfg.Levels {
		if l.Physical > 0 {
			anyPhysical = true
		}
	}
	if !anyPhysical {
		return nil, errors.New("tree: no physical nodes (no replicas)")
	}
	for k, spec := range cfg.Levels {
		nodes := make([]*Node, 0, spec.Total())
		for i := 0; i < spec.Physical; i++ {
			n := &Node{kind: Physical, level: k, index: i + 1, site: nextSite}
			t.sites[nextSite] = n
			nextSite++
			nodes = append(nodes, n)
		}
		for i := 0; i < spec.Logical; i++ {
			nodes = append(nodes, &Node{kind: Logical, level: k, index: spec.Physical + i + 1})
		}
		t.levels[k] = nodes
		t.phys[k] = nodes[:spec.Physical:spec.Physical]
		if spec.Physical > 0 {
			t.physLevels = append(t.physLevels, k)
		}
		t.n += spec.Physical

		if k == 0 {
			t.root = nodes[0]
			continue
		}
		attach(t.levels[k-1], nodes)
	}
	return t, nil
}

// attach links each node of level k to a parent in level k-1, distributing
// children as evenly as possible while preserving order.
func attach(parents, children []*Node) {
	np, nc := len(parents), len(children)
	ci := 0
	for pi, p := range parents {
		// Parent pi receives its proportional share of the children.
		take := (nc*(pi+1))/np - (nc*pi)/np
		for j := 0; j < take; j++ {
			c := children[ci]
			c.parent = p
			p.children = append(p.children, c)
			ci++
		}
	}
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Height returns h, the height of the tree (root at level 0).
func (t *Tree) Height() int { return len(t.levels) - 1 }

// N returns the number of replicas (physical nodes) in the tree.
func (t *Tree) N() int { return t.n }

// Level returns the nodes of level k, left to right. The returned slice is a
// copy.
func (t *Tree) Level(k int) []*Node {
	out := make([]*Node, len(t.levels[k]))
	copy(out, t.levels[k])
	return out
}

// PhysicalNodes returns the physical nodes of level k, left to right. The
// returned slice is a copy.
func (t *Tree) PhysicalNodes(k int) []*Node {
	out := make([]*Node, len(t.phys[k]))
	copy(out, t.phys[k])
	return out
}

// PhysCount returns m_phy(k), the number of physical nodes at level k.
func (t *Tree) PhysCount(k int) int { return len(t.phys[k]) }

// LogCount returns m_log(k), the number of logical nodes at level k.
func (t *Tree) LogCount(k int) int { return len(t.levels[k]) - len(t.phys[k]) }

// LevelCount returns m_k, the total number of nodes at level k.
func (t *Tree) LevelCount(k int) int { return len(t.levels[k]) }

// PhysicalLevels returns K_phy: the levels containing at least one physical
// node, in ascending order. The returned slice is a copy.
func (t *Tree) PhysicalLevels() []int {
	out := make([]int, len(t.physLevels))
	copy(out, t.physLevels)
	return out
}

// NumPhysicalLevels returns |K_phy|.
func (t *Tree) NumPhysicalLevels() int { return len(t.physLevels) }

// NumLogicalLevels returns |K_log| = 1 + h − |K_phy|.
func (t *Tree) NumLogicalLevels() int { return len(t.levels) - len(t.physLevels) }

// D returns d, the minimum number of physical nodes over all physical levels.
func (t *Tree) D() int {
	d := 0
	for _, k := range t.physLevels {
		if c := len(t.phys[k]); d == 0 || c < d {
			d = c
		}
	}
	return d
}

// E returns e, the maximum number of physical nodes over all physical levels.
func (t *Tree) E() int {
	e := 0
	for _, k := range t.physLevels {
		if c := len(t.phys[k]); c > e {
			e = c
		}
	}
	return e
}

// ReadQuorumCount returns m(R) = ∏_{k∈K_phy} m_phy(k), the number of distinct
// read quorums (Fact 3.2.1). The result can be astronomically large, hence
// the big.Int.
func (t *Tree) ReadQuorumCount() *big.Int {
	out := big.NewInt(1)
	for _, k := range t.physLevels {
		out.Mul(out, big.NewInt(int64(len(t.phys[k]))))
	}
	return out
}

// WriteQuorumCount returns m(W) = 1 + h − |K_log| = |K_phy|, the number of
// distinct write quorums (Fact 3.2.2).
func (t *Tree) WriteQuorumCount() int { return len(t.physLevels) }

// Sites returns all replica site IDs in ascending order.
func (t *Tree) Sites() []SiteID {
	out := make([]SiteID, 0, t.n)
	for _, level := range t.phys {
		for _, n := range level {
			out = append(out, n.site)
		}
	}
	return out
}

// SiteNode returns the physical node carrying the given site ID, or nil.
func (t *Tree) SiteNode(id SiteID) *Node { return t.sites[id] }

// LevelSites returns the site IDs of the physical nodes at level k, left to
// right.
func (t *Tree) LevelSites(k int) []SiteID {
	out := make([]SiteID, 0, len(t.phys[k]))
	for _, n := range t.phys[k] {
		out = append(out, n.site)
	}
	return out
}

// SiteLevel returns the level of the given site, or -1 if the site does not
// exist.
func (t *Tree) SiteLevel(id SiteID) int {
	n, ok := t.sites[id]
	if !ok {
		return -1
	}
	return n.level
}

// Config returns the level-by-level configuration that rebuilds this tree.
func (t *Tree) Config() Config {
	cfg := Config{Levels: make([]LevelSpec, len(t.levels))}
	for k := range t.levels {
		cfg.Levels[k] = LevelSpec{
			Physical: len(t.phys[k]),
			Logical:  len(t.levels[k]) - len(t.phys[k]),
		}
	}
	return cfg
}

// Spec renders the tree in the paper's compact notation, e.g. "1-3-5" for a
// logical root over physical levels of 3 and 5 replicas. Levels mixing
// physical and logical nodes render as "P+L" (e.g. "5+4"); a physical root
// renders as "1*".
func (t *Tree) Spec() string {
	var b strings.Builder
	for k := range t.levels {
		if k > 0 {
			b.WriteByte('-')
		}
		p, l := len(t.phys[k]), len(t.levels[k])-len(t.phys[k])
		switch {
		case k == 0 && p == 1:
			b.WriteString("1*")
		case k == 0:
			b.WriteString("1")
		case l == 0:
			fmt.Fprintf(&b, "%d", p)
		case p == 0:
			fmt.Fprintf(&b, "0+%d", l)
		default:
			fmt.Fprintf(&b, "%d+%d", p, l)
		}
	}
	return b.String()
}

// String summarizes the tree.
func (t *Tree) String() string {
	return fmt.Sprintf("tree(%s: n=%d h=%d |K_phy|=%d d=%d e=%d)",
		t.Spec(), t.n, t.Height(), t.NumPhysicalLevels(), t.D(), t.E())
}
