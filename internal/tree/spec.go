package tree

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the paper's compact tree notation and builds the tree.
//
// A spec is a dash-separated list of levels, root first:
//
//   - The root level is "1" for a logical root or "1*" for a physical root.
//   - Every other level is either a plain integer (that many physical
//     nodes), or "P+L" for P physical plus L logical nodes.
//
// Examples:
//
//	"1-3-5"    logical root, 3 replicas at level 1, 5 at level 2 (Figure 1
//	           of the paper collapses its 4 logical level-2 nodes; use
//	           "1-3-5+4" to reproduce it exactly)
//	"1*-2-4"   physical root over physical levels of 2 and 4
func ParseSpec(spec string) (*Tree, error) {
	cfg, err := ParseConfig(spec)
	if err != nil {
		return nil, err
	}
	return Build(cfg)
}

// ParseConfig parses a spec string (see ParseSpec) into a Config without
// building the tree.
func ParseConfig(spec string) (Config, error) {
	parts := strings.Split(strings.TrimSpace(spec), "-")
	if len(parts) == 0 || parts[0] == "" {
		return Config{}, fmt.Errorf("tree: empty spec %q", spec)
	}
	cfg := Config{Levels: make([]LevelSpec, 0, len(parts))}
	for i, part := range parts {
		part = strings.TrimSpace(part)
		if i == 0 {
			switch part {
			case "1":
				cfg.Levels = append(cfg.Levels, LevelSpec{Logical: 1})
			case "1*":
				cfg.Levels = append(cfg.Levels, LevelSpec{Physical: 1})
			default:
				return Config{}, fmt.Errorf("tree: root level must be \"1\" or \"1*\", got %q", part)
			}
			continue
		}
		ls, err := parseLevel(part)
		if err != nil {
			return Config{}, fmt.Errorf("tree: level %d: %w", i, err)
		}
		cfg.Levels = append(cfg.Levels, ls)
	}
	return cfg, nil
}

func parseLevel(part string) (LevelSpec, error) {
	phys, log := part, ""
	if p, l, ok := strings.Cut(part, "+"); ok {
		if l == "" {
			return LevelSpec{}, fmt.Errorf("level %q has a dangling '+'", part)
		}
		phys, log = p, l
	}
	var ls LevelSpec
	var err error
	if ls.Physical, err = strconv.Atoi(phys); err != nil {
		return LevelSpec{}, fmt.Errorf("bad physical count %q", phys)
	}
	if log != "" {
		if ls.Logical, err = strconv.Atoi(log); err != nil {
			return LevelSpec{}, fmt.Errorf("bad logical count %q", log)
		}
	}
	if ls.Physical < 0 || ls.Logical < 0 || ls.Total() == 0 {
		return LevelSpec{}, fmt.Errorf("level %q must have a positive node count", part)
	}
	return ls, nil
}
