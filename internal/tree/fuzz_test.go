package tree

import "testing"

// FuzzParseSpec ensures the spec parser never panics and that every
// accepted spec produces a tree whose invariants hold and whose canonical
// spec re-parses to an equivalent tree.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"1-3-5",
		"1-3-5+4",
		"1*-2-4",
		"1-8",
		"",
		"garbage",
		"1-",
		"1-0+1-2",
		"1-999999",
		"1-3+0-5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := ParseSpec(spec)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if tr.N() < 1 {
			t.Fatalf("accepted spec %q yields tree with no replicas", spec)
		}
		if tr.NumLogicalLevels()+tr.NumPhysicalLevels() != tr.Height()+1 {
			t.Fatalf("level accounting broken for %q", spec)
		}
		canon := tr.Spec()
		rt, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if rt.N() != tr.N() || rt.Height() != tr.Height() {
			t.Fatalf("round trip of %q changed the tree", spec)
		}
	})
}
