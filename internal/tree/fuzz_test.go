package tree

import "testing"

// FuzzParseSpec ensures the spec parser never panics and that every
// accepted spec produces a tree whose invariants hold and whose canonical
// spec re-parses to an equivalent tree.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"1-3-5",
		"1-3-5+4",
		"1*-2-4",
		"1-8",
		"",
		"garbage",
		"1-",
		"1-0+1-2",
		"1-999999",
		"1-3+0-5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := ParseSpec(spec)
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if tr.N() < 1 {
			t.Fatalf("accepted spec %q yields tree with no replicas", spec)
		}
		if tr.NumLogicalLevels()+tr.NumPhysicalLevels() != tr.Height()+1 {
			t.Fatalf("level accounting broken for %q", spec)
		}
		canon := tr.Spec()
		rt, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if rt.N() != tr.N() || rt.Height() != tr.Height() {
			t.Fatalf("round trip of %q changed the tree", spec)
		}
	})
}

// FuzzSpecRoundTrip checks that Spec is a canonical form: parse → format →
// parse yields a structurally identical tree, and the formatted spec is a
// fixpoint (formatting the re-parsed tree reproduces it byte-for-byte).
func FuzzSpecRoundTrip(f *testing.F) {
	for _, seed := range []string{
		"1-3-5",
		"1-3-5+4",
		"1*-2-4",
		"1*-2*-3",
		"1-2+0-2-2",
		"1-8",
		"1-3+2-2+1-4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		tr, err := ParseSpec(spec)
		if err != nil {
			return
		}
		canon := tr.Spec()
		rt, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q (from %q) does not re-parse: %v", canon, spec, err)
		}
		if again := rt.Spec(); again != canon {
			t.Fatalf("Spec is not a fixpoint: %q reformats to %q", canon, again)
		}
		if rt.Height() != tr.Height() {
			t.Fatalf("round trip of %q changed height %d -> %d", spec, tr.Height(), rt.Height())
		}
		for k := 0; k <= tr.Height(); k++ {
			if rt.LevelCount(k) != tr.LevelCount(k) || rt.PhysCount(k) != tr.PhysCount(k) {
				t.Fatalf("round trip of %q changed level %d: %d/%d nodes -> %d/%d",
					spec, k, tr.LevelCount(k), tr.PhysCount(k), rt.LevelCount(k), rt.PhysCount(k))
			}
			a, b := tr.LevelSites(k), rt.LevelSites(k)
			if len(a) != len(b) {
				t.Fatalf("round trip of %q changed level %d site count %d -> %d", spec, k, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("round trip of %q changed site %d at level %d: %v -> %v", spec, i, k, a[i], b[i])
				}
			}
		}
	})
}
