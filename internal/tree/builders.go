package tree

import (
	"fmt"
	"math"
)

// PhysicalLevelSizes builds a tree with a logical root and the given number
// of physical nodes at each subsequent level. This is the common shape used
// throughout the paper ("1-c1-c2-…").
func PhysicalLevelSizes(counts ...int) (*Tree, error) {
	cfg := Config{Levels: make([]LevelSpec, 0, len(counts)+1)}
	cfg.Levels = append(cfg.Levels, LevelSpec{Logical: 1})
	for _, c := range counts {
		cfg.Levels = append(cfg.Levels, LevelSpec{Physical: c})
	}
	return Build(cfg)
}

// Algorithm1 constructs the paper's balanced "ARBITRARY" configuration
// (Algorithm 1, §3.3) for n replicas:
//
//  1. a logical root with |K_phy| = round(√n) physical levels below it,
//  2. 4 replicas at each of the first seven physical levels,
//  3. the remaining n−28 replicas spread over the remaining √n−7 levels in
//     non-decreasing sizes (Assumption 3.1).
//
// The paper states the algorithm for n > 64; Algorithm1 accepts any n for
// which the construction is well-formed (at least 8 physical levels with
// the trailing levels holding ≥ 4 replicas each).
func Algorithm1(n int) (*Tree, error) {
	s := int(math.Round(math.Sqrt(float64(n))))
	if s < 8 {
		return nil, fmt.Errorf("tree: Algorithm 1 needs round(√n) ≥ 8 physical levels, got n=%d (√n≈%d); the paper requires n > 64", n, s)
	}
	rest := s - 7
	rem := n - 28
	base := rem / rest
	extra := rem % rest
	if base < 4 {
		return nil, fmt.Errorf("tree: Algorithm 1 would place %d < 4 replicas on trailing levels for n=%d", base, n)
	}
	counts := make([]int, 0, s)
	for i := 0; i < 7; i++ {
		counts = append(counts, 4)
	}
	// Non-decreasing: the first rest−extra trailing levels get base, the
	// last extra levels get base+1.
	for i := 0; i < rest; i++ {
		c := base
		if i >= rest-extra {
			c = base + 1
		}
		counts = append(counts, c)
	}
	return PhysicalLevelSizes(counts...)
}

// MostlyRead constructs the "MOSTLY-READ" configuration: a logical root with
// all n replicas in a single physical level. Read quorums are singletons
// (ROWA-like); a write must reach every replica.
func MostlyRead(n int) (*Tree, error) {
	if n < 1 {
		return nil, fmt.Errorf("tree: MostlyRead needs n ≥ 1, got %d", n)
	}
	return PhysicalLevelSizes(n)
}

// MostlyWrite constructs the "MOSTLY-WRITE" configuration for an odd number
// of replicas: a logical root over |K_phy| = (n−1)/2 physical levels. The
// paper describes "two replicas per level", which only accounts for n−1
// replicas; to place all n while keeping |K_phy| = (n−1)/2 and Assumption
// 3.1, the first (n−3)/2 levels hold two replicas and the last level holds
// three. All quantities the paper states for this configuration (read cost
// (n−1)/2, minimum write cost 2, write load 2/(n−1)) are preserved.
func MostlyWrite(n int) (*Tree, error) {
	if n < 3 || n%2 == 0 {
		return nil, fmt.Errorf("tree: MostlyWrite needs an odd n ≥ 3, got %d", n)
	}
	counts := make([]int, (n-1)/2)
	for i := range counts {
		counts[i] = 2
	}
	counts[len(counts)-1] = 3
	return PhysicalLevelSizes(counts...)
}

// CompleteBinary constructs a complete binary tree of height h in which
// every node is physical (n = 2^(h+1) − 1 replicas). Applying the arbitrary
// protocol directly to it yields the paper's "UNMODIFIED" configuration.
func CompleteBinary(h int) (*Tree, error) {
	if h < 0 || h > 30 {
		return nil, fmt.Errorf("tree: CompleteBinary height %d out of range [0,30]", h)
	}
	cfg := Config{Levels: make([]LevelSpec, 0, h+1)}
	for k := 0; k <= h; k++ {
		cfg.Levels = append(cfg.Levels, LevelSpec{Physical: 1 << k})
	}
	return Build(cfg)
}

// CompleteKAry constructs a complete k-ary tree of height h in which every
// node is physical. CompleteKAry(2, h) equals CompleteBinary(h).
func CompleteKAry(k, h int) (*Tree, error) {
	if k < 2 {
		return nil, fmt.Errorf("tree: CompleteKAry needs branching ≥ 2, got %d", k)
	}
	if h < 0 {
		return nil, fmt.Errorf("tree: CompleteKAry height %d negative", h)
	}
	cfg := Config{Levels: make([]LevelSpec, 0, h+1)}
	width := 1
	for lvl := 0; lvl <= h; lvl++ {
		if width > 1<<22 {
			return nil, fmt.Errorf("tree: CompleteKAry(%d,%d) too large", k, h)
		}
		cfg.Levels = append(cfg.Levels, LevelSpec{Physical: width})
		width *= k
	}
	return Build(cfg)
}

// Figure1 reproduces the example tree of the paper's Figure 1 and §3.4: a
// logical root, 3 physical nodes at level 1, and 5 physical plus 4 logical
// nodes at level 2 (spec "1-3-5+4", written "1-3-5" in the paper).
func Figure1() *Tree {
	t, err := ParseSpec("1-3-5+4")
	if err != nil {
		panic("tree: Figure1 construction failed: " + err.Error())
	}
	return t
}
