package tree

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConfig derives a well-formed random tree configuration from raw
// fuzz input. Trees have 1..6 levels below a (logical or physical) root and
// 0..7 physical plus 0..3 logical nodes per level, with at least one
// physical node somewhere.
func randomConfig(r *rand.Rand) Config {
	levels := 1 + r.Intn(6)
	cfg := Config{Levels: make([]LevelSpec, 0, levels+1)}
	if r.Intn(2) == 0 {
		cfg.Levels = append(cfg.Levels, LevelSpec{Logical: 1})
	} else {
		cfg.Levels = append(cfg.Levels, LevelSpec{Physical: 1})
	}
	anyPhys := cfg.Levels[0].Physical > 0
	for i := 0; i < levels; i++ {
		ls := LevelSpec{Physical: r.Intn(8), Logical: r.Intn(4)}
		if ls.Total() == 0 {
			ls.Logical = 1
		}
		if ls.Physical > 0 {
			anyPhys = true
		}
		cfg.Levels = append(cfg.Levels, ls)
	}
	if !anyPhys {
		cfg.Levels[len(cfg.Levels)-1].Physical = 1 + r.Intn(7)
	}
	return cfg
}

func TestQuickTreeInvariants(t *testing.T) {
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cfg := randomConfig(r)
		tr, err := Build(cfg)
		if err != nil {
			t.Logf("seed %d: build failed: %v", seed, err)
			return false
		}

		// n is the sum of physical counts across levels; m(R) the product
		// over physical levels; m(W) the number of physical levels.
		wantN := 0
		wantMR := big.NewInt(1)
		wantMW := 0
		for _, l := range cfg.Levels {
			wantN += l.Physical
			if l.Physical > 0 {
				wantMR.Mul(wantMR, big.NewInt(int64(l.Physical)))
				wantMW++
			}
		}
		if tr.N() != wantN {
			t.Logf("seed %d: N=%d want %d", seed, tr.N(), wantN)
			return false
		}
		if tr.ReadQuorumCount().Cmp(wantMR) != 0 {
			t.Logf("seed %d: m(R)=%v want %v", seed, tr.ReadQuorumCount(), wantMR)
			return false
		}
		if tr.WriteQuorumCount() != wantMW {
			t.Logf("seed %d: m(W)=%d want %d", seed, tr.WriteQuorumCount(), wantMW)
			return false
		}
		if tr.NumLogicalLevels()+tr.NumPhysicalLevels() != tr.Height()+1 {
			t.Logf("seed %d: |K_log|+|K_phy| != 1+h", seed)
			return false
		}

		// d and e bound every physical level's size.
		d, e := tr.D(), tr.E()
		for _, k := range tr.PhysicalLevels() {
			c := tr.PhysCount(k)
			if c < d || c > e {
				t.Logf("seed %d: level %d count %d outside [d=%d,e=%d]", seed, k, c, d, e)
				return false
			}
		}

		// Site IDs are dense 1..n and each maps back to its node.
		sites := tr.Sites()
		if len(sites) != wantN {
			return false
		}
		for i, s := range sites {
			if s != SiteID(i+1) || tr.SiteNode(s) == nil {
				return false
			}
		}

		// Spec round-trips through ParseSpec for trees built here.
		rt, err := ParseSpec(tr.Spec())
		if err != nil {
			t.Logf("seed %d: reparse %q: %v", seed, tr.Spec(), err)
			return false
		}
		if rt.Spec() != tr.Spec() || rt.N() != tr.N() {
			return false
		}

		// Parent/child linkage is consistent.
		for k := 1; k <= tr.Height(); k++ {
			for _, n := range tr.Level(k) {
				if n.Parent() == nil || n.Parent().Level() != k-1 {
					return false
				}
			}
		}
		childSum := 0
		for k := 0; k < tr.Height(); k++ {
			for _, n := range tr.Level(k) {
				childSum += len(n.Children())
			}
		}
		totalBelowRoot := 0
		for k := 1; k <= tr.Height(); k++ {
			totalBelowRoot += tr.LevelCount(k)
		}
		return childSum == totalBelowRoot
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickAlgorithm1ObeysAssumption31(t *testing.T) {
	property := func(raw uint16) bool {
		n := 64 + int(raw)%2000
		tr, err := Algorithm1(n)
		if err != nil {
			// Some n around level-count boundaries are legitimately
			// rejected; that is not a property failure as long as the
			// error is explicit.
			return true
		}
		if tr.N() != n {
			return false
		}
		return ValidateAssumption31(tr) == nil
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
