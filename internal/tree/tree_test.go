package tree

import (
	"math/big"
	"testing"
)

func mustParse(t *testing.T, spec string) *Tree {
	t.Helper()
	tr, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return tr
}

func TestBuildFigure1Table1(t *testing.T) {
	// Table 1 of the paper: total, physical and logical node counts of the
	// Figure 1 tree (spec 1-3-5+4).
	tr := Figure1()
	tests := []struct {
		level    int
		wantM    int
		wantPhys int
		wantLog  int
	}{
		{level: 0, wantM: 1, wantPhys: 0, wantLog: 1},
		{level: 1, wantM: 3, wantPhys: 3, wantLog: 0},
		{level: 2, wantM: 9, wantPhys: 5, wantLog: 4},
	}
	for _, tt := range tests {
		if got := tr.LevelCount(tt.level); got != tt.wantM {
			t.Errorf("level %d: m = %d, want %d", tt.level, got, tt.wantM)
		}
		if got := tr.PhysCount(tt.level); got != tt.wantPhys {
			t.Errorf("level %d: m_phy = %d, want %d", tt.level, got, tt.wantPhys)
		}
		if got := tr.LogCount(tt.level); got != tt.wantLog {
			t.Errorf("level %d: m_log = %d, want %d", tt.level, got, tt.wantLog)
		}
	}
}

func TestFigure1DerivedQuantities(t *testing.T) {
	// §3.4 of the paper: n=8, K_phy={1,2}, |K_phy|=2, K_log={0}, |K_log|=1,
	// m(R)=15, m(W)=2.
	tr := Figure1()
	if got := tr.N(); got != 8 {
		t.Errorf("N = %d, want 8", got)
	}
	if got := tr.Height(); got != 2 {
		t.Errorf("Height = %d, want 2", got)
	}
	wantPhys := []int{1, 2}
	got := tr.PhysicalLevels()
	if len(got) != len(wantPhys) {
		t.Fatalf("PhysicalLevels = %v, want %v", got, wantPhys)
	}
	for i := range wantPhys {
		if got[i] != wantPhys[i] {
			t.Fatalf("PhysicalLevels = %v, want %v", got, wantPhys)
		}
	}
	if got := tr.NumLogicalLevels(); got != 1 {
		t.Errorf("NumLogicalLevels = %d, want 1", got)
	}
	if got := tr.ReadQuorumCount(); got.Cmp(big.NewInt(15)) != 0 {
		t.Errorf("ReadQuorumCount = %v, want 15", got)
	}
	if got := tr.WriteQuorumCount(); got != 2 {
		t.Errorf("WriteQuorumCount = %d, want 2", got)
	}
	if got := tr.D(); got != 3 {
		t.Errorf("D = %d, want 3", got)
	}
	if got := tr.E(); got != 5 {
		t.Errorf("E = %d, want 5", got)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	tests := []string{
		"1-3-5",
		"1-3-5+4",
		"1*-2-4",
		"1-8",
		"1-2-2-2-2",
		"1-4-4-4-4-4-4-4-9",
		"1-3-0+2-5", // logical level sandwiched between physical ones
	}
	for _, spec := range tests {
		t.Run(spec, func(t *testing.T) {
			tr := mustParse(t, spec)
			if got := tr.Spec(); got != spec {
				t.Errorf("Spec() = %q, want %q", got, spec)
			}
		})
	}
}

func TestParseSpecErrors(t *testing.T) {
	tests := []string{
		"",
		"2-3",       // root must be 1 or 1*
		"1",         // no physical nodes at all
		"1-x",       // bad integer
		"1-3-",      // trailing empty level
		"1--3",      // empty level
		"1-0",       // empty level via zero counts
		"1-0+0",     // empty level
		"1-3-5+-1",  // negative logical count
		"1-(-2)",    // negative physical count
		"0+1-3",     // explicit logical root must use "1"
		"1*+1-3",    // malformed root
		"1-3-5+4+4", // double plus parses as bad int
	}
	for _, spec := range tests {
		t.Run(spec, func(t *testing.T) {
			if _, err := ParseSpec(spec); err == nil {
				t.Errorf("ParseSpec(%q) succeeded, want error", spec)
			}
		})
	}
}

func TestSiteAssignmentIsDenseAndLevelOrdered(t *testing.T) {
	tr := mustParse(t, "1-3-5+4")
	sites := tr.Sites()
	if len(sites) != 8 {
		t.Fatalf("Sites() returned %d ids, want 8", len(sites))
	}
	for i, s := range sites {
		if s != SiteID(i+1) {
			t.Fatalf("Sites()[%d] = %d, want %d", i, s, i+1)
		}
	}
	// Level 1 holds sites 1..3, level 2 holds 4..8.
	for _, s := range tr.LevelSites(1) {
		if s < 1 || s > 3 {
			t.Errorf("level 1 site %d out of range [1,3]", s)
		}
	}
	for _, s := range tr.LevelSites(2) {
		if s < 4 || s > 8 {
			t.Errorf("level 2 site %d out of range [4,8]", s)
		}
	}
	for _, s := range sites {
		n := tr.SiteNode(s)
		if n == nil {
			t.Fatalf("SiteNode(%d) = nil", s)
		}
		if n.Site() != s {
			t.Errorf("SiteNode(%d).Site() = %d", s, n.Site())
		}
		if got := tr.SiteLevel(s); got != n.Level() {
			t.Errorf("SiteLevel(%d) = %d, want %d", s, got, n.Level())
		}
	}
	if got := tr.SiteLevel(99); got != -1 {
		t.Errorf("SiteLevel(99) = %d, want -1", got)
	}
	if tr.SiteNode(99) != nil {
		t.Error("SiteNode(99) should be nil")
	}
}

func TestParentChildLinks(t *testing.T) {
	tr := mustParse(t, "1-3-5+4")
	root := tr.Root()
	if root == nil || root.Parent() != nil {
		t.Fatal("root must exist and have no parent")
	}
	if got := len(root.Children()); got != 3 {
		t.Fatalf("root has %d children, want 3", got)
	}
	// Every non-root node has a parent on the previous level; children sum
	// to the next level's size.
	for k := 1; k <= tr.Height(); k++ {
		for _, n := range tr.Level(k) {
			p := n.Parent()
			if p == nil {
				t.Fatalf("node %v has no parent", n)
			}
			if p.Level() != k-1 {
				t.Errorf("node %v parent at level %d, want %d", n, p.Level(), k-1)
			}
		}
	}
	total := 0
	for _, n := range tr.Level(1) {
		total += len(n.Children())
		if !n.IsLeaf() == (len(n.Children()) == 0) {
			t.Errorf("IsLeaf inconsistent for %v", n)
		}
	}
	if total != 9 {
		t.Errorf("level-1 children sum to %d, want 9", total)
	}
}

func TestAlgorithm1(t *testing.T) {
	tests := []struct {
		n          int
		wantLevels int
	}{
		{n: 64, wantLevels: 8},
		{n: 100, wantLevels: 10},
		{n: 144, wantLevels: 12},
		{n: 200, wantLevels: 14},
		{n: 400, wantLevels: 20},
		{n: 1024, wantLevels: 32},
	}
	for _, tt := range tests {
		tr, err := Algorithm1(tt.n)
		if err != nil {
			t.Fatalf("Algorithm1(%d): %v", tt.n, err)
		}
		if got := tr.N(); got != tt.n {
			t.Errorf("Algorithm1(%d).N = %d", tt.n, got)
		}
		if got := tr.NumPhysicalLevels(); got != tt.wantLevels {
			t.Errorf("Algorithm1(%d) has %d physical levels, want %d", tt.n, got, tt.wantLevels)
		}
		// First seven physical levels hold exactly 4 replicas.
		phys := tr.PhysicalLevels()
		for i := 0; i < 7; i++ {
			if got := tr.PhysCount(phys[i]); got != 4 {
				t.Errorf("Algorithm1(%d) level %d has %d replicas, want 4", tt.n, phys[i], got)
			}
		}
		if err := ValidateAssumption31(tr); err != nil {
			t.Errorf("Algorithm1(%d) violates Assumption 3.1: %v", tt.n, err)
		}
		if got := tr.D(); got != 4 {
			t.Errorf("Algorithm1(%d).D = %d, want 4", tt.n, got)
		}
	}
}

func TestAlgorithm1Errors(t *testing.T) {
	for _, n := range []int{1, 10, 32, 50} {
		if _, err := Algorithm1(n); err == nil {
			t.Errorf("Algorithm1(%d) succeeded, want error", n)
		}
	}
}

func TestMostlyRead(t *testing.T) {
	tr, err := MostlyRead(10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 10 || tr.NumPhysicalLevels() != 1 || tr.D() != 10 {
		t.Errorf("MostlyRead(10) = %v", tr)
	}
	if _, err := MostlyRead(0); err == nil {
		t.Error("MostlyRead(0) succeeded, want error")
	}
}

func TestMostlyWrite(t *testing.T) {
	tr, err := MostlyWrite(11)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 11 || tr.NumPhysicalLevels() != 5 || tr.D() != 2 || tr.E() != 3 {
		t.Errorf("MostlyWrite(11) = %v", tr)
	}
	if err := ValidateAssumption31(tr); err != nil {
		t.Errorf("MostlyWrite(11) violates Assumption 3.1: %v", err)
	}
	small, err := MostlyWrite(3)
	if err != nil {
		t.Fatal(err)
	}
	if small.N() != 3 || small.NumPhysicalLevels() != 1 {
		t.Errorf("MostlyWrite(3) = %v", small)
	}
	for _, n := range []int{0, 1, 2, 4, 10} {
		if _, err := MostlyWrite(n); err == nil {
			t.Errorf("MostlyWrite(%d) succeeded, want error", n)
		}
	}
}

func TestCompleteBinary(t *testing.T) {
	tr, err := CompleteBinary(3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 15 {
		t.Errorf("CompleteBinary(3).N = %d, want 15", tr.N())
	}
	if tr.NumPhysicalLevels() != 4 || tr.NumLogicalLevels() != 0 {
		t.Errorf("CompleteBinary(3) levels: phys=%d log=%d", tr.NumPhysicalLevels(), tr.NumLogicalLevels())
	}
	if tr.D() != 1 || tr.E() != 8 {
		t.Errorf("CompleteBinary(3): d=%d e=%d", tr.D(), tr.E())
	}
	if _, err := CompleteBinary(-1); err == nil {
		t.Error("CompleteBinary(-1) succeeded")
	}
	if _, err := CompleteBinary(31); err == nil {
		t.Error("CompleteBinary(31) succeeded")
	}
}

func TestCompleteKAry(t *testing.T) {
	tr, err := CompleteKAry(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 13 {
		t.Errorf("CompleteKAry(3,2).N = %d, want 13", tr.N())
	}
	b2, err := CompleteKAry(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b2ref, err := CompleteBinary(4)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Spec() != b2ref.Spec() {
		t.Errorf("CompleteKAry(2,4) = %s, want %s", b2.Spec(), b2ref.Spec())
	}
	if _, err := CompleteKAry(1, 2); err == nil {
		t.Error("CompleteKAry(1,2) succeeded")
	}
	if _, err := CompleteKAry(2, -1); err == nil {
		t.Error("CompleteKAry(2,-1) succeeded")
	}
	if _, err := CompleteKAry(8, 12); err == nil {
		t.Error("CompleteKAry(8,12) should refuse to build a huge tree")
	}
}

func TestValidateAssumption31(t *testing.T) {
	tests := []struct {
		spec    string
		wantErr bool
	}{
		{spec: "1-3-5", wantErr: false},
		{spec: "1-3-5+4", wantErr: false},
		{spec: "1-2-2-2", wantErr: false},
		{spec: "1*-2-4", wantErr: false},
		{spec: "1-5-3", wantErr: true},     // decreasing
		{spec: "1*-1-3", wantErr: true},    // root not strictly below level 1
		{spec: "1-3-0+2-5", wantErr: true}, // logical level below physical
		{spec: "1-8", wantErr: false},
		{spec: "1-4-4-9", wantErr: false},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			tr := mustParse(t, tt.spec)
			err := ValidateAssumption31(tr)
			if (err != nil) != tt.wantErr {
				t.Errorf("ValidateAssumption31(%s) = %v, wantErr=%v", tt.spec, err, tt.wantErr)
			}
		})
	}
}

func TestConfigRoundTrip(t *testing.T) {
	tr := mustParse(t, "1-3-5+4")
	rebuilt, err := Build(tr.Config())
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Spec() != tr.Spec() {
		t.Errorf("rebuilt spec %q != original %q", rebuilt.Spec(), tr.Spec())
	}
}

func TestBuildErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "empty", cfg: Config{}},
		{name: "wide root", cfg: Config{Levels: []LevelSpec{{Physical: 2}}}},
		{name: "empty level", cfg: Config{Levels: []LevelSpec{{Logical: 1}, {}}}},
		{name: "negative", cfg: Config{Levels: []LevelSpec{{Logical: 1}, {Physical: -1, Logical: 2}}}},
		{name: "all logical", cfg: Config{Levels: []LevelSpec{{Logical: 1}, {Logical: 3}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Build(tt.cfg); err == nil {
				t.Errorf("Build succeeded, want error")
			}
		})
	}
}

func TestRender(t *testing.T) {
	out := Render(Figure1())
	for _, want := range []string{"level 0", "level 2", "●1", "○", "m_log=4"} {
		if !contains(out, want) {
			t.Errorf("Render output missing %q:\n%s", want, out)
		}
	}
}

func TestNodeString(t *testing.T) {
	tr := Figure1()
	if got := tr.Root().String(); got != "S_log(1,0)" {
		t.Errorf("root String = %q", got)
	}
	n := tr.PhysicalNodes(1)[0]
	if got := n.String(); got != "S_phy(1,1)#1" {
		t.Errorf("physical String = %q", got)
	}
	if Logical.String() != "logical" || Physical.String() != "physical" {
		t.Error("Kind.String mismatch")
	}
	if got := Kind(9).String(); got != "kind(9)" {
		t.Errorf("Kind(9).String() = %q", got)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && indexOf(s, sub) >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestBuildRejectsHugeTrees(t *testing.T) {
	if _, err := ParseSpec("1-2000000"); err == nil {
		t.Error("million-node level accepted")
	}
}

func TestDOT(t *testing.T) {
	out := DOT(Figure1())
	for _, want := range []string{
		"digraph arbortree",
		"rank=same",
		`label="s1"`,
		"shape=circle",
		"->",
	} {
		if !contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// 13 nodes total: 8 physical boxes and 5 logical circles.
	if got := countOccurrences(out, "shape=box"); got != 8 {
		t.Errorf("%d physical boxes, want 8", got)
	}
	if got := countOccurrences(out, "shape=circle"); got != 5 {
		t.Errorf("%d logical circles, want 5", got)
	}
	// 12 edges (every non-root node has one).
	if got := countOccurrences(out, "->"); got != 12 {
		t.Errorf("%d edges, want 12", got)
	}
}

func countOccurrences(s, sub string) int {
	count := 0
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			count++
		}
	}
	return count
}
