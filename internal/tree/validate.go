package tree

import "fmt"

// ValidateAssumption31 checks the paper's Assumption 3.1:
//
//	m_phy0 < m_phy1 ≤ m_phy2 ≤ … ≤ m_phyh
//
// i.e. physical-node counts per level never decrease going down the tree,
// with the root level strictly smaller than level 1. Logical levels (count
// zero) are permitted only as a prefix above the first physical level;
// interleaving logical levels below physical ones would break the
// non-decreasing chain.
func ValidateAssumption31(t *Tree) error {
	if t.N() == 0 {
		return fmt.Errorf("tree %s: no physical nodes", t.Spec())
	}
	h := t.Height()
	prev := -1
	seenPhysical := false
	for k := 0; k <= h; k++ {
		c := t.PhysCount(k)
		if c == 0 {
			if seenPhysical {
				return fmt.Errorf("tree %s: logical level %d below a physical level violates Assumption 3.1", t.Spec(), k)
			}
			continue
		}
		if seenPhysical {
			strict := prevLevelIsRoot(t, k)
			if strict && c <= prev {
				return fmt.Errorf("tree %s: m_phy(%d)=%d must exceed the root level's m_phy=%d (Assumption 3.1)", t.Spec(), k, c, prev)
			}
			if !strict && c < prev {
				return fmt.Errorf("tree %s: m_phy(%d)=%d < m_phy of previous physical level (%d) violates Assumption 3.1", t.Spec(), k, c, prev)
			}
		}
		prev = c
		seenPhysical = true
	}
	return nil
}

// prevLevelIsRoot reports whether the physical level preceding level k is
// the root level 0, in which case Assumption 3.1 demands a strict increase.
func prevLevelIsRoot(t *Tree, k int) bool {
	for kk := k - 1; kk >= 0; kk-- {
		if t.PhysCount(kk) > 0 {
			return kk == 0
		}
	}
	return false
}
