package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"arbor/internal/adapt"
	"arbor/internal/sim"
	"arbor/internal/tree"
)

// TestCompileLowersOntoSim pins the lowering contract: unset faults mean
// none, latency classes become the per-site RTT map over the physical
// levels, and explicit fault lines merge tick-ordered with the generated
// schedule (here: with the phase markers).
func TestCompileLowersOntoSim(t *testing.T) {
	spec, err := Parse(strings.Join([]string{
		"tree 1-3-5",
		"seed 5",
		"latency base 1ms",
		"latency level 0 2ms",
		"latency level 1 4ms",
		"latency site 4 8ms",
		"phase mostly-read 20",
		"phase mostly-write 30",
		"fault 10ms:crash=2",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if c.Cfg.Faults != -1 {
		t.Errorf("Faults = %d, want -1 (scenarios inject only what they declare)", c.Cfg.Faults)
	}
	if c.Cfg.Latency != time.Millisecond {
		t.Errorf("Latency = %v, want 1ms", c.Cfg.Latency)
	}
	// Tree 1-3-5: level-0 sites get 2ms, level-1 sites 4ms, site 4's
	// override wins.
	tr, err := tree.ParseSpec("1-3-5")
	if err != nil {
		t.Fatal(err)
	}
	phys := tr.PhysicalLevels()
	want := map[tree.SiteID]time.Duration{}
	for _, s := range tr.LevelSites(phys[0]) {
		want[s] = 2 * time.Millisecond
	}
	for _, s := range tr.LevelSites(phys[1]) {
		want[s] = 4 * time.Millisecond
	}
	want[4] = 8 * time.Millisecond
	if !reflect.DeepEqual(c.Cfg.SiteRTT, want) {
		t.Errorf("SiteRTT = %v, want %v", c.Cfg.SiteRTT, want)
	}
	// The merged schedule holds the two phase markers and the crash, in
	// tick order.
	var ticks []time.Duration
	crashes := 0
	for _, ev := range c.Input.Events {
		ticks = append(ticks, ev.At)
		if len(ev.Crash) > 0 {
			crashes++
		}
	}
	if crashes != 1 || len(ticks) != 3 {
		t.Fatalf("merged schedule = %d events with %d crashes, want 3 and 1", len(ticks), crashes)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] < ticks[i-1] {
			t.Errorf("merged schedule out of order: %v", ticks)
		}
	}
	if len(c.Input.Ops) != 50 {
		t.Errorf("op stream has %d ops, want 50", len(c.Input.Ops))
	}
}

// TestCompileExpandsRamps: a ramp becomes interpolated numeric-profile
// steps whose endpoints are the From and To fractions and whose op
// counts sum to the ramp's.
func TestCompileExpandsRamps(t *testing.T) {
	spec, err := Parse("tree 1-8\nramp mostly-read mostly-write 42 steps 4\n")
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	ps := c.Cfg.Phases
	if len(ps) != 4 {
		t.Fatalf("ramp expanded to %d phases, want 4: %+v", len(ps), ps)
	}
	total := 0
	for _, p := range ps {
		total += p.Ops
	}
	if total != 42 {
		t.Errorf("ramp ops sum to %d, want 42", total)
	}
	first, err := ps[0].Profile.ReadFraction()
	if err != nil || first != 0.9 {
		t.Errorf("first step reads %v of the time (err %v), want 0.9", first, err)
	}
	last, err := ps[3].Profile.ReadFraction()
	if err != nil || last != 0.1 {
		t.Errorf("last step reads %v of the time (err %v), want 0.1", last, err)
	}
	mid, err := ps[1].Profile.ReadFraction()
	if err != nil || mid <= 0.1 || mid >= 0.9 {
		t.Errorf("middle step reads %v of the time (err %v), want strictly between", mid, err)
	}
	// A default-steps ramp shorter than the default still expands.
	spec, err = Parse("tree 1-8\nramp mostly-read mostly-write 2\n")
	if err != nil {
		t.Fatal(err)
	}
	if c, err = spec.Compile(); err != nil {
		t.Fatal(err)
	}
	if len(c.Cfg.Phases) != 2 {
		t.Errorf("2-op ramp expanded to %d phases, want 2", len(c.Cfg.Phases))
	}
}

// TestCheckExpectations drives the checker over a synthetic result so
// every expect kind's pass and fail sides are covered without a run.
func TestCheckExpectations(t *testing.T) {
	spec, err := Parse(strings.Join([]string{
		"tree 1-8",
		"ops 10",
		"adapt",
		"expect no-history-violations",
		"expect margin-gaps <=2",
		"expect adapt-decisions >=1",
		"expect reconfigurations 1",
		"expect failures <=3",
		"expect final-spec 1-2-2",
	}, "\n"))
	if err != nil {
		t.Fatal(err)
	}
	pass := &sim.Result{
		Violations:       []sim.Violation{{Rule: "durability", Detail: "not a history rule"}},
		MarginGaps:       []string{"a", "b"},
		AdaptDecisions:   []adapt.Decision{{}},
		Reconfigurations: 1,
		Failures:         3,
		FinalSpec:        "1-2-2",
	}
	if fails := spec.Check(pass); len(fails) != 0 {
		t.Fatalf("Check on a passing result = %v", fails)
	}
	fail := &sim.Result{
		Violations:       []sim.Violation{{Rule: "monotonic-reads", Detail: "went backwards"}},
		MarginGaps:       []string{"a", "b", "c"},
		Reconfigurations: 2,
		Failures:         4,
		FinalSpec:        "1-8",
	}
	fails := spec.Check(fail)
	if len(fails) != 6 {
		t.Fatalf("Check found %d failures, want 6:\n%s", len(fails), strings.Join(fails, "\n"))
	}
	for _, want := range []string{
		"expect no-history-violations: got 1 (first: sim: monotonic-reads: went backwards)",
		"expect margin-gaps <=2: got 3",
		"expect adapt-decisions >=1: got 0",
		"expect reconfigurations 1: got 2",
		"expect failures <=3: got 4",
		"expect final-spec 1-2-2: got 1-8",
	} {
		found := false
		for _, f := range fails {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Check missing %q in:\n%s", want, strings.Join(fails, "\n"))
		}
	}
}

// TestScenarioGoldenTraces replays three checked-in scenarios end to end
// and pins the hash of the op-by-op trace. These hashes are the
// harness's determinism promise extended through the scenario compiler:
// any change to parsing, lowering, generation or execution that alters a
// single op or fault application shows up here.
func TestScenarioGoldenTraces(t *testing.T) {
	golden := map[string]string{
		"chaos-mostly-read":      "6fcabaa0b34ae4ece47c2978d3929510bce591fa3100f4a7affa79c5c364ece6",
		"workload-flip-adapt":    "9142b9c7f83caa7eece015384cb500fc199f11d30ca804217e0723bb45fe9535",
		"partition-anti-entropy": "44e727710d33915a4899c194b11cea41e7dfcfaa5df23c5422a0dda554948943",
	}
	for name, want := range golden {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := Load(filepath.Join("..", "..", "scenarios", name+".arb"))
			if err != nil {
				t.Fatal(err)
			}
			c, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Execute(c.Input)
			if err != nil {
				t.Fatal(err)
			}
			h := sha256.Sum256([]byte(strings.Join(res.Trace, "\n")))
			if got := hex.EncodeToString(h[:]); got != want {
				t.Errorf("trace hash = %s, want %s (%d trace lines)\nfirst lines:\n%s",
					got, want, len(res.Trace), strings.Join(res.Trace[:min(5, len(res.Trace))], "\n"))
			}
		})
	}
}

// TestScenarioCorpusReplaysGreen replays every checked-in scenario and
// requires all of its expectations to hold — the corpus is executable
// documentation, and this is what keeps it honest between nightlies.
func TestScenarioCorpusReplaysGreen(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".arb") {
			continue
		}
		files++
		name := e.Name()
		t.Run(strings.TrimSuffix(name, ".arb"), func(t *testing.T) {
			t.Parallel()
			spec, err := Load(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if len(spec.Expects) == 0 {
				t.Fatal("checked-in scenarios must declare expectations")
			}
			reparsed, err := Parse(spec.String())
			if err != nil {
				t.Fatalf("canonical form does not reparse: %v", err)
			}
			if !reflect.DeepEqual(spec, reparsed) {
				t.Fatalf("canonical round trip changed the spec of %s", name)
			}
			c, err := spec.Compile()
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Execute(c.Input)
			if err != nil {
				t.Fatal(err)
			}
			if fails := spec.Check(res); len(fails) > 0 {
				t.Errorf("scenario %s failed its contract:\n%s", name, strings.Join(fails, "\n"))
			}
		})
	}
	if files < 10 {
		t.Errorf("corpus has %d scenarios, want the full EXPERIMENTS.md set (>=10)", files)
	}
}
