package scenario

import (
	"fmt"
	"math"
	"sort"
	"time"

	"arbor/internal/sim"
	"arbor/internal/tree"
)

// defaultRampSteps is the interpolation resolution for ramps that don't
// say "steps" (clamped to the ramp's op count).
const defaultRampSteps = 4

// Compiled is a scenario lowered onto the chaos harness: the effective
// configuration (defaults applied) and the fully-derived input, with the
// scenario's explicit fault events merged into the generated schedule.
// sim.Execute(c.Input) runs it; Spec.Check judges the result.
type Compiled struct {
	Spec  *Spec
	Cfg   sim.Config
	Input sim.Input
}

// Compile lowers the spec. Workload phases become sim phase specs (ramps
// expand into interpolated numeric-profile steps), the latency matrix
// becomes a per-site RTT map over the tree's physical levels, and the
// explicit fault lines merge tick-ordered with whatever the faults
// directive asked the harness to generate. Without a faults directive the
// run injects only the scenario's own events.
func (s *Spec) Compile() (*Compiled, error) {
	tr, err := tree.ParseSpec(s.Tree)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	cfg := sim.Config{
		Spec:        s.Tree,
		Seed:        s.Seed,
		Profile:     s.Profile,
		Zipf:        s.Zipf,
		Ops:         s.Ops,
		Clients:     s.Clients,
		Keys:        s.Keys,
		Timeout:     s.Timeout,
		LockTTL:     s.LockTTL,
		AntiEntropy: s.AntiEntropy,
		Adapt:       s.Adapt,
		AdaptEvery:  s.AdaptEvery,
		Latency:     s.Latency.Base,
		Jitter:      s.Latency.Jitter,
		JitterDist:  s.Latency.Dist,
		Faults:      -1,
	}
	if s.Faults > 0 {
		cfg.Faults = s.Faults
	}
	phases, err := expandPhases(s.Phases)
	if err != nil {
		return nil, err
	}
	cfg.Phases = phases
	if len(s.Latency.Levels)+len(s.Latency.Sites) > 0 {
		rtt := make(map[tree.SiteID]time.Duration)
		phys := tr.PhysicalLevels()
		for _, lv := range s.Latency.Levels {
			for _, site := range tr.LevelSites(phys[lv.Level]) {
				rtt[site] = lv.RTT
			}
		}
		for _, sr := range s.Latency.Sites {
			rtt[sr.Site] = sr.RTT
		}
		cfg.SiteRTT = rtt
	}
	in, err := sim.BuildInput(cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if len(s.Schedule) > 0 {
		in.Events = append(in.Events, s.Schedule...)
		sort.SliceStable(in.Events, func(i, j int) bool { return in.Events[i].At < in.Events[j].At })
	}
	return &Compiled{Spec: s, Cfg: in.Cfg, Input: in}, nil
}

// expandPhases lowers the workload timeline. Plain phases map one-to-one;
// a ramp becomes Steps consecutive phases whose read fractions
// interpolate linearly from the From profile's to the To profile's, the
// ramp's ops split as evenly as possible (earlier steps absorb the
// remainder).
func expandPhases(phases []Phase) ([]sim.PhaseSpec, error) {
	var out []sim.PhaseSpec
	for _, p := range phases {
		if !p.Ramp {
			out = append(out, sim.PhaseSpec{Profile: p.Profile, Ops: p.Ops, Zipf: p.Zipf})
			continue
		}
		from, err := p.From.ReadFraction()
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		to, err := p.To.ReadFraction()
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		steps := p.Steps
		if steps == 0 {
			steps = defaultRampSteps
			if p.Ops < steps {
				steps = p.Ops
			}
		}
		base, rem := p.Ops/steps, p.Ops%steps
		for i := 0; i < steps; i++ {
			f := from
			if steps > 1 {
				f = from + (to-from)*float64(i)/float64(steps-1)
			}
			ops := base
			if i < rem {
				ops++
			}
			out = append(out, sim.PhaseSpec{
				Profile: sim.NumericProfile(roundFraction(f)),
				Ops:     ops,
				Zipf:    p.Zipf,
			})
		}
	}
	return out, nil
}

// roundFraction keeps interpolated read fractions short and stable when
// they render into numeric profiles and reproducers.
func roundFraction(f float64) float64 { return math.Round(f*1e4) / 1e4 }

// historyRules are history.Check's rule names, as opposed to the harness
// invariants; expect no-history-violations filters on them.
var historyRules = map[string]bool{
	"unique-writes":    true,
	"value-integrity":  true,
	"future-read":      true,
	"read-your-writes": true,
	"monotonic-writes": true,
	"monotonic-reads":  true,
}

// Check evaluates the scenario's expect assertions against a finished
// run. It returns one message per unmet expectation; an empty slice means
// the scenario replayed green.
func (s *Spec) Check(res *sim.Result) []string {
	var fails []string
	failf := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf(format, args...))
	}
	for _, e := range s.Expects {
		switch e.Kind {
		case "no-violations":
			if len(res.Violations) > 0 {
				failf("expect no-violations: got %d (first: %v)", len(res.Violations), res.Violations[0])
			}
		case "no-history-violations":
			n, first := 0, sim.Violation{}
			for _, v := range res.Violations {
				if historyRules[v.Rule] {
					if n == 0 {
						first = v
					}
					n++
				}
			}
			if n > 0 {
				failf("expect no-history-violations: got %d (first: %v)", n, first)
			}
		case "margin-gaps":
			checkCount(e, len(res.MarginGaps), failf)
		case "adapt-decisions":
			checkCount(e, len(res.AdaptDecisions), failf)
		case "reconfigurations":
			checkCount(e, res.Reconfigurations, failf)
		case "failures":
			checkCount(e, res.Failures, failf)
		case "sheds":
			checkCount(e, int(res.Sheds), failf)
		case "final-spec":
			if res.FinalSpec != e.Spec {
				failf("expect final-spec %s: got %s", e.Spec, res.FinalSpec)
			}
		}
	}
	return fails
}

func checkCount(e Expect, got int, failf func(string, ...any)) {
	ok := false
	switch e.Cmp {
	case ">=":
		ok = got >= e.N
	case "<=":
		ok = got <= e.N
	default:
		ok = got == e.N
	}
	if !ok {
		failf("expect %s: got %d", e, got)
	}
}
