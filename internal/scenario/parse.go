package scenario

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"arbor/internal/cluster"
	"arbor/internal/sim"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

// expectKinds lists the assertion vocabulary; the bool marks numeric
// kinds (those taking a count like 0, >=1 or <=3).
var expectKinds = map[string]bool{
	"no-violations":         false,
	"no-history-violations": false,
	"margin-gaps":           true,
	"adapt-decisions":       true,
	"reconfigurations":      true,
	"failures":              true,
	"sheds":                 true,
	"final-spec":            false,
}

// Parse reads the scenario syntax described in the package comment. The
// grammar is closed-world: unknown directives, duplicate scalar
// directives, malformed arguments and references to sites or levels the
// declared tree does not have are all errors, with the offending line
// number in the message.
func Parse(text string) (*Spec, error) {
	s := &Spec{}
	seen := map[string]bool{}
	seenExpect := map[string]bool{}
	ln := 0
	errf := func(format string, args ...any) error {
		return fmt.Errorf("scenario: line %d: %s", ln, fmt.Sprintf(format, args...))
	}
	once := func(name string) error {
		if seen[name] {
			return errf("duplicate %s directive", name)
		}
		seen[name] = true
		return nil
	}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		ln++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		f := strings.Fields(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "scenario":
			if err := once("scenario"); err != nil {
				return nil, err
			}
			if len(f) != 2 {
				return nil, errf("scenario needs a name")
			}
			if !validName(f[1]) {
				return nil, errf("scenario name %q may use letters, digits, dots, dashes and underscores", f[1])
			}
			s.Name = f[1]
		case "tree":
			if err := once("tree"); err != nil {
				return nil, err
			}
			if len(f) != 2 {
				return nil, errf("tree needs a spec like 1-3-5")
			}
			tr, err := tree.ParseSpec(f[1])
			if err != nil {
				return nil, errf("tree: %v", err)
			}
			s.Tree = tr.Spec()
		case "seed":
			if err := once("seed"); err != nil {
				return nil, err
			}
			if len(f) != 2 {
				return nil, errf("seed needs an integer")
			}
			v, err := strconv.ParseInt(f[1], 10, 64)
			if err != nil {
				return nil, errf("seed needs an integer, not %q", f[1])
			}
			s.Seed = v
		case "ops":
			if err := parsePositiveInt(f, &s.Ops, once, errf); err != nil {
				return nil, err
			}
		case "keys":
			if err := parsePositiveInt(f, &s.Keys, once, errf); err != nil {
				return nil, err
			}
		case "clients":
			if err := parsePositiveInt(f, &s.Clients, once, errf); err != nil {
				return nil, err
			}
		case "faults":
			if err := parsePositiveInt(f, &s.Faults, once, errf); err != nil {
				return nil, err
			}
		case "profile":
			if err := once("profile"); err != nil {
				return nil, err
			}
			if len(f) != 2 {
				return nil, errf("profile needs a name")
			}
			p := sim.Profile(f[1])
			if _, err := p.ReadFraction(); err != nil {
				return nil, errf("profile: %v", err)
			}
			s.Profile = p
		case "zipf":
			if err := once("zipf"); err != nil {
				return nil, err
			}
			if len(f) != 2 {
				return nil, errf("zipf needs a skew > 1")
			}
			z, err := strconv.ParseFloat(f[1], 64)
			if err != nil || z <= 1 {
				return nil, errf("zipf needs a skew > 1, not %q", f[1])
			}
			s.Zipf = z
		case "timeout":
			if err := parsePositiveDuration(f, &s.Timeout, once, errf); err != nil {
				return nil, err
			}
		case "lockttl":
			if err := parsePositiveDuration(f, &s.LockTTL, once, errf); err != nil {
				return nil, err
			}
		case "antientropy":
			if err := once("antientropy"); err != nil {
				return nil, err
			}
			if len(f) != 1 {
				return nil, errf("antientropy takes no argument")
			}
			s.AntiEntropy = true
		case "adapt":
			if err := once("adapt"); err != nil {
				return nil, err
			}
			switch {
			case len(f) == 1:
				s.Adapt = true
			case len(f) == 3 && f[1] == "every":
				n, err := strconv.Atoi(f[2])
				if err != nil || n <= 0 {
					return nil, errf("adapt every needs a positive op stride, not %q", f[2])
				}
				s.Adapt = true
				s.AdaptEvery = n
			default:
				return nil, errf(`adapt takes no argument or "every <ops>"`)
			}
		case "latency":
			if err := parseLatency(f, s, seen, errf); err != nil {
				return nil, err
			}
		case "phase":
			p, err := parsePhase(f, errf)
			if err != nil {
				return nil, err
			}
			s.Phases = append(s.Phases, p)
		case "ramp":
			p, err := parseRamp(f, errf)
			if err != nil {
				return nil, err
			}
			s.Phases = append(s.Phases, p)
		case "fault":
			if len(f) != 2 {
				return nil, errf("fault needs one schedule token like 10ms:crash=2;20ms:heal")
			}
			sched, err := cluster.ParseSchedule(f[1])
			if err != nil {
				return nil, errf("fault: %v", err)
			}
			s.Schedule = append(s.Schedule, sched...)
		case "expect":
			e, err := parseExpect(f, errf)
			if err != nil {
				return nil, err
			}
			if seenExpect[e.Kind] {
				return nil, errf("duplicate expect %s", e.Kind)
			}
			seenExpect[e.Kind] = true
			s.Expects = append(s.Expects, e)
		default:
			return nil, errf("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func validName(name string) bool {
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return name != ""
}

func parsePositiveInt(f []string, dst *int, once func(string) error, errf func(string, ...any) error) error {
	if err := once(f[0]); err != nil {
		return err
	}
	if len(f) != 2 {
		return errf("%s needs a positive count", f[0])
	}
	n, err := strconv.Atoi(f[1])
	if err != nil || n <= 0 {
		return errf("%s needs a positive count, not %q", f[0], f[1])
	}
	*dst = n
	return nil
}

func parsePositiveDuration(f []string, dst *time.Duration, once func(string) error, errf func(string, ...any) error) error {
	if err := once(f[0]); err != nil {
		return err
	}
	if len(f) != 2 {
		return errf("%s needs a positive duration", f[0])
	}
	d, err := time.ParseDuration(f[1])
	if err != nil || d <= 0 {
		return errf("%s needs a positive duration, not %q", f[0], f[1])
	}
	*dst = d
	return nil
}

func parseLatency(f []string, s *Spec, seen map[string]bool, errf func(string, ...any) error) error {
	if len(f) < 2 {
		return errf("latency needs a subdirective: base, jitter, dist, level or site")
	}
	dup := func(key string) error {
		if seen[key] {
			return errf("duplicate latency %s directive", strings.TrimPrefix(key, "latency "))
		}
		seen[key] = true
		return nil
	}
	switch f[1] {
	case "base", "jitter":
		if err := dup("latency " + f[1]); err != nil {
			return err
		}
		if len(f) != 3 {
			return errf("latency %s needs a positive duration", f[1])
		}
		d, err := time.ParseDuration(f[2])
		if err != nil || d <= 0 {
			return errf("latency %s needs a positive duration, not %q", f[1], f[2])
		}
		if f[1] == "base" {
			s.Latency.Base = d
		} else {
			s.Latency.Jitter = d
		}
	case "dist":
		if err := dup("latency dist"); err != nil {
			return err
		}
		if len(f) != 3 {
			return errf("latency dist needs a distribution name")
		}
		if _, err := transport.ParseJitterDist(f[2]); err != nil {
			return errf("latency dist: %v", err)
		}
		s.Latency.Dist = f[2]
	case "level":
		if len(f) != 4 {
			return errf("latency level needs <level> <rtt>")
		}
		lv, err := strconv.Atoi(f[2])
		if err != nil || lv < 0 {
			return errf("latency level needs a level index >= 0, not %q", f[2])
		}
		if err := dup("latency level " + f[2]); err != nil {
			return err
		}
		d, err := time.ParseDuration(f[3])
		if err != nil || d <= 0 {
			return errf("latency level %d needs a positive rtt, not %q", lv, f[3])
		}
		s.Latency.Levels = append(s.Latency.Levels, LevelRTT{Level: lv, RTT: d})
	case "site":
		if len(f) != 4 {
			return errf("latency site needs <site> <rtt>")
		}
		site, err := strconv.Atoi(f[2])
		if err != nil || site <= 0 {
			return errf("latency site needs a site id, not %q", f[2])
		}
		if err := dup("latency site " + f[2]); err != nil {
			return err
		}
		d, err := time.ParseDuration(f[3])
		if err != nil || d <= 0 {
			return errf("latency site %d needs a positive rtt, not %q", site, f[3])
		}
		s.Latency.Sites = append(s.Latency.Sites, SiteRTT{Site: tree.SiteID(site), RTT: d})
	default:
		return errf("unknown latency subdirective %q (want base, jitter, dist, level or site)", f[1])
	}
	return nil
}

func parsePhase(f []string, errf func(string, ...any) error) (Phase, error) {
	if len(f) != 3 && !(len(f) == 5 && f[3] == "zipf") {
		return Phase{}, errf("phase needs <profile> <ops> [zipf <s>]")
	}
	p := Phase{Profile: sim.Profile(f[1])}
	if _, err := p.Profile.ReadFraction(); err != nil {
		return Phase{}, errf("phase: %v", err)
	}
	ops, err := strconv.Atoi(f[2])
	if err != nil || ops <= 0 {
		return Phase{}, errf("phase needs a positive op count, not %q", f[2])
	}
	p.Ops = ops
	if len(f) == 5 {
		z, err := strconv.ParseFloat(f[4], 64)
		if err != nil || z <= 1 {
			return Phase{}, errf("phase zipf needs a skew > 1, not %q", f[4])
		}
		p.Zipf = z
	}
	return p, nil
}

func parseRamp(f []string, errf func(string, ...any) error) (Phase, error) {
	p := Phase{Ramp: true}
	if len(f) < 4 {
		return Phase{}, errf("ramp needs <from> <to> <ops> [steps <n>] [zipf <s>]")
	}
	p.From, p.To = sim.Profile(f[1]), sim.Profile(f[2])
	for _, prof := range []sim.Profile{p.From, p.To} {
		if _, err := prof.ReadFraction(); err != nil {
			return Phase{}, errf("ramp: %v", err)
		}
	}
	ops, err := strconv.Atoi(f[3])
	if err != nil || ops < 2 {
		return Phase{}, errf("ramp needs an op count >= 2, not %q", f[3])
	}
	p.Ops = ops
	rest := f[4:]
	if len(rest) >= 2 && rest[0] == "steps" {
		n, err := strconv.Atoi(rest[1])
		if err != nil || n < 2 {
			return Phase{}, errf("ramp steps needs a count >= 2, not %q", rest[1])
		}
		if n > p.Ops {
			return Phase{}, errf("ramp steps %d exceeds its %d ops", n, p.Ops)
		}
		p.Steps = n
		rest = rest[2:]
	}
	if len(rest) >= 2 && rest[0] == "zipf" {
		z, err := strconv.ParseFloat(rest[1], 64)
		if err != nil || z <= 1 {
			return Phase{}, errf("ramp zipf needs a skew > 1, not %q", rest[1])
		}
		p.Zipf = z
		rest = rest[2:]
	}
	if len(rest) != 0 {
		return Phase{}, errf("ramp needs <from> <to> <ops> [steps <n>] [zipf <s>]")
	}
	return p, nil
}

func parseExpect(f []string, errf func(string, ...any) error) (Expect, error) {
	if len(f) < 2 {
		return Expect{}, errf("expect needs an assertion")
	}
	kind := f[1]
	numeric, ok := expectKinds[kind]
	if !ok {
		return Expect{}, errf("unknown expect %q (want no-violations, no-history-violations, margin-gaps, adapt-decisions, reconfigurations, failures, sheds or final-spec)", kind)
	}
	e := Expect{Kind: kind}
	switch {
	case kind == "final-spec":
		if len(f) != 3 {
			return Expect{}, errf("expect final-spec needs a tree spec")
		}
		tr, err := tree.ParseSpec(f[2])
		if err != nil {
			return Expect{}, errf("expect final-spec: %v", err)
		}
		e.Spec = tr.Spec()
	case !numeric:
		if len(f) != 2 {
			return Expect{}, errf("expect %s takes no argument", kind)
		}
	default:
		if len(f) != 3 {
			return Expect{}, errf("expect %s needs a count like 0, >=1 or <=3", kind)
		}
		e.Cmp, e.N = "==", 0
		num := f[2]
		if rest, ok := strings.CutPrefix(num, ">="); ok {
			e.Cmp, num = ">=", rest
		} else if rest, ok := strings.CutPrefix(num, "<="); ok {
			e.Cmp, num = "<=", rest
		}
		n, err := strconv.Atoi(num)
		if err != nil || n < 0 {
			return Expect{}, errf("expect %s needs a count like 0, >=1 or <=3, not %q", kind, f[2])
		}
		e.N = n
	}
	return e, nil
}

// validate cross-checks the whole spec once every line is read.
func (s *Spec) validate() error {
	if s.Tree == "" {
		return fmt.Errorf("scenario: missing tree directive")
	}
	tr, err := tree.ParseSpec(s.Tree)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if s.Ops == 0 && len(s.Phases) == 0 {
		return fmt.Errorf("scenario: missing workload: add ops or phase/ramp lines")
	}
	if len(s.Phases) > 0 && (s.Ops != 0 || s.Profile != "" || s.Zipf != 0) {
		return fmt.Errorf("scenario: ops, profile and zipf conflict with phase/ramp lines (phases define the workload)")
	}
	if s.Latency.Dist != "" && s.Latency.Jitter == 0 {
		return fmt.Errorf("scenario: latency dist needs latency jitter")
	}
	// Canonical order: latency classes sorted, fault events time-ordered
	// even when they came from several fault lines.
	sort.SliceStable(s.Schedule, func(i, j int) bool { return s.Schedule[i].At < s.Schedule[j].At })
	sort.Slice(s.Latency.Levels, func(i, j int) bool { return s.Latency.Levels[i].Level < s.Latency.Levels[j].Level })
	sort.Slice(s.Latency.Sites, func(i, j int) bool { return s.Latency.Sites[i].Site < s.Latency.Sites[j].Site })
	for _, lv := range s.Latency.Levels {
		if lv.Level >= tr.NumPhysicalLevels() {
			return fmt.Errorf("scenario: latency level %d: tree %s has physical levels 0..%d",
				lv.Level, s.Tree, tr.NumPhysicalLevels()-1)
		}
	}
	for _, sr := range s.Latency.Sites {
		if tr.SiteNode(sr.Site) == nil {
			return fmt.Errorf("scenario: latency site %d: no such site in tree %s", sr.Site, s.Tree)
		}
	}
	for _, ev := range s.Schedule {
		for _, group := range [][]tree.SiteID{ev.Crash, ev.Recover, ev.RecoverSync, ev.Saturate, ev.Unsaturate, ev.Drain} {
			for _, site := range group {
				if tr.SiteNode(site) == nil {
					return fmt.Errorf("scenario: fault schedule references site %d, not in tree %s", site, s.Tree)
				}
			}
		}
		for _, sl := range ev.SlowSite {
			if tr.SiteNode(sl.Site) == nil {
				return fmt.Errorf("scenario: fault schedule references site %d, not in tree %s", sl.Site, s.Tree)
			}
		}
		for _, group := range ev.Partition {
			for _, site := range group {
				if tr.SiteNode(site) == nil {
					return fmt.Errorf("scenario: fault schedule references site %d, not in tree %s", site, s.Tree)
				}
			}
		}
	}
	for _, e := range s.Expects {
		if (e.Kind == "adapt-decisions" || e.Kind == "reconfigurations") && !s.Adapt {
			return fmt.Errorf("scenario: expect %s requires adapt", e.Kind)
		}
		if e.Kind == "margin-gaps" && s.AntiEntropy {
			return fmt.Errorf("scenario: expect margin-gaps conflicts with antientropy (gaps are hard violations there)")
		}
	}
	return nil
}
