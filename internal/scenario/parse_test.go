package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseScenarioTable is the closed-world corpus for the .arb syntax,
// in the style of the wire malformed-decode table: every success case
// pins the canonical rendering (and that it re-parses to the same Spec),
// every rejection pins the exact error message.
func TestParseScenarioTable(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // canonical form; "" means an error is expected
		err  string // exact error message
	}{
		// --- success and canonicalization ---
		{
			name: "minimal",
			in:   "tree 1-3-5\nops 10\n",
			want: "tree 1-3-5\nops 10\n",
		},
		{
			name: "directive order is canonicalized",
			in:   "ops 10\nseed 3\ntree 1-3-5\nscenario x\n",
			want: "scenario x\ntree 1-3-5\nseed 3\nops 10\n",
		},
		{
			name: "comments and blank lines are stripped",
			in:   "# header\n\ntree 1-3-5 # trailing\n\nops 10\n",
			want: "tree 1-3-5\nops 10\n",
		},
		{
			name: "whitespace is insignificant",
			in:   "  tree   1-3-5  \n\tops\t10\n",
			want: "tree 1-3-5\nops 10\n",
		},
		{
			name: "durations render canonically",
			in:   "tree 1-3-5\nops 10\ntimeout 1500ms\nlockttl 1000ms\n",
			want: "tree 1-3-5\nops 10\ntimeout 1.5s\nlockttl 1s\n",
		},
		{
			name: "zipf drops trailing zeros",
			in:   "tree 1-3-5\nops 10\nzipf 1.40\n",
			want: "tree 1-3-5\nops 10\nzipf 1.4\n",
		},
		{
			name: "seed zero is the default and not rendered",
			in:   "tree 1-3-5\nseed 0\nops 10\n",
			want: "tree 1-3-5\nops 10\n",
		},
		{
			name: "numeric profile",
			in:   "tree 1-3-5\nops 10\nprofile r0.7\n",
			want: "tree 1-3-5\nops 10\nprofile r0.7\n",
		},
		{
			name: "logical-node tree spec",
			in:   "tree 1-3-5+4\nops 10\n",
			want: "tree 1-3-5+4\nops 10\n",
		},
		{
			name: "adapt bare",
			in:   "tree 1-8\nops 10\nadapt\n",
			want: "tree 1-8\nops 10\nadapt\n",
		},
		{
			name: "adapt every",
			in:   "tree 1-8\nops 10\nadapt every 5\n",
			want: "tree 1-8\nops 10\nadapt every 5\n",
		},
		{
			name: "antientropy",
			in:   "tree 1-3-5\nops 10\nantientropy\n",
			want: "tree 1-3-5\nops 10\nantientropy\n",
		},
		{
			name: "latency classes sort by level and site",
			in:   "tree 1-3-5\nops 10\nlatency level 1 4ms\nlatency level 0 2ms\nlatency site 8 9ms\nlatency site 2 3ms\n",
			want: "tree 1-3-5\nops 10\nlatency level 0 2ms\nlatency level 1 4ms\nlatency site 2 3ms\nlatency site 8 9ms\n",
		},
		{
			name: "full latency geometry",
			in:   "tree 1-3-5\nops 10\nlatency dist pareto\nlatency jitter 500us\nlatency base 1ms\n",
			want: "tree 1-3-5\nops 10\nlatency base 1ms\nlatency jitter 500µs\nlatency dist pareto\n",
		},
		{
			name: "phases with zipf",
			in:   "tree 1-3-5\nphase balanced 20 zipf 1.5\nphase mostly-read 30\n",
			want: "tree 1-3-5\nphase balanced 20 zipf 1.5\nphase mostly-read 30\n",
		},
		{
			name: "ramp minimal",
			in:   "tree 1-8\nramp mostly-read mostly-write 40\n",
			want: "tree 1-8\nramp mostly-read mostly-write 40\n",
		},
		{
			name: "ramp with steps and zipf",
			in:   "tree 1-8\nramp mostly-read mostly-write 40 steps 8 zipf 1.2\n",
			want: "tree 1-8\nramp mostly-read mostly-write 40 steps 8 zipf 1.2\n",
		},
		{
			name: "fault lines merge time-ordered",
			in:   "tree 1-3-5\nops 10\nfault 10ms:heal\nfault 5ms:crash=1\n",
			want: "tree 1-3-5\nops 10\nfault 5ms:crash=1;10ms:heal\n",
		},
		{
			name: "multi-action fault event",
			in:   "tree 1-3-5\nops 10\nfault 5ms:crash=2+partition=3,4\n",
			want: "tree 1-3-5\nops 10\nfault 5ms:crash=2+partition=3,4\n",
		},
		{
			name: "expect spectrum",
			in:   "tree 1-8\nops 10\nadapt\nexpect no-violations\nexpect margin-gaps 0\nexpect adapt-decisions >=1\nexpect failures <=3\nexpect final-spec 1-8\n",
			want: "tree 1-8\nops 10\nadapt\nexpect no-violations\nexpect margin-gaps 0\nexpect adapt-decisions >=1\nexpect failures <=3\nexpect final-spec 1-8\n",
		},
		// --- rejections: directive syntax ---
		{
			name: "unknown directive",
			in:   "tree 1-3-5\nops 10\nbogus 1\n",
			err:  `scenario: line 3: unknown directive "bogus"`,
		},
		{
			name: "scenario without a name",
			in:   "scenario\ntree 1-3-5\nops 10\n",
			err:  "scenario: line 1: scenario needs a name",
		},
		{
			name: "scenario name with bad characters",
			in:   "scenario a/b\ntree 1-3-5\nops 10\n",
			err:  `scenario: line 1: scenario name "a/b" may use letters, digits, dots, dashes and underscores`,
		},
		{
			name: "tree without a spec",
			in:   "tree\nops 10\n",
			err:  "scenario: line 1: tree needs a spec like 1-3-5",
		},
		{
			name: "tree with a bad spec",
			in:   "tree 1-x\nops 10\n",
			err:  `scenario: line 1: tree: tree: level 1: bad physical count "x"`,
		},
		{
			name: "seed not an integer",
			in:   "tree 1-3-5\nseed abc\nops 10\n",
			err:  `scenario: line 2: seed needs an integer, not "abc"`,
		},
		{
			name: "ops zero",
			in:   "tree 1-3-5\nops 0\n",
			err:  `scenario: line 2: ops needs a positive count, not "0"`,
		},
		{
			name: "keys negative",
			in:   "tree 1-3-5\nops 10\nkeys -1\n",
			err:  `scenario: line 3: keys needs a positive count, not "-1"`,
		},
		{
			name: "clients not a number",
			in:   "tree 1-3-5\nops 10\nclients two\n",
			err:  `scenario: line 3: clients needs a positive count, not "two"`,
		},
		{
			name: "faults missing count",
			in:   "tree 1-3-5\nops 10\nfaults\n",
			err:  "scenario: line 3: faults needs a positive count",
		},
		{
			name: "unknown profile",
			in:   "tree 1-3-5\nops 10\nprofile turbo\n",
			err:  `scenario: line 3: profile: sim: unknown profile "turbo" (want mostly-read, mostly-write, balanced or r<fraction>)`,
		},
		{
			name: "zipf at one",
			in:   "tree 1-3-5\nops 10\nzipf 1\n",
			err:  `scenario: line 3: zipf needs a skew > 1, not "1"`,
		},
		{
			name: "timeout zero",
			in:   "tree 1-3-5\nops 10\ntimeout 0s\n",
			err:  `scenario: line 3: timeout needs a positive duration, not "0s"`,
		},
		{
			name: "lockttl malformed",
			in:   "tree 1-3-5\nops 10\nlockttl fast\n",
			err:  `scenario: line 3: lockttl needs a positive duration, not "fast"`,
		},
		{
			name: "antientropy with an argument",
			in:   "tree 1-3-5\nops 10\nantientropy on\n",
			err:  "scenario: line 3: antientropy takes no argument",
		},
		{
			name: "adapt with garbage",
			in:   "tree 1-8\nops 10\nadapt now\n",
			err:  `scenario: line 3: adapt takes no argument or "every <ops>"`,
		},
		{
			name: "adapt every zero",
			in:   "tree 1-8\nops 10\nadapt every 0\n",
			err:  `scenario: line 3: adapt every needs a positive op stride, not "0"`,
		},
		// --- rejections: duplicates ---
		{
			name: "duplicate tree",
			in:   "tree 1-3-5\ntree 1-8\nops 10\n",
			err:  "scenario: line 2: duplicate tree directive",
		},
		{
			name: "duplicate ops",
			in:   "tree 1-3-5\nops 10\nops 20\n",
			err:  "scenario: line 3: duplicate ops directive",
		},
		{
			name: "duplicate latency base",
			in:   "tree 1-3-5\nops 10\nlatency base 1ms\nlatency base 2ms\n",
			err:  "scenario: line 4: duplicate latency base directive",
		},
		{
			name: "duplicate latency level",
			in:   "tree 1-3-5\nops 10\nlatency level 0 1ms\nlatency level 0 2ms\n",
			err:  "scenario: line 4: duplicate latency level 0 directive",
		},
		{
			name: "duplicate expect kind",
			in:   "tree 1-3-5\nops 10\nexpect no-violations\nexpect no-violations\n",
			err:  "scenario: line 4: duplicate expect no-violations",
		},
		// --- rejections: latency ---
		{
			name: "latency without a subdirective",
			in:   "tree 1-3-5\nops 10\nlatency\n",
			err:  "scenario: line 3: latency needs a subdirective: base, jitter, dist, level or site",
		},
		{
			name: "latency unknown subdirective",
			in:   "tree 1-3-5\nops 10\nlatency rtt 1ms\n",
			err:  `scenario: line 3: unknown latency subdirective "rtt" (want base, jitter, dist, level or site)`,
		},
		{
			name: "latency base malformed",
			in:   "tree 1-3-5\nops 10\nlatency base soon\n",
			err:  `scenario: line 3: latency base needs a positive duration, not "soon"`,
		},
		{
			name: "latency dist unknown",
			in:   "tree 1-3-5\nops 10\nlatency jitter 1ms\nlatency dist normal\n",
			err:  `scenario: line 4: latency dist: transport: unknown jitter distribution "normal" (want uniform, exponential or pareto)`,
		},
		{
			name: "latency level missing rtt",
			in:   "tree 1-3-5\nops 10\nlatency level 0\n",
			err:  "scenario: line 3: latency level needs <level> <rtt>",
		},
		{
			name: "latency level negative",
			in:   "tree 1-3-5\nops 10\nlatency level -1 2ms\n",
			err:  `scenario: line 3: latency level needs a level index >= 0, not "-1"`,
		},
		{
			name: "latency site zero",
			in:   "tree 1-3-5\nops 10\nlatency site 0 2ms\n",
			err:  `scenario: line 3: latency site needs a site id, not "0"`,
		},
		{
			name: "latency site rtt malformed",
			in:   "tree 1-3-5\nops 10\nlatency site 2 -1ms\n",
			err:  `scenario: line 3: latency site 2 needs a positive rtt, not "-1ms"`,
		},
		// --- rejections: phases and ramps ---
		{
			name: "phase arity",
			in:   "tree 1-3-5\nphase balanced\n",
			err:  "scenario: line 2: phase needs <profile> <ops> [zipf <s>]",
		},
		{
			name: "phase unknown profile",
			in:   "tree 1-3-5\nphase turbo 10\n",
			err:  `scenario: line 2: phase: sim: unknown profile "turbo" (want mostly-read, mostly-write, balanced or r<fraction>)`,
		},
		{
			name: "phase ops zero",
			in:   "tree 1-3-5\nphase balanced 0\n",
			err:  `scenario: line 2: phase needs a positive op count, not "0"`,
		},
		{
			name: "phase zipf too small",
			in:   "tree 1-3-5\nphase balanced 10 zipf 1.0\n",
			err:  `scenario: line 2: phase zipf needs a skew > 1, not "1.0"`,
		},
		{
			name: "ramp arity",
			in:   "tree 1-8\nramp mostly-read mostly-write\n",
			err:  "scenario: line 2: ramp needs <from> <to> <ops> [steps <n>] [zipf <s>]",
		},
		{
			name: "ramp one op",
			in:   "tree 1-8\nramp mostly-read mostly-write 1\n",
			err:  `scenario: line 2: ramp needs an op count >= 2, not "1"`,
		},
		{
			name: "ramp steps one",
			in:   "tree 1-8\nramp mostly-read mostly-write 40 steps 1\n",
			err:  `scenario: line 2: ramp steps needs a count >= 2, not "1"`,
		},
		{
			name: "ramp steps exceed ops",
			in:   "tree 1-8\nramp mostly-read mostly-write 4 steps 8\n",
			err:  "scenario: line 2: ramp steps 8 exceeds its 4 ops",
		},
		{
			name: "ramp trailing garbage",
			in:   "tree 1-8\nramp mostly-read mostly-write 40 steps 4 now\n",
			err:  "scenario: line 2: ramp needs <from> <to> <ops> [steps <n>] [zipf <s>]",
		},
		// --- rejections: faults and expects ---
		{
			name: "fault with spaces",
			in:   "tree 1-3-5\nops 10\nfault 10ms:crash=1; 20ms:heal\n",
			err:  "scenario: line 3: fault needs one schedule token like 10ms:crash=2;20ms:heal",
		},
		{
			name: "fault bad schedule",
			in:   "tree 1-3-5\nops 10\nfault 10ms:melt\n",
			err:  `scenario: line 3: fault: cluster: unknown schedule action "melt"`,
		},
		{
			name: "expect without an assertion",
			in:   "tree 1-3-5\nops 10\nexpect\n",
			err:  "scenario: line 3: expect needs an assertion",
		},
		{
			name: "expect unknown kind",
			in:   "tree 1-3-5\nops 10\nexpect perfection\n",
			err:  `scenario: line 3: unknown expect "perfection" (want no-violations, no-history-violations, margin-gaps, adapt-decisions, reconfigurations, failures, sheds or final-spec)`,
		},
		{
			name: "expect flag kind with argument",
			in:   "tree 1-3-5\nops 10\nexpect no-violations 0\n",
			err:  "scenario: line 3: expect no-violations takes no argument",
		},
		{
			name: "expect numeric kind without count",
			in:   "tree 1-3-5\nops 10\nexpect margin-gaps\n",
			err:  "scenario: line 3: expect margin-gaps needs a count like 0, >=1 or <=3",
		},
		{
			name: "expect numeric kind bad count",
			in:   "tree 1-3-5\nops 10\nexpect failures >=x\n",
			err:  `scenario: line 3: expect failures needs a count like 0, >=1 or <=3, not ">=x"`,
		},
		{
			name: "expect final-spec bad tree",
			in:   "tree 1-3-5\nops 10\nexpect final-spec 1-y\n",
			err:  `scenario: line 3: expect final-spec: tree: level 1: bad physical count "y"`,
		},
		// --- rejections: whole-file validation ---
		{
			name: "missing tree",
			in:   "ops 10\n",
			err:  "scenario: missing tree directive",
		},
		{
			name: "missing workload",
			in:   "tree 1-3-5\n",
			err:  "scenario: missing workload: add ops or phase/ramp lines",
		},
		{
			name: "ops conflict with phases",
			in:   "tree 1-3-5\nops 10\nphase balanced 10\n",
			err:  "scenario: ops, profile and zipf conflict with phase/ramp lines (phases define the workload)",
		},
		{
			name: "profile conflict with phases",
			in:   "tree 1-3-5\nprofile balanced\nphase balanced 10\n",
			err:  "scenario: ops, profile and zipf conflict with phase/ramp lines (phases define the workload)",
		},
		{
			name: "dist without jitter",
			in:   "tree 1-3-5\nops 10\nlatency dist pareto\n",
			err:  "scenario: latency dist needs latency jitter",
		},
		{
			name: "latency level out of range",
			in:   "tree 1-3-5\nops 10\nlatency level 2 2ms\n",
			err:  "scenario: latency level 2: tree 1-3-5 has physical levels 0..1",
		},
		{
			name: "latency site not in tree",
			in:   "tree 1-3-5\nops 10\nlatency site 9 2ms\n",
			err:  "scenario: latency site 9: no such site in tree 1-3-5",
		},
		{
			name: "fault schedule site not in tree",
			in:   "tree 1-3-5\nops 10\nfault 5ms:crash=9\n",
			err:  "scenario: fault schedule references site 9, not in tree 1-3-5",
		},
		{
			name: "fault partition site not in tree",
			in:   "tree 1-3-5\nops 10\nfault 5ms:partition=1,9\n",
			err:  "scenario: fault schedule references site 9, not in tree 1-3-5",
		},
		{
			name: "expect adapt-decisions without adapt",
			in:   "tree 1-8\nops 10\nexpect adapt-decisions >=1\n",
			err:  "scenario: expect adapt-decisions requires adapt",
		},
		{
			name: "expect reconfigurations without adapt",
			in:   "tree 1-8\nops 10\nexpect reconfigurations 0\n",
			err:  "scenario: expect reconfigurations requires adapt",
		},
		{
			name: "expect margin-gaps with antientropy",
			in:   "tree 1-3-5\nops 10\nantientropy\nexpect margin-gaps 0\n",
			err:  "scenario: expect margin-gaps conflicts with antientropy (gaps are hard violations there)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := Parse(tc.in)
			if tc.err != "" {
				if err == nil {
					t.Fatalf("Parse accepted %q as:\n%s", tc.in, spec)
				}
				if err.Error() != tc.err {
					t.Fatalf("Parse error = %q, want %q", err, tc.err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			got := spec.String()
			if got != tc.want {
				t.Fatalf("canonical form = %q, want %q", got, tc.want)
			}
			// The canonical form must be a fixpoint: reparse and compare
			// both the structure and the rendering.
			again, err := Parse(got)
			if err != nil {
				t.Fatalf("reparse of canonical form: %v", err)
			}
			if !reflect.DeepEqual(spec, again) {
				t.Fatalf("reparse changed the spec:\n first: %+v\nsecond: %+v", spec, again)
			}
			if again.String() != got {
				t.Fatalf("second render differs:\n first: %q\nsecond: %q", got, again.String())
			}
		})
	}
}

// TestParseScenarioKitchenSink exercises every directive in one file and
// checks a few structural details the table cannot see.
func TestParseScenarioKitchenSink(t *testing.T) {
	in := strings.Join([]string{
		"scenario kitchen-sink",
		"tree 1-3-5",
		"seed -7",
		"keys 8",
		"clients 3",
		"faults 2",
		"timeout 100ms",
		"lockttl 2s",
		"antientropy",
		"adapt every 10",
		"latency base 1ms",
		"latency jitter 500us",
		"latency dist exponential",
		"latency level 0 2ms",
		"latency site 5 6ms",
		"phase mostly-read 40",
		"ramp mostly-read mostly-write 40 steps 4",
		"fault 5ms:crash=2;20ms:recoversync=2",
		"expect no-violations",
		"expect final-spec 1-3-5",
	}, "\n")
	spec, err := Parse(in)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != -7 || !spec.AntiEntropy || spec.AdaptEvery != 10 {
		t.Errorf("scalar fields wrong: %+v", spec)
	}
	if len(spec.Phases) != 2 || !spec.Phases[1].Ramp || spec.Phases[1].Steps != 4 {
		t.Errorf("phases wrong: %+v", spec.Phases)
	}
	if len(spec.Schedule) != 2 || len(spec.Expects) != 2 {
		t.Errorf("schedule/expects wrong: %d events, %d expects", len(spec.Schedule), len(spec.Expects))
	}
	again, err := Parse(spec.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !reflect.DeepEqual(spec, again) {
		t.Fatalf("kitchen sink is not a fixpoint:\n first: %+v\nsecond: %+v", spec, again)
	}
}
