// Package scenario implements the .arb scenario language: one checked-in,
// replayable text file that specifies everything a simulated experiment
// needs — the replica topology, a geographic latency matrix, the workload
// phases (including hot-key skew, flash crowds and diurnal ramps), the
// fault schedule, and the expected outcome. Parse reads the line-oriented
// syntax with the same closed-world rigor as internal/wire (unknown or
// duplicate directives are errors, every reference is validated against
// the declared tree), String renders the canonical form (parse→format→
// parse is a fixpoint, fuzz-verified), and Compile lowers the spec onto
// the deterministic chaos harness: a sim.Config plus a fully-derived
// sim.Input whose generated events are merged with the scenario's explicit
// fault lines. Check then judges a finished run against the expect
// assertions, so a scenarios/ corpus replays green or explains why not.
//
// A scenario file looks like:
//
//	scenario workload-flip
//	tree 1-8
//	seed 11
//	faults 3
//	phase mostly-read 40
//	phase mostly-write 60 zipf 1.2
//	ramp mostly-write mostly-read 80 steps 4
//	latency level 0 2ms
//	fault 35ms:crash=2+partition=3,4
//	adapt every 10
//	expect no-violations
//	expect reconfigurations >=2
//	expect final-spec 1-8
//
// Blank lines are skipped and # starts a comment anywhere on a line.
package scenario

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"arbor/internal/cluster"
	"arbor/internal/sim"
	"arbor/internal/tree"
)

// Spec is one parsed scenario. The zero value of every field means "not
// written in the file": String omits it and Compile falls back to the
// harness defaults, so a Spec round-trips structurally through its
// canonical rendering.
type Spec struct {
	// Name is the scenario's identifier (the scenario directive).
	Name string
	// Tree is the canonical replica-tree spec, e.g. "1-3-5". Required.
	Tree string
	// Seed drives every generator in the lowered run.
	Seed int64
	// Ops/Profile/Zipf describe a plain (unphased) workload; they conflict
	// with phase and ramp lines.
	Ops     int
	Profile sim.Profile
	Zipf    float64
	// Keys and Clients size the workload population.
	Keys    int
	Clients int
	// Faults asks the harness for that many generated fault events on top
	// of the explicit fault lines. Unset means none: a scenario injects
	// only what it declares.
	Faults int
	// Timeout and LockTTL tune the cluster.
	Timeout time.Duration
	LockTTL time.Duration
	// AntiEntropy recovers replicas through the catch-up path and turns
	// durability-margin gaps into hard violations.
	AntiEntropy bool
	// Adapt runs the adaptation controller, stepped every AdaptEvery ops.
	Adapt      bool
	AdaptEvery int
	// Latency is the network geometry.
	Latency Latency
	// Phases is the workload timeline, in file order.
	Phases []Phase
	// Schedule is the explicit fault schedule, the concatenation of the
	// file's fault lines in cluster.Schedule syntax.
	Schedule cluster.Schedule
	// Expects are the outcome assertions, in file order.
	Expects []Expect
}

// Latency is the scenario's network geometry: a base+jitter pair applied
// to every message, plus per-level and per-site round-trip classes that
// lower onto the transport's link-latency hook (a message to or from a
// listed site pays RTT/2 each way; site entries override level entries).
type Latency struct {
	Base   time.Duration
	Jitter time.Duration
	// Dist names the jitter distribution (uniform, exponential, pareto).
	Dist string
	// Levels holds per-physical-level RTT classes, ascending by level.
	Levels []LevelRTT
	// Sites holds per-site RTT overrides, ascending by site.
	Sites []SiteRTT
}

// LevelRTT assigns one RTT class to every site of physical level Level
// (0-based over the tree's physical levels, root side first).
type LevelRTT struct {
	Level int
	RTT   time.Duration
}

// SiteRTT assigns an RTT class to a single site.
type SiteRTT struct {
	Site tree.SiteID
	RTT  time.Duration
}

// Phase is one workload timeline entry: either a plain phase drawing from
// Profile for Ops operations, or (Ramp set) a diurnal ramp interpolating
// the read fraction from From to To across Steps equal slices of Ops.
type Phase struct {
	Ramp    bool
	Profile sim.Profile // plain phase
	From    sim.Profile // ramp endpoints
	To      sim.Profile
	Ops     int
	// Steps is the ramp's interpolation resolution; 0 means the compile
	// default (4, clamped to Ops).
	Steps int
	// Zipf, when > 1, skews the phase's key popularity (flash crowd).
	Zipf float64
}

func (p Phase) line() string {
	if p.Ramp {
		s := fmt.Sprintf("ramp %s %s %d", p.From, p.To, p.Ops)
		if p.Steps != 0 {
			s += fmt.Sprintf(" steps %d", p.Steps)
		}
		if p.Zipf > 1 {
			s += " zipf " + formatFloat(p.Zipf)
		}
		return s
	}
	s := fmt.Sprintf("phase %s %d", p.Profile, p.Ops)
	if p.Zipf > 1 {
		s += " zipf " + formatFloat(p.Zipf)
	}
	return s
}

// Expect is one outcome assertion. Kind is one of no-violations,
// no-history-violations, margin-gaps, adapt-decisions, reconfigurations,
// failures, sheds or final-spec. Numeric kinds compare via Cmp ("==",
// ">=", "<=") against N; sheds counts typed overload rejections from the
// replica admission gates; final-spec compares the run's ending tree
// spec.
type Expect struct {
	Kind string
	Cmp  string
	N    int
	Spec string
}

// String renders the assertion without the "expect " prefix.
func (e Expect) String() string {
	switch e.Kind {
	case "no-violations", "no-history-violations":
		return e.Kind
	case "final-spec":
		return e.Kind + " " + e.Spec
	}
	if e.Cmp == "" || e.Cmp == "==" {
		return fmt.Sprintf("%s %d", e.Kind, e.N)
	}
	return fmt.Sprintf("%s %s%d", e.Kind, e.Cmp, e.N)
}

// String renders the canonical scenario text: every set field, one
// directive per line, in fixed order. Parse(String()) reproduces the Spec
// exactly.
func (s *Spec) String() string {
	var b strings.Builder
	if s.Name != "" {
		fmt.Fprintf(&b, "scenario %s\n", s.Name)
	}
	fmt.Fprintf(&b, "tree %s\n", s.Tree)
	if s.Seed != 0 {
		fmt.Fprintf(&b, "seed %d\n", s.Seed)
	}
	if s.Ops != 0 {
		fmt.Fprintf(&b, "ops %d\n", s.Ops)
	}
	if s.Profile != "" {
		fmt.Fprintf(&b, "profile %s\n", s.Profile)
	}
	if s.Zipf != 0 {
		fmt.Fprintf(&b, "zipf %s\n", formatFloat(s.Zipf))
	}
	if s.Keys != 0 {
		fmt.Fprintf(&b, "keys %d\n", s.Keys)
	}
	if s.Clients != 0 {
		fmt.Fprintf(&b, "clients %d\n", s.Clients)
	}
	if s.Faults != 0 {
		fmt.Fprintf(&b, "faults %d\n", s.Faults)
	}
	if s.Timeout != 0 {
		fmt.Fprintf(&b, "timeout %s\n", s.Timeout)
	}
	if s.LockTTL != 0 {
		fmt.Fprintf(&b, "lockttl %s\n", s.LockTTL)
	}
	if s.AntiEntropy {
		b.WriteString("antientropy\n")
	}
	if s.Adapt {
		if s.AdaptEvery != 0 {
			fmt.Fprintf(&b, "adapt every %d\n", s.AdaptEvery)
		} else {
			b.WriteString("adapt\n")
		}
	}
	if s.Latency.Base != 0 {
		fmt.Fprintf(&b, "latency base %s\n", s.Latency.Base)
	}
	if s.Latency.Jitter != 0 {
		fmt.Fprintf(&b, "latency jitter %s\n", s.Latency.Jitter)
	}
	if s.Latency.Dist != "" {
		fmt.Fprintf(&b, "latency dist %s\n", s.Latency.Dist)
	}
	for _, lv := range s.Latency.Levels {
		fmt.Fprintf(&b, "latency level %d %s\n", lv.Level, lv.RTT)
	}
	for _, sr := range s.Latency.Sites {
		fmt.Fprintf(&b, "latency site %d %s\n", sr.Site, sr.RTT)
	}
	for _, p := range s.Phases {
		b.WriteString(p.line())
		b.WriteByte('\n')
	}
	if len(s.Schedule) > 0 {
		fmt.Fprintf(&b, "fault %s\n", s.Schedule.String())
	}
	for _, e := range s.Expects {
		fmt.Fprintf(&b, "expect %s\n", e)
	}
	return b.String()
}

// Load reads and parses a scenario file.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(string(data))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
