package scenario

import (
	"reflect"
	"testing"
)

// FuzzParseScenario drives random text through the parser and demands
// the canonical-form fixpoint: whatever Parse accepts must render to a
// form that reparses to the structurally identical Spec and renders
// identically again. This is the same discipline the schedule and
// reproducer parsers are held to.
func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		"tree 1-3-5\nops 10\n",
		"scenario x\ntree 1-3-5\nseed 3\nops 60\nprofile mostly-read\nfaults 6\nexpect no-violations\n",
		"tree 1-8\nphase mostly-read 40\nphase mostly-write 60\nadapt every 10\nexpect reconfigurations >=2\nexpect final-spec 1-8\n",
		"tree 1-8\nramp mostly-read mostly-write 40 steps 4 zipf 1.2\n",
		"tree 1-3-5\nops 80\nantientropy\nfault 10ms:crash=2+partition=3,4;30ms:recoversync=2;50ms:heal\nexpect failures <=40\n",
		"tree 1-2-4\nops 60\nlatency base 1ms\nlatency jitter 500us\nlatency dist pareto\nlatency level 0 2ms\nlatency site 6 8ms\n",
		"tree 1-3-5\nops 10\nzipf 1.4\nkeys 8\nclients 3\ntimeout 100ms\nlockttl 2s\n",
		"tree 1-3-5\nops 10\nexpect margin-gaps 0\nexpect no-history-violations\n",
		"# comment\n\ntree 1-3-5 # tail\nops 10\n",
		"tree 1-3-5\nops 10\nfault 10ms:heal\nfault 5ms:crash=1\n",
		"tree 1-x\nops 10\n",
		"tree 1-3-5\nops 10\nexpect margin-gaps >=\n",
		"tree 1-3-5\nops 10\nlatency level 9 1ms\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		spec, err := Parse(text)
		if err != nil {
			return // rejection is fine; crashing or accepting ambiguity is not
		}
		canon := spec.String()
		again, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\ninput: %q\ncanonical: %q", err, text, canon)
		}
		if !reflect.DeepEqual(spec, again) {
			t.Fatalf("canonical form is not a structural fixpoint\ninput: %q\n first: %+v\nsecond: %+v", text, spec, again)
		}
		if second := again.String(); second != canon {
			t.Fatalf("render is not a fixpoint\ninput: %q\n first: %q\nsecond: %q", text, canon, second)
		}
	})
}
