package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"arbor/internal/core"
	"arbor/internal/replica"
	"arbor/internal/rpc"
	"arbor/internal/transport"
	"arbor/internal/tree"
)

// memHarness wires replicas and one client over the in-memory transport.
type memHarness struct {
	net      *transport.Network
	replicas []*replica.Replica
	cli      *Client
	proto    *core.Protocol
}

func newMemHarness(t *testing.T, spec string, opts ...Option) *memHarness {
	t.Helper()
	tr, err := tree.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.New(tr)
	if err != nil {
		t.Fatal(err)
	}
	n := transport.NewNetwork(transport.WithSeed(1))
	h := &memHarness{net: n, proto: proto}
	for _, site := range tr.Sites() {
		ep, err := n.Register(transport.Addr(site))
		if err != nil {
			t.Fatal(err)
		}
		r := replica.New(int(site), ep)
		r.Start()
		h.replicas = append(h.replicas, r)
	}
	cliEP, err := n.Register(-1)
	if err != nil {
		t.Fatal(err)
	}
	opts = append([]Option{WithTimeout(80 * time.Millisecond), WithSeed(1)}, opts...)
	h.cli = New(-1, cliEP, proto, opts...)
	t.Cleanup(func() {
		h.cli.Close()
		for _, r := range h.replicas {
			r.Stop()
		}
		n.Close()
	})
	return h
}

func TestClientWriteReadRoundTrip(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()
	wr, err := h.cli.Write(ctx, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if wr.TS.Site != -1 {
		t.Errorf("timestamp site = %d, want client id -1", wr.TS.Site)
	}
	rd, err := h.cli.Read(ctx, "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(rd.Value) != "v" || !rd.Found {
		t.Errorf("read = %+v", rd)
	}
	m := h.cli.Metrics()
	if m.Writes != 1 || m.Reads != 1 || m.ReadFailures != 0 || m.WriteFailures != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.ReadContacts == 0 || m.WriteContacts == 0 {
		t.Errorf("contact metrics empty: %+v", m)
	}
	if h.cli.ID() != -1 {
		t.Errorf("ID = %d", h.cli.ID())
	}
}

func TestClientPing(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()
	if err := h.cli.Ping(ctx, 1); err != nil {
		t.Errorf("ping live replica: %v", err)
	}
	h.replicas[0].Crash()
	if err := h.cli.Ping(ctx, 1); err == nil {
		t.Error("ping to crashed replica succeeded")
	}
}

func TestClientCloseFailsOperations(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	h.cli.Close()
	h.cli.Close() // idempotent
	if _, err := h.cli.Read(context.Background(), "k"); err == nil {
		t.Error("read after close succeeded")
	}
	if _, err := h.cli.Write(context.Background(), "k", nil); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestClientContextCancellation(t *testing.T) {
	h := newMemHarness(t, "1-2-3", WithTimeout(5*time.Second))
	for _, r := range h.replicas {
		r.Crash() // force waits so cancellation is what unblocks us
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := h.cli.Read(ctx, "k")
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Error("cancelled read succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("read did not honor cancellation")
	}
}

func TestClientSetProtocol(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	tr2, err := tree.ParseSpec("1-5")
	if err != nil {
		t.Fatal(err)
	}
	proto2, err := core.New(tr2)
	if err != nil {
		t.Fatal(err)
	}
	if h.cli.Protocol() != h.proto {
		t.Error("initial protocol mismatch")
	}
	h.cli.SetProtocol(proto2)
	if h.cli.Protocol() != proto2 {
		t.Error("SetProtocol did not switch")
	}
}

// silentCommitter acks prepares but never answers commits, driving the
// client's in-doubt path.
type silentCommitter struct {
	ep transport.Conn
}

func (s *silentCommitter) run() {
	for msg := range s.ep.Recv() {
		switch req := msg.Payload.(type) {
		case replica.VersionReq:
			_ = s.ep.Send(msg.From, replica.VersionResp{ReqID: req.ReqID, Key: req.Key})
		case replica.PrepareReq:
			_ = s.ep.Send(msg.From, replica.PrepareResp{ReqID: req.ReqID, TxID: req.TxID, OK: true})
		case replica.CommitReq:
			// Silence: the commit ack never arrives.
		}
	}
}

func TestClientWriteInDoubt(t *testing.T) {
	tr, err := tree.PhysicalLevelSizes(1) // single level, single replica
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.New(tr)
	if err != nil {
		t.Fatal(err)
	}
	n := transport.NewNetwork()
	defer n.Close()
	repEP, err := n.Register(1)
	if err != nil {
		t.Fatal(err)
	}
	go (&silentCommitter{ep: repEP}).run()
	cliEP, err := n.Register(-1)
	if err != nil {
		t.Fatal(err)
	}
	cli := New(-1, cliEP, proto, WithTimeout(40*time.Millisecond), WithCommitRetries(1))
	defer cli.Close()

	_, err = cli.Write(context.Background(), "k", []byte("v"))
	if !errors.Is(err, ErrInDoubt) {
		t.Errorf("err = %v, want ErrInDoubt", err)
	}
	// The decision was commit, so the client counts it as a write.
	if m := cli.Metrics(); m.Writes != 1 || m.WriteFailures != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestClientOverTCP(t *testing.T) {
	// The identical protocol stack over real loopback sockets with binary
	// framing: the transport abstraction holds end to end.
	tr, err := tree.ParseSpec("1-2-3")
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.New(tr)
	if err != nil {
		t.Fatal(err)
	}
	n := transport.NewTCPNetwork()
	defer n.Close()
	var replicas []*replica.Replica
	for _, site := range tr.Sites() {
		ep, err := n.Listen(transport.Addr(site))
		if err != nil {
			t.Fatal(err)
		}
		r := replica.New(int(site), ep)
		r.Start()
		replicas = append(replicas, r)
	}
	defer func() {
		for _, r := range replicas {
			r.Stop()
		}
	}()
	cliEP, err := n.Dial(-1)
	if err != nil {
		t.Fatal(err)
	}
	cli := New(-1, cliEP, proto, WithTimeout(2*time.Second))
	defer cli.Close()

	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := cli.Write(ctx, "k", []byte{byte('a' + i)}); err != nil {
			t.Fatalf("TCP write %d: %v", i, err)
		}
	}
	rd, err := cli.Read(ctx, "k")
	if err != nil {
		t.Fatalf("TCP read: %v", err)
	}
	if string(rd.Value) != "e" {
		t.Errorf("TCP read = %q, want \"e\"", rd.Value)
	}
	if err := cli.Ping(ctx, 1); err != nil {
		t.Errorf("TCP ping: %v", err)
	}
}

func TestReqIDOfUnknownPayload(t *testing.T) {
	if _, ok := rpc.ReqIDOf("garbage"); ok {
		t.Error("unknown payload produced a request ID")
	}
	if id, ok := rpc.ReqIDOf(replica.PingResp{ReqID: 9}); !ok || id != 9 {
		t.Error("PingResp extraction failed")
	}
}

func TestWriteAtPinsLevel(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		wr, err := h.cli.WriteAt(ctx, "k", []byte("v"), 1)
		if err != nil {
			t.Fatal(err)
		}
		if wr.Level != 1 {
			t.Fatalf("pinned write landed on level %d", wr.Level)
		}
	}
	// When the pinned level cannot form a quorum, the write falls back.
	h.replicas[2].Crash() // site 3 = first member of level 1
	wr, err := h.cli.WriteAt(ctx, "k", []byte("v"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Level != 0 {
		t.Errorf("fallback write landed on level %d, want 0", wr.Level)
	}
	// Out-of-range levels are rejected.
	if _, err := h.cli.WriteAt(ctx, "k", nil, 5); err == nil {
		t.Error("level 5 accepted")
	}
	if _, err := h.cli.WriteAt(ctx, "k", nil, -1); err == nil {
		t.Error("level -1 accepted")
	}
}
