package client

import (
	"context"
	"errors"
	"testing"
	"time"

	"arbor/internal/replica"
	"arbor/internal/transport"
)

func TestTxnCommitInstallsAllKeys(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()

	tx := h.cli.NewTxn()
	if err := tx.Write("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("commit: %v", err)
	}
	for key, want := range map[string]string{"a": "1", "b": "2"} {
		rd, err := h.cli.Read(ctx, key)
		if err != nil {
			t.Fatalf("read %s: %v", key, err)
		}
		if string(rd.Value) != want {
			t.Errorf("%s = %q, want %q", key, rd.Value, want)
		}
	}
}

func TestTxnReadYourBufferedWrites(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()

	if _, err := h.cli.Write(ctx, "k", []byte("committed")); err != nil {
		t.Fatal(err)
	}
	tx := h.cli.NewTxn()
	v, err := tx.Read(ctx, "k")
	if err != nil || string(v) != "committed" {
		t.Fatalf("pre-write read = %q, %v", v, err)
	}
	if err := tx.Write("k", []byte("buffered")); err != nil {
		t.Fatal(err)
	}
	v, err = tx.Read(ctx, "k")
	if err != nil || string(v) != "buffered" {
		t.Fatalf("post-write read = %q, %v", v, err)
	}
	// The buffered value is invisible outside until commit.
	rd, err := h.cli.Read(ctx, "k")
	if err != nil || string(rd.Value) != "committed" {
		t.Fatalf("outside read = %q, %v", rd.Value, err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	rd, err = h.cli.Read(ctx, "k")
	if err != nil || string(rd.Value) != "buffered" {
		t.Fatalf("after commit = %q, %v", rd.Value, err)
	}
}

func TestTxnRepeatableReads(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()
	if _, err := h.cli.Write(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	tx := h.cli.NewTxn()
	v, err := tx.Read(ctx, "k")
	if err != nil || string(v) != "v1" {
		t.Fatal("first read")
	}
	// Another write lands outside the transaction.
	if _, err := h.cli.Write(ctx, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// The transaction still sees its snapshot.
	v, err = tx.Read(ctx, "k")
	if err != nil || string(v) != "v1" {
		t.Errorf("repeatable read = %q, %v", v, err)
	}
	tx.Abort()
}

func TestTxnAbortDiscardsWrites(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()
	tx := h.cli.NewTxn()
	if err := tx.Write("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if _, err := h.cli.Read(ctx, "k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("aborted write visible: %v", err)
	}
	if err := tx.Commit(ctx); !errors.Is(err, ErrTxnDone) {
		t.Errorf("commit after abort = %v", err)
	}
	if err := tx.Write("k", nil); !errors.Is(err, ErrTxnDone) {
		t.Errorf("write after abort = %v", err)
	}
	if _, err := tx.Read(ctx, "k"); !errors.Is(err, ErrTxnDone) {
		t.Errorf("read after abort = %v", err)
	}
}

func TestTxnEmptyCommit(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	tx := h.cli.NewTxn()
	if err := tx.Commit(context.Background()); err != nil {
		t.Errorf("empty commit: %v", err)
	}
	if err := tx.Commit(context.Background()); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit = %v", err)
	}
}

func TestTxnConflictAbortsAtomically(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()

	// A competing coordinator holds locks on "b" at every level
	// (prepared but never committed), so our transaction cannot prepare
	// "b" anywhere.
	for u := 0; u < h.proto.NumPhysicalLevels(); u++ {
		for _, site := range h.proto.LevelSites(u) {
			pr, err := rawPrepare(h, int(site), "b", replica.Timestamp{Version: 99, Site: -9})
			if err != nil || !pr.OK {
				t.Fatalf("raw prepare: %v %+v", err, pr)
			}
		}
	}

	tx := h.cli.NewTxn()
	if err := tx.Write("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Write("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	err := tx.Commit(ctx)
	if !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("commit = %v, want ErrTxnConflict", err)
	}
	// Atomicity: "a" must not be visible even though it was preparable.
	if _, err := h.cli.Read(ctx, "a"); !errors.Is(err, ErrNotFound) {
		t.Errorf("partial transaction visible: a readable (%v)", err)
	}
}

// rawPrepare sends one PrepareReq outside any client.
func rawPrepare(h *memHarness, site int, key string, ts replica.Timestamp) (replica.PrepareResp, error) {
	ep, err := h.net.Register(transport.Addr(-50 - site))
	if err != nil {
		return replica.PrepareResp{}, err
	}
	if err := ep.Send(transport.Addr(site), replica.PrepareReq{ReqID: 1, TxID: 999, Key: key, TS: ts}); err != nil {
		return replica.PrepareResp{}, err
	}
	select {
	case msg := <-ep.Recv():
		pr, _ := msg.Payload.(replica.PrepareResp)
		return pr, nil
	case <-time.After(time.Second):
		return replica.PrepareResp{}, errors.New("prepare timeout")
	}
}
