// The quorum engine: latency-aware site selection, hedged probes and read
// coalescing shared by the read, version-discovery and write paths.
//
// Every replica call feeds a per-site EWMA of round-trip latency and
// failure rate. Within a level, candidates are probed in the paper's
// uniform random order stable-sorted by coarse health buckets, so healthy
// replicas keep the load-optimal uniform distribution while sites with
// learned failures or latencies far above the level's best sink to the
// back. When a probe is overdue relative to the level's learned latency, a
// hedged backup probe is launched to the next candidate instead of waiting
// out the full client timeout; the first response wins and the losers are
// cancelled. Concurrent reads of one key through one client coalesce into
// a single quorum assembly.
package client

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/replica"
	"arbor/internal/rpc"
	"arbor/internal/transport"
)

// Engine tuning constants.
const (
	// scoreAlpha is the EWMA smoothing factor for site latency and
	// failure estimates (higher = faster adaptation).
	scoreAlpha = 0.25
	// exploreEvery makes one in N level probes promote a random candidate
	// to the front, so stale scores (a recovered or newly fast site) get
	// refreshed; with hedging on, the cost of a bad exploration is
	// bounded by the hedge delay, not the client timeout.
	exploreEvery = 16
	// latSlowFactor and latDeadFactor bound the "same speed class" bucket:
	// a site whose latency EWMA is within latSlowFactor of the level's
	// best keeps its uniform-shuffle position (preserving the paper's
	// optimal load); beyond that it is deprioritized, and beyond
	// latDeadFactor it is tried last.
	latSlowFactor = 4
	latDeadFactor = 16
)

// siteScore is one site's learned health: latency and failure EWMAs.
type siteScore struct {
	lat     float64 // round-trip EWMA, nanoseconds
	fail    float64 // failure-rate EWMA in [0,1]
	samples uint64
}

// scoreboard tracks per-site scores for one client. Safe for concurrent
// use.
type scoreboard struct {
	mu sync.Mutex
	m  map[transport.Addr]siteScore
	// refusing marks sites that answered a probe with a catching-up
	// refusal: alive but not serving reads. Cleared on the next successful
	// serve. Kept out of the latency/failure EWMAs — a refusal is neither
	// slow nor dead, and folding it in would poison the site's scores for
	// long after it rejoins.
	refusing map[transport.Addr]bool
}

func newScoreboard() *scoreboard {
	return &scoreboard{
		m:        make(map[transport.Addr]siteScore),
		refusing: make(map[transport.Addr]bool),
	}
}

// record folds one observed call into the site's EWMAs. Timeouts count as
// failures at their full observed latency; cancelled calls are never
// recorded (losing a hedge race says nothing about the site). A successful
// serve also clears the site's refusing mark.
func (s *scoreboard) record(addr transport.Addr, d time.Duration, failed bool) {
	f := 0.0
	if failed {
		f = 1.0
	}
	x := float64(d)
	s.mu.Lock()
	e := s.m[addr]
	if e.samples == 0 {
		e.lat, e.fail = x, f
	} else {
		e.lat = scoreAlpha*x + (1-scoreAlpha)*e.lat
		e.fail = scoreAlpha*f + (1-scoreAlpha)*e.fail
	}
	e.samples++
	s.m[addr] = e
	if !failed {
		delete(s.refusing, addr)
	}
	s.mu.Unlock()
}

// markRefusing records a catching-up refusal from the site.
func (s *scoreboard) markRefusing(addr transport.Addr) {
	s.mu.Lock()
	s.refusing[addr] = true
	s.mu.Unlock()
}

// isRefusing reports whether the site's last probe was refused.
func (s *scoreboard) isRefusing(addr transport.Addr) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refusing[addr]
}

// get returns the site's score and whether anything was ever recorded.
func (s *scoreboard) get(addr transport.Addr) (siteScore, bool) {
	s.mu.Lock()
	e, ok := s.m[addr]
	s.mu.Unlock()
	return e, ok && e.samples > 0
}

// siteHealth is one site's scoreboard state as seen by an ordering pass.
type siteHealth struct {
	lat      float64
	fail     float64
	known    bool
	refusing bool
}

// fill snapshots every site's health into out (len(out) == len(sites))
// under a single lock acquisition — the ordering passes run on every
// operation, so they must not take the scoreboard lock per site.
func (s *scoreboard) fill(sites []transport.Addr, out []siteHealth) {
	s.mu.Lock()
	for i, a := range sites {
		e, ok := s.m[a]
		out[i] = siteHealth{
			lat:      e.lat,
			fail:     e.fail,
			known:    ok && e.samples > 0,
			refusing: s.refusing[a],
		}
	}
	s.mu.Unlock()
}

// bestLatency returns the lowest latency EWMA among the given sites.
func (s *scoreboard) bestLatency(sites []transport.Addr) (time.Duration, bool) {
	best := math.MaxFloat64
	known := false
	s.mu.Lock()
	for _, a := range sites {
		if e, ok := s.m[a]; ok && e.samples > 0 && e.lat < best {
			best, known = e.lat, true
		}
	}
	s.mu.Unlock()
	if !known {
		return 0, false
	}
	return time.Duration(best), true
}

// failBucket coarsens a failure EWMA into three classes so that sampling
// noise cannot break the uniform strategy's load balance.
func failBucket(fail float64) int {
	switch {
	case fail < 0.25:
		return 0
	case fail < 0.5:
		return 1
	default:
		return 2
	}
}

// latBucket coarsens a latency EWMA relative to the level's best. A site
// only leaves the healthy bucket when its latency is material — at least
// the hedge delay, where probing it first would actually cost a hedge or a
// timeout. Below that, scheduling noise can make identical sites' EWMAs
// diverge by large factors, and deprioritizing on it would break the
// uniform strategy's load balance for no operational gain.
func latBucket(lat, best, material float64) int {
	switch {
	case lat < material || best <= 0 || lat <= latSlowFactor*best:
		return 0
	case lat <= latDeadFactor*best:
		return 1
	default:
		return 2
	}
}

// skipBucket sorts past every health bucket: sites whose circuit breaker
// is open or whose last probe was a catching-up refusal are known to be
// non-serving right now, so they go behind everything else (probing them
// is still cheap — a fast-fail or instant refusal, never a timeout).
const skipBucket = 99

// orderedSites returns level u's sites in probe order: the paper's uniform
// shuffle stable-sorted by coarse health buckets (failure class first,
// then latency class relative to the level's best). Healthy sites of the
// same speed class stay uniformly ordered — preserving the optimal read
// load of the uniform strategy — while known-slow or failing sites are
// tried last, and open-breaker or catching-up sites last of all. One in
// exploreEvery calls promotes a random candidate to the front so scores
// cannot go permanently stale.
func (c *Client) orderedSites(proto *core.Protocol, u int) []transport.Addr {
	out := c.shuffledSites(proto, u)
	if len(out) < 2 {
		return out
	}
	health := make([]siteHealth, len(out))
	c.scores.fill(out, health)
	var best float64 = math.MaxFloat64
	for i := range health {
		if health[i].known && health[i].lat < best {
			best = health[i].lat
		}
	}
	material := float64(c.hedgeDelay)
	buckets := make([]int8, len(out))
	for i, a := range out {
		h := health[i]
		switch {
		case h.refusing || c.caller.BreakerState(a) == rpc.BreakerOpen:
			buckets[i] = skipBucket
		case !h.known:
			buckets[i] = 0 // cold site: treat as healthy until probed
		default:
			buckets[i] = int8(failBucket(h.fail)*3 + latBucket(h.lat, best, material))
		}
	}
	stableSortByBucket(out, buckets)
	c.rngMu.Lock()
	explore := c.rng.Intn(exploreEvery) == 0
	idx := 0
	if explore {
		idx = c.rng.Intn(len(out))
	}
	c.rngMu.Unlock()
	if explore && idx > 0 {
		picked := out[idx]
		copy(out[1:idx+1], out[:idx])
		out[0] = picked
	}
	return out
}

// orderedLevels returns physical level indices in write-attempt order: the
// paper's uniform rotation stable-sorted by each level's worst member
// failure bucket, so a level whose 2PC would stall on a known-failing
// member is tried last. Healthy levels keep the uniform rotation,
// preserving the optimal write load. (A level is as available as its least
// available member — the write quorum needs all of them — so the bucket is
// the max over members. Latency is deliberately ignored: a uniformly far
// level is still a correct and load-bearing write quorum.)
func (c *Client) orderedLevels(proto *core.Protocol) []int {
	order := c.shuffledLevelOrder(proto)
	if len(order) < 2 {
		return order
	}
	buckets := make([]int8, len(order))
	for i, u := range order {
		worst := 0.0
		for _, s := range proto.LevelSites(u) {
			a := transport.Addr(s)
			if c.caller.BreakerState(a) == rpc.BreakerOpen {
				// An open breaker means the member just failed repeatedly;
				// a 2PC through this level would stall on it.
				worst = 1.0
				break
			}
			if e, ok := c.scores.get(a); ok && e.fail > worst {
				worst = e.fail
			}
		}
		buckets[i] = int8(failBucket(worst))
	}
	stableSortByBucket(order, buckets)
	return order
}

// stableSortByBucket stable-sorts items by ascending bucket, moving the two
// slices in tandem. Candidate lists are a handful of entries, so insertion
// sort beats sort.SliceStable here and, unlike it, allocates nothing — this
// runs on every read and write.
func stableSortByBucket[T any](items []T, buckets []int8) {
	for i := 1; i < len(items); i++ {
		it, b := items[i], buckets[i]
		j := i
		for j > 0 && buckets[j-1] > b {
			items[j], buckets[j] = items[j-1], buckets[j-1]
			j--
		}
		items[j], buckets[j] = it, b
	}
}

// levelHedgeDelay decides whether and when this level may hedge: the
// configured delay, floored at twice the level's best learned round-trip
// (a uniformly slow level — e.g. a far zone — must not hedge on every
// probe) and gated off entirely while the level is cold or when the floor
// reaches the client timeout (the sequential fallback fires then anyway).
func (c *Client) levelHedgeDelay(sites []transport.Addr, cfg readConfig) (time.Duration, bool) {
	best, known := c.scores.bestLatency(sites)
	if !known {
		return 0, false
	}
	d := cfg.hedgeDelay
	if floor := 2 * best; floor > d {
		d = floor
	}
	if d >= c.timeout {
		return 0, false
	}
	return d, true
}

// probeReply is one probe's outcome inside a hedged level assembly.
type probeReply struct {
	addr  transport.Addr
	resp  any
	err   error
	hedge bool
}

// readLevelHedged obtains one response from level u with hedged backup
// probes: candidates are contacted one at a time, but when the outstanding
// probe is overdue by hedgeAfter the next candidate is probed concurrently
// (and immediately on a definite failure). The first usable response wins;
// the losers are cancelled and their replies drained before returning, so
// no goroutine or trace write outlives the operation.
func (c *Client) readLevelHedged(ctx context.Context, sites []transport.Addr, u int, key string, versionOnly bool, op *obs.Op, hedgeAfter time.Duration) levelOutcome {
	phase, spanPhase := "read", "read-quorum"
	if versionOnly {
		phase, spanPhase = "version", "version-discovery"
	}
	span := op.Level(u, spanPhase)
	traced := span.On()

	var out levelOutcome
	levelStart := time.Now()
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var contacts atomic.Uint64
	replies := make(chan probeReply, len(sites))
	launch := func(i int, hedge bool) {
		addr := sites[i]
		go func() {
			var cs time.Time
			if traced {
				cs = time.Now()
			}
			var resp any
			var err error
			if versionOnly {
				resp, err = c.call(pctx, addr, replica.VersionReq{Key: key, ForWrite: true}, &contacts)
			} else {
				resp, err = c.call(pctx, addr, replica.ReadReq{Key: key}, &contacts)
			}
			if traced {
				p := phase
				if hedge {
					p += "-hedge"
				}
				span.Contact(int(addr), p, cs, time.Since(cs), err, errors.Is(err, rpc.ErrTimeout))
			}
			replies <- probeReply{addr: addr, resp: resp, err: err, hedge: hedge}
		}()
	}

	launch(0, false)
	launched, pending, fallbacks := 1, 1, 0
	timer := time.NewTimer(hedgeAfter)
	defer timer.Stop()
	var lastErr error
	won, primaryReplied := false, false
	for pending > 0 {
		select {
		case r := <-replies:
			pending--
			if r.addr == sites[0] {
				primaryReplied = true
			}
			if won {
				continue // a cancelled loser draining
			}
			err := r.err
			if err == nil {
				var ts replica.Timestamp
				var value []byte
				var found bool
				ts, value, found, err = c.decodeProbe(r.addr, r.resp)
				if err == nil {
					out.ts, out.value, out.found = ts, value, found
				}
			} else if errors.Is(err, rpc.ErrBreakerOpen) {
				out.skipped = append(out.skipped, r.addr)
			}
			if err == nil {
				won = true
				out.err = nil
				out.responder = r.addr
				if r.hedge {
					if c.instr != nil {
						c.instr.hedgeWins.Inc()
					}
					// The win itself says the primary sat overdue past
					// the hedge delay without answering: score that as a
					// failure so later reads deprioritize it. (Cancelled
					// calls are otherwise never scored — losing a fair
					// race says nothing — but overdue-ness does.)
					if !primaryReplied {
						c.scores.record(sites[0], time.Since(levelStart), true)
					}
				}
				cancel() // release the losers; the loop drains their replies
				continue
			}
			lastErr = err
			if launched < len(sites) && pctx.Err() == nil {
				launch(launched, false)
				launched++
				pending++
				fallbacks++
			}
		case <-timer.C:
			if !won && launched < len(sites) && pctx.Err() == nil {
				// A hedge is optional retry traffic: it spends a retry-budget
				// token. Denied, the overdue primary still resolves at the
				// client timeout and the plain failure fallback takes over —
				// the budget trades tail latency for load, never availability.
				if c.budget.spend() {
					launch(launched, true)
					launched++
					pending++
					if c.instr != nil {
						c.instr.hedges.Inc()
					}
				} else if c.instr != nil {
					c.instr.budgetDenied.Inc()
				}
			}
			timer.Reset(hedgeAfter)
		}
	}
	if !won {
		out.err = lastErr
	}
	out.contacts = int(contacts.Load())
	if fallbacks > 0 && c.instr != nil {
		c.instr.siteFallbacks.Add(uint64(fallbacks))
	}
	span.Done(out.err == nil, out.err)
	return out
}

// flight is one in-progress coalesced read assembly.
type flight struct {
	done chan struct{}
	res  ReadResult
	err  error
}

// readShared coalesces concurrent reads of one key through this client
// into a single quorum assembly (singleflight): the first caller becomes
// the leader and runs the read; everyone else waits for its result. A
// follower whose own context is still live retries as leader if the shared
// attempt died of the leader's context, so one cancelled caller cannot
// fail the others.
func (c *Client) readShared(ctx context.Context, key string) (ReadResult, error) {
	for {
		c.flightMu.Lock()
		if f, ok := c.flights[key]; ok {
			c.flightMu.Unlock()
			select {
			case <-f.done:
				if f.err != nil && (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
					if ctx.Err() != nil {
						return ReadResult{}, ctx.Err()
					}
					continue // the leader's context died, not the quorum
				}
				return c.finishCoalesced(key, f)
			case <-ctx.Done():
				return ReadResult{}, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.flightMu.Unlock()

		f.res, f.err = c.readDirect(ctx, key, c.readDefaults())
		c.flightMu.Lock()
		delete(c.flights, key)
		c.flightMu.Unlock()
		close(f.done)
		return f.res, f.err
	}
}

// finishCoalesced accounts a follower's share of a coalesced read: the
// operation counts as a read (with zero contacts of its own) and records
// its trace. The value is handed off zero-copy: every follower shares the
// leader's buffer (see ReadResult.Value), which the replica store never
// aliases, so no caller can observe another's mutation through the store.
func (c *Client) finishCoalesced(key string, f *flight) (ReadResult, error) {
	op := c.traces.Start("read", key, c.id)
	if c.instr != nil {
		c.instr.coalesced.Inc()
	}
	res, err := f.res, f.err
	res.Contacts = 0
	switch {
	case err == nil:
		c.metrics.reads.Add(1)
		if c.instr != nil {
			c.instr.readOK.Inc()
		}
		op.Finish(obs.OutcomeOK, nil, 0)
	case errors.Is(err, ErrNotFound):
		c.metrics.reads.Add(1)
		if c.instr != nil {
			c.instr.readNotFound.Inc()
		}
		op.Finish(obs.OutcomeNotFound, nil, 0)
	default:
		c.metrics.readFailures.Add(1)
		if c.instr != nil {
			if errors.Is(err, ErrReadUnavailable) {
				c.instr.readUnavailable.Inc()
			} else {
				c.instr.ops.With("read", obs.OutcomeError).Inc()
			}
		}
		op.Finish(readOutcome(err), err, 0)
	}
	return res, err
}

// readConfig is the per-operation shape of a read (or of a write's version
// discovery): whether hedged backup probes may fire and after how long.
type readConfig struct {
	hedge      bool
	hedgeDelay time.Duration
}

// readDefaults snapshots the client-level read configuration.
func (c *Client) readDefaults() readConfig {
	return readConfig{hedge: c.hedging, hedgeDelay: c.hedgeDelay}
}

// ReadOption adjusts a single Read call without reconfiguring the client.
// A read carrying any per-operation option bypasses read coalescing (its
// result may differ from the shared assembly's).
type ReadOption interface{ applyRead(*readConfig) }

type readNoHedge struct{}

func (readNoHedge) applyRead(cfg *readConfig) { cfg.hedge = false }

// ReadWithoutHedge disables hedged backup probes for this read: each level
// probes one site at a time, waiting out the full client timeout before
// falling back — the protocol's plain sequential strategy.
func ReadWithoutHedge() ReadOption { return readNoHedge{} }

type readHedgeDelay time.Duration

func (o readHedgeDelay) applyRead(cfg *readConfig) {
	cfg.hedge = true
	cfg.hedgeDelay = time.Duration(o)
}

// ReadWithHedgeDelay overrides the hedge delay for this read (and forces
// hedging on). The per-level floor of twice the best learned round-trip
// still applies.
func ReadWithHedgeDelay(d time.Duration) ReadOption { return readHedgeDelay(d) }

// writeConfig is the per-operation shape of a write.
type writeConfig struct {
	read  readConfig // version-discovery probing
	level int        // preferred first level, -1 = engine-ordered
}

// WriteOption adjusts a single Write call without reconfiguring the
// client.
type WriteOption interface{ applyWrite(*writeConfig) }

type writeToLevel int

func (o writeToLevel) applyWrite(cfg *writeConfig) { cfg.level = int(o) }

// WriteToLevel makes this write try the given physical level's quorum
// first (0-based index into the protocol's physical levels), falling back
// to the other levels only if it cannot be fully prepared — e.g. pinning a
// hot key's writes to the client's local zone.
func WriteToLevel(u int) WriteOption { return writeToLevel(u) }

type writeNoHedge struct{}

func (writeNoHedge) applyWrite(cfg *writeConfig) { cfg.read.hedge = false }

// WriteWithoutHedge disables hedged backup probes for this write's version
// discovery.
func WriteWithoutHedge() WriteOption { return writeNoHedge{} }
