package client

import "testing"

func TestRetryBudgetSpendEarnDeny(t *testing.T) {
	b := newRetryBudget(0.5, 2) // starts full: 2 tokens, earning half per op

	if !b.spend() || !b.spend() {
		t.Fatal("a full burst-2 bucket denied one of its first two retries")
	}
	if b.spend() {
		t.Fatal("an empty bucket admitted a retry")
	}
	b.earnOp() // +0.5: still short of a whole token
	if b.spend() {
		t.Fatal("half a token admitted a retry")
	}
	b.earnOp() // +0.5: exactly one token
	if !b.spend() {
		t.Fatal("a whole earned token was denied")
	}
	spent, denied := b.stats()
	if spent != 3 || denied != 2 {
		t.Errorf("stats = (%d spent, %d denied), want (3, 2)", spent, denied)
	}
}

func TestRetryBudgetEarnCapsAtBurst(t *testing.T) {
	b := newRetryBudget(1, 1)
	for i := 0; i < 10; i++ {
		b.earnOp()
	}
	if !b.spend() {
		t.Fatal("burst-capped bucket denied its one token")
	}
	if b.spend() {
		t.Error("ten earns on a burst-1 bucket banked more than one token")
	}
}

func TestRetryBudgetNilAdmitsEverything(t *testing.T) {
	var b *retryBudget // budgets disabled: the default
	b.earnOp()
	for i := 0; i < 100; i++ {
		if !b.spend() {
			t.Fatal("nil budget denied a retry")
		}
	}
	if spent, denied := b.stats(); spent != 0 || denied != 0 {
		t.Errorf("nil budget stats = (%d, %d), want (0, 0)", spent, denied)
	}
}
