// Package client executes read and write operations of the arbitrary
// tree-structured replica control protocol against simulated replicas.
//
// A read contacts one physical node of every physical level (retrying the
// level's other nodes on timeout) and returns the value with the most
// recent timestamp. A write discovers the highest version, then runs
// two-phase commit on all physical nodes of one physical level, falling
// back to other levels when a level cannot be assembled — exactly the
// quorum shapes of §3.2 of the paper.
package client

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/rpc"
	"arbor/internal/transport"
)

// Operation errors.
var (
	// ErrReadUnavailable means some physical level had no responsive
	// replica, so no read quorum could be assembled.
	ErrReadUnavailable = errors.New("client: no read quorum available")
	// ErrWriteUnavailable means no physical level could be fully prepared,
	// so no write quorum could be assembled.
	ErrWriteUnavailable = errors.New("client: no write quorum available")
	// ErrNotFound means the read quorum was assembled but no replica has
	// ever stored the key.
	ErrNotFound = errors.New("client: key not found")
	// ErrInDoubt means a write was committed at the protocol level but not
	// every quorum member acknowledged the commit before the deadline.
	ErrInDoubt = errors.New("client: write outcome in doubt")
	// ErrCatchingUp means the contacted replica is recovering and refused a
	// read/version probe: the site is alive (it answered immediately) but
	// not yet safe to read from. The engine treats it like a failed probe
	// for quorum assembly but does not score it as slow or dead.
	ErrCatchingUp = errors.New("client: replica catching up")
	// ErrClosed means the client has been closed.
	ErrClosed = errors.New("client: closed")
	// ErrOverloaded means a replica's admission gate answered with a typed
	// load-shed reply instead of serving: the site is alive but refusing
	// work right now. The engine skips to a sibling site without burning a
	// timeout; when every candidate refuses, the unavailability error wraps
	// this, so errors.Is(err, ErrOverloaded) identifies overload as the
	// cause. Shed replies carry a retry-after hint that floors the client's
	// backoff before the next level attempt.
	ErrOverloaded = rpc.ErrOverloaded
)

// Metrics counts the client's operations and replica contacts. Contacts are
// request messages sent to replicas, the unit in which the paper measures
// communication cost.
type Metrics struct {
	Reads         uint64
	ReadFailures  uint64
	Writes        uint64
	WriteFailures uint64
	ReadContacts  uint64
	WriteContacts uint64
	// RetriesSpent and RetriesDenied account the retry budget (always zero
	// with budgets disabled): tokens spent on admitted retries and retry
	// attempts denied because the bucket was empty.
	RetriesSpent  uint64
	RetriesDenied uint64
}

// Option configures a Client.
type Option interface {
	apply(*Client)
}

type timeoutOption time.Duration

func (o timeoutOption) apply(c *Client) { c.timeout = time.Duration(o) }

// WithTimeout sets the per-request reply deadline used as the failure
// detector (default 250ms).
func WithTimeout(d time.Duration) Option { return timeoutOption(d) }

type seedOption int64

func (o seedOption) apply(c *Client) {
	c.seed = int64(o)
	c.rng = rand.New(rand.NewSource(int64(o)))
}

// WithSeed fixes the client's quorum-selection randomness (and, derived
// from it, the retry-backoff jitter and circuit-breaker cooldown jitter).
func WithSeed(seed int64) Option { return seedOption(seed) }

type commitRetriesOption int

func (o commitRetriesOption) apply(c *Client) { c.commitRetries = int(o) }

// WithCommitRetries sets how many times an unacknowledged commit is re-sent
// before the write is reported in doubt (default 3).
func WithCommitRetries(n int) Option { return commitRetriesOption(n) }

type hedgeDelayOption time.Duration

func (o hedgeDelayOption) apply(c *Client) { c.hedgeDelay = time.Duration(o) }

// WithHedgeDelay sets how long a level probe may be outstanding before a
// hedged backup probe is launched to the level's next candidate site
// (default: one eighth of the client timeout). The effective per-level
// delay is floored at twice the level's best learned round-trip, so hedges
// target stragglers rather than uniformly slow levels.
func WithHedgeDelay(d time.Duration) Option { return hedgeDelayOption(d) }

type hedgingOption bool

func (o hedgingOption) apply(c *Client) { c.hedging = bool(o) }

// WithHedging enables or disables hedged backup probes (default enabled).
// Disabled, reads fall back within a level only after the full client
// timeout — the protocol's plain sequential strategy.
func WithHedging(enabled bool) Option { return hedgingOption(enabled) }

type breakerOption bool

func (o breakerOption) apply(c *Client) { c.breaker = bool(o) }

// WithBreaker enables or disables the per-site circuit breaker (default
// enabled). With it on, a site that fails several calls in a row is
// fast-failed locally — no message, no timeout — until a cooldown expires
// and a half-open probe re-tests it; the engine orders open-breaker sites
// last and quorum paths that must reach a site anyway (phase-two commits,
// last-resort rescues) force through. Disable it where wall-clock cooldowns
// are unwelcome, e.g. the deterministic simulation harness.
func WithBreaker(enabled bool) Option { return breakerOption(enabled) }

type retryBackoffOption time.Duration

func (o retryBackoffOption) apply(c *Client) { c.retryBase = time.Duration(o) }

// WithRetryBackoff sets the base delay of the jittered exponential backoff
// applied between commit re-sends and level-fallback attempts (default
// 2ms). Attempt n sleeps base·2ⁿ jittered uniformly in [½d, 1½d), capped
// at 16×base.
func WithRetryBackoff(base time.Duration) Option { return retryBackoffOption(base) }

type retryBudgetOption struct {
	perOp float64
	burst int
}

func (o retryBudgetOption) apply(c *Client) {
	if o.burst > 0 {
		c.budget = newRetryBudget(o.perOp, o.burst)
	} else {
		c.budget = nil
	}
}

// WithRetryBudget arms a deterministic token-bucket retry budget: each
// operation earns perOp tokens (capped at burst, the bucket's capacity and
// starting balance), and each commit re-send, next-level fallback or hedged
// backup probe spends one. An empty bucket denies the retry — the operation
// reports its honest outcome instead of amplifying load on an already
// struggling system (the SRE retry-cap discipline). First attempts are
// never gated. A burst of zero or less disables budgets (the default).
func WithRetryBudget(perOp float64, burst int) Option {
	return retryBudgetOption{perOp: perOp, burst: burst}
}

type opBudgetOption time.Duration

func (o opBudgetOption) apply(c *Client) { c.opBudget = time.Duration(o) }

// WithOpBudget bounds each operation's total wall-clock time when the
// caller's context carries no deadline of its own: reads, writes and pings
// run under a derived context expiring after d. The budget rides the wire
// with every request (replicas fast-fail work whose budget is already
// spent) and sizes every retry and rescue attempt, so a single slow site
// can never stretch an operation past it. Zero (the default) leaves
// deadline management entirely to the caller.
func WithOpBudget(d time.Duration) Option { return opBudgetOption(d) }

type readRepairOption bool

func (o readRepairOption) apply(c *Client) { c.readRepair = bool(o) }

// WithReadRepair makes reads push the freshest observed value back to the
// contacted replicas that returned stale (or no) data. Repair writes are
// fire-and-forget timestamped commits, so they never regress state; they
// spread hot values across levels, improving the chance that later reads
// survive the written level going down.
func WithReadRepair(enabled bool) Option { return readRepairOption(enabled) }

type observerOption struct{ o *obs.Observer }

func (o observerOption) apply(c *Client) { c.obs = o.o }

// WithObserver attaches an observability hook: operation latency
// histograms, outcome and fallback counters on the observer's registry,
// and one structured OpTrace per operation in its trace recorder. A nil
// observer (the default) leaves the hot paths uninstrumented.
func WithObserver(o *obs.Observer) Option { return observerOption{o: o} }

// instruments are the client's pre-resolved metric handles, nil when no
// observer is attached.
type instruments struct {
	readDur, writeDur, txnDur *obs.Histogram
	pingDur                   *obs.Histogram
	ops                       *obs.CounterVec // labels: op, outcome
	readOK, readNotFound      *obs.Counter
	readUnavailable           *obs.Counter
	writeOK, writeInDoubt     *obs.Counter
	writeUnavailable          *obs.Counter
	pingOK                    *obs.Counter
	siteFallbacks             *obs.Counter
	levelFallbacks            *obs.Counter
	hedges, hedgeWins         *obs.Counter
	coalesced                 *obs.Counter
	retryCommit, retryLevel   *obs.Counter
	overloadSkips             *obs.Counter
	budgetDenied              *obs.Counter
}

// newInstruments resolves the client metric families against reg (nil reg
// gives nil instruments — every handle no-ops).
func newInstruments(reg *obs.Registry) *instruments {
	if reg == nil {
		return nil
	}
	dur := reg.HistogramVec("arbor_client_op_duration_seconds",
		"End-to-end client operation latency, including level fallbacks and retries.", "op")
	ops := reg.CounterVec("arbor_client_ops_total",
		"Client operations completed, by operation and outcome.", "op", "outcome")
	fallbacks := reg.CounterVec("arbor_client_fallbacks_total",
		"Quorum fallbacks taken: site = another replica of the same level after a failure, level = another physical level after a failed 2PC attempt.", "kind")
	hedgeEvents := reg.CounterVec("arbor_client_hedges_total",
		"Hedged backup probes: launched = a backup probe started because the primary was overdue, win = a level was satisfied by a hedge probe's response.", "event")
	coalesced := reg.Counter("arbor_client_coalesced_reads_total",
		"Reads served by joining another in-flight read of the same key through the same client (singleflight).")
	retries := reg.CounterVec("arbor_client_retries_total",
		"Backed-off retry attempts, by kind: commit = an unacknowledged phase-two commit re-send, level = a next-level fallback after a failed quorum attempt.", "kind")
	overloadSkips := reg.Counter("arbor_client_overload_skips_total",
		"Probes answered by a replica's admission gate with a load-shed reply; the engine moved on to a sibling site without waiting out a timeout.")
	budgetDenied := reg.Counter("arbor_client_retry_budget_denied_total",
		"Retry attempts (commit re-sends, level fallbacks, hedges) suppressed because the client's retry budget was exhausted.")
	return &instruments{
		readDur:          dur.With("read"),
		writeDur:         dur.With("write"),
		txnDur:           dur.With("txn"),
		pingDur:          dur.With("ping"),
		ops:              ops,
		pingOK:           ops.With("ping", obs.OutcomeOK),
		readOK:           ops.With("read", obs.OutcomeOK),
		readNotFound:     ops.With("read", obs.OutcomeNotFound),
		readUnavailable:  ops.With("read", obs.OutcomeUnavailable),
		writeOK:          ops.With("write", obs.OutcomeOK),
		writeInDoubt:     ops.With("write", obs.OutcomeInDoubt),
		writeUnavailable: ops.With("write", obs.OutcomeUnavailable),
		siteFallbacks:    fallbacks.With("site"),
		levelFallbacks:   fallbacks.With("level"),
		hedges:           hedgeEvents.With("launched"),
		hedgeWins:        hedgeEvents.With("win"),
		coalesced:        coalesced,
		retryCommit:      retries.With("commit"),
		retryLevel:       retries.With("level"),
		overloadSkips:    overloadSkips,
		budgetDenied:     budgetDenied,
	}
}

// Client is a protocol client bound to one endpoint. It is safe for
// concurrent use.
type Client struct {
	id     int
	ep     transport.Conn
	caller *rpc.Caller
	proto  atomic.Pointer[core.Protocol]

	timeout       time.Duration
	commitRetries int
	readRepair    bool
	hedging       bool
	hedgeDelay    time.Duration
	breaker       bool
	retryBase     time.Duration
	opBudget      time.Duration
	seed          int64

	// budget caps optional retry traffic (nil = budgets disabled).
	budget *retryBudget

	// scores holds the per-site latency/failure EWMAs fed by every call;
	// flights holds the in-progress coalesced read assemblies.
	scores   *scoreboard
	flightMu sync.Mutex
	flights  map[string]*flight

	// obs is the optional observability hook; instr and traces are its
	// pre-resolved halves (nil when no observer is attached).
	obs    *obs.Observer
	instr  *instruments
	traces *obs.TraceRecorder

	// rng drives quorum selection; backoffRng drives retry jitter. They are
	// separate streams (both derived from the client seed) so that a
	// data-dependent number of retries cannot shift the quorum-selection
	// sequence and break simulation determinism.
	rngMu      sync.Mutex
	rng        *rand.Rand
	backoffRng *rand.Rand

	txID atomic.Uint64

	metrics struct {
		reads, readFailures, writes, writeFailures, readContacts, writeContacts atomic.Uint64
	}
}

// New creates a client with the given ID (used as the site component of
// write timestamps) attached to the endpoint, and starts its reply
// dispatcher. Call Close when done.
func New(id int, ep transport.Conn, proto *core.Protocol, opts ...Option) *Client {
	c := &Client{
		id:            id,
		ep:            ep,
		timeout:       250 * time.Millisecond,
		commitRetries: 3,
		hedging:       true,
		breaker:       true,
		retryBase:     2 * time.Millisecond,
		seed:          int64(id),
		rng:           rand.New(rand.NewSource(int64(id))),
		scores:        newScoreboard(),
		flights:       make(map[string]*flight),
	}
	c.proto.Store(proto)
	for _, opt := range opts {
		opt.apply(c)
	}
	if c.hedgeDelay <= 0 {
		c.hedgeDelay = c.timeout / 8
	}
	c.backoffRng = rand.New(rand.NewSource(c.seed ^ 0x9e3779b9))
	c.instr = newInstruments(c.obs.Reg())
	c.traces = c.obs.Rec()
	copts := []rpc.Option{rpc.WithMetrics(c.obs.Reg())}
	if c.breaker {
		copts = append(copts, rpc.WithBreaker(rpc.BreakerConfig{
			Cooldown: 2 * c.timeout,
			Seed:     c.seed ^ 0x51f15eed,
		}))
	}
	c.caller = rpc.NewCaller(ep, c.timeout, copts...)
	return c
}

// ID returns the client's identifier.
func (c *Client) ID() int { return c.id }

// Protocol returns the protocol instance the client currently operates
// under. Each operation snapshots it once, so an operation never mixes
// quorums from two configurations.
func (c *Client) Protocol() *core.Protocol { return c.proto.Load() }

// SetProtocol switches the client to a new tree configuration. In-flight
// operations finish under the configuration they started with.
func (c *Client) SetProtocol(p *core.Protocol) { c.proto.Store(p) }

// Metrics returns a snapshot of the client's counters.
func (c *Client) Metrics() Metrics {
	spent, denied := c.budget.stats()
	return Metrics{
		Reads:         c.metrics.reads.Load(),
		ReadFailures:  c.metrics.readFailures.Load(),
		Writes:        c.metrics.writes.Load(),
		WriteFailures: c.metrics.writeFailures.Load(),
		ReadContacts:  c.metrics.readContacts.Load(),
		WriteContacts: c.metrics.writeContacts.Load(),
		RetriesSpent:  spent,
		RetriesDenied: denied,
	}
}

// Close stops the reply dispatcher. Outstanding calls fail with ErrClosed.
func (c *Client) Close() {
	c.caller.Close()
}

// call sends one request (stamped with its allocated request ID) and
// waits for its reply or a timeout, counting the contact and feeding the
// site's latency/failure EWMAs. Cancelled calls are not scored: losing a
// hedge race says nothing about the site. Breaker fast-fails are neither
// contacts (no message was sent) nor evidence about the site. An overload
// shed counts as a contact (a message round-tripped) but is scored only as
// a refusal, not a failure: the site answered instantly, it is alive —
// ordering it last until it serves again is enough.
func (c *Client) call(ctx context.Context, to transport.Addr, req rpc.Request, contacts *atomic.Uint64, copts ...rpc.CallOption) (any, error) {
	start := time.Now()
	resp, err := c.caller.Call(ctx, to, req, copts...)
	if errors.Is(err, rpc.ErrClosed) {
		return nil, ErrClosed
	}
	if errors.Is(err, rpc.ErrBreakerOpen) {
		return nil, err
	}
	contacts.Add(1)
	if errors.Is(err, ErrOverloaded) {
		c.scores.markRefusing(to)
		if c.instr != nil {
			c.instr.overloadSkips.Inc()
		}
		return nil, err
	}
	if err == nil || errors.Is(err, rpc.ErrTimeout) {
		c.scores.record(to, time.Since(start), err != nil)
	}
	return resp, err
}

// opCtx derives the context an operation runs under: when WithOpBudget is
// set and the caller brought no deadline, the operation gets one. The
// returned cancel must always be called.
func (c *Client) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.opBudget > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, c.opBudget)
		}
	}
	return ctx, func() {}
}

// backoff sleeps the attempt's share of a jittered exponential schedule —
// retryBase·2ᵃᵗᵗᵉᵐᵖᵗ, capped at 16×retryBase, jittered uniformly over
// [½d, 1½d) — honoring ctx. The jitter draws from a dedicated seeded RNG
// so simulated runs stay deterministic. kind labels the retry counter.
// floor (usually an overloaded replica's retry-after hint) raises the final
// sleep to at least that long: a site that said "come back in 10ms" must
// not be re-attacked in 2.
func (c *Client) backoff(ctx context.Context, attempt int, kind string, floor time.Duration) error {
	if c.instr != nil {
		switch kind {
		case "commit":
			c.instr.retryCommit.Inc()
		case "level":
			c.instr.retryLevel.Inc()
		}
	}
	d := c.retryBase
	maxd := 16 * c.retryBase
	for i := 0; i < attempt && d < maxd; i++ {
		d *= 2
	}
	if d > maxd {
		d = maxd
	}
	if d <= 0 {
		if floor <= 0 {
			return ctx.Err()
		}
		d = floor
	}
	c.rngMu.Lock()
	j := d/2 + time.Duration(c.backoffRng.Int63n(int64(d)))
	c.rngMu.Unlock()
	if j < floor {
		j = floor
	}
	timer := time.NewTimer(j)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BreakerStates snapshots the per-site circuit-breaker states this client
// has learned; nil when the breaker is disabled.
func (c *Client) BreakerStates() map[transport.Addr]rpc.BreakerState {
	return c.caller.BreakerStates()
}

// shuffledSites returns the level's sites in random order.
func (c *Client) shuffledSites(proto *core.Protocol, u int) []transport.Addr {
	sites := proto.LevelSites(u)
	out := make([]transport.Addr, len(sites))
	for i, s := range sites {
		out[i] = transport.Addr(s)
	}
	c.rngMu.Lock()
	c.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	c.rngMu.Unlock()
	return out
}

// shuffledLevelOrder returns all physical level indices starting from a
// uniformly random one (the paper's w_write strategy with failover).
func (c *Client) shuffledLevelOrder(proto *core.Protocol) []int {
	l := proto.NumPhysicalLevels()
	c.rngMu.Lock()
	start := c.rng.Intn(l)
	c.rngMu.Unlock()
	out := make([]int, 0, l)
	for i := 0; i < l; i++ {
		out = append(out, (start+i)%l)
	}
	return out
}
