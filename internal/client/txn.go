package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/replica"
	"arbor/internal/rpc"
	"arbor/internal/transport"
)

// Txn is a client-side transaction: a partially ordered set of reads and
// writes (the paper's system model) executed with all-or-nothing commit.
// Reads go through read quorums immediately (and see the transaction's own
// buffered writes); writes are buffered and installed atomically at commit
// by a single two-phase commit across all physical nodes of one physical
// level, covering every written key.
//
// Transactions provide failure atomicity — either every buffered write is
// durably installed or none is. They do not provide snapshot isolation for
// independent readers, who may observe the keys of a committing transaction
// at slightly different instants.
type Txn struct {
	c      *Client
	proto  *core.Protocol
	writes map[string][]byte
	order  []string
	reads  map[string]ReadResult
	done   bool
}

// Errors specific to transactions.
var (
	// ErrTxnDone means the transaction has already committed or aborted.
	ErrTxnDone = errors.New("client: transaction finished")
	// ErrTxnConflict means commit could not prepare every key on any
	// physical level (a concurrent writer holds locks or installed newer
	// versions).
	ErrTxnConflict = errors.New("client: transaction conflict")
)

// NewTxn starts a transaction. The transaction is pinned to the protocol
// configuration current at creation.
func (c *Client) NewTxn() *Txn {
	return &Txn{
		c:      c,
		proto:  c.Protocol(),
		writes: make(map[string][]byte),
		reads:  make(map[string]ReadResult),
	}
}

// Read returns the transaction's view of key: its own buffered write if
// present, the previously read value if cached (repeatable reads), or a
// fresh quorum read.
func (t *Txn) Read(ctx context.Context, key string) ([]byte, error) {
	if t.done {
		return nil, ErrTxnDone
	}
	if v, ok := t.writes[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, nil
	}
	if r, ok := t.reads[key]; ok {
		if !r.Found {
			return nil, ErrNotFound
		}
		return r.Value, nil
	}
	r, err := t.c.Read(ctx, key)
	if err != nil && !errors.Is(err, ErrNotFound) {
		return nil, err
	}
	t.reads[key] = r
	if !r.Found {
		return nil, ErrNotFound
	}
	return r.Value, nil
}

// Write buffers a value; nothing reaches the replicas until Commit.
func (t *Txn) Write(key string, value []byte) error {
	if t.done {
		return ErrTxnDone
	}
	if _, ok := t.writes[key]; !ok {
		t.order = append(t.order, key)
	}
	v := make([]byte, len(value))
	copy(v, value)
	t.writes[key] = v
	return nil
}

// Abort discards the transaction's buffered writes.
func (t *Txn) Abort() {
	t.done = true
}

// Commit atomically installs every buffered write: it discovers current
// versions, then runs one two-phase commit covering all written keys on
// the physical nodes of a single physical level (falling back across
// levels). Either all keys commit or none do.
func (t *Txn) Commit(ctx context.Context) error {
	if t.done {
		return ErrTxnDone
	}
	t.done = true
	if len(t.writes) == 0 {
		return nil
	}
	ctx, cancel := t.c.opCtx(ctx)
	defer cancel()
	t.c.budget.earnOp()

	traceKey := t.order[0]
	if len(t.order) > 1 {
		traceKey = fmt.Sprintf("%s (+%d keys)", traceKey, len(t.order)-1)
	}
	op := t.c.traces.Start("txn", traceKey, t.c.id)
	var start time.Time
	var contacts atomic.Uint64
	if t.c.instr != nil {
		start = time.Now()
	}
	finish := func(outcome string, err error) {
		if t.c.instr != nil {
			t.c.instr.txnDur.Observe(time.Since(start))
			t.c.instr.ops.With("txn", outcome).Inc()
		}
		op.Finish(outcome, err, int(contacts.Load()))
	}

	// Per-key timestamps: cached read versions where available, fresh
	// version discovery otherwise.
	tss := make(map[string]replica.Timestamp, len(t.writes))
	for _, key := range t.order {
		base, ok := t.reads[key]
		if !ok {
			v, err := t.c.readQuorum(ctx, key, true, op, t.c.readDefaults())
			if err != nil {
				err = fmt.Errorf("%w: version discovery for %q: %w", ErrWriteUnavailable, key, err)
				finish(obs.OutcomeUnavailable, err)
				return err
			}
			base = v
		}
		tss[key] = replica.Timestamp{Version: base.TS.Version + 1, Site: t.c.id}
	}

	defer func() {
		t.c.metrics.writeContacts.Add(contacts.Load())
	}()

	var lastErr error
	for i, u := range t.c.orderedLevels(t.proto) {
		if i > 0 {
			if !t.c.budget.spend() {
				if t.c.instr != nil {
					t.c.instr.budgetDenied.Inc()
				}
				break
			}
			if t.c.instr != nil {
				t.c.instr.levelFallbacks.Inc()
			}
			floor, _ := rpc.RetryAfter(lastErr)
			if berr := t.c.backoff(ctx, i-1, "level", floor); berr != nil {
				break
			}
		}
		err := t.commitLevel(ctx, u, tss, &contacts, op)
		if err == nil {
			t.c.metrics.writes.Add(1)
			finish(obs.OutcomeOK, nil)
			return nil
		}
		if errors.Is(err, ErrInDoubt) {
			t.c.metrics.writes.Add(1)
			finish(obs.OutcomeInDoubt, err)
			return err
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	t.c.metrics.writeFailures.Add(1)
	if lastErr != nil {
		err := fmt.Errorf("%w: %w", ErrTxnConflict, lastErr)
		finish(obs.OutcomeConflict, err)
		return err
	}
	finish(obs.OutcomeConflict, ErrTxnConflict)
	return ErrTxnConflict
}

// commitLevel prepares every (key, site) pair of level u, then commits them
// all, aborting everything on any prepare failure.
func (t *Txn) commitLevel(ctx context.Context, u int, tss map[string]replica.Timestamp, contacts *atomic.Uint64, op *obs.Op) error {
	sites := t.proto.LevelSites(u)
	addrs := make([]transport.Addr, len(sites))
	for i, s := range sites {
		addrs[i] = transport.Addr(s)
	}
	txID := t.c.txID.Add(1)
	span := op.Level(u, "write-2pc")
	var uncounted atomic.Uint64

	abortAll := func(keys []string) {
		for _, key := range keys {
			t.c.fanout(ctx, addrs, &uncounted, span, "abort",
				replica.AbortReq{TxID: txID, Key: key}, func(any) error { return nil })
		}
	}

	// Phase 1: prepare every key on every member of the level.
	checkPrepare := func(resp any) error {
		pr, ok := resp.(replica.PrepareResp)
		if !ok {
			return fmt.Errorf("unexpected response %T", resp)
		}
		if !pr.OK {
			return fmt.Errorf("prepare refused: %s", pr.Reason)
		}
		return nil
	}
	var prepared []string
	for _, key := range t.order {
		prepare := replica.PrepareReq{TxID: txID, Key: key, TS: tss[key]}
		err := t.c.fanout(ctx, addrs, contacts, span, "prepare", prepare, checkPrepare)
		if err != nil && errors.Is(err, rpc.ErrBreakerOpen) && ctx.Err() == nil {
			// Rescue pass: don't fail the level over a breaker fast-fail —
			// force the prepares through once (see writeLevel).
			err = t.c.fanout(ctx, addrs, contacts, span, "prepare", prepare, checkPrepare, rpc.ForceProbe())
		}
		if err != nil {
			abortAll(append(prepared, key))
			err = fmt.Errorf("level %d key %q: %w", u, key, err)
			span.Done(false, err)
			return err
		}
		prepared = append(prepared, key)
	}

	// Phase 2: the whole transaction is committed; push every key's
	// commit until acknowledged.
	inDoubt := false
	for _, key := range t.order {
		key := key
		ts := tss[key]
		value := t.writes[key]
		remaining := addrs
		acked := false
		for attempt := 0; attempt <= t.c.commitRetries; attempt++ {
			if attempt > 0 {
				if !t.c.budget.spend() {
					if t.c.instr != nil {
						t.c.instr.budgetDenied.Inc()
					}
					break // budget dry: outcome in doubt, no retry storm
				}
				// Back off instead of re-sending immediately: the failed
				// member is likely still recovering, and a hot loop just
				// burns its inbox. ForceProbe below keeps the commit
				// decision flowing through open breakers.
				if t.c.backoff(ctx, attempt-1, "commit", 0) != nil {
					break // context done mid-backoff: outcome in doubt
				}
			}
			var mu sync.Mutex
			var failed []transport.Addr
			err := t.c.fanoutCollect(ctx, remaining, &uncounted, span, "commit",
				replica.CommitReq{TxID: txID, Key: key, Value: value, TS: ts},
				func(addr transport.Addr, _ any, callErr error) {
					if callErr != nil {
						mu.Lock()
						failed = append(failed, addr)
						mu.Unlock()
					}
				}, rpc.ForceProbe())
			if err != nil {
				break // context done: commit decision stands, outcome in doubt
			}
			if len(failed) == 0 {
				acked = true
				break
			}
			remaining = failed
		}
		if !acked {
			inDoubt = true
		}
	}
	if inDoubt {
		err := fmt.Errorf("level %d: %w", u, ErrInDoubt)
		span.Done(false, err)
		return err
	}
	span.Done(true, nil)
	return nil
}
