package client

import (
	"context"
	"testing"
	"time"

	"arbor/internal/replica"
	"arbor/internal/transport"
)

// watchRepairs installs a send hook that records the destination of every
// read-repair commit (fire-and-forget CommitReq with TxID 0). Repairs are
// issued synchronously inside Read, so once Read returns every repair this
// read triggered has already been observed — the tests need no sleeps.
func watchRepairs(h *memHarness) chan transport.Addr {
	repairs := make(chan transport.Addr, 64)
	h.cli.caller.SetSendHook(func(to transport.Addr, payload any) {
		if cr, ok := payload.(replica.CommitReq); ok && cr.TxID == 0 {
			repairs <- to
		}
	})
	return repairs
}

// awaitKey waits (bounded) until the replica at addr has the key applied —
// the repair message itself travels asynchronously after the hook fires.
func awaitKey(t *testing.T, h *memHarness, addr transport.Addr, key string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, found := h.replicas[int(addr)-1].Store().Get(key); found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair to site %d never applied", addr)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestReadRepairSpreadsValueAcrossLevels: after a repaired read, replicas
// on levels the write never touched hold the value, so reads survive the
// written level crashing entirely.
func TestReadRepairSpreadsValueAcrossLevels(t *testing.T) {
	h := newMemHarness(t, "1-2-3", WithReadRepair(true))
	ctx := context.Background()

	wr, err := h.cli.Write(ctx, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	repairs := watchRepairs(h)

	// Read until every replica of the untouched levels has been repaired
	// (the per-level representative is chosen at random, so one read may
	// repair only a subset). Progress is driven by observed repair sends.
	needed := make(map[transport.Addr]bool)
	for u := 0; u < h.proto.NumPhysicalLevels(); u++ {
		if u == wr.Level {
			continue
		}
		for _, s := range h.proto.LevelSites(u) {
			needed[transport.Addr(s)] = true
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(needed) > 0 {
		if _, err := h.cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
		for {
			var to transport.Addr
			select {
			case to = <-repairs:
			default:
				to = 0
			}
			if to == 0 {
				break
			}
			if needed[to] {
				awaitKey(t, h, to, "k")
				delete(needed, to)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("replicas %v never repaired", needed)
		}
	}

	// Durability: even with the entire written level gone, the repaired
	// replicas hold the latest value (reads are unavailable until the
	// level recovers — that is the protocol's availability contract — but
	// no data can be lost with the extra copies).
	for _, site := range h.proto.LevelSites(wr.Level) {
		h.replicas[int(site)-1].Crash()
	}
	surviving := 0
	for _, r := range h.replicas {
		if r.Crashed() {
			continue
		}
		if v, ts, found := r.Store().Get("k"); found && string(v) == "v" && ts == wr.TS {
			surviving++
		}
	}
	if surviving == 0 {
		t.Error("no surviving replica holds the repaired value")
	}
}

// TestReadRepairDisabledByDefault: without the option, no repair traffic is
// ever sent and off-level replicas stay unaware of the value.
func TestReadRepairDisabledByDefault(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()
	wr, err := h.cli.Write(ctx, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	repairs := watchRepairs(h)
	for i := 0; i < 10; i++ {
		if _, err := h.cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	// Repairs happen inside Read, so by now the hook would have fired.
	select {
	case to := <-repairs:
		t.Fatalf("read repair sent to site %d with repair disabled", to)
	default:
	}
	for _, r := range h.replicas {
		if levelIndexOf(h, r.Site()) == wr.Level {
			continue
		}
		if _, _, found := r.Store().Get("k"); found {
			t.Fatalf("replica %d outside the written level has the value without read repair", r.Site())
		}
	}
}

// levelIndexOf maps a site to its physical-level index in the protocol.
func levelIndexOf(h *memHarness, site int) int {
	for u := 0; u < h.proto.NumPhysicalLevels(); u++ {
		for _, s := range h.proto.LevelSites(u) {
			if int(s) == site {
				return u
			}
		}
	}
	return -1
}
