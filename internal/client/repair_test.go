package client

import (
	"context"
	"testing"
	"time"
)

// TestReadRepairSpreadsValueAcrossLevels: after a repaired read, replicas
// on levels the write never touched hold the value, so reads survive the
// written level crashing entirely.
func TestReadRepairSpreadsValueAcrossLevels(t *testing.T) {
	h := newMemHarness(t, "1-2-3", WithReadRepair(true))
	ctx := context.Background()

	wr, err := h.cli.Write(ctx, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	// Read until every replica of the untouched level has been repaired
	// (the per-level representative is chosen at random).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := h.cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond) // let fire-and-forget repairs land
		repaired := 0
		other := 0
		for _, r := range h.replicas {
			if h.proto.Tree().SiteLevel(h.proto.Tree().Sites()[r.Site()-1]) < 0 {
				continue
			}
			lvl := levelIndexOf(h, r.Site())
			if lvl == wr.Level {
				continue
			}
			other++
			if _, _, found := r.Store().Get("k"); found {
				repaired++
			}
		}
		if repaired == other {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d off-level replicas repaired", repaired, other)
		}
	}

	// Durability: even with the entire written level gone, the repaired
	// replicas hold the latest value (reads are unavailable until the
	// level recovers — that is the protocol's availability contract — but
	// no data can be lost with the extra copies).
	for _, site := range h.proto.LevelSites(wr.Level) {
		h.replicas[int(site)-1].Crash()
	}
	surviving := 0
	for _, r := range h.replicas {
		if r.Crashed() {
			continue
		}
		if v, ts, found := r.Store().Get("k"); found && string(v) == "v" && ts == wr.TS {
			surviving++
		}
	}
	if surviving == 0 {
		t.Error("no surviving replica holds the repaired value")
	}
}

// TestReadRepairDisabledByDefault: without the option, off-level replicas
// stay unaware of the value.
func TestReadRepairDisabledByDefault(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	ctx := context.Background()
	wr, err := h.cli.Write(ctx, "k", []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := h.cli.Read(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	for _, r := range h.replicas {
		if levelIndexOf(h, r.Site()) == wr.Level {
			continue
		}
		if _, _, found := r.Store().Get("k"); found {
			t.Fatalf("replica %d outside the written level has the value without read repair", r.Site())
		}
	}
}

// levelIndexOf maps a site to its physical-level index in the protocol.
func levelIndexOf(h *memHarness, site int) int {
	for u := 0; u < h.proto.NumPhysicalLevels(); u++ {
		for _, s := range h.proto.LevelSites(u) {
			if int(s) == site {
				return u
			}
		}
	}
	return -1
}
