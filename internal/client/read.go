package client

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"arbor/internal/core"
	"arbor/internal/replica"
	"arbor/internal/transport"
)

// ReadResult is the outcome of a successful read quorum operation.
type ReadResult struct {
	Value []byte
	TS    replica.Timestamp
	Found bool
	// Contacts is the number of replica requests the operation sent.
	Contacts int
}

// Read performs the protocol's read operation on key: it contacts one
// responsive physical node of every physical level (trying the level's
// nodes in random order) and returns the value with the most recent
// timestamp. It fails with ErrReadUnavailable when some level has no
// responsive replica, and ErrNotFound when the quorum assembled but nobody
// stores the key.
func (c *Client) Read(ctx context.Context, key string) (ReadResult, error) {
	res, err := c.readQuorum(ctx, key, false)
	if err != nil {
		c.metrics.readFailures.Add(1)
		return res, err
	}
	c.metrics.reads.Add(1)
	if !res.Found {
		return res, ErrNotFound
	}
	return res, nil
}

// ReadVersion performs the version-discovery half of a write: like Read,
// but asking only for timestamps. A fully assembled quorum over replicas
// that never stored the key yields Found=false with a zero timestamp.
func (c *Client) ReadVersion(ctx context.Context, key string) (ReadResult, error) {
	return c.readQuorum(ctx, key, true)
}

// levelOutcome is one physical level's contribution to a read quorum.
type levelOutcome struct {
	ts        replica.Timestamp
	value     []byte
	found     bool
	contacts  int
	err       error
	responder transport.Addr
}

// readQuorum gathers one response per physical level, in parallel across
// levels and sequentially (random order) within a level.
func (c *Client) readQuorum(ctx context.Context, key string, versionOnly bool) (ReadResult, error) {
	proto := c.Protocol()
	levels := proto.NumPhysicalLevels()
	outcomes := make([]levelOutcome, levels)
	var wg sync.WaitGroup
	for u := 0; u < levels; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			outcomes[u] = c.readLevel(ctx, proto, u, key, versionOnly)
		}(u)
	}
	wg.Wait()

	var res ReadResult
	for u, out := range outcomes {
		res.Contacts += out.contacts
		if out.err != nil {
			c.metrics.readContacts.Add(uint64(res.Contacts))
			return res, fmt.Errorf("%w: level %d: %v", ErrReadUnavailable, u, out.err)
		}
		if out.found && (!res.Found || out.ts.After(res.TS)) {
			res.TS = out.ts
			res.Value = out.value
			res.Found = true
		}
	}
	c.metrics.readContacts.Add(uint64(res.Contacts))
	if c.readRepair && !versionOnly && res.Found {
		c.repair(key, res, outcomes)
	}
	return res, nil
}

// repair pushes the winning value to contacted replicas that answered with
// stale or missing data. Repairs are fire-and-forget timestamped commits
// (request ID 0 is never registered, so any acknowledgement is dropped by
// the dispatcher) and cannot regress replica state.
func (c *Client) repair(key string, res ReadResult, outcomes []levelOutcome) {
	for _, out := range outcomes {
		if out.err != nil || (out.found && !res.TS.After(out.ts)) {
			continue
		}
		_ = c.ep.Send(out.responder, replica.CommitReq{
			TxID:  0,
			Key:   key,
			Value: res.Value,
			TS:    res.TS,
		})
	}
}

// readLevel obtains one response from any physical node of level u.
func (c *Client) readLevel(ctx context.Context, proto *core.Protocol, u int, key string, versionOnly bool) levelOutcome {
	var out levelOutcome
	var contacts atomic.Uint64
	for _, addr := range c.shuffledSites(proto, u) {
		var resp any
		var err error
		if versionOnly {
			resp, err = c.call(ctx, addr, func(id uint64) any {
				return replica.VersionReq{ReqID: id, Key: key}
			}, &contacts)
		} else {
			resp, err = c.call(ctx, addr, func(id uint64) any {
				return replica.ReadReq{ReqID: id, Key: key}
			}, &contacts)
		}
		if err != nil {
			out.err = err
			continue
		}
		out.err = nil
		out.responder = addr
		switch m := resp.(type) {
		case replica.ReadResp:
			out.ts, out.value, out.found = m.TS, m.Value, m.Found
		case replica.VersionResp:
			out.ts, out.found = m.TS, m.Found
		default:
			out.err = fmt.Errorf("unexpected response %T", resp)
			continue
		}
		break
	}
	out.contacts = int(contacts.Load())
	if out.contacts == 0 {
		out.err = fmt.Errorf("level %d has no replicas", u)
	}
	return out
}
