package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"arbor/internal/core"
	"arbor/internal/obs"
	"arbor/internal/replica"
	"arbor/internal/rpc"
	"arbor/internal/transport"
)

// ReadResult is the outcome of a successful read quorum operation.
type ReadResult struct {
	// Value is the winning replica's value and must be treated as
	// read-only: callers whose reads coalesced into one quorum assembly
	// share a single buffer (the handoff is zero-copy). The replica store
	// never aliases it, so mutating it — besides corrupting co-readers —
	// still cannot corrupt stored state.
	Value []byte
	TS    replica.Timestamp
	Found bool
	// Contacts is the number of replica requests the operation sent (zero
	// for a read coalesced onto another caller's quorum assembly).
	Contacts int
}

// Read performs the protocol's read operation on key: it contacts one
// responsive physical node of every physical level (candidates ordered by
// the quorum engine's learned site scores, with hedged backup probes when
// the outstanding probe is overdue) and returns the value with the most
// recent timestamp. Concurrent option-free reads of the same key through
// one client coalesce into a single quorum assembly. It fails with
// ErrReadUnavailable when some level has no responsive replica, and
// ErrNotFound when the quorum assembled but nobody stores the key.
func (c *Client) Read(ctx context.Context, key string, opts ...ReadOption) (ReadResult, error) {
	if len(opts) == 0 {
		return c.readShared(ctx, key)
	}
	cfg := c.readDefaults()
	for _, o := range opts {
		o.applyRead(&cfg)
	}
	return c.readDirect(ctx, key, cfg)
}

// readDirect runs one full read operation (trace, metrics, quorum) under
// the given configuration, bypassing coalescing.
func (c *Client) readDirect(ctx context.Context, key string, cfg readConfig) (ReadResult, error) {
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	c.budget.earnOp()
	op := c.traces.Start("read", key, c.id)
	var start time.Time
	if c.instr != nil {
		start = time.Now()
	}
	res, err := c.readQuorum(ctx, key, false, op, cfg)
	if err != nil {
		c.metrics.readFailures.Add(1)
		if c.instr != nil {
			c.instr.readDur.Observe(time.Since(start))
			if errors.Is(err, ErrReadUnavailable) {
				c.instr.readUnavailable.Inc()
			} else {
				c.instr.ops.With("read", obs.OutcomeError).Inc()
			}
		}
		op.Finish(readOutcome(err), err, res.Contacts)
		return res, err
	}
	c.metrics.reads.Add(1)
	if c.instr != nil {
		c.instr.readDur.Observe(time.Since(start))
	}
	if !res.Found {
		if c.instr != nil {
			c.instr.readNotFound.Inc()
		}
		op.Finish(obs.OutcomeNotFound, nil, res.Contacts)
		return res, ErrNotFound
	}
	if c.instr != nil {
		c.instr.readOK.Inc()
	}
	op.Finish(obs.OutcomeOK, nil, res.Contacts)
	return res, nil
}

// readOutcome maps a read error to a trace outcome label.
func readOutcome(err error) string {
	switch {
	case err == nil:
		return obs.OutcomeOK
	case errors.Is(err, ErrReadUnavailable):
		return obs.OutcomeUnavailable
	default:
		return obs.OutcomeError
	}
}

// ReadVersion performs the version-discovery half of a write: like Read,
// but asking only for timestamps. A fully assembled quorum over replicas
// that never stored the key yields Found=false with a zero timestamp.
func (c *Client) ReadVersion(ctx context.Context, key string) (ReadResult, error) {
	ctx, cancel := c.opCtx(ctx)
	defer cancel()
	return c.readQuorum(ctx, key, true, nil, c.readDefaults())
}

// levelOutcome is one physical level's contribution to a read quorum.
type levelOutcome struct {
	ts        replica.Timestamp
	value     []byte
	found     bool
	contacts  int
	err       error
	responder transport.Addr
	// skipped lists sites the attempt never actually probed because their
	// circuit breaker fast-failed the call; a failed level retries them
	// with ForceProbe before giving up (the rescue pass).
	skipped []transport.Addr
}

// decodeProbe extracts a read/version probe response. A catching-up
// refusal maps to ErrCatchingUp and marks the site as refusing in the
// scoreboard (ordering it last until it serves again); a real serve clears
// the mark.
func (c *Client) decodeProbe(addr transport.Addr, resp any) (ts replica.Timestamp, value []byte, found bool, err error) {
	switch m := resp.(type) {
	case replica.ReadResp:
		if m.Refused {
			c.scores.markRefusing(addr)
			return ts, nil, false, fmt.Errorf("site %d: %w", addr, ErrCatchingUp)
		}
		return m.TS, m.Value, m.Found, nil
	case replica.VersionResp:
		if m.Refused {
			c.scores.markRefusing(addr)
			return ts, nil, false, fmt.Errorf("site %d: %w", addr, ErrCatchingUp)
		}
		return m.TS, nil, m.Found, nil
	default:
		return ts, nil, false, fmt.Errorf("unexpected response %T", resp)
	}
}

// readQuorum gathers one response per physical level, in parallel across
// levels and engine-ordered (hedged when warranted) within a level. When
// op is live, every level probe is recorded as a LevelAttempt on it.
func (c *Client) readQuorum(ctx context.Context, key string, versionOnly bool, op *obs.Op, cfg readConfig) (ReadResult, error) {
	proto := c.Protocol()
	levels := proto.NumPhysicalLevels()
	outcomes := make([]levelOutcome, levels)
	var wg sync.WaitGroup
	for u := 0; u < levels; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			outcomes[u] = c.readLevel(ctx, proto, u, key, versionOnly, op, cfg)
		}(u)
	}
	wg.Wait()

	var res ReadResult
	for u, out := range outcomes {
		res.Contacts += out.contacts
		if out.err != nil {
			c.metrics.readContacts.Add(uint64(res.Contacts))
			return res, fmt.Errorf("%w: level %d: %w", ErrReadUnavailable, u, out.err)
		}
		if out.found && (!res.Found || out.ts.After(res.TS)) {
			res.TS = out.ts
			res.Value = out.value
			res.Found = true
		}
	}
	c.metrics.readContacts.Add(uint64(res.Contacts))
	if c.readRepair && !versionOnly && res.Found {
		c.repair(key, res, outcomes)
	}
	return res, nil
}

// repair pushes the winning value to contacted replicas that answered with
// stale or missing data. Repairs are fire-and-forget timestamped commits
// (request ID 0 is never registered, so any acknowledgement is dropped by
// the dispatcher) and cannot regress replica state.
func (c *Client) repair(key string, res ReadResult, outcomes []levelOutcome) {
	for _, out := range outcomes {
		if out.err != nil || (out.found && !res.TS.After(out.ts)) {
			continue
		}
		_ = c.caller.Send(out.responder, replica.CommitReq{
			TxID:  0,
			Key:   key,
			Value: res.Value,
			TS:    res.TS,
		})
	}
}

// readLevel obtains one response from any physical node of level u,
// probing candidates in the engine's learned order — hedged when the level
// is warm and hedging is on, sequentially otherwise. If the attempt fails
// while some sites were only breaker-skipped (never actually probed), a
// rescue pass force-probes them: the breaker is advice for ordering and
// fast-skipping, never grounds for declaring a level unavailable.
func (c *Client) readLevel(ctx context.Context, proto *core.Protocol, u int, key string, versionOnly bool, op *obs.Op, cfg readConfig) levelOutcome {
	sites := c.orderedSites(proto, u)
	var out levelOutcome
	hedged := false
	if cfg.hedge && len(sites) > 1 {
		if d, ok := c.levelHedgeDelay(sites, cfg); ok {
			out = c.readLevelHedged(ctx, sites, u, key, versionOnly, op, d)
			hedged = true
		}
	}
	if !hedged {
		out = c.readLevelSequential(ctx, sites, u, key, versionOnly, op, false)
	}
	if out.err != nil && len(out.skipped) > 0 && ctx.Err() == nil {
		rescue := c.readLevelSequential(ctx, out.skipped, u, key, versionOnly, op, true)
		rescue.contacts += out.contacts
		return rescue
	}
	return out
}

// readLevelSequential probes the level's candidates one at a time, each
// bounded by the full client timeout, recording each site contact (and the
// eventual fallback within the level) on the operation trace. With force
// set, calls carry ForceProbe and go through open circuit breakers (the
// rescue pass).
func (c *Client) readLevelSequential(ctx context.Context, sites []transport.Addr, u int, key string, versionOnly bool, op *obs.Op, force bool) levelOutcome {
	phase := "read"
	spanPhase := "read-quorum"
	if versionOnly {
		phase = "version"
		spanPhase = "version-discovery"
	}
	span := op.Level(u, spanPhase)
	traced := span.On()

	var copts []rpc.CallOption
	if force {
		copts = []rpc.CallOption{rpc.ForceProbe()}
	}
	var out levelOutcome
	var contacts atomic.Uint64
	for _, addr := range sites {
		var cs time.Time
		if traced {
			cs = time.Now()
		}
		var resp any
		var err error
		if versionOnly {
			resp, err = c.call(ctx, addr, replica.VersionReq{Key: key, ForWrite: true}, &contacts, copts...)
		} else {
			resp, err = c.call(ctx, addr, replica.ReadReq{Key: key}, &contacts, copts...)
		}
		if traced {
			span.Contact(int(addr), phase, cs, time.Since(cs), err, errors.Is(err, rpc.ErrTimeout))
		}
		if err != nil {
			if errors.Is(err, rpc.ErrBreakerOpen) {
				out.skipped = append(out.skipped, addr)
			}
			out.err = err
			continue
		}
		out.err = nil
		var ts replica.Timestamp
		var value []byte
		var found bool
		ts, value, found, err = c.decodeProbe(addr, resp)
		if err != nil {
			out.err = err
			continue
		}
		out.responder = addr
		out.ts, out.value, out.found = ts, value, found
		break
	}
	out.contacts = int(contacts.Load())
	if out.contacts == 0 && out.err == nil {
		out.err = fmt.Errorf("level %d has no replicas", u)
	}
	if out.contacts > 1 && c.instr != nil {
		c.instr.siteFallbacks.Add(uint64(out.contacts - 1))
	}
	span.Done(out.err == nil, out.err)
	return out
}
