package client

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"arbor/internal/replica"
	"arbor/internal/rpc"
	"arbor/internal/transport"
)

// tripBreaker burns the given site's breaker open with concurrent direct
// calls (each times out against the crashed replica).
func tripBreaker(t *testing.T, h *memHarness, site transport.Addr, n int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = h.cli.caller.Call(context.Background(), site, replica.PingReq{})
		}()
	}
	wg.Wait()
	if st := h.cli.caller.BreakerState(site); st != rpc.BreakerOpen {
		t.Fatalf("breaker for site %d = %v after %d failures, want open", site, st, n)
	}
}

// TestOpenBreakerSiteSkippedWithoutTimeout is the acceptance criterion for
// the breaker/engine integration: a read quorum that would have probed a
// dead site completes fast because the open breaker is skipped in candidate
// ordering — no timeout is spent on it and no contact is recorded.
func TestOpenBreakerSiteSkippedWithoutTimeout(t *testing.T) {
	timeout := 60 * time.Millisecond
	h := newMemHarness(t, "1-2-3", WithTimeout(timeout), WithHedging(false))
	ctx := context.Background()

	if _, err := h.cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Site 2 (level 1 member) dies; trip its breaker.
	h.replicas[1].Crash()
	tripBreaker(t, h, 2, 4)

	start := time.Now()
	rd, err := h.cli.Read(ctx, "k")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("read with open breaker: %v", err)
	}
	if string(rd.Value) != "v" {
		t.Fatalf("read = %q, want v", rd.Value)
	}
	if elapsed >= timeout {
		t.Errorf("read took %v with site 2's breaker open; the skip should avoid burning the %v timeout", elapsed, timeout)
	}
	if rd.Contacts != h.proto.NumPhysicalLevels() {
		t.Errorf("read contacts = %d, want %d (breaker fast-fails are not contacts)",
			rd.Contacts, h.proto.NumPhysicalLevels())
	}
	if st := h.cli.BreakerStates()[2]; st != rpc.BreakerOpen {
		t.Errorf("breaker state for site 2 = %v, want still open", st)
	}
}

// TestBreakerRescueKeepsLevelAvailable: every member of a level has an open
// breaker but the sites are actually alive — the rescue pass force-probes
// them, so the breaker can never cost availability the protocol had.
func TestBreakerRescueKeepsLevelAvailable(t *testing.T) {
	h := newMemHarness(t, "1-2-3", WithTimeout(60*time.Millisecond), WithHedging(false))
	ctx := context.Background()

	if _, err := h.cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Crash level 1 entirely, trip both breakers, then silently revive the
	// sites: the breakers are now stale.
	h.replicas[1].Crash()
	h.replicas[2].Crash()
	tripBreaker(t, h, 2, 4)
	tripBreaker(t, h, 3, 4)
	h.replicas[1].Recover()
	h.replicas[2].Recover()

	rd, err := h.cli.Read(ctx, "k")
	if err != nil {
		t.Fatalf("read with level 1 fully breaker-open: %v", err)
	}
	if string(rd.Value) != "v" {
		t.Fatalf("read = %q, want v", rd.Value)
	}
}

// TestWriteBreakerRescue: writes, too, survive a level whose breakers are
// stale-open (prepare fanout retries with ForceProbe).
func TestWriteBreakerRescue(t *testing.T) {
	h := newMemHarness(t, "1-2", WithTimeout(60*time.Millisecond), WithHedging(false))
	ctx := context.Background()

	h.replicas[0].Crash()
	h.replicas[1].Crash()
	tripBreaker(t, h, 1, 4)
	tripBreaker(t, h, 2, 4)
	h.replicas[0].Recover()
	h.replicas[1].Recover()

	if _, err := h.cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatalf("write with all breakers open: %v", err)
	}
}

// TestBreakerDisabledOption: WithBreaker(false) removes breaker behaviour
// entirely (the deterministic-simulation configuration).
func TestBreakerDisabledOption(t *testing.T) {
	h := newMemHarness(t, "1-2-3", WithBreaker(false))
	if states := h.cli.BreakerStates(); states != nil {
		t.Errorf("BreakerStates = %v, want nil with breakers disabled", states)
	}
	if _, err := h.cli.Write(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

// TestRefusingSiteSinksInOrdering: a catching-up refusal pushes the site to
// the back of its level's candidate order without polluting the latency and
// failure estimates, and a later successful serve restores it.
func TestRefusingSiteSinksInOrdering(t *testing.T) {
	h := newMemHarness(t, "1-2-3")
	addr := transport.Addr(2)

	h.cli.scores.markRefusing(addr)
	var u = -1
	for lvl := 0; lvl < h.proto.NumPhysicalLevels(); lvl++ {
		for _, s := range h.proto.LevelSites(lvl) {
			if transport.Addr(s) == addr {
				u = lvl
			}
		}
	}
	for i := 0; i < 10; i++ {
		order := h.cli.orderedSites(h.proto, u)
		if order[len(order)-1] != addr {
			t.Fatalf("refusing site %d not last in %v", addr, order)
		}
	}
	// A successful record clears the refusal mark.
	h.cli.scores.record(addr, time.Millisecond, false)
	if h.cli.scores.isRefusing(addr) {
		t.Error("refusal mark survived a successful serve")
	}
}

// TestCatchingUpRefusalFallsThrough: a client read against a level whose
// first candidate refuses (catching up) falls through to the level's other
// member and succeeds — and ErrCatchingUp identifies the refusal.
func TestCatchingUpRefusalFallsThrough(t *testing.T) {
	h := newMemHarness(t, "1-2-3", WithHedging(false))
	ctx := context.Background()

	if _, err := h.cli.Write(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Pin site 2 in the catching-up state via an unreachable sync peer.
	h.replicas[1].Crash()
	h.replicas[1].RecoverCatchingUp(replica.SyncPlan{
		Peers:  [][]transport.Addr{{transport.Addr(9999)}},
		Config: replica.SyncConfig{CallTimeout: 10 * time.Millisecond},
	})
	for i := 0; i < 5; i++ {
		rd, err := h.cli.Read(ctx, "k")
		if err != nil {
			t.Fatalf("read %d with site 2 catching up: %v", i, err)
		}
		if string(rd.Value) != "v" {
			t.Fatalf("read = %q, want v", rd.Value)
		}
	}
	// Direct probe of the refusing site surfaces ErrCatchingUp.
	out := h.cli.readLevelSequential(ctx, []transport.Addr{2}, 1, "k", false, nil, false)
	if !errors.Is(out.err, ErrCatchingUp) {
		t.Errorf("direct probe err = %v, want ErrCatchingUp", out.err)
	}
}
